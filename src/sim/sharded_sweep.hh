/**
 * @file
 * Scenario sweeps on the sharded event scheduler.
 *
 * The monolithic sweep (bench/bench_util.hh) parallelises across
 * whole (scenario, scheme) runs; each run itself advances all four
 * devices and one protection engine on a single thread.  This module
 * decomposes the runs themselves: the protected region is address-
 * interleaved across per-memory-channel shards (SecDDR-style, one
 * protection engine + one controller per channel), devices become
 * asynchronous issue/complete state machines on home shards, and one
 * sim::Scheduler advances every in-flight run together -- thousands
 * of concurrent protected regions in one process, scaling with
 * worker threads.
 *
 * Timing model differences vs. the monolithic path (intentional,
 * keyed separately in the run memo via shardedTopoWord()):
 *  - metadata state (integrity tree, unit buffers, write-gather,
 *    per-domain counters) partitions by address interleave: channel
 *    of a global address is (addr / interleave) % channels, and the
 *    per-channel engine sees the compacted local address space;
 *  - every device <-> channel message crosses a quantum barrier, so
 *    request arrival and completion notification are quantised to
 *    the scheduler quantum (the conservative-lookahead latency);
 *  - requests larger than the interleave split into per-channel
 *    pieces; an op completes when its slowest piece does.
 *
 * Determinism: each run uses job-local time (admission happens at a
 * quantum boundary T0, every handler works in local = global - T0,
 * and T0 is a multiple of the quantum, so the per-event cross-shard
 * quantisation max(t, (floor(t/Q)+1)*Q) is identical whether the run
 * is alone or co-scheduled).  Run state is disjoint per job, so
 * results are bit-identical for any thread count and any in-flight
 * limit -- pinned by tests/sweep_determinism_test.cc and enforced by
 * bench/shard_scaling.
 */

#ifndef MGMEE_SIM_SHARDED_SWEEP_HH
#define MGMEE_SIM_SHARDED_SWEEP_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "hetero/metrics.hh"

namespace mgmee::sim {

/** Topology + workload knobs of a sharded sweep. */
struct ShardedSweepConfig
{
    std::uint64_t seed = 1;
    double scale = 0.5;
    /** Worker threads (clamped to shards by the scheduler). */
    unsigned threads = 1;
    /** Memory-channel shards; each gets its own engine + MemCtrl. */
    unsigned shards = 4;
    /** Conservative time window of the scheduler (cycles).  Keep it
     *  small relative to memory latency: large quanta stretch every
     *  device <-> channel hop enough to distort scheme ordering. */
    Cycle quantum = 256;
    /** Channel-interleave stride; the default keeps every 32KB
     *  protection chunk (and thus every granularity unit) on one
     *  channel. */
    Addr interleave = kChunkBytes;
    /** In-flight (scenario, scheme) runs; 0 = auto
     *  (max(16, 4 x threads)).  Bounds engine memory; does not
     *  affect results. */
    unsigned max_inflight = 0;
    /** Run the static-best granularity search per scenario. */
    bool use_static_best_search = false;
    /** Period of per-channel kernelBoundary() hooks (local time). */
    Cycle kernel_boundary_interval = 100 * 1000;
};

/** Wall-clock / scheduler telemetry of one sweep. */
struct ShardedSweepTelemetry
{
    std::uint64_t quanta = 0;
    std::uint64_t events = 0;
    std::uint64_t cross_events = 0;
    std::uint64_t jobs_simulated = 0;
    std::uint64_t jobs_from_memo = 0;
    /** Wall nanoseconds per executed quantum (p50/p99 reporting). */
    Histogram quantum_wall_ns;
};

/** Results indexed like bench_util's runSweep. */
struct ShardedSweepResult
{
    /** results[scheme][scenario], schemes in caller order. */
    std::vector<std::vector<RunResult>> results;
    /** Per-scenario Unsecure baseline (same topology). */
    std::vector<RunResult> unsecure;
    ShardedSweepTelemetry telemetry;
};

/**
 * Run @p schemes over @p scenarios on the sharded scheduler.  Every
 * scenario also runs the Unsecure baseline (for normalisation);
 * completed runs are published to the run memo under the sweep's
 * topology word unless `MGMEE_MEMO=0`.
 */
ShardedSweepResult
runShardedSweep(const std::vector<Scenario> &scenarios,
                const std::vector<Scheme> &schemes,
                const ShardedSweepConfig &cfg);

/**
 * The run-memo topology key of @p cfg: a non-zero word over the
 * knobs that change sharded timing (shards, quantum, interleave,
 * kernel-boundary period).  Monolithic runs key as topo 0.
 */
std::uint64_t shardedTopoWord(const ShardedSweepConfig &cfg);

} // namespace mgmee::sim

#endif // MGMEE_SIM_SHARDED_SWEEP_HH
