#include "sim/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace mgmee::sim {

namespace {

constexpr Cycle kNoEvent = ~Cycle{0};

/**
 * Handler-context state for the thread currently executing a shard.
 * One scheduler drives a thread at a time, so plain thread-locals
 * suffice; -1 shard means "not in handler context".
 */
thread_local int t_shard = -1;
thread_local Cycle t_now = 0;

} // namespace

Scheduler::Scheduler(const SchedulerConfig &cfg)
    : nshards_(std::max(1u, cfg.shards)),
      quantum_(std::max<Cycle>(1, cfg.quantum))
{
    // More workers than shards would only idle at every barrier.
    nthreads_ = std::clamp(cfg.threads, 1u, nshards_);
    shards_.reserve(nshards_);
    for (unsigned i = 0; i < nshards_; ++i)
        shards_.push_back(std::make_unique<Shard>());

    // The calling thread executes shards too, so the pool only needs
    // nthreads_ - 1 extra workers.
    for (unsigned i = 1; i < nthreads_; ++i)
        pool_.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler()
{
    {
        std::lock_guard<std::mutex> lk(pool_mu_);
        stopping_.store(true, std::memory_order_release);
    }
    pool_cv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

void
Scheduler::pushEvent(unsigned shard, Cycle when, Handler fn)
{
    Shard &sh = *shards_[shard];
    sh.queue.push(Event{when, sh.seq++, std::move(fn)});
}

void
Scheduler::schedule(unsigned shard, Cycle when, Handler fn)
{
    panic_if(shard >= nshards_, "schedule onto shard %u of %u", shard,
             nshards_);
    if (in_parallel_) {
        // Handler context: only the owning shard may touch its queue.
        panic_if(t_shard != static_cast<int>(shard),
                 "direct cross-shard schedule from shard %d to %u "
                 "(use scheduleCross)",
                 t_shard, shard);
        panic_if(when < t_now,
                 "schedule into the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(t_now));
    }
    pushEvent(shard, when, std::move(fn));
}

void
Scheduler::scheduleCross(unsigned dst, Cycle when, Handler fn)
{
    panic_if(dst >= nshards_, "scheduleCross onto shard %u of %u", dst,
             nshards_);
    if (in_parallel_) {
        panic_if(t_shard < 0, "scheduleCross outside handler context "
                              "during a quantum");
        // Same-shard destination: the queue is ours, deliver at the
        // exact tick (clamped to now) with no quantisation.
        if (t_shard == static_cast<int>(dst)) {
            pushEvent(dst, std::max(when, t_now), std::move(fn));
            return;
        }
        // Park in the source shard's outbox; the barrier delivers it
        // in (tick, source shard, creation order) order.
        shards_[t_shard]->outbox.push_back(
            CrossEvent{dst, when, std::move(fn)});
        return;
    }
    // Setup / barrier context is single threaded: deliver directly,
    // but never before the current boundary.
    pushEvent(dst, std::max(when, barrier_tick_), std::move(fn));
}

void
Scheduler::setBarrierHook(std::function<void(Cycle)> hook)
{
    hook_ = std::move(hook);
}

Cycle
Scheduler::now() const
{
    return t_now;
}

int
Scheduler::currentShard() const
{
    return t_shard;
}

std::uint64_t
Scheduler::dispatched() const
{
    std::uint64_t total = 0;
    for (const auto &sh : shards_)
        total += sh->dispatched;
    return total;
}

Cycle
Scheduler::earliestPending() const
{
    Cycle earliest = kNoEvent;
    for (const auto &sh : shards_)
        if (!sh->queue.empty())
            earliest = std::min(earliest, sh->queue.top().when);
    return earliest;
}

void
Scheduler::runShard(unsigned shard, Cycle quantum_end)
{
    Shard &sh = *shards_[shard];
    const bool telemetry = obs::telemetryEnabled();
    std::chrono::steady_clock::time_point shard_t0;
    if (telemetry) {
        shard_t0 = std::chrono::steady_clock::now();
        if (!sh.telemetry_hist)
            sh.telemetry_hist = &obs::telemetryHistogram(
                "sched.quantum_wall_ns.shard" +
                std::to_string(shard));
    }
    t_shard = static_cast<int>(shard);
    ScopedTraceShard tag(static_cast<int>(shard));
    // Quantum window is [quantum start, quantum_end): an event landing
    // exactly on the boundary belongs to the next quantum.
    while (!sh.queue.empty() && sh.queue.top().when < quantum_end) {
        // priority_queue::top() is const; the element is discarded by
        // the pop() right after, so moving out of it is safe.
        Event ev = std::move(const_cast<Event &>(sh.queue.top()));
        sh.queue.pop();
        t_now = ev.when;
        ev.fn();
        ++sh.dispatched;
    }
    t_now = quantum_end;
    t_shard = -1;
    if (telemetry)
        sh.telemetry_hist->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - shard_t0)
                .count()));
}

namespace {

/** Spin iterations before falling back to the condvar.  Quanta are
 *  normally microseconds apart, so the spin almost always wins; the
 *  sleep path only triggers across long barrier hooks. */
constexpr unsigned kSpinLimit = 4096;

void
relax(unsigned spin)
{
    if (spin % 64 == 63)
        std::this_thread::yield();
}

} // namespace

void
Scheduler::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        // Hybrid wait for the next quantum (or shutdown).
        for (unsigned spin = 0;; ++spin) {
            if (stopping_.load(std::memory_order_acquire))
                return;
            const std::uint64_t gen =
                generation_.load(std::memory_order_acquire);
            if (gen != seen_generation) {
                seen_generation = gen;
                break;
            }
            if (spin < kSpinLimit) {
                relax(spin);
                continue;
            }
            std::unique_lock<std::mutex> lk(pool_mu_);
            pool_cv_.wait(lk, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                       generation_.load(std::memory_order_acquire) !=
                           seen_generation;
            });
            // Loop re-reads the flags on wakeup.
            spin = 0;
        }
        // Safe: pool_quantum_end_ is written before the generation
        // release-increment that got us here, and it is not written
        // again until this worker's check-in below is observed.
        const Cycle quantum_end = pool_quantum_end_;
        for (;;) {
            const unsigned s =
                next_shard_.fetch_add(1, std::memory_order_relaxed);
            if (s >= nshards_)
                break;
            runShard(s, quantum_end);
        }
        // Check in even with zero shards stolen: the quantum is over
        // only once every worker has left the steal loop.
        const unsigned done =
            1 + workers_done_.fetch_add(1, std::memory_order_release);
        if (done + 1 == nthreads_) {
            // The main thread may already be asleep on done_cv_.
            { std::lock_guard<std::mutex> lk(pool_mu_); }
            done_cv_.notify_one();
        }
    }
}

void
Scheduler::executeQuantum(Cycle quantum_end)
{
    const auto t0 = std::chrono::steady_clock::now();
    in_parallel_ = true;
    if (pool_.empty()) {
        for (unsigned s = 0; s < nshards_; ++s)
            runShard(s, quantum_end);
    } else {
        {
            // The mutex makes the generation bump visible to any
            // worker that gave up spinning and went to sleep.
            std::lock_guard<std::mutex> lk(pool_mu_);
            pool_quantum_end_ = quantum_end;
            next_shard_.store(0, std::memory_order_relaxed);
            workers_done_.store(0, std::memory_order_relaxed);
            generation_.fetch_add(1, std::memory_order_release);
        }
        pool_cv_.notify_all();
        // The calling thread pulls shards from the same work counter.
        for (;;) {
            const unsigned s =
                next_shard_.fetch_add(1, std::memory_order_relaxed);
            if (s >= nshards_)
                break;
            runShard(s, quantum_end);
        }
        // Wait for every worker's check-in, not just for the shards:
        // only then is it safe to republish the pool state for the
        // next quantum.
        const unsigned nworkers = nthreads_ - 1;
        for (unsigned spin = 0;
             workers_done_.load(std::memory_order_acquire) < nworkers;
             ++spin) {
            if (spin < kSpinLimit) {
                relax(spin);
                continue;
            }
            std::unique_lock<std::mutex> lk(pool_mu_);
            done_cv_.wait(lk, [&] {
                return workers_done_.load(
                           std::memory_order_acquire) >= nworkers;
            });
        }
    }
    in_parallel_ = false;
    const auto t1 = std::chrono::steady_clock::now();
    quantum_ns_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
}

void
Scheduler::deliverOutboxes(Cycle boundary)
{
    // Single threaded (between quanta).  Outboxes are walked in shard
    // order and each in creation order, so destination seq numbers --
    // the tie-break for same-tick events -- encode exactly the
    // deterministic (source shard, creation order) merge.
    for (unsigned src = 0; src < nshards_; ++src) {
        Shard &sh = *shards_[src];
        for (CrossEvent &ev : sh.outbox) {
            pushEvent(ev.dst, std::max(ev.when, boundary),
                      std::move(ev.fn));
            ++cross_delivered_;
        }
        sh.outbox.clear();
    }
}

void
Scheduler::run()
{
    // Initial barrier: lets the hook seed/admit work before any event
    // runs (and makes an empty scheduler with no hook a no-op).
    if (hook_)
        hook_(barrier_tick_);
    for (;;) {
        const Cycle earliest = earliestPending();
        if (earliest == kNoEvent)
            break;
        // Skip empty stretches of time: jump straight to the quantum
        // containing the earliest event.
        const Cycle quantum_end = (earliest / quantum_ + 1) * quantum_;
        executeQuantum(quantum_end);
        deliverOutboxes(quantum_end);
        barrier_tick_ = quantum_end;
        ++quanta_;
        if (obs::telemetryEnabled()) {
            // Single-threaded barrier: publish per-quantum deltas so
            // interval snapshots see live progress, not end totals.
            auto &reg = StatRegistry::instance();
            reg.sharded("sched", "quanta").add(1);
            const std::uint64_t total = dispatched();
            reg.sharded("sched", "dispatched")
                .add(total - telemetry_dispatched_);
            telemetry_dispatched_ = total;
        }
        if (hook_)
            hook_(quantum_end);
    }
}

ScopedTraceShard::ScopedTraceShard(int shard)
    : prev_(obs::traceShard())
{
    obs::setTraceShard(shard);
}

ScopedTraceShard::~ScopedTraceShard()
{
    obs::setTraceShard(prev_);
}

} // namespace mgmee::sim
