#include "sim/sharded_sweep.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "hetero/run_memo.hh"
#include "hetero/scenario.hh"
#include "hetero/schemes.hh"
#include "mee/timing_engine.hh"
#include "mem/mem_ctrl.hh"
#include "mem/request.hh"
#include "sim/scheduler.hh"

namespace mgmee::sim {

namespace {

/** One per-channel fragment of a device request. */
struct Piece
{
    unsigned channel;
    Addr laddr;
    std::uint32_t bytes;
};

/**
 * Window slot of one in-flight op.  Outstanding ops live in
 * [committed, issued) and that range never exceeds the window, so a
 * ring of `window` slots indexed op % window is collision-free.
 */
struct OpSlot
{
    std::uint32_t pieces_left = 0;
    Cycle issue = 0;     //!< local issue time
    Cycle done = 0;      //!< max piece completion (local)
    bool complete = false;
};

/**
 * Async replacement for the closed-loop Device bookkeeping: issue
 * events self-chain on the device's home shard; completions arrive
 * as cross-shard notifications; the outstanding window frees in FIFO
 * order exactly like Device::complete's deque.
 */
struct DeviceState
{
    std::shared_ptr<const Trace> trace;
    unsigned index = 0;
    unsigned window = 1;
    unsigned home = 0;          //!< shard running this device's logic
    std::size_t issued = 0;     //!< ops issued
    std::size_t committed = 0;  //!< leading ops notified complete
    Cycle last_issue = 0;       //!< local
    Cycle finish = 0;           //!< local, max op completion
    bool blocked = false;       //!< issue chain paused on full window
    std::vector<OpSlot> slots;
};

/** One memory channel of one job: its own engine + controller. */
struct ChannelState
{
    std::unique_ptr<TimingEngine> engine;
    MemCtrl mem;
    Cycle next_kb;  //!< next kernelBoundary tick (local)

    ChannelState(std::unique_ptr<TimingEngine> e,
                 const MemCtrlConfig &mc, Cycle first_kb)
        : engine(std::move(e)), mem(mc), next_kb(first_kb)
    {
    }
};

/**
 * One in-flight (scenario, scheme) run.  All state is job-local and
 * times are job-local (t_start, a quantum multiple, is subtracted
 * everywhere), so a job's result does not depend on when it was
 * admitted or on its co-runners.
 */
struct Job
{
    std::size_t scenario = 0;
    Scheme scheme = Scheme::Unsecure;
    std::array<Granularity, 8> gran{};
    Cycle t_start = 0;
    unsigned devices_left = 0;
    std::vector<DeviceState> devs;
    std::vector<ChannelState> chans;
};

class ShardedSweep
{
  public:
    ShardedSweep(const std::vector<Scenario> &scenarios,
                 const std::vector<Scheme> &schemes,
                 const ShardedSweepConfig &cfg)
        : scenarios_(scenarios), schemes_(schemes), cfg_(cfg),
          topo_(shardedTopoWord(cfg)),
          sched_(SchedulerConfig{cfg.shards, cfg.threads, cfg.quantum})
    {
        fatal_if(cfg_.shards == 0, "sharded sweep needs >=1 shard");
        fatal_if(cfg_.interleave == 0,
                 "sharded sweep needs a non-zero interleave");

        const std::size_t total = scenarioDataBytes();
        const std::size_t chunks =
            (total + cfg_.interleave - 1) / cfg_.interleave;
        channel_bytes_ = ((chunks + cfg_.shards - 1) / cfg_.shards) *
                         cfg_.interleave;

        const unsigned threads_eff =
            std::clamp(cfg_.threads, 1u, cfg_.shards);
        max_inflight_ = cfg_.max_inflight
                            ? cfg_.max_inflight
                            : std::max(16u, 4 * threads_eff);

        // Scenario-major job list: the Unsecure baseline first (it
        // normalises everything else), then each distinct scheme.
        std::vector<Scheme> distinct;
        for (Scheme s : schemes_)
            if (s != Scheme::Unsecure &&
                std::find(distinct.begin(), distinct.end(), s) ==
                    distinct.end())
                distinct.push_back(s);
        for (std::size_t s = 0; s < scenarios_.size(); ++s) {
            joblist_.push_back({s, Scheme::Unsecure});
            for (Scheme sch : distinct)
                joblist_.push_back({s, sch});
        }
    }

    ShardedSweepResult
    run()
    {
        result_.results.assign(
            schemes_.size(),
            std::vector<RunResult>(scenarios_.size()));
        result_.unsecure.assign(scenarios_.size(), RunResult{});
        if (scenarios_.empty())
            return std::move(result_);

        if (cfg_.use_static_best_search)
            precomputeStaticBest();

        reports_.assign(cfg_.shards, {});
        sched_.setBarrierHook([this](Cycle tick) { barrier(tick); });
        sched_.run();
        panic_if(!active_.empty() || next_job_ < joblist_.size(),
                 "sharded sweep drained with %zu jobs in flight and "
                 "%zu unadmitted",
                 active_.size(), joblist_.size() - next_job_);

        result_.telemetry.quanta = sched_.quanta();
        result_.telemetry.events = sched_.dispatched();
        result_.telemetry.cross_events = sched_.crossDelivered();
        result_.telemetry.quantum_wall_ns = sched_.quantumWallNanos();
        return std::move(result_);
    }

  private:
    struct PendingJob
    {
        std::size_t scenario;
        Scheme scheme;
    };

    /**
     * The static-best search profiles on the monolithic closed-loop
     * path (the choice of granularities, not the measured run); it is
     * memoized and thread-safe, so fan it out before the scheduler
     * starts rather than serialising it into barriers.
     */
    void
    precomputeStaticBest()
    {
        static_best_.assign(scenarios_.size(), {});
        std::atomic<std::size_t> next{0};
        auto work = [&] {
            for (std::size_t s = next.fetch_add(1);
                 s < scenarios_.size(); s = next.fetch_add(1))
                static_best_[s] = searchStaticBest(
                    scenarios_[s], cfg_.seed, cfg_.scale);
        };
        const unsigned threads = std::max<unsigned>(
            1, std::min<std::size_t>(cfg_.threads,
                                     scenarios_.size()));
        std::vector<std::thread> pool;
        for (unsigned t = 1; t < threads; ++t)
            pool.emplace_back(work);
        work();
        for (std::thread &t : pool)
            t.join();
    }

    /**
     * Base home shard of a job, derived purely from the scenario's
     * workload names (FNV-1a).  Same-shard completions skip barrier
     * quantisation, so home placement shapes a job's timing: it must
     * not depend on admission order or co-runners (memoized results
     * would differ between sweep compositions), and it must be the
     * same for every scheme of a scenario (the Unsecure baseline has
     * to see the identical placement it is normalising).
     */
    unsigned
    homeBase(const PendingJob &pj) const
    {
        std::uint64_t h = 0xcbf29ce484222325ull;
        auto mix = [&h](const std::string &s) {
            for (const char c : s) {
                h ^= static_cast<unsigned char>(c);
                h *= 0x100000001b3ull;
            }
            h ^= 0xff;
            h *= 0x100000001b3ull;
        };
        const Scenario &sc = scenarios_[pj.scenario];
        mix(sc.cpu);
        mix(sc.gpu);
        mix(sc.npu1);
        mix(sc.npu2);
        return static_cast<unsigned>(h % cfg_.shards);
    }

    const std::array<Granularity, 8> &
    granOf(std::size_t scenario) const
    {
        static const std::array<Granularity, 8> kNone{};
        return cfg_.use_static_best_search ? static_best_[scenario]
                                           : kNone;
    }

    /** Split [addr, addr+bytes) at interleave boundaries into
     *  per-channel pieces with compacted local addresses. */
    void
    splitOp(Addr addr, std::uint32_t bytes,
            std::vector<Piece> &out) const
    {
        out.clear();
        std::uint64_t remaining = std::max<std::uint32_t>(1, bytes);
        Addr gaddr = addr;
        while (remaining > 0) {
            const Addr chunk = gaddr / cfg_.interleave;
            const Addr offset = gaddr % cfg_.interleave;
            const std::uint64_t take = std::min<std::uint64_t>(
                remaining, cfg_.interleave - offset);
            Piece p;
            p.channel =
                static_cast<unsigned>(chunk % cfg_.shards);
            p.laddr = (chunk / cfg_.shards) * cfg_.interleave +
                      offset;
            p.bytes = static_cast<std::uint32_t>(take);
            out.push_back(p);
            remaining -= take;
            gaddr += take;
        }
    }

    // ---- barrier context (single threaded) ---------------------------

    void
    barrier(Cycle tick)
    {
        // Device-done reports drain in (shard, report order): both
        // are deterministic, so retirement order is too.
        for (auto &shard_reports : reports_) {
            for (Job *job : shard_reports)
                if (--job->devices_left == 0)
                    finishJob(job);
            shard_reports.clear();
        }
        while (next_job_ < joblist_.size() &&
               active_.size() < max_inflight_) {
            const PendingJob &pj = joblist_[next_job_++];
            RunResult memoized;
            if (runMemoTryGet(scenarios_[pj.scenario], pj.scheme,
                              cfg_.seed, cfg_.scale,
                              granOf(pj.scenario), topo_,
                              memoized)) {
                route(pj.scenario, pj.scheme, memoized);
                ++result_.telemetry.jobs_from_memo;
                continue;
            }
            startJob(pj, tick);
        }
    }

    void
    startJob(const PendingJob &pj, Cycle tick)
    {
        auto owned = std::make_unique<Job>();
        Job *job = owned.get();
        job->scenario = pj.scenario;
        job->scheme = pj.scheme;
        job->gran = granOf(pj.scenario);
        job->t_start = tick;

        MemCtrlConfig mc;
        mc.channels = 1;  // one DRAM channel per shard
        job->chans.reserve(cfg_.shards);
        for (unsigned c = 0; c < cfg_.shards; ++c)
            job->chans.emplace_back(
                makeEngine(pj.scheme, channel_bytes_, job->gran), mc,
                cfg_.kernel_boundary_interval);

        std::vector<Device> built = buildDevices(
            scenarios_[pj.scenario], cfg_.seed, cfg_.scale);
        const unsigned base = homeBase(pj);
        job->devs.resize(built.size());
        for (std::size_t d = 0; d < built.size(); ++d) {
            DeviceState &dev = job->devs[d];
            dev.trace = built[d].sharedTrace();
            dev.index = static_cast<unsigned>(d);
            dev.window = std::max(1u, built[d].window());
            // Spread device logic across shards from a base derived
            // only from the job identity (see homeBase).
            dev.home = static_cast<unsigned>((base + d) % cfg_.shards);
            dev.slots.assign(dev.window, OpSlot{});
            if (!dev.trace->empty())
                ++job->devices_left;
        }
        active_.push_back(std::move(owned));

        for (DeviceState &dev : job->devs) {
            if (dev.trace->empty())
                continue;
            DeviceState *dp = &dev;
            sched_.schedule(dev.home,
                            tick + (*dev.trace)[0].gap,
                            [this, job, dp] { issueOp(job, dp); });
        }
        if (job->devices_left == 0)
            finishJob(job);
    }

    void
    finishJob(Job *job)
    {
        RunResult res;
        res.scheme = job->scheme;
        for (DeviceState &dev : job->devs) {
            res.device_finish.push_back(dev.finish);
            res.requests += dev.issued;
        }
        for (ChannelState &cs : job->chans) {
            // Mirror the monolithic drain: one final boundary scan.
            cs.engine->kernelBoundary(cs.next_kb, cs.mem);
            res.total_bytes += cs.mem.totalBytes();
            res.security_misses += cs.engine->securityCacheMisses();
        }
        route(job->scenario, job->scheme, res);
        runMemoInstall(scenarios_[job->scenario], job->scheme,
                       cfg_.seed, cfg_.scale, job->gran, topo_, res);
        ++result_.telemetry.jobs_simulated;

        for (auto it = active_.begin(); it != active_.end(); ++it) {
            if (it->get() == job) {
                active_.erase(it);
                break;
            }
        }
    }

    void
    route(std::size_t scenario, Scheme scheme, const RunResult &res)
    {
        if (scheme == Scheme::Unsecure)
            result_.unsecure[scenario] = res;
        for (std::size_t i = 0; i < schemes_.size(); ++i)
            if (schemes_[i] == scheme)
                result_.results[i][scenario] = res;
    }

    // ---- shard handler context ---------------------------------------

    void
    issueOp(Job *job, DeviceState *dev)
    {
        const Cycle g = sched_.now();
        const Cycle local = g - job->t_start;
        const std::size_t op_idx = dev->issued;
        const TraceOp &op = (*dev->trace)[op_idx];
        dev->last_issue = local;

        OpSlot &slot = dev->slots[op_idx % dev->window];
        slot.issue = local;
        slot.done = 0;
        slot.complete = false;

        // Handler context runs concurrently across shards, so the
        // split scratch must not be shared state.
        std::vector<Piece> pieces;
        splitOp(op.addr, op.bytes, pieces);
        slot.pieces_left = static_cast<std::uint32_t>(pieces.size());
        ++dev->issued;

        for (const Piece &p : pieces) {
            sched_.scheduleCross(
                p.channel, g,
                [this, job, ch = p.channel, di = dev->index, op_idx,
                 laddr = p.laddr, bytes = p.bytes,
                 wr = op.is_write] {
                    channelAccess(job, ch, di, op_idx, laddr, bytes,
                                  wr);
                });
        }

        if (dev->issued < dev->trace->size()) {
            if (dev->issued - dev->committed < dev->window) {
                const Cycle gap = (*dev->trace)[dev->issued].gap;
                sched_.schedule(dev->home, g + gap,
                                [this, job, dev] {
                                    issueOp(job, dev);
                                });
            } else {
                dev->blocked = true;
            }
        }
    }

    void
    channelAccess(Job *job, unsigned ch, unsigned dev_index,
                  std::size_t op_idx, Addr laddr, std::uint32_t bytes,
                  bool is_write)
    {
        const Cycle local = sched_.now() - job->t_start;
        ChannelState &cs = job->chans[ch];
        // Boundaries run before any request that passes them, as in
        // HeteroSystem::run's closed loop.
        while (local >= cs.next_kb) {
            cs.engine->kernelBoundary(cs.next_kb, cs.mem);
            cs.next_kb += cfg_.kernel_boundary_interval;
        }

        MemRequest req;
        req.addr = laddr;
        req.bytes = bytes;
        req.is_write = is_write;
        req.device = dev_index;
        req.issue = local;
        const Cycle done = cs.engine->access(req, cs.mem);

        DeviceState *dev = &job->devs[dev_index];
        sched_.scheduleCross(dev->home, job->t_start + done,
                             [this, job, dev, op_idx, done] {
                                 pieceDone(job, dev, op_idx, done);
                             });
    }

    void
    pieceDone(Job *job, DeviceState *dev, std::size_t op_idx,
              Cycle done_local)
    {
        OpSlot &slot = dev->slots[op_idx % dev->window];
        slot.done = std::max(slot.done, done_local);
        if (--slot.pieces_left != 0)
            return;
        slot.complete = true;
        dev->finish = std::max(dev->finish,
                               std::max(slot.done, slot.issue));

        while (dev->committed < dev->issued) {
            OpSlot &front = dev->slots[dev->committed % dev->window];
            if (!front.complete)
                break;
            front.complete = false;
            ++dev->committed;
        }

        if (dev->blocked &&
            dev->issued - dev->committed < dev->window) {
            dev->blocked = false;
            const Cycle gap = (*dev->trace)[dev->issued].gap;
            const Cycle when = std::max(
                sched_.now(),
                job->t_start + dev->last_issue + gap);
            sched_.schedule(dev->home, when, [this, job, dev] {
                issueOp(job, dev);
            });
        }

        if (dev->committed == dev->trace->size())
            reports_[dev->home].push_back(job);
    }

    const std::vector<Scenario> &scenarios_;
    const std::vector<Scheme> &schemes_;
    ShardedSweepConfig cfg_;
    std::uint64_t topo_;
    Scheduler sched_;

    std::size_t channel_bytes_ = 0;
    unsigned max_inflight_ = 0;
    std::vector<std::array<Granularity, 8>> static_best_;

    std::vector<PendingJob> joblist_;
    std::size_t next_job_ = 0;
    std::vector<std::unique_ptr<Job>> active_;
    /** Per-shard device-done reports; each home shard appends only
     *  to its own vector during a quantum, the barrier drains. */
    std::vector<std::vector<Job *>> reports_;

    ShardedSweepResult result_;
};

} // namespace

std::uint64_t
shardedTopoWord(const ShardedSweepConfig &cfg)
{
    std::uint64_t w = 0x53484152;  // "SHAR": never collides with 0
    w = w * 1000003 + cfg.shards;
    w = w * 1000003 + cfg.quantum;
    w = w * 1000003 + static_cast<std::uint64_t>(cfg.interleave);
    w = w * 1000003 + cfg.kernel_boundary_interval;
    return w | 1;
}

ShardedSweepResult
runShardedSweep(const std::vector<Scenario> &scenarios,
                const std::vector<Scheme> &schemes,
                const ShardedSweepConfig &cfg)
{
    return ShardedSweep(scenarios, schemes, cfg).run();
}

} // namespace mgmee::sim
