/**
 * @file
 * Sharded conservative-quantum discrete-event scheduler.
 *
 * The serial sim::EventQueue dispatches one global event stream; this
 * scheduler partitions the event space into *shards*, each with its
 * own (tick, seq)-ordered queue, and advances all shards in lockstep
 * time windows (*quanta*) executed by a pool of worker threads.  The
 * design goal is determinism-by-construction: the observable event
 * order is a pure function of the workload and the scheduler topology
 * (shard count, quantum), never of the thread count or OS scheduling.
 *
 * Rules that make that hold:
 *
 *  - within a shard, events run in (tick, seq) order; seq is a
 *    per-shard counter assigned at insertion, and all insertions into
 *    a shard happen either from that shard's own handlers (serial) or
 *    at the single-threaded barrier -- never concurrently;
 *  - a handler may only self-schedule onto its own shard.  Events for
 *    another shard go through scheduleCross(), which parks them in
 *    the *source* shard's outbox;
 *  - at each quantum barrier the outboxes are merged in
 *    (delivery tick, source shard, source seq) order -- the stable
 *    tie-break -- and delivered no earlier than the boundary:
 *    delivery tick = max(requested tick, quantum end).  Cross-shard
 *    interaction latency is therefore quantized, which is the
 *    conservative-lookahead price of running shards without locks;
 *  - a single-threaded barrier hook runs between quanta (admission
 *    control, retirement, kernel-boundary scans).
 *
 * With threads == 1 the quantum loop runs inline on the caller with
 * the exact same ordering rules, so multi-thread runs are bit-
 * identical to serial ones (pinned by tests/sim_scheduler_test.cc).
 */

#ifndef MGMEE_SIM_SCHEDULER_HH
#define MGMEE_SIM_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace mgmee::obs {
class StreamingHistogram;
} // namespace mgmee::obs

namespace mgmee::sim {

/** Scheduler topology; quantum and shards shape results, threads
 *  only shape wall-clock. */
struct SchedulerConfig
{
    unsigned shards = 1;
    unsigned threads = 1;
    Cycle quantum = 256;
};

/** Sharded discrete-event scheduler (see file comment). */
class Scheduler
{
  public:
    using Handler = std::function<void()>;

    explicit Scheduler(const SchedulerConfig &cfg);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    unsigned shards() const { return nshards_; }
    Cycle quantum() const { return quantum_; }

    /**
     * Schedule @p fn on @p shard at absolute tick @p when.  Legal
     * from setup / barrier context (any shard) or from a handler
     * running on that same shard; panics on a cross-shard direct
     * schedule from inside a quantum (use scheduleCross).
     */
    void schedule(unsigned shard, Cycle when, Handler fn);

    /**
     * Schedule @p fn on @p dst, which may be another shard.  Inside a
     * quantum a genuinely cross-shard event parks in the executing
     * shard's outbox and is delivered at the next barrier at tick
     * max(when, quantum end); an event whose destination is the
     * executing shard itself is delivered directly at max(when, now)
     * with no quantisation (same-shard ordering is already serial and
     * deterministic).  From setup / barrier context delivery is
     * immediate at max(when, current boundary).
     */
    void scheduleCross(unsigned dst, Cycle when, Handler fn);

    /**
     * Single-threaded hook invoked at every quantum boundary (after
     * outbox delivery), with the boundary tick.  Admission control
     * and cross-shard scans live here.
     */
    void setBarrierHook(std::function<void(Cycle)> hook);

    /** Dispatch until every queue and outbox drains (and the barrier
     *  hook stops producing work). */
    void run();

    /** Current tick of the executing shard (handler context only). */
    Cycle now() const;

    /** Executing shard index, or -1 outside handler context. */
    int currentShard() const;

    std::uint64_t dispatched() const;
    std::uint64_t quanta() const { return quanta_; }
    std::uint64_t crossDelivered() const { return cross_delivered_; }

    /** Wall-clock nanoseconds per executed quantum (p50/p99 for the
     *  shard-scaling bench). */
    const Histogram &quantumWallNanos() const { return quantum_ns_; }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Handler fn;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    /** Cross-shard event parked in its source shard's outbox. */
    struct CrossEvent
    {
        unsigned dst;
        Cycle when;
        Handler fn;
    };

    struct Shard
    {
        std::priority_queue<Event, std::vector<Event>,
                            std::greater<Event>>
            queue;
        std::uint64_t seq = 0;
        std::uint64_t dispatched = 0;
        std::vector<CrossEvent> outbox;
        /** Lazily-interned per-shard telemetry histogram
         *  (sched.quantum_wall_ns.shard<N>); only touched while
         *  telemetry is live.  Cached here so the hot path pays one
         *  pointer test, not a map lookup.  Safe without atomics:
         *  one thread runs a shard per quantum and the barrier's
         *  release/acquire pair publishes the write. */
        obs::StreamingHistogram *telemetry_hist = nullptr;
    };

    void pushEvent(unsigned shard, Cycle when, Handler fn);
    void runShard(unsigned shard, Cycle quantum_end);
    void executeQuantum(Cycle quantum_end);
    void deliverOutboxes(Cycle boundary);
    Cycle earliestPending() const;

    void workerLoop();

    unsigned nshards_;
    unsigned nthreads_;
    Cycle quantum_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::function<void(Cycle)> hook_;

    bool in_parallel_ = false;   //!< inside a quantum (worker ctx)
    Cycle barrier_tick_ = 0;     //!< last completed quantum boundary
    std::uint64_t quanta_ = 0;
    std::uint64_t cross_delivered_ = 0;
    Histogram quantum_ns_;
    /** Dispatch total already published to the telemetry registry;
     *  lets the barrier publish per-quantum deltas. */
    std::uint64_t telemetry_dispatched_ = 0;

    // ---- worker pool (threads > 1 only) ------------------------------
    // Quanta are microseconds apart, so workers first spin on the
    // generation counter (hybrid barrier) and only fall back to the
    // condvar when a barrier hook runs long (job admission builds
    // devices).  Every worker checks in via workers_done_ each
    // quantum -- even with zero shards stolen -- so the main thread
    // never republishes pool_quantum_end_ / next_shard_ while a
    // straggler could still read them for the previous quantum.
    // Shard-state visibility is carried by the release/acquire pairs
    // on generation_ (main -> workers) and workers_done_ (workers ->
    // main).
    std::vector<std::thread> pool_;
    std::mutex pool_mu_;
    std::condition_variable pool_cv_;
    std::condition_variable done_cv_;
    std::atomic<std::uint64_t> generation_{0};
    Cycle pool_quantum_end_ = 0;
    std::atomic<unsigned> next_shard_{0};
    std::atomic<unsigned> workers_done_{0};
    std::atomic<bool> stopping_{false};
};

/**
 * RAII tag marking the executing shard for obs tracing: trace events
 * emitted while the tag is live carry the shard id instead of the
 * thread id (obs::setTraceShard).
 */
class ScopedTraceShard
{
  public:
    explicit ScopedTraceShard(int shard);
    ~ScopedTraceShard();

    ScopedTraceShard(const ScopedTraceShard &) = delete;
    ScopedTraceShard &operator=(const ScopedTraceShard &) = delete;

  private:
    int prev_;
};

} // namespace mgmee::sim

#endif // MGMEE_SIM_SCHEDULER_HH
