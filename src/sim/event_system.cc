#include "sim/event_system.hh"

#include "common/logging.hh"

namespace mgmee {

namespace {

/**
 * One shard, one thread: the quantum only sets the barrier cadence
 * (all scheduling is same-shard, so nothing is ever quantised) --
 * make it large so the run is one long quantum.
 */
sim::SchedulerConfig
twinConfig()
{
    sim::SchedulerConfig cfg;
    cfg.shards = 1;
    cfg.threads = 1;
    cfg.quantum = Cycle{1} << 20;
    return cfg;
}

} // namespace

EventDrivenSystem::EventDrivenSystem(
    std::vector<Device> devices,
    std::unique_ptr<TimingEngine> engine, const MemCtrlConfig &mem_cfg)
    : devices_(std::move(devices)), engine_(std::move(engine)),
      mem_(mem_cfg), sched_(twinConfig())
{
    fatal_if(devices_.empty(), "event system needs >=1 device");
    fatal_if(!engine_, "event system needs an engine");
}

void
EventDrivenSystem::issueNext(std::size_t d)
{
    Device &dev = devices_[d];
    if (dev.done())
        return;

    last_event_ = std::max(last_event_, sched_.now());
    const MemRequest req = dev.makeRequest();
    const Cycle done = engine_->access(req, mem_);
    dev.complete(done);

    if (!dev.done()) {
        // nextIssue() can trail the current tick (zero-latency
        // follow-up); the legacy EventQueue dispatched those
        // immediately, which clamping reproduces.
        sched_.schedule(0, std::max(dev.nextIssue(), sched_.now()),
                        [this, d]() { issueNext(d); });
    }
}

void
EventDrivenSystem::run()
{
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (!devices_[d].done()) {
            sched_.schedule(0, devices_[d].nextIssue(),
                            [this, d]() { issueNext(d); });
        }
    }
    sched_.run();
    engine_->kernelBoundary(last_event_, mem_);
}

std::vector<Cycle>
EventDrivenSystem::deviceFinishTimes() const
{
    std::vector<Cycle> times;
    times.reserve(devices_.size());
    for (const Device &dev : devices_)
        times.push_back(dev.finishTime());
    return times;
}

} // namespace mgmee
