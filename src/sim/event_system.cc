#include "sim/event_system.hh"

#include "common/logging.hh"

namespace mgmee {

EventDrivenSystem::EventDrivenSystem(
    std::vector<Device> devices,
    std::unique_ptr<TimingEngine> engine, const MemCtrlConfig &mem_cfg)
    : devices_(std::move(devices)), engine_(std::move(engine)),
      mem_(mem_cfg)
{
    fatal_if(devices_.empty(), "event system needs >=1 device");
    fatal_if(!engine_, "event system needs an engine");
}

void
EventDrivenSystem::issueNext(std::size_t d)
{
    Device &dev = devices_[d];
    if (dev.done())
        return;

    const MemRequest req = dev.makeRequest();
    const Cycle done = engine_->access(req, mem_);
    dev.complete(done);

    if (!dev.done()) {
        queue_.schedule(dev.nextIssue(),
                        [this, d]() { issueNext(d); });
    }
}

void
EventDrivenSystem::run()
{
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (!devices_[d].done()) {
            queue_.schedule(devices_[d].nextIssue(),
                            [this, d]() { issueNext(d); });
        }
    }
    queue_.run();
    engine_->kernelBoundary(queue_.now(), mem_);
}

std::vector<Cycle>
EventDrivenSystem::deviceFinishTimes() const
{
    std::vector<Cycle> times;
    times.reserve(devices_.size());
    for (const Device &dev : devices_)
        times.push_back(dev.finishTime());
    return times;
}

} // namespace mgmee
