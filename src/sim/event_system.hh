/**
 * @file
 * Event-driven variant of the heterogeneous system.
 *
 * Each device is driven by issue events: when a device's next trace
 * op becomes eligible (compute gap elapsed AND an outstanding-request
 * slot is free), an event fires that pushes the request through the
 * protection engine and schedules the follow-up issue event.  The
 * observable behaviour (per-device finish times, traffic) must match
 * hetero/HeteroSystem, which dispatches the same requests in global
 * issue order without a queue -- the cross-check that validates the
 * fast model.
 */

#ifndef MGMEE_SIM_EVENT_SYSTEM_HH
#define MGMEE_SIM_EVENT_SYSTEM_HH

#include <memory>
#include <vector>

#include "devices/device.hh"
#include "mee/timing_engine.hh"
#include "mem/mem_ctrl.hh"
#include "sim/scheduler.hh"

namespace mgmee {

/**
 * Event-driven SoC runner (validation twin of HeteroSystem), hosted
 * on a single shard of sim::Scheduler -- the same dispatch core the
 * sharded sweeps use, so the cross-validation also pins the
 * scheduler's (tick, seq) ordering against the closed-loop model.
 */
class EventDrivenSystem
{
  public:
    EventDrivenSystem(std::vector<Device> devices,
                      std::unique_ptr<TimingEngine> engine,
                      const MemCtrlConfig &mem_cfg = {});

    /** Run all devices to completion. */
    void run();

    std::vector<Cycle> deviceFinishTimes() const;

    const MemCtrl &mem() const { return mem_; }
    const TimingEngine &engine() const { return *engine_; }
    const sim::Scheduler &scheduler() const { return sched_; }

  private:
    /** Issue the next op of device @p d, then schedule its follower. */
    void issueNext(std::size_t d);

    std::vector<Device> devices_;
    std::unique_ptr<TimingEngine> engine_;
    MemCtrl mem_;
    sim::Scheduler sched_;
    Cycle last_event_ = 0;  //!< tick of the last dispatched issue
};

} // namespace mgmee

#endif // MGMEE_SIM_EVENT_SYSTEM_HH
