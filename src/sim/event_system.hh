/**
 * @file
 * Event-driven variant of the heterogeneous system.
 *
 * Each device is driven by issue events: when a device's next trace
 * op becomes eligible (compute gap elapsed AND an outstanding-request
 * slot is free), an event fires that pushes the request through the
 * protection engine and schedules the follow-up issue event.  The
 * observable behaviour (per-device finish times, traffic) must match
 * hetero/HeteroSystem, which dispatches the same requests in global
 * issue order without a queue -- the cross-check that validates the
 * fast model.
 */

#ifndef MGMEE_SIM_EVENT_SYSTEM_HH
#define MGMEE_SIM_EVENT_SYSTEM_HH

#include <memory>
#include <vector>

#include "devices/device.hh"
#include "mee/timing_engine.hh"
#include "mem/mem_ctrl.hh"
#include "sim/event_queue.hh"

namespace mgmee {

/** Event-driven SoC runner (validation twin of HeteroSystem). */
class EventDrivenSystem
{
  public:
    EventDrivenSystem(std::vector<Device> devices,
                      std::unique_ptr<TimingEngine> engine,
                      const MemCtrlConfig &mem_cfg = {});

    /** Run all devices to completion. */
    void run();

    std::vector<Cycle> deviceFinishTimes() const;

    const MemCtrl &mem() const { return mem_; }
    const TimingEngine &engine() const { return *engine_; }
    const EventQueue &queue() const { return queue_; }

  private:
    /** Issue the next op of device @p d, then schedule its follower. */
    void issueNext(std::size_t d);

    std::vector<Device> devices_;
    std::unique_ptr<TimingEngine> engine_;
    MemCtrl mem_;
    EventQueue queue_;
};

} // namespace mgmee

#endif // MGMEE_SIM_EVENT_SYSTEM_HH
