/**
 * @file
 * Minimal gem5-style discrete-event simulation core.
 *
 * The evaluation harness uses a closed-loop issue-order model
 * (hetero/HeteroSystem) because it is fast enough for 250-scenario
 * sweeps.  This event queue backs an alternative, fully event-driven
 * runner (sim/EventDrivenSystem) used to cross-validate that model:
 * both must agree on device finish times within a tight bound
 * (tests/event_sim_test.cc).
 */

#ifndef MGMEE_SIM_EVENT_QUEUE_HH
#define MGMEE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace mgmee {

/** Discrete-event queue with deterministic tie-breaking. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Schedule @p handler at absolute cycle @p when. */
    void
    schedule(Cycle when, Handler handler)
    {
        events_.push(Event{when, seq_++, std::move(handler)});
    }

    /** Current simulated time (last dispatched event's cycle). */
    Cycle now() const { return now_; }

    bool empty() const { return events_.empty(); }

    /** Dispatch events in (cycle, insertion) order until drained. */
    void
    run()
    {
        while (!events_.empty()) {
            // Copy out before pop: the handler may schedule more.
            Event ev = events_.top();
            events_.pop();
            now_ = ev.when;
            ev.handler();
            ++dispatched_;
        }
    }

    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;   //!< FIFO among same-cycle events
        Handler handler;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        events_;
    std::uint64_t seq_ = 0;
    std::uint64_t dispatched_ = 0;
    Cycle now_ = 0;
};

} // namespace mgmee

#endif // MGMEE_SIM_EVENT_QUEUE_HH
