/**
 * @file
 * Dynamic functional secure memory: couples SecureMemory with the
 * access tracker and Algorithm-1 detection so granularity adapts to
 * the observed access pattern automatically, exactly as the hardware
 * in Fig. 11 would.
 *
 * (The promotion/demotion member functions of SecureMemory itself are
 * also implemented in this translation unit -- see
 * SecureMemory::applyStreamPart.)
 */

#ifndef MGMEE_CORE_MULTIGRAN_MEMORY_HH
#define MGMEE_CORE_MULTIGRAN_MEMORY_HH

#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/access_tracker.hh"
#include "mee/secure_memory.hh"

namespace mgmee {

/**
 * SecureMemory with dynamic granularity detection.  Every access is
 * fed to the access tracker; detection results are installed as
 * *pending* maps and applied lazily on the chunk's next access,
 * mirroring the lazy-switching design of Sec. 4.4.
 */
class DynamicSecureMemory
{
  public:
    DynamicSecureMemory(std::size_t data_bytes,
                        const SecureMemory::Keys &keys,
                        const AccessTrackerConfig &tcfg = {});

    /** Write with automatic pattern tracking at cycle @p now. */
    SecureMemory::Status write(Addr addr,
                               std::span<const std::uint8_t> data,
                               Cycle now);

    /** Read with automatic pattern tracking at cycle @p now. */
    SecureMemory::Status read(Addr addr, std::span<std::uint8_t> out,
                              Cycle now);

    /** Underlying functional memory (for inspection in tests). */
    SecureMemory &memory() { return mem_; }
    const SecureMemory &memory() const { return mem_; }

    AccessTracker &tracker() { return tracker_; }

    /** Pending (detected but not yet applied) map of @p chunk. */
    StreamPart pending(std::uint64_t chunk) const;

    /**
     * Kernel/phase boundary: settle deferred node-MAC refreshes so
     * the off-chip metadata image is fully written back.
     */
    void kernelBoundary() { mem_.flushMetadata(); }

    /** Number of lazy switches applied so far. */
    std::uint64_t switchesApplied() const { return switches_; }

  private:
    void track(Addr addr, std::size_t bytes, Cycle now);
    void resolvePending(Addr addr, std::size_t bytes);

    SecureMemory mem_;
    AccessTracker tracker_;
    std::unordered_map<std::uint64_t, StreamPart> pending_;
    std::uint64_t switches_ = 0;
};

} // namespace mgmee

#endif // MGMEE_CORE_MULTIGRAN_MEMORY_HH
