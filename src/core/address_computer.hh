/**
 * @file
 * Granularity-aware address computation for merged MACs and promoted
 * counters (Sec. 4.3, Eqs. 1-4 and Fig. 9).
 *
 * MACs: inside each 32KB chunk, coarse regions contribute one MAC and
 * fine partitions contribute eight; all MACs are compacted to the
 * front of the chunk's MAC slab in data-address order, removing the
 * fragmentation of Fig. 9.  Across chunks the slab base assumes every
 * earlier chunk is finest-grained (512 MACs per chunk), so
 * Addr_MAC = Base + Idx * 8  (Eq. 1) with Idx = chunk*512 + intra.
 *
 * Counters: a unit of granularity g uses the counter `promotionLevels(g)`
 * levels above its leaf (Eq. 2/3: Idx = Ancestor^k(leaf index)), whose
 * line address follows Eq. 4.
 */

#ifndef MGMEE_CORE_ADDRESS_COMPUTER_HH
#define MGMEE_CORE_ADDRESS_COMPUTER_HH

#include <cstdint>

#include "core/granularity.hh"
#include "tree/layout.hh"

namespace mgmee {

/** Location of the counter protecting a data address. */
struct CounterLoc
{
    unsigned level = 0;        //!< tree level (0 = leaf)
    std::uint64_t index = 0;   //!< counter index within the level
    Addr line_addr = 0;        //!< metadata line holding the counter
    /**
     * True when the promoted counter lands in (or above) the on-chip
     * root node, so no memory fetch is needed at all.  Happens for
     * coarse granularities over small protected regions.
     */
    bool on_chip = false;
};

/** Location of the MAC protecting a data address. */
struct MacLoc
{
    std::uint64_t index = 0;   //!< flat MAC index (Eq. 1 Idx)
    Addr line_addr = 0;        //!< MAC-region line holding the MAC
};

/** Resolves metadata addresses under a given stream-partition map. */
class AddressComputer
{
  public:
    explicit AddressComputer(const MetadataLayout &layout)
        : layout_(layout) {}

    /**
     * MAC location for @p data_addr when its chunk is configured with
     * @p sp.  The returned index accounts for intra-chunk compaction.
     */
    MacLoc macLoc(Addr data_addr, StreamPart sp) const;

    /**
     * Number of MACs the chunk stores under @p sp (1..512); the
     * compacted slab occupies ceil(n/8) MAC lines.
     */
    static std::uint64_t macsPerChunk(StreamPart sp);

    /** Intra-chunk compacted MAC index of @p data_addr under @p sp. */
    static std::uint64_t intraChunkMacIndex(Addr data_addr,
                                            StreamPart sp);

    /**
     * Counter location for @p data_addr at granularity implied by
     * @p sp (Eqs. 2-4).
     */
    CounterLoc counterLoc(Addr data_addr, StreamPart sp) const;

    /** Counter location for an explicit granularity. */
    CounterLoc counterLocAt(Addr data_addr, Granularity g) const;

  private:
    const MetadataLayout &layout_;
};

} // namespace mgmee

#endif // MGMEE_CORE_ADDRESS_COMPUTER_HH
