#include "core/access_tracker.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace mgmee {

StreamPart
detectGranularity(
    const std::array<std::uint64_t, kLinesPerChunk / 64> &access_bits)
{
    // Algorithm 1: split the 512 access bits into 64 partitions of 8
    // bits; a partition whose bits are all set is a stream partition.
    StreamPart stream_part = 0;
    for (unsigned part = 0; part < kPartitionsPerChunk; ++part) {
        const unsigned word = part / 8;     // 8 partitions per word
        const unsigned shift = (part % 8) * 8;
        const std::uint64_t p = (access_bits[word] >> shift) & 0xff;
        if (p == 0xff)
            stream_part |= StreamPart{1} << part;
    }
    return stream_part;
}

AccessTracker::AccessTracker(const AccessTrackerConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg.entries == 0, "access tracker needs >=1 entry");
    entries_.resize(cfg_.entries);
}

void
AccessTracker::evict(Entry &entry, EvictCause cause, Cycle now)
{
    if (!entry.valid)
        return;
    unsigned touched = 0;
    for (std::uint64_t word : entry.bits)
        touched += popcount64(word);
    StreamPart touched_parts = 0;
    for (unsigned part = 0; part < kPartitionsPerChunk; ++part) {
        const std::uint64_t p =
            (entry.bits[part / 8] >> ((part % 8) * 8)) & 0xff;
        if (p != 0)
            touched_parts |= StreamPart{1} << part;
    }
    OBS_EVENT(obs::EventKind::TrackerEvict, now, entry.chunk, touched,
              static_cast<std::uint8_t>(cause));
    if (callback_) {
        callback_({entry.chunk, detectGranularity(entry.bits),
                   touched_parts, touched});
    }
    entry = Entry{};
    ++evictions_;
}

void
AccessTracker::expire(Cycle now)
{
    for (auto &entry : entries_) {
        if (entry.valid && now - entry.allocated > cfg_.lifetime)
            evict(entry, EvictCause::Lifetime, now);
    }
}

void
AccessTracker::recordAccess(Addr addr, Cycle now)
{
    ++accesses_;
    expire(now);

    const std::uint64_t chunk = chunkIndex(addr);
    const unsigned line = lineInChunk(addr);

    Entry *lru = &entries_[0];
    Entry *target = nullptr;
    for (auto &entry : entries_) {
        if (entry.valid && entry.chunk == chunk) {
            target = &entry;
            break;
        }
        if (!entry.valid) {
            lru = &entry;
        } else if (lru->valid && entry.last_use < lru->last_use) {
            lru = &entry;
        }
    }

    if (!target) {
        // Allocate, evicting the LRU victim if necessary.
        evict(*lru, EvictCause::Capacity, now);
        target = lru;
        target->valid = true;
        target->chunk = chunk;
        target->allocated = now;
        OBS_EVENT(obs::EventKind::TrackerAlloc, now, chunk, 0, 0);
    }

    target->bits[line / 64] |= std::uint64_t{1} << (line % 64);
    target->last_use = now;
    if (++target->count >= cfg_.max_accesses)
        evict(*target, EvictCause::Accesses, now);
}

void
AccessTracker::flush()
{
    for (auto &entry : entries_)
        evict(entry, EvictCause::Flush, entry.last_use);
}

} // namespace mgmee
