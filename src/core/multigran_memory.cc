#include "core/multigran_memory.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mgmee {

// ---- SecureMemory::applyStreamPart -------------------------------------
//
// Granularity reconfiguration of one chunk (Sec. 4.3/4.4, Fig. 13):
//  - promotion: the new shared counter becomes max(children)+1 (a
//    never-used value), the unit is re-encrypted under it, and every
//    counter/node below the promoted level is pruned;
//  - demotion: child counters are recreated with the parent's value
//    (no re-encryption needed -- every line's effective counter value
//    is unchanged);
//  - afterwards the chunk's MAC slab is rebuilt compacted (Fig. 9).

void
SecureMemory::applyStreamPart(std::uint64_t chunk, StreamPart new_sp)
{
    const StreamPart old_sp = streamPart(chunk);
    if (old_sp == new_sp) {
        stream_parts_[chunk] = new_sp;
        return;
    }
    ensureChunkInitialized(chunk);

    const Addr base = chunk * kChunkBytes;
    const unsigned levels = layout_.geometry().levels();

    auto promote = [&](Addr ubase, Granularity g_new) {
        const unsigned p_new = promotionLevels(g_new);
        const std::uint64_t lines = unitLines(g_new);
        const std::uint64_t first_leaf = lineIndex(ubase);

        // Decrypt under the old counters before anything moves.
        std::vector<std::uint8_t> plain(lines * kCachelineBytes);
        decryptLines(ubase, lines, plain.data());

        std::uint64_t maxv = 0;
        for (std::uint64_t l = 0; l < lines; ++l) {
            maxv = std::max(
                maxv, effectiveCounter(ubase + l * kCachelineBytes));
        }

        // Prune every counter and node MAC below the promoted level.
        for (unsigned lvl = 0; lvl < p_new && lvl < levels; ++lvl) {
            const std::uint64_t cnt = lines >> (3 * lvl);
            const std::uint64_t start = first_leaf >> (3 * lvl);
            for (std::uint64_t i = start; i < start + cnt; ++i)
                eraseCounter(lvl, i);
            for (std::uint64_t n = start / kTreeArity;
                 n < start / kTreeArity + cnt / kTreeArity; ++n)
                eraseNodeMac(lvl, n);
        }

        const std::uint64_t idx = first_leaf >> (3 * p_new);
        const std::uint64_t newv = maxv + 1;
        setCounterAndPropagate(p_new, idx, newv);

        // Re-encrypt the whole unit under the shared counter: the
        // lines are consecutive and share newv, so each tile of pads
        // is one batched sequential AES call.
        constexpr std::size_t kTile = 64;
        std::array<Pad, kTile> pads;
        for (std::uint64_t done = 0; done < lines;) {
            const std::uint64_t n =
                std::min<std::uint64_t>(kTile, lines - done);
            otp_.makePadsSeq(ubase + done * kCachelineBytes, n, newv,
                             pads.data());
            for (std::uint64_t l = 0; l < n; ++l) {
                const Addr la = ubase + (done + l) * kCachelineBytes;
                auto &line = cipherLine(la);
                std::memcpy(line.data(),
                            plain.data() +
                                (done + l) * kCachelineBytes,
                            kCachelineBytes);
                OtpGenerator::applyPad(pads[l], line.data());
            }
            done += n;
        }
    };

    auto demote = [&](Addr ubase, Granularity g_old) {
        const unsigned p_old = promotionLevels(g_old);
        const std::uint64_t lines = unitLines(g_old);
        const std::uint64_t first_leaf = lineIndex(ubase);
        const CounterLoc loc = addr_.counterLocAt(ubase, g_old);
        const std::uint64_t shared = counterAt(loc.level, loc.index);

        // Recreate counters below the old level wherever the new
        // configuration keeps that level alive, with the parent's
        // value (Fig. 13 (b): same value, no re-encryption).
        for (unsigned lvl = 0; lvl < p_old && lvl < levels; ++lvl) {
            const std::uint64_t cnt = lines >> (3 * lvl);
            const std::uint64_t start = first_leaf >> (3 * lvl);
            for (std::uint64_t i = start; i < start + cnt; ++i) {
                const Addr a = (i << (3 * lvl)) << kCachelineBits;
                const unsigned p_a = promotionLevels(
                    granularityOfAddr(new_sp, a));
                if (lvl >= p_a)
                    setCounterRaw(lvl, i, shared);
                else
                    eraseCounter(lvl, i);
            }
        }
        // Refresh node MACs bottom-up once all values are final --
        // live nodes collected level by level, recomputed in one
        // batched pass.
        std::vector<std::pair<unsigned, std::uint64_t>> live;
        for (unsigned lvl = 0; lvl < p_old && lvl < levels; ++lvl) {
            const std::uint64_t cnt = lines >> (3 * lvl);
            const std::uint64_t start = first_leaf >> (3 * lvl);
            for (std::uint64_t n = start / kTreeArity;
                 n < start / kTreeArity + cnt / kTreeArity; ++n) {
                bool any = false;
                for (unsigned c = 0; c < kTreeArity && !any; ++c)
                    any = hasCounter(lvl, n * kTreeArity + c);
                if (any)
                    live.emplace_back(lvl, n);
                else
                    eraseNodeMac(lvl, n);
            }
        }
        refreshNodeMacsBatched(live);
    };

    std::unordered_set<Addr> processed;
    for (unsigned part = 0; part < kPartitionsPerChunk; ++part) {
        const Addr pbase = base + part * kPartitionBytes;
        const Granularity g_old = granularityOfPartition(old_sp, part);
        const Granularity g_new = granularityOfPartition(new_sp, part);
        if (g_old == g_new)
            continue;
        if (g_new > g_old) {
            const Addr ubase = unitBase(pbase, g_new);
            if (processed.insert(ubase).second)
                promote(ubase, g_new);
        } else {
            const Addr ubase = unitBase(pbase, g_old);
            if (processed.insert(ubase).second)
                demote(ubase, g_old);
        }
    }

    stream_parts_[chunk] = new_sp;
    rebuildChunkMacs(chunk, new_sp);
    // The subtree was re-shaped (counters pruned/recreated, node MACs
    // moved): cached trust over it is stale, so the next access must
    // re-verify the whole path.
    invalidateSubtreeVerified(chunk);
}

// ---- DynamicSecureMemory -------------------------------------------------

DynamicSecureMemory::DynamicSecureMemory(std::size_t data_bytes,
                                         const SecureMemory::Keys &keys,
                                         const AccessTrackerConfig &tcfg)
    : mem_(data_bytes, keys), tracker_(tcfg)
{
    tracker_.setEvictCallback([this](const AccessTracker::Eviction &ev) {
        pending_[ev.chunk] = ev.stream_part;
    });
}

StreamPart
DynamicSecureMemory::pending(std::uint64_t chunk) const
{
    auto it = pending_.find(chunk);
    return it == pending_.end() ? mem_.streamPart(chunk) : it->second;
}

void
DynamicSecureMemory::track(Addr addr, std::size_t bytes, Cycle now)
{
    const Addr first = alignDown(addr, kCachelineBytes);
    const Addr last = alignDown(addr + (bytes ? bytes - 1 : 0),
                                kCachelineBytes);
    for (Addr la = first; la <= last; la += kCachelineBytes)
        tracker_.recordAccess(la, now);
}

void
DynamicSecureMemory::resolvePending(Addr addr, std::size_t bytes)
{
    const std::uint64_t first = chunkIndex(addr);
    const std::uint64_t last =
        chunkIndex(addr + (bytes ? bytes - 1 : 0));
    for (std::uint64_t c = first; c <= last; ++c) {
        auto it = pending_.find(c);
        if (it == pending_.end())
            continue;
        if (mem_.streamPart(c) != it->second) {
            mem_.applyStreamPart(c, it->second);
            ++switches_;
        }
        pending_.erase(it);
    }
}

SecureMemory::Status
DynamicSecureMemory::write(Addr addr,
                           std::span<const std::uint8_t> data,
                           Cycle now)
{
    resolvePending(addr, data.size());
    const auto st = mem_.write(addr, data);
    track(addr, data.size(), now);
    return st;
}

SecureMemory::Status
DynamicSecureMemory::read(Addr addr, std::span<std::uint8_t> out,
                          Cycle now)
{
    resolvePending(addr, out.size());
    const auto st = mem_.read(addr, out);
    track(addr, out.size(), now);
    return st;
}

} // namespace mgmee
