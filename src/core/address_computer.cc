#include "core/address_computer.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace mgmee {

std::uint64_t
AddressComputer::macsPerChunk(StreamPart sp)
{
    if (sp == kAllStream)
        return 1;
    std::uint64_t macs = 0;
    for (unsigned sub = 0; sub < kSubchunksPerChunk; ++sub) {
        const StreamPart mask = subchunkMask(sub);
        if ((sp & mask) == mask) {
            macs += 1;  // whole 4KB subchunk: one merged MAC
        } else {
            const unsigned streams =
                popcount64(bitsOf(sp, 8 * sub, 8));
            // stream partitions: 1 MAC each; fine partitions: 8 each.
            macs += streams + (8 - streams) * kLinesPerPartition;
        }
    }
    return macs;
}

std::uint64_t
AddressComputer::intraChunkMacIndex(Addr data_addr, StreamPart sp)
{
    if (sp == kAllStream)
        return 0;

    const unsigned my_sub = subInChunk(data_addr);
    const unsigned my_part = partInChunk(data_addr);
    std::uint64_t idx = 0;

    for (unsigned sub = 0; sub < kSubchunksPerChunk; ++sub) {
        const StreamPart mask = subchunkMask(sub);
        const bool whole_sub = (sp & mask) == mask;
        if (sub < my_sub) {
            if (whole_sub) {
                idx += 1;
            } else {
                const unsigned streams =
                    popcount64(bitsOf(sp, 8 * sub, 8));
                idx += streams + (8 - streams) * kLinesPerPartition;
            }
            continue;
        }
        // sub == my_sub
        if (whole_sub)
            return idx;  // the merged 4KB MAC
        for (unsigned p = 8 * sub; p < my_part; ++p)
            idx += isStreamPartition(sp, p) ? 1 : kLinesPerPartition;
        if (isStreamPartition(sp, my_part))
            return idx;  // the merged 512B MAC
        // Fine partition: one MAC per cacheline.
        const unsigned line_in_part =
            lineInChunk(data_addr) % kLinesPerPartition;
        return idx + line_in_part;
    }
    panic("unreachable: subchunk walk fell through");
}

MacLoc
AddressComputer::macLoc(Addr data_addr, StreamPart sp) const
{
    // Eq. 1 with Idx = 512 * chunk + compacted intra-chunk index:
    // earlier chunks are budgeted as if finest-grained.
    const std::uint64_t idx =
        chunkIndex(data_addr) * kLinesPerChunk +
        intraChunkMacIndex(data_addr, sp);
    return {idx, layout_.macLineAddr(idx)};
}

CounterLoc
AddressComputer::counterLocAt(Addr data_addr, Granularity g) const
{
    // Eq. 2: Parents = log_arity(granularity / 64B); Eq. 3: ancestor
    // of the leaf index; Eq. 4: line address within that level.
    const unsigned parents = promotionLevels(g);
    const std::uint64_t leaf = lineIndex(data_addr);
    const std::uint64_t idx = TreeGeometry::ancestorIndex(leaf, parents);
    if (parents >= layout_.geometry().levels())
        return {parents, idx, 0, true};
    return {parents, idx, layout_.counterLineAddr(parents, idx), false};
}

CounterLoc
AddressComputer::counterLoc(Addr data_addr, StreamPart sp) const
{
    return counterLocAt(data_addr, granularityOfAddr(sp, data_addr));
}

} // namespace mgmee
