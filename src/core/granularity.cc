#include "core/granularity.hh"

// All StreamPart helpers are constexpr in the header; this file exists
// to keep one translation unit per module and to host future
// non-inline helpers.

namespace mgmee {
} // namespace mgmee
