/**
 * @file
 * The per-chunk stream-partition bitmap (`stream_part`) and the rules
 * deriving one of the four granularities from it.
 *
 * One bit per 512B partition of a 32KB chunk (64 bits total).  Bit i
 * set means partition i was detected as a *stream partition* (all 8 of
 * its cachelines touched within the detection window), so it is
 * protected at >=512B granularity.  Hierarchical coarsening (Sec. 4.4):
 *   - all 64 bits set           -> the whole chunk is 32KB-granular;
 *   - an aligned 8-bit group set -> that 4KB subchunk is 4KB-granular;
 *   - a single bit set           -> that partition is 512B-granular;
 *   - bit clear                  -> 64B (conventional) granularity.
 */

#ifndef MGMEE_CORE_GRANULARITY_HH
#define MGMEE_CORE_GRANULARITY_HH

#include <cstdint>

#include "common/types.hh"

namespace mgmee {

/** 64-bit stream-partition position map of one 32KB chunk. */
using StreamPart = std::uint64_t;

/** All partitions fine (the conventional default). */
constexpr StreamPart kAllFine = 0;
/** All partitions stream: the whole chunk is 32KB-granular. */
constexpr StreamPart kAllStream = ~StreamPart{0};

/** Bitmask covering the 8 partitions of 4KB subchunk @p sub. */
constexpr StreamPart
subchunkMask(unsigned sub)
{
    return StreamPart{0xff} << (8 * sub);
}

/** True iff partition @p part (0..63) is a stream partition. */
constexpr bool
isStreamPartition(StreamPart sp, unsigned part)
{
    return (sp >> part) & 1;
}

/** Granularity of the protection unit containing partition @p part. */
constexpr Granularity
granularityOfPartition(StreamPart sp, unsigned part)
{
    if (sp == kAllStream)
        return Granularity::Chunk32KB;
    const unsigned sub = part / kTreeArity;
    if ((sp & subchunkMask(sub)) == subchunkMask(sub))
        return Granularity::Sub4KB;
    if (isStreamPartition(sp, part))
        return Granularity::Part512B;
    return Granularity::Line64B;
}

/** Granularity of the unit protecting data address @p addr. */
constexpr Granularity
granularityOfAddr(StreamPart sp, Addr addr)
{
    return granularityOfPartition(sp, partInChunk(addr));
}

/**
 * Base data address of the protection unit containing @p addr at
 * granularity @p g.
 */
constexpr Addr
unitBase(Addr addr, Granularity g)
{
    return alignDown(addr, granularityBytes(g));
}

/** Cachelines per protection unit at granularity @p g. */
constexpr std::uint64_t
unitLines(Granularity g)
{
    return granularityBytes(g) / kCachelineBytes;
}

} // namespace mgmee

#endif // MGMEE_CORE_GRANULARITY_HH
