#include "core/multigran_engine.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace mgmee {

MultiGranEngine::MultiGranEngine(std::string name,
                                 std::size_t data_bytes,
                                 const MultiGranEngineConfig &cfg)
    : MeeTimingBase(std::move(name), data_bytes, cfg.timing),
      mcfg_(cfg), addr_comp_(layout_), table_(layout_),
      table_cache_(name_ + ".tbl", 2 * 1024, 8),
      tracker_(cfg.tracker),
      write_units_(cfg.timing.unit_buffer_entries,
                   cfg.timing.unit_buffer_window),
      write_gather_(cfg.timing.unit_buffer_entries,
                    cfg.timing.unit_buffer_window)
{
    tracker_.setEvictCallback([this](const AccessTracker::Eviction &ev) {
        detections_.push_back(ev);
    });
}

Granularity
MultiGranEngine::capGran(Granularity g) const
{
    if (!mcfg_.dual_only)
        return g;
    // Dual-granularity prior work: either fine or exactly the dual
    // size; intermediate detections cannot be represented.
    return g >= *mcfg_.dual_only ? *mcfg_.dual_only
                                 : Granularity::Line64B;
}

Granularity
MultiGranEngine::granOf(Addr addr, unsigned device) const
{
    if (!mcfg_.dynamic)
        return mcfg_.static_gran[device % mcfg_.static_gran.size()];
    const StreamPart sp = table_.current(chunkIndex(addr));
    return capGran(granularityOfAddr(sp, addr));
}

Addr
MultiGranEngine::macLineOf(Addr ubase, Granularity g_mac,
                           unsigned device) const
{
    std::uint64_t intra;
    if (mcfg_.dynamic) {
        // Exact compacted index under the chunk's current map
        // (Fig. 9 / Eq. 1).
        StreamPart sp = table_.current(chunkIndex(ubase));
        if (granularityOfAddr(sp, ubase) != g_mac) {
            // Flag-clamped (e.g. MAC-only schemes): approximate with
            // the uniform layout below.
            intra = lineInChunk(ubase) >>
                    (3 * promotionLevels(g_mac));
        } else {
            intra = AddressComputer::intraChunkMacIndex(ubase, sp);
        }
    } else {
        (void)device;
        // Uniform static granularity: units pack densely in order.
        intra = lineInChunk(ubase) >> (3 * promotionLevels(g_mac));
    }
    return layout_.macLineAddr(chunkIndex(ubase) * kLinesPerChunk +
                               intra);
}

Cycle
MultiGranEngine::touchTable(Addr line, bool is_write, Cycle now,
                            MemCtrl &mem)
{
    const CacheResult res = table_cache_.access(line, is_write);
    if (res.writeback) {
        mem.serve(now, res.victim_addr, kCachelineBytes, true,
                  Traffic::Table);
        stats_.add("table_writebacks");
    }
    if (res.hit)
        return now + cfg_.hit_latency;
    stats_.add("table_fetches");
    return mem.serve(now, line, kCachelineBytes, false,
                     Traffic::Table);
}

Cycle
MultiGranEngine::access(const MemRequest &req, MemCtrl &mem)
{
    const Cycle issue = req.issue;
    stats_.add(req.is_write ? "writes" : "reads");

    const bool skip_tree =
        !req.is_write && unused_.canSkipWalk(req.addr);
    unused_.markTouched(req.addr);

    const Addr first = alignDown(req.addr, kCachelineBytes);
    const Addr last = alignDown(req.addr + (req.bytes ? req.bytes - 1
                                                      : 0),
                                kCachelineBytes);

    // Granularity-table lookup: one protected-memory access per chunk
    // touched (16B entries, 4 per line -- high locality, Sec. 4.4).
    // The engine keeps the last entry in a register, so consecutive
    // requests to the same chunk cost nothing.
    if (mcfg_.dynamic) {
        for (std::uint64_t c = chunkIndex(first);
             c <= chunkIndex(last); ++c) {
            if (c == last_table_chunk_)
                continue;
            last_table_chunk_ = c;
            touchTable(table_.tableLineAddr(c), false, issue, mem);
        }
    }

    Cycle data_done = issue;
    Cycle ctr_done = issue;
    Cycle mac_done = issue;

    for (Addr span = alignDown(first, kPartitionBytes); span <= last;
         span += kPartitionBytes) {
        // ---- lazy switching (Table 2) --------------------------------
        // (Static engines also resolve: it maintains the per-
        // partition written bits that gate the read-only MAC rules.)
        {
            const GranResolution res =
                table_.resolveOnAccess(span, req.is_write);
            if (mcfg_.dynamic && res.switched) {
                stats_.add("switches");
                OBS_EVENT(res.to > res.from
                              ? obs::EventKind::GranPromote
                              : obs::EventKind::GranDemote,
                          issue, span, 0,
                          static_cast<std::uint8_t>(
                              (static_cast<unsigned>(res.from) << 4) |
                              static_cast<unsigned>(res.to)));
                unit_buffer_.invalidate(unitBase(span, res.from));
                write_units_.invalidate(unitBase(span, res.from));
                write_gather_.discard(unitBase(span, res.from));
            }
            if (mcfg_.dynamic && mcfg_.charge_switch_costs) {
                const SwitchCost cost =
                    switch_model_.apply(res, req.is_write);
                if (cost.fetch_parent_to_root && mcfg_.coarse_ctrs) {
                    const unsigned p = promotionLevels(
                        capGran(res.to));
                    ctr_done = std::max(
                        ctr_done,
                        readWalk(p, lineIndex(span) >> (3 * p), issue,
                                 mem));
                    stats_.add("switch_tree_fetches");
                }
                if (cost.mac_lines && mcfg_.coarse_macs) {
                    // Stashed fine MACs live in the unprotected
                    // region; fetch them directly.
                    mem.serve(issue, layout_.macLineAddr(
                                         layout_.fineMacIndex(span)),
                              cost.mac_lines * kCachelineBytes, false,
                              Traffic::Switch);
                    stats_.add("switch_mac_lines", cost.mac_lines);
                }
                if (cost.data_lines && mcfg_.coarse_macs) {
                    mem.serve(issue, unitBase(span, res.from),
                              cost.data_lines * kCachelineBytes,
                              false, Traffic::Switch);
                    stats_.add("switch_data_lines", cost.data_lines);
                }
            }
        }

        const Granularity g = granOf(span, req.device);
        const Granularity g_ctr =
            mcfg_.coarse_ctrs ? g : Granularity::Line64B;
        const Granularity g_mac =
            mcfg_.coarse_macs ? g : Granularity::Line64B;

        // ---- counters & tree -----------------------------------------
        if (!skip_tree) {
            if (g_ctr == Granularity::Line64B) {
                const std::uint64_t leaf = lineIndex(span);
                if (req.is_write) {
                    writeWalk(0, leaf, issue, mem);
                    noteCounterBump(0, leaf / kTreeArity, span,
                                    kPartitionBytes, issue, mem);
                } else {
                    ctr_done = std::max(
                        ctr_done, readWalk(0, leaf, issue, mem));
                }
            } else {
                const Addr ubase = unitBase(span, g_ctr);
                const CounterLoc loc =
                    addr_comp_.counterLocAt(ubase, g_ctr);
                if (req.is_write) {
                    // The shared counter bumps once per unit rewrite.
                    if (!write_units_.contains(ubase, issue)) {
                        write_units_.insert(ubase, issue, issue);
                        if (!loc.on_chip)
                            writeWalk(loc.level, loc.index, issue,
                                      mem);
                        noteCounterBump(loc.level, loc.index, ubase,
                                        granularityBytes(g_ctr),
                                        issue, mem);
                    }
                } else if (loc.on_chip) {
                    ctr_done = std::max(
                        ctr_done, issue + cfg_.hit_latency);
                } else {
                    ctr_done = std::max(
                        ctr_done, readWalk(loc.level, loc.index,
                                           issue, mem));
                }
            }
        }

        // ---- MACs ------------------------------------------------------
        if (g_mac == Granularity::Line64B) {
            const Addr mac_line =
                layout_.macLineAddr(layout_.fineMacIndex(span));
            mac_done = std::max(
                mac_done,
                touchMac(mac_line, req.is_write, issue, mem));
        } else {
            const Addr ubase = unitBase(span, g_mac);
            const Addr mac_line = macLineOf(ubase, g_mac, req.device);
            mac_done = std::max(
                mac_done,
                touchMac(mac_line, req.is_write, issue, mem));
            if (mcfg_.double_mac_store && req.is_write) {
                // Adaptive keeps the fine MACs too: extra update.
                touchMac(layout_.macLineAddr(
                             layout_.fineMacIndex(span)),
                         true, issue, mem);
                stats_.add("double_mac_updates");
            }
        }

        // ---- data ------------------------------------------------------
        const Addr span_lo = std::max<Addr>(span, req.addr);
        const Addr span_hi =
            std::min<Addr>(span + kPartitionBytes,
                           req.addr + req.bytes);
        if (req.is_write) {
            mem.serve(issue, span_lo,
                      static_cast<std::uint32_t>(span_hi - span_lo),
                      true);
            // Coarse units are re-encrypted / re-MACed wholesale: a
            // unit not fully rewritten within the gather window owes
            // a read-modify-write fetch of its missing lines.  With
            // dual MAC storage (Adaptive) and fine counters, lines
            // update independently and no RMW is needed.
            const bool rmw_ctr =
                mcfg_.coarse_ctrs && g != Granularity::Line64B;
            const bool rmw_mac = mcfg_.coarse_macs &&
                                 !mcfg_.double_mac_store &&
                                 g != Granularity::Line64B;
            if (rmw_ctr || rmw_mac) {
                rmw_scratch_.clear();
                write_gather_.add(unitBase(span, g), unitLines(g),
                                  (span_hi - span_lo) /
                                      kCachelineBytes,
                                  issue, rmw_scratch_);
                for (const auto &inc : rmw_scratch_) {
                    mem.serve(issue, inc.unit_base,
                              static_cast<std::uint32_t>(
                                  inc.missing_lines *
                                  kCachelineBytes),
                              false, Traffic::Rmw);
                    stats_.add("rmw_fetches");
                    stats_.add("rmw_lines", inc.missing_lines);
                }
            }
        } else if (g_mac != Granularity::Line64B &&
                   !mcfg_.double_mac_store) {
            // Verifying a merged MAC needs the whole unit: first
            // touch bulk-fetches it, later touches ride the buffer.
            // (Schemes that keep fine MACs alongside -- Adaptive --
            // verify lines individually and never overfetch.)
            const Addr ubase = unitBase(span, g_mac);
            const bool stream_start = span_lo == ubase;
            if (unit_buffer_.contains(ubase, issue)) {
                // Ride the in-flight transfer below.
            } else if (!stream_start &&
                       !table_.unitWritten(ubase, g_mac)) {
                // Sparse read of a read-only coarse unit: verify with
                // the constant fine MACs stashed in the unprotected
                // region (Table 2 "Negligible: fetch fine MACs").
                mac_done = std::max(
                    mac_done,
                    touchMac(layout_.macLineAddr(
                                 layout_.fineMacIndex(span)),
                             false, issue, mem));
                data_done = std::max(
                    data_done,
                    mem.serve(issue, span_lo,
                              static_cast<std::uint32_t>(span_hi -
                                                         span_lo),
                              false));
                stats_.add("ro_fine_verifies");
                continue;
            }
            if (!unit_buffer_.contains(ubase, issue)) {
                // The merged MAC nests every fine MAC of the unit, so
                // verification -- and therefore this access -- gates
                // on the whole unit arriving.  This is the
                // misprediction cost of Sec. 4.4: sparse touches of a
                // written coarse unit stall on a full-unit transfer.
                const Cycle bulk_done = mem.serve(
                    issue, ubase,
                    static_cast<std::uint32_t>(
                        granularityBytes(g_mac)),
                    false);
                unit_buffer_.insert(ubase, issue, bulk_done);
                data_done = std::max(data_done, bulk_done);
                stats_.add("bulk_fetches");
                stats_.add("bulk_lines", unitLines(g_mac));
                if (!stream_start)
                    stats_.add("mispredict_bulks");
            } else {
                // Ride the in-flight transfer: no new traffic, but
                // the data arrives with the bulk, not instantly.
                data_done = std::max(
                    data_done,
                    std::max(issue,
                             unit_buffer_.transferDone(ubase)) +
                        cfg_.hit_latency);
                stats_.add("bulk_rides");
            }
        } else {
            data_done = std::max(
                data_done,
                mem.serve(issue, span_lo,
                          static_cast<std::uint32_t>(span_hi -
                                                     span_lo),
                          false));
        }
    }

    // ---- pattern tracking & detection --------------------------------
    if (mcfg_.dynamic) {
        for (Addr la = first; la <= last; la += kCachelineBytes)
            tracker_.recordAccess(la, issue);
        for (const auto &ev : detections_) {
            const std::uint64_t chunk = ev.chunk;
            // The detection is evidence only for the partitions this
            // tracker entry observed; untouched partitions keep
            // their previous granularity.
            StreamPart merged =
                (table_.next(chunk) & ~ev.touched_parts) |
                (ev.stream_part & ev.touched_parts);
            // Cap the map per the dual-granularity ablation so the
            // pending state matches what granOf() can express.
            if (mcfg_.dual_only) {
                StreamPart capped = 0;
                if (*mcfg_.dual_only == Granularity::Chunk32KB) {
                    capped = merged == kAllStream ? kAllStream : 0;
                } else if (*mcfg_.dual_only == Granularity::Sub4KB) {
                    for (unsigned s = 0; s < kSubchunksPerChunk; ++s)
                        if ((merged & subchunkMask(s)) ==
                            subchunkMask(s))
                            capped |= subchunkMask(s);
                    if (capped == kAllStream)
                        capped &= ~subchunkMask(7);  // stay dual
                } else {
                    capped = merged;
                }
                merged = capped;
            }
            // Only spend a protected-memory write when the pending
            // map actually changes (no-op detections are free).
            if (table_.next(chunk) != merged) {
                table_.setNext(chunk, merged);
                touchTable(table_.tableLineAddr(chunk), true, issue,
                           mem);
                stats_.add("detections");
            }
        }
        detections_.clear();
    }

    if (req.is_write)
        return issue;  // posted

    Cycle done = std::max(data_done, ctr_done + cfg_.otp_latency) +
                 cfg_.xor_latency;
    done = std::max(done, mac_done) + cfg_.hash_latency;
    return done;
}

} // namespace mgmee
