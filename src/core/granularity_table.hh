/**
 * @file
 * The protected granularity table with lazy switching (Sec. 4.4).
 *
 * One entry per 32KB chunk holds *two* 64-bit stream-partition maps:
 * `current` (the layout metadata is actually organised under) and
 * `next` (the most recent detection result).  A partition's pending
 * transition is resolved lazily, on its next access, so most switches
 * piggyback on accesses that fetch the needed metadata anyway
 * (Table 2).  Entries are 16B; the table lives in a protected memory
 * region secured by a discrete fixed-64B tree, and its own accesses
 * are charged through the metadata cache by the engines.
 */

#ifndef MGMEE_CORE_GRANULARITY_TABLE_HH
#define MGMEE_CORE_GRANULARITY_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "core/granularity.hh"
#include "tree/layout.hh"

namespace mgmee {

/** Outcome of lazily resolving one partition's pending transition. */
struct GranResolution
{
    bool switched = false;         //!< a granularity change happened
    Granularity from = Granularity::Line64B;
    Granularity to = Granularity::Line64B;
    bool prev_was_write = false;   //!< last access type of partition
    bool partition_written = false;  //!< ever written (R/O MAC rule)
    bool first_access = false;     //!< partition never accessed before
};

/** Per-chunk current/next granularity state plus access history. */
class GranularityTable
{
  public:
    explicit GranularityTable(const MetadataLayout &layout)
        : layout_(layout) {}

    /** Current stream-partition map of @p chunk (all-fine default). */
    StreamPart
    current(std::uint64_t chunk) const
    {
        auto it = entries_.find(chunk);
        return it == entries_.end() ? kAllFine : it->second.current;
    }

    /** Pending map of @p chunk. */
    StreamPart
    next(std::uint64_t chunk) const
    {
        auto it = entries_.find(chunk);
        return it == entries_.end() ? kAllFine : it->second.next;
    }

    /** Install a detection result as the pending map (lazy switch). */
    void
    setNext(std::uint64_t chunk, StreamPart sp)
    {
        entries_[chunk].next = sp;
    }

    /**
     * Force @p chunk's current map (eager switch; used by tests and
     * by static-granularity baselines).
     */
    void
    setCurrent(std::uint64_t chunk, StreamPart sp)
    {
        auto &e = entries_[chunk];
        e.current = sp;
        e.next = sp;
    }

    /**
     * Resolve the pending transition (if any) of the partition
     * containing @p addr, record access history, and report what
     * happened so the caller can charge switching costs.
     */
    GranResolution resolveOnAccess(Addr addr, bool is_write);

    /** Address of the table line for @p chunk's 16B entry. */
    Addr
    tableLineAddr(std::uint64_t chunk) const
    {
        return layout_.granTableLineAddr(chunk);
    }

    /** Number of chunks with a non-default entry. */
    std::size_t populatedChunks() const { return entries_.size(); }

    /** Per-partition ever-written bits of @p chunk. */
    std::uint64_t
    writtenMask(std::uint64_t chunk) const
    {
        auto it = entries_.find(chunk);
        return it == entries_.end() ? 0 : it->second.written;
    }

    /** True if any partition of the unit at @p ubase was written. */
    bool
    unitWritten(Addr ubase, Granularity g) const
    {
        const std::uint64_t mask = writtenMask(chunkIndex(ubase));
        if (g == Granularity::Chunk32KB)
            return mask != 0;
        const unsigned first = partInChunk(ubase);
        const unsigned parts = static_cast<unsigned>(
            unitLines(g) / kLinesPerPartition);
        for (unsigned p = first; p < first + std::max(1u, parts); ++p)
            if ((mask >> p) & 1)
                return true;
        return false;
    }

  private:
    struct Entry
    {
        StreamPart current = kAllFine;
        StreamPart next = kAllFine;
        std::uint64_t written = 0;      //!< per-partition written bit
        std::uint64_t last_write = 0;   //!< last access type bit
        std::uint64_t accessed = 0;     //!< per-partition touched bit
    };

    const MetadataLayout &layout_;
    std::unordered_map<std::uint64_t, Entry> entries_;
};

} // namespace mgmee

#endif // MGMEE_CORE_GRANULARITY_TABLE_HH
