#include "core/granularity_table.hh"

namespace mgmee {

GranResolution
GranularityTable::resolveOnAccess(Addr addr, bool is_write)
{
    const std::uint64_t chunk = chunkIndex(addr);
    const unsigned part = partInChunk(addr);
    const std::uint64_t bit = std::uint64_t{1} << part;

    auto &e = entries_[chunk];

    GranResolution res;
    res.prev_was_write = (e.last_write & bit) != 0;
    res.partition_written = (e.written & bit) != 0;
    res.first_access = (e.accessed & bit) == 0;
    res.from = granularityOfPartition(e.current, part);

    if (e.current != e.next) {
        // Lazy switching: the pending map is adopted on the chunk's
        // first access after detection.  The switch cost is charged
        // per Table 2 based on how the *touched* partition
        // transitions; untouched partitions reorganise as part of
        // the same switching procedure.
        e.current = e.next;
    }
    res.to = granularityOfPartition(e.current, part);
    res.switched = res.from != res.to;

    e.accessed |= bit;
    if (is_write) {
        e.written |= bit;
        e.last_write |= bit;
    } else {
        e.last_write &= ~bit;
    }
    return res;
}

} // namespace mgmee
