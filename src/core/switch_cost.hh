/**
 * @file
 * Classification and costing of granularity-switching events
 * (Table 2 of the paper).
 *
 * Counter/tree rules:
 *   - coarse->fine (scale-down), any type: zero extra fetches -- the
 *     child counters inherit the parent value (lazy switching);
 *   - fine->coarse WAR/WAW: zero -- the write fetches to the root
 *     anyway;
 *   - fine->coarse RAR/RAW: fetch parent..root (RAW usually hits the
 *     metadata cache thanks to the preceding write).
 *
 * MAC rules:
 *   - coarse->fine on read-only data: fetch the stashed fine MACs;
 *   - coarse->fine on written data: fetch the whole data unit to
 *     recompute fine MACs;
 *   - fine->coarse: zero (nested hash folds the already-needed fine
 *     MACs; lazy switching).
 */

#ifndef MGMEE_CORE_SWITCH_COST_HH
#define MGMEE_CORE_SWITCH_COST_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "core/granularity.hh"
#include "core/granularity_table.hh"

namespace mgmee {

/** Table 2 counter/tree event categories. */
enum class CtrSwitchClass : std::uint8_t
{
    CorrectPrediction,   //!< fine-fine or coarse-coarse
    CoarseToFineAll,     //!< scale-down, all types: zero cost
    FineToCoarseWAR,     //!< zero (lazy)
    FineToCoarseWAW,     //!< zero (lazy)
    FineToCoarseRAR,     //!< fetch parent..root
    FineToCoarseRAW,     //!< fetch parent..root, likely cached
};

/** Table 2 MAC event categories. */
enum class MacSwitchClass : std::uint8_t
{
    CorrectPrediction,
    CoarseToFineReadOnly,   //!< fetch stashed fine MACs
    CoarseToFineWritten,    //!< fetch the whole data unit
    FineToCoarse,           //!< zero (lazy)
};

/** Physical work a switch event implies, in 64B lines. */
struct SwitchCost
{
    /** Walk tree nodes from the parent level up to the root. */
    bool fetch_parent_to_root = false;
    /** Fine-MAC lines to fetch (read-only scale-down). */
    std::uint64_t mac_lines = 0;
    /** Data lines to fetch for MAC recomputation (written scale-down). */
    std::uint64_t data_lines = 0;
};

/** Classifies resolutions and accumulates the Table 2 ratio stats. */
class SwitchCostModel
{
  public:
    CtrSwitchClass classifyCtr(const GranResolution &res,
                               bool is_write) const;
    MacSwitchClass classifyMac(const GranResolution &res) const;

    /**
     * Classify @p res (current access type @p is_write), tally the
     * stats, and return the implied fetch work.
     */
    SwitchCost apply(const GranResolution &res, bool is_write);

    /** Accumulated per-class counts (for bench/table2_switching). */
    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

    static const char *name(CtrSwitchClass c);
    static const char *name(MacSwitchClass c);

  private:
    StatGroup stats_{"switch"};
};

} // namespace mgmee

#endif // MGMEE_CORE_SWITCH_COST_HH
