/**
 * @file
 * Timing/traffic model of the multi-granular MAC & tree engine
 * ("Ours" in the paper), with configuration flags that also express
 * several of the evaluated schemes:
 *
 *  - coarse_ctrs + coarse_macs + dynamic            -> Ours
 *  - coarse_ctrs only                               -> Multi(CTR)-only
 *  - coarse_macs only + dual_only=4KB               -> Adaptive [56]
 *  - dynamic=false + per-device static granularity  -> Static-device-*
 *  - dual_only=<g>                                  -> dual-granularity
 *                                                      ablation (Fig. 20)
 *  - charge_switch_costs=false                      -> "w/o switching
 *                                                      overhead" (Fig. 20)
 *  - timing.root_cache_entries / unused_pruning     -> +BMF&Unused
 *
 * Cost model per request (Sec. 4.3/4.4):
 *  - fine regions behave exactly like the conventional engine;
 *  - a coarse unit shares one promoted counter (shorter tree walk,
 *    one metadata line per unit) and one merged MAC;
 *  - verifying a merged MAC requires the whole unit's data, so the
 *    first touch of a coarse unit performs a bulk fetch; subsequent
 *    touches within the validation window ride that transfer
 *    (UnitBuffer).  Sparse accesses to coarse units therefore pay the
 *    misprediction overfetch the paper describes;
 *  - lazy granularity switching is classified and charged per
 *    Table 2 via SwitchCostModel;
 *  - the granularity table itself lives in protected memory and is
 *    charged through the metadata cache.
 */

#ifndef MGMEE_CORE_MULTIGRAN_ENGINE_HH
#define MGMEE_CORE_MULTIGRAN_ENGINE_HH

#include <array>
#include <optional>
#include <vector>

#include "core/access_tracker.hh"
#include "core/address_computer.hh"
#include "core/granularity_table.hh"
#include "core/switch_cost.hh"
#include "mee/timing_engine.hh"

namespace mgmee {

/** Configuration of the multi-granular engine and its ablations. */
struct MultiGranEngineConfig
{
    TimingConfig timing;

    bool coarse_ctrs = true;   //!< multi-granular counters (tree)
    bool coarse_macs = true;   //!< multi-granular merged MACs
    bool dynamic = true;       //!< tracker + detection + lazy switch
    bool charge_switch_costs = true;
    /** Adaptive [56] stores coarse AND fine MACs side by side. */
    bool double_mac_store = false;
    /** Restrict to dual granularity {64B, g} (prior-work model). */
    std::optional<Granularity> dual_only;

    AccessTrackerConfig tracker;

    /** Per-device fixed granularity when dynamic == false. */
    std::array<Granularity, 8> static_gran{};
};

/** The unified multi-granular MAC & integrity-tree timing engine. */
class MultiGranEngine : public MeeTimingBase
{
  public:
    MultiGranEngine(std::string name, std::size_t data_bytes,
                    const MultiGranEngineConfig &cfg);

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

    const SwitchCostModel &switchModel() const { return switch_model_; }
    const GranularityTable &table() const { return table_; }
    const AccessTracker &tracker() const { return tracker_; }

    std::uint64_t
    securityCacheMisses() const override
    {
        return MeeTimingBase::securityCacheMisses() +
               table_cache_.misses();
    }

  private:
    /** Apply the dual-granularity cap (if any). */
    Granularity capGran(Granularity g) const;

    /** Effective granularity of the partition containing @p addr. */
    Granularity granOf(Addr addr, unsigned device) const;

    /** MAC line address of the unit at @p ubase / granularity. */
    Addr macLineOf(Addr ubase, Granularity g_mac, unsigned device) const;

    /** Access a granularity-table line through its dedicated cache. */
    Cycle touchTable(Addr line, bool is_write, Cycle now, MemCtrl &mem);

    MultiGranEngineConfig mcfg_;
    AddressComputer addr_comp_;
    GranularityTable table_;
    /**
     * Small dedicated cache for granularity-table lines (the table
     * lives in protected memory; a 2KB buffer alongside the metadata
     * cache keeps its high-locality entries from thrashing the tree
     * nodes -- Sec. 4.4 measures the table path at 0.3% overhead).
     */
    Cache table_cache_;
    AccessTracker tracker_;
    SwitchCostModel switch_model_;
    /** Gating of once-per-unit counter/MAC write updates. */
    UnitBuffer write_units_;
    /** Write-combining / RMW model for coarse-unit writes. */
    WriteGather write_gather_;
    std::vector<WriteGather::Incomplete> rmw_scratch_;
    /** Detection results pending table update (drained per access). */
    std::vector<AccessTracker::Eviction> detections_;
    /** Register-cached granularity-table entry (last chunk). */
    std::uint64_t last_table_chunk_ = ~std::uint64_t{0};
};

} // namespace mgmee

#endif // MGMEE_CORE_MULTIGRAN_ENGINE_HH
