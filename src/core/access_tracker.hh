/**
 * @file
 * The access tracker and granularity-detection engine (Sec. 4.4,
 * Fig. 12 and Algorithm 1).
 *
 * Each of the 12 entries records one 32KB chunk: a 49-bit chunk index
 * tag plus a 512-bit one-hot vector of touched cachelines.  An entry
 * is evicted when (a) its access count exceeds 512 accesses, (b) its
 * lifetime exceeds 16K cycles, or (c) capacity pressure selects it by
 * LRU.  On eviction, Algorithm 1 condenses the 512-bit vector into a
 * 64-bit stream-partition map: partition i is a stream partition iff
 * all 8 of its cacheline bits are set.
 */

#ifndef MGMEE_CORE_ACCESS_TRACKER_HH
#define MGMEE_CORE_ACCESS_TRACKER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "core/granularity.hh"

namespace mgmee {

/** Configuration of the access tracker (paper defaults). */
struct AccessTrackerConfig
{
    /** 3 x (# processing units) = 12 entries (Sec. 4.4). */
    unsigned entries = 12;
    /** Entry lifetime before forced eviction. */
    Cycle lifetime = 16 * 1024;
    /** Access-count eviction threshold (32KB / 64B). */
    unsigned max_accesses = kLinesPerChunk;
};

/**
 * Algorithm 1: condense a 512-bit access vector into the 64-bit
 * stream-partition map.
 */
StreamPart detectGranularity(
    const std::array<std::uint64_t, kLinesPerChunk / 64> &access_bits);

/** Hardware access tracker with LRU entry management. */
class AccessTracker
{
  public:
    /** 512 access bits as 8 x 64-bit words. */
    using BitVector = std::array<std::uint64_t, kLinesPerChunk / 64>;

    /** Eviction result delivered to the detection engine. */
    struct Eviction
    {
        std::uint64_t chunk;     //!< chunk index
        StreamPart stream_part;  //!< Algorithm-1 output
        /**
         * Partitions with at least one access in this entry.  The
         * detection is evidence only for these; untouched partitions
         * keep their previous granularity in the table.
         */
        StreamPart touched_parts;
        unsigned touched_lines;  //!< popcount of the vector
    };

    using EvictCallback = std::function<void(const Eviction &)>;

    explicit AccessTracker(const AccessTrackerConfig &cfg = {});

    /**
     * Record a cacheline access at cycle @p now.  May trigger one or
     * more evictions (lifetime expiry of other entries, capacity).
     */
    void recordAccess(Addr addr, Cycle now);

    /** Evict everything (end of simulation). */
    void flush();

    void setEvictCallback(EvictCallback cb) { callback_ = std::move(cb); }

    /** On-chip storage the tracker occupies, in bits (Sec. 4.5). */
    static constexpr unsigned
    entryBits()
    {
        return kLinesPerChunk + 49;  // 512 access bits + chunk tag
    }

    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t accesses() const { return accesses_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t chunk = 0;
        BitVector bits{};
        unsigned count = 0;          //!< accesses recorded
        Cycle allocated = 0;         //!< allocation cycle (lifetime)
        Cycle last_use = 0;          //!< LRU stamp
    };

    /** Why an entry leaves the tracker (mirrors obs::EvictReason). */
    enum class EvictCause : std::uint8_t
    {
        Capacity = 0,
        Lifetime = 1,
        Accesses = 2,
        Flush = 3,
    };

    void evict(Entry &entry, EvictCause cause, Cycle now);
    void expire(Cycle now);

    AccessTrackerConfig cfg_;
    std::vector<Entry> entries_;
    EvictCallback callback_;
    std::uint64_t evictions_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace mgmee

#endif // MGMEE_CORE_ACCESS_TRACKER_HH
