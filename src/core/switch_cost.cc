#include "core/switch_cost.hh"

namespace mgmee {

CtrSwitchClass
SwitchCostModel::classifyCtr(const GranResolution &res,
                             bool is_write) const
{
    if (!res.switched)
        return CtrSwitchClass::CorrectPrediction;
    if (res.to < res.from)
        return CtrSwitchClass::CoarseToFineAll;
    // Scale-up: first letter is the current access, second the
    // previous access to the partition.
    if (is_write) {
        return res.prev_was_write ? CtrSwitchClass::FineToCoarseWAW
                                  : CtrSwitchClass::FineToCoarseWAR;
    }
    return res.prev_was_write ? CtrSwitchClass::FineToCoarseRAW
                              : CtrSwitchClass::FineToCoarseRAR;
}

MacSwitchClass
SwitchCostModel::classifyMac(const GranResolution &res) const
{
    if (!res.switched)
        return MacSwitchClass::CorrectPrediction;
    if (res.to > res.from)
        return MacSwitchClass::FineToCoarse;
    return res.partition_written ? MacSwitchClass::CoarseToFineWritten
                                 : MacSwitchClass::CoarseToFineReadOnly;
}

SwitchCost
SwitchCostModel::apply(const GranResolution &res, bool is_write)
{
    const CtrSwitchClass ctr = classifyCtr(res, is_write);
    const MacSwitchClass mac = classifyMac(res);
    stats_.add(std::string("ctr.") + name(ctr));
    stats_.add(std::string("mac.") + name(mac));

    SwitchCost cost;
    if (ctr == CtrSwitchClass::FineToCoarseRAR ||
        ctr == CtrSwitchClass::FineToCoarseRAW) {
        cost.fetch_parent_to_root = true;
    }
    // Costs are charged per resolution event, and events fire per
    // *touched partition* (lazy switching resolves the rest of the
    // region as its partitions are used), so each event pays for one
    // 512B partition's worth of reorganisation.
    if (mac == MacSwitchClass::CoarseToFineReadOnly) {
        // Fetch the stashed fine MACs of the demoted partition.
        cost.mac_lines = 1;
    } else if (mac == MacSwitchClass::CoarseToFineWritten) {
        // Refetch the partition's data to recompute its fine MACs.
        cost.data_lines = kLinesPerPartition;
    }
    return cost;
}

const char *
SwitchCostModel::name(CtrSwitchClass c)
{
    switch (c) {
      case CtrSwitchClass::CorrectPrediction: return "correct";
      case CtrSwitchClass::CoarseToFineAll: return "coarse_to_fine_all";
      case CtrSwitchClass::FineToCoarseWAR: return "fine_to_coarse_war";
      case CtrSwitchClass::FineToCoarseWAW: return "fine_to_coarse_waw";
      case CtrSwitchClass::FineToCoarseRAR: return "fine_to_coarse_rar";
      case CtrSwitchClass::FineToCoarseRAW: return "fine_to_coarse_raw";
    }
    return "?";
}

const char *
SwitchCostModel::name(MacSwitchClass c)
{
    switch (c) {
      case MacSwitchClass::CorrectPrediction: return "correct";
      case MacSwitchClass::CoarseToFineReadOnly:
        return "coarse_to_fine_ro";
      case MacSwitchClass::CoarseToFineWritten:
        return "coarse_to_fine_rw";
      case MacSwitchClass::FineToCoarse: return "fine_to_coarse";
    }
    return "?";
}

} // namespace mgmee
