/**
 * @file
 * Unused-memory-region pruning in the style of PENGLAI's mountable
 * trees (Feng et al., OSDI'21).
 *
 * Subtrees covering memory that was never written hold known-zero
 * counters, so reads of such regions need no tree traversal at all.
 * The filter tracks, per 32KB chunk, whether any write has "mounted"
 * its subtree.
 */

#ifndef MGMEE_SUBTREE_UNUSED_FILTER_HH
#define MGMEE_SUBTREE_UNUSED_FILTER_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"

namespace mgmee {

/** Tracks which chunks have ever been touched (tree "mounted"). */
class UnusedFilter
{
  public:
    explicit UnusedFilter(bool enabled = false) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** Record any access to @p addr; returns true if newly mounted. */
    bool
    markTouched(Addr addr)
    {
        if (!enabled_)
            return false;
        return mounted_.insert(chunkIndex(addr)).second;
    }

    /**
     * True if this access can skip the integrity walk because the
     * covering subtree was never mounted: its counters are known
     * zero, so there is nothing to verify yet.  Only the first touch
     * of a chunk qualifies; afterwards the subtree is mounted.
     */
    bool
    canSkipWalk(Addr addr) const
    {
        if (!enabled_)
            return false;
        return !mounted_.contains(chunkIndex(addr));
    }

    std::size_t mountedChunks() const { return mounted_.size(); }

  private:
    bool enabled_;
    std::unordered_set<std::uint64_t> mounted_;
};

} // namespace mgmee

#endif // MGMEE_SUBTREE_UNUSED_FILTER_HH
