#include "subtree/subtree_cache.hh"

#include "obs/trace.hh"

namespace mgmee {

bool
SubtreeRootCache::lookup(Addr node_line)
{
    if (!enabled())
        return false;
    ++lookups_;
    auto it = map_.find(node_line);
    if (it == map_.end()) {
        OBS_EVENT(obs::EventKind::SubtreeMiss, 0, node_line, 0, 0);
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    OBS_EVENT(obs::EventKind::SubtreeHit, 0, node_line, 0, 0);
    return true;
}

void
SubtreeRootCache::insert(Addr node_line)
{
    if (!enabled())
        return;
    auto it = map_.find(node_line);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= entries_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(node_line);
    map_[node_line] = lru_.begin();
}

} // namespace mgmee
