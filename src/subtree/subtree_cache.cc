#include "subtree/subtree_cache.hh"

namespace mgmee {

bool
SubtreeRootCache::lookup(Addr node_line)
{
    if (!enabled())
        return false;
    ++lookups_;
    auto it = map_.find(node_line);
    if (it == map_.end())
        return false;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
}

void
SubtreeRootCache::insert(Addr node_line)
{
    if (!enabled())
        return;
    auto it = map_.find(node_line);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= entries_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(node_line);
    map_[node_line] = lru_.begin();
}

} // namespace mgmee
