#include "subtree/unused_filter.hh"

// Header-only today; anchors the module's translation unit.

namespace mgmee {
} // namespace mgmee
