/**
 * @file
 * On-chip subtree-root cache in the style of Bonsai Merkle Forests
 * (Freij et al., MICRO'21).
 *
 * A small fully-associative LRU structure pins the tree nodes of hot
 * subtrees on-chip.  A verification walk that reaches a pinned node
 * stops there: the node is trusted, so the levels above need not be
 * fetched.  We pin nodes of one fixed level (default: level 3, whose
 * counters each cover 32KB), which matches the paper's use of
 * BMF for hot-region pruning (Fig. 3 (a)).
 */

#ifndef MGMEE_SUBTREE_SUBTREE_CACHE_HH
#define MGMEE_SUBTREE_SUBTREE_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.hh"

namespace mgmee {

/** Fully-associative LRU cache of trusted subtree-root node lines. */
class SubtreeRootCache
{
  public:
    /**
     * @param entries number of pinned roots (0 disables the cache)
     * @param level   tree level whose nodes are eligible for pinning
     */
    explicit SubtreeRootCache(unsigned entries = 0, unsigned level = 3)
        : entries_(entries), level_(level) {}

    /** Tree level whose nodes this cache pins. */
    unsigned level() const { return level_; }

    bool enabled() const { return entries_ != 0; }

    /** True (and refreshed as MRU) if @p node_line is pinned. */
    bool lookup(Addr node_line);

    /** Pin @p node_line, evicting the LRU root if full. */
    void insert(Addr node_line);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t lookups() const { return lookups_; }

  private:
    unsigned entries_;
    unsigned level_;
    std::list<Addr> lru_;  //!< front = MRU
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t lookups_ = 0;
};

} // namespace mgmee

#endif // MGMEE_SUBTREE_SUBTREE_CACHE_HH
