/**
 * @file
 * x86 SIMD crypto kernels, selected at runtime by crypto/dispatch.cc.
 *
 * Everything here is compiled with function-level `target` attributes
 * rather than per-file -m flags, so the translation unit builds on
 * any x86-64 baseline and the widest code only ever executes after
 * the CPUID probe below says the CPU (and, for YMM state, the OS)
 * can run it.  On non-x86 builds the kernel pointers are null and
 * the probes report false, so dispatch never leaves the portable
 * tier.
 *
 * Bit-identity: the AES kernels evaluate the exact FIPS-197 round
 * function (AESENC = ShiftRows+SubBytes+MixColumns+AddRoundKey, which
 * commutes with the portable SubBytes-then-ShiftRows ordering), and
 * the SipHash kernel runs the reference ARX schedule on four
 * independent 64-bit lanes of YMM registers.  tests/crypto_test.cc
 * enforces this against the portable code over random keys, lengths
 * and alignments.
 */

#include "crypto/dispatch.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#define MGMEE_X86_KERNELS 1
#include <cpuid.h>
#include <immintrin.h>
#endif

#include <cstring>

namespace mgmee::crypto::detail {

#ifdef MGMEE_X86_KERNELS

namespace {

// CPUID leaf-1 ECX bits.
constexpr unsigned kBitAesNi = 1u << 25;
constexpr unsigned kBitSsse3 = 1u << 9;
constexpr unsigned kBitOsxsave = 1u << 27;
// CPUID leaf-7 bits.
constexpr unsigned kBitAvx2 = 1u << 5;   // EBX
constexpr unsigned kBitVaes = 1u << 9;   // ECX

struct CpuFeatures {
    bool aesni = false;
    bool avx2 = false;
    bool vaes = false;
};

/** One raw probe: CPUID leaves 1 and 7 plus the XGETBV YMM check. */
CpuFeatures
probe()
{
    CpuFeatures f;
    unsigned a = 0, b = 0, c = 0, d = 0;
    if (!__get_cpuid(1, &a, &b, &c, &d))
        return f;
    f.aesni = (c & kBitAesNi) && (c & kBitSsse3);

    // YMM kernels additionally need the OS to context-switch the
    // upper register halves: OSXSAVE set and XCR0 SSE|YMM enabled.
    bool ymm_ok = false;
    if (c & kBitOsxsave) {
        unsigned eax, edx;
        __asm__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
        ymm_ok = (eax & 0x6) == 0x6;
    }

    unsigned a7 = 0, b7 = 0, c7 = 0, d7 = 0;
    if (ymm_ok && __get_cpuid_count(7, 0, &a7, &b7, &c7, &d7)) {
        f.avx2 = b7 & kBitAvx2;
        f.vaes = f.aesni && f.avx2 && (c7 & kBitVaes);
    }
    return f;
}

const CpuFeatures &
features()
{
    static const CpuFeatures f = probe();
    return f;
}

// ---- AES-128 ----------------------------------------------------------

__attribute__((target("aes,ssse3"))) inline __m128i
encryptOne(__m128i block, const __m128i k[11])
{
    block = _mm_xor_si128(block, k[0]);
    for (int r = 1; r <= 9; ++r)
        block = _mm_aesenc_si128(block, k[r]);
    return _mm_aesenclast_si128(block, k[10]);
}

__attribute__((target("aes,ssse3"))) void
aesBlocksAesni(const std::uint8_t *round_keys, std::uint8_t *blocks,
               std::size_t n)
{
    __m128i k[11];
    for (int r = 0; r < 11; ++r)
        k[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(round_keys + 16 * r));

    std::size_t i = 0;
    // Four blocks in flight hide the AESENC latency (~4 cycles on a
    // 1/cycle-throughput unit).
    for (; i + 4 <= n; i += 4) {
        auto *p = reinterpret_cast<__m128i *>(blocks + 16 * i);
        __m128i b0 = _mm_loadu_si128(p + 0);
        __m128i b1 = _mm_loadu_si128(p + 1);
        __m128i b2 = _mm_loadu_si128(p + 2);
        __m128i b3 = _mm_loadu_si128(p + 3);
        b0 = _mm_xor_si128(b0, k[0]);
        b1 = _mm_xor_si128(b1, k[0]);
        b2 = _mm_xor_si128(b2, k[0]);
        b3 = _mm_xor_si128(b3, k[0]);
        for (int r = 1; r <= 9; ++r) {
            b0 = _mm_aesenc_si128(b0, k[r]);
            b1 = _mm_aesenc_si128(b1, k[r]);
            b2 = _mm_aesenc_si128(b2, k[r]);
            b3 = _mm_aesenc_si128(b3, k[r]);
        }
        b0 = _mm_aesenclast_si128(b0, k[10]);
        b1 = _mm_aesenclast_si128(b1, k[10]);
        b2 = _mm_aesenclast_si128(b2, k[10]);
        b3 = _mm_aesenclast_si128(b3, k[10]);
        _mm_storeu_si128(p + 0, b0);
        _mm_storeu_si128(p + 1, b1);
        _mm_storeu_si128(p + 2, b2);
        _mm_storeu_si128(p + 3, b3);
    }
    for (; i < n; ++i) {
        auto *p = reinterpret_cast<__m128i *>(blocks + 16 * i);
        _mm_storeu_si128(p, encryptOne(_mm_loadu_si128(p), k));
    }
}

__attribute__((target("aes,vaes,avx2"))) void
aesBlocksVaes(const std::uint8_t *round_keys, std::uint8_t *blocks,
              std::size_t n)
{
    __m128i k[11];
    __m256i kk[11];
    for (int r = 0; r < 11; ++r) {
        k[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(round_keys + 16 * r));
        kk[r] = _mm256_broadcastsi128_si256(k[r]);
    }

    std::size_t i = 0;
    // Eight blocks per iteration: two per YMM register, four in
    // flight.
    for (; i + 8 <= n; i += 8) {
        auto *p = reinterpret_cast<__m256i *>(blocks + 16 * i);
        __m256i b0 = _mm256_loadu_si256(p + 0);
        __m256i b1 = _mm256_loadu_si256(p + 1);
        __m256i b2 = _mm256_loadu_si256(p + 2);
        __m256i b3 = _mm256_loadu_si256(p + 3);
        b0 = _mm256_xor_si256(b0, kk[0]);
        b1 = _mm256_xor_si256(b1, kk[0]);
        b2 = _mm256_xor_si256(b2, kk[0]);
        b3 = _mm256_xor_si256(b3, kk[0]);
        for (int r = 1; r <= 9; ++r) {
            b0 = _mm256_aesenc_epi128(b0, kk[r]);
            b1 = _mm256_aesenc_epi128(b1, kk[r]);
            b2 = _mm256_aesenc_epi128(b2, kk[r]);
            b3 = _mm256_aesenc_epi128(b3, kk[r]);
        }
        b0 = _mm256_aesenclast_epi128(b0, kk[10]);
        b1 = _mm256_aesenclast_epi128(b1, kk[10]);
        b2 = _mm256_aesenclast_epi128(b2, kk[10]);
        b3 = _mm256_aesenclast_epi128(b3, kk[10]);
        _mm256_storeu_si256(p + 0, b0);
        _mm256_storeu_si256(p + 1, b1);
        _mm256_storeu_si256(p + 2, b2);
        _mm256_storeu_si256(p + 3, b3);
    }
    for (; i < n; ++i) {
        auto *p = reinterpret_cast<__m128i *>(blocks + 16 * i);
        __m128i b = _mm_xor_si128(_mm_loadu_si128(p), k[0]);
        for (int r = 1; r <= 9; ++r)
            b = _mm_aesenc_si128(b, k[r]);
        _mm_storeu_si128(p, _mm_aesenclast_si128(b, k[10]));
    }
}

// ---- SipHash-2-4, four lanes -----------------------------------------

// One SipRound over four independent states held lane-wise in YMM
// registers.  rotl(x, 32) is a cheap 32-bit lane shuffle.
#define MGMEE_SIP_ROTL(x, b)                                                  \
    _mm256_or_si256(_mm256_slli_epi64((x), (b)),                              \
                    _mm256_srli_epi64((x), 64 - (b)))
#define MGMEE_SIP_ROUND(v0, v1, v2, v3)                                       \
    do {                                                                      \
        v0 = _mm256_add_epi64(v0, v1);                                        \
        v1 = MGMEE_SIP_ROTL(v1, 13);                                          \
        v1 = _mm256_xor_si256(v1, v0);                                        \
        v0 = _mm256_shuffle_epi32(v0, _MM_SHUFFLE(2, 3, 0, 1));               \
        v2 = _mm256_add_epi64(v2, v3);                                        \
        v3 = MGMEE_SIP_ROTL(v3, 16);                                          \
        v3 = _mm256_xor_si256(v3, v2);                                        \
        v0 = _mm256_add_epi64(v0, v3);                                        \
        v3 = MGMEE_SIP_ROTL(v3, 21);                                          \
        v3 = _mm256_xor_si256(v3, v0);                                        \
        v2 = _mm256_add_epi64(v2, v1);                                        \
        v1 = MGMEE_SIP_ROTL(v1, 17);                                          \
        v1 = _mm256_xor_si256(v1, v2);                                        \
        v2 = _mm256_shuffle_epi32(v2, _MM_SHUFFLE(2, 3, 0, 1));               \
    } while (0)

__attribute__((target("avx2"))) void
sipHash24x4Avx2(const SipKey &key, const std::uint8_t *const msgs[4],
                std::size_t len, std::uint64_t out[4])
{
    const __m256i k0 =
        _mm256_set1_epi64x(static_cast<long long>(key.k0));
    const __m256i k1 =
        _mm256_set1_epi64x(static_cast<long long>(key.k1));
    __m256i v0 = _mm256_xor_si256(
        _mm256_set1_epi64x(0x736f6d6570736575LL), k0);
    __m256i v1 = _mm256_xor_si256(
        _mm256_set1_epi64x(0x646f72616e646f6dLL), k1);
    __m256i v2 = _mm256_xor_si256(
        _mm256_set1_epi64x(0x6c7967656e657261LL), k0);
    __m256i v3 = _mm256_xor_si256(
        _mm256_set1_epi64x(0x7465646279746573LL), k1);

    alignas(32) std::uint64_t w[4];
    const std::size_t end = len - (len % 8);
    for (std::size_t i = 0; i < end; i += 8) {
        for (unsigned lane = 0; lane < 4; ++lane)
            std::memcpy(&w[lane], msgs[lane] + i, 8);
        const __m256i m =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(w));
        v3 = _mm256_xor_si256(v3, m);
        MGMEE_SIP_ROUND(v0, v1, v2, v3);
        MGMEE_SIP_ROUND(v0, v1, v2, v3);
        v0 = _mm256_xor_si256(v0, m);
    }

    for (unsigned lane = 0; lane < 4; ++lane) {
        std::uint64_t b = static_cast<std::uint64_t>(len) << 56;
        for (std::size_t i = 0; i < len % 8; ++i)
            b |= static_cast<std::uint64_t>(msgs[lane][end + i])
                 << (8 * i);
        w[lane] = b;
    }
    const __m256i b =
        _mm256_load_si256(reinterpret_cast<const __m256i *>(w));
    v3 = _mm256_xor_si256(v3, b);
    MGMEE_SIP_ROUND(v0, v1, v2, v3);
    MGMEE_SIP_ROUND(v0, v1, v2, v3);
    v0 = _mm256_xor_si256(v0, b);

    v2 = _mm256_xor_si256(v2, _mm256_set1_epi64x(0xff));
    MGMEE_SIP_ROUND(v0, v1, v2, v3);
    MGMEE_SIP_ROUND(v0, v1, v2, v3);
    MGMEE_SIP_ROUND(v0, v1, v2, v3);
    MGMEE_SIP_ROUND(v0, v1, v2, v3);

    const __m256i h = _mm256_xor_si256(_mm256_xor_si256(v0, v1),
                                       _mm256_xor_si256(v2, v3));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(out), h);
}

#undef MGMEE_SIP_ROUND
#undef MGMEE_SIP_ROTL

} // namespace

bool cpuHasAesNi() { return features().aesni; }
bool cpuHasAvx2() { return features().avx2; }
bool cpuHasVaes() { return features().vaes; }

void (*const kAesBlocksAesni)(const std::uint8_t *, std::uint8_t *,
                              std::size_t) = aesBlocksAesni;
void (*const kAesBlocksVaes)(const std::uint8_t *, std::uint8_t *,
                             std::size_t) = aesBlocksVaes;
void (*const kSipHash24x4Avx2)(const SipKey &,
                               const std::uint8_t *const[4],
                               std::size_t,
                               std::uint64_t[4]) = sipHash24x4Avx2;

#else // !MGMEE_X86_KERNELS

bool cpuHasAesNi() { return false; }
bool cpuHasAvx2() { return false; }
bool cpuHasVaes() { return false; }

void (*const kAesBlocksAesni)(const std::uint8_t *, std::uint8_t *,
                              std::size_t) = nullptr;
void (*const kAesBlocksVaes)(const std::uint8_t *, std::uint8_t *,
                             std::size_t) = nullptr;
void (*const kSipHash24x4Avx2)(const SipKey &,
                               const std::uint8_t *const[4],
                               std::size_t,
                               std::uint64_t[4]) = nullptr;

#endif // MGMEE_X86_KERNELS

} // namespace mgmee::crypto::detail
