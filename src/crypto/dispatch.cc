#include "crypto/dispatch.hh"

#include <atomic>
#include <cstring>

#include "common/config.hh"
#include "common/logging.hh"

namespace mgmee::crypto {

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Portable: return "portable";
      case Isa::AesNi: return "aesni";
      case Isa::Vaes: return "vaes";
    }
    return "?";
}

namespace {

Kernels
makeTable(Isa isa)
{
    Kernels k{};
    k.isa = isa;
    k.aesEncryptBlocks = detail::aesEncryptBlocksPortable;
    k.sipHash24x4 = detail::sipHash24x4Portable;
    if (isa >= Isa::AesNi) {
        k.aesEncryptBlocks = isa >= Isa::Vaes
                                 ? detail::kAesBlocksVaes
                                 : detail::kAesBlocksAesni;
        // The SipHash lanes only need AVX2, which is independent of
        // the AES tier: keep the portable lanes on AVX2-less parts.
        if (detail::cpuHasAvx2())
            k.sipHash24x4 = detail::kSipHash24x4Avx2;
    }
    return k;
}

/** Tier tables, built lazily; index by Isa. */
const Kernels &
table(Isa isa)
{
    static const Kernels tables[3] = {
        makeTable(Isa::Portable),
        makeTable(Isa::AesNi),
        makeTable(Isa::Vaes),
    };
    return tables[static_cast<unsigned>(isa)];
}

/** Test/bench override; null = MGMEE_CRYPTO selection. */
std::atomic<const Kernels *> g_override{nullptr};

} // namespace

Isa
bestSupportedIsa()
{
    static const Isa best = [] {
        if (detail::cpuHasVaes())
            return Isa::Vaes;
        if (detail::cpuHasAesNi())
            return Isa::AesNi;
        return Isa::Portable;
    }();
    return best;
}

Isa
requestedIsa()
{
    static const Isa requested = [] {
        // Config::validate() already rejected anything outside
        // auto|portable|aesni|vaes, so only the tier check remains.
        const std::string &want_name = config().crypto;
        if (want_name == "auto")
            return bestSupportedIsa();
        Isa want;
        if (want_name == "portable")
            want = Isa::Portable;
        else if (want_name == "aesni")
            want = Isa::AesNi;
        else
            want = Isa::Vaes;
        if (want > bestSupportedIsa()) {
            warn("MGMEE_CRYPTO=%s unsupported on this CPU; using %s",
                 want_name.c_str(), isaName(bestSupportedIsa()));
            return bestSupportedIsa();
        }
        return want;
    }();
    return requested;
}

const Kernels &
kernels()
{
    if (const Kernels *forced =
            g_override.load(std::memory_order_acquire))
        return *forced;
    static const Kernels &selected = table(requestedIsa());
    return selected;
}

const Kernels &
kernelsFor(Isa isa)
{
    panic_if(isa > bestSupportedIsa(),
             "crypto tier %s unsupported on this CPU (best: %s)",
             isaName(isa), isaName(bestSupportedIsa()));
    return table(isa);
}

void
setDispatchOverride(Isa isa)
{
    g_override.store(&kernelsFor(isa), std::memory_order_release);
}

void
clearDispatchOverride()
{
    g_override.store(nullptr, std::memory_order_release);
}

namespace detail {

void
sipHash24x4Portable(const SipKey &key,
                    const std::uint8_t *const msgs[4], std::size_t len,
                    std::uint64_t out[4])
{
    for (unsigned lane = 0; lane < 4; ++lane)
        out[lane] = sipHash24(key, msgs[lane], len);
}

} // namespace detail

} // namespace mgmee::crypto
