#include "crypto/otp.hh"

#include <cstring>

namespace mgmee {

Pad
OtpGenerator::makePad(Addr line_addr, std::uint64_t counter) const
{
    Pad pad;
    for (unsigned i = 0; i < kCachelineBytes / 16; ++i) {
        Aes128::Block block{};
        std::memcpy(block.data(), &line_addr, 8);
        std::memcpy(block.data() + 8, &counter, 8);
        // Mix the sub-block index into the last byte so the four AES
        // inputs per cacheline differ.
        block[15] ^= static_cast<std::uint8_t>(i + 1);
        aes_.encryptBlock(block);
        std::memcpy(pad.data() + 16 * i, block.data(), 16);
    }
    return pad;
}

void
OtpGenerator::applyPad(const Pad &pad, std::uint8_t *data)
{
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        data[i] ^= pad[i];
}

} // namespace mgmee
