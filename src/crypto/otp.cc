#include "crypto/otp.hh"

#include <cstring>
#include <span>

namespace mgmee {

namespace {

/** Write the four 16B AES inputs of one pad into @p dst. */
inline void
stagePadInputs(Addr line_addr, std::uint64_t counter,
               std::uint8_t *dst)
{
    for (unsigned i = 0; i < kCachelineBytes / 16; ++i) {
        std::uint8_t *block = dst + 16 * i;
        std::memcpy(block, &line_addr, 8);
        std::memcpy(block + 8, &counter, 8);
        // Mix the sub-block index into the last byte so the four AES
        // inputs per cacheline differ.
        block[15] ^= static_cast<std::uint8_t>(i + 1);
    }
}

} // namespace

Pad
OtpGenerator::makePad(Addr line_addr, std::uint64_t counter) const
{
    Pad pad;
    stagePadInputs(line_addr, counter, pad.data());
    aes_.encryptBlocks(pad);
    return pad;
}

void
OtpGenerator::makePads(const Addr *line_addrs,
                       const std::uint64_t *counters,
                       std::size_t count, Pad *out) const
{
    if (!count)
        return;
    // Pads are contiguous arrays of four AES blocks: stage the inputs
    // directly in the destination and encrypt the whole run in place
    // with one kernel call.
    for (std::size_t l = 0; l < count; ++l)
        stagePadInputs(line_addrs[l], counters[l], out[l].data());
    aes_.encryptBlocks(std::span<std::uint8_t>(
        out[0].data(), count * kCachelineBytes));
}

void
OtpGenerator::makePadsSeq(Addr start_line, std::size_t count,
                          std::uint64_t counter, Pad *out) const
{
    if (!count)
        return;
    for (std::size_t l = 0; l < count; ++l)
        stagePadInputs(start_line + l * kCachelineBytes, counter,
                       out[l].data());
    aes_.encryptBlocks(std::span<std::uint8_t>(
        out[0].data(), count * kCachelineBytes));
}

void
OtpGenerator::applyPad(const Pad &pad, std::uint8_t *data)
{
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        data[i] ^= pad[i];
}

} // namespace mgmee
