/**
 * @file
 * AES-128 block cipher with runtime-dispatched batched kernels.
 *
 * The memory-protection engine generates one-time pads by encrypting
 * (address, counter) tuples under a per-boot secret key, exactly as in
 * counter-mode memory encryption (Fig. 2 of the paper).  The key
 * schedule and the reference single-block path are a byte-oriented
 * FIPS-197 implementation; encryptBlock/encryptBlocks route through
 * crypto/dispatch.hh, so on AES-NI/VAES hardware the same expanded
 * key drives 4- or 8-blocks-in-flight SIMD kernels that are
 * bit-identical to the portable code (`MGMEE_CRYPTO` selects the
 * tier).  Multi-block callers (OTP pad batches) should prefer
 * encryptBlocks: one call per staging buffer instead of one per 16B
 * block is where the memory-bandwidth-class throughput comes from.
 */

#ifndef MGMEE_CRYPTO_AES128_HH
#define MGMEE_CRYPTO_AES128_HH

#include <array>
#include <cstdint>
#include <span>

namespace mgmee {

/** AES-128 with a fixed expanded key. */
class Aes128
{
  public:
    using Block = std::array<std::uint8_t, 16>;
    using Key = std::array<std::uint8_t, 16>;

    explicit Aes128(const Key &key) { expandKey(key); }

    /** Encrypt one 16B block in place (dispatched kernel). */
    void encryptBlock(Block &block) const;

    /**
     * Encrypt a contiguous run of 16B blocks in place --
     * @p blocks.size() must be a multiple of 16.  One dispatched
     * kernel call for the whole run; the hot path for OTP pad
     * staging buffers.
     */
    void encryptBlocks(std::span<std::uint8_t> blocks) const;

    /** Convenience: encrypt and return a copy. */
    Block
    encrypt(const Block &block) const
    {
        Block out = block;
        encryptBlock(out);
        return out;
    }

    /** The 176-byte FIPS-197 expanded key (11 round keys). */
    const std::uint8_t *roundKeys() const { return roundKeys_.data(); }

  private:
    void expandKey(const Key &key);

    /** 11 round keys of 16 bytes each. */
    std::array<std::uint8_t, 176> roundKeys_{};
};

} // namespace mgmee

#endif // MGMEE_CRYPTO_AES128_HH
