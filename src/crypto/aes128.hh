/**
 * @file
 * Minimal software AES-128 block cipher.
 *
 * The memory-protection engine generates one-time pads by encrypting
 * (address, counter) tuples under a per-boot secret key, exactly as in
 * counter-mode memory encryption (Fig. 2 of the paper).  This is a
 * straightforward byte-oriented FIPS-197 implementation: correctness
 * and determinism matter here, not throughput (the timing layer charges
 * a fixed 10-cycle OTP latency instead of modelling the pipeline).
 */

#ifndef MGMEE_CRYPTO_AES128_HH
#define MGMEE_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace mgmee {

/** AES-128 with a fixed expanded key. */
class Aes128
{
  public:
    using Block = std::array<std::uint8_t, 16>;
    using Key = std::array<std::uint8_t, 16>;

    explicit Aes128(const Key &key) { expandKey(key); }

    /** Encrypt one 16B block in place. */
    void encryptBlock(Block &block) const;

    /** Convenience: encrypt and return a copy. */
    Block
    encrypt(const Block &block) const
    {
        Block out = block;
        encryptBlock(out);
        return out;
    }

  private:
    void expandKey(const Key &key);

    /** 11 round keys of 16 bytes each. */
    std::array<std::uint8_t, 176> roundKeys_{};
};

} // namespace mgmee

#endif // MGMEE_CRYPTO_AES128_HH
