#include "crypto/mac.hh"

#include <atomic>
#include <cstring>

#include "common/logging.hh"
#include "common/stats.hh"

namespace mgmee {

namespace {

/** crypto.macs_computed, shared with MacBatch::flush. */
std::atomic<std::uint64_t> &
macsComputedStat()
{
    static std::atomic<std::uint64_t> &c =
        StatRegistry::instance().counter("crypto", "macs_computed");
    return c;
}

} // namespace

Mac
MacEngine::lineMac(Addr line_addr, std::uint64_t counter,
                   const std::uint8_t *data) const
{
    std::uint8_t buf[16 + kCachelineBytes];
    std::memcpy(buf, &line_addr, 8);
    std::memcpy(buf + 8, &counter, 8);
    std::memcpy(buf + 16, data, kCachelineBytes);
    macsComputedStat().fetch_add(1, std::memory_order_relaxed);
    return sipHash24(key_, buf, sizeof(buf));
}

Mac
MacEngine::nestedMacSeed(Mac first) const
{
    return sipHash24(key_, &first, sizeof(Mac));
}

Mac
MacEngine::nestedMacFold(Mac acc, Mac next) const
{
    std::uint64_t pair[2] = {acc, next};
    return sipHash24(key_, pair, sizeof(pair));
}

Mac
MacEngine::nestedMac(std::span<const Mac> fine_macs) const
{
    panic_if(fine_macs.empty(), "nestedMac over empty MAC list");
    // MAC_coarse = H(...H(H(mac_0), mac_1)..., mac_n-1): fold-left of
    // the running digest with the next fine MAC.
    Mac acc = nestedMacSeed(fine_macs[0]);
    for (std::size_t i = 1; i < fine_macs.size(); ++i)
        acc = nestedMacFold(acc, fine_macs[i]);
    return acc;
}

Mac
MacEngine::nodeMac(Addr node_addr, std::uint64_t parent_counter,
                   std::span<const std::uint64_t> counters) const
{
    std::uint8_t buf[16 + kTreeArity * 8];
    panic_if(counters.size() != kTreeArity,
             "nodeMac expects %zu counters, got %zu", kTreeArity,
             counters.size());
    std::memcpy(buf, &node_addr, 8);
    std::memcpy(buf + 8, &parent_counter, 8);
    std::memcpy(buf + 16, counters.data(), kTreeArity * 8);
    macsComputedStat().fetch_add(1, std::memory_order_relaxed);
    return sipHash24(key_, buf, sizeof(buf));
}

} // namespace mgmee
