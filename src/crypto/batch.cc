#include "crypto/batch.hh"

#include <atomic>
#include <cstring>

#include "common/stats.hh"
#include "crypto/dispatch.hh"
#include "obs/trace.hh"

namespace mgmee::crypto {

namespace {

struct BatchStats {
    std::atomic<std::uint64_t> &flushes;
    std::atomic<std::uint64_t> &macs;
    std::atomic<std::uint64_t> &computed;
};

BatchStats &
batchStats()
{
    static BatchStats s{
        StatRegistry::instance().counter("crypto", "batch_flushes"),
        StatRegistry::instance().counter("crypto", "batch_macs"),
        StatRegistry::instance().counter("crypto", "macs_computed"),
    };
    return s;
}

} // namespace

void
MacBatch::stage(std::uint64_t a, std::uint64_t b,
                const std::uint8_t *payload, std::uint64_t *out)
{
    if (n_ == kCapacity)
        flush();
    std::uint8_t *msg = msgs_[n_];
    std::memcpy(msg, &a, 8);
    std::memcpy(msg + 8, &b, 8);
    std::memcpy(msg + 16, payload, kCachelineBytes);
    outs_[n_] = out;
    ++n_;
}

void
MacBatch::flush()
{
    if (!n_)
        return;
    const Kernels &k = kernels();
    std::size_t i = 0;
    std::uint64_t lanes[4];
    for (; i + 4 <= n_; i += 4) {
        const std::uint8_t *ptrs[4] = {msgs_[i], msgs_[i + 1],
                                       msgs_[i + 2], msgs_[i + 3]};
        k.sipHash24x4(key_, ptrs, kMsgBytes, lanes);
        for (unsigned lane = 0; lane < 4; ++lane)
            *outs_[i + lane] = lanes[lane];
    }
    for (; i < n_; ++i)
        *outs_[i] = sipHash24(key_, msgs_[i], kMsgBytes);

    BatchStats &s = batchStats();
    s.flushes.fetch_add(1, std::memory_order_relaxed);
    s.macs.fetch_add(n_, std::memory_order_relaxed);
    s.computed.fetch_add(n_, std::memory_order_relaxed);
    OBS_EVENT(obs::EventKind::MacBatchFlush, 0, 0,
              static_cast<std::uint32_t>(n_), 0);
    n_ = 0;
}

} // namespace mgmee::crypto
