/**
 * @file
 * Runtime CPU-feature dispatch for the crypto data plane.
 *
 * The MEE model spends most of a sweep inside AES-128 (OTP
 * generation) and SipHash-2-4 (line/node/nested MACs).  This module
 * probes the CPU once (raw CPUID, including the XGETBV check that
 * the OS actually saves YMM state) and installs the widest kernel
 * tier available:
 *
 *   Portable  byte-oriented reference code (crypto/aes128.cc,
 *             crypto/siphash.cc) -- runs anywhere, and is the
 *             bit-identity oracle for everything faster;
 *   AesNi     AES-NI 4-blocks-in-flight AES, plus an AVX2 4-lane
 *             SipHash when AVX2 is present;
 *   Vaes      VAES/AVX2 8-blocks-in-flight AES (two blocks per YMM
 *             register), same SipHash lanes.
 *
 * Every kernel is bit-identical to the portable path by construction
 * (AES-NI/VAES implement the FIPS-197 round function exactly; the
 * SipHash lanes run the same ARX schedule on four independent
 * states), so sweep determinism and the fault-campaign detection
 * matrix are invariant under `MGMEE_CRYPTO`:
 *
 *   MGMEE_CRYPTO=auto      widest supported tier (default)
 *   MGMEE_CRYPTO=portable  force the reference code
 *   MGMEE_CRYPTO=aesni     force the AES-NI tier (warns + falls back
 *                          to portable if the CPU lacks it)
 *   MGMEE_CRYPTO=vaes      force the VAES tier (same fallback)
 *
 * Callers do not use this header directly for crypto: they go through
 * Aes128::encryptBlocks, sipHash24x4 and crypto::MacBatch, which all
 * route through kernels().  kernelsFor()/setDispatchOverride() exist
 * for the cross-implementation tests and the throughput bench.
 */

#ifndef MGMEE_CRYPTO_DISPATCH_HH
#define MGMEE_CRYPTO_DISPATCH_HH

#include <cstddef>
#include <cstdint>

#include "crypto/siphash.hh"

namespace mgmee::crypto {

/** Kernel tiers, widest last.  Vaes implies AesNi implies Portable. */
enum class Isa : std::uint8_t {
    Portable = 0,
    AesNi = 1,
    Vaes = 2,
};

/** Stable name ("portable", "aesni", "vaes"). */
const char *isaName(Isa isa);

/** One table of batched-primitive entry points. */
struct Kernels {
    /**
     * Encrypt @p n contiguous 16B AES blocks in place under the
     * 176-byte FIPS-197 expanded key @p round_keys.  No alignment
     * requirement on @p blocks.
     */
    void (*aesEncryptBlocks)(const std::uint8_t *round_keys,
                             std::uint8_t *blocks, std::size_t n);

    /**
     * Four independent SipHash-2-4 digests over four equal-length
     * messages; out[i] == sipHash24(key, msgs[i], len) exactly.
     */
    void (*sipHash24x4)(const SipKey &key,
                        const std::uint8_t *const msgs[4],
                        std::size_t len, std::uint64_t out[4]);

    Isa isa;
};

/** Widest tier the running CPU (and OS) supports, probed once. */
Isa bestSupportedIsa();

/**
 * The tier MGMEE_CRYPTO requests, resolved against the hardware:
 * unset/`auto` picks bestSupportedIsa(); an explicit tier the CPU
 * lacks warns once and degrades to the widest supported one.
 */
Isa requestedIsa();

/** The process-wide kernel table (selected on first use, cached). */
const Kernels &kernels();

/**
 * The kernel table of a specific tier.  panic()s if the CPU cannot
 * run it -- tests and benches must gate on bestSupportedIsa().
 */
const Kernels &kernelsFor(Isa isa);

/**
 * Force kernels() to the @p isa tier regardless of MGMEE_CRYPTO.
 * Test/bench hook: flip only at quiesce points (no concurrent crypto
 * callers), e.g. between the mode rounds of a bit-identity check.
 */
void setDispatchOverride(Isa isa);

/** Undo setDispatchOverride(); kernels() honours MGMEE_CRYPTO again. */
void clearDispatchOverride();

namespace detail {

/** Reference kernels (aes128.cc / siphash.cc); the Portable table. */
void aesEncryptBlocksPortable(const std::uint8_t *round_keys,
                              std::uint8_t *blocks, std::size_t n);
void sipHash24x4Portable(const SipKey &key,
                         const std::uint8_t *const msgs[4],
                         std::size_t len, std::uint64_t out[4]);

/** x86 kernels (crypto/kernels_x86.cc); null on other architectures. */
extern void (*const kAesBlocksAesni)(const std::uint8_t *,
                                     std::uint8_t *, std::size_t);
extern void (*const kAesBlocksVaes)(const std::uint8_t *,
                                    std::uint8_t *, std::size_t);
extern void (*const kSipHash24x4Avx2)(const SipKey &,
                                      const std::uint8_t *const[4],
                                      std::size_t, std::uint64_t[4]);

/** Raw CPUID/XGETBV probe results (kernels_x86.cc). */
bool cpuHasAesNi();
bool cpuHasAvx2();
bool cpuHasVaes();

} // namespace detail

} // namespace mgmee::crypto

#endif // MGMEE_CRYPTO_DISPATCH_HH
