/**
 * @file
 * One-time-pad generation for counter-mode memory encryption.
 *
 * A 64B pad is derived from (secret key, cacheline address, counter)
 * by running AES-128 over four 16B blocks (Fig. 2 of the paper).  The
 * pad is XORed with plaintext to encrypt and with ciphertext to
 * decrypt.  Counter uniqueness per (address, version) guarantees pad
 * uniqueness.
 */

#ifndef MGMEE_CRYPTO_OTP_HH
#define MGMEE_CRYPTO_OTP_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "crypto/aes128.hh"

namespace mgmee {

/** A full-cacheline one-time pad. */
using Pad = std::array<std::uint8_t, kCachelineBytes>;

/** Generates per-cacheline one-time pads under a fixed AES key. */
class OtpGenerator
{
  public:
    explicit OtpGenerator(const Aes128::Key &key) : aes_(key) {}

    /**
     * Derive the pad for @p line_addr (64B-aligned) at version
     * @p counter.
     */
    Pad makePad(Addr line_addr, std::uint64_t counter) const;

    /** XOR @p pad into @p data (encrypt or decrypt in place). */
    static void applyPad(const Pad &pad, std::uint8_t *data);

  private:
    Aes128 aes_;
};

} // namespace mgmee

#endif // MGMEE_CRYPTO_OTP_HH
