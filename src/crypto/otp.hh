/**
 * @file
 * One-time-pad generation for counter-mode memory encryption.
 *
 * A 64B pad is derived from (secret key, cacheline address, counter)
 * by running AES-128 over four 16B blocks (Fig. 2 of the paper).  The
 * pad is XORed with plaintext to encrypt and with ciphertext to
 * decrypt.  Counter uniqueness per (address, version) guarantees pad
 * uniqueness.
 *
 * Pads are generated in place: the (address, counter, sub-block)
 * tuples are written straight into the destination Pad storage and
 * encrypted there with one Aes128::encryptBlocks call, so a batched
 * makePads() over a whole unit or chunk keeps the AES-NI/VAES
 * pipeline full (4 blocks per pad, thousands of blocks per kernel
 * call) instead of paying one dispatch per 16B block.
 */

#ifndef MGMEE_CRYPTO_OTP_HH
#define MGMEE_CRYPTO_OTP_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "crypto/aes128.hh"

namespace mgmee {

/** A full-cacheline one-time pad. */
using Pad = std::array<std::uint8_t, kCachelineBytes>;

/** Generates per-cacheline one-time pads under a fixed AES key. */
class OtpGenerator
{
  public:
    explicit OtpGenerator(const Aes128::Key &key) : aes_(key) {}

    /**
     * Derive the pad for @p line_addr (64B-aligned) at version
     * @p counter.
     */
    Pad makePad(Addr line_addr, std::uint64_t counter) const;

    /**
     * Derive @p count pads, one per (line_addrs[i], counters[i]),
     * into @p out -- a single batched AES call over 4*count blocks.
     * Bit-identical to count makePad() calls.
     */
    void makePads(const Addr *line_addrs,
                  const std::uint64_t *counters, std::size_t count,
                  Pad *out) const;

    /**
     * Common unit-wide case: pads for @p count consecutive lines
     * starting at @p start_line, all under the shared @p counter
     * (coarse-granularity re-encryption, streaming writes).
     */
    void makePadsSeq(Addr start_line, std::size_t count,
                     std::uint64_t counter, Pad *out) const;

    /** XOR @p pad into @p data (encrypt or decrypt in place). */
    static void applyPad(const Pad &pad, std::uint8_t *data);

  private:
    Aes128 aes_;
};

} // namespace mgmee

#endif // MGMEE_CRYPTO_OTP_HH
