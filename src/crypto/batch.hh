/**
 * @file
 * MAC staging buffer: the hardware-engine accumulate-then-flush
 * idiom for the SipHash data plane.
 *
 * Real MAC engines (SGX MEE, SecDDR's link MAC units) do not hash
 * one message at a time: requests land in a fixed staging buffer and
 * the engine drains it multiple lanes per cycle.  MacBatch models
 * that: callers stage line-MAC and node-MAC requests (both are the
 * same 80-byte addr||counter||payload layout) together with a
 * destination pointer, and flush() computes every staged digest in
 * FIFO order, four lanes per sipHash24x4 call.  Results are
 * bit-identical to the equivalent scalar lineMac()/nodeMac() loop --
 * flush order is add order -- so batching changes throughput, never
 * outputs.
 *
 * A full buffer flushes itself on the next add; destruction flushes
 * whatever is pending (destination pointers must therefore outlive
 * the batch).  Instances are single-threaded by design -- one per
 * SecureMemory / fault target, matching the sharded-sweep model of
 * one engine per shard; the only cross-thread state is the global
 * StatRegistry counters and the obs trace, both thread-safe.
 */

#ifndef MGMEE_CRYPTO_BATCH_HH
#define MGMEE_CRYPTO_BATCH_HH

#include <cstddef>
#include <cstdint>

#include "common/types.hh"
#include "crypto/siphash.hh"

namespace mgmee::crypto {

/** Fixed-capacity staging buffer over one SipHash key. */
class MacBatch
{
  public:
    /** Staged requests before an automatic flush. */
    static constexpr std::size_t kCapacity = 64;
    /** Every staged message: 8B addr, 8B counter, 64B payload. */
    static constexpr std::size_t kMsgBytes = 16 + kCachelineBytes;

    explicit MacBatch(const SipKey &key) : key_(key) {}
    ~MacBatch() { flush(); }

    MacBatch(const MacBatch &) = delete;
    MacBatch &operator=(const MacBatch &) = delete;

    /**
     * Stage the fine MAC of one 64B ciphertext line
     * (== MacEngine::lineMac(line_addr, counter, data)); the digest
     * lands at @p out on the flush.
     */
    void
    line(Addr line_addr, std::uint64_t counter,
         const std::uint8_t *data, std::uint64_t *out)
    {
        stage(line_addr, counter,
              reinterpret_cast<const std::uint8_t *>(data), out);
    }

    /**
     * Stage the MAC of one tree node: @p counters are its
     * kTreeArity child counters
     * (== MacEngine::nodeMac(node_addr, parent_counter, counters)).
     */
    void
    node(Addr node_addr, std::uint64_t parent_counter,
         const std::uint64_t *counters, std::uint64_t *out)
    {
        stage(node_addr, parent_counter,
              reinterpret_cast<const std::uint8_t *>(counters), out);
    }

    /** Compute every staged digest in add order; empties the buffer. */
    void flush();

    /** Requests currently staged. */
    std::size_t pending() const { return n_; }

  private:
    void stage(std::uint64_t a, std::uint64_t b,
               const std::uint8_t *payload, std::uint64_t *out);

    SipKey key_;
    std::size_t n_ = 0;
    std::uint8_t msgs_[kCapacity][kMsgBytes];
    std::uint64_t *outs_[kCapacity];
};

} // namespace mgmee::crypto

#endif // MGMEE_CRYPTO_BATCH_HH
