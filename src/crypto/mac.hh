/**
 * @file
 * MAC construction for data lines, tree nodes, and coarse-grained
 * merged MACs.
 *
 * Fine MAC:    MAC = H(key, addr || counter || data[64])          (8B)
 * Coarse MAC:  MAC = H(H(H(mac_0), mac_1), ... mac_n-1)   (Eq. 5, 8B)
 * Node MAC:    MAC = H(key, node_addr || parent_ctr || counters[8])
 */

#ifndef MGMEE_CRYPTO_MAC_HH
#define MGMEE_CRYPTO_MAC_HH

#include <cstdint>
#include <span>

#include "common/types.hh"
#include "crypto/batch.hh"
#include "crypto/siphash.hh"

namespace mgmee {

/** An 8-byte message authentication code. */
using Mac = std::uint64_t;

/** Computes all MAC flavours under one keyed hash. */
class MacEngine
{
  public:
    explicit MacEngine(const SipKey &key) : key_(key) {}

    /** MAC over one 64B data line bound to its address and counter. */
    Mac lineMac(Addr line_addr, std::uint64_t counter,
                const std::uint8_t *data) const;

    /**
     * Coarse-grained MAC built by nested hashing of fine MACs
     * (Eq. 5 of the paper).  @p fine_macs must be non-empty.
     */
    Mac nestedMac(std::span<const Mac> fine_macs) const;

    /**
     * Incremental (batch-friendly) form of nestedMac: start a fold
     * with the first fine MAC, then fold the rest in order.  Lets
     * callers stream fine MACs through without materialising a
     * vector:
     *
     *   Mac acc = mac.nestedMacSeed(fine_0);
     *   for (i = 1..n-1) acc = mac.nestedMacFold(acc, fine_i);
     *
     * is bit-identical to nestedMac({fine_0..fine_n-1}).
     */
    Mac nestedMacSeed(Mac first) const;
    Mac nestedMacFold(Mac acc, Mac next) const;

    /**
     * MAC over an integrity-tree node: its 8 child counters bound to
     * the node address and the parent counter (provides freshness of
     * the node itself).
     */
    Mac nodeMac(Addr node_addr, std::uint64_t parent_counter,
                std::span<const std::uint64_t> counters) const;

    /**
     * A staging buffer over this engine's key (crypto/batch.hh):
     * stage many line/node MACs, flush once, get bit-identical
     * digests in a fraction of the scalar calls.
     */
    crypto::MacBatch batch() const { return crypto::MacBatch(key_); }

    const SipKey &key() const { return key_; }

  private:
    SipKey key_;
};

} // namespace mgmee

#endif // MGMEE_CRYPTO_MAC_HH
