#include "crypto/siphash.hh"

#include <cstring>

#include "crypto/dispatch.hh"

namespace mgmee {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int b)
{
    return (x << b) | (x >> (64 - b));
}

inline void
sipRound(std::uint64_t &v0, std::uint64_t &v1, std::uint64_t &v2,
         std::uint64_t &v3)
{
    v0 += v1; v1 = rotl(v1, 13); v1 ^= v0; v0 = rotl(v0, 32);
    v2 += v3; v3 = rotl(v3, 16); v3 ^= v2;
    v0 += v3; v3 = rotl(v3, 21); v3 ^= v0;
    v2 += v1; v1 = rotl(v1, 17); v1 ^= v2; v2 = rotl(v2, 32);
}

} // namespace

std::uint64_t
sipHash24(const SipKey &key, const void *data, std::size_t len)
{
    const auto *in = static_cast<const std::uint8_t *>(data);
    std::uint64_t v0 = 0x736f6d6570736575ULL ^ key.k0;
    std::uint64_t v1 = 0x646f72616e646f6dULL ^ key.k1;
    std::uint64_t v2 = 0x6c7967656e657261ULL ^ key.k0;
    std::uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

    const std::size_t end = len - (len % 8);
    for (std::size_t i = 0; i < end; i += 8) {
        std::uint64_t m;
        std::memcpy(&m, in + i, 8);
        v3 ^= m;
        sipRound(v0, v1, v2, v3);
        sipRound(v0, v1, v2, v3);
        v0 ^= m;
    }

    std::uint64_t b = static_cast<std::uint64_t>(len) << 56;
    for (std::size_t i = 0; i < len % 8; ++i)
        b |= static_cast<std::uint64_t>(in[end + i]) << (8 * i);
    v3 ^= b;
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    v0 ^= b;

    v2 ^= 0xff;
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    sipRound(v0, v1, v2, v3);
    return v0 ^ v1 ^ v2 ^ v3;
}

void
sipHash24x4(const SipKey &key, const std::uint8_t *const msgs[4],
            std::size_t len, std::uint64_t out[4])
{
    crypto::kernels().sipHash24x4(key, msgs, len, out);
}

} // namespace mgmee
