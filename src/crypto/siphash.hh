/**
 * @file
 * SipHash-2-4 keyed 64-bit hash.
 *
 * Used as the MAC primitive: the paper allocates an 8B MAC per 64B
 * cacheline, and builds coarse-grained MACs by nested hashing of fine
 * MACs (Eq. 5).  SipHash gives a real keyed PRF so integrity tests can
 * flip bits and observe genuine verification failures.
 */

#ifndef MGMEE_CRYPTO_SIPHASH_HH
#define MGMEE_CRYPTO_SIPHASH_HH

#include <cstddef>
#include <cstdint>

namespace mgmee {

/** 128-bit SipHash key. */
struct SipKey
{
    std::uint64_t k0 = 0;
    std::uint64_t k1 = 0;
};

/** SipHash-2-4 of @p len bytes at @p data under @p key. */
std::uint64_t sipHash24(const SipKey &key, const void *data,
                        std::size_t len);

} // namespace mgmee

#endif // MGMEE_CRYPTO_SIPHASH_HH
