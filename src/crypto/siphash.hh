/**
 * @file
 * SipHash-2-4 keyed 64-bit hash.
 *
 * Used as the MAC primitive: the paper allocates an 8B MAC per 64B
 * cacheline, and builds coarse-grained MACs by nested hashing of fine
 * MACs (Eq. 5).  SipHash gives a real keyed PRF so integrity tests can
 * flip bits and observe genuine verification failures.
 */

#ifndef MGMEE_CRYPTO_SIPHASH_HH
#define MGMEE_CRYPTO_SIPHASH_HH

#include <cstddef>
#include <cstdint>

namespace mgmee {

/** 128-bit SipHash key. */
struct SipKey
{
    std::uint64_t k0 = 0;
    std::uint64_t k1 = 0;
};

/** SipHash-2-4 of @p len bytes at @p data under @p key. */
std::uint64_t sipHash24(const SipKey &key, const void *data,
                        std::size_t len);

/**
 * Four independent SipHash-2-4 digests over four equal-length
 * messages in one call: out[i] == sipHash24(key, msgs[i], len),
 * bit-identically.  Routed through the crypto dispatch table
 * (crypto/dispatch.hh): an AVX2 lane kernel when the CPU has it, a
 * scalar loop otherwise.  This is the MAC-engine hot primitive --
 * crypto::MacBatch drains its staging buffer four messages at a
 * time through here.
 */
void sipHash24x4(const SipKey &key, const std::uint8_t *const msgs[4],
                 std::size_t len, std::uint64_t out[4]);

} // namespace mgmee

#endif // MGMEE_CRYPTO_SIPHASH_HH
