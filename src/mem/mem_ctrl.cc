#include "mem/mem_ctrl.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mgmee {

MemCtrl::MemCtrl(const MemCtrlConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg.channels == 0, "memory controller needs >=1 channel");
    busy_until_.assign(cfg_.channels, 0);
}

unsigned
MemCtrl::channelOf(Addr line_addr) const
{
    // Interleave consecutive cachelines across channels.
    return static_cast<unsigned>((line_addr >> kCachelineBits) %
                                 cfg_.channels);
}

const char *
trafficName(Traffic t)
{
    switch (t) {
      case Traffic::Data: return "data";
      case Traffic::Counter: return "counter";
      case Traffic::Mac: return "mac";
      case Traffic::Table: return "table";
      case Traffic::Switch: return "switch";
      case Traffic::Rmw: return "rmw";
    }
    return "?";
}

Cycle
MemCtrl::serve(Cycle issue, Addr addr, std::uint32_t bytes,
               bool is_write, Traffic cls)
{
    const Addr first = alignDown(addr, kCachelineBytes);
    const Addr last = alignDown(addr + (bytes ? bytes - 1 : 0),
                                kCachelineBytes);
    Cycle done = issue;
    for (Addr line = first; line <= last; line += kCachelineBytes) {
        Cycle &busy = busy_until_[channelOf(line)];
        const Cycle start = std::max(busy, issue);
        busy = start + cfg_.service_cycles_per_line;
        done = std::max(done, busy + cfg_.access_latency);
        ++lines_served_;
        by_class_[static_cast<unsigned>(cls)] += kCachelineBytes;
        if (is_write)
            bytes_written_ += kCachelineBytes;
        else
            bytes_read_ += kCachelineBytes;
    }
    // Posted writes: the issuer does not wait for DRAM completion.
    return is_write ? issue : done;
}

Cycle
MemCtrl::drainCycle() const
{
    Cycle c = 0;
    for (Cycle busy : busy_until_)
        c = std::max(c, busy);
    return c;
}

void
MemCtrl::resetStats()
{
    bytes_read_ = bytes_written_ = lines_served_ = 0;
    for (auto &b : by_class_)
        b = 0;
}

} // namespace mgmee
