/**
 * @file
 * Shared LPDDR memory-controller model.
 *
 * Models the paper's Orin-like memory system (Table 3: LPDDR4,
 * 2 channels x 8.5 GB/s = 17 GB/s) as address-interleaved channels
 * with a fixed access latency plus a per-64B-line occupancy.  The key
 * behaviour it must reproduce is queueing amplification: "when the
 * amount of traffic significantly exceeds the memory bandwidth,
 * stalled memory requests recursively delay subsequent memory
 * requests" (Sec. 3.2) -- captured by per-channel busy-until clocks.
 */

#ifndef MGMEE_MEM_MEM_CTRL_HH
#define MGMEE_MEM_MEM_CTRL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mgmee {

/** Cause classification for off-chip traffic accounting. */
enum class Traffic : std::uint8_t
{
    Data = 0,     //!< demand data (including coarse-unit bulk)
    Counter = 1,  //!< counters and integrity-tree nodes
    Mac = 2,      //!< MAC lines (fine, merged, or stashed)
    Table = 3,    //!< granularity-table lines
    Switch = 4,   //!< granularity-switching extra fetches (Table 2)
    Rmw = 5,      //!< coarse-unit read-modify-write fills
};

constexpr unsigned kTrafficClasses = 6;

/** Display name of a traffic class. */
const char *trafficName(Traffic t);

/** Configuration of the DRAM model. */
struct MemCtrlConfig
{
    unsigned channels = 2;
    /** Channel occupancy per 64B line (1GHz domain; 8.5GB/s/ch). */
    Cycle service_cycles_per_line = 8;
    /** Fixed DRAM access latency added to every read. */
    Cycle access_latency = 90;
};

/** Bandwidth/queueing model of the shared off-chip memory. */
class MemCtrl
{
  public:
    explicit MemCtrl(const MemCtrlConfig &cfg = {});

    /**
     * Serve @p bytes starting at @p addr, entering the controller at
     * cycle @p issue.
     * @param cls traffic-cause class for the attribution counters
     * @return cycle at which the last line of the request completes.
     * Writes occupy channel bandwidth but complete immediately from
     * the issuer's perspective (posted writes).
     */
    Cycle serve(Cycle issue, Addr addr, std::uint32_t bytes,
                bool is_write, Traffic cls = Traffic::Data);

    /** Bytes moved with cause @p cls (reads + writes). */
    std::uint64_t bytesBy(Traffic cls) const
    {
        return by_class_[static_cast<unsigned>(cls)];
    }

    /** Total bytes moved (reads + writes). */
    std::uint64_t totalBytes() const { return bytes_read_ + bytes_written_; }
    std::uint64_t bytesRead() const { return bytes_read_; }
    std::uint64_t bytesWritten() const { return bytes_written_; }
    std::uint64_t linesServed() const { return lines_served_; }

    /** Cycle at which all queued traffic drains. */
    Cycle drainCycle() const;

    void resetStats();

  private:
    unsigned channelOf(Addr line_addr) const;

    MemCtrlConfig cfg_;
    std::vector<Cycle> busy_until_;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t lines_served_ = 0;
    std::uint64_t by_class_[kTrafficClasses] = {};
};

} // namespace mgmee

#endif // MGMEE_MEM_MEM_CTRL_HH
