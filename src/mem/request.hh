/**
 * @file
 * Memory request descriptor exchanged between devices, the protection
 * engine and the memory controller.
 */

#ifndef MGMEE_MEM_REQUEST_HH
#define MGMEE_MEM_REQUEST_HH

#include <cstdint>

#include "common/types.hh"

namespace mgmee {

/** One off-chip access as seen below the device LLC. */
struct MemRequest
{
    Addr addr = 0;               //!< 64B-aligned start address
    std::uint32_t bytes = kCachelineBytes;  //!< request footprint
    bool is_write = false;
    unsigned device = 0;         //!< index within the hetero system
    Cycle issue = 0;             //!< earliest cycle it may reach DRAM
};

} // namespace mgmee

#endif // MGMEE_MEM_REQUEST_HH
