#include "baselines/treeless_engine.hh"

#include <algorithm>

namespace mgmee {

TreelessEngine::TreelessEngine(std::size_t data_bytes,
                               const TimingConfig &cfg,
                               std::array<bool, 8> managed,
                               unsigned version_entries)
    : MeeTimingBase("Treeless", data_bytes, cfg), managed_(managed),
      capacity_(version_entries)
{
}

void
TreelessEngine::cover(std::uint64_t chunk, Cycle now, MemCtrl &mem)
{
    auto it = map_.find(chunk);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        // Demote the LRU region to tree protection: its blocks must
        // be re-encrypted under per-block counters and their tree
        // path initialised -- a full 32KB read+write sweep.
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        mem.serve(now, victim * kChunkBytes, kChunkBytes, false,
                  Traffic::Rmw);
        mem.serve(now, victim * kChunkBytes, kChunkBytes, true,
                  Traffic::Rmw);
        stats_.add("version_evictions");
        stats_.add("eviction_lines", kLinesPerChunk);
    }
    lru_.push_front(chunk);
    map_[chunk] = lru_.begin();
    stats_.add("version_fills");
}

Cycle
TreelessEngine::access(const MemRequest &req, MemCtrl &mem)
{
    const Cycle issue = req.issue;
    stats_.add(req.is_write ? "writes" : "reads");

    const Cycle data_done =
        mem.serve(issue, req.addr, req.bytes, req.is_write);

    Cycle ctr_done = issue;
    Cycle mac_done = issue;
    const Addr first = alignDown(req.addr, kCachelineBytes);
    const Addr last = alignDown(req.addr + (req.bytes ? req.bytes - 1
                                                      : 0),
                                kCachelineBytes);

    const bool managed = managed_[req.device % managed_.size()];
    for (Addr span = alignDown(first, kPartitionBytes); span <= last;
         span += kPartitionBytes) {
        if (managed) {
            // The compiler declared this tensor tile: its version is
            // on-chip, so the counter side is free.
            cover(chunkIndex(span), issue, mem);
            ctr_done = std::max(ctr_done, issue + cfg_.hit_latency);
            stats_.add("version_hits");
        } else {
            // No software-managed versions for general traffic: the
            // conventional per-block counter tree takes over.
            const std::uint64_t leaf = lineIndex(span);
            if (req.is_write)
                writeWalk(0, leaf, issue, mem);
            else
                ctr_done = std::max(ctr_done,
                                    readWalk(0, leaf, issue, mem));
            stats_.add("fallback_spans");
        }

        // MACs remain 64B-granular (MGX keeps per-block MACs).
        const Addr mac_line =
            layout_.macLineAddr(layout_.fineMacIndex(span));
        mac_done = std::max(
            mac_done, touchMac(mac_line, req.is_write, issue, mem));
    }

    if (req.is_write)
        return issue;

    Cycle done = std::max(data_done, ctr_done + cfg_.otp_latency) +
                 cfg_.xor_latency;
    done = std::max(done, mac_done) + cfg_.hash_latency;
    return done;
}

} // namespace mgmee
