/**
 * @file
 * Tree-less version-number engine (TNPU / MGX / GuardNN style; the
 * "ML-specific" rows of Table 1).
 *
 * These schemes replace the integrity tree with a small on-chip table
 * of version numbers -- but only because the NPU's *software-managed*
 * execution lets the compiler declare, ahead of time, which tensor
 * each access belongs to and when its version advances.  Inside that
 * domain the counter side of protection is free: no counter fetch,
 * no tree walk.  Outside it (CPU/GPU traffic with no compiler
 * knowledge of versions) there is nothing to look up, and accesses
 * fall back to a conventional per-block counter tree.  MACs stay
 * 64B-granular throughout.
 *
 * This is exactly the paper's Sec. 2.3 critique made executable:
 * "this approach cannot be applied to general applications" -- a
 * heterogeneous SoC would need this engine for the NPUs *plus* a
 * full conventional engine for everyone else, and the CPU/GPU share
 * of the overhead remains untouched.
 */

#ifndef MGMEE_BASELINES_TREELESS_ENGINE_HH
#define MGMEE_BASELINES_TREELESS_ENGINE_HH

#include <array>
#include <list>
#include <unordered_map>

#include "mee/timing_engine.hh"

namespace mgmee {

/** Version-table engine for software-managed (NPU) devices, with a
 *  conventional-tree fallback for everything else. */
class TreelessEngine : public MeeTimingBase
{
  public:
    /**
     * @param managed  per-device flag: true where a compiler manages
     *                 tensor versions (NPUs); false falls back to the
     *                 conventional tree (CPUs/GPUs)
     * @param version_entries on-chip version slots (32KB tensor
     *                 tiles); TNPU-class designs afford a few hundred
     */
    TreelessEngine(std::size_t data_bytes, const TimingConfig &cfg,
                   std::array<bool, 8> managed,
                   unsigned version_entries = 512);

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

    std::uint64_t versionHits() const
    {
        return stats_.get("version_hits");
    }

  private:
    /**
     * Ensure @p chunk holds an on-chip version slot, evicting the LRU
     * entry if full.  Eviction demotes the victim to tree protection,
     * which re-encrypts and re-MACs the whole 32KB region -- the
     * scalability cliff when the table is undersized.
     */
    void cover(std::uint64_t chunk, Cycle now, MemCtrl &mem);

    std::array<bool, 8> managed_;
    unsigned capacity_;
    std::list<std::uint64_t> lru_;  //!< front = MRU
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        map_;
};

} // namespace mgmee

#endif // MGMEE_BASELINES_TREELESS_ENGINE_HH
