/**
 * @file
 * MGX-style application-aware versioning engine (Hua et al., "MGX:
 * Near-Zero Overhead Memory Protection for Data-Intensive
 * Accelerators", Table 1's "application-managed version" row).
 *
 * MGX's observation: for an accelerator whose execution is fully
 * scheduled in software, the version number of every protected block
 * is a *function of application progress* (layer index, tile
 * coordinate, iteration count).  The MEE can therefore re-derive any
 * version on the fly from the same schedule the accelerator runs --
 * versions are never stored, on-chip or off.  That eliminates counter
 * fetches, the bounded on-chip version table of TNPU-class designs,
 * and the table's eviction cliff (src/baselines/treeless_engine.hh):
 * inside the managed domain only per-block MAC traffic remains.
 *
 * The boundary of the trick is the schedule itself.  General CPU/GPU
 * traffic has no compiler-known write schedule to derive versions
 * from, so unmanaged devices fall back to a conventional per-block
 * counter tree -- the paper's Sec. 2.3 "cannot be applied to general
 * applications" critique, with the table cliff removed but the
 * general-traffic share of overhead untouched.
 *
 * mgxScheduleFor() maps a workload profile to its schedule: NPU-kind
 * workloads (software-managed tensor programs) derive versions;
 * every other kind is unmanaged.  The functional-security counterpart
 * of this engine is the fault campaign's "mgx" row (derived versions
 * give an attacker no off-chip counter state to touch).
 */

#ifndef MGMEE_BASELINES_MGX_ENGINE_HH
#define MGMEE_BASELINES_MGX_ENGINE_HH

#include <array>

#include "mee/timing_engine.hh"
#include "workloads/trace_gen.hh"

namespace mgmee {

/** Per-device version-derivation schedule (what MGX's firmware
 *  extracts from the compiled program). */
struct MgxSchedule
{
    /** True when the device's program declares its write schedule,
     *  making every block version re-derivable on chip. */
    bool software_managed = false;
    /** Cycles to evaluate version = f(progress) for one block. */
    Cycle derive_latency = 2;
};

/** Schedule for one workload profile: software-managed kinds (NPU)
 *  derive versions, general kinds fall back to the tree. */
MgxSchedule mgxScheduleFor(const WorkloadSpec &wl);

/** Derived-version engine for scheduled accelerators, with a
 *  conventional-tree fallback for general devices. */
class MgxEngine : public MeeTimingBase
{
  public:
    MgxEngine(std::size_t data_bytes, const TimingConfig &cfg,
              std::array<MgxSchedule, 8> schedules);

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

    /** Version derivations served without any memory traffic. */
    std::uint64_t derivedVersions() const
    {
        return stats_.get("derived_versions");
    }

  private:
    std::array<MgxSchedule, 8> schedules_;
};

} // namespace mgmee

#endif // MGMEE_BASELINES_MGX_ENGINE_HH
