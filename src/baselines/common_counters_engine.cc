#include "baselines/common_counters_engine.hh"

#include <algorithm>

namespace mgmee {

CommonCountersEngine::CommonCountersEngine(std::size_t data_bytes,
                                           const TimingConfig &cfg)
    : MeeTimingBase("CommonCTR", data_bytes, cfg)
{
    tracker_.setEvictCallback([this](const AccessTracker::Eviction &ev) {
        detections_.emplace_back(ev.chunk, ev.stream_part);
    });
}

Cycle
CommonCountersEngine::access(const MemRequest &req, MemCtrl &mem)
{
    const Cycle issue = req.issue;
    stats_.add(req.is_write ? "writes" : "reads");

    const bool skip_tree =
        !req.is_write && unused_.canSkipWalk(req.addr);
    unused_.markTouched(req.addr);

    const Cycle data_done =
        mem.serve(issue, req.addr, req.bytes, req.is_write);

    Cycle ctr_done = issue;
    Cycle mac_done = issue;
    const Addr first = alignDown(req.addr, kCachelineBytes);
    const Addr last = alignDown(req.addr + (req.bytes ? req.bytes - 1
                                                      : 0),
                                kCachelineBytes);

    for (Addr span = alignDown(first, kPartitionBytes); span <= last;
         span += kPartitionBytes) {
        const std::uint64_t chunk = chunkIndex(span);

        // Writes to a common segment break uniformity unless they
        // rewrite it wholesale; conservatively demote and let the
        // next scan re-detect (paper: mandatory re-scan per kernel).
        if (req.is_write && common_.contains(chunk) &&
            req.bytes < kChunkBytes) {
            common_.erase(chunk);
            stats_.add("demotions");
        }

        if (!skip_tree) {
            if (!req.is_write && common_.contains(chunk)) {
                // Shared counter lives on-chip: no fetch, no walk.
                ctr_done = std::max(ctr_done, issue + cfg_.hit_latency);
                stats_.add("common_hits");
            } else {
                const std::uint64_t leaf = lineIndex(span);
                if (req.is_write) {
                    writeWalk(0, leaf, issue, mem);
                } else {
                    ctr_done = std::max(
                        ctr_done, readWalk(0, leaf, issue, mem));
                }
            }
        }

        // MACs are conventional 64B-granular.
        const Addr mac_line =
            layout_.macLineAddr(layout_.fineMacIndex(span));
        mac_done = std::max(
            mac_done, touchMac(mac_line, req.is_write, issue, mem));
    }

    // Track streaming to nominate candidates for the next scan.
    for (Addr la = first; la <= last; la += kCachelineBytes)
        tracker_.recordAccess(la, issue);
    for (const auto &[chunk, sp] : detections_) {
        if (sp == kAllStream)
            candidates_.insert(chunk);
    }
    detections_.clear();

    if (req.is_write)
        return issue;

    Cycle done = std::max(data_done, ctr_done + cfg_.otp_latency) +
                 cfg_.xor_latency;
    done = std::max(done, mac_done) + cfg_.hash_latency;
    return done;
}

void
CommonCountersEngine::kernelBoundary(Cycle now, MemCtrl &mem)
{
    // Scan step: read all 64 leaf-counter lines of every candidate
    // segment to verify counter uniformity.
    for (const std::uint64_t chunk : candidates_) {
        const std::uint64_t leaf0 = chunk * kLinesPerChunk;
        for (unsigned l = 0; l < kLinesPerChunk / kTreeArity; ++l) {
            mem.serve(now,
                      layout_.counterLineAddr(0, leaf0 +
                                                     l * kTreeArity),
                      kCachelineBytes, false, Traffic::Counter);
        }
        stats_.add("scanned_segments");
        if (common_.size() < kMaxCommon) {
            common_.insert(chunk);
            stats_.add("promotions");
        } else {
            stats_.add("table_full_rejections");
        }
    }
    candidates_.clear();
}

} // namespace mgmee
