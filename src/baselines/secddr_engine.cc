#include "baselines/secddr_engine.hh"

#include <algorithm>

namespace mgmee {

namespace {

/** In-band MAC bytes per 64B burst (64-bit tag riding the link). */
constexpr std::uint32_t kLinkMacBytes = 8;

} // namespace

SecDdrEngine::SecDdrEngine(std::size_t data_bytes,
                           const TimingConfig &cfg)
    : MeeTimingBase("SecDDR", data_bytes, cfg)
{
}

Cycle
SecDdrEngine::access(const MemRequest &req, MemCtrl &mem)
{
    const Cycle issue = req.issue;
    stats_.add(req.is_write ? "writes" : "reads");

    const Cycle data_done =
        mem.serve(issue, req.addr, req.bytes, req.is_write);

    // The MAC travels in-band with each 64B burst: extra link
    // occupancy proportional to the transfer, no separate MAC-line
    // fetch, no cache, and -- the defining property -- no counter or
    // tree traffic at all.
    const std::uint64_t lines =
        (alignDown(req.addr + (req.bytes ? req.bytes - 1 : 0),
                   kCachelineBytes) -
         alignDown(req.addr, kCachelineBytes)) /
            kCachelineBytes +
        1;
    const std::uint32_t mac_bytes =
        static_cast<std::uint32_t>(lines * kLinkMacBytes);
    const Addr mac_line = layout_.macLineAddr(
        layout_.fineMacIndex(alignDown(req.addr, kCachelineBytes)));
    const Cycle mac_done = mem.serve(issue, mac_line, mac_bytes,
                                     req.is_write, Traffic::Mac);
    stats_.add("mac_link_bytes", mac_bytes);

    if (req.is_write)
        return issue;

    // Decrypt is still counter-mode over a link-local nonce, so the
    // OTP can be precomputed; the verify chain is data + in-band MAC
    // + one hash.
    Cycle done = std::max(data_done, issue + cfg_.otp_latency) +
                 cfg_.xor_latency;
    done = std::max(done, mac_done) + cfg_.hash_latency;
    return done;
}

} // namespace mgmee
