#include "baselines/static_best.hh"

namespace mgmee {

std::unique_ptr<MultiGranEngine>
makeStaticEngine(std::size_t data_bytes, const TimingConfig &timing,
                 const std::array<Granularity, 8> &per_device,
                 const std::string &name)
{
    MultiGranEngineConfig cfg;
    cfg.timing = timing;
    cfg.dynamic = false;
    cfg.static_gran = per_device;
    return std::make_unique<MultiGranEngine>(name, data_bytes, cfg);
}

} // namespace mgmee
