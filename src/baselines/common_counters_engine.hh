/**
 * @file
 * "Common Counters" baseline (Na et al., HPCA'21 [35]): dual-granular
 * counters via a small on-chip table of shared counters for 32KB
 * segments whose counter values are uniform, detected by a scanning
 * step at kernel boundaries.  MACs stay 64B-granular and the integrity
 * tree is unmodified (accesses through a common counter skip both the
 * counter fetch and the tree walk because the shared counter is
 * on-chip and trusted).
 */

#ifndef MGMEE_BASELINES_COMMON_COUNTERS_ENGINE_HH
#define MGMEE_BASELINES_COMMON_COUNTERS_ENGINE_HH

#include <unordered_set>
#include <vector>

#include "core/access_tracker.hh"
#include "mee/timing_engine.hh"

namespace mgmee {

/** Dual-granular-counter engine with a bounded common-counter set. */
class CommonCountersEngine : public MeeTimingBase
{
  public:
    /** Paper: "a limited set of 16 shared counters". */
    static constexpr unsigned kMaxCommon = 16;

    CommonCountersEngine(std::size_t data_bytes,
                         const TimingConfig &cfg);

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

    /**
     * Kernel-termination scan: reads every leaf-counter line of each
     * candidate segment to test uniformity, then promotes uniform
     * segments into the common set (up to the 16-entry limit).
     */
    void kernelBoundary(Cycle now, MemCtrl &mem) override;

    std::size_t commonSegments() const { return common_.size(); }

  private:
    AccessTracker tracker_;
    /** Chunks currently covered by an on-chip common counter. */
    std::unordered_set<std::uint64_t> common_;
    /** Uniformly-streamed chunks awaiting the next scan. */
    std::unordered_set<std::uint64_t> candidates_;
    std::vector<std::pair<std::uint64_t, StreamPart>> detections_;
};

} // namespace mgmee

#endif // MGMEE_BASELINES_COMMON_COUNTERS_ENGINE_HH
