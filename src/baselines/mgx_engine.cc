#include "baselines/mgx_engine.hh"

#include <algorithm>

namespace mgmee {

MgxSchedule
mgxScheduleFor(const WorkloadSpec &wl)
{
    MgxSchedule sched;
    // Only software-managed tensor programs expose the write schedule
    // MGX derives versions from; CPU and GPU profiles stay unmanaged.
    sched.software_managed = wl.kind == DeviceKind::NPU;
    return sched;
}

MgxEngine::MgxEngine(std::size_t data_bytes, const TimingConfig &cfg,
                     std::array<MgxSchedule, 8> schedules)
    : MeeTimingBase("MGX", data_bytes, cfg), schedules_(schedules)
{
}

Cycle
MgxEngine::access(const MemRequest &req, MemCtrl &mem)
{
    const Cycle issue = req.issue;
    stats_.add(req.is_write ? "writes" : "reads");

    const Cycle data_done =
        mem.serve(issue, req.addr, req.bytes, req.is_write);

    Cycle ctr_done = issue;
    Cycle mac_done = issue;
    const Addr first = alignDown(req.addr, kCachelineBytes);
    const Addr last = alignDown(req.addr + (req.bytes ? req.bytes - 1
                                                      : 0),
                                kCachelineBytes);

    const MgxSchedule &sched =
        schedules_[req.device % schedules_.size()];
    for (Addr span = alignDown(first, kPartitionBytes); span <= last;
         span += kPartitionBytes) {
        if (sched.software_managed) {
            // version = f(progress): recomputed on chip from the
            // program schedule.  No fetch, no table, no eviction --
            // only the derivation compute.
            ctr_done = std::max(ctr_done,
                                issue + sched.derive_latency);
            stats_.add("derived_versions");
        } else {
            // No schedule to derive from: the conventional per-block
            // counter tree protects general traffic.
            const std::uint64_t leaf = lineIndex(span);
            if (req.is_write)
                writeWalk(0, leaf, issue, mem);
            else
                ctr_done = std::max(ctr_done,
                                    readWalk(0, leaf, issue, mem));
            stats_.add("fallback_spans");
        }

        // MACs stay 64B-granular on both sides of the boundary.
        const Addr mac_line =
            layout_.macLineAddr(layout_.fineMacIndex(span));
        mac_done = std::max(
            mac_done, touchMac(mac_line, req.is_write, issue, mem));
    }

    if (req.is_write)
        return issue;

    Cycle done = std::max(data_done, ctr_done + cfg_.otp_latency) +
                 cfg_.xor_latency;
    done = std::max(done, mac_done) + cfg_.hash_latency;
    return done;
}

} // namespace mgmee
