/**
 * @file
 * "Adaptive" baseline (Yuan et al., HPCA'22 [56]): 64B-granular
 * counters with a dynamically detected dual-granular (64B / 4KB) MAC.
 *
 * Modelled as a configuration of the unified engine: coarse counters
 * off, coarse MACs capped at 4KB, and double MAC storage (the scheme
 * keeps fine and coarse MACs side by side, paying extra MAC-update
 * traffic and gaining no compaction).
 */

#ifndef MGMEE_BASELINES_ADAPTIVE_MAC_ENGINE_HH
#define MGMEE_BASELINES_ADAPTIVE_MAC_ENGINE_HH

#include <memory>

#include "core/multigran_engine.hh"

namespace mgmee {

/** Build the Adaptive (dual-granular MAC) baseline engine. */
std::unique_ptr<MultiGranEngine>
makeAdaptiveEngine(std::size_t data_bytes, const TimingConfig &timing);

} // namespace mgmee

#endif // MGMEE_BASELINES_ADAPTIVE_MAC_ENGINE_HH
