#include "baselines/adaptive_mac_engine.hh"

namespace mgmee {

std::unique_ptr<MultiGranEngine>
makeAdaptiveEngine(std::size_t data_bytes, const TimingConfig &timing)
{
    MultiGranEngineConfig cfg;
    cfg.timing = timing;
    cfg.coarse_ctrs = false;               // counters stay 64B
    cfg.coarse_macs = true;                // dual-granular MAC
    cfg.dual_only = Granularity::Sub4KB;   // 4KB coarse level
    cfg.double_mac_store = true;           // fine MACs kept alongside
    return std::make_unique<MultiGranEngine>("Adaptive", data_bytes,
                                             cfg);
}

} // namespace mgmee
