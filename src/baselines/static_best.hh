/**
 * @file
 * Static per-device granularity baselines (Sec. 3.3 / Fig. 6 and the
 * "Static-device-best" scheme of Table 5).
 *
 * The engine applies one fixed granularity to every address a device
 * touches; the exhaustive search over the 4^D per-device granularity
 * assignments is performed by the evaluation harness using
 * makeStaticEngine for each candidate.
 */

#ifndef MGMEE_BASELINES_STATIC_BEST_HH
#define MGMEE_BASELINES_STATIC_BEST_HH

#include <array>
#include <memory>
#include <string>

#include "core/multigran_engine.hh"

namespace mgmee {

/** Build an engine with a fixed granularity per device. */
std::unique_ptr<MultiGranEngine>
makeStaticEngine(std::size_t data_bytes, const TimingConfig &timing,
                 const std::array<Granularity, 8> &per_device,
                 const std::string &name = "Static");

/** All candidate granularities for the exhaustive search. */
constexpr std::array<Granularity, 4> kAllGranularities = {
    Granularity::Line64B,
    Granularity::Part512B,
    Granularity::Sub4KB,
    Granularity::Chunk32KB,
};

} // namespace mgmee

#endif // MGMEE_BASELINES_STATIC_BEST_HH
