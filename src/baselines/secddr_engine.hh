/**
 * @file
 * SecDDR-style interface-only protection engine (Fakhrzadehgan et
 * al., "SecDDR: Enabling Low-Cost Secure Memories by Protecting the
 * DDR Interface").
 *
 * SecDDR authenticates the memory *link*, not memory *state*: every
 * transfer carries a MAC over (address, ciphertext) that travels with
 * the burst, verified at the interface.  There are no counters, no
 * integrity tree, no tree walks and no metadata cache -- the per-
 * access cost is one MAC transfer plus one hash, independent of the
 * protected-region size.  That is the entire appeal: near-zero
 * metadata footprint and flat latency.
 *
 * The trade-off is freshness.  With no version input to the MAC, a
 * consistent {ciphertext, MAC} pair captured earlier verifies again
 * when replayed at rest, so rollback of quiescent data is invisible
 * to the interface.  The fault campaign's "secddr-interface" row
 * measures exactly that: data/MAC tampering and relocation detected,
 * replay-at-rest missed -- the same gap as the treeless-cpu row,
 * reached from the opposite end of the design space.
 */

#ifndef MGMEE_BASELINES_SECDDR_ENGINE_HH
#define MGMEE_BASELINES_SECDDR_ENGINE_HH

#include "mee/timing_engine.hh"

namespace mgmee {

/** Link-level per-transfer MAC engine: no counters, no tree. */
class SecDdrEngine : public MeeTimingBase
{
  public:
    SecDdrEngine(std::size_t data_bytes, const TimingConfig &cfg);

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

    /** Extra link bytes moved for in-band MACs. */
    std::uint64_t macLinkBytes() const
    {
        return stats_.get("mac_link_bytes");
    }
};

} // namespace mgmee

#endif // MGMEE_BASELINES_SECDDR_ENGINE_HH
