/**
 * @file
 * Live telemetry plane (ISSUE 8): periodic snapshots of the global
 * stat registry and of lock-free streaming histograms, emitted as a
 * timestamped JSONL timeline while a run is in flight, with an
 * optional single-line terminal HUD.
 *
 * Design constraints mirror the trace plane (obs/trace.hh):
 *
 *  - with telemetry disabled (the default) every instrumentation
 *    site costs exactly one branch on a cached bool;
 *  - enabled, the hot path stays uncontended: counters go through
 *    StatRegistry sharded counters (one relaxed add on a private
 *    cache line) and latencies through StreamingHistogram (two
 *    relaxed adds); only the sampler thread walks the stripes;
 *  - each interval record carries *deltas* since the previous
 *    record, so the JSONL timeline doubles as a conservation check:
 *    baseline + sum(deltas) must equal the manifest's final totals
 *    (scripts/check_trace_totals.py --telemetry enforces this).
 *
 * Enable by environment (`MGMEE_TELEMETRY=<ms>`, JSONL path from
 * `MGMEE_TELEMETRY_PATH`, default results/telemetry.jsonl; HUD via
 * `MGMEE_HUD=1`) or programmatically via startTelemetry().
 */

#ifndef MGMEE_OBS_TELEMETRY_HH
#define MGMEE_OBS_TELEMETRY_HH

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "common/stats.hh"

namespace mgmee::obs {

/**
 * A histogram that any thread can record into without locks while
 * the telemetry sampler snapshots it: atomic log2 buckets plus an
 * atomic sum, all relaxed.  There is no exact min/max (snapshots
 * derive them from bucket edges) so record() stays at two relaxed
 * adds.  Instances interned via telemetryHistogram() are immortal,
 * so cached references never dangle.
 */
class StreamingHistogram
{
  public:
    /** Record @p value (lock-free, relaxed; safe from any thread). */
    void
    record(std::uint64_t value)
    {
        const unsigned bucket = std::min<unsigned>(
            Histogram::kBuckets - 1,
            static_cast<unsigned>(std::bit_width(value)));
        buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    /** Samples recorded so far (sum of buckets, relaxed). */
    std::uint64_t count() const;

    /** Everything recorded since construction, as a Histogram. */
    Histogram snapshot() const;

    /** Raw bucket counts + sum (the sampler's delta source). */
    void snapshotRaw(std::uint64_t (&buckets)[Histogram::kBuckets],
                     std::uint64_t &sum) const;

  private:
    std::atomic<std::uint64_t> buckets_[Histogram::kBuckets] = {};
    std::atomic<std::uint64_t> sum_{0};
};

namespace detail {

/** Cached enable flag; read by every instrumentation site. */
extern bool g_telemetry_on;

} // namespace detail

/** True when a telemetry session is active (one cached-bool load). */
inline bool telemetryEnabled() { return detail::g_telemetry_on; }

/**
 * Begin sampling every @p interval_ms milliseconds.  @p jsonl_path
 * receives one JSON object per line (baseline record, then interval
 * deltas); empty means keep the timeline in memory only.  @p hud
 * additionally repaints a one-line status on stderr per interval.
 * Returns false (and stays disabled) if a session is already active
 * or the file cannot be opened.
 */
bool startTelemetry(unsigned interval_ms,
                    const std::string &jsonl_path = "",
                    bool hud = false);

/** Emit a final interval record, join the sampler, close the file. */
void stopTelemetry();

/** True between startTelemetry() and stopTelemetry(). */
bool telemetryActive();

/**
 * The streaming histogram named @p name (interned on first use; the
 * reference stays valid for the process lifetime).  Interval records
 * include per-histogram bucket deltas; Manifest::captureTelemetry
 * embeds the merged view.
 */
StreamingHistogram &telemetryHistogram(const std::string &name);

/**
 * Label the current phase ("sweep cell 12/64", ...).  Shown in the
 * HUD and attached to the next interval record.  One branch when
 * telemetry is off — callers need not guard.
 */
void telemetryNote(const std::string &note);

/**
 * Force an interval record now (instead of waiting for the timer).
 * @p manifest_boundary marks the record as the point a manifest
 * snapshot was taken, which is where the JSONL conservation check
 * reconciles against the manifest totals.
 */
void telemetryFlush(bool manifest_boundary = false);

/** Interval records emitted in the current/last session. */
std::uint64_t telemetryIntervals();

/** The active session's sampling interval (0 when inactive). */
unsigned telemetryIntervalMs();

/** The active session's JSONL path ("" when none). */
std::string telemetryPath();

/**
 * The in-memory timeline as a JSON array of interval objects (capped
 * at a few thousand entries; "[]" when telemetry never ran).
 */
std::string telemetryTimelineJson();

} // namespace mgmee::obs

#endif // MGMEE_OBS_TELEMETRY_HH
