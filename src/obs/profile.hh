/**
 * @file
 * Phase profiler: RAII scoped wall-clock timers building a
 * hierarchical call tree across the sweep pipeline (trace generation,
 * scenario runs, static-best search, memo lookups, ...).
 *
 * Usage at a phase boundary:
 *
 *     void runScenarioMemo(...) {
 *         OBS_SCOPE("memo_lookup");
 *         ...
 *     }
 *
 * Scopes nest: a timer opened inside another timer's dynamic extent
 * becomes its child, and the report shows total time, self time
 * (total minus children) and call counts per path.  Each thread keeps
 * its own tree (no synchronisation on the timing path); snapshots
 * merge the per-thread trees by scope name.
 *
 * Disabled (the default) the ScopedTimer constructor is one branch on
 * a cached bool.  Enable with `MGMEE_PROFILE=1` (a report is printed
 * to stderr at exit) or programmatically with setProfilerEnabled().
 */

#ifndef MGMEE_OBS_PROFILE_HH
#define MGMEE_OBS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mgmee::obs {

namespace detail {

extern bool g_profile_on;

struct ProfileNodeImpl;

/** Open a child scope of the current thread's position. */
ProfileNodeImpl *enterScope(const char *name);

/** Close @p node, charging @p elapsed_ns to it. */
void exitScope(ProfileNodeImpl *node, std::uint64_t elapsed_ns);

/** Monotonic nanoseconds. */
std::uint64_t nowNs();

} // namespace detail

/** True when scoped timers record (one cached-bool load). */
inline bool profilerEnabled() { return detail::g_profile_on; }

/** Turn recording on/off (tests, harnesses). */
void setProfilerEnabled(bool on);

/** One node of a merged profiler snapshot. */
struct ProfileNode
{
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    /** total_ns minus the total of every child (own work). */
    std::uint64_t self_ns = 0;
    std::vector<ProfileNode> children;  //!< sorted by name
};

/**
 * Merge every thread's tree (live and retired) into one tree rooted
 * at "root"; the root's total is the sum of its children.
 */
ProfileNode profilerSnapshot();

/** Indented human-readable report of profilerSnapshot(). */
std::string profilerReport();

/** profilerSnapshot() as a nested JSON object. */
std::string profilerToJson();

/** Drop all recorded scopes (test/bench isolation). */
void profilerReset();

/** RAII scope; use via OBS_SCOPE. @p name must outlive the scope. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *name)
    {
        if (profilerEnabled()) {
            node_ = detail::enterScope(name);
            start_ns_ = detail::nowNs();
        }
    }

    ~ScopedTimer()
    {
        if (node_)
            detail::exitScope(node_, detail::nowNs() - start_ns_);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    detail::ProfileNodeImpl *node_ = nullptr;
    std::uint64_t start_ns_ = 0;
};

} // namespace mgmee::obs

#define OBS_SCOPE_CAT2(a, b) a##b
#define OBS_SCOPE_CAT(a, b) OBS_SCOPE_CAT2(a, b)
/** Time the rest of the enclosing block as scope @p name. */
#define OBS_SCOPE(name)                                                      \
    ::mgmee::obs::ScopedTimer OBS_SCOPE_CAT(obs_scope_, __LINE__)(name)

#endif // MGMEE_OBS_PROFILE_HH
