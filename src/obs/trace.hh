/**
 * @file
 * Security-event tracing: a typed, binary event stream of the
 * behavioral moments the paper's figures attribute overheads to --
 * tree-walk depth and per-level cache hits, granularity
 * promotions/demotions, rekeys, lazy MAC-compaction walks, tracker
 * allocate/evict, subtree-root-cache probes, memo hits/misses, and
 * stream-chunk classification.
 *
 * Design constraints (ISSUE 3):
 *  - with tracing disabled (the default) every emission site costs
 *    exactly one branch on a cached bool -- no allocation, no call;
 *  - enabled, events land in per-thread buffers (no shared-state
 *    writes on the emission path); a buffer that fills appends its
 *    records to the trace file under one file mutex, amortised over
 *    thousands of events;
 *  - the on-disk format is a fixed 24-byte record stream behind a
 *    self-describing header, decodable by obs::readTraceFile and by
 *    tools/mgmee-trace-stats, with a JSONL exporter for ad-hoc
 *    analysis.
 *
 * Enable by environment (`MGMEE_TRACE=<path>`, flushed at exit) or
 * programmatically via startTrace()/stopTrace() (tests, harnesses).
 * Start/stop are meant for quiesce points (no concurrent emitters);
 * emission itself is thread-safe.
 */

#ifndef MGMEE_OBS_TRACE_HH
#define MGMEE_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mgmee::obs {

/** Event taxonomy; values are the on-disk encoding (stable). */
enum class EventKind : std::uint8_t
{
    WalkRead = 1,      //!< read walk done; arg0=depth, value=stop reason
    WalkLevel = 2,     //!< one level; arg0=level, value bit0=hit bit1=write
    WalkWrite = 3,     //!< write walk done; arg0=depth (dirties to root)
    GranPromote = 4,   //!< arg0=(from<<4)|to; addr=partition base
    GranDemote = 5,    //!< arg0=(from<<4)|to; addr=partition base
    Rekey = 6,         //!< value=chunks re-encrypted
    MacCompact = 7,    //!< lazy node-MAC flush; value=nodes refreshed
    TrackerAlloc = 8,  //!< addr=chunk index
    TrackerEvict = 9,  //!< arg0=reason, value=touched lines; addr=chunk
    MemoHit = 10,      //!< arg0=memo table id
    MemoMiss = 11,     //!< arg0=memo table id
    SubtreeHit = 12,   //!< root-cache probe hit; addr=node line
    SubtreeMiss = 13,  //!< root-cache probe miss; addr=node line
    StreamChunk = 14,  //!< arg0=class(0..3), value=lines; addr=chunk base
    FaultInject = 15,  //!< arg0=AttackClass, value=injection #; addr=site
    FaultVerdict = 16, //!< arg0=AttackClass, value=fault::Verdict
    MacBatchFlush = 17, //!< MAC staging-buffer drain; value=occupancy
    TraceDropped = 18, //!< per-thread drop trailer; addr=records lost
};

/** Reason a read walk stopped (WalkRead.value). */
enum class WalkStop : std::uint32_t
{
    Root = 0,       //!< climbed all the way to the on-chip root
    CacheHit = 1,   //!< metadata-cache hit ended the walk
    RootCache = 2,  //!< pinned subtree root ended the walk
};

/** Why a tracker entry was evicted (TrackerEvict.arg0). */
enum class EvictReason : std::uint8_t
{
    Capacity = 0,  //!< LRU victim on allocation pressure
    Lifetime = 1,  //!< 16K-cycle lifetime expiry
    Accesses = 2,  //!< access-count threshold reached
    Flush = 3,     //!< end-of-simulation flush
};

/** Which memo table a MemoHit/MemoMiss refers to (arg0). */
enum class MemoTable : std::uint8_t
{
    Run = 0,        //!< (scenario, scheme) run-result memo
    Search = 1,     //!< static-best search memo
    TraceRepo = 2,  //!< generated-trace repository
};

/** One fixed-size trace record (the on-disk layout, little-endian). */
struct TraceRecord
{
    std::uint64_t cycle = 0;  //!< simulated cycle (0 if not timed)
    std::uint64_t addr = 0;   //!< address / chunk / key hash
    std::uint32_t value = 0;  //!< event-specific payload
    std::uint8_t kind = 0;    //!< EventKind
    std::uint8_t arg0 = 0;    //!< small event-specific payload
    std::uint16_t thread = 0; //!< emitting thread (per-session index)
};

static_assert(sizeof(TraceRecord) == 24,
              "TraceRecord is the on-disk format; keep it packed");

/**
 * When the high bit of TraceRecord::thread is set, the low 15 bits
 * are a scheduler *shard* index rather than a per-session thread
 * index: with the sharded event scheduler the executing OS thread is
 * an accident of the worker pool, so the shard is the meaningful
 * attribution.  Records without the bit keep the v1 thread meaning,
 * so the format version does not change.
 */
constexpr std::uint16_t kThreadShardBit = 0x8000;

/**
 * Tag events emitted by the calling thread with @p shard (>= 0)
 * instead of its thread index; -1 restores thread attribution.
 * Thread-local; the scheduler sets it around shard execution.
 */
void setTraceShard(int shard);

/** The calling thread's current shard tag (-1 = untagged). */
int traceShard();

/** Stable name of @p kind ("walk_read", ...); "unknown" if not. */
const char *eventKindName(EventKind kind);

namespace detail {

/** Cached enable flag; read by every emission site. */
extern bool g_trace_on;

/** Slow path: buffer lookup + append (tracing known enabled). */
void emitSlow(EventKind kind, std::uint64_t cycle, std::uint64_t addr,
              std::uint32_t value, std::uint8_t arg0);

} // namespace detail

/** True when a trace session is active (one cached-bool load). */
inline bool traceEnabled() { return detail::g_trace_on; }

/**
 * Emit one event if tracing is enabled.  The disabled path is the
 * inlined flag test only.
 */
inline void
emit(EventKind kind, std::uint64_t cycle, std::uint64_t addr,
     std::uint32_t value = 0, std::uint8_t arg0 = 0)
{
    if (traceEnabled())
        detail::emitSlow(kind, cycle, addr, value, arg0);
}

/**
 * Open @p path and begin recording.  Returns false (and stays
 * disabled) if the file cannot be opened or a session is already
 * active.
 */
bool startTrace(const std::string &path);

/** Flush every thread buffer, close the file, disable tracing. */
void stopTrace();

/** Events recorded in the current/last session (diagnostics). */
std::uint64_t eventsEmitted();

/**
 * Records lost in the current/last session: a buffer flushed after
 * the file closed (stop raced an emitter) or a short fwrite (disk
 * full).  Also counted in the `obs.trace.dropped` registry stat and
 * surfaced as per-thread TraceDropped trailer records in the file.
 */
std::uint64_t eventsDropped();

/** Thread buffers allocated in the current/last session. */
std::size_t threadBuffersAllocated();

/** Decode a binary trace file; throws nothing, fatal()s on damage. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** Render one record as a single-line JSON object. */
std::string recordToJson(const TraceRecord &rec);

/**
 * Convert a binary trace to JSON-lines (one object per record).
 * Returns the number of records written, or -1 on I/O failure.
 */
long exportJsonl(const std::string &binary_path,
                 const std::string &jsonl_path);

} // namespace mgmee::obs

/** Emission macro: no-op (one branch) unless tracing is active. */
#define OBS_EVENT(kind, cycle, addr, value, arg0)                            \
    ::mgmee::obs::emit((kind), (cycle), (addr), (value), (arg0))

#endif // MGMEE_OBS_TRACE_HH
