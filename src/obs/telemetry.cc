#include "obs/telemetry.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "obs/manifest.hh"

namespace mgmee::obs {

namespace detail {
bool g_telemetry_on = false;
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** Timeline entries kept in memory for manifest embedding. */
constexpr std::size_t kTimelineCap = 4096;

/** An interned streaming histogram plus the sampler's last view. */
struct HistSlot
{
    StreamingHistogram hist;
    std::uint64_t prev_buckets[Histogram::kBuckets] = {};
    std::uint64_t prev_sum = 0;
};

/**
 * One telemetry session plus the immortal histogram registry.  The
 * mutex guards everything except StreamingHistogram::record (lock
 * free by design) and the cached enable flag.
 */
struct Plane
{
    std::mutex mu;
    std::condition_variable cv;
    std::thread sampler;
    bool active = false;
    bool stopping = false;
    bool hud = false;
    unsigned interval_ms = 0;
    std::FILE *file = nullptr;
    std::string path;
    std::string note;
    bool note_dirty = false;
    Clock::time_point t0;
    std::uint64_t intervals = 0;
    std::map<std::string, std::uint64_t> prev;
    std::map<std::string, std::unique_ptr<HistSlot>> hists;
    std::vector<std::string> timeline;
    bool timeline_truncated = false;
};

/** Immortal, like the trace session: instrumentation sites cache
 *  histogram references that must outlive static teardown. */
Plane &
plane()
{
    static Plane &p = *new Plane;
    return p;
}

/** Flatten every registry group into "group.stat" -> value. */
std::map<std::string, std::uint64_t>
flattenRegistry()
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &[group, g] :
         StatRegistry::instance().snapshotAll()) {
        for (const auto &[stat, value] : g.counters())
            out[group + '.' + stat] = value;
    }
    return out;
}

std::string
formatRate(double per_sec)
{
    char buf[32];
    if (per_sec >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", per_sec / 1e6);
    else if (per_sec >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", per_sec / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", per_sec);
    return buf;
}

std::string
formatNanos(std::uint64_t ns)
{
    char buf[32];
    if (ns >= 1000000)
        std::snprintf(buf, sizeof(buf), "%.1fms",
                      static_cast<double>(ns) / 1e6);
    else if (ns >= 1000)
        std::snprintf(buf, sizeof(buf), "%.1fus",
                      static_cast<double>(ns) / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(ns));
    return buf;
}

/** Repaint the one-line HUD on stderr.  Caller holds mu. */
void
hudLocked(Plane &p, const std::map<std::string, std::int64_t> &deltas,
          const std::vector<std::pair<std::string, Histogram>> &hists,
          double dt_s)
{
    auto delta = [&](const char *key) -> std::int64_t {
        auto it = deltas.find(key);
        return it == deltas.end() ? 0 : it->second;
    };

    std::int64_t events = delta("sched.dispatched");
    const char *events_label = "ev/s";
    if (events == 0) {
        events = delta("crypto.blocks_encrypted");
        events_label = "blk/s";
    }

    Histogram quantum;
    for (const auto &[name, h] : hists) {
        if (name.rfind("sched.quantum_wall_ns", 0) == 0)
            quantum.merge(h);
    }

    const std::int64_t blocks = delta("crypto.blocks_encrypted");

    std::ostringstream os;
    os << "[telemetry]";
    if (!p.note.empty())
        os << ' ' << p.note;
    if (dt_s > 0 && events > 0) {
        os << " | " << events_label << ' '
           << formatRate(static_cast<double>(events) / dt_s);
    }
    if (quantum.count()) {
        os << " | quantum p50/p99 "
           << formatNanos(quantum.percentile(0.5)) << '/'
           << formatNanos(quantum.percentile(0.99));
    }
    if (dt_s > 0 && blocks > 0) {
        // AES blocks are 16 bytes (crypto.blocks_encrypted).
        os << " | crypto "
           << formatRate(static_cast<double>(blocks) * 16.0 / dt_s)
           << "B/s";
    }
    std::fprintf(stderr, "\r\x1b[K%s", os.str().c_str());
    std::fflush(stderr);
}

/**
 * Emit one interval record: registry deltas since the last record,
 * per-histogram bucket deltas, the current note.  Caller holds mu.
 */
void
flushLocked(Plane &p, bool manifest_boundary)
{
    const auto now = Clock::now();
    const double t_ms =
        std::chrono::duration<double, std::milli>(now - p.t0).count();

    std::map<std::string, std::uint64_t> cur = flattenRegistry();
    std::map<std::string, std::int64_t> deltas;
    for (const auto &[key, value] : cur) {
        const auto it = p.prev.find(key);
        const std::int64_t d = static_cast<std::int64_t>(
            value - (it == p.prev.end() ? 0 : it->second));
        if (d != 0)
            deltas[key] = d;
    }

    std::vector<std::pair<std::string, Histogram>> hist_deltas;
    for (auto &[name, slot] : p.hists) {
        std::uint64_t buckets[Histogram::kBuckets];
        std::uint64_t sum = 0;
        slot->hist.snapshotRaw(buckets, sum);
        std::uint64_t delta_buckets[Histogram::kBuckets];
        std::uint64_t delta_count = 0;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            delta_buckets[b] = buckets[b] - slot->prev_buckets[b];
            delta_count += delta_buckets[b];
        }
        if (delta_count == 0)
            continue;
        hist_deltas.emplace_back(
            name,
            Histogram::fromBuckets(delta_buckets,
                                   sum - slot->prev_sum));
        for (unsigned b = 0; b < Histogram::kBuckets; ++b)
            slot->prev_buckets[b] = buckets[b];
        slot->prev_sum = sum;
    }

    const double dt_s = p.intervals == 0
        ? t_ms / 1e3
        : static_cast<double>(p.interval_ms) / 1e3;

    std::ostringstream os;
    os << "{\"type\": \"interval\", \"i\": " << p.intervals
       << ", \"t_ms\": ";
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", t_ms);
        os << buf;
    }
    if (manifest_boundary)
        os << ", \"manifest\": true";
    if (p.note_dirty) {
        os << ", \"note\": \"" << jsonEscape(p.note) << '"';
        p.note_dirty = false;
    }
    os << ", \"deltas\": {";
    bool first = true;
    for (const auto &[key, d] : deltas) {
        if (!first)
            os << ", ";
        first = false;
        os << '"' << jsonEscape(key) << "\": " << d;
    }
    os << '}';
    if (!hist_deltas.empty()) {
        os << ", \"hist\": {";
        first = true;
        for (const auto &[name, h] : hist_deltas) {
            if (!first)
                os << ", ";
            first = false;
            os << '"' << jsonEscape(name) << "\": " << h.toJson();
        }
        os << '}';
    }
    os << '}';

    const std::string line = os.str();
    if (p.file) {
        std::fputs(line.c_str(), p.file);
        std::fputc('\n', p.file);
        std::fflush(p.file);
    }
    if (p.timeline.size() < kTimelineCap)
        p.timeline.push_back(line);
    else
        p.timeline_truncated = true;
    ++p.intervals;
    p.prev = std::move(cur);

    if (p.hud)
        hudLocked(p, deltas, hist_deltas, dt_s);
}

void
samplerMain()
{
    Plane &p = plane();
    std::unique_lock<std::mutex> lock(p.mu);
    while (!p.stopping) {
        p.cv.wait_for(lock,
                      std::chrono::milliseconds(p.interval_ms));
        if (p.stopping)
            break;
        flushLocked(p, false);
    }
}

/** Auto-start from Config (MGMEE_TELEMETRY / MGMEE_HUD), stopped via
 *  atexit. */
struct EnvAutoStart
{
    EnvAutoStart()
    {
        const Config &cfg = config();
        const bool hud = cfg.hud;
        unsigned interval_ms = cfg.telemetry_ms;
        if (interval_ms == 0 && !hud)
            return;
        std::string path;
        if (interval_ms == 0) {
            interval_ms = 500;  // HUD alone: sample, but no file
        } else {
            path = !cfg.telemetry_path.empty()
                       ? cfg.telemetry_path
                       : cfg.results_dir + "/telemetry.jsonl";
        }
        if (startTelemetry(interval_ms, path, hud))
            std::atexit([] { stopTelemetry(); });
    }
};

EnvAutoStart g_env_auto_start;

} // namespace

// ---- StreamingHistogram -------------------------------------------------

std::uint64_t
StreamingHistogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &b : buckets_)
        total += b.load(std::memory_order_relaxed);
    return total;
}

Histogram
StreamingHistogram::snapshot() const
{
    std::uint64_t buckets[Histogram::kBuckets];
    std::uint64_t sum = 0;
    snapshotRaw(buckets, sum);
    return Histogram::fromBuckets(buckets, sum);
}

void
StreamingHistogram::snapshotRaw(
    std::uint64_t (&buckets)[Histogram::kBuckets],
    std::uint64_t &sum) const
{
    for (unsigned b = 0; b < Histogram::kBuckets; ++b)
        buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    sum = sum_.load(std::memory_order_relaxed);
}

// ---- Session control ----------------------------------------------------

bool
startTelemetry(unsigned interval_ms, const std::string &jsonl_path,
               bool hud)
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    if (p.active) {
        warn("telemetry session already active; ignoring restart");
        return false;
    }
    if (interval_ms == 0)
        interval_ms = 500;

    std::FILE *f = nullptr;
    if (!jsonl_path.empty()) {
        const auto dir =
            std::filesystem::path(jsonl_path).parent_path();
        if (!dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(dir, ec);
        }
        f = std::fopen(jsonl_path.c_str(), "w");
        if (!f) {
            warn("cannot open telemetry file %s",
                 jsonl_path.c_str());
            return false;
        }
    }

    p.active = true;
    p.stopping = false;
    p.hud = hud;
    p.interval_ms = interval_ms;
    p.file = f;
    p.path = jsonl_path;
    p.note.clear();
    p.note_dirty = false;
    p.t0 = Clock::now();
    p.intervals = 0;
    p.prev = flattenRegistry();
    p.timeline.clear();
    p.timeline_truncated = false;
    for (auto &[name, slot] : p.hists) {
        std::uint64_t sum = 0;
        slot->hist.snapshotRaw(slot->prev_buckets, sum);
        slot->prev_sum = sum;
    }

    if (p.file) {
        const std::uint64_t unix_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        std::ostringstream os;
        os << "{\"type\": \"start\", \"interval_ms\": " << interval_ms
           << ", \"unix_ms\": " << unix_ms << ", \"baseline\": {";
        bool first = true;
        for (const auto &[key, value] : p.prev) {
            if (!first)
                os << ", ";
            first = false;
            os << '"' << jsonEscape(key) << "\": " << value;
        }
        os << "}}";
        std::fputs(os.str().c_str(), p.file);
        std::fputc('\n', p.file);
        std::fflush(p.file);
    }

    detail::g_telemetry_on = true;
    p.sampler = std::thread(samplerMain);
    return true;
}

void
stopTelemetry()
{
    Plane &p = plane();
    std::thread sampler;
    {
        std::lock_guard<std::mutex> lock(p.mu);
        if (!p.active)
            return;
        detail::g_telemetry_on = false;
        p.stopping = true;
        sampler = std::move(p.sampler);
    }
    p.cv.notify_all();
    if (sampler.joinable())
        sampler.join();

    std::lock_guard<std::mutex> lock(p.mu);
    flushLocked(p, false);  // capture whatever the timer missed
    if (p.hud)
        std::fprintf(stderr, "\n");
    if (p.file) {
        std::ostringstream os;
        os << "{\"type\": \"stop\", \"intervals\": " << p.intervals
           << "}";
        std::fputs(os.str().c_str(), p.file);
        std::fputc('\n', p.file);
        std::fclose(p.file);
        p.file = nullptr;
    }
    p.active = false;
    p.stopping = false;
    p.hud = false;
    p.interval_ms = 0;
}

bool
telemetryActive()
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    return p.active;
}

StreamingHistogram &
telemetryHistogram(const std::string &name)
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    auto &slot = p.hists[name];
    if (!slot)
        slot = std::make_unique<HistSlot>();
    return slot->hist;
}

void
telemetryNote(const std::string &note)
{
    if (!telemetryEnabled())
        return;
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    p.note = note;
    p.note_dirty = true;
}

void
telemetryFlush(bool manifest_boundary)
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    if (!p.active)
        return;
    flushLocked(p, manifest_boundary);
}

std::uint64_t
telemetryIntervals()
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    return p.intervals;
}

unsigned
telemetryIntervalMs()
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    return p.active ? p.interval_ms : 0;
}

std::string
telemetryPath()
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    return p.active ? p.path : std::string();
}

std::string
telemetryTimelineJson()
{
    Plane &p = plane();
    std::lock_guard<std::mutex> lock(p.mu);
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < p.timeline.size(); ++i) {
        if (i)
            os << ", ";
        os << p.timeline[i];
    }
    os << ']';
    return os.str();
}

} // namespace mgmee::obs
