#include "obs/manifest.hh"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "obs/profile.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

#ifndef MGMEE_GIT_DESCRIBE
#define MGMEE_GIT_DESCRIBE "unknown"
#endif

namespace mgmee::obs {

namespace {

std::string
renderDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
renderSection(std::ostringstream &os, const char *name,
              const std::vector<std::pair<std::string, std::string>>
                  &entries)
{
    os << "  \"" << name << "\": {";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i)
            os << ',';
        os << "\n    \"" << jsonEscape(entries[i].first)
           << "\": " << entries[i].second;
    }
    if (!entries.empty())
        os << "\n  ";
    os << '}';
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
buildGitDescribe()
{
    return MGMEE_GIT_DESCRIBE;
}

Manifest::Manifest(std::string bench) : bench_(std::move(bench)) {}

void
Manifest::set(const std::string &key, const std::string &value)
{
    results_.emplace_back(key, '"' + jsonEscape(value) + '"');
}

void
Manifest::set(const std::string &key, const char *value)
{
    set(key, std::string(value));
}

void
Manifest::set(const std::string &key, double value)
{
    results_.emplace_back(key, renderDouble(value));
}

void
Manifest::set(const std::string &key, std::uint64_t value)
{
    results_.emplace_back(key, std::to_string(value));
}

void
Manifest::set(const std::string &key, int value)
{
    results_.emplace_back(key, std::to_string(value));
}

void
Manifest::set(const std::string &key, unsigned value)
{
    results_.emplace_back(key, std::to_string(value));
}

void
Manifest::set(const std::string &key, bool value)
{
    results_.emplace_back(key, value ? "true" : "false");
}

void
Manifest::addStats(const StatGroup &group)
{
    stats_.emplace_back(group.name(), group.toJson());
}

void
Manifest::addHistogram(const std::string &name,
                       const Histogram &histogram)
{
    histograms_.emplace_back(name, histogram.toJson());
}

void
Manifest::captureRegistry()
{
    for (const auto &[name, group] :
         StatRegistry::instance().snapshotAll()) {
        stats_.emplace_back(name, group.toJson());
    }
}

void
Manifest::captureProfiler()
{
    if (profilerEnabled())
        profile_json_ = profilerToJson();
}

void
Manifest::captureTraceSummary()
{
    if (eventsEmitted() == 0)
        return;
    std::ostringstream os;
    os << "{\"events\": " << eventsEmitted() << ", \"path\": \""
       << jsonEscape(config().trace_path) << "\"}";
    trace_json_ = os.str();
}

void
Manifest::captureTelemetry()
{
    if (!telemetryActive())
        return;
    telemetryFlush(true);
    std::ostringstream os;
    os << "{\"interval_ms\": " << telemetryIntervalMs()
       << ", \"intervals\": " << telemetryIntervals()
       << ", \"path\": \"" << jsonEscape(telemetryPath())
       << "\", \"timeline\": " << telemetryTimelineJson() << '}';
    telemetry_json_ = os.str();
}

std::string
Manifest::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema_version\": " << kSchemaVersion << ",\n";
    os << "  \"bench\": \"" << jsonEscape(bench_) << "\",\n";
    os << "  \"git\": \"" << jsonEscape(buildGitDescribe()) << "\",\n";

    // Raw knobs that were explicitly set in the environment...
    os << "  \"knobs\": {";
    bool first = true;
    for (const auto &[knob, value] : config().rawEnv()) {
        if (!first)
            os << ',';
        first = false;
        os << "\n    \"" << jsonEscape(knob) << "\": \""
           << jsonEscape(value) << '"';
    }
    if (!first)
        os << "\n  ";
    os << "},\n";

    // ...and the full effective configuration, defaults included, so
    // a manifest always records the exact state that produced it.
    os << "  \"config\": {";
    first = true;
    for (const auto &[knob, value] : config().items()) {
        if (!first)
            os << ',';
        first = false;
        os << "\n    \"" << jsonEscape(knob) << "\": \""
           << jsonEscape(value) << '"';
    }
    if (!first)
        os << "\n  ";
    os << "},\n";

    renderSection(os, "results", results_);
    os << ",\n";
    renderSection(os, "stats", stats_);
    os << ",\n";
    renderSection(os, "histograms", histograms_);
    if (!profile_json_.empty())
        os << ",\n  \"profile\": " << profile_json_;
    if (!trace_json_.empty())
        os << ",\n  \"trace\": " << trace_json_;
    if (!telemetry_json_.empty())
        os << ",\n  \"telemetry\": " << telemetry_json_;
    os << "\n}\n";
    return os.str();
}

std::string
Manifest::write(const std::string &dir) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/manifest_" + bench_ + ".json";
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return "";
    const std::string doc = toJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return path;
}

std::string
ManifestReporter::finalize(Manifest &m, const std::string &dir)
{
    // Order matters: the telemetry capture flushes a manifest-boundary
    // interval whose deltas the conservation check reconciles against
    // the registry totals captured right after it.
    m.captureTelemetry();
    m.captureRegistry();
    m.captureProfiler();
    m.captureTraceSummary();
    const std::string path =
        m.write(dir.empty() ? config().results_dir : dir);
    if (path.empty())
        warn("could not write run manifest");
    else
        std::printf("wrote %s\n", path.c_str());
    return path;
}

} // namespace mgmee::obs
