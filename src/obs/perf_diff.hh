/**
 * @file
 * Manifest-diff perf-regression tracker (ISSUE 8): compare a fresh
 * run manifest against a checked-in baseline and classify every
 * metric delta.
 *
 * The baseline is the contract: every metric it names must exist in
 * the current manifest (a missing metric is always a hard
 * regression), and extra metrics in the current manifest are
 * ignored -- baselines are *curated*, typically by
 * scripts/make_perf_baseline.py, which keeps deterministic counters
 * and the wall figures worth watching.
 *
 * Metrics come in two classes, told apart by key substrings
 * (isWallMetric):
 *
 *  - counter/ratio metrics (event counts, verdict strings, booleans,
 *    bit_identical flags): deterministic, compared exactly by
 *    default -- any drift is a hard failure;
 *  - wall-clock metrics (_ns/seconds/GB_s/speedup/...): noisy on
 *    shared runners, compared directionally against a relative
 *    tolerance, optionally downgraded to warnings (CI passes
 *    --wall-warn-only).
 *
 * diffManifests() never mutates anything; appendTrajectory() records
 * the run into results/BENCH_<bench>.json so metric history survives
 * across PRs.
 */

#ifndef MGMEE_OBS_PERF_DIFF_HH
#define MGMEE_OBS_PERF_DIFF_HH

#include <string>
#include <vector>

#include "obs/json.hh"

namespace mgmee::obs {

/** Thresholds and policy for one diff run. */
struct PerfDiffConfig
{
    /** Relative tolerance for counter/ratio metrics (0 = exact). */
    double counter_tolerance = 0.0;
    /** Relative tolerance for wall-clock metrics. */
    double wall_tolerance = 0.25;
    /** Downgrade wall-clock regressions to warnings (shared CI
     *  runners); counters stay hard.  Missing metrics stay hard. */
    bool wall_warn_only = false;
    /** Metric keys to skip entirely. */
    std::vector<std::string> ignore;
};

/** Verdict for one baseline metric. */
struct MetricDelta
{
    std::string key;
    std::string section;       //!< results | stats | histograms
    double baseline = 0.0;
    double current = 0.0;
    /** Signed relative change ((cur-base)/|base|); 0 for strings. */
    double rel = 0.0;
    bool wall = false;         //!< wall-clock class
    bool missing = false;      //!< metric absent from the current run
    bool string_mismatch = false;
    bool regression = false;   //!< counts toward the exit status
    bool warning = false;      //!< tolerated (wall_warn_only) drift
};

/** Outcome of one baseline/current comparison. */
struct PerfDiffReport
{
    std::string bench;
    std::vector<MetricDelta> deltas;  //!< every compared metric
    unsigned regressions = 0;
    unsigned warnings = 0;

    /** Human-readable table: regressions, warnings, then a count of
     *  clean metrics. */
    std::string text() const;
};

/** True when @p key names a wall-clock/throughput-style metric. */
bool isWallMetric(const std::string &key);

/**
 * Better-direction of @p key: +1 when larger is better (speedup,
 * rates), -1 when smaller is better (latencies, seconds), 0 when any
 * drift is suspect (counters).
 */
int metricDirection(const std::string &key);

/**
 * Compare @p current against @p baseline (both parsed manifests).
 * Walks the baseline's results/stats/histograms sections; numeric,
 * boolean and string leaves participate.
 */
PerfDiffReport diffManifests(const JsonValue &baseline,
                             const JsonValue &current,
                             const PerfDiffConfig &cfg);

/**
 * Append one trajectory entry for @p current (with @p report's
 * regression/warning counts) to `<dir>/BENCH_<bench>.json`, creating
 * the file on first use.  Returns the path, or "" on I/O failure.
 */
std::string appendTrajectory(const std::string &dir,
                             const JsonValue &current,
                             const PerfDiffReport &report);

} // namespace mgmee::obs

#endif // MGMEE_OBS_PERF_DIFF_HH
