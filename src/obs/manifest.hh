/**
 * @file
 * Machine-readable run manifests: one schema-versioned JSON document
 * per bench/tool run, replacing the per-bench hand-rolled JSON
 * writers.  A manifest carries:
 *
 *  - identity: schema version, bench name, git describe (embedded at
 *    configure time), the raw MGMEE_* environment knobs that were
 *    set, and the full *effective* common::Config (every knob with
 *    the value actually in force, defaults included);
 *  - scalar results (`set`), engine StatGroups (`addStats`), global
 *    StatRegistry groups (`captureRegistry`), histograms with
 *    p50/p90/p99 (`addHistogram`);
 *  - the profiler tree (`captureProfiler`) and a trace summary
 *    (`captureTraceSummary`) when those subsystems are active.
 *
 * write() lands the document at `<dir>/manifest_<bench>.json`
 * (default dir `results/`, created on demand), so every run of every
 * harness leaves a uniform artifact for scripts/plot_results.py, CI
 * uploads, and cross-run diffing.
 */

#ifndef MGMEE_OBS_MANIFEST_HH
#define MGMEE_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace mgmee::obs {

/** Builder for one run manifest. */
class Manifest
{
  public:
    /** Manifest JSON layout version (bump on breaking change). */
    static constexpr unsigned kSchemaVersion = 1;

    /** @p bench names the run and the output file. */
    explicit Manifest(std::string bench);

    /** Record a scalar result under "results". */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, double value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, int value);
    void set(const std::string &key, unsigned value);
    void set(const std::string &key, bool value);

    /** Attach @p group under "stats" (keyed by its name). */
    void addStats(const StatGroup &group);

    /** Attach @p histogram under "histograms" as @p name. */
    void addHistogram(const std::string &name,
                      const Histogram &histogram);

    /** Snapshot every StatRegistry group into "stats". */
    void captureRegistry();

    /** Embed the merged profiler tree (no-op when not enabled). */
    void captureProfiler();

    /** Embed trace-session info (no-op when tracing never ran). */
    void captureTraceSummary();

    /**
     * Embed the live-telemetry timeline (no-op when telemetry is
     * inactive).  Forces a manifest-boundary interval flush first,
     * so the JSONL conservation check can reconcile the timeline
     * against this manifest's stat totals; call it before
     * captureRegistry().
     */
    void captureTelemetry();

    /** The complete document. */
    std::string toJson() const;

    /**
     * Write to `<dir>/manifest_<bench>.json` (directory created);
     * returns the path, or "" on I/O failure.
     */
    std::string write(const std::string &dir = "results") const;

  private:
    std::string bench_;
    /** Already-rendered "key": value JSON fragments, in add order. */
    std::vector<std::pair<std::string, std::string>> results_;
    std::vector<std::pair<std::string, std::string>> stats_;
    std::vector<std::pair<std::string, std::string>> histograms_;
    std::string profile_json_;   //!< empty = absent
    std::string trace_json_;     //!< empty = absent
    std::string telemetry_json_; //!< empty = absent
};

/**
 * The one way a harness finishes its run manifest.  Replaces the
 * copy-pasted capture/write/report tail every bench used to carry,
 * and guarantees the capture order the telemetry conservation check
 * depends on: captureTelemetry() (which flushes a manifest-boundary
 * interval) strictly before captureRegistry(), then profiler and
 * trace summaries, then write.
 */
class ManifestReporter
{
  public:
    /**
     * Capture everything into @p m in the contract order and write
     * it under @p dir (default: Config::results_dir).  Prints the
     * manifest path on success, warns on I/O failure.  Returns the
     * written path ("" on failure).
     */
    static std::string finalize(Manifest &m,
                                const std::string &dir = "");
};

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** The `git describe` of the built tree ("unknown" outside git). */
const char *buildGitDescribe();

} // namespace mgmee::obs

#endif // MGMEE_OBS_MANIFEST_HH
