#include "obs/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/manifest.hh"

namespace mgmee::obs {

namespace {

/** Recursive-descent parser state over one input string. */
struct Parser
{
    const char *p;
    const char *end;
    const char *begin;
    std::string error;

    explicit Parser(const std::string &text)
        : p(text.data()), end(text.data() + text.size())
        , begin(text.data())
    {
    }

    bool
    fail(const std::string &msg)
    {
        if (!error.empty())
            return false;  // keep the first (deepest) diagnostic
        unsigned line = 1, col = 1;
        for (const char *q = begin; q < p; ++q) {
            if (*q == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        error = std::to_string(line) + ':' + std::to_string(col) +
                ' ' + msg;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (static_cast<std::size_t>(end - p) < n ||
            std::memcmp(p, word, n) != 0)
            return fail(std::string("expected '") + word + "'");
        p += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected '\"'");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return fail("dangling escape");
            const char esc = *p++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (end - p < 4)
                      return fail("short \\u escape");
                  char hex[5] = {p[0], p[1], p[2], p[3], 0};
                  char *hend = nullptr;
                  const unsigned long cp =
                      std::strtoul(hex, &hend, 16);
                  if (hend != hex + 4)
                      return fail("bad \\u escape");
                  // Manifest escapes are control chars / Latin-1
                  // only; encode as UTF-8 without surrogate pairs.
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xc0 | (cp >> 6));
                      out +=
                          static_cast<char>(0x80 | (cp & 0x3f));
                  } else {
                      out += static_cast<char>(0xe0 | (cp >> 12));
                      out += static_cast<char>(
                          0x80 | ((cp >> 6) & 0x3f));
                      out +=
                          static_cast<char>(0x80 | (cp & 0x3f));
                  }
                  p += 4;
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;  // closing quote
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        char *num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end)
            return fail("expected a value");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        p = num_end;
        return true;
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++p;  // '{'
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (p >= end || *p != ':')
                return fail("expected ':'");
            ++p;
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.members.emplace(std::move(key), std::move(member));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++p;  // '['
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    Parser parser(text);
    out = JsonValue{};
    if (!parser.parseValue(out)) {
        error = parser.error;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        parser.fail("trailing content after document");
        error = parser.error;
        return false;
    }
    return true;
}

bool
parseJsonFile(const std::string &path, JsonValue &out,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    if (!parseJson(text, out, error)) {
        error = path + ':' + error;
        return false;
    }
    return true;
}

namespace {

void
dumpTo(std::ostringstream &os, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        os << "null";
        break;
      case JsonValue::Kind::Bool:
        os << (v.boolean ? "true" : "false");
        break;
      case JsonValue::Kind::Number: {
          char buf[32];
          // %.12g keeps counters exact up to 2^39 and round-trips
          // every figure the manifests emit (%.6g writers).
          std::snprintf(buf, sizeof(buf), "%.12g", v.number);
          os << buf;
          break;
      }
      case JsonValue::Kind::String:
        os << '"' << jsonEscape(v.str) << '"';
        break;
      case JsonValue::Kind::Array:
        os << '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                os << ", ";
            dumpTo(os, v.items[i]);
        }
        os << ']';
        break;
      case JsonValue::Kind::Object: {
          os << '{';
          bool first = true;
          for (const auto &[key, member] : v.members) {
              if (!first)
                  os << ", ";
              first = false;
              os << '"' << jsonEscape(key) << "\": ";
              dumpTo(os, member);
          }
          os << '}';
          break;
      }
    }
}

} // namespace

std::string
dumpJson(const JsonValue &v)
{
    std::ostringstream os;
    dumpTo(os, v);
    return os.str();
}

} // namespace mgmee::obs
