#include "obs/perf_diff.hh"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

namespace mgmee::obs {

namespace {

/** One comparable leaf of a manifest. */
struct Leaf
{
    std::string section;
    std::string key;
    const JsonValue *value;
};

/**
 * The comparable leaves of @p manifest: every member of "results",
 * the flattened "stats" groups ("group.stat") and the flattened
 * "histograms" fields ("name.p99").  Arrays/objects inside results
 * (none today) are skipped.
 */
std::vector<Leaf>
flatten(const JsonValue &manifest)
{
    std::vector<Leaf> leaves;
    if (const JsonValue *results = manifest.find("results")) {
        for (const auto &[key, v] : results->members)
            if (!v.isArray() && !v.isObject())
                leaves.push_back({"results", key, &v});
    }
    for (const char *section : {"stats", "histograms"}) {
        const JsonValue *obj = manifest.find(section);
        if (!obj)
            continue;
        for (const auto &[outer, group] : obj->members) {
            if (!group.isObject())
                continue;
            for (const auto &[inner, v] : group.members)
                if (!v.isArray() && !v.isObject())
                    leaves.push_back(
                        {section, outer + '.' + inner, &v});
        }
    }
    return leaves;
}

const JsonValue *
findLeaf(const JsonValue &manifest, const std::string &section,
         const std::string &key)
{
    if (section == "results") {
        const JsonValue *results = manifest.find("results");
        return results ? results->find(key) : nullptr;
    }
    // stats/histograms: key is "outer.inner", outer may itself
    // contain no dots (group and histogram names are dot-free).
    const JsonValue *obj = manifest.find(section);
    if (!obj)
        return nullptr;
    const auto dot = key.find('.');
    if (dot == std::string::npos)
        return nullptr;
    const JsonValue *group = obj->find(key.substr(0, dot));
    return group ? group->find(key.substr(dot + 1)) : nullptr;
}

bool
contains(const std::string &haystack, const char *needle)
{
    return haystack.find(needle) != std::string::npos;
}

std::string
formatValue(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

bool
isWallMetric(const std::string &key)
{
    static constexpr const char *kWallMarks[] = {
        "_ns",     "_us",     "_ms",     "seconds", "secs",
        "per_sec", "runs_per", "gb_s",   "gbps",    "speedup",
        "wall",
    };
    for (const char *mark : kWallMarks)
        if (contains(key, mark))
            return true;
    return false;
}

int
metricDirection(const std::string &key)
{
    static constexpr const char *kHigherBetter[] = {
        "speedup", "per_sec", "runs_per", "gb_s", "gbps",
    };
    static constexpr const char *kLowerBetter[] = {
        "_ns", "_us", "_ms", "seconds", "secs", "wall",
    };
    for (const char *mark : kHigherBetter)
        if (contains(key, mark))
            return 1;
    for (const char *mark : kLowerBetter)
        if (contains(key, mark))
            return -1;
    return 0;
}

PerfDiffReport
diffManifests(const JsonValue &baseline, const JsonValue &current,
              const PerfDiffConfig &cfg)
{
    PerfDiffReport report;
    if (const JsonValue *b = current.find("bench"); b && b->isString())
        report.bench = b->str;
    else if (const JsonValue *bb = baseline.find("bench");
             bb && bb->isString())
        report.bench = bb->str;

    for (const Leaf &leaf : flatten(baseline)) {
        bool skip = false;
        for (const std::string &ign : cfg.ignore)
            skip = skip || leaf.key == ign;
        if (skip)
            continue;

        MetricDelta d;
        d.key = leaf.key;
        d.section = leaf.section;
        d.wall = isWallMetric(leaf.key);

        const JsonValue *cur =
            findLeaf(current, leaf.section, leaf.key);
        if (!cur || cur->kind != leaf.value->kind) {
            // A metric the baseline demands is gone (or changed
            // type): always a hard failure, wall or not.
            d.missing = true;
            d.regression = true;
            ++report.regressions;
            report.deltas.push_back(std::move(d));
            continue;
        }

        if (leaf.value->isString()) {
            if (cur->str != leaf.value->str) {
                d.string_mismatch = true;
                d.regression = true;
                ++report.regressions;
            }
            report.deltas.push_back(std::move(d));
            continue;
        }

        const double base = leaf.value->isBool()
            ? (leaf.value->boolean ? 1.0 : 0.0)
            : leaf.value->number;
        const double now = cur->isBool() ? (cur->boolean ? 1.0 : 0.0)
                                         : cur->number;
        d.baseline = base;
        d.current = now;
        if (base != 0.0)
            d.rel = (now - base) / std::fabs(base);
        else
            d.rel = now == 0.0 ? 0.0 : (now > 0 ? 1e9 : -1e9);

        const double tol =
            d.wall ? cfg.wall_tolerance : cfg.counter_tolerance;
        const int dir = d.wall ? metricDirection(leaf.key) : 0;
        const bool worse = dir > 0   ? d.rel < -tol
                           : dir < 0 ? d.rel > tol
                                     : std::fabs(d.rel) > tol;
        if (worse) {
            if (d.wall && cfg.wall_warn_only) {
                d.warning = true;
                ++report.warnings;
            } else {
                d.regression = true;
                ++report.regressions;
            }
        }
        report.deltas.push_back(std::move(d));
    }
    return report;
}

std::string
PerfDiffReport::text() const
{
    std::ostringstream os;
    os << "perf-diff " << (bench.empty() ? "?" : bench) << ": "
       << deltas.size() << " metrics, " << regressions
       << " regression(s), " << warnings << " warning(s)\n";
    unsigned clean = 0;
    for (const MetricDelta &d : deltas) {
        if (!d.regression && !d.warning) {
            ++clean;
            continue;
        }
        os << (d.regression ? "  FAIL " : "  warn ") << d.section
           << '/' << d.key << ": ";
        if (d.missing) {
            os << "missing from current manifest\n";
            continue;
        }
        if (d.string_mismatch) {
            os << "value changed (baseline pinned another string)\n";
            continue;
        }
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%+.1f%%", d.rel * 100.0);
        os << formatValue(d.baseline) << " -> "
           << formatValue(d.current) << " (" << pct << ", "
           << (d.wall ? "wall" : "counter") << ")\n";
    }
    os << "  " << clean << " metric(s) within thresholds\n";
    return os.str();
}

std::string
appendTrajectory(const std::string &dir, const JsonValue &current,
                 const PerfDiffReport &report)
{
    const std::string bench =
        report.bench.empty() ? "unknown" : report.bench;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/BENCH_" + bench + ".json";

    JsonValue doc;
    std::string error;
    if (!parseJsonFile(path, doc, error) || !doc.isObject() ||
        !doc.find("entries")) {
        doc = JsonValue{};
        doc.kind = JsonValue::Kind::Object;
        JsonValue name;
        name.kind = JsonValue::Kind::String;
        name.str = bench;
        doc.members.emplace("bench", std::move(name));
        JsonValue entries;
        entries.kind = JsonValue::Kind::Array;
        doc.members.emplace("entries", std::move(entries));
    }

    JsonValue entry;
    entry.kind = JsonValue::Kind::Object;
    if (const JsonValue *git = current.find("git"))
        entry.members.emplace("git", *git);
    JsonValue when;
    when.kind = JsonValue::Kind::Number;
    when.number = static_cast<double>(
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    entry.members.emplace("unix_s", std::move(when));
    JsonValue regs;
    regs.kind = JsonValue::Kind::Number;
    regs.number = report.regressions;
    entry.members.emplace("regressions", std::move(regs));
    JsonValue warns;
    warns.kind = JsonValue::Kind::Number;
    warns.number = report.warnings;
    entry.members.emplace("warnings", std::move(warns));
    JsonValue metrics;
    metrics.kind = JsonValue::Kind::Object;
    for (const MetricDelta &d : report.deltas) {
        if (d.missing || d.string_mismatch)
            continue;
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d.current;
        metrics.members.emplace(d.section + '/' + d.key,
                                std::move(v));
    }
    entry.members.emplace("metrics", std::move(metrics));

    doc.members["entries"].items.push_back(std::move(entry));

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return "";
    const std::string text = dumpJson(doc) + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return path;
}

} // namespace mgmee::obs
