/**
 * @file
 * Minimal JSON reader for the obs tooling (perf diff, baselines):
 * a recursive-descent parser into a small DOM.  It reads what this
 * repo writes -- objects, arrays, strings, numbers, booleans, null --
 * and nothing exotic (no \uXXXX surrogate pairs beyond Latin-1, no
 * comments).  Writing stays with the hand-rolled emitters in
 * manifest.cc; this is the read side only.
 */

#ifndef MGMEE_OBS_JSON_HH
#define MGMEE_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mgmee::obs {

/** One parsed JSON value (a tagged tree). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;              //!< Array
    std::map<std::string, JsonValue> members;  //!< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup; nullptr when absent or not an object.  No
     *  dotted-path variant on purpose: manifest metric keys contain
     *  dots themselves ("t4.speedup"), so callers always address one
     *  explicit section at a time. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text.  Returns true and fills @p out on success; false
 * with a "line:col message" in @p error otherwise.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Parse the file at @p path; same contract as parseJson. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string &error);

/** Serialize @p v compactly (keys in map order, no trailing \n). */
std::string dumpJson(const JsonValue &v);

} // namespace mgmee::obs

#endif // MGMEE_OBS_JSON_HH
