#include "obs/profile.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/config.hh"

namespace mgmee::obs {

namespace detail {
bool g_profile_on = false;
} // namespace detail

namespace detail {

/**
 * One node of a per-thread tree.  Children are keyed by name string
 * (literals from different translation units may have different
 * addresses, and thread trees merge by name anyway).
 */
struct ProfileNodeImpl
{
    std::string name;
    ProfileNodeImpl *parent = nullptr;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::map<std::string, std::unique_ptr<ProfileNodeImpl>> children;
};

} // namespace detail

namespace {

using detail::ProfileNodeImpl;

struct ThreadTree
{
    ProfileNodeImpl root;
    ProfileNodeImpl *current = &root;
};

/** Registry of live thread trees plus trees of exited threads. */
struct ProfileState
{
    std::mutex mu;
    std::vector<ThreadTree *> live;
    std::vector<std::unique_ptr<ProfileNodeImpl>> retired;
};

/**
 * Immortal: the MGMEE_PROFILE atexit report and thread-exit hooks
 * can run after function-local statics are destroyed, so the state
 * is heap-allocated and intentionally never freed.
 */
ProfileState &
profileState()
{
    static ProfileState &state = *new ProfileState;
    return state;
}

/** Deep-merge @p src into @p dst (children matched by name). */
void
mergeInto(ProfileNode &dst, const ProfileNodeImpl &src)
{
    dst.calls += src.calls;
    dst.total_ns += src.total_ns;
    for (const auto &[name, child] : src.children) {
        auto it = std::find_if(
            dst.children.begin(), dst.children.end(),
            [&](const ProfileNode &n) { return n.name == name; });
        if (it == dst.children.end()) {
            dst.children.push_back(ProfileNode{name, 0, 0, 0, {}});
            it = dst.children.end() - 1;
        }
        mergeInto(*it, *child);
    }
}

void
finishSelfTimes(ProfileNode &node)
{
    std::sort(node.children.begin(), node.children.end(),
              [](const ProfileNode &a, const ProfileNode &b) {
                  return a.name < b.name;
              });
    std::uint64_t child_total = 0;
    for (ProfileNode &child : node.children) {
        finishSelfTimes(child);
        child_total += child.total_ns;
    }
    node.self_ns =
        node.total_ns > child_total ? node.total_ns - child_total : 0;
}

/** Root totals roll up from the top-level scopes. */
void
finishRoot(ProfileNode &root)
{
    root.total_ns = 0;
    root.calls = 0;
    for (const ProfileNode &child : root.children)
        root.total_ns += child.total_ns;
    finishSelfTimes(root);
    root.self_ns = 0;
}

void
reportNode(std::ostringstream &os, const ProfileNode &node,
           unsigned depth)
{
    os.setf(std::ios::fixed);
    os.precision(3);
    for (unsigned i = 0; i < depth; ++i)
        os << "  ";
    os << node.name << "  total " << node.total_ns / 1e6
       << " ms  self " << node.self_ns / 1e6 << " ms  calls "
       << node.calls << '\n';
    for (const ProfileNode &child : node.children)
        reportNode(os, child, depth + 1);
}

void
jsonNode(std::ostringstream &os, const ProfileNode &node)
{
    os << "{\"name\": \"" << node.name
       << "\", \"calls\": " << node.calls
       << ", \"total_ns\": " << node.total_ns
       << ", \"self_ns\": " << node.self_ns << ", \"children\": [";
    for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i)
            os << ", ";
        jsonNode(os, node.children[i]);
    }
    os << "]}";
}

thread_local struct ThreadTreeSlot
{
    ThreadTree tree;
    bool registered = false;

    ~ThreadTreeSlot()
    {
        if (!registered)
            return;
        ProfileState &state = profileState();
        std::lock_guard<std::mutex> lock(state.mu);
        state.live.erase(std::remove(state.live.begin(),
                                     state.live.end(), &tree),
                         state.live.end());
        // Keep the exited thread's scopes for later snapshots.
        auto keep = std::make_unique<ProfileNodeImpl>();
        keep->children = std::move(tree.root.children);
        state.retired.push_back(std::move(keep));
    }
} t_tree_slot;

/** Config::profile (MGMEE_PROFILE=1) turns recording on and reports
 *  at exit. */
struct EnvAutoStart
{
    EnvAutoStart()
    {
        if (config().profile) {
            setProfilerEnabled(true);
            std::atexit([] {
                std::fputs(profilerReport().c_str(), stderr);
            });
        }
    }
};

EnvAutoStart g_env_auto_start;

} // namespace

namespace detail {

ProfileNodeImpl *
enterScope(const char *name)
{
    ThreadTreeSlot &slot = t_tree_slot;
    if (!slot.registered) {
        slot.registered = true;
        ProfileState &state = profileState();
        std::lock_guard<std::mutex> lock(state.mu);
        state.live.push_back(&slot.tree);
    }

    ProfileNodeImpl *parent = slot.tree.current;
    auto &child = parent->children[name];
    if (!child) {
        child = std::make_unique<ProfileNodeImpl>();
        child->name = name;
        child->parent = parent;
    }
    slot.tree.current = child.get();
    return child.get();
}

void
exitScope(ProfileNodeImpl *node, std::uint64_t elapsed_ns)
{
    ++node->calls;
    node->total_ns += elapsed_ns;
    // Unwind to the scope's parent even if inner scopes leaked
    // (mismatched lifetimes would otherwise corrupt the stack).
    t_tree_slot.tree.current =
        node->parent ? node->parent : &t_tree_slot.tree.root;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace detail

void
setProfilerEnabled(bool on)
{
    detail::g_profile_on = on;
}

ProfileNode
profilerSnapshot()
{
    ProfileNode root;
    root.name = "root";
    ProfileState &state = profileState();
    std::lock_guard<std::mutex> lock(state.mu);
    for (const ThreadTree *tree : state.live)
        mergeInto(root, tree->root);
    for (const auto &retired : state.retired)
        mergeInto(root, *retired);
    finishRoot(root);
    return root;
}

std::string
profilerReport()
{
    std::ostringstream os;
    os << "=== obs profile (wall clock) ===\n";
    reportNode(os, profilerSnapshot(), 0);
    return os.str();
}

std::string
profilerToJson()
{
    std::ostringstream os;
    jsonNode(os, profilerSnapshot());
    return os.str();
}

void
profilerReset()
{
    ProfileState &state = profileState();
    std::lock_guard<std::mutex> lock(state.mu);
    state.retired.clear();
    for (ThreadTree *tree : state.live) {
        // Live threads sit at their root between phases; resetting
        // mid-scope would dangle `current`, so only quiesced trees
        // are cleared.
        if (tree->current == &tree->root)
            tree->root.children.clear();
    }
}

} // namespace mgmee::obs
