#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace mgmee::obs {

namespace detail {
bool g_trace_on = false;
} // namespace detail

namespace {

constexpr char kMagic[8] = {'M', 'G', 'O', 'B', 'S', 'T', 'R', '1'};
constexpr std::uint32_t kFormatVersion = 1;

/** Records buffered per thread before an append to the file. */
constexpr std::size_t kBufferRecords = 8192;

struct ThreadBuffer
{
    std::vector<TraceRecord> records;
    std::uint16_t thread_id = 0;
    std::uint64_t dropped = 0;  //!< records this thread lost
};

/**
 * One trace session: the output file, the registry of per-thread
 * buffers, and a generation stamp.  Thread-local buffer pointers are
 * revalidated against the generation, so a buffer from a finished
 * session is never written through.
 */
struct Session
{
    std::mutex mu;  //!< guards file + buffer registry
    std::FILE *file = nullptr;
    std::string path;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    std::atomic<std::uint64_t> emitted{0};
    std::atomic<std::uint64_t> dropped{0};
    bool warned_drop = false;
    std::uint64_t generation = 0;
};

/** Immortal (never destroyed): emitters and the MGMEE_TRACE atexit
 *  flush may run during process teardown, after function-local
 *  statics would already be gone. */
Session &
session()
{
    static Session &s = *new Session;
    return s;
}

/** Appends (and clears) a full or final buffer; caller holds mu.
 *  Records that cannot land in the file -- the file already closed
 *  (stop raced an emitter) or a short fwrite (disk full) -- are
 *  counted, never silently discarded. */
void
flushBufferLocked(Session &s, ThreadBuffer &buf)
{
    if (!buf.records.empty()) {
        std::size_t written = 0;
        if (s.file) {
            written = std::fwrite(buf.records.data(),
                                  sizeof(TraceRecord),
                                  buf.records.size(), s.file);
        }
        const std::uint64_t lost = buf.records.size() - written;
        if (lost) {
            buf.dropped += lost;
            s.dropped.fetch_add(lost, std::memory_order_relaxed);
            StatRegistry::instance()
                .counter("obs", "trace.dropped")
                .fetch_add(lost, std::memory_order_relaxed);
            if (!s.warned_drop) {
                s.warned_drop = true;
                warn("trace dropped %llu record(s) (%s); totals in "
                     "obs.trace.dropped",
                     static_cast<unsigned long long>(lost),
                     s.file ? "short write" : "file closed");
            }
        }
    }
    buf.records.clear();
}

struct ThreadSlot
{
    ThreadBuffer *buf = nullptr;
    std::uint64_t generation = 0;
};

thread_local ThreadSlot t_slot;

/** Shard tag for events emitted by this thread (-1 = untagged). */
thread_local int t_shard = -1;

/** Auto-start from Config::trace_path (MGMEE_TRACE), flushed via
 *  atexit. */
struct EnvAutoStart
{
    EnvAutoStart()
    {
        const std::string &path = config().trace_path;
        if (!path.empty()) {
            if (startTrace(path))
                std::atexit([] { stopTrace(); });
        }
    }
};

EnvAutoStart g_env_auto_start;

} // namespace

namespace detail {

void
emitSlow(EventKind kind, std::uint64_t cycle, std::uint64_t addr,
         std::uint32_t value, std::uint8_t arg0)
{
    Session &s = session();
    ThreadSlot &slot = t_slot;
    if (slot.buf == nullptr || slot.generation != s.generation) {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!g_trace_on)
            return;  // stopTrace() raced ahead of the flag read
        auto buf = std::make_unique<ThreadBuffer>();
        buf->thread_id =
            static_cast<std::uint16_t>(s.buffers.size());
        buf->records.reserve(kBufferRecords);
        slot.buf = buf.get();
        slot.generation = s.generation;
        s.buffers.push_back(std::move(buf));
    }

    ThreadBuffer &buf = *slot.buf;
    TraceRecord rec;
    rec.cycle = cycle;
    rec.addr = addr;
    rec.value = value;
    rec.kind = static_cast<std::uint8_t>(kind);
    rec.arg0 = arg0;
    rec.thread = t_shard >= 0
        ? static_cast<std::uint16_t>(
              kThreadShardBit |
              (static_cast<std::uint16_t>(t_shard) & ~kThreadShardBit))
        : buf.thread_id;
    buf.records.push_back(rec);
    s.emitted.fetch_add(1, std::memory_order_relaxed);

    if (buf.records.size() >= kBufferRecords) {
        std::lock_guard<std::mutex> lock(s.mu);
        flushBufferLocked(s, buf);
    }
}

} // namespace detail

void
setTraceShard(int shard)
{
    t_shard = shard;
}

int
traceShard()
{
    return t_shard;
}

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::WalkRead: return "walk_read";
      case EventKind::WalkLevel: return "walk_level";
      case EventKind::WalkWrite: return "walk_write";
      case EventKind::GranPromote: return "gran_promote";
      case EventKind::GranDemote: return "gran_demote";
      case EventKind::Rekey: return "rekey";
      case EventKind::MacCompact: return "mac_compact";
      case EventKind::TrackerAlloc: return "tracker_alloc";
      case EventKind::TrackerEvict: return "tracker_evict";
      case EventKind::MemoHit: return "memo_hit";
      case EventKind::MemoMiss: return "memo_miss";
      case EventKind::SubtreeHit: return "subtree_hit";
      case EventKind::SubtreeMiss: return "subtree_miss";
      case EventKind::StreamChunk: return "stream_chunk";
      case EventKind::FaultInject: return "fault_inject";
      case EventKind::FaultVerdict: return "fault_verdict";
      case EventKind::MacBatchFlush: return "mac_batch_flush";
      case EventKind::TraceDropped: return "trace_dropped";
    }
    return "unknown";
}

bool
startTrace(const std::string &path)
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.file) {
        warn("trace session already active (%s); ignoring %s",
             s.path.c_str(), path.c_str());
        return false;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("cannot open trace file %s", path.c_str());
        return false;
    }
    std::fwrite(kMagic, 1, sizeof(kMagic), f);
    std::fwrite(&kFormatVersion, sizeof(kFormatVersion), 1, f);
    const std::uint32_t record_size = sizeof(TraceRecord);
    std::fwrite(&record_size, sizeof(record_size), 1, f);

    s.file = f;
    s.path = path;
    s.buffers.clear();
    s.emitted.store(0, std::memory_order_relaxed);
    s.dropped.store(0, std::memory_order_relaxed);
    s.warned_drop = false;
    ++s.generation;
    detail::g_trace_on = true;
    return true;
}

void
stopTrace()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    // Clear the flag first: emitters that already passed the flag
    // test re-check it under the lock before binding a buffer.
    detail::g_trace_on = false;
    if (!s.file)
        return;
    for (auto &buf : s.buffers)
        flushBufferLocked(s, *buf);
    // Per-thread drop trailers, so decoders can report exactly how
    // incomplete the stream is without any side channel.
    for (const auto &buf : s.buffers) {
        if (!buf->dropped)
            continue;
        TraceRecord rec;
        rec.kind = static_cast<std::uint8_t>(EventKind::TraceDropped);
        rec.addr = buf->dropped;
        rec.value = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(buf->dropped, ~std::uint32_t{0}));
        rec.thread = buf->thread_id;
        std::fwrite(&rec, sizeof(rec), 1, s.file);
    }
    std::fclose(s.file);
    s.file = nullptr;
}

std::uint64_t
eventsEmitted()
{
    return session().emitted.load(std::memory_order_relaxed);
}

std::uint64_t
eventsDropped()
{
    return session().dropped.load(std::memory_order_relaxed);
}

std::size_t
threadBuffersAllocated()
{
    Session &s = session();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.buffers.size();
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(!f, "cannot open trace file %s", path.c_str());

    char magic[8];
    std::uint32_t version = 0, record_size = 0;
    const bool header_ok =
        std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
        std::memcmp(magic, kMagic, sizeof(kMagic)) == 0 &&
        std::fread(&version, sizeof(version), 1, f) == 1 &&
        std::fread(&record_size, sizeof(record_size), 1, f) == 1;
    if (!header_ok || version != kFormatVersion ||
        record_size != sizeof(TraceRecord)) {
        std::fclose(f);
        fatal("%s is not an mgmee obs-trace v%u file", path.c_str(),
              kFormatVersion);
    }

    std::vector<TraceRecord> records;
    TraceRecord rec;
    while (std::fread(&rec, sizeof(rec), 1, f) == 1)
        records.push_back(rec);
    std::fclose(f);
    return records;
}

std::string
recordToJson(const TraceRecord &rec)
{
    std::ostringstream os;
    os << "{\"event\": \""
       << eventKindName(static_cast<EventKind>(rec.kind))
       << "\", \"cycle\": " << rec.cycle << ", \"addr\": " << rec.addr
       << ", \"value\": " << rec.value
       << ", \"arg0\": " << unsigned{rec.arg0};
    if (rec.thread & kThreadShardBit)
        os << ", \"shard\": " << (rec.thread & ~kThreadShardBit);
    else
        os << ", \"thread\": " << rec.thread;
    os << '}';
    return os.str();
}

long
exportJsonl(const std::string &binary_path,
            const std::string &jsonl_path)
{
    const std::vector<TraceRecord> records =
        readTraceFile(binary_path);
    std::FILE *out = std::fopen(jsonl_path.c_str(), "w");
    if (!out)
        return -1;
    for (const TraceRecord &rec : records) {
        const std::string line = recordToJson(rec);
        std::fputs(line.c_str(), out);
        std::fputc('\n', out);
    }
    std::fclose(out);
    return static_cast<long>(records.size());
}

} // namespace mgmee::obs
