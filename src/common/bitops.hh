/**
 * @file
 * Small bit-manipulation helpers used throughout the address math and
 * the access-tracker bit vectors.
 */

#ifndef MGMEE_COMMON_BITOPS_HH
#define MGMEE_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace mgmee {

/** Integer log2; @p v must be a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer pow: base^exp. */
constexpr std::uint64_t
ipow(std::uint64_t base, unsigned exp)
{
    std::uint64_t r = 1;
    for (unsigned i = 0; i < exp; ++i)
        r *= base;
    return r;
}

/** Number of set bits. */
constexpr unsigned
popcount64(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bitsOf(std::uint64_t v, unsigned lo, unsigned width)
{
    if (width >= 64)
        return v >> lo;
    return (v >> lo) & ((std::uint64_t{1} << width) - 1);
}

} // namespace mgmee

#endif // MGMEE_COMMON_BITOPS_HH
