/**
 * @file
 * Lightweight named-statistics registry, loosely modelled on gem5's
 * stats package.  Engines register scalar counters; harnesses snapshot
 * and print them.
 */

#ifndef MGMEE_COMMON_STATS_HH
#define MGMEE_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mgmee {

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Add @p delta to counter @p stat (created on first use). */
    void
    add(const std::string &stat, std::uint64_t delta = 1)
    {
        counters_[stat] += delta;
    }

    /** Current value of @p stat (0 if never touched). */
    std::uint64_t get(const std::string &stat) const;

    /** Reset every counter to zero. */
    void reset() { counters_.clear(); }

    /** Merge all counters of @p other into this group. */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Render "name.stat value" lines, sorted by stat name. */
    std::string dump() const;

    /** Counters as a JSON object: {"stat": value, ...}. */
    std::string toJson() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Power-of-two bucketed histogram for latency-style samples.  Keeps
 * exact count/sum/min/max and log2 buckets, giving ~2x-resolution
 * percentiles without storing samples.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    void record(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /**
     * Approximate p-quantile (0..1): the upper edge of the bucket
     * containing that rank.
     */
    std::uint64_t percentile(double p) const;

    /** "count mean p50 p99 max" summary line. */
    std::string summary() const;

    /**
     * JSON object with count/mean/min/max plus p50/p90/p99 derived
     * from the log2 buckets (upper bucket edges, like percentile()).
     */
    std::string toJson() const;

    /**
     * Pool @p other into this histogram.  Because the buckets are
     * fixed log2 bins, merging shard-local histograms is exact: the
     * result is bit-identical to recording every sample into one
     * pooled histogram (tests/obs_test.cc pins this).
     */
    void merge(const Histogram &other);

    /**
     * Reconstitute a histogram from raw log2 bucket counts (the
     * streaming-histogram snapshot/delta path).  @p sum is the exact
     * sample sum when known, else an approximation; min/max are
     * derived from the lowest/highest populated bucket edges.
     */
    static Histogram fromBuckets(
        const std::uint64_t (&buckets)[kBuckets], std::uint64_t sum);

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/**
 * A counter striped across cache-line-aligned slots so concurrent
 * writers never share a line.  Each thread picks a stripe once (a
 * thread_local index handed out round-robin) and does a relaxed
 * fetch_add on its own slot; readers sum every stripe.  This is the
 * merge-on-snapshot half of the telemetry plane: the hot path pays
 * one uncontended relaxed add, and only the (rare) sampler pays the
 * 64-slot walk.
 */
class ShardedCounter
{
  public:
    static constexpr unsigned kStripes = 64;

    /** Add @p delta on the calling thread's stripe (relaxed). */
    void
    add(std::uint64_t delta = 1)
    {
        slots_[stripeIndex()].v.fetch_add(delta,
                                          std::memory_order_relaxed);
    }

    /** Sum of every stripe (merge-on-snapshot; relaxed loads). */
    std::uint64_t load() const;

    /** Zero every stripe (test/bench isolation). */
    void reset();

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> v{0};
    };

    /** Round-robin thread_local stripe assignment. */
    static unsigned stripeIndex();

    Slot slots_[kStripes];
};

/**
 * Process-wide registry of named atomic counters, grouped like
 * StatGroups ("run_memo.hits").  Modules that used to keep
 * module-local ints register here instead, so harnesses, manifests
 * and tests can enumerate every counter from one place.  counter()
 * interns the slot on first use and returns a stable reference;
 * increments are plain relaxed atomics, safe from any thread.
 * sharded() interns a ShardedCounter instead for stats bumped from
 * many threads at once; snapshots merge both kinds into one view.
 */
class StatRegistry
{
  public:
    /** The process-wide instance. */
    static StatRegistry &instance();

    /**
     * The counter @p group.@p stat (created zero on first use).  The
     * returned reference stays valid for the process lifetime.
     */
    std::atomic<std::uint64_t> &counter(const std::string &group,
                                        const std::string &stat);

    /**
     * The sharded counter @p group.@p stat (created zero on first
     * use, stable reference).  A name is either plain or sharded,
     * never both; snapshots fold sharded totals in with counter()s.
     */
    ShardedCounter &sharded(const std::string &group,
                            const std::string &stat);

    /** Snapshot one group as a plain StatGroup (absent -> empty). */
    StatGroup snapshot(const std::string &group) const;

    /** Snapshot every group, keyed by group name. */
    std::map<std::string, StatGroup> snapshotAll() const;

    /** "group.stat value" lines over every group, sorted. */
    std::string dump() const;

    /** Zero every registered counter (test/bench isolation). */
    void reset();

    /**
     * Drop every group whose name starts with @p prefix.  Unlike
     * reset(), the slots are removed outright, so a later snapshot
     * no longer lists them.  For per-tenant teardown ("serve.t3."):
     * callers must guarantee no live references to the erased
     * counters remain -- counter()/sharded() references into an
     * erased group dangle.  Returns the number of groups dropped.
     */
    std::size_t erasePrefix(const std::string &prefix);

  private:
    StatRegistry() = default;

    mutable std::mutex mu_;
    /** unique_ptr keeps counter addresses stable across rehashing. */
    std::map<std::string,
             std::map<std::string,
                      std::unique_ptr<std::atomic<std::uint64_t>>>>
        groups_;
    std::map<std::string,
             std::map<std::string, std::unique_ptr<ShardedCounter>>>
        sharded_;
};

} // namespace mgmee

#endif // MGMEE_COMMON_STATS_HH
