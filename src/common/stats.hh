/**
 * @file
 * Lightweight named-statistics registry, loosely modelled on gem5's
 * stats package.  Engines register scalar counters; harnesses snapshot
 * and print them.
 */

#ifndef MGMEE_COMMON_STATS_HH
#define MGMEE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mgmee {

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Add @p delta to counter @p stat (created on first use). */
    void
    add(const std::string &stat, std::uint64_t delta = 1)
    {
        counters_[stat] += delta;
    }

    /** Current value of @p stat (0 if never touched). */
    std::uint64_t get(const std::string &stat) const;

    /** Reset every counter to zero. */
    void reset() { counters_.clear(); }

    /** Merge all counters of @p other into this group. */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Render "name.stat value" lines, sorted by stat name. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Power-of-two bucketed histogram for latency-style samples.  Keeps
 * exact count/sum/min/max and log2 buckets, giving ~2x-resolution
 * percentiles without storing samples.
 */
class Histogram
{
  public:
    void record(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /**
     * Approximate p-quantile (0..1): the upper edge of the bucket
     * containing that rank.
     */
    std::uint64_t percentile(double p) const;

    /** "count mean p50 p99 max" summary line. */
    std::string summary() const;

  private:
    static constexpr unsigned kBuckets = 64;

    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace mgmee

#endif // MGMEE_COMMON_STATS_HH
