/**
 * @file
 * Shared parsing of the parallelism environment knobs.
 *
 * Every layer that fans work out over threads -- the scenario sweeps
 * in bench/bench_util.hh, the sharded discrete-event scheduler in
 * src/sim/, and the fault-injection campaign -- reads the same knobs
 * through these helpers, so one `MGMEE_THREADS=4` means the same
 * thing everywhere and obs::Manifest records one consistent value.
 *
 * Knobs:
 *   MGMEE_THREADS  worker threads (default: all hardware threads;
 *                  clamped to threadCap(); 1 forces serial runs --
 *                  results are bit-identical either way)
 *   MGMEE_SHARDS   event-scheduler shards; 0 (default) keeps the
 *                  monolithic closed-loop sweep path, >0 routes
 *                  sweeps through the sharded scheduler
 *   MGMEE_QUANTUM  conservative time-window size of the sharded
 *                  scheduler, in cycles (default 256; larger quanta
 *                  amortise barriers but stretch cross-shard
 *                  latencies enough to distort scheme ordering)
 */

#ifndef MGMEE_COMMON_THREADS_HH
#define MGMEE_COMMON_THREADS_HH

#include "common/types.hh"

namespace mgmee {

/**
 * Upper bound for every thread/shard knob: the hardware concurrency,
 * with a floor of 8 so thread-scaling tests and TSan runs can still
 * oversubscribe small machines (a 1-core CI box would otherwise never
 * exercise a parallel code path).
 */
unsigned threadCap();

/** MGMEE_THREADS clamped to [1, threadCap()]; unset/0 = all cores. */
unsigned envThreads();

/** MGMEE_SHARDS clamped to [0, threadCap()]; 0 = sharding off. */
unsigned envShards();

/** MGMEE_QUANTUM clamped to [64, 1<<20] cycles; unset = 256. */
Cycle envQuantum();

} // namespace mgmee

#endif // MGMEE_COMMON_THREADS_HH
