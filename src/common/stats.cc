#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <sstream>

namespace mgmee {

std::uint64_t
StatGroup::get(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[k, v] : counters_) {
        if (!name_.empty())
            os << name_ << '.';
        os << k << ' ' << v << '\n';
    }
    return os.str();
}

void
Histogram::record(std::uint64_t value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    // Bucket b holds values with bit_width b (bucket 0 holds zero);
    // widths above 63 clamp into the last bucket.
    const unsigned bucket = std::min<unsigned>(
        kBuckets - 1, static_cast<unsigned>(std::bit_width(value)));
    ++buckets_[bucket];
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::min(1.0, std::max(0.0, p));
    const std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        seen += buckets_[b];
        if (seen > rank) {
            // Upper edge of bucket b, clamped to the observed max.
            const std::uint64_t edge =
                b == 0 ? 0
                : b >= kBuckets - 1
                    ? max_
                    : (std::uint64_t{1} << b) - 1;
            return std::min(edge, max_);
        }
    }
    return max_;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << count_ << " mean=" << mean()
       << " p50<=" << percentile(0.5) << " p99<=" << percentile(0.99)
       << " max=" << max();
    return os.str();
}

} // namespace mgmee
