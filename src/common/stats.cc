#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <sstream>

namespace mgmee {

std::uint64_t
StatGroup::get(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[k, v] : counters_) {
        if (!name_.empty())
            os << name_ << '.';
        os << k << ' ' << v << '\n';
    }
    return os.str();
}

void
Histogram::record(std::uint64_t value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    // Bucket b holds values with bit_width b (bucket 0 holds zero);
    // widths above 63 clamp into the last bucket.
    const unsigned bucket = std::min<unsigned>(
        kBuckets - 1, static_cast<unsigned>(std::bit_width(value)));
    ++buckets_[bucket];
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::min(1.0, std::max(0.0, p));
    const std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        seen += buckets_[b];
        if (seen > rank) {
            // Upper edge of bucket b, clamped to the observed max.
            const std::uint64_t edge =
                b == 0 ? 0
                : b >= kBuckets - 1
                    ? max_
                    : (std::uint64_t{1} << b) - 1;
            return std::min(edge, max_);
        }
    }
    return max_;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << count_ << " mean=" << mean()
       << " p50<=" << percentile(0.5) << " p99<=" << percentile(0.99)
       << " max=" << max();
    return os.str();
}

std::string
StatGroup::toJson() const
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto &[k, v] : counters_) {
        if (!first)
            os << ", ";
        first = false;
        os << '"' << k << "\": " << v;
    }
    os << '}';
    return os.str();
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram
Histogram::fromBuckets(const std::uint64_t (&buckets)[kBuckets],
                       std::uint64_t sum)
{
    Histogram h;
    for (unsigned b = 0; b < kBuckets; ++b) {
        h.buckets_[b] = buckets[b];
        h.count_ += buckets[b];
        if (!buckets[b])
            continue;
        // Bucket b holds values with bit_width b: lower edge
        // 1<<(b-1), upper edge (1<<b)-1 (bucket 0 holds only zero;
        // the clamped top bucket has no finite upper edge).
        const std::uint64_t lo =
            b == 0 ? 0 : std::uint64_t{1} << (b - 1);
        const std::uint64_t hi =
            b == 0               ? 0
            : b >= kBuckets - 1  ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << b) - 1;
        h.min_ = std::min(h.min_, lo);
        h.max_ = std::max(h.max_, hi);
    }
    h.sum_ = sum;
    return h;
}

std::string
Histogram::toJson() const
{
    std::ostringstream os;
    os << "{\"count\": " << count_ << ", \"sum\": " << sum_
       << ", \"mean\": " << mean() << ", \"min\": " << min()
       << ", \"max\": " << max() << ", \"p50\": " << percentile(0.5)
       << ", \"p90\": " << percentile(0.9)
       << ", \"p99\": " << percentile(0.99) << '}';
    return os.str();
}

// ---- ShardedCounter -----------------------------------------------------

std::uint64_t
ShardedCounter::load() const
{
    std::uint64_t total = 0;
    for (const Slot &s : slots_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
ShardedCounter::reset()
{
    for (Slot &s : slots_)
        s.v.store(0, std::memory_order_relaxed);
}

unsigned
ShardedCounter::stripeIndex()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned idx =
        next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
    return idx;
}

// ---- StatRegistry -------------------------------------------------------

StatRegistry &
StatRegistry::instance()
{
    // Immortal: counter references are held by other singletons and
    // must stay valid through process teardown.
    static StatRegistry &registry = *new StatRegistry;
    return registry;
}

std::atomic<std::uint64_t> &
StatRegistry::counter(const std::string &group, const std::string &stat)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = groups_[group][stat];
    if (!slot)
        slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    return *slot;
}

ShardedCounter &
StatRegistry::sharded(const std::string &group, const std::string &stat)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = sharded_[group][stat];
    if (!slot)
        slot = std::make_unique<ShardedCounter>();
    return *slot;
}

StatGroup
StatRegistry::snapshot(const std::string &group) const
{
    StatGroup out(group);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = groups_.find(group);
    if (it != groups_.end()) {
        for (const auto &[stat, value] : it->second)
            out.add(stat, value->load(std::memory_order_relaxed));
    }
    auto sit = sharded_.find(group);
    if (sit != sharded_.end()) {
        for (const auto &[stat, value] : sit->second)
            out.add(stat, value->load());
    }
    return out;
}

std::map<std::string, StatGroup>
StatRegistry::snapshotAll() const
{
    std::map<std::string, StatGroup> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[group, stats] : groups_) {
        StatGroup g(group);
        for (const auto &[stat, value] : stats)
            g.add(stat, value->load(std::memory_order_relaxed));
        out.emplace(group, std::move(g));
    }
    for (const auto &[group, stats] : sharded_) {
        StatGroup &g =
            out.emplace(group, StatGroup(group)).first->second;
        for (const auto &[stat, value] : stats)
            g.add(stat, value->load());
    }
    return out;
}

std::string
StatRegistry::dump() const
{
    std::string out;
    for (const auto &[group, g] : snapshotAll())
        out += g.dump();
    return out;
}

std::size_t
StatRegistry::erasePrefix(const std::string &prefix)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t dropped = 0;
    auto eraseIn = [&](auto &table) {
        for (auto it = table.lower_bound(prefix);
             it != table.end() &&
             it->first.compare(0, prefix.size(), prefix) == 0;) {
            it = table.erase(it);
            ++dropped;
        }
    };
    eraseIn(groups_);
    eraseIn(sharded_);
    return dropped;
}

void
StatRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[group, stats] : groups_)
        for (auto &[stat, value] : stats)
            value->store(0, std::memory_order_relaxed);
    for (auto &[group, stats] : sharded_)
        for (auto &[stat, value] : stats)
            value->reset();
}

} // namespace mgmee
