#include "common/config.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <set>

#include "common/logging.hh"

extern char **environ;

namespace mgmee {

namespace {

/**
 * Knob table: name, plus a parse hook writing into a Config.  This is
 * the single place a knob exists; fromEnv(), the unknown-knob scan
 * and Config::items() all derive from it, so adding a knob is one
 * entry here plus a field in the struct.
 */
struct KnobDef
{
    const char *name;
    void (*parse)(Config &, const char *);
    std::string (*render)(const Config &);
};

std::uint64_t
parseU64(const char *name, const char *s, std::uint64_t fallback)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || (end && *end)) {
        warn("%s=\"%s\" is not a number; using %llu", name, s,
             static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

double
parseDouble(const char *name, const char *s, double fallback)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || (end && *end)) {
        warn("%s=\"%s\" is not a number; using %g", name, s, fallback);
        return fallback;
    }
    return v;
}

/** "0" and "" are false, anything else true (matches the historical
 *  atoi-based readers for numeric flags, plus bare "1"). */
bool
parseBool(const char *s)
{
    return *s && std::strcmp(s, "0") != 0;
}

std::string
renderBool(bool b)
{
    return b ? "1" : "0";
}

std::string
renderDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

#define NUM_KNOB(env_name, field)                                            \
    {                                                                        \
        env_name,                                                            \
        [](Config &c, const char *s) {                                       \
            c.field = static_cast<decltype(c.field)>(                        \
                parseU64(env_name, s,                                        \
                         static_cast<std::uint64_t>(Config{}.field)));       \
        },                                                                   \
        [](const Config &c) {                                                \
            return std::to_string(                                           \
                static_cast<std::uint64_t>(c.field));                        \
        },                                                                   \
    }

#define BOOL_KNOB(env_name, field)                                           \
    {                                                                        \
        env_name,                                                            \
        [](Config &c, const char *s) { c.field = parseBool(s); },            \
        [](const Config &c) { return renderBool(c.field); },                 \
    }

#define STR_KNOB(env_name, field)                                            \
    {                                                                        \
        env_name,                                                            \
        [](Config &c, const char *s) { c.field = s; },                       \
        [](const Config &c) { return c.field; },                             \
    }

const KnobDef kKnobs[] = {
    NUM_KNOB("MGMEE_SCENARIOS", scenarios),
    {
        "MGMEE_SCALE",
        [](Config &c, const char *s) {
            c.scale = parseDouble("MGMEE_SCALE", s, Config{}.scale);
        },
        [](const Config &c) { return renderDouble(c.scale); },
    },
    NUM_KNOB("MGMEE_SEED", seed),
    NUM_KNOB("MGMEE_THREADS", threads),
    NUM_KNOB("MGMEE_SHARDS", shards),
    NUM_KNOB("MGMEE_QUANTUM", quantum),
    BOOL_KNOB("MGMEE_MEMO", memo),
    NUM_KNOB("MGMEE_SWEEP_REPS", sweep_reps),
    NUM_KNOB("MGMEE_WALK_OPS", walk_ops),
    STR_KNOB("MGMEE_TRACE", trace_path),
    BOOL_KNOB("MGMEE_PROFILE", profile),
    STR_KNOB("MGMEE_RESULTS_DIR", results_dir),
    NUM_KNOB("MGMEE_TELEMETRY", telemetry_ms),
    STR_KNOB("MGMEE_TELEMETRY_PATH", telemetry_path),
    BOOL_KNOB("MGMEE_HUD", hud),
    STR_KNOB("MGMEE_CRYPTO", crypto),
    NUM_KNOB("MGMEE_FAULT_SEED", fault_seed),
    STR_KNOB("MGMEE_FAULT_CLASSES", fault_classes),
    STR_KNOB("MGMEE_NVM_PERSIST", nvm_persist),
    BOOL_KNOB("MGMEE_ENFORCE_SCALING", enforce_scaling),
    BOOL_KNOB("MGMEE_ENFORCE_CRYPTO", enforce_crypto),
    BOOL_KNOB("MGMEE_ENFORCE_SERVE", enforce_serve),
    STR_KNOB("MGMEE_SERVE_SOCKET", serve_socket),
    NUM_KNOB("MGMEE_SERVE_TENANTS", serve_tenants),
    NUM_KNOB("MGMEE_SERVE_QUEUE_DEPTH", serve_queue_depth),
    NUM_KNOB("MGMEE_SERVE_BATCH", serve_batch),
    NUM_KNOB("MGMEE_SERVE_MEM", serve_mem_bytes),
    NUM_KNOB("MGMEE_SERVE_REQUESTS", serve_requests),
};

#undef NUM_KNOB
#undef BOOL_KNOB
#undef STR_KNOB

/**
 * Warn once per unknown MGMEE_* environment name.  The set persists
 * across reloadConfigFromEnv() so tests flipping knobs do not re-warn
 * on the same typo every reload.
 */
void
warnUnknownKnobs()
{
    static std::set<std::string> &warned = *new std::set<std::string>;
    for (char **e = environ; e && *e; ++e) {
        const char *entry = *e;
        if (std::strncmp(entry, "MGMEE_", 6) != 0)
            continue;
        const char *eq = std::strchr(entry, '=');
        const std::string name(entry,
                               eq ? static_cast<std::size_t>(
                                        eq - entry)
                                  : std::strlen(entry));
        bool known = false;
        for (const KnobDef &k : kKnobs) {
            if (name == k.name) {
                known = true;
                break;
            }
        }
        if (!known && warned.insert(name).second)
            warn("unknown knob %s ignored (known knobs are listed "
                 "in docs/API.md)",
                 name.c_str());
    }
}

/** Immortal: config() must stay usable from static init and exit
 *  handlers (obs auto-start objects, atexit flushes). */
Config &
processConfig()
{
    static Config &c = *new Config(Config::fromEnv());
    return c;
}

} // namespace

Config
Config::fromEnv()
{
    Config c;
    warnUnknownKnobs();
    for (const KnobDef &k : kKnobs) {
        const char *value = std::getenv(k.name);
        if (!value)
            continue;
        c.raw_env_.emplace_back(k.name, value);
        k.parse(c, value);
    }
    const std::string err = c.validate();
    if (!err.empty())
        fatal("invalid MGMEE_* environment: %s", err.c_str());
    return c;
}

std::string
Config::validate() const
{
    if (!(scale > 0.0))
        return "MGMEE_SCALE must be > 0";
    if (crypto != "auto" && crypto != "portable" &&
        crypto != "aesni" && crypto != "vaes")
        return "MGMEE_CRYPTO must be auto|portable|aesni|vaes";
    if (results_dir.empty())
        return "MGMEE_RESULTS_DIR must not be empty";
    if (nvm_persist != "wal" && nvm_persist != "unordered")
        return "MGMEE_NVM_PERSIST must be wal|unordered";
    if (serve_tenants == 0)
        return "MGMEE_SERVE_TENANTS must be >= 1";
    if (serve_batch == 0)
        return "MGMEE_SERVE_BATCH must be >= 1";
    if (serve_queue_depth < serve_batch)
        return "MGMEE_SERVE_QUEUE_DEPTH must fit at least one batch "
               "(>= MGMEE_SERVE_BATCH)";
    if (serve_mem_bytes < kChunkBytes)
        return "MGMEE_SERVE_MEM must cover at least one 32KB chunk";
    return "";
}

std::vector<std::pair<std::string, std::string>>
Config::items() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(std::size(kKnobs));
    for (const KnobDef &k : kKnobs)
        out.emplace_back(k.name, k.render(*this));
    return out;
}

const Config &
config()
{
    return processConfig();
}

void
setConfig(const Config &c)
{
    const std::string err = c.validate();
    if (!err.empty())
        fatal("setConfig: %s", err.c_str());
    processConfig() = c;
}

void
reloadConfigFromEnv()
{
    processConfig() = Config::fromEnv();
}

} // namespace mgmee
