/**
 * @file
 * Deterministic pseudo-random generator (xoshiro256**) for workload
 * trace synthesis.  std::mt19937 is avoided so trace generation is
 * fast and bit-identical across standard libraries.
 */

#ifndef MGMEE_COMMON_RNG_HH
#define MGMEE_COMMON_RNG_HH

#include <cstdint>

namespace mgmee {

/** xoshiro256** by Blackman & Vigna; seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        // splitmix64 seeding expands one word into the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace mgmee

#endif // MGMEE_COMMON_RNG_HH
