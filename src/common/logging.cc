#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mgmee {

namespace {
bool g_verbose = true;
} // namespace

void setVerbose(bool verbose) { g_verbose = verbose; }
bool verbose() { return g_verbose; }

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    std::fprintf(stdout, "info: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stdout, fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "\n");
}

} // namespace mgmee
