#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace mgmee {

namespace {

/** Atomic: benches toggle verbosity around sweeps whose scheduler
 *  shards call inform()/warn() from worker threads. */
std::atomic<bool> g_verbose{true};

/** Per-site (file:line) warn accounting behind one mutex -- warn()
 *  is explicitly thread-safe (shard workers hit shared sites
 *  concurrently); it is off the hot path, so contention is
 *  irrelevant. */
struct WarnState
{
    std::mutex mu;
    std::map<std::string, std::uint64_t> site_counts;
    std::uint64_t limit = 5;
    std::uint64_t suppressed_total = 0;
    bool exit_hook_installed = false;
};

/** Immortal: warn() must stay callable from atexit handlers and
 *  static destructors. */
WarnState &
warnState()
{
    static WarnState &state = *new WarnState;
    return state;
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *file, int line, const char *fmt, ...)
{
    WarnState &ws = warnState();
    {
        std::lock_guard<std::mutex> lock(ws.mu);
        if (!ws.exit_hook_installed) {
            ws.exit_hook_installed = true;
            std::atexit([] { warnFlushSuppressed(); });
        }
        const std::string site =
            std::string(file) + ":" + std::to_string(line);
        const std::uint64_t n = ++ws.site_counts[site];
        if (n > ws.limit) {
            ++ws.suppressed_total;
            return;
        }
        if (n == ws.limit) {
            std::fprintf(stderr,
                         "warn: %s: further warnings from this site "
                         "suppressed (summary at exit)\n",
                         site.c_str());
        }
    }
    std::fprintf(stderr, "warn: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
setWarnLimit(std::uint64_t per_site)
{
    WarnState &ws = warnState();
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.limit = per_site ? per_site : 1;
}

std::uint64_t
warnLimit()
{
    WarnState &ws = warnState();
    std::lock_guard<std::mutex> lock(ws.mu);
    return ws.limit;
}

std::uint64_t
warnSuppressedCount()
{
    WarnState &ws = warnState();
    std::lock_guard<std::mutex> lock(ws.mu);
    return ws.suppressed_total;
}

void
warnFlushSuppressed()
{
    WarnState &ws = warnState();
    std::lock_guard<std::mutex> lock(ws.mu);
    for (const auto &[site, count] : ws.site_counts) {
        if (count > ws.limit) {
            std::fprintf(stderr,
                         "warn: %s: suppressed %llu repeats\n",
                         site.c_str(),
                         static_cast<unsigned long long>(count -
                                                         ws.limit));
        }
    }
    ws.site_counts.clear();
    ws.suppressed_total = 0;
}

void
warnResetRateLimiter()
{
    WarnState &ws = warnState();
    std::lock_guard<std::mutex> lock(ws.mu);
    ws.site_counts.clear();
    ws.suppressed_total = 0;
}

void
informImpl(const char *fmt, ...)
{
    if (!g_verbose.load(std::memory_order_relaxed))
        return;
    std::fprintf(stdout, "info: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stdout, fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "\n");
}

} // namespace mgmee
