#include "common/threads.hh"

#include <algorithm>
#include <thread>

#include "common/config.hh"

namespace mgmee {

unsigned
threadCap()
{
    return std::max(8u, std::thread::hardware_concurrency());
}

unsigned
envThreads()
{
    const unsigned n = config().threads;
    if (n >= 1)
        return std::min(n, threadCap());
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned
envShards()
{
    return std::min(config().shards, threadCap());
}

Cycle
envQuantum()
{
    const Cycle n = config().quantum;
    if (n == 0)
        return 256;
    return std::clamp<Cycle>(n, 64, Cycle{1} << 20);
}

} // namespace mgmee
