#include "common/threads.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace mgmee {

namespace {

unsigned long
envUnsigned(const char *name)
{
    const char *s = std::getenv(name);
    return s ? std::strtoul(s, nullptr, 10) : 0;
}

} // namespace

unsigned
threadCap()
{
    return std::max(8u, std::thread::hardware_concurrency());
}

unsigned
envThreads()
{
    const unsigned long n = envUnsigned("MGMEE_THREADS");
    if (n >= 1)
        return static_cast<unsigned>(
            std::min<unsigned long>(n, threadCap()));
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned
envShards()
{
    const unsigned long n = envUnsigned("MGMEE_SHARDS");
    return static_cast<unsigned>(
        std::min<unsigned long>(n, threadCap()));
}

Cycle
envQuantum()
{
    const unsigned long n = envUnsigned("MGMEE_QUANTUM");
    if (n == 0)
        return 256;
    return std::clamp<Cycle>(n, 64, Cycle{1} << 20);
}

} // namespace mgmee
