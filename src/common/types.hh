/**
 * @file
 * Fundamental types and address-geometry constants shared by every
 * mgmee module.
 *
 * The paper fixes an 8-ary counter tree over 64B cachelines, which
 * yields the four granularity candidates 64B, 512B, 4KB and 32KB
 * (each 8x coarser than the previous).  All geometry below follows
 * from those two numbers.
 */

#ifndef MGMEE_COMMON_TYPES_HH
#define MGMEE_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace mgmee {

using Addr = std::uint64_t;
using Cycle = std::uint64_t;

/** Size of the finest protection unit: one cacheline. */
constexpr std::size_t kCachelineBytes = 64;
/** Arity of the counter integrity tree (children per node). */
constexpr std::size_t kTreeArity = 8;
/** Second-finest granularity: one "partition" (8 cachelines). */
constexpr std::size_t kPartitionBytes = kCachelineBytes * kTreeArity;
/** Third granularity: one "subchunk" (4KB). */
constexpr std::size_t kSubchunkBytes = kPartitionBytes * kTreeArity;
/** Coarsest granularity and the unit tracked per table entry: 32KB. */
constexpr std::size_t kChunkBytes = kSubchunkBytes * kTreeArity;

/** Cachelines per 32KB chunk (512). */
constexpr std::size_t kLinesPerChunk = kChunkBytes / kCachelineBytes;
/** 512B partitions per 32KB chunk (64). */
constexpr std::size_t kPartitionsPerChunk = kChunkBytes / kPartitionBytes;
/** 4KB subchunks per 32KB chunk (8). */
constexpr std::size_t kSubchunksPerChunk = kChunkBytes / kSubchunkBytes;
/** Cachelines per 512B partition (8). */
constexpr std::size_t kLinesPerPartition = kPartitionBytes / kCachelineBytes;

/** Bytes of MAC stored per protected 64B cacheline. */
constexpr std::size_t kMacBytes = 8;
/** MACs that fit in one 64B MAC cacheline. */
constexpr std::size_t kMacsPerLine = kCachelineBytes / kMacBytes;

/** Number of address bits covered by a cacheline / partition / chunk. */
constexpr unsigned kCachelineBits = 6;   // log2(64)
constexpr unsigned kPartitionBits = 9;   // log2(512)
constexpr unsigned kSubchunkBits = 12;   // log2(4096)
constexpr unsigned kChunkBits = 15;      // log2(32768)

/** The four supported protection granularities. */
enum class Granularity : std::uint8_t {
    Line64B = 0,    //!< conventional fine granularity
    Part512B = 1,   //!< one shared counter+MAC per 512B
    Sub4KB = 2,     //!< one shared counter+MAC per 4KB
    Chunk32KB = 3,  //!< one shared counter+MAC per 32KB
};

/** Number of tree levels pruned by a granularity (Eq. 2 of the paper). */
constexpr unsigned
promotionLevels(Granularity g)
{
    return static_cast<unsigned>(g);
}

/** Size in bytes of one protection unit at granularity @p g. */
constexpr std::size_t
granularityBytes(Granularity g)
{
    std::size_t bytes = kCachelineBytes;
    for (unsigned i = 0; i < promotionLevels(g); ++i)
        bytes *= kTreeArity;
    return bytes;
}

/** Short human-readable label ("64B", "512B", "4KB", "32KB"). */
constexpr const char *
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Line64B: return "64B";
      case Granularity::Part512B: return "512B";
      case Granularity::Sub4KB: return "4KB";
      case Granularity::Chunk32KB: return "32KB";
    }
    return "?";
}

/** Identifier of a processing unit in the heterogeneous SoC. */
enum class DeviceKind : std::uint8_t { CPU = 0, GPU = 1, NPU = 2 };

constexpr const char *
deviceKindName(DeviceKind k)
{
    switch (k) {
      case DeviceKind::CPU: return "CPU";
      case DeviceKind::GPU: return "GPU";
      case DeviceKind::NPU: return "NPU";
    }
    return "?";
}

/** Address helpers. */
constexpr Addr alignDown(Addr a, std::size_t unit) { return a / unit * unit; }
constexpr Addr chunkBase(Addr a) { return alignDown(a, kChunkBytes); }
constexpr std::uint64_t chunkIndex(Addr a) { return a >> kChunkBits; }
constexpr std::uint64_t lineIndex(Addr a) { return a >> kCachelineBits; }
/** Cacheline offset of @p a inside its 32KB chunk (0..511). */
constexpr unsigned
lineInChunk(Addr a)
{
    return static_cast<unsigned>((a >> kCachelineBits) &
                                 (kLinesPerChunk - 1));
}
/** 512B partition offset of @p a inside its 32KB chunk (0..63). */
constexpr unsigned
partInChunk(Addr a)
{
    return static_cast<unsigned>((a >> kPartitionBits) &
                                 (kPartitionsPerChunk - 1));
}
/** 4KB subchunk offset of @p a inside its 32KB chunk (0..7). */
constexpr unsigned
subInChunk(Addr a)
{
    return static_cast<unsigned>((a >> kSubchunkBits) &
                                 (kSubchunksPerChunk - 1));
}

} // namespace mgmee

#endif // MGMEE_COMMON_TYPES_HH
