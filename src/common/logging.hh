/**
 * @file
 * gem5-style status/error helpers: panic, fatal, warn, inform.
 *
 * panic()  -- an internal invariant broke (a simulator bug); aborts.
 * fatal()  -- the user asked for something unsupported; exits cleanly.
 * warn()   -- suspicious but survivable condition.
 * inform() -- plain status output.
 */

#ifndef MGMEE_COMMON_LOGGING_HH
#define MGMEE_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace mgmee {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *file, int line, const char *fmt, ...);
void informImpl(const char *fmt, ...);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

/**
 * warn() is rate limited per call site (file:line): the first
 * `warnLimit()` occurrences print, later ones are counted silently,
 * and a "suppressed K repeats" summary is emitted at process exit
 * (or on demand).  Sweeps over hundreds of scenarios thus cannot
 * spam stderr with one repeated diagnostic.
 */
void setWarnLimit(std::uint64_t per_site);
std::uint64_t warnLimit();

/** Total warnings suppressed so far across all sites. */
std::uint64_t warnSuppressedCount();

/** Print the per-site suppression summary now and reset it. */
void warnFlushSuppressed();

/** Forget all per-site history (test isolation). */
void warnResetRateLimiter();

} // namespace mgmee

#define panic(...) ::mgmee::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::mgmee::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::mgmee::warnImpl(__FILE__, __LINE__, __VA_ARGS__)
#define inform(...) ::mgmee::informImpl(__VA_ARGS__)

#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // MGMEE_COMMON_LOGGING_HH
