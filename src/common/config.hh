/**
 * @file
 * Typed process configuration: the single owner of every `MGMEE_*`
 * environment knob.
 *
 * Before this layer, each subsystem parsed its own knobs with ad-hoc
 * `getenv` calls scattered over a dozen files, which meant typos were
 * silently ignored, the set of knobs in effect was unknowable at run
 * time, and programmatic embedders (the serve layer, tests) had no
 * way to configure an engine except by mutating the environment.
 *
 * The redesigned contract:
 *
 *  - `Config` is a plain validated struct.  Servers, benches and
 *    tests construct engines from a Config value; nothing below this
 *    file reads the environment.
 *  - `Config::fromEnv()` is the one loader that parses the
 *    environment.  It scans for unknown `MGMEE_*` names and warns on
 *    each (a misspelled knob is a user error worth surfacing), and it
 *    records which knobs were explicitly set so manifests can
 *    distinguish "defaulted" from "requested".
 *  - `config()` returns the process-wide instance (lazily loaded
 *    from the environment).  `setConfig()` replaces it -- setup /
 *    test context only, before worker threads consult it.
 *  - `obs::Manifest` dumps the full effective configuration into
 *    every run manifest, so an artifact always records the exact
 *    knob state that produced it.
 *
 * A CI grep gate enforces that no raw getenv of an `MGMEE_*` name
 * exists outside common/config.cc.
 */

#ifndef MGMEE_COMMON_CONFIG_HH
#define MGMEE_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace mgmee {

/** Every MGMEE_* knob, parsed once and carried as typed fields. */
struct Config
{
    // ---- sweep shaping (bench/bench_util.hh) -------------------------
    /** MGMEE_SCENARIOS: cap on scenarios swept; 0 = all. */
    std::size_t scenarios = 0;
    /** MGMEE_SCALE: trace-length multiplier. */
    double scale = 0.5;
    /** MGMEE_SEED: base RNG seed. */
    std::uint64_t seed = 1;

    // ---- parallelism (common/threads.hh applies the clamps) ----------
    /** MGMEE_THREADS: worker threads; 0 = all hardware threads. */
    unsigned threads = 0;
    /** MGMEE_SHARDS: event-scheduler shards; 0 = sharding off. */
    unsigned shards = 0;
    /** MGMEE_QUANTUM: scheduler window (cycles); 0 = default 256. */
    Cycle quantum = 0;

    // ---- sweep-layer caching -----------------------------------------
    /** MGMEE_MEMO: trace repo + run-result memo ("0" disables). */
    bool memo = true;
    /** MGMEE_SWEEP_REPS: sweep_throughput repetitions; 0 = default. */
    unsigned sweep_reps = 0;
    /** MGMEE_WALK_OPS: micro_tree_walk ops/phase; 0 = default. */
    std::uint64_t walk_ops = 0;

    // ---- observability -----------------------------------------------
    /** MGMEE_TRACE: binary event-trace path; empty = tracing off. */
    std::string trace_path;
    /** MGMEE_PROFILE: phase profiler on/off. */
    bool profile = false;
    /** MGMEE_RESULTS_DIR: manifest/CSV output directory. */
    std::string results_dir = "results";
    /** MGMEE_TELEMETRY: sampling interval in ms; 0 = off. */
    unsigned telemetry_ms = 0;
    /** MGMEE_TELEMETRY_PATH: JSONL timeline path; empty = default. */
    std::string telemetry_path;
    /** MGMEE_HUD: one-line live stderr HUD. */
    bool hud = false;

    // ---- crypto data plane -------------------------------------------
    /** MGMEE_CRYPTO: auto|portable|aesni|vaes. */
    std::string crypto = "auto";

    // ---- fault campaign ----------------------------------------------
    /** MGMEE_FAULT_SEED: campaign seed; 0 = fall back to seed. */
    std::uint64_t fault_seed = 0;
    /** MGMEE_FAULT_CLASSES: comma list of attack classes; "" = all. */
    std::string fault_classes;
    /** MGMEE_NVM_PERSIST: persist ordering of the nvm-mgmee engine
     *  (mee/nvm_memory.hh): "wal" = write-ahead log (crash safe),
     *  "unordered" = in-place (torn persists recover fail-closed). */
    std::string nvm_persist = "wal";

    // ---- CI enforcement gates ----------------------------------------
    /** MGMEE_ENFORCE_SCALING: fail shard_scaling below 3x @ 8t. */
    bool enforce_scaling = false;
    /** MGMEE_ENFORCE_CRYPTO: fail crypto_throughput below 3x AES. */
    bool enforce_crypto = false;
    /** MGMEE_ENFORCE_SERVE: fail serve_throughput below 1M req/s. */
    bool enforce_serve = false;

    // ---- service mode (src/serve/) -----------------------------------
    /** MGMEE_SERVE_SOCKET: unix-domain socket path. */
    std::string serve_socket = "/tmp/mgmee-serve.sock";
    /** MGMEE_SERVE_TENANTS: tenants a default session hosts. */
    unsigned serve_tenants = 4;
    /** MGMEE_SERVE_QUEUE_DEPTH: per-tenant admission bound
     *  (outstanding requests); overflow is shed. */
    unsigned serve_queue_depth = 8192;
    /** MGMEE_SERVE_BATCH: requests per generated batch. */
    unsigned serve_batch = 256;
    /** MGMEE_SERVE_MEM: protected bytes per tenant. */
    std::uint64_t serve_mem_bytes = 32 * kChunkBytes;
    /** MGMEE_SERVE_REQUESTS: request budget for tools; 0 = default. */
    std::uint64_t serve_requests = 0;

    /**
     * Parse the environment: one getenv sweep over the known knobs,
     * plus a scan of the whole environment for unknown `MGMEE_*`
     * names (each warns once).  Malformed numeric values keep the
     * field default and warn.
     */
    static Config fromEnv();

    /**
     * Check cross-field invariants.  Returns "" when valid, else a
     * human-readable description of the first problem.  config()
     * treats an invalid environment as fatal.
     */
    std::string validate() const;

    /**
     * Every knob with its *effective* value, rendered as strings in
     * declaration order ("MGMEE_SCALE" -> "0.5", ...).  This is what
     * manifests embed as the "config" section.
     */
    std::vector<std::pair<std::string, std::string>> items() const;

    /**
     * The knobs that were explicitly present in the environment at
     * fromEnv() time, with their raw string values (manifests keep
     * these as the "knobs" section).  Empty for a Config that was
     * never loaded from the environment.
     */
    const std::vector<std::pair<std::string, std::string>> &
    rawEnv() const
    {
        return raw_env_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> raw_env_;
};

/**
 * The process-wide configuration.  First call loads from the
 * environment (fatal on validate() failure); later calls return the
 * same instance until setConfig() replaces it.
 */
const Config &config();

/**
 * Replace the process configuration (fatal on invalid @p c).  Setup
 * and test context only: callers must not race readers -- swap before
 * starting worker threads, exactly like setenv before this layer.
 */
void setConfig(const Config &c);

/** Re-parse the environment into the process config (test helper for
 *  code that mutates knobs with setenv mid-process). */
void reloadConfigFromEnv();

} // namespace mgmee

#endif // MGMEE_COMMON_CONFIG_HH
