/**
 * @file
 * Trace-driven processing-unit model.
 *
 * A device replays its off-chip trace in a closed loop with a bounded
 * outstanding-request window (memory-level parallelism): request i
 * may not issue before the completion of request i-window, and not
 * before its own compute gap after request i-1's issue.  This is how
 * protection-induced latency feeds back into device progress -- the
 * queueing amplification central to the paper's Sec. 3.2.
 */

#ifndef MGMEE_DEVICES_DEVICE_HH
#define MGMEE_DEVICES_DEVICE_HH

#include <deque>
#include <memory>
#include <string>

#include "common/types.hh"
#include "mem/request.hh"
#include "workloads/trace_gen.hh"

namespace mgmee {

/** One processing unit of the heterogeneous SoC. */
class Device
{
  public:
    /**
     * @param name   display name ("CPU:mcf")
     * @param kind   CPU/GPU/NPU
     * @param index  position in the hetero system (request tag)
     * @param trace  off-chip request trace (addresses pre-offset);
     *               shared and immutable, so the 250-scenario sweep
     *               replays one generated trace from many devices
     *               without copying it (workloads/trace_repo.hh)
     * @param window outstanding-request limit
     */
    Device(std::string name, DeviceKind kind, unsigned index,
           std::shared_ptr<const Trace> trace, unsigned window);

    /** Convenience overload for ad-hoc traces (tools, tests). */
    Device(std::string name, DeviceKind kind, unsigned index,
           Trace trace, unsigned window);

    bool done() const { return next_ >= trace_->size(); }

    /** Earliest cycle the next trace op may issue. */
    Cycle nextIssue() const;

    /** Materialise the next op as a MemRequest issued at nextIssue. */
    MemRequest makeRequest() const;

    /** Commit the next op with its completion time. */
    void complete(Cycle completion);

    /** Completion cycle of the device's last committed request. */
    Cycle finishTime() const { return finish_; }

    const std::string &name() const { return name_; }
    DeviceKind kind() const { return kind_; }
    unsigned index() const { return index_; }
    std::size_t requests() const { return next_; }
    std::size_t traceLength() const { return trace_->size(); }
    unsigned window() const { return window_; }

    /** The immutable trace this device replays (shared with the
     *  trace repository and, in sharded runs, with the async device
     *  model in sim/sharded_sweep, which replays it outside this
     *  class's closed-loop bookkeeping). */
    const std::shared_ptr<const Trace> &sharedTrace() const
    {
        return trace_;
    }

  private:
    std::string name_;
    DeviceKind kind_;
    unsigned index_;
    std::shared_ptr<const Trace> trace_;
    unsigned window_;

    std::size_t next_ = 0;
    Cycle last_issue_ = 0;
    Cycle finish_ = 0;
    /** Completion times of in-flight window (FIFO of size window). */
    std::deque<Cycle> inflight_;
};

} // namespace mgmee

#endif // MGMEE_DEVICES_DEVICE_HH
