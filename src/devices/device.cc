#include "devices/device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mgmee {

Device::Device(std::string name, DeviceKind kind, unsigned index,
               std::shared_ptr<const Trace> trace, unsigned window)
    : name_(std::move(name)), kind_(kind), index_(index),
      trace_(std::move(trace)), window_(std::max(1u, window))
{
    if (!trace_)
        trace_ = std::make_shared<const Trace>();
}

Device::Device(std::string name, DeviceKind kind, unsigned index,
               Trace trace, unsigned window)
    : Device(std::move(name), kind, index,
             std::make_shared<const Trace>(std::move(trace)), window)
{
}

Cycle
Device::nextIssue() const
{
    panic_if(done(), "%s: nextIssue past end of trace", name_.c_str());
    Cycle t = last_issue_ + (*trace_)[next_].gap;
    if (inflight_.size() >= window_)
        t = std::max(t, inflight_.front());
    return t;
}

MemRequest
Device::makeRequest() const
{
    const TraceOp &op = (*trace_)[next_];
    MemRequest req;
    req.addr = op.addr;
    req.bytes = op.bytes;
    req.is_write = op.is_write;
    req.device = index_;
    req.issue = nextIssue();
    return req;
}

void
Device::complete(Cycle completion)
{
    panic_if(done(), "%s: complete past end of trace", name_.c_str());
    last_issue_ = nextIssue();
    inflight_.push_back(std::max(completion, last_issue_));
    if (inflight_.size() > window_)
        inflight_.pop_front();
    finish_ = std::max(finish_, inflight_.back());
    ++next_;
}

} // namespace mgmee
