/**
 * @file
 * Factory for the CPU device model (8-core Orin-class Cortex,
 * Table 3), bound to a CPU workload spec.
 */

#ifndef MGMEE_DEVICES_CPU_MODEL_HH
#define MGMEE_DEVICES_CPU_MODEL_HH

#include <string>

#include "devices/device.hh"

namespace mgmee {

/**
 * Build a CPU device replaying @p workload_name.
 * @param index device slot in the hetero system
 * @param base  base address of the device's memory window
 * @param seed  trace RNG seed
 * @param scale trace-length multiplier
 */
Device makeCpuDevice(const std::string &workload_name, unsigned index,
                     Addr base, std::uint64_t seed,
                     double scale = 1.0);

} // namespace mgmee

#endif // MGMEE_DEVICES_CPU_MODEL_HH
