/**
 * @file
 * Factory for the GPU device model (14-SM integrated Ampere,
 * Table 3), bound to a GPU workload spec.
 */

#ifndef MGMEE_DEVICES_GPU_MODEL_HH
#define MGMEE_DEVICES_GPU_MODEL_HH

#include <string>

#include "devices/device.hh"

namespace mgmee {

/** Build a GPU device replaying @p workload_name. */
Device makeGpuDevice(const std::string &workload_name, unsigned index,
                     Addr base, std::uint64_t seed,
                     double scale = 1.0);

} // namespace mgmee

#endif // MGMEE_DEVICES_GPU_MODEL_HH
