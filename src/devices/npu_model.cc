#include "devices/npu_model.hh"

#include "common/logging.hh"
#include "workloads/registry.hh"
#include "workloads/trace_repo.hh"

namespace mgmee {

Device
makeNpuDevice(const std::string &workload_name, unsigned index,
              Addr base, std::uint64_t seed, double scale)
{
    const WorkloadSpec &spec = findWorkload(workload_name);
    fatal_if(spec.kind != DeviceKind::NPU,
             "'%s' is not an NPU workload", workload_name.c_str());
    return Device("NPU:" + spec.name, DeviceKind::NPU, index,
                  TraceRepo::instance().get(spec, base, seed, scale),
                  spec.window);
}

} // namespace mgmee
