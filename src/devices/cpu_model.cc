#include "devices/cpu_model.hh"

#include "common/logging.hh"
#include "workloads/registry.hh"
#include "workloads/trace_repo.hh"

namespace mgmee {

Device
makeCpuDevice(const std::string &workload_name, unsigned index,
              Addr base, std::uint64_t seed, double scale)
{
    const WorkloadSpec &spec = findWorkload(workload_name);
    fatal_if(spec.kind != DeviceKind::CPU,
             "'%s' is not a CPU workload", workload_name.c_str());
    return Device("CPU:" + spec.name, DeviceKind::CPU, index,
                  TraceRepo::instance().get(spec, base, seed, scale),
                  spec.window);
}

} // namespace mgmee
