/**
 * @file
 * Factory for the NPU device model (45x45 systolic array with
 * software-managed scratchpad, Table 3), bound to an NPU workload.
 */

#ifndef MGMEE_DEVICES_NPU_MODEL_HH
#define MGMEE_DEVICES_NPU_MODEL_HH

#include <string>

#include "devices/device.hh"

namespace mgmee {

/** Build an NPU device replaying @p workload_name. */
Device makeNpuDevice(const std::string &workload_name, unsigned index,
                     Addr base, std::uint64_t seed,
                     double scale = 1.0);

} // namespace mgmee

#endif // MGMEE_DEVICES_NPU_MODEL_HH
