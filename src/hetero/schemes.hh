/**
 * @file
 * Factory for every evaluated memory-protection scheme (Table 5).
 */

#ifndef MGMEE_HETERO_SCHEMES_HH
#define MGMEE_HETERO_SCHEMES_HH

#include <array>
#include <memory>
#include <string>

#include "common/types.hh"
#include "mee/timing_engine.hh"

namespace mgmee {

/** The simulation schemes of Table 5 (plus Fig. 20 ablations). */
enum class Scheme
{
    Unsecure,             //!< no protection
    Conventional,         //!< fixed 64B CTRs + MACs
    ConventionalMacOnly,  //!< Fig. 5: +Cost(MAC)
    Adaptive,             //!< dual-granular MAC [56]
    CommonCTR,            //!< dual-granular CTR [35]
    StaticDeviceBest,     //!< per-device exhaustive (set per-device g)
    MultiCtrOnly,         //!< multi-granular CTRs, 64B MACs
    Ours,                 //!< multi-granular CTRs + MACs
    OursNoSwitchCost,     //!< Fig. 20: w/o switching overhead
    OursDual512,          //!< Fig. 20: dual {64B,512B}
    OursDual4K,           //!< Fig. 20: dual {64B,4KB}
    OursDual32K,          //!< Fig. 20: dual {64B,32KB}
    BmfUnused,            //!< conventional + subtree opts [16,17]
    BmfUnusedOurs,        //!< ours + subtree opts
    BmfUnusedOursNoSwitchCost,  //!< Fig. 20 rightmost bar
    // Related-work engines of the extended matrix (docs/ENGINES.md).
    // Appended at the end: the perf-diff CI gates pin the manifests
    // of the kMainSchemes benches, so new schemes join the extended
    // list below, never kMainSchemes.
    Mgx,                  //!< application-derived versions (MGX)
    SecDdr,               //!< link-level per-transfer MAC (SecDDR)
};

/** Display name matching the paper's legends. */
const char *schemeName(Scheme s);

/** All Table-5 schemes in presentation order.  Frozen: the perf-diff
 *  CI gates compare bench manifests over exactly this list, so
 *  additions go to kRelatedWorkSchemes instead. */
constexpr std::array<Scheme, 9> kMainSchemes = {
    Scheme::Unsecure,      Scheme::Conventional,
    Scheme::Adaptive,      Scheme::CommonCTR,
    Scheme::StaticDeviceBest, Scheme::MultiCtrOnly,
    Scheme::Ours,          Scheme::BmfUnused,
    Scheme::BmfUnusedOurs,
};

/** Related-work timing engines beyond Table 5 (the extended engine
 *  matrix): swept by the non-perf-gated comparison benches. */
constexpr std::array<Scheme, 2> kRelatedWorkSchemes = {
    Scheme::Mgx,
    Scheme::SecDdr,
};

/**
 * Build the engine for @p scheme over a protected region of
 * @p data_bytes.  For StaticDeviceBest pass the chosen per-device
 * granularities (the exhaustive search lives in hetero/metrics).
 */
std::unique_ptr<TimingEngine>
makeEngine(Scheme scheme, std::size_t data_bytes,
           const std::array<Granularity, 8> &static_gran = {});

} // namespace mgmee

#endif // MGMEE_HETERO_SCHEMES_HH
