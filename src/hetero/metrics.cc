#include "hetero/metrics.hh"

#include "baselines/static_best.hh"
#include "common/logging.hh"
#include "hetero/hetero_system.hh"
#include "hetero/run_memo.hh"
#include "obs/profile.hh"

namespace mgmee {
namespace {

/**
 * Run @p scheme on an already-built device set.  Devices replay
 * shared immutable traces, so callers that sweep several schemes over
 * one scenario copy a prototype vector instead of regenerating the
 * traces per run.
 */
RunResult
runWithDevices(std::vector<Device> devices, Scheme scheme,
               std::size_t data_bytes,
               const std::array<Granularity, 8> &static_gran)
{
    HeteroSystem sys(std::move(devices),
                     makeEngine(scheme, data_bytes, static_gran));
    sys.run();

    RunResult res;
    res.scheme = scheme;
    res.device_finish = sys.deviceFinishTimes();
    res.total_bytes = sys.mem().totalBytes();
    res.security_misses = sys.engine().securityCacheMisses();
    for (const auto &dev : sys.devices())
        res.requests += dev.requests();
    return res;
}

} // namespace

RunResult
runScenario(const Scenario &scenario, Scheme scheme,
            std::uint64_t seed, double scale,
            const std::array<Granularity, 8> &static_gran)
{
    OBS_SCOPE("scenario_run");
    return runWithDevices(buildDevices(scenario, seed, scale), scheme,
                          scenarioDataBytes(), static_gran);
}

std::vector<double>
normalizedPerDevice(const RunResult &scheme, const RunResult &unsecure)
{
    panic_if(scheme.device_finish.size() !=
                 unsecure.device_finish.size(),
             "mismatched device counts in normalization");
    std::vector<double> norm;
    norm.reserve(scheme.device_finish.size());
    for (std::size_t i = 0; i < scheme.device_finish.size(); ++i) {
        const double denom =
            static_cast<double>(unsecure.device_finish[i]);
        norm.push_back(denom > 0
                           ? scheme.device_finish[i] / denom
                           : 1.0);
    }
    return norm;
}

double
normalizedExecTime(const RunResult &scheme, const RunResult &unsecure)
{
    const auto per_dev = normalizedPerDevice(scheme, unsecure);
    double sum = 0;
    for (double v : per_dev)
        sum += v;
    return per_dev.empty() ? 1.0 : sum / per_dev.size();
}

std::array<Granularity, 8>
searchStaticBest(const Scenario &scenario, std::uint64_t seed,
                 double scale)
{
    // The 5-run profile below is deterministic in (scenario, seed,
    // scale), so the result is memoized process-wide: figure benches
    // that sweep overlapping scenario sets pay for each search once.
    return searchStaticBestMemo(scenario, seed, scale, [&] {
        OBS_SCOPE("static_best_search");
        // The search profiles a *separate* trace instance (same
        // workload statistics, different seed): the paper notes the
        // per-device technique "requires an expensive warmup process
        // for each execution", i.e. the choice is made before the
        // measured run.
        const std::uint64_t profile_seed = seed ^ 0x9e37;

        // Hoisted out of the granularity loop: the protected-region
        // size and one prototype device set.  Each run copies the
        // prototype (a shared_ptr per trace) instead of regenerating
        // four traces per granularity.
        const std::size_t data_bytes = scenarioDataBytes();
        const std::vector<Device> proto =
            buildDevices(scenario, profile_seed, scale);

        const RunResult unsec = runWithDevices(
            proto, Scheme::Unsecure, data_bytes, {});

        // Sweep one shared granularity across all devices, then pick
        // per device the granularity that minimised *its own*
        // normalized time.  (The cross terms are second-order; the
        // paper's search is also per-device.)
        std::array<Granularity, 8> best{};
        std::array<double, 8> best_score{};
        best_score.fill(1e30);

        for (Granularity g : kAllGranularities) {
            std::array<Granularity, 8> all;
            all.fill(g);
            const RunResult r = runWithDevices(
                proto, Scheme::StaticDeviceBest, data_bytes, all);
            const auto per_dev = normalizedPerDevice(r, unsec);
            for (std::size_t d = 0; d < per_dev.size(); ++d) {
                if (per_dev[d] < best_score[d]) {
                    best_score[d] = per_dev[d];
                    best[d] = g;
                }
            }
        }
        return best;
    });
}

} // namespace mgmee
