#include "hetero/schemes.hh"

#include "baselines/adaptive_mac_engine.hh"
#include "baselines/common_counters_engine.hh"
#include "baselines/mgx_engine.hh"
#include "baselines/secddr_engine.hh"
#include "baselines/static_best.hh"
#include "common/logging.hh"
#include "core/multigran_engine.hh"
#include "mee/conventional_engine.hh"
#include "mee/unsecure_engine.hh"

namespace mgmee {

namespace {

/** BMF root cache + PENGLAI unused pruning, per the paper's combo. */
TimingConfig
withSubtreeOpts(TimingConfig cfg)
{
    cfg.root_cache_entries = 64;
    cfg.root_cache_level = 3;
    cfg.unused_pruning = true;
    return cfg;
}

std::unique_ptr<MultiGranEngine>
makeOurs(const char *name, std::size_t data_bytes, TimingConfig timing,
         bool charge_switch, std::optional<Granularity> dual)
{
    MultiGranEngineConfig cfg;
    cfg.timing = timing;
    cfg.charge_switch_costs = charge_switch;
    cfg.dual_only = dual;
    return std::make_unique<MultiGranEngine>(name, data_bytes, cfg);
}

} // namespace

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Unsecure: return "Unsecure";
      case Scheme::Conventional: return "Conventional";
      case Scheme::ConventionalMacOnly: return "Conv(MAC-only)";
      case Scheme::Adaptive: return "Adaptive";
      case Scheme::CommonCTR: return "CommonCTR";
      case Scheme::StaticDeviceBest: return "Static-device-best";
      case Scheme::MultiCtrOnly: return "Multi(CTR)-only";
      case Scheme::Ours: return "Ours";
      case Scheme::OursNoSwitchCost: return "Ours w/o Switch";
      case Scheme::OursDual512: return "Dual(512B)";
      case Scheme::OursDual4K: return "Dual(4KB)";
      case Scheme::OursDual32K: return "Dual(32KB)";
      case Scheme::BmfUnused: return "BMF&Unused";
      case Scheme::BmfUnusedOurs: return "BMF&Unused+Ours";
      case Scheme::BmfUnusedOursNoSwitchCost:
        return "BMF&Unused+Ours w/o Switch";
      case Scheme::Mgx: return "MGX";
      case Scheme::SecDdr: return "SecDDR";
    }
    return "?";
}

std::unique_ptr<TimingEngine>
makeEngine(Scheme scheme, std::size_t data_bytes,
           const std::array<Granularity, 8> &static_gran)
{
    TimingConfig timing;  // paper defaults
    timing.parallel_walk = true;
    switch (scheme) {
      case Scheme::Unsecure:
        return std::make_unique<UnsecureEngine>();
      case Scheme::Conventional:
        return std::make_unique<ConventionalEngine>(data_bytes,
                                                    timing);
      case Scheme::ConventionalMacOnly:
        return std::make_unique<ConventionalEngine>(
            data_bytes, timing,
            ConventionalEngine::CostMask{true, false});
      case Scheme::Adaptive:
        return makeAdaptiveEngine(data_bytes, timing);
      case Scheme::CommonCTR:
        return std::make_unique<CommonCountersEngine>(data_bytes,
                                                      timing);
      case Scheme::StaticDeviceBest:
        return makeStaticEngine(data_bytes, timing, static_gran,
                                "Static-device-best");
      case Scheme::MultiCtrOnly: {
        MultiGranEngineConfig cfg;
        cfg.timing = timing;
        cfg.coarse_macs = false;
        return std::make_unique<MultiGranEngine>("Multi(CTR)-only",
                                                 data_bytes, cfg);
      }
      case Scheme::Ours:
        return makeOurs("Ours", data_bytes, timing, true,
                        std::nullopt);
      case Scheme::OursNoSwitchCost:
        return makeOurs("Ours-noswitch", data_bytes, timing, false,
                        std::nullopt);
      case Scheme::OursDual512:
        return makeOurs("Dual512", data_bytes, timing, true,
                        Granularity::Part512B);
      case Scheme::OursDual4K:
        return makeOurs("Dual4K", data_bytes, timing, true,
                        Granularity::Sub4KB);
      case Scheme::OursDual32K:
        return makeOurs("Dual32K", data_bytes, timing, true,
                        Granularity::Chunk32KB);
      case Scheme::BmfUnused:
        return std::make_unique<ConventionalEngine>(
            data_bytes, withSubtreeOpts(timing));
      case Scheme::BmfUnusedOurs:
        return makeOurs("BMF&Unused+Ours", data_bytes,
                        withSubtreeOpts(timing), true, std::nullopt);
      case Scheme::BmfUnusedOursNoSwitchCost:
        return makeOurs("BMF&Unused+Ours-noswitch", data_bytes,
                        withSubtreeOpts(timing), false, std::nullopt);
      case Scheme::Mgx: {
        // Standard scenario layout (hetero/scenario.cc): CPU at slot
        // 0, GPU at 1, NPUs at 2/3 -- only the NPUs carry a software
        // schedule MGX can derive versions from.  Benches building
        // bespoke device mixes construct MgxEngine directly with
        // mgxScheduleFor() over their workload profiles.
        std::array<MgxSchedule, 8> sched{};
        sched[2].software_managed = true;
        sched[3].software_managed = true;
        sched[6].software_managed = true;
        sched[7].software_managed = true;
        return std::make_unique<MgxEngine>(data_bytes, timing, sched);
      }
      case Scheme::SecDdr:
        return std::make_unique<SecDdrEngine>(data_bytes, timing);
    }
    panic("unhandled scheme");
}

} // namespace mgmee
