/**
 * @file
 * Scenario execution and the paper's metrics: per-device normalized
 * execution time (vs the unsecured run), data traffic, and security
 * cache misses (Sec. 5.2).  Includes the exhaustive per-device
 * granularity search used by Static-device-best.
 */

#ifndef MGMEE_HETERO_METRICS_HH
#define MGMEE_HETERO_METRICS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "hetero/scenario.hh"
#include "hetero/schemes.hh"

namespace mgmee {

/** Raw results of one scheme on one scenario. */
struct RunResult
{
    Scheme scheme = Scheme::Unsecure;
    std::vector<Cycle> device_finish;   //!< per-device completion
    std::uint64_t total_bytes = 0;      //!< DRAM traffic (all causes)
    std::uint64_t security_misses = 0;  //!< metadata + MAC cache
    std::uint64_t requests = 0;
};

/** Run @p scheme on @p scenario (fresh devices, deterministic). */
RunResult runScenario(const Scenario &scenario, Scheme scheme,
                      std::uint64_t seed = 1, double scale = 1.0,
                      const std::array<Granularity, 8> &static_gran = {});

/**
 * Normalized execution time: mean over devices of
 * finish(scheme)/finish(unsecure) (Sec. 5.2 methodology).
 */
double normalizedExecTime(const RunResult &scheme,
                          const RunResult &unsecure);

/** Per-device normalized execution times. */
std::vector<double> normalizedPerDevice(const RunResult &scheme,
                                        const RunResult &unsecure);

/**
 * Exhaustive per-device granularity search (Static-device-best):
 * picks, per device, the fixed granularity minimising that device's
 * normalized time under a per-device sweep (4 x 4 runs instead of
 * 4^4; the paper's search is equally per-device).
 */
std::array<Granularity, 8>
searchStaticBest(const Scenario &scenario, std::uint64_t seed = 1,
                 double scale = 1.0);

} // namespace mgmee

#endif // MGMEE_HETERO_METRICS_HH
