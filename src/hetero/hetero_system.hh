/**
 * @file
 * The heterogeneous SoC: CPU + GPU + 2 NPUs sharing one LPDDR memory
 * controller behind one memory-protection engine (Fig. 7, Table 3).
 *
 * Devices replay their traces in a closed loop; the system advances
 * whichever device can issue earliest, so protection-induced latency
 * and bandwidth contention propagate between devices exactly as the
 * paper's combined-simulator methodology (Sec. 5.1).
 */

#ifndef MGMEE_HETERO_HETERO_SYSTEM_HH
#define MGMEE_HETERO_HETERO_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "devices/device.hh"
#include "mee/timing_engine.hh"
#include "mem/mem_ctrl.hh"

namespace mgmee {

/** Address window reserved per device (disjoint working sets). */
constexpr Addr kDeviceStride = Addr{64} << 20;

/** System-level configuration. */
struct SystemConfig
{
    MemCtrlConfig mem;
    /** Period of kernelBoundary() hooks (CommonCTR scans). */
    Cycle kernel_boundary_interval = 100 * 1000;
};

/** Composition of devices + engine + controller, with a run loop. */
class HeteroSystem
{
  public:
    HeteroSystem(std::vector<Device> devices,
                 std::unique_ptr<TimingEngine> engine,
                 const SystemConfig &cfg = {});

    /** Run every device trace to completion. */
    void run();

    /** Per-device completion cycles (order = construction order). */
    std::vector<Cycle> deviceFinishTimes() const;

    const std::vector<Device> &devices() const { return devices_; }

    /** Verified-read completion latency distribution (cycles). */
    const Histogram &readLatency() const { return read_latency_; }

    TimingEngine &engine() { return *engine_; }
    const TimingEngine &engine() const { return *engine_; }
    MemCtrl &mem() { return mem_; }
    const MemCtrl &mem() const { return mem_; }

  private:
    std::vector<Device> devices_;
    std::unique_ptr<TimingEngine> engine_;
    MemCtrl mem_;
    SystemConfig cfg_;
    Histogram read_latency_;
};

} // namespace mgmee

#endif // MGMEE_HETERO_HETERO_SYSTEM_HH
