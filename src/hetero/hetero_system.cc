#include "hetero/hetero_system.hh"

#include <limits>

#include "common/logging.hh"

namespace mgmee {

HeteroSystem::HeteroSystem(std::vector<Device> devices,
                           std::unique_ptr<TimingEngine> engine,
                           const SystemConfig &cfg)
    : devices_(std::move(devices)), engine_(std::move(engine)),
      mem_(cfg.mem), cfg_(cfg)
{
    fatal_if(devices_.empty(), "hetero system needs >=1 device");
    fatal_if(!engine_, "hetero system needs an engine");
}

void
HeteroSystem::run()
{
    Cycle next_boundary = cfg_.kernel_boundary_interval;
    while (true) {
        // Pick the device that can issue earliest.
        Device *next = nullptr;
        Cycle best = std::numeric_limits<Cycle>::max();
        for (auto &dev : devices_) {
            if (dev.done())
                continue;
            const Cycle t = dev.nextIssue();
            if (t < best) {
                best = t;
                next = &dev;
            }
        }
        if (!next)
            break;

        while (best >= next_boundary) {
            engine_->kernelBoundary(next_boundary, mem_);
            next_boundary += cfg_.kernel_boundary_interval;
        }

        const MemRequest req = next->makeRequest();
        const Cycle done = engine_->access(req, mem_);
        if (!req.is_write)
            read_latency_.record(done - req.issue);
        next->complete(done);
    }
    engine_->kernelBoundary(next_boundary, mem_);
}

std::vector<Cycle>
HeteroSystem::deviceFinishTimes() const
{
    std::vector<Cycle> times;
    times.reserve(devices_.size());
    for (const auto &dev : devices_)
        times.push_back(dev.finishTime());
    return times;
}

} // namespace mgmee
