#include "hetero/run_memo.hh"

#include <atomic>
#include <bit>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/stats.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "workloads/trace_repo.hh"

namespace mgmee {
namespace {

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Everything that influences a simulation run.  The workload names
 * are the identity of a scenario (ids are display labels and not
 * guaranteed unique across callers).
 */
struct RunKey
{
    std::string cpu, gpu, npu1, npu2;
    std::uint8_t scheme;
    std::uint64_t seed;
    std::uint64_t scale_bits;
    std::uint64_t gran;  //!< packed per-device static granularities
    std::uint64_t topo;  //!< simulation topology (0 = monolithic)

    bool
    operator==(const RunKey &o) const
    {
        return scheme == o.scheme && seed == o.seed &&
               scale_bits == o.scale_bits && gran == o.gran &&
               topo == o.topo && cpu == o.cpu && gpu == o.gpu &&
               npu1 == o.npu1 && npu2 == o.npu2;
    }
};

struct RunKeyHash
{
    std::size_t
    operator()(const RunKey &k) const
    {
        std::uint64_t h = std::hash<std::string>{}(k.cpu);
        h = mix64(h ^ std::hash<std::string>{}(k.gpu));
        h = mix64(h ^ std::hash<std::string>{}(k.npu1));
        h = mix64(h ^ std::hash<std::string>{}(k.npu2));
        h = mix64(h ^ (std::uint64_t{k.scheme} << 56) ^ k.seed);
        h = mix64(h ^ k.scale_bits);
        h = mix64(h ^ k.gran);
        h = mix64(h ^ k.topo);
        return static_cast<std::size_t>(h);
    }
};

std::uint64_t
packGran(const std::array<Granularity, 8> &g)
{
    std::uint64_t packed = 0;
    for (unsigned i = 0; i < g.size(); ++i)
        packed |= std::uint64_t{static_cast<std::uint8_t>(g[i])}
                  << (8 * i);
    return packed;
}

/**
 * Sharded key -> shared_future map.  The first requester of a key
 * installs a future and computes outside the shard lock; concurrent
 * requesters of the same key wait on the future, and requesters of
 * other keys in the same shard are not blocked by the computation.
 */
template <typename Value>
class FutureMemo
{
  public:
    template <typename Compute>
    Value
    getOrCompute(const RunKey &key, std::atomic<std::uint64_t> &hits,
                 std::atomic<std::uint64_t> &misses,
                 obs::MemoTable table, Compute &&compute)
    {
        OBS_SCOPE("memo_lookup");
        Shard &shard = shards_[RunKeyHash{}(key) % kShards];
        std::promise<Value> prom;
        std::shared_future<Value> fut;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                fut = it->second;
                hits.fetch_add(1, std::memory_order_relaxed);
            } else {
                fut = prom.get_future().share();
                shard.map.emplace(key, fut);
                owner = true;
                misses.fetch_add(1, std::memory_order_relaxed);
            }
        }
        OBS_EVENT(owner ? obs::EventKind::MemoMiss
                        : obs::EventKind::MemoHit,
                  0, RunKeyHash{}(key), 0,
                  static_cast<std::uint8_t>(table));
        if (owner)
            prom.set_value(compute());
        return fut.get();
    }

    /**
     * Non-blocking probe: true only when the key has a *ready*
     * result.  A key whose computation is still in flight reads as
     * absent -- callers that cannot block (the scheduler barrier)
     * recompute instead of waiting.
     */
    bool
    tryGet(const RunKey &key, std::atomic<std::uint64_t> &hits,
           std::atomic<std::uint64_t> &misses, obs::MemoTable table,
           Value &out)
    {
        Shard &shard = shards_[RunKeyHash{}(key) % kShards];
        std::shared_future<Value> fut;
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            auto it = shard.map.find(key);
            if (it != shard.map.end() &&
                it->second.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready) {
                fut = it->second;
            }
        }
        if (!fut.valid()) {
            misses.fetch_add(1, std::memory_order_relaxed);
            OBS_EVENT(obs::EventKind::MemoMiss, 0,
                      RunKeyHash{}(key), 0,
                      static_cast<std::uint8_t>(table));
            return false;
        }
        hits.fetch_add(1, std::memory_order_relaxed);
        OBS_EVENT(obs::EventKind::MemoHit, 0, RunKeyHash{}(key), 0,
                  static_cast<std::uint8_t>(table));
        out = fut.get();
        return true;
    }

    /** Publish a completed value (first install of a key wins). */
    void
    install(const RunKey &key, const Value &value)
    {
        Shard &shard = shards_[RunKeyHash{}(key) % kShards];
        std::promise<Value> prom;
        prom.set_value(value);
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.emplace(key, prom.get_future().share());
    }

    void
    clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.map.clear();
        }
    }

  private:
    static constexpr unsigned kShards = 16;

    struct Shard
    {
        std::mutex mu;
        std::unordered_map<RunKey, std::shared_future<Value>,
                           RunKeyHash>
            map;
    };

    Shard shards_[kShards];
};

struct MemoState
{
    FutureMemo<RunResult> runs;
    FutureMemo<std::array<Granularity, 8>> searches;
    // Counters live in the global StatRegistry so manifests and tests
    // see them under "run_memo" without a side channel.
    std::atomic<std::uint64_t> &run_hits =
        StatRegistry::instance().counter("run_memo", "hits");
    std::atomic<std::uint64_t> &run_misses =
        StatRegistry::instance().counter("run_memo", "misses");
    std::atomic<std::uint64_t> &search_hits =
        StatRegistry::instance().counter("run_memo", "search_hits");
    std::atomic<std::uint64_t> &search_misses =
        StatRegistry::instance().counter("run_memo", "search_misses");
};

MemoState &
state()
{
    static MemoState s;
    return s;
}

RunKey
makeKey(const Scenario &sc, Scheme scheme, std::uint64_t seed,
        double scale, std::uint64_t gran, std::uint64_t topo = 0)
{
    return RunKey{sc.cpu,
                  sc.gpu,
                  sc.npu1,
                  sc.npu2,
                  static_cast<std::uint8_t>(scheme),
                  seed,
                  std::bit_cast<std::uint64_t>(scale),
                  gran,
                  topo};
}

} // namespace

RunResult
runScenarioMemo(const Scenario &scenario, Scheme scheme,
                std::uint64_t seed, double scale,
                const std::array<Granularity, 8> &static_gran)
{
    if (!memoEnabled())
        return runScenario(scenario, scheme, seed, scale,
                           static_gran);
    // The granularity array only reaches the engine for
    // StaticDeviceBest; keying it unconditionally is still correct,
    // merely finer than needed for the other schemes.
    MemoState &s = state();
    return s.runs.getOrCompute(
        makeKey(scenario, scheme, seed, scale, packGran(static_gran)),
        s.run_hits, s.run_misses, obs::MemoTable::Run, [&] {
            return runScenario(scenario, scheme, seed, scale,
                               static_gran);
        });
}

std::array<Granularity, 8>
searchStaticBestMemo(const Scenario &scenario, std::uint64_t seed,
                     double scale,
                     const std::function<std::array<Granularity, 8>()>
                         &compute)
{
    if (!memoEnabled())
        return compute();
    MemoState &s = state();
    return s.searches.getOrCompute(
        makeKey(scenario, Scheme::StaticDeviceBest, seed, scale, 0),
        s.search_hits, s.search_misses, obs::MemoTable::Search,
        compute);
}

bool
runMemoTryGet(const Scenario &scenario, Scheme scheme,
              std::uint64_t seed, double scale,
              const std::array<Granularity, 8> &static_gran,
              std::uint64_t topo, RunResult &out)
{
    if (!memoEnabled())
        return false;
    MemoState &s = state();
    return s.runs.tryGet(
        makeKey(scenario, scheme, seed, scale, packGran(static_gran),
                topo),
        s.run_hits, s.run_misses, obs::MemoTable::Run, out);
}

void
runMemoInstall(const Scenario &scenario, Scheme scheme,
               std::uint64_t seed, double scale,
               const std::array<Granularity, 8> &static_gran,
               std::uint64_t topo, const RunResult &result)
{
    if (!memoEnabled())
        return;
    MemoState &s = state();
    s.runs.install(makeKey(scenario, scheme, seed, scale,
                           packGran(static_gran), topo),
                   result);
}

RunMemoStats
runMemoStats()
{
    const MemoState &s = state();
    return {s.run_hits.load(), s.run_misses.load(),
            s.search_hits.load(), s.search_misses.load()};
}

void
runMemoClear()
{
    MemoState &s = state();
    s.runs.clear();
    s.searches.clear();
}

} // namespace mgmee
