/**
 * @file
 * Process-wide memo for (scenario, scheme) simulation results.
 *
 * The figure benches sweep heavily overlapping (scenario, scheme)
 * grids: every sweep re-runs the per-scenario Unsecure baseline, and
 * the static-best search re-profiles the same five runs per scenario.
 * Simulations are deterministic (pinned by tests/hetero_test.cc and
 * tests/sweep_memo_test.cc), so a completed run can be replayed from
 * a cache keyed by everything that influences it: the four workload
 * names, the scheme, the seed, the trace scale, and the per-device
 * static granularities.
 *
 * The memo is sharded (16 mutexes) and publishes results through
 * `std::shared_future`, so concurrent sweep workers asking for the
 * same run block on the first computation instead of duplicating it.
 * `MGMEE_MEMO=0` (see workloads/trace_repo.hh) disables the layer;
 * results are bit-identical either way.
 */

#ifndef MGMEE_HETERO_RUN_MEMO_HH
#define MGMEE_HETERO_RUN_MEMO_HH

#include <array>
#include <cstdint>
#include <functional>

#include "hetero/metrics.hh"

namespace mgmee {

/**
 * Memoized front-end to the scenario runner: returns the cached
 * RunResult for the key, computing (and publishing) it on first use.
 * Falls back to a direct uncached run when `MGMEE_MEMO=0`.
 */
RunResult runScenarioMemo(const Scenario &scenario, Scheme scheme,
                          std::uint64_t seed, double scale,
                          const std::array<Granularity, 8>
                              &static_gran = {});

/**
 * Memoized static-best search keyed by (scenario workloads, seed,
 * scale); @p compute runs once per key per process.  Called by
 * searchStaticBest (hetero/metrics.cc), which owns the actual
 * profiling sweep.
 */
std::array<Granularity, 8>
searchStaticBestMemo(const Scenario &scenario, std::uint64_t seed,
                     double scale,
                     const std::function<std::array<Granularity, 8>()>
                         &compute);

/**
 * Non-blocking probe of the run memo for topology @p topo: fills
 * @p out and returns true only if the result is already computed.
 * @p topo distinguishes simulation topologies -- 0 is the monolithic
 * closed-loop path (what runScenarioMemo uses); the sharded event
 * scheduler packs its (channels, quantum, interleave) into a non-zero
 * word via sim::shardedTopoWord(), because those knobs change the
 * timing model and therefore the results.  Returns false when
 * `MGMEE_MEMO=0`.
 */
bool runMemoTryGet(const Scenario &scenario, Scheme scheme,
                   std::uint64_t seed, double scale,
                   const std::array<Granularity, 8> &static_gran,
                   std::uint64_t topo, RunResult &out);

/**
 * Publish a completed run for topology @p topo (counterpart of
 * runMemoTryGet; first install of a key wins).  No-op when
 * `MGMEE_MEMO=0`.
 */
void runMemoInstall(const Scenario &scenario, Scheme scheme,
                    std::uint64_t seed, double scale,
                    const std::array<Granularity, 8> &static_gran,
                    std::uint64_t topo, const RunResult &result);

/** Hit/miss counters of both memo tables. */
struct RunMemoStats
{
    std::uint64_t run_hits = 0;
    std::uint64_t run_misses = 0;
    std::uint64_t search_hits = 0;
    std::uint64_t search_misses = 0;
};

/** Snapshot of the memo counters (bench/test introspection). */
RunMemoStats runMemoStats();

/** Drop every cached result (bench cold-start control). */
void runMemoClear();

} // namespace mgmee

#endif // MGMEE_HETERO_RUN_MEMO_HH
