/**
 * @file
 * Process-wide memo for (scenario, scheme) simulation results.
 *
 * The figure benches sweep heavily overlapping (scenario, scheme)
 * grids: every sweep re-runs the per-scenario Unsecure baseline, and
 * the static-best search re-profiles the same five runs per scenario.
 * Simulations are deterministic (pinned by tests/hetero_test.cc and
 * tests/sweep_memo_test.cc), so a completed run can be replayed from
 * a cache keyed by everything that influences it: the four workload
 * names, the scheme, the seed, the trace scale, and the per-device
 * static granularities.
 *
 * The memo is sharded (16 mutexes) and publishes results through
 * `std::shared_future`, so concurrent sweep workers asking for the
 * same run block on the first computation instead of duplicating it.
 * `MGMEE_MEMO=0` (see workloads/trace_repo.hh) disables the layer;
 * results are bit-identical either way.
 */

#ifndef MGMEE_HETERO_RUN_MEMO_HH
#define MGMEE_HETERO_RUN_MEMO_HH

#include <array>
#include <cstdint>
#include <functional>

#include "hetero/metrics.hh"

namespace mgmee {

/**
 * Memoized front-end to the scenario runner: returns the cached
 * RunResult for the key, computing (and publishing) it on first use.
 * Falls back to a direct uncached run when `MGMEE_MEMO=0`.
 */
RunResult runScenarioMemo(const Scenario &scenario, Scheme scheme,
                          std::uint64_t seed, double scale,
                          const std::array<Granularity, 8>
                              &static_gran = {});

/**
 * Memoized static-best search keyed by (scenario workloads, seed,
 * scale); @p compute runs once per key per process.  Called by
 * searchStaticBest (hetero/metrics.cc), which owns the actual
 * profiling sweep.
 */
std::array<Granularity, 8>
searchStaticBestMemo(const Scenario &scenario, std::uint64_t seed,
                     double scale,
                     const std::function<std::array<Granularity, 8>()>
                         &compute);

/** Hit/miss counters of both memo tables. */
struct RunMemoStats
{
    std::uint64_t run_hits = 0;
    std::uint64_t run_misses = 0;
    std::uint64_t search_hits = 0;
    std::uint64_t search_misses = 0;
};

/** Snapshot of the memo counters (bench/test introspection). */
RunMemoStats runMemoStats();

/** Drop every cached result (bench cold-start control). */
void runMemoClear();

} // namespace mgmee

#endif // MGMEE_HETERO_RUN_MEMO_HH
