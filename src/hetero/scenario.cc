#include "hetero/scenario.hh"

#include "devices/cpu_model.hh"
#include "devices/gpu_model.hh"
#include "devices/npu_model.hh"
#include "hetero/hetero_system.hh"
#include "workloads/registry.hh"

namespace mgmee {

std::vector<Scenario>
allScenarios()
{
    // Table 4: 5 CPU x 5 GPU x multisets of 2 from the 4 NPU
    // workloads = 5 * 5 * 10 = 250 scenarios.
    static const char *kNpus[] = {"ncf", "dlrm", "alex", "sfrnn"};
    std::vector<Scenario> scenarios;
    scenarios.reserve(250);
    for (const auto &cpu : cpuWorkloads()) {
        if (cpu.name == "sc")
            continue;  // real-world extra, not part of the 250
        for (const auto &gpu : gpuWorkloads()) {
            for (unsigned i = 0; i < 4; ++i) {
                for (unsigned j = i; j < 4; ++j) {
                    Scenario s;
                    s.cpu = cpu.name;
                    s.gpu = gpu.name;
                    s.npu1 = kNpus[i];
                    s.npu2 = kNpus[j];
                    s.id = s.cpu + "+" + s.gpu + "+" + s.npu1 + "+" +
                           s.npu2;
                    scenarios.push_back(std::move(s));
                }
            }
        }
    }
    return scenarios;
}

std::vector<Scenario>
selectedScenarios()
{
    // Table 4 "Selected Scenarios".
    return {
        {"ff1", "bw", "syr2k", "ncf", "dlrm"},
        {"ff2", "mcf", "syr2k", "sfrnn", "dlrm"},
        {"ff3", "gcc", "floyd", "sfrnn", "ncf"},
        {"f1", "xal", "pr", "sfrnn", "ncf"},
        {"f2", "xal", "pr", "ncf", "ncf"},
        {"c1", "gcc", "sten", "alex", "dlrm"},
        {"c2", "bw", "sten", "ncf", "ncf"},
        {"c3", "mcf", "sten", "sfrnn", "sfrnn"},
        {"cc1", "xal", "mm", "alex", "dlrm"},
        {"cc2", "ray", "mm", "alex", "alex"},
        {"cc3", "ray", "floyd", "alex", "alex"},
    };
}

Scenario
financeScenario()
{
    // Table 6: GPU (pr) -> CPU (mcf) -> NPU (dlrm); the second NPU
    // slot re-runs dlrm's serving stage.
    return {"finance", "mcf", "pr", "dlrm", "dlrm"};
}

Scenario
autodriveScenario()
{
    // Table 6: GPU (sten) -> NPU (yt) -> CPU (sc).
    return {"autodrive", "sc", "sten", "yt", "yt"};
}

std::vector<Device>
buildDevices(const Scenario &s, std::uint64_t seed, double scale)
{
    std::vector<Device> devices;
    devices.push_back(makeCpuDevice(s.cpu, 0, 0 * kDeviceStride,
                                    seed * 4 + 0, scale));
    devices.push_back(makeGpuDevice(s.gpu, 1, 1 * kDeviceStride,
                                    seed * 4 + 1, scale));
    devices.push_back(makeNpuDevice(s.npu1, 2, 2 * kDeviceStride,
                                    seed * 4 + 2, scale));
    devices.push_back(makeNpuDevice(s.npu2, 3, 3 * kDeviceStride,
                                    seed * 4 + 3, scale));
    return devices;
}

std::size_t
scenarioDataBytes()
{
    return 4 * kDeviceStride;
}

} // namespace mgmee
