/**
 * @file
 * Scenario catalogue (Table 4 bottom / Table 6): the full 250-scenario
 * cross product (5 CPU x 5 GPU x 10 NPU multisets), the 11 selected
 * scenarios of Sec. 5.4, and the two real-world pipelines of Sec. 5.5.
 */

#ifndef MGMEE_HETERO_SCENARIO_HH
#define MGMEE_HETERO_SCENARIO_HH

#include <string>
#include <vector>

#include "devices/device.hh"

namespace mgmee {

/** One CPU + one GPU + two NPU workloads. */
struct Scenario
{
    std::string id;
    std::string cpu;
    std::string gpu;
    std::string npu1;
    std::string npu2;
};

/** All 250 Orin scenarios: 5 x 5 x C(4+2-1, 2). */
std::vector<Scenario> allScenarios();

/** The 11 selected scenarios of Table 4 (ff1..cc3). */
std::vector<Scenario> selectedScenarios();

/** Real-world pipelines of Table 6. */
Scenario financeScenario();
Scenario autodriveScenario();

/**
 * Instantiate a scenario's four devices with disjoint address
 * windows.  Seeds derive from @p seed and the device slot so every
 * scheme sees an identical trace set.
 */
std::vector<Device> buildDevices(const Scenario &s, std::uint64_t seed,
                                 double scale = 1.0);

/** Protected-region size covering all four device windows. */
std::size_t scenarioDataBytes();

} // namespace mgmee

#endif // MGMEE_HETERO_SCENARIO_HH
