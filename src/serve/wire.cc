#include "serve/wire.hh"

#include <cstring>

namespace mgmee::serve::wire {

namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'G', 'S', 'V'};

// Per-request wire layout: op(1) arg(1) pad(2) len(4) addr(8) seed(8).
constexpr std::size_t kRequestBytes = 24;
// Batch payload prologue: tenant(4) count(4) id(8).
constexpr std::size_t kBatchPrologue = 16;
// Reply payload prologue: tenant(4) flags(4) id(8) count(4) pad(4).
constexpr std::size_t kReplyPrologue = 24;
// Per-result wire layout: status(8) digest(8).
constexpr std::size_t kResultBytes = 16;

void
put16(std::vector<std::uint8_t> &v, std::uint16_t x)
{
    v.push_back(static_cast<std::uint8_t>(x));
    v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void
put32(std::vector<std::uint8_t> &v, std::uint32_t x)
{
    for (unsigned i = 0; i < 4; ++i)
        v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &v, std::uint64_t x)
{
    for (unsigned i = 0; i < 8; ++i)
        v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t x = 0;
    for (unsigned i = 0; i < 8; ++i)
        x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return x;
}

bool
validType(std::uint16_t t)
{
    return t >= static_cast<std::uint16_t>(FrameType::OpenSession) &&
           t <= static_cast<std::uint16_t>(FrameType::Error);
}

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

const char *
statusName(ReqStatus s)
{
    switch (s) {
      case ReqStatus::Ok: return "ok";
      case ReqStatus::MacMismatch: return "mac_mismatch";
      case ReqStatus::TreeMismatch: return "tree_mismatch";
      case ReqStatus::Shed: return "shed";
      case ReqStatus::BadRequest: return "bad_request";
    }
    return "?";
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + payload.size());
    out.insert(out.end(), kMagic, kMagic + 4);
    put16(out, kWireVersion);
    put16(out, static_cast<std::uint16_t>(type));
    put32(out, static_cast<std::uint32_t>(payload.size()));
    put32(out, 0);  // reserved
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

Decode
decodeFrame(std::span<const std::uint8_t> bytes, Frame &out,
            std::size_t &consumed, std::string &err)
{
    consumed = 0;
    if (bytes.size() < kHeaderBytes)
        return Decode::NeedMore;
    if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
        err = "bad frame magic";
        return Decode::Bad;
    }
    const std::uint16_t version = get16(bytes.data() + 4);
    if (version != kWireVersion) {
        err = "unsupported wire version " + std::to_string(version);
        return Decode::Bad;
    }
    const std::uint16_t type = get16(bytes.data() + 6);
    if (!validType(type)) {
        err = "unknown frame type " + std::to_string(type);
        return Decode::Bad;
    }
    const std::uint32_t len = get32(bytes.data() + 8);
    if (len > kMaxPayloadBytes) {
        err = "oversized payload (" + std::to_string(len) + " bytes)";
        return Decode::Bad;
    }
    if (get32(bytes.data() + 12) != 0) {
        err = "nonzero reserved header word";
        return Decode::Bad;
    }
    if (bytes.size() < kHeaderBytes + len)
        return Decode::NeedMore;
    out.type = static_cast<FrameType>(type);
    out.payload.assign(bytes.begin() + kHeaderBytes,
                       bytes.begin() + kHeaderBytes + len);
    consumed = kHeaderBytes + len;
    return Decode::Ok;
}

std::vector<std::uint8_t>
encodeBatch(const RequestBatch &batch)
{
    std::vector<std::uint8_t> p;
    p.reserve(kBatchPrologue + batch.requests.size() * kRequestBytes);
    put32(p, batch.tenant);
    put32(p, static_cast<std::uint32_t>(batch.requests.size()));
    put64(p, batch.id);
    for (const Request &r : batch.requests) {
        p.push_back(static_cast<std::uint8_t>(r.op));
        p.push_back(r.arg);
        put16(p, 0);
        put32(p, r.len);
        put64(p, r.addr);
        put64(p, r.seed);
    }
    return encodeFrame(FrameType::Batch, p);
}

std::vector<std::uint8_t>
encodeBatchReply(const BatchReply &reply)
{
    std::vector<std::uint8_t> p;
    p.reserve(kReplyPrologue + reply.results.size() * kResultBytes);
    put32(p, reply.tenant);
    put32(p, reply.shed ? 1u : 0u);
    put64(p, reply.id);
    put32(p, static_cast<std::uint32_t>(reply.results.size()));
    put32(p, 0);
    for (const Result &r : reply.results) {
        put64(p, static_cast<std::uint64_t>(r.status));
        put64(p, r.digest);
    }
    return encodeFrame(FrameType::BatchReply, p);
}

bool
parseBatch(std::span<const std::uint8_t> payload, RequestBatch &out,
           std::string &err)
{
    if (payload.size() < kBatchPrologue) {
        err = "batch payload shorter than its prologue";
        return false;
    }
    out.tenant = get32(payload.data());
    const std::uint32_t count = get32(payload.data() + 4);
    out.id = get64(payload.data() + 8);
    if (count > kMaxBatchRequests) {
        err = "batch of " + std::to_string(count) +
              " requests exceeds the cap";
        return false;
    }
    if (payload.size() != kBatchPrologue + count * kRequestBytes) {
        err = "batch payload length disagrees with request count";
        return false;
    }
    out.requests.clear();
    out.requests.reserve(count);
    const std::uint8_t *p = payload.data() + kBatchPrologue;
    for (std::uint32_t i = 0; i < count; ++i, p += kRequestBytes) {
        if (p[0] > static_cast<std::uint8_t>(Op::Tamper)) {
            err = "unknown op " + std::to_string(p[0]);
            return false;
        }
        Request r;
        r.op = static_cast<Op>(p[0]);
        r.arg = p[1];
        r.len = get32(p + 4);
        r.addr = get64(p + 8);
        r.seed = get64(p + 16);
        out.requests.push_back(r);
    }
    return true;
}

bool
parseBatchReply(std::span<const std::uint8_t> payload, BatchReply &out,
                std::string &err)
{
    if (payload.size() < kReplyPrologue) {
        err = "reply payload shorter than its prologue";
        return false;
    }
    out.tenant = get32(payload.data());
    out.shed = (get32(payload.data() + 4) & 1) != 0;
    out.id = get64(payload.data() + 8);
    const std::uint32_t count = get32(payload.data() + 16);
    if (count > kMaxBatchRequests) {
        err = "reply of " + std::to_string(count) +
              " results exceeds the cap";
        return false;
    }
    if (payload.size() != kReplyPrologue + count * kResultBytes) {
        err = "reply payload length disagrees with result count";
        return false;
    }
    out.results.clear();
    out.results.reserve(count);
    const std::uint8_t *p = payload.data() + kReplyPrologue;
    for (std::uint32_t i = 0; i < count; ++i, p += kResultBytes) {
        const std::uint64_t status = get64(p);
        if (status > static_cast<std::uint64_t>(ReqStatus::BadRequest)) {
            err = "unknown result status " + std::to_string(status);
            return false;
        }
        out.results.push_back(
            {static_cast<ReqStatus>(status), get64(p + 8)});
    }
    return true;
}

std::uint64_t
fnv1a(std::span<const std::uint8_t> bytes)
{
    std::uint64_t h = kFnvBasis;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1aStep(std::uint64_t h, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= static_cast<std::uint8_t>(value >> (8 * i));
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
fillPattern(std::uint64_t seed, Addr addr, std::span<std::uint8_t> out)
{
    std::uint64_t state = seed ^ (addr * 0x9e3779b97f4a7c15ULL);
    std::size_t i = 0;
    while (i < out.size()) {
        const std::uint64_t word = splitmix64(state);
        for (unsigned b = 0; b < 8 && i < out.size(); ++b, ++i)
            out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
}

} // namespace mgmee::serve::wire
