/**
 * @file
 * Unix-domain socket front end of the serving plane.
 *
 * A Listener owns a SOCK_STREAM unix socket and accepts any number of
 * concurrent client connections, each served by its own thread.  Every
 * connection speaks the framed protocol of serve/wire.hh; Batch frames
 * are forwarded to Server::submitSync() (so socket traffic and
 * in-process traffic share one execution path, including admission
 * control and determinism guarantees), Stats frames reply with the
 * server's live JSON statistics, and a Shutdown frame acknowledges and
 * then asks the listener to stop -- tools/mgmee_serve.cc uses that to
 * terminate cleanly under CI.  A malformed frame gets an Error reply
 * and the connection is closed.
 *
 * Client is the matching blocking connector used by mgmee-loadgen:
 * one call() sends a frame and reads exactly one reply frame,
 * re-assembling it across short reads.
 */

#ifndef MGMEE_SERVE_NET_HH
#define MGMEE_SERVE_NET_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hh"

namespace mgmee::serve {

class Server;

/** Socket acceptor bridging framed connections onto a Server. */
class Listener
{
  public:
    /**
     * Bind and listen on unix socket @p path (an existing socket
     * file is replaced) and start accepting.  Fatal if the socket
     * cannot be bound.
     */
    Listener(Server &server, const std::string &path);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Stop accepting, close every connection, join all threads;
     *  idempotent. */
    void stop();

    /** Block until a client's Shutdown frame (or stop()). */
    void waitForShutdown();

    /** True once a Shutdown frame has been honoured or stop() ran. */
    bool stopped() const { return stopping_.load(); }

    const std::string &path() const { return path_; }

  private:
    /** One accepted connection: its serving thread plus the flag the
     *  acceptor polls to reap finished threads as it goes. */
    struct Conn
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void serveConnection(int fd);
    void reapConnections();

    Server &server_;
    std::string path_;
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};
    std::thread accept_thread_;
    std::mutex stop_mu_;  //!< serialises the joins in stop()
    std::mutex conn_mu_;
    std::vector<std::unique_ptr<Conn>> conns_;
};

/** Blocking unix-socket client speaking one frame per call(). */
class Client
{
  public:
    /** Connect to the serve socket at @p path; fatal on failure. */
    explicit Client(const std::string &path);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Send one frame and block for the single reply frame.  Returns
     * false on a connection or protocol error (@p err describes it).
     */
    bool call(wire::FrameType type,
              std::span<const std::uint8_t> payload, wire::Frame &reply,
              std::string &err);

    /** Convenience: round-trip one batch.  False on transport error,
     *  protocol error, or an Error/unexpected reply frame. */
    bool callBatch(const wire::RequestBatch &batch,
                   wire::BatchReply &reply, std::string &err);

  private:
    int fd_ = -1;
    /** Stream re-assembly buffer (partial frames span calls). */
    std::vector<std::uint8_t> buf_;
};

} // namespace mgmee::serve

#endif // MGMEE_SERVE_NET_HH
