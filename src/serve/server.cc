#include "serve/server.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/threads.hh"
#include "obs/manifest.hh"

namespace mgmee::serve {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

wire::ReqStatus
mapStatus(SecureMemory::Status s)
{
    switch (s) {
      case SecureMemory::Status::Ok:
        return wire::ReqStatus::Ok;
      case SecureMemory::Status::MacMismatch:
        return wire::ReqStatus::MacMismatch;
      case SecureMemory::Status::TreeMismatch:
        return wire::ReqStatus::TreeMismatch;
    }
    return wire::ReqStatus::BadRequest;
}

/** Line-aligned, nonzero, chunk-bounded, inside the tenant arena. */
bool
validRange(Addr addr, std::uint32_t len, std::size_t mem_bytes)
{
    return len > 0 && len <= kChunkBytes &&
           addr % kCachelineBytes == 0 &&
           len % kCachelineBytes == 0 &&
           addr + len <= mem_bytes && addr + len >= addr;
}

std::string
tenantGroup(std::uint32_t id)
{
    // The trailing ".core" keeps every per-tenant group under the
    // "serve.t<id>." prefix, so erasePrefix at teardown cannot also
    // match another tenant whose id shares a decimal prefix.
    return "serve.t" + std::to_string(id) + ".core";
}

} // namespace

SecureMemory::Keys
deriveKeys(std::uint64_t key_seed)
{
    SecureMemory::Keys keys;
    std::uint64_t state = key_seed;
    for (unsigned i = 0; i < 16; i += 8) {
        const std::uint64_t word = splitmix64(state);
        for (unsigned b = 0; b < 8; ++b)
            keys.aes[i + b] =
                static_cast<std::uint8_t>(word >> (8 * b));
    }
    keys.mac = {splitmix64(state), splitmix64(state)};
    return keys;
}

// ---- SessionConfig ------------------------------------------------------

std::string
SessionConfig::validate() const
{
    if (tenants.empty())
        return "a session needs at least one tenant";
    std::vector<std::uint32_t> ids;
    for (const TenantConfig &t : tenants) {
        if (t.mem_bytes < kChunkBytes ||
            t.mem_bytes % kChunkBytes != 0) {
            return "tenant " + std::to_string(t.id) +
                   ": mem_bytes must be a positive multiple of 32KB";
        }
        if (t.queue_depth == 0)
            return "tenant " + std::to_string(t.id) +
                   ": queue_depth must be at least 1";
        ids.push_back(t.id);
    }
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
        return "duplicate tenant id";
    return "";
}

SessionConfig
SessionConfig::fromConfig(const Config &cfg)
{
    SessionConfig sc;
    for (unsigned i = 0; i < cfg.serve_tenants; ++i) {
        TenantConfig t;
        t.id = i;
        t.mem_bytes = cfg.serve_mem_bytes;
        t.key_seed = cfg.seed + 0x5e12e * (i + 1);
        t.queue_depth = cfg.serve_queue_depth;
        sc.tenants.push_back(t);
    }
    sc.shards = cfg.shards;
    sc.threads = cfg.threads;
    sc.quantum = cfg.quantum;
    return sc;
}

// ---- Server -------------------------------------------------------------

Server::Server(const SessionConfig &cfg) : cfg_(cfg)
{
    const std::string problem = cfg_.validate();
    fatal_if(!problem.empty(), "invalid serve session: %s",
             problem.c_str());

    sim::SchedulerConfig sched;
    sched.shards =
        cfg_.shards
            ? std::min(cfg_.shards, threadCap())
            : std::min<unsigned>(
                  static_cast<unsigned>(cfg_.tenants.size()), 8u);
    sched.threads = cfg_.threads ? std::min(cfg_.threads, threadCap())
                                 : envThreads();
    sched.quantum = cfg_.quantum ? cfg_.quantum : envQuantum();
    sched_ = std::make_unique<sim::Scheduler>(sched);

    StatRegistry &reg = StatRegistry::instance();
    for (const TenantConfig &tc : cfg_.tenants) {
        auto t = std::make_unique<Tenant>();
        t->cfg = tc;
        t->shard = tc.id % sched_->shards();
        t->engine = std::make_unique<SecureMemory>(
            tc.mem_bytes, deriveKeys(tc.key_seed));
        t->scratch.resize(kChunkBytes);
        t->telemetry_hist = &obs::telemetryHistogram(
            "serve.t" + std::to_string(tc.id) + ".batch_wall_ns");
        const std::string g = tenantGroup(tc.id);
        t->counters.batches = &reg.counter(g, "batches");
        t->counters.requests = &reg.counter(g, "requests");
        t->counters.shed_batches = &reg.counter(g, "shed_batches");
        t->counters.shed_requests = &reg.counter(g, "shed_requests");
        t->counters.mac_mismatch = &reg.counter(g, "mac_mismatch");
        t->counters.tree_mismatch = &reg.counter(g, "tree_mismatch");
        t->counters.bad_request = &reg.counter(g, "bad_request");
        t->counters.tampers = &reg.counter(g, "tampers");
        t->counters.detected = &reg.counter(g, "detected");
        by_id_.emplace(tc.id, tenants_.size());
        tenants_.push_back(std::move(t));
    }

    pump_ = std::thread([this] { pumpLoop(); });
}

Server::~Server() { stop(); }

Server::Tenant *
Server::tenantById(std::uint32_t id)
{
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : tenants_[it->second].get();
}

const Server::Tenant *
Server::tenantById(std::uint32_t id) const
{
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : tenants_[it->second].get();
}

bool
Server::anyInboxLocked() const
{
    for (const auto &t : tenants_)
        if (!t->inbox.empty())
            return true;
    return false;
}

std::future<wire::BatchReply>
Server::submit(wire::RequestBatch batch)
{
    std::promise<wire::BatchReply> reject;
    std::future<wire::BatchReply> reject_future = reject.get_future();

    auto rejectAll = [&](wire::ReqStatus status) {
        wire::BatchReply reply;
        reply.tenant = batch.tenant;
        reply.id = batch.id;
        reply.shed = status == wire::ReqStatus::Shed;
        reply.results.assign(batch.requests.size(), {status, 0});
        reject.set_value(std::move(reply));
        return std::move(reject_future);
    };

    if (batch.requests.empty() ||
        batch.requests.size() > wire::kMaxBatchRequests)
        return rejectAll(wire::ReqStatus::BadRequest);

    std::lock_guard<std::mutex> lock(mu_);
    if (!running_)
        return rejectAll(wire::ReqStatus::Shed);
    Tenant *t = tenantById(batch.tenant);
    if (t == nullptr || !t->open)
        return rejectAll(wire::ReqStatus::BadRequest);
    const std::uint64_t n = batch.requests.size();
    if (t->outstanding + n > t->cfg.queue_depth) {
        // Admission control: shed the whole batch rather than grow
        // the queue without bound.
        t->counters.shed_batches->fetch_add(
            1, std::memory_order_relaxed);
        t->counters.shed_requests->fetch_add(
            n, std::memory_order_relaxed);
        StatRegistry::instance()
            .counter("serve", "shed")
            .fetch_add(1, std::memory_order_relaxed);
        return rejectAll(wire::ReqStatus::Shed);
    }

    auto p = std::make_unique<Pending>();
    p->batch = std::move(batch);
    p->enqueued = std::chrono::steady_clock::now();
    p->tenant = t;
    std::future<wire::BatchReply> fut = p->promise.get_future();
    t->outstanding += n;
    t->inbox.push_back(std::move(p));
    cv_.notify_one();
    return fut;
}

wire::BatchReply
Server::submitSync(wire::RequestBatch batch)
{
    return submit(std::move(batch)).get();
}

wire::BatchReply
Server::injectTamper(std::uint32_t tenant, Addr addr,
                     unsigned byte_index)
{
    wire::RequestBatch b;
    b.tenant = tenant;
    b.id = ~std::uint64_t{0};
    wire::Request r;
    r.op = wire::Op::Tamper;
    r.arg = static_cast<std::uint8_t>(byte_index % kCachelineBytes);
    r.len = kCachelineBytes;
    r.addr = addr;
    b.requests.push_back(r);
    return submitSync(std::move(b));
}

bool
Server::removeTenant(std::uint32_t tenant)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        Tenant *t = tenantById(tenant);
        if (t == nullptr || !t->open || t->outstanding != 0)
            return false;
        t->open = false;
        t->engine.reset();
        // erasePrefix() below destroys the registry slots behind
        // Counters.  Capture the totals the aggregate accessors keep
        // reporting and null every cached pointer while mu_ is held,
        // so no reader (they all take mu_) can reach a freed atomic.
        t->final_requests =
            t->counters.requests->load(std::memory_order_relaxed);
        t->final_shed_batches = t->counters.shed_batches->load(
            std::memory_order_relaxed);
        t->counters = Counters{};
    }
    // Per-tenant stat groups vanish from future snapshots; the warn()
    // rate-limiter history is likewise per-process state a teardown
    // must not leak into the next tenant's diagnostics.
    StatRegistry::instance().erasePrefix(
        "serve.t" + std::to_string(tenant) + ".");
    warnResetRateLimiter();
    return true;
}

void
Server::stop()
{
    // stop_mu_ is held across the join so that concurrent stop()
    // calls (destructor vs. an explicit caller) cannot both reach
    // pump_.join(): the loser blocks until the winner has joined,
    // then sees an unjoinable thread.
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        running_ = false;
    }
    cv_.notify_all();
    if (pump_.joinable())
        pump_.join();
}

void
Server::pumpLoop()
{
    std::vector<std::unique_ptr<Pending>> work;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return !running_ || anyInboxLocked();
            });
            if (!anyInboxLocked() && !running_)
                return;
            // Tenant-id order: combined with per-inbox FIFO order
            // this makes the schedule -- and therefore every reply --
            // a pure function of the submission sequence.
            for (const auto &[id, idx] : by_id_) {
                Tenant &t = *tenants_[idx];
                while (!t.inbox.empty()) {
                    work.push_back(std::move(t.inbox.front()));
                    t.inbox.pop_front();
                }
            }
        }

        // Setup-context scheduling: the pump is the only thread that
        // talks to the scheduler, so plain schedule() is legal and
        // insertion order is deterministic.
        for (const auto &p : work) {
            Pending *pp = p.get();
            sched_->schedule(pp->tenant->shard, 0, [this, pp] {
                executeBatch(*pp->tenant, *pp);
            });
        }
        sched_->run();

        {
            std::lock_guard<std::mutex> lock(mu_);
            for (const auto &p : work)
                p->tenant->outstanding -= p->batch.requests.size();
        }
        for (auto &p : work)
            p->promise.set_value(std::move(p->reply));
        work.clear();
    }
}

void
Server::executeBatch(Tenant &t, Pending &p)
{
    p.reply.tenant = p.batch.tenant;
    p.reply.id = p.batch.id;
    p.reply.results.reserve(p.batch.requests.size());
    for (const wire::Request &r : p.batch.requests)
        p.reply.results.push_back(executeRequest(t, r));

    t.counters.batches->fetch_add(1, std::memory_order_relaxed);
    t.counters.requests->fetch_add(p.batch.requests.size(),
                                   std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - p.enqueued)
            .count();
    t.batch_wall_ns.record(wall_ns);
    if (obs::telemetryEnabled())
        t.telemetry_hist->record(wall_ns);
}

wire::Result
Server::executeRequest(Tenant &t, const wire::Request &r)
{
    using wire::Op;
    using wire::ReqStatus;

    wire::Result res;
    const std::size_t mem = t.cfg.mem_bytes;
    auto bad = [&] {
        t.counters.bad_request->fetch_add(1,
                                          std::memory_order_relaxed);
        return wire::Result{ReqStatus::BadRequest, 0};
    };

    switch (r.op) {
      case Op::Read: {
        if (!validRange(r.addr, r.len, mem))
            return bad();
        std::span<std::uint8_t> buf(t.scratch.data(), r.len);
        res.status = mapStatus(t.engine->read(r.addr, buf));
        res.digest = wire::fnv1a(buf);
        t.ticks.fetch_add(r.len / kCachelineBytes,
                          std::memory_order_relaxed);
        break;
      }
      case Op::Write: {
        if (!validRange(r.addr, r.len, mem))
            return bad();
        std::span<std::uint8_t> buf(t.scratch.data(), r.len);
        wire::fillPattern(r.seed, r.addr, buf);
        res.status = mapStatus(t.engine->write(r.addr, buf));
        res.digest = wire::fnv1a(buf);
        t.ticks.fetch_add(r.len / kCachelineBytes,
                          std::memory_order_relaxed);
        break;
      }
      case Op::SetGran: {
        if (r.addr >= mem)
            return bad();
        t.engine->applyStreamPart(chunkIndex(r.addr),
                                  StreamPart{r.seed});
        res.digest = r.seed;
        t.ticks.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case Op::Rekey: {
        t.engine->rekey(deriveKeys(r.seed));
        t.ticks.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      case Op::Tamper: {
        if (r.addr >= mem)
            return bad();
        t.engine->corruptData(r.addr, r.arg % kCachelineBytes);
        t.tampered = true;
        t.tamper_tick = t.ticks.load(std::memory_order_relaxed);
        t.tamper_wall = std::chrono::steady_clock::now();
        t.counters.tampers->fetch_add(1, std::memory_order_relaxed);
        t.ticks.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }

    if (res.status == ReqStatus::MacMismatch)
        t.counters.mac_mismatch->fetch_add(1,
                                           std::memory_order_relaxed);
    else if (res.status == ReqStatus::TreeMismatch)
        t.counters.tree_mismatch->fetch_add(
            1, std::memory_order_relaxed);

    if (t.tampered && (res.status == ReqStatus::MacMismatch ||
                       res.status == ReqStatus::TreeMismatch)) {
        // First verification failure after an injection: the
        // detection-latency sample, in deterministic ticks and in
        // wall time.
        t.detect_ticks.record(
            t.ticks.load(std::memory_order_relaxed) - t.tamper_tick);
        t.detect_wall_ns.record(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t.tamper_wall)
                .count());
        t.counters.detected->fetch_add(1, std::memory_order_relaxed);
        t.tampered = false;
    }
    return res;
}

std::uint64_t
Server::tenantRequests(const Tenant &t)
{
    return t.counters.requests
               ? t.counters.requests->load(std::memory_order_relaxed)
               : t.final_requests;
}

std::uint64_t
Server::tenantShedBatches(const Tenant &t)
{
    return t.counters.shed_batches
               ? t.counters.shed_batches->load(
                     std::memory_order_relaxed)
               : t.final_shed_batches;
}

unsigned
Server::tenantCountLocked() const
{
    unsigned n = 0;
    for (const auto &t : tenants_)
        n += t->open ? 1 : 0;
    return n;
}

std::uint64_t
Server::shedBatchesLocked() const
{
    std::uint64_t total = 0;
    for (const auto &t : tenants_)
        total += tenantShedBatches(*t);
    return total;
}

std::uint64_t
Server::completedRequestsLocked() const
{
    std::uint64_t total = 0;
    for (const auto &t : tenants_)
        total += tenantRequests(*t);
    return total;
}

unsigned
Server::tenantCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tenantCountLocked();
}

std::uint64_t
Server::shedBatches() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return shedBatchesLocked();
}

std::uint64_t
Server::completedRequests() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return completedRequestsLocked();
}

std::string
Server::statsJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"tenants\": " << tenantCountLocked()
       << ", \"shards\": " << sched_->shards()
       << ", \"completed_requests\": " << completedRequestsLocked()
       << ", \"shed_batches\": " << shedBatchesLocked()
       << ", \"per_tenant\": {";
    bool first = true;
    for (const auto &t : tenants_) {
        if (!first)
            os << ", ";
        first = false;
        const Histogram lat = t->batch_wall_ns.snapshot();
        os << "\"t" << t->cfg.id << "\": {\"open\": "
           << (t->open ? "true" : "false")
           << ", \"requests\": " << tenantRequests(*t)
           << ", \"shed_batches\": " << tenantShedBatches(*t)
           << ", \"batch_wall_p50_ns\": " << lat.percentile(0.5)
           << ", \"batch_wall_p99_ns\": " << lat.percentile(0.99)
           << ", \"ticks\": "
           << t->ticks.load(std::memory_order_relaxed) << "}";
    }
    os << "}}";
    return os.str();
}

void
Server::fillManifest(obs::Manifest &m, const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mu_);
    m.set(prefix + "serve.tenants", tenantCountLocked());
    m.set(prefix + "serve.shards", sched_->shards());
    m.set(prefix + "serve.completed_requests",
          completedRequestsLocked());
    m.set(prefix + "serve.shed_batches", shedBatchesLocked());
    for (const auto &t : tenants_) {
        const std::string tag =
            prefix + "t" + std::to_string(t->cfg.id);
        m.addHistogram(tag + ".batch_wall_ns",
                       t->batch_wall_ns.snapshot());
        if (t->detect_ticks.count()) {
            m.addHistogram(tag + ".detect_ticks",
                           t->detect_ticks.snapshot());
            m.addHistogram(tag + ".detect_wall_ns",
                           t->detect_wall_ns.snapshot());
            // Scalar mirror of the (deterministic) tick latency so
            // perf-diff baselines can pin it exactly -- histogram
            // names contain dots, which the baseline flattener does
            // not address.
            m.set(tag + ".detect_tick_p50",
                  t->detect_ticks.snapshot().percentile(0.5));
        }
    }
}

} // namespace mgmee::serve
