#include "serve/net.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "serve/server.hh"

namespace mgmee::serve {

namespace {

/** Fill @p addr for @p path; fatal if the path does not fit. */
sockaddr_un
unixAddr(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatal_if(path.size() >= sizeof(addr.sun_path),
             "socket path too long: %s", path.c_str());
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

bool
sendAll(int fd, const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Read frames off @p fd one recv() at a time, re-assembling across
 * short reads.  Returns false on EOF/error/protocol violation.
 */
bool
recvFrame(int fd, std::vector<std::uint8_t> &buf, wire::Frame &out,
          std::string &err)
{
    for (;;) {
        std::size_t consumed = 0;
        switch (wire::decodeFrame(buf, out, consumed, err)) {
          case wire::Decode::Ok:
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(consumed));
            return true;
          case wire::Decode::Bad:
            return false;
          case wire::Decode::NeedMore:
            break;
        }
        std::uint8_t chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) {
            err = "connection closed";
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_RCVTIMEO tick (server side): let the caller
                // check its stop flag; @p buf keeps any partial
                // frame for the next attempt.
                err = "timeout";
                return false;
            }
            err = std::string("recv: ") + std::strerror(errno);
            return false;
        }
        buf.insert(buf.end(), chunk, chunk + n);
    }
}

bool
sendFrame(int fd, wire::FrameType type,
          std::span<const std::uint8_t> payload)
{
    const std::vector<std::uint8_t> bytes =
        wire::encodeFrame(type, payload);
    return sendAll(fd, bytes.data(), bytes.size());
}

bool
sendError(int fd, const std::string &msg)
{
    return sendFrame(fd, wire::FrameType::Error,
                     {reinterpret_cast<const std::uint8_t *>(msg.data()),
                      msg.size()});
}

} // namespace

// ---- Listener -----------------------------------------------------------

Listener::Listener(Server &server, const std::string &path)
    : server_(server), path_(path)
{
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(listen_fd_ < 0, "socket: %s", std::strerror(errno));
    ::unlink(path_.c_str());
    const sockaddr_un addr = unixAddr(path_);
    fatal_if(::bind(listen_fd_,
                    reinterpret_cast<const sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind %s: %s", path_.c_str(), std::strerror(errno));
    fatal_if(::listen(listen_fd_, 64) != 0, "listen %s: %s",
             path_.c_str(), std::strerror(errno));
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

Listener::~Listener() { stop(); }

void
Listener::stop()
{
    stopping_.store(true);
    // stop_mu_ is held across the joins so that concurrent stop()
    // calls (destructor vs. an explicit caller) cannot both join the
    // same thread: the loser blocks until the winner has joined and
    // then finds nothing left to do.
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(path_.c_str());
    }
    std::vector<std::unique_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        conns.swap(conns_);
    }
    for (const auto &c : conns)
        if (c->thread.joinable())
            c->thread.join();
}

void
Listener::waitForShutdown()
{
    // Shutdown is rare and CI-driven; a poll loop keeps the
    // acceptor's stop flag authoritative without another condvar.
    while (!stopping_.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

void
Listener::acceptLoop()
{
    while (!stopping_.load()) {
        // A long-lived server sees many short-lived connections;
        // join finished threads as we go instead of accumulating
        // dead handles until stop().
        reapConnections();
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(conn_mu_);
        auto conn = std::make_unique<Conn>();
        Conn *c = conn.get();
        c->thread = std::thread([this, c, fd] {
            serveConnection(fd);
            c->done.store(true);
        });
        conns_.push_back(std::move(conn));
    }
}

void
Listener::reapConnections()
{
    std::vector<std::unique_ptr<Conn>> dead;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done.load()) {
                dead.push_back(std::move(*it));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    // done was the serving thread's last store, so these joins
    // return (almost) immediately.
    for (const auto &c : dead)
        c->thread.join();
}

void
Listener::serveConnection(int fd)
{
    // Bounded receive wait so stop() can always join this thread
    // even against a client that holds its connection open idle.
    timeval tv{0, 100 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::vector<std::uint8_t> buf;
    wire::Frame frame;
    std::string err;
    while (!stopping_.load()) {
        if (!recvFrame(fd, buf, frame, err)) {
            if (err == "timeout")
                continue;
            if (err != "connection closed")
                sendError(fd, err);
            break;
        }
        switch (frame.type) {
          case wire::FrameType::OpenSession: {
            // Two LE u32 fields: tenant count, then shard count.
            // Tenant ids are u32 and sessions impose no tenant cap,
            // so a single byte would truncate large sessions.
            std::vector<std::uint8_t> p;
            auto put32 = [&p](std::uint32_t v) {
                for (unsigned shift = 0; shift < 32; shift += 8)
                    p.push_back(
                        static_cast<std::uint8_t>(v >> shift));
            };
            put32(server_.tenantCount());
            put32(server_.shards());
            if (!sendFrame(fd, wire::FrameType::OpenReply, p))
                goto done;
            break;
          }
          case wire::FrameType::Batch: {
            wire::RequestBatch batch;
            if (!wire::parseBatch(frame.payload, batch, err)) {
                sendError(fd, err);
                goto done;
            }
            const wire::BatchReply reply =
                server_.submitSync(std::move(batch));
            const std::vector<std::uint8_t> bytes =
                wire::encodeBatchReply(reply);
            if (!sendAll(fd, bytes.data(), bytes.size()))
                goto done;
            break;
          }
          case wire::FrameType::Stats: {
            const std::string json = server_.statsJson();
            if (!sendFrame(
                    fd, wire::FrameType::StatsReply,
                    {reinterpret_cast<const std::uint8_t *>(
                         json.data()),
                     json.size()}))
                goto done;
            break;
          }
          case wire::FrameType::Shutdown:
            sendFrame(fd, wire::FrameType::ShutdownReply, {});
            stopping_.store(true);
            goto done;
          default:
            sendError(fd, "unexpected frame type");
            goto done;
        }
    }
done:
    ::close(fd);
}

// ---- Client -------------------------------------------------------------

Client::Client(const std::string &path)
{
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(fd_ < 0, "socket: %s", std::strerror(errno));
    const sockaddr_un addr = unixAddr(path);
    fatal_if(::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0,
             "connect %s: %s", path.c_str(), std::strerror(errno));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Client::call(wire::FrameType type,
             std::span<const std::uint8_t> payload, wire::Frame &reply,
             std::string &err)
{
    if (!sendFrame(fd_, type, payload)) {
        err = std::string("send: ") + std::strerror(errno);
        return false;
    }
    return recvFrame(fd_, buf_, reply, err);
}

bool
Client::callBatch(const wire::RequestBatch &batch,
                  wire::BatchReply &reply, std::string &err)
{
    const std::vector<std::uint8_t> bytes = wire::encodeBatch(batch);
    if (!sendAll(fd_, bytes.data(), bytes.size())) {
        err = std::string("send: ") + std::strerror(errno);
        return false;
    }
    wire::Frame frame;
    if (!recvFrame(fd_, buf_, frame, err))
        return false;
    if (frame.type == wire::FrameType::Error) {
        err.assign(frame.payload.begin(), frame.payload.end());
        return false;
    }
    if (frame.type != wire::FrameType::BatchReply) {
        err = "unexpected reply frame";
        return false;
    }
    return wire::parseBatchReply(frame.payload, reply, err);
}

} // namespace mgmee::serve
