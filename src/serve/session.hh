/**
 * @file
 * Typed session configuration of the serving plane: the programmatic
 * front door that replaces ad-hoc environment reads.
 *
 * A serve::Server is constructed from a SessionConfig value -- a
 * validated plain struct naming every tenant with its protected-
 * memory size, key seed and admission bound, plus the scheduler
 * topology the session runs on.  Embedders (tests, benches, the
 * loadgen) build one directly; the bundled tools derive one from the
 * process-wide common::Config with SessionConfig::fromConfig(), so
 * the environment is parsed exactly once, in one place.
 */

#ifndef MGMEE_SERVE_SESSION_HH
#define MGMEE_SERVE_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace mgmee::serve {

/** One tenant's slice of the session. */
struct TenantConfig
{
    /** Tenant identifier; unique within the session. */
    std::uint32_t id = 0;
    /** Protected bytes behind this tenant's engine. */
    std::size_t mem_bytes = 32 * kChunkBytes;
    /** Seed the tenant's AES/SipHash keys are derived from. */
    std::uint64_t key_seed = 1;
    /**
     * Admission bound: requests queued-but-incomplete for this
     * tenant.  A batch that would push the count past the bound is
     * shed whole (every request replies ReqStatus::Shed).
     */
    std::uint64_t queue_depth = 8192;
};

/** Everything a Server needs to come up. */
struct SessionConfig
{
    std::vector<TenantConfig> tenants;
    /** Scheduler shards; 0 = min(tenant count, 8). */
    unsigned shards = 0;
    /** Worker threads; 0 = the process default (MGMEE_THREADS). */
    unsigned threads = 0;
    /** Scheduler quantum; 0 = the process default (MGMEE_QUANTUM). */
    Cycle quantum = 0;

    /** "" when valid, else the first problem, human-readable. */
    std::string validate() const;

    /**
     * A session shaped by the process config: serve_tenants tenants
     * of serve_mem_bytes each, queue_depth from serve_queue_depth,
     * key seeds derived from the base seed.
     */
    static SessionConfig fromConfig(const Config &cfg);
};

} // namespace mgmee::serve

#endif // MGMEE_SERVE_SESSION_HH
