/**
 * @file
 * Framed wire protocol of the mgmee serving plane.
 *
 * Every message on a connection is one *frame*: a fixed 16-byte
 * header followed by a type-specific little-endian payload.
 *
 *     offset  size  field
 *     0       4     magic "MGSV"
 *     4       2     version (kWireVersion)
 *     6       2     frame type (FrameType)
 *     8       4     payload length in bytes
 *     12      4     reserved, must be zero
 *
 * Decoding is defensive by contract: a frame with a bad magic, an
 * unknown version, a payload above kMaxPayloadBytes, a nonzero
 * reserved word, or a batch above kMaxBatchRequests is rejected with
 * a diagnostic and the connection is considered poisoned; a frame
 * whose bytes have not fully arrived yet is reported as NeedMore so
 * stream readers can keep accumulating (tests/serve_test.cc pins the
 * truncated/oversized/bad-magic behaviour).
 *
 * Requests never carry bulk data.  A Write's payload is synthesised
 * deterministically from (seed, addr) via fillPattern() on the server
 * side, and every reply carries a 64-bit FNV-1a digest of the
 * plaintext the engine observed, so clients can verify results -- and
 * harnesses can compare runs bit-for-bit -- without hauling data
 * across the socket.
 */

#ifndef MGMEE_SERVE_WIRE_HH
#define MGMEE_SERVE_WIRE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mgmee::serve::wire {

/** Protocol revision; bumped on any layout change. */
constexpr std::uint16_t kWireVersion = 1;
/** Frame header bytes ("MGSV" + version/type/length/reserved). */
constexpr std::size_t kHeaderBytes = 16;
/** Upper bound on one frame's payload. */
constexpr std::size_t kMaxPayloadBytes = std::size_t{1} << 20;
/** Upper bound on requests per batch. */
constexpr std::size_t kMaxBatchRequests = 4096;

/** Frame types (header field). */
enum class FrameType : std::uint16_t
{
    OpenSession = 1,   //!< client hello; server replies OpenReply
    OpenReply = 2,     //!< topology: tenant + shard count (2x LE u32)
    Batch = 3,         //!< a RequestBatch for one tenant
    BatchReply = 4,    //!< per-request results (or a shed batch)
    Stats = 5,         //!< poll live server statistics
    StatsReply = 6,    //!< JSON stats payload
    Shutdown = 7,      //!< drain and stop the server
    ShutdownReply = 8, //!< acknowledged; connection closes after
    Error = 9,         //!< human-readable protocol error
};

/** Operations a request can ask of its tenant's engine. */
enum class Op : std::uint8_t
{
    Read = 0,     //!< verify+decrypt [addr, addr+len)
    Write = 1,    //!< encrypt+MAC a fillPattern(seed) payload
    SetGran = 2,  //!< applyStreamPart(chunk of addr, seed as map)
    Rekey = 3,    //!< rotate tenant keys (derived from seed)
    Tamper = 4,   //!< admin/attack: corrupt ciphertext byte arg
};

/** Per-request outcome carried in a BatchReply. */
enum class ReqStatus : std::uint8_t
{
    Ok = 0,
    MacMismatch = 1,   //!< engine detected a data/MAC failure
    TreeMismatch = 2,  //!< engine detected a freshness failure
    Shed = 3,          //!< dropped by admission control, never ran
    BadRequest = 4,    //!< malformed (range/alignment), never ran
};

const char *statusName(ReqStatus s);

/** One access request (24 bytes on the wire). */
struct Request
{
    Op op = Op::Read;
    std::uint8_t arg = 0;      //!< Tamper: byte index within the line
    std::uint32_t len = kCachelineBytes;  //!< Read/Write byte count
    Addr addr = 0;             //!< tenant-local byte address
    std::uint64_t seed = 0;    //!< Write/Rekey/SetGran parameter
};

/** A batch of requests for one tenant. */
struct RequestBatch
{
    std::uint32_t tenant = 0;
    std::uint64_t id = 0;      //!< echoed in the reply
    std::vector<Request> requests;
};

/** One request's result. */
struct Result
{
    ReqStatus status = ReqStatus::Ok;
    std::uint64_t digest = 0;  //!< FNV-1a of the observed plaintext
};

/** Reply to one RequestBatch. */
struct BatchReply
{
    std::uint32_t tenant = 0;
    std::uint64_t id = 0;
    bool shed = false;         //!< whole batch dropped at admission
    std::vector<Result> results;
};

/** A decoded frame: type plus raw payload bytes. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;
};

/** Outcome of decodeFrame() on a byte stream prefix. */
enum class Decode
{
    Ok,        //!< one frame decoded; @p consumed bytes used
    NeedMore,  //!< the stream ends mid-frame; feed more bytes
    Bad,       //!< malformed (magic/version/size); poison the stream
};

// ---- frame encode/decode ------------------------------------------------

/** Wrap @p payload in a frame of @p type. */
std::vector<std::uint8_t> encodeFrame(
    FrameType type, std::span<const std::uint8_t> payload);

/**
 * Decode one frame from the front of @p bytes.  On Ok, @p out holds
 * the frame and @p consumed the bytes used; on Bad, @p err describes
 * the violation; on NeedMore nothing is consumed.
 */
Decode decodeFrame(std::span<const std::uint8_t> bytes, Frame &out,
                   std::size_t &consumed, std::string &err);

// ---- payload encode/parse -----------------------------------------------

/** Full frame (header included) carrying @p batch. */
std::vector<std::uint8_t> encodeBatch(const RequestBatch &batch);
/** Full frame carrying @p reply. */
std::vector<std::uint8_t> encodeBatchReply(const BatchReply &reply);

/** Parse a Batch frame payload; false + @p err on malformed input. */
bool parseBatch(std::span<const std::uint8_t> payload,
                RequestBatch &out, std::string &err);
/** Parse a BatchReply frame payload. */
bool parseBatchReply(std::span<const std::uint8_t> payload,
                     BatchReply &out, std::string &err);

// ---- deterministic data helpers -----------------------------------------

/** FNV-1a 64-bit over @p bytes (the reply digest function). */
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/** Chain @p value into a running FNV-1a state @p h. */
std::uint64_t fnv1aStep(std::uint64_t h, std::uint64_t value);

/** FNV-1a offset basis (initial chain value). */
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/**
 * Deterministic write payload: a splitmix64 keystream of
 * (seed ^ addr), the same on client and server, so a Write request
 * needs no data bytes on the wire.
 */
void fillPattern(std::uint64_t seed, Addr addr,
                 std::span<std::uint8_t> out);

} // namespace mgmee::serve::wire

#endif // MGMEE_SERVE_WIRE_HH
