#include "serve/loadgen.hh"

namespace mgmee::serve {

namespace {

/** Post-tamper working set: cycle this many lines so the corrupted
 *  one is re-read within a bounded, deterministic distance. */
constexpr std::uint64_t kTamperWorkingLines = 8;

} // namespace

Loadgen::Loadgen(const LoadgenConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed * 0x9e3779b97f4a7c15ULL + cfg.tenant)
{
}

void
Loadgen::next(wire::RequestBatch &out)
{
    out.tenant = cfg_.tenant;
    out.id = next_id_++;
    out.requests.clear();
    out.requests.reserve(cfg_.batch);

    const std::uint64_t lines = cfg_.mem_bytes / kCachelineBytes;
    for (unsigned i = 0; i < cfg_.batch; ++i, ++generated_) {
        wire::Request r;
        if (generated_ == cfg_.tamper_at) {
            // The injection: corrupt one line of a small working set
            // the stream is about to keep revisiting.
            r.op = wire::Op::Tamper;
            r.arg = static_cast<std::uint8_t>(rng_.below(
                kCachelineBytes));
            r.addr = 0;
            r.len = kCachelineBytes;
            tampered_ = true;
            out.requests.push_back(r);
            continue;
        }
        if (tampered_) {
            // Post-injection: read the working set until the engine
            // flags the corrupted line, keeping tick latency bounded.
            r.op = wire::Op::Read;
            r.addr = (generated_ % kTamperWorkingLines) *
                     kCachelineBytes;
            r.len = kCachelineBytes;
            out.requests.push_back(r);
            continue;
        }
        r.op = rng_.chance(cfg_.write_fraction) ? wire::Op::Write
                                                : wire::Op::Read;
        // 64B..4KB power-of-two lengths, biased small like real
        // access streams.
        const unsigned shift = static_cast<unsigned>(rng_.below(7));
        r.len = kCachelineBytes << (shift >= 4 ? shift - 4 : 0);
        const std::uint64_t span_lines = r.len / kCachelineBytes;
        r.addr = rng_.below(lines - span_lines + 1) * kCachelineBytes;
        r.seed = rng_.next();
        out.requests.push_back(r);
    }
}

void
Loadgen::absorb(const wire::BatchReply &reply)
{
    if (reply.shed) {
        ++shed_batches_;
        return;
    }
    for (const wire::Result &res : reply.results) {
        digest_ = wire::fnv1aStep(
            digest_, static_cast<std::uint64_t>(res.status));
        digest_ = wire::fnv1aStep(digest_, res.digest);
        switch (res.status) {
          case wire::ReqStatus::MacMismatch:
          case wire::ReqStatus::TreeMismatch:
            ++faults_seen_;
            break;
          case wire::ReqStatus::BadRequest:
            ++bad_seen_;
            break;
          default:
            break;
        }
    }
}

} // namespace mgmee::serve
