/**
 * @file
 * Long-running multi-tenant request-serving mode (the mgmee-serve
 * tentpole).
 *
 * A Server hosts one SecureMemory engine (own keys, own granularity
 * state, own integrity tree) per tenant of its SessionConfig and
 * executes batches of access requests against them.  Batches arrive
 * through the in-process API below (submit()/submitSync(), used by
 * the bundled loadgen and by serve_throughput) or through the framed
 * unix-socket front end in serve/net.hh; both feed the same path.
 *
 * Execution model:
 *
 *  - every tenant has a *home shard* (tenant id modulo shard count)
 *    of one shared sim::Scheduler, and its engine is only ever
 *    touched by handlers on that shard;
 *  - submitters enqueue batches into per-tenant inboxes under one
 *    mutex, with admission control at the door: a batch that would
 *    push the tenant's outstanding-request count past its
 *    queue_depth is shed whole -- every request replies
 *    ReqStatus::Shed and the `serve.shed` stat is bumped -- so an
 *    overloaded tenant degrades by load shedding, never by unbounded
 *    queue growth;
 *  - a single pump thread drains the inboxes in tenant-id order,
 *    schedules each batch as a job on its tenant's home shard, and
 *    runs the scheduler.  Because per-tenant work is serialised on
 *    one shard in submission order, every reply digest is
 *    bit-identical for any MGMEE_THREADS value (pinned by
 *    tests/serve_test.cc and bench/serve_throughput.cc).
 *
 * Each tenant also keeps a deterministic *tick* clock (one tick per
 * 64 data bytes moved) so fault-injection campaigns under load can
 * measure detection latency in simulated time as well as wall time:
 * a Tamper request stamps the injection tick, and the first
 * subsequent verification failure records the delta into the
 * tenant's detection-latency histograms.  Per-tenant batch wall
 * latency feeds StreamingHistograms that the live telemetry plane
 * (MGMEE_TELEMETRY) samples for on-line p50/p99.
 */

#ifndef MGMEE_SERVE_SERVER_HH
#define MGMEE_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "mee/secure_memory.hh"
#include "obs/telemetry.hh"
#include "serve/session.hh"
#include "serve/wire.hh"
#include "sim/scheduler.hh"

namespace mgmee::obs {
class Manifest;
} // namespace mgmee::obs

namespace mgmee::serve {

/** Multi-tenant serving engine (see file comment). */
class Server
{
  public:
    /** Bring up every tenant engine and start the pump thread;
     *  fatal on an invalid @p cfg. */
    explicit Server(const SessionConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submit @p batch for execution.  Thread-safe.  The future
     * resolves when the batch has executed -- or immediately with a
     * shed/bad-request reply if admission control rejected it.
     * Per-tenant submission order is execution order.
     */
    std::future<wire::BatchReply> submit(wire::RequestBatch batch);

    /** submit() and wait. */
    wire::BatchReply submitSync(wire::RequestBatch batch);

    /**
     * Inject a data-corruption fault into @p tenant's engine, in
     * stream order (enqueued like a one-request batch, subject to
     * the same admission control).  Detection latency is recorded
     * when a later request's verification first fails.
     */
    wire::BatchReply injectTamper(std::uint32_t tenant, Addr addr,
                                  unsigned byte_index);

    /**
     * Tear a tenant down: drop its engine and erase its per-tenant
     * stat groups from the global registry.  Fails (false) while the
     * tenant still has outstanding requests.
     */
    bool removeTenant(std::uint32_t tenant);

    /** Drain every inbox and join the pump; idempotent.  Called by
     *  the destructor.  submit() after stop() replies Shed. */
    void stop();

    unsigned tenantCount() const;
    unsigned shards() const { return sched_->shards(); }

    /** Batches shed across all tenants so far. */
    std::uint64_t shedBatches() const;
    /** Requests completed (executed, not shed) across all tenants. */
    std::uint64_t completedRequests() const;

    /** Live statistics as a JSON object (the Stats frame payload). */
    std::string statsJson() const;

    /**
     * Dump per-tenant stats and latency/detection histograms into
     * @p m ("t<N>.batch_wall_ns", "t<N>.detect_ticks", ...), all
     * keys prefixed with @p prefix (for embedders reporting several
     * servers, or several phases, into one manifest).
     */
    void fillManifest(obs::Manifest &m,
                      const std::string &prefix = "") const;

  private:
    struct Tenant;

    /** One queued batch and everything needed to answer it. */
    struct Pending
    {
        wire::RequestBatch batch;
        std::promise<wire::BatchReply> promise;
        wire::BatchReply reply;
        std::chrono::steady_clock::time_point enqueued;
        Tenant *tenant = nullptr;
    };

    /** Cached per-tenant StatRegistry counter references. */
    struct Counters
    {
        std::atomic<std::uint64_t> *batches = nullptr;
        std::atomic<std::uint64_t> *requests = nullptr;
        std::atomic<std::uint64_t> *shed_batches = nullptr;
        std::atomic<std::uint64_t> *shed_requests = nullptr;
        std::atomic<std::uint64_t> *mac_mismatch = nullptr;
        std::atomic<std::uint64_t> *tree_mismatch = nullptr;
        std::atomic<std::uint64_t> *bad_request = nullptr;
        std::atomic<std::uint64_t> *tampers = nullptr;
        std::atomic<std::uint64_t> *detected = nullptr;
    };

    struct Tenant
    {
        TenantConfig cfg;
        unsigned shard = 0;
        std::unique_ptr<SecureMemory> engine;

        // ---- home-shard-only state (never touched concurrently) --
        bool tampered = false;      //!< fault injected, undetected
        Cycle tamper_tick = 0;
        std::chrono::steady_clock::time_point tamper_wall{};
        std::vector<std::uint8_t> scratch;  //!< request data buffer

        // ---- lock-free stats (shard records, anyone snapshots) ---
        /** 1 tick per 64 data bytes.  Written (relaxed) by the home
         *  shard only; read concurrently by statsJson(). */
        std::atomic<Cycle> ticks{0};
        obs::StreamingHistogram batch_wall_ns;
        obs::StreamingHistogram detect_ticks;
        obs::StreamingHistogram detect_wall_ns;
        /** Telemetry-plane mirror of batch_wall_ns (immortal,
         *  interned; only written while telemetry is enabled). */
        obs::StreamingHistogram *telemetry_hist = nullptr;
        /** All pointers null once the tenant is closed (the registry
         *  slots are erased at teardown); readers must hold
         *  Server::mu_ and fall back to final_* below. */
        Counters counters;

        // ---- guarded by Server::mu_ ------------------------------
        std::deque<std::unique_ptr<Pending>> inbox;
        std::uint64_t outstanding = 0;  //!< queued, not yet answered
        bool open = true;
        /** Totals captured by removeTenant() just before the
         *  registry counters are erased, so aggregate stats survive
         *  tenant teardown. */
        std::uint64_t final_requests = 0;
        std::uint64_t final_shed_batches = 0;
    };

    Tenant *tenantById(std::uint32_t id);
    const Tenant *tenantById(std::uint32_t id) const;
    bool anyInboxLocked() const;
    void pumpLoop();
    void executeBatch(Tenant &t, Pending &p);
    wire::Result executeRequest(Tenant &t, const wire::Request &r);

    // Locked variants of the public aggregates (caller holds mu_).
    unsigned tenantCountLocked() const;
    std::uint64_t shedBatchesLocked() const;
    std::uint64_t completedRequestsLocked() const;
    /** Live counter if the tenant is open, teardown snapshot
     *  otherwise (caller holds mu_). */
    static std::uint64_t tenantRequests(const Tenant &t);
    static std::uint64_t tenantShedBatches(const Tenant &t);

    SessionConfig cfg_;
    std::unique_ptr<sim::Scheduler> sched_;
    std::vector<std::unique_ptr<Tenant>> tenants_;
    std::map<std::uint32_t, std::size_t> by_id_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool running_ = true;
    std::thread pump_;
    std::mutex stop_mu_;  //!< serialises stop()'s join of pump_
};

/** Derive a tenant's engine keys from its key seed (splitmix64
 *  keystream; shared with the Rekey request op). */
SecureMemory::Keys deriveKeys(std::uint64_t key_seed);

} // namespace mgmee::serve

#endif // MGMEE_SERVE_SERVER_HH
