/**
 * @file
 * Deterministic request-load generator for the serving plane.
 *
 * One Loadgen drives one tenant: next() fills a RequestBatch with a
 * seeded, reproducible mix of line-aligned reads and writes over the
 * tenant's arena (plus one optional Tamper at a configured request
 * index, for fault-campaigns-under-load), and absorb() folds every
 * reply's digests into a running FNV-1a chain.  Because the server
 * executes a tenant's batches in submission order and the generator
 * is a pure function of its seed, the final digest is bit-identical
 * across MGMEE_THREADS values -- the property serve_throughput and
 * tests/serve_test.cc pin.
 *
 * Used by tools/mgmee_loadgen.cc (over the socket) and by
 * bench/serve_throughput.cc (in-process); both see the same stream.
 */

#ifndef MGMEE_SERVE_LOADGEN_HH
#define MGMEE_SERVE_LOADGEN_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "serve/wire.hh"

namespace mgmee::serve {

/** Shape of one tenant's generated load. */
struct LoadgenConfig
{
    std::uint32_t tenant = 0;
    std::uint64_t seed = 1;              //!< request-stream seed
    std::size_t mem_bytes = 32 * kChunkBytes;  //!< addressable arena
    unsigned batch = 256;                //!< requests per batch
    /** Request lengths cycle over 64B..4KB powers of two. */
    double write_fraction = 0.5;
    /**
     * Inject one Tamper as the Nth generated request (~size_t{0} =
     * never).  Addresses cycle a small working set after the
     * injection point so the fault is revisited -- and detected --
     * within a bounded, deterministic number of ticks.
     */
    std::size_t tamper_at = ~std::size_t{0};
};

/** Deterministic request stream + reply digest folder (one tenant). */
class Loadgen
{
  public:
    explicit Loadgen(const LoadgenConfig &cfg);

    /** Fill @p out with the next cfg.batch requests. */
    void next(wire::RequestBatch &out);

    /** Fold @p reply into the running digest chain (submission
     *  order), and count sheds/faults seen. */
    void absorb(const wire::BatchReply &reply);

    /** Digest over every absorbed result so far. */
    std::uint64_t digest() const { return digest_; }
    std::uint64_t generated() const { return generated_; }
    std::uint64_t shedBatches() const { return shed_batches_; }
    std::uint64_t faultsSeen() const { return faults_seen_; }
    std::uint64_t badSeen() const { return bad_seen_; }

  private:
    LoadgenConfig cfg_;
    Rng rng_;
    std::uint64_t next_id_ = 0;
    std::uint64_t generated_ = 0;
    std::uint64_t digest_ = wire::kFnvBasis;
    std::uint64_t shed_batches_ = 0;
    std::uint64_t faults_seen_ = 0;
    std::uint64_t bad_seen_ = 0;
    bool tampered_ = false;
};

} // namespace mgmee::serve

#endif // MGMEE_SERVE_LOADGEN_HH
