/**
 * @file
 * Index math for the 8-ary counter integrity tree.
 *
 * Level 0 holds one counter per protected 64B line; each level above
 * holds one counter per 8 children.  Counters are packed 8 per 64B
 * metadata cacheline, so the counter at (level, index) lives in node
 * index/8 of that level.  The root level has at most `arity` counters
 * and is pinned on-chip.
 */

#ifndef MGMEE_TREE_TREE_INDEX_HH
#define MGMEE_TREE_TREE_INDEX_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mgmee {

/** Static geometry of an integrity tree covering a data region. */
class TreeGeometry
{
  public:
    /**
     * @param data_bytes size of the protected region; rounded up to a
     *                   whole number of 32KB chunks.
     */
    explicit TreeGeometry(std::size_t data_bytes);

    /** Number of counter levels stored in memory (root excluded). */
    unsigned levels() const { return static_cast<unsigned>(
            counts_.size()); }

    /** Counters stored at @p level (level < levels()). */
    std::uint64_t countersAt(unsigned level) const
    {
        return counts_[level];
    }

    /**
     * Tree nodes at @p level: groups of 8 sibling counters sharing
     * one 64B metadata line (and one node MAC).
     */
    std::uint64_t nodesAt(unsigned level) const
    {
        return (counts_[level] + kTreeArity - 1) / kTreeArity;
    }

    /** Total 64B metadata lines across all in-memory levels. */
    std::uint64_t totalCounterLines() const { return total_lines_; }

    /**
     * Flat line offset (in 64B units from the counter-region base) of
     * the metadata line holding counter @p index of @p level.
     */
    std::uint64_t lineOffset(unsigned level, std::uint64_t index) const;

    /** Parent counter index (one level up). */
    static std::uint64_t parentIndex(std::uint64_t index)
    {
        return index / kTreeArity;
    }

    /** Ancestor @p k levels up (Eq. 3 of the paper). */
    static std::uint64_t
    ancestorIndex(std::uint64_t index, unsigned k)
    {
        for (unsigned i = 0; i < k; ++i)
            index /= kTreeArity;
        return index;
    }

    /** First child index (one level down). */
    static std::uint64_t childIndex(std::uint64_t index, unsigned child)
    {
        return index * kTreeArity + child;
    }

    std::uint64_t leafCount() const { return counts_.empty() ? 0 :
                                             counts_[0]; }
    std::size_t dataBytes() const { return data_bytes_; }

  private:
    std::size_t data_bytes_;
    std::vector<std::uint64_t> counts_;       //!< counters per level
    std::vector<std::uint64_t> line_base_;    //!< line offset of level
    std::uint64_t total_lines_ = 0;
};

} // namespace mgmee

#endif // MGMEE_TREE_TREE_INDEX_HH
