/**
 * @file
 * Split-counter encoding of one 64B counter line (SGX-MEE / VAULT
 * style, cf. Morphable Counters in the paper's related work).
 *
 * A monotonic 64-bit counter per block is cheap to reason about but
 * expensive to store.  Real engines pack one 56-bit *major* plus
 * `arity` small *minors* into a single metadata line; the logical
 * counter of block i is (major << minor_bits) | minor[i].  When a
 * minor saturates, the major advances, every minor resets, and every
 * block covered by the line must be re-encrypted (their logical
 * counters all jump).
 *
 * This module models that encoding bit-exactly and reports overflow
 * events; the timing engines consume the same semantics through
 * TimingConfig::minor_counter_bits.
 */

#ifndef MGMEE_TREE_SPLIT_COUNTER_HH
#define MGMEE_TREE_SPLIT_COUNTER_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace mgmee {

/** One 64B metadata line of split counters. */
class SplitCounterLine
{
  public:
    /**
     * @param minor_bits width of each minor counter (1..16)
     */
    explicit SplitCounterLine(unsigned minor_bits);

    /** Logical (monotonic) counter value of slot @p i. */
    std::uint64_t value(unsigned i) const;

    /**
     * Bump slot @p i.
     * @retval true  a minor overflowed: the major advanced, all
     *               minors reset, and the caller must re-encrypt
     *               every block the line covers.
     */
    bool bump(unsigned i);

    std::uint64_t major() const { return major_; }
    std::uint16_t minor(unsigned i) const;
    unsigned minorBits() const { return minor_bits_; }

    /** Storage the encoding uses per line, in bits. */
    unsigned
    storageBits() const
    {
        return kMajorBits +
               static_cast<unsigned>(kTreeArity) * minor_bits_;
    }

    /** Bumps of one slot before its minor saturates. */
    std::uint64_t
    bumpsPerOverflow() const
    {
        return std::uint64_t{1} << minor_bits_;
    }

    std::uint64_t overflows() const { return overflows_; }

    static constexpr unsigned kMajorBits = 56;

  private:
    unsigned minor_bits_;
    std::uint64_t major_ = 0;
    std::array<std::uint16_t, kTreeArity> minors_{};
    std::uint64_t overflows_ = 0;
};

} // namespace mgmee

#endif // MGMEE_TREE_SPLIT_COUNTER_HH
