#include "tree/split_counter.hh"

#include "common/logging.hh"

namespace mgmee {

SplitCounterLine::SplitCounterLine(unsigned minor_bits)
    : minor_bits_(minor_bits)
{
    fatal_if(minor_bits == 0 || minor_bits > 16,
             "split-counter minors must be 1..16 bits, got %u",
             minor_bits);
}

std::uint64_t
SplitCounterLine::value(unsigned i) const
{
    panic_if(i >= kTreeArity, "split-counter slot %u out of range", i);
    return (major_ << minor_bits_) | minors_[i];
}

std::uint16_t
SplitCounterLine::minor(unsigned i) const
{
    panic_if(i >= kTreeArity, "split-counter slot %u out of range", i);
    return minors_[i];
}

bool
SplitCounterLine::bump(unsigned i)
{
    panic_if(i >= kTreeArity, "split-counter slot %u out of range", i);
    const std::uint16_t saturated = static_cast<std::uint16_t>(
        (std::uint32_t{1} << minor_bits_) - 1);
    if (minors_[i] < saturated) {
        ++minors_[i];
        return false;
    }
    // Minor overflow: advance the major, reset every minor.  All
    // logical values jump to a never-used range, so every covered
    // block needs re-encryption under its new counter.
    ++major_;
    minors_.fill(0);
    ++overflows_;
    return true;
}

} // namespace mgmee
