/**
 * @file
 * Physical layout of security metadata in the (simulated) address
 * space.
 *
 * Data occupies [0, dataBytes).  MACs, counter-tree levels and the
 * granularity table live in disjoint high regions so that metadata
 * traffic is distinguishable from data traffic and indexes cleanly
 * into the metadata/MAC caches.
 */

#ifndef MGMEE_TREE_LAYOUT_HH
#define MGMEE_TREE_LAYOUT_HH

#include <cstdint>

#include "common/types.hh"
#include "tree/tree_index.hh"

namespace mgmee {

/** Address-space map for one protected memory domain. */
class MetadataLayout
{
  public:
    /** Region bases (line-aligned, far above any data address). */
    static constexpr Addr kMacBase = Addr{1} << 40;
    static constexpr Addr kCounterBase = Addr{1} << 41;
    static constexpr Addr kGranTableBase = Addr{1} << 42;

    explicit MetadataLayout(std::size_t data_bytes)
        : geom_(data_bytes) {}

    const TreeGeometry &geometry() const { return geom_; }

    /**
     * Address of the MAC-region cacheline holding the MAC with flat
     * index @p mac_index.  Per Eq. 1 the byte address is
     * base + index * 8; we return the containing 64B line.
     */
    Addr
    macLineAddr(std::uint64_t mac_index) const
    {
        return kMacBase +
               alignDown(mac_index * kMacBytes, kCachelineBytes);
    }

    /**
     * Fine-grained (64B-granularity) MAC index of @p data_addr:
     * one MAC per cacheline, chunk-major (Sec. 4.3: "an address of a
     * counter or a MAC is computed by 32KB chunks, considering that
     * every granularity ... in previous chunks is finest-grained").
     */
    std::uint64_t
    fineMacIndex(Addr data_addr) const
    {
        return lineIndex(data_addr);
    }

    /**
     * Address of the metadata line holding counter @p index of tree
     * level @p level (Eq. 4 generalised across levels).
     */
    Addr
    counterLineAddr(unsigned level, std::uint64_t index) const
    {
        return kCounterBase +
               geom_.lineOffset(level, index) * kCachelineBytes;
    }

    /**
     * Address of the metadata line holding tree node @p node of
     * @p level: the node's 8 sibling counters share one 64B line, so
     * this is the address a node MAC is bound to.
     */
    Addr
    counterNodeAddr(unsigned level, std::uint64_t node) const
    {
        return counterLineAddr(level, node * kTreeArity);
    }

    /**
     * Address of the granularity-table line for @p chunk.  Each entry
     * is 16B (8B current + 8B next bitmap), four entries per line.
     */
    Addr
    granTableLineAddr(std::uint64_t chunk) const
    {
        return kGranTableBase + alignDown(chunk * 16, kCachelineBytes);
    }

    /** Classify an address into data vs metadata regions. */
    static bool isMacAddr(Addr a)
    {
        return a >= kMacBase && a < kCounterBase;
    }
    static bool isCounterAddr(Addr a)
    {
        return a >= kCounterBase && a < kGranTableBase;
    }
    static bool isGranTableAddr(Addr a) { return a >= kGranTableBase; }
    static bool isDataAddr(Addr a) { return a < kMacBase; }

  private:
    TreeGeometry geom_;
};

} // namespace mgmee

#endif // MGMEE_TREE_LAYOUT_HH
