#include "tree/flat_store.hh"

#include "common/logging.hh"

namespace mgmee {

FlatTreeStore::FlatTreeStore(const TreeGeometry &geom)
    : levels_(geom.levels()), lvls_(geom.levels())
{
    for (unsigned lvl = 0; lvl < levels_; ++lvl) {
        lvls_[lvl].n_counters = geom.countersAt(lvl);
        lvls_[lvl].n_nodes = geom.nodesAt(lvl);
    }
}

void
FlatTreeStore::ensureLevel(unsigned level)
{
    Level &L = lvls_[level];
    if (L.allocated)
        return;
    L.ctr.assign(L.n_counters, 0);
    L.ctr_present.assign(L.n_counters, 0);
    L.node_mac.assign(L.n_nodes, 0);
    L.node_flags.assign(L.n_nodes, 0);
    L.node_verified.assign(L.n_nodes, 0);
    L.allocated = true;
}

std::uint64_t
FlatTreeStore::counter(unsigned level, std::uint64_t index) const
{
    const Level &L = lvls_[level];
    if (!L.allocated)
        return 0;
    panic_if(index >= L.n_counters,
             "flat store: counter %llu out of range at level %u",
             static_cast<unsigned long long>(index), level);
    return L.ctr[index];
}

bool
FlatTreeStore::hasCounter(unsigned level, std::uint64_t index) const
{
    const Level &L = lvls_[level];
    return L.allocated && index < L.n_counters &&
           L.ctr_present[index] != 0;
}

void
FlatTreeStore::setCounter(unsigned level, std::uint64_t index,
                          std::uint64_t value)
{
    ensureLevel(level);
    Level &L = lvls_[level];
    panic_if(index >= L.n_counters,
             "flat store: counter %llu out of range at level %u",
             static_cast<unsigned long long>(index), level);
    L.ctr[index] = value;
    L.ctr_present[index] = 1;
}

void
FlatTreeStore::eraseCounter(unsigned level, std::uint64_t index)
{
    Level &L = lvls_[level];
    if (!L.allocated || index >= L.n_counters)
        return;
    L.ctr[index] = 0;
    L.ctr_present[index] = 0;
}

bool
FlatTreeStore::hasNodeMac(unsigned level, std::uint64_t node) const
{
    const Level &L = lvls_[level];
    return L.allocated && node < L.n_nodes &&
           (L.node_flags[node] & kMacPresent);
}

std::uint64_t
FlatTreeStore::nodeMac(unsigned level, std::uint64_t node) const
{
    const Level &L = lvls_[level];
    if (!L.allocated || node >= L.n_nodes)
        return 0;
    return L.node_mac[node];
}

void
FlatTreeStore::setNodeMac(unsigned level, std::uint64_t node,
                          std::uint64_t mac)
{
    ensureLevel(level);
    Level &L = lvls_[level];
    panic_if(node >= L.n_nodes,
             "flat store: node %llu out of range at level %u",
             static_cast<unsigned long long>(node), level);
    L.node_mac[node] = mac;
    L.node_flags[node] =
        static_cast<std::uint8_t>((L.node_flags[node] | kMacPresent) &
                                  ~kMacDirty);
}

void
FlatTreeStore::eraseNodeMac(unsigned level, std::uint64_t node)
{
    Level &L = lvls_[level];
    if (!L.allocated || node >= L.n_nodes)
        return;
    L.node_mac[node] = 0;
    L.node_flags[node] = 0;
    L.node_verified[node] = 0;
}

bool
FlatTreeStore::macDirty(unsigned level, std::uint64_t node) const
{
    const Level &L = lvls_[level];
    return L.allocated && node < L.n_nodes &&
           (L.node_flags[node] & kMacDirty);
}

void
FlatTreeStore::markMacDirty(unsigned level, std::uint64_t node)
{
    ensureLevel(level);
    Level &L = lvls_[level];
    panic_if(node >= L.n_nodes,
             "flat store: node %llu out of range at level %u",
             static_cast<unsigned long long>(node), level);
    if (L.node_flags[node] & kMacDirty)
        return;  // already queued
    L.node_flags[node] |= kMacDirty;
    dirty_queue_.emplace_back(level, node);
}

std::vector<std::pair<unsigned, std::uint64_t>>
FlatTreeStore::takeDirty()
{
    return std::exchange(dirty_queue_, {});
}

bool
FlatTreeStore::verified(unsigned level, std::uint64_t node) const
{
    const Level &L = lvls_[level];
    return L.allocated && node < L.n_nodes &&
           L.node_verified[node] == epoch_;
}

void
FlatTreeStore::markVerified(unsigned level, std::uint64_t node)
{
    ensureLevel(level);
    lvls_[level].node_verified[node] = epoch_;
}

void
FlatTreeStore::clearVerified(unsigned level, std::uint64_t node)
{
    Level &L = lvls_[level];
    if (L.allocated && node < L.n_nodes)
        L.node_verified[node] = 0;
}

} // namespace mgmee
