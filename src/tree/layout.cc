#include "tree/layout.hh"

// MetadataLayout is header-only today; this translation unit anchors
// the class for future out-of-line growth and keeps the build list
// uniform (one .cc per module).

namespace mgmee {
} // namespace mgmee
