#include "tree/tree_index.hh"

#include "common/logging.hh"

namespace mgmee {

TreeGeometry::TreeGeometry(std::size_t data_bytes)
{
    // Round the protected region up to whole 32KB chunks so every
    // chunk owns a complete 3-level subtree.
    const std::size_t chunks =
        (data_bytes + kChunkBytes - 1) / kChunkBytes;
    data_bytes_ = chunks * kChunkBytes;
    fatal_if(chunks == 0, "integrity tree over empty region");

    std::uint64_t count = data_bytes_ / kCachelineBytes;
    while (count > kTreeArity) {
        counts_.push_back(count);
        count = (count + kTreeArity - 1) / kTreeArity;
    }
    // The final <=8 counters form the on-chip root node; they are not
    // stored in memory, so they do not appear in counts_.

    line_base_.resize(counts_.size());
    std::uint64_t base = 0;
    for (std::size_t lvl = 0; lvl < counts_.size(); ++lvl) {
        line_base_[lvl] = base;
        base += (counts_[lvl] + kTreeArity - 1) / kTreeArity;
    }
    total_lines_ = base;
}

std::uint64_t
TreeGeometry::lineOffset(unsigned level, std::uint64_t index) const
{
    panic_if(level >= counts_.size(),
             "tree level %u out of range (%zu levels)", level,
             counts_.size());
    panic_if(index >= counts_[level],
             "counter index %llu out of range at level %u",
             static_cast<unsigned long long>(index), level);
    return line_base_[level] + index / kTreeArity;
}

} // namespace mgmee
