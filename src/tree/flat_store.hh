/**
 * @file
 * Dense per-level storage for integrity-tree metadata.
 *
 * The functional engine used to keep counters and node MACs in
 * `std::unordered_map`s keyed by (level, index); every access hashed
 * its way up the tree.  FlatTreeStore replaces that with one dense
 * array per level, sized from the TreeGeometry, so the verify/update
 * walk is O(1) indexing into cache-friendly memory.  Levels are
 * allocated lazily on first write, which keeps construction cheap for
 * large protected regions whose upper levels may never be touched.
 *
 * Beyond plain storage the store carries the two hot-path
 * optimizations of the engine:
 *
 *  - a *dirty* bit per tree node, set when a counter write makes the
 *    stored node MAC stale.  MAC recomputation is deferred until a
 *    verify touches the node or the engine flushes, so N consecutive
 *    writes under one ancestor cost one MAC computation;
 *  - a *verified* tag per node (epoch-based), implementing the
 *    verified-ancestor cache: a path walk can stop at the highest
 *    node already verified in the current epoch.  Bumping the epoch
 *    invalidates every tag in O(1).
 *
 * Counter *presence* is tracked separately from the value: a pruned
 * subtree (granularity promotion) erases counters, and "absent" must
 * stay distinguishable from "present with value 0".
 */

#ifndef MGMEE_TREE_FLAT_STORE_HH
#define MGMEE_TREE_FLAT_STORE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "tree/tree_index.hh"

namespace mgmee {

/** Flat per-level backing store for counters, node MACs and the
 *  lazy-refresh / verified-ancestor bookkeeping. */
class FlatTreeStore
{
  public:
    explicit FlatTreeStore(const TreeGeometry &geom);

    unsigned levels() const { return levels_; }

    // ---- counters (level < levels()) ---------------------------------
    std::uint64_t counter(unsigned level, std::uint64_t index) const;
    bool hasCounter(unsigned level, std::uint64_t index) const;
    void setCounter(unsigned level, std::uint64_t index,
                    std::uint64_t value);
    void eraseCounter(unsigned level, std::uint64_t index);

    // ---- node MACs ----------------------------------------------------
    bool hasNodeMac(unsigned level, std::uint64_t node) const;
    /** Stored MAC of (level, node); 0 when absent. */
    std::uint64_t nodeMac(unsigned level, std::uint64_t node) const;
    /** Store a recomputed MAC: marks present, clears dirty. */
    void setNodeMac(unsigned level, std::uint64_t node,
                    std::uint64_t mac);
    /** Drop a node MAC entirely (pruned subtree). */
    void eraseNodeMac(unsigned level, std::uint64_t node);

    // ---- lazy node-MAC refresh ---------------------------------------
    bool macDirty(unsigned level, std::uint64_t node) const;
    /** Mark (level, node)'s stored MAC stale; queued for flush. */
    void markMacDirty(unsigned level, std::uint64_t node);
    /**
     * Snapshot-and-clear the pending-refresh queue.  Entries whose
     * dirty bit was already cleared (lazily refreshed or erased) may
     * appear; callers must re-check macDirty().
     */
    std::vector<std::pair<unsigned, std::uint64_t>> takeDirty();

    // ---- verified-ancestor cache -------------------------------------
    bool verified(unsigned level, std::uint64_t node) const;
    void markVerified(unsigned level, std::uint64_t node);
    void clearVerified(unsigned level, std::uint64_t node);
    /** Invalidate every verified tag (O(1) epoch bump). */
    void invalidateAllVerified() { ++epoch_; }

    /** Visit every stored node MAC as (level, node). */
    template <typename Fn>
    void
    forEachNodeMac(Fn &&fn) const
    {
        for (unsigned lvl = 0; lvl < levels_; ++lvl) {
            const Level &L = lvls_[lvl];
            for (std::uint64_t n = 0; n < L.node_flags.size(); ++n)
                if (L.node_flags[n] & kMacPresent)
                    fn(lvl, n);
        }
    }

  private:
    static constexpr std::uint8_t kMacPresent = 1u << 0;
    static constexpr std::uint8_t kMacDirty = 1u << 1;

    /** Dense storage of one tree level (allocated on first write). */
    struct Level
    {
        std::uint64_t n_counters = 0;        //!< geometry size
        std::uint64_t n_nodes = 0;           //!< ceil(n_counters/8)
        std::vector<std::uint64_t> ctr;      //!< counter values
        std::vector<std::uint8_t> ctr_present;
        std::vector<std::uint64_t> node_mac;
        std::vector<std::uint8_t> node_flags;
        std::vector<std::uint32_t> node_verified;  //!< epoch tags
        bool allocated = false;
    };

    void ensureLevel(unsigned level);

    unsigned levels_ = 0;
    std::vector<Level> lvls_;
    /** Current verification epoch (0 tags can never match). */
    std::uint32_t epoch_ = 1;
    /** Nodes awaiting a deferred MAC refresh. */
    std::vector<std::pair<unsigned, std::uint64_t>> dirty_queue_;
};

} // namespace mgmee

#endif // MGMEE_TREE_FLAT_STORE_HH
