/**
 * @file
 * Baseline with no memory protection: requests move only their own
 * data.  Normalisation anchor for every evaluation figure.
 */

#ifndef MGMEE_MEE_UNSECURE_ENGINE_HH
#define MGMEE_MEE_UNSECURE_ENGINE_HH

#include "mee/timing_engine.hh"

namespace mgmee {

/** Pass-through engine (the paper's "Unsecure" scheme). */
class UnsecureEngine : public TimingEngine
{
  public:
    UnsecureEngine() { stats_ = StatGroup("unsecure"); }

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

    const char *name() const override { return "Unsecure"; }
};

} // namespace mgmee

#endif // MGMEE_MEE_UNSECURE_ENGINE_HH
