#include "mee/unsecure_engine.hh"

namespace mgmee {

Cycle
UnsecureEngine::access(const MemRequest &req, MemCtrl &mem)
{
    stats_.add(req.is_write ? "writes" : "reads");
    return mem.serve(req.issue, req.addr, req.bytes, req.is_write);
}

} // namespace mgmee
