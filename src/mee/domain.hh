/**
 * @file
 * Protection domains: independent keys and integrity trees per
 * address window.
 *
 * The paper's TCB spans several per-device TEEs (Sec. 2.5); TNPU /
 * GuardNN / TensorTEE-style systems give each accelerator its own key
 * domain while sharing the physical memory.  This manager routes
 * accesses to per-domain SecureMemory instances, so
 *  - plaintext equal across domains never yields equal ciphertext,
 *  - ciphertext spliced from one domain into another never verifies,
 *  - one domain can be rekeyed or torn down without touching others.
 */

#ifndef MGMEE_MEE_DOMAIN_HH
#define MGMEE_MEE_DOMAIN_HH

#include <memory>
#include <string>
#include <vector>

#include "mee/secure_memory.hh"

namespace mgmee {

/** Routes protected accesses to per-key-domain engines. */
class SecureDomainManager
{
  public:
    /**
     * Register a domain covering [base, base+bytes) with its own key
     * material.  Windows must be chunk-aligned and disjoint.
     * @return domain id
     */
    std::size_t addDomain(std::string name, Addr base,
                          std::size_t bytes,
                          const SecureMemory::Keys &keys);

    /** Write through the owning domain; spans must not cross. */
    SecureMemory::Status write(Addr addr,
                               std::span<const std::uint8_t> data);

    /** Read through the owning domain; spans must not cross. */
    SecureMemory::Status read(Addr addr,
                              std::span<std::uint8_t> out);

    /** Domain owning @p addr, or nullptr. */
    SecureMemory *domainOf(Addr addr);

    /** Domain memory by id (for rekeying, attacks in tests). */
    SecureMemory &memory(std::size_t id) { return *domains_[id].mem; }
    const std::string &name(std::size_t id) const
    {
        return domains_[id].name;
    }

    std::size_t domainCount() const { return domains_.size(); }

    /**
     * Tear a domain down: its keys and metadata vanish; its window
     * can be re-registered with fresh keys (enclave destruction).
     */
    void destroyDomain(std::size_t id);

  private:
    struct Domain
    {
        std::string name;
        Addr base = 0;
        std::size_t bytes = 0;
        std::unique_ptr<SecureMemory> mem;
    };

    Domain *find(Addr addr, std::size_t bytes);

    std::vector<Domain> domains_;
};

} // namespace mgmee

#endif // MGMEE_MEE_DOMAIN_HH
