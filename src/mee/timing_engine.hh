/**
 * @file
 * Timing/traffic model interfaces for memory-protection engines.
 *
 * A TimingEngine sits between the devices and the memory controller:
 * each off-chip request is charged for its data movement plus whatever
 * security metadata (counters, tree nodes, MACs, granularity-table
 * lines) the scheme needs, filtered through the on-chip metadata and
 * MAC caches.  Engines return the cycle at which a read's data is
 * decrypted and verified; writes are posted.
 *
 * The latency constants follow the paper's setup (Sec. 5.1): 10-cycle
 * OTP generation, 1-cycle XOR, 8KB metadata cache, 4KB MAC cache.
 */

#ifndef MGMEE_MEE_TIMING_ENGINE_HH
#define MGMEE_MEE_TIMING_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_ctrl.hh"
#include "mem/request.hh"
#include "subtree/subtree_cache.hh"
#include "subtree/unused_filter.hh"
#include "tree/layout.hh"

namespace mgmee {

/** Timing parameters shared by all schemes. */
struct TimingConfig
{
    Cycle otp_latency = 10;      //!< OTP generation (paper)
    Cycle xor_latency = 1;       //!< pad XOR (paper)
    Cycle hash_latency = 20;     //!< MAC compute/compare
    Cycle hit_latency = 2;       //!< on-chip security cache hit

    std::size_t meta_cache_bytes = 8 * 1024;  //!< paper: 8KB
    unsigned meta_cache_ways = 8;
    std::size_t mac_cache_bytes = 4 * 1024;   //!< paper: 4KB
    unsigned mac_cache_ways = 8;

    /** BMF-style subtree-root cache (0 entries = off). */
    unsigned root_cache_entries = 0;
    unsigned root_cache_level = 3;
    /** PENGLAI-style unused-region pruning. */
    bool unused_pruning = false;

    /**
     * Fetch tree-branch nodes concurrently (SGX-MEE style) instead of
     * level-by-level.  Serial walks make tree height a first-order
     * latency cost, which is the regime the paper's traversal-path
     * argument assumes.
     */
    bool parallel_walk = false;

    /** Validated-coarse-unit buffer (models bulk transfers). */
    unsigned unit_buffer_entries = 256;
    Cycle unit_buffer_window = 16 * 1024;

    /**
     * Split-counter minor width in bits (VAULT / Morphable-Counters
     * style; SGX uses 56-bit majors with small per-line minors).
     * A counter whose minor saturates after 2^bits bumps forces
     * re-encryption of everything it covers.  0 models ideal
     * monotonic counters that never overflow (the paper's setting).
     */
    unsigned minor_counter_bits = 0;
};

/**
 * Open-addressed unit-address -> pool-slot index for the flat LRU
 * structures below: linear probing, power-of-two capacity, tombstone
 * deletion with a full rebuild once tombstones accumulate.  Together
 * with FlatLruPool this replaces the std::list + std::unordered_map
 * pairs whose per-node allocations and pointer chasing sat on the
 * per-access hot path (same flat-array discipline as cache/cache.hh).
 */
class FlatLruIndex
{
  public:
    static constexpr std::uint32_t kInvalid = 0xffffffffu;

    /** Sized so @p entries keys stay under ~25% load. */
    explicit FlatLruIndex(unsigned entries);

    /** Slot bound to @p key, or kInvalid. */
    std::uint32_t find(Addr key) const;

    /** Bind @p key to @p slot (key must not be present). */
    void insert(Addr key, std::uint32_t slot);

    /** Unbind @p key (no-op if absent). */
    void erase(Addr key);

  private:
    enum : std::uint8_t { kEmpty = 0, kUsed = 1, kTomb = 2 };

    struct Cell
    {
        Addr key = 0;
        std::uint32_t slot = 0;
        std::uint8_t state = kEmpty;
    };

    std::size_t probeStart(Addr key) const;
    void rebuild();

    std::vector<Cell> cells_;  //!< power-of-two size
    std::size_t mask_;
    std::size_t used_ = 0;
    std::size_t tombs_ = 0;
};

/**
 * Fixed-capacity entry pool with an intrusive MRU->LRU chain and a
 * FlatLruIndex for lookup.  All state lives in two flat arrays; every
 * operation is O(1) and allocation-free after construction.  Entry
 * types must expose an `Addr unit` member (the key).
 */
template <typename Entry>
class FlatLruPool
{
  public:
    static constexpr std::uint32_t kNil = FlatLruIndex::kInvalid;

    explicit FlatLruPool(unsigned entries)
        : entries_(std::max(1u, entries)), pool_(entries_),
          links_(entries_), index_(entries_)
    {
        // Free-slot stack: slot 0 allocated first.
        free_.reserve(entries_);
        for (unsigned i = entries_; i-- > 0;)
            free_.push_back(i);
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= entries_; }

    std::uint32_t find(Addr unit) const { return index_.find(unit); }
    std::uint32_t lru() const { return tail_; }

    Entry &at(std::uint32_t slot) { return pool_[slot]; }
    const Entry &at(std::uint32_t slot) const { return pool_[slot]; }

    /** Move @p slot to the MRU end of the chain. */
    void
    touch(std::uint32_t slot)
    {
        if (head_ == slot)
            return;
        unlink(slot);
        pushFront(slot);
    }

    /** Insert @p e (keyed by e.unit); caller ensures !full(). */
    std::uint32_t
    insert(const Entry &e)
    {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        pool_[slot] = e;
        pushFront(slot);
        index_.insert(e.unit, slot);
        ++size_;
        return slot;
    }

    /** Remove @p slot: unlink, unbind its key, recycle the slot. */
    void
    erase(std::uint32_t slot)
    {
        index_.erase(pool_[slot].unit);
        unlink(slot);
        free_.push_back(slot);
        --size_;
    }

  private:
    struct Links
    {
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    void
    unlink(std::uint32_t slot)
    {
        Links &l = links_[slot];
        if (l.prev != kNil)
            links_[l.prev].next = l.next;
        else
            head_ = l.next;
        if (l.next != kNil)
            links_[l.next].prev = l.prev;
        else
            tail_ = l.prev;
    }

    void
    pushFront(std::uint32_t slot)
    {
        Links &l = links_[slot];
        l.prev = kNil;
        l.next = head_;
        if (head_ != kNil)
            links_[head_].prev = slot;
        head_ = slot;
        if (tail_ == kNil)
            tail_ = slot;
    }

    unsigned entries_;
    std::vector<Entry> pool_;
    std::vector<Links> links_;
    std::vector<std::uint32_t> free_;
    std::uint32_t head_ = kNil;
    std::uint32_t tail_ = kNil;
    unsigned size_ = 0;
    FlatLruIndex index_;
};

/**
 * Tracks coarse protection units whose bulk fetch+verification is
 * still fresh; further line accesses inside the window ride the
 * transfer already in flight instead of re-fetching -- but their
 * data still arrives no earlier than that transfer completes.
 */
class UnitBuffer
{
  public:
    UnitBuffer(unsigned entries, Cycle window)
        : window_(window), pool_(entries) {}

    /** True if @p unit_base was validated within the window. */
    bool contains(Addr unit_base, Cycle now);

    /**
     * Completion cycle of the bulk transfer backing @p unit_base.
     * Only meaningful right after contains() returned true.
     */
    Cycle transferDone(Addr unit_base) const;

    /** Record a validation of @p unit_base done at @p done. */
    void insert(Addr unit_base, Cycle now, Cycle done);

    /** Drop @p unit_base (e.g. its granularity changed). */
    void invalidate(Addr unit_base);

  private:
    struct Entry
    {
        Addr unit = 0;
        Cycle stamp = 0;   //!< last-touch cycle (window expiry)
        Cycle done = 0;    //!< bulk-transfer completion
    };

    Cycle window_;
    FlatLruPool<Entry> pool_;
};

/**
 * Write-combining model for coarse protection units.  A unit whose
 * counter and MAC are shared must be re-encrypted and re-MACed as a
 * whole on any write; streaming writes that cover the full unit
 * within the gather window need no old data, but a unit evicted or
 * expired with partial coverage pays a read-modify-write fetch of the
 * missing lines.  This is the cost that makes aggressive static
 * granularity lose on scattered writes (Sec. 3.3 / Fig. 6).
 */
class WriteGather
{
  public:
    WriteGather(unsigned entries, Cycle window)
        : window_(window), pool_(entries) {}

    /** A unit that closed with incomplete coverage (owes an RMW). */
    struct Incomplete
    {
        Addr unit_base;
        std::uint64_t missing_lines;
    };

    /**
     * Record @p lines newly written to the unit at @p unit_base
     * (which has @p unit_lines lines total).  Expired or evicted
     * partially-covered units are appended to @p out for the caller
     * to charge.
     */
    void add(Addr unit_base, std::uint64_t unit_lines,
             std::uint64_t lines, Cycle now,
             std::vector<Incomplete> &out);

    /** Drop a unit without charging (granularity switched). */
    void discard(Addr unit_base);

  private:
    struct Entry
    {
        Addr unit = 0;
        Cycle start = 0;
        std::uint64_t total = 0;
        std::uint64_t written = 0;
    };

    void close(const Entry &e, std::vector<Incomplete> &out);

    Cycle window_;
    FlatLruPool<Entry> pool_;
};

/** Abstract protection engine as seen by the hetero system. */
class TimingEngine
{
  public:
    virtual ~TimingEngine() = default;

    /**
     * Process one off-chip request at its issue cycle, charging all
     * induced traffic on @p mem.
     * @return completion cycle of the verified data (reads) or the
     *         issue cycle (posted writes).
     */
    virtual Cycle access(const MemRequest &req, MemCtrl &mem) = 0;

    /** Hook for kernel/phase boundaries (CommonCounters scans). */
    virtual void kernelBoundary(Cycle now, MemCtrl &mem)
    {
        (void)now;
        (void)mem;
    }

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

    /** Total security-cache misses (metadata + MAC). */
    virtual std::uint64_t securityCacheMisses() const { return 0; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  protected:
    StatGroup stats_;
};

/**
 * Shared machinery for real protection schemes: the metadata/MAC
 * caches, integrity-tree walks with optional subtree optimizations,
 * and traffic charging helpers.
 */
class MeeTimingBase : public TimingEngine
{
  public:
    MeeTimingBase(std::string name, std::size_t data_bytes,
                  const TimingConfig &cfg);

    std::uint64_t
    securityCacheMisses() const override
    {
        return meta_cache_.misses() + mac_cache_.misses();
    }

    const char *name() const override { return name_.c_str(); }

    const Cache &metaCache() const { return meta_cache_; }
    const Cache &macCache() const { return mac_cache_; }
    const MetadataLayout &layout() const { return layout_; }

  protected:
    /**
     * Access one metadata line through the metadata cache; misses
     * fetch from DRAM, dirty victims write back.
     * @return completion cycle of the line (hit: now + hit latency).
     */
    Cycle touchMeta(Addr line, bool is_write, Cycle now, MemCtrl &mem);

    /** Same through the MAC cache. */
    Cycle touchMac(Addr line, bool is_write, Cycle now, MemCtrl &mem);

    /**
     * Read-side integrity walk from the counter at (level, index) up
     * to the first trusted stop: a metadata-cache hit, a pinned
     * subtree root, or the on-chip root.  Serialised fetches.
     * @return completion cycle of the verification chain.
     */
    Cycle readWalk(unsigned level, std::uint64_t index, Cycle now,
                   MemCtrl &mem);

    /**
     * Write-side walk: every level up to the root is fetched (on
     * miss) and dirtied (Fig. 14: writes extend to the root).
     */
    void writeWalk(unsigned level, std::uint64_t index, Cycle now,
                   MemCtrl &mem);

    /**
     * Record one bump of counter (level, index) that covers
     * [region_base, region_base + region_bytes).  With split
     * counters enabled, the 2^minor_counter_bits-th bump overflows
     * the minor and charges a read+write re-encryption sweep of the
     * covered region.
     */
    void noteCounterBump(unsigned level, std::uint64_t index,
                         Addr region_base, std::size_t region_bytes,
                         Cycle now, MemCtrl &mem);

    std::string name_;
    TimingConfig cfg_;
    MetadataLayout layout_;
    Cache meta_cache_;
    Cache mac_cache_;
    SubtreeRootCache root_cache_;
    UnusedFilter unused_;
    UnitBuffer unit_buffer_;
    /** Bump counts for split-counter overflow tracking. */
    std::unordered_map<std::uint64_t, std::uint32_t> ctr_bumps_;
};

} // namespace mgmee

#endif // MGMEE_MEE_TIMING_ENGINE_HH
