/**
 * @file
 * Timing/traffic model interfaces for memory-protection engines.
 *
 * A TimingEngine sits between the devices and the memory controller:
 * each off-chip request is charged for its data movement plus whatever
 * security metadata (counters, tree nodes, MACs, granularity-table
 * lines) the scheme needs, filtered through the on-chip metadata and
 * MAC caches.  Engines return the cycle at which a read's data is
 * decrypted and verified; writes are posted.
 *
 * The latency constants follow the paper's setup (Sec. 5.1): 10-cycle
 * OTP generation, 1-cycle XOR, 8KB metadata cache, 4KB MAC cache.
 */

#ifndef MGMEE_MEE_TIMING_ENGINE_HH
#define MGMEE_MEE_TIMING_ENGINE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/mem_ctrl.hh"
#include "mem/request.hh"
#include "subtree/subtree_cache.hh"
#include "subtree/unused_filter.hh"
#include "tree/layout.hh"

namespace mgmee {

/** Timing parameters shared by all schemes. */
struct TimingConfig
{
    Cycle otp_latency = 10;      //!< OTP generation (paper)
    Cycle xor_latency = 1;       //!< pad XOR (paper)
    Cycle hash_latency = 20;     //!< MAC compute/compare
    Cycle hit_latency = 2;       //!< on-chip security cache hit

    std::size_t meta_cache_bytes = 8 * 1024;  //!< paper: 8KB
    unsigned meta_cache_ways = 8;
    std::size_t mac_cache_bytes = 4 * 1024;   //!< paper: 4KB
    unsigned mac_cache_ways = 8;

    /** BMF-style subtree-root cache (0 entries = off). */
    unsigned root_cache_entries = 0;
    unsigned root_cache_level = 3;
    /** PENGLAI-style unused-region pruning. */
    bool unused_pruning = false;

    /**
     * Fetch tree-branch nodes concurrently (SGX-MEE style) instead of
     * level-by-level.  Serial walks make tree height a first-order
     * latency cost, which is the regime the paper's traversal-path
     * argument assumes.
     */
    bool parallel_walk = false;

    /** Validated-coarse-unit buffer (models bulk transfers). */
    unsigned unit_buffer_entries = 256;
    Cycle unit_buffer_window = 16 * 1024;

    /**
     * Split-counter minor width in bits (VAULT / Morphable-Counters
     * style; SGX uses 56-bit majors with small per-line minors).
     * A counter whose minor saturates after 2^bits bumps forces
     * re-encryption of everything it covers.  0 models ideal
     * monotonic counters that never overflow (the paper's setting).
     */
    unsigned minor_counter_bits = 0;
};

/**
 * Tracks coarse protection units whose bulk fetch+verification is
 * still fresh; further line accesses inside the window ride the
 * transfer already in flight instead of re-fetching -- but their
 * data still arrives no earlier than that transfer completes.
 */
class UnitBuffer
{
  public:
    UnitBuffer(unsigned entries, Cycle window)
        : entries_(entries), window_(window) {}

    /** True if @p unit_base was validated within the window. */
    bool contains(Addr unit_base, Cycle now);

    /**
     * Completion cycle of the bulk transfer backing @p unit_base.
     * Only meaningful right after contains() returned true.
     */
    Cycle transferDone(Addr unit_base) const;

    /** Record a validation of @p unit_base done at @p done. */
    void insert(Addr unit_base, Cycle now, Cycle done);

    /** Drop @p unit_base (e.g. its granularity changed). */
    void invalidate(Addr unit_base);

  private:
    struct Entry
    {
        Addr unit = 0;
        Cycle stamp = 0;   //!< last-touch cycle (window expiry)
        Cycle done = 0;    //!< bulk-transfer completion
    };

    unsigned entries_;
    Cycle window_;
    std::list<Entry> lru_;  //!< front = MRU
    std::unordered_map<Addr, std::list<Entry>::iterator> map_;
};

/**
 * Write-combining model for coarse protection units.  A unit whose
 * counter and MAC are shared must be re-encrypted and re-MACed as a
 * whole on any write; streaming writes that cover the full unit
 * within the gather window need no old data, but a unit evicted or
 * expired with partial coverage pays a read-modify-write fetch of the
 * missing lines.  This is the cost that makes aggressive static
 * granularity lose on scattered writes (Sec. 3.3 / Fig. 6).
 */
class WriteGather
{
  public:
    WriteGather(unsigned entries, Cycle window)
        : entries_(entries), window_(window) {}

    /** A unit that closed with incomplete coverage (owes an RMW). */
    struct Incomplete
    {
        Addr unit_base;
        std::uint64_t missing_lines;
    };

    /**
     * Record @p lines newly written to the unit at @p unit_base
     * (which has @p unit_lines lines total).  Expired or evicted
     * partially-covered units are appended to @p out for the caller
     * to charge.
     */
    void add(Addr unit_base, std::uint64_t unit_lines,
             std::uint64_t lines, Cycle now,
             std::vector<Incomplete> &out);

    /** Drop a unit without charging (granularity switched). */
    void discard(Addr unit_base);

  private:
    struct Entry
    {
        Addr unit = 0;
        Cycle start = 0;
        std::uint64_t total = 0;
        std::uint64_t written = 0;
    };

    void close(const Entry &e, std::vector<Incomplete> &out);

    unsigned entries_;
    Cycle window_;
    std::list<Entry> lru_;  //!< front = MRU
    std::unordered_map<Addr, std::list<Entry>::iterator> map_;
};

/** Abstract protection engine as seen by the hetero system. */
class TimingEngine
{
  public:
    virtual ~TimingEngine() = default;

    /**
     * Process one off-chip request at its issue cycle, charging all
     * induced traffic on @p mem.
     * @return completion cycle of the verified data (reads) or the
     *         issue cycle (posted writes).
     */
    virtual Cycle access(const MemRequest &req, MemCtrl &mem) = 0;

    /** Hook for kernel/phase boundaries (CommonCounters scans). */
    virtual void kernelBoundary(Cycle now, MemCtrl &mem)
    {
        (void)now;
        (void)mem;
    }

    /** Scheme name for reports. */
    virtual const char *name() const = 0;

    /** Total security-cache misses (metadata + MAC). */
    virtual std::uint64_t securityCacheMisses() const { return 0; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  protected:
    StatGroup stats_;
};

/**
 * Shared machinery for real protection schemes: the metadata/MAC
 * caches, integrity-tree walks with optional subtree optimizations,
 * and traffic charging helpers.
 */
class MeeTimingBase : public TimingEngine
{
  public:
    MeeTimingBase(std::string name, std::size_t data_bytes,
                  const TimingConfig &cfg);

    std::uint64_t
    securityCacheMisses() const override
    {
        return meta_cache_.misses() + mac_cache_.misses();
    }

    const char *name() const override { return name_.c_str(); }

    const Cache &metaCache() const { return meta_cache_; }
    const Cache &macCache() const { return mac_cache_; }
    const MetadataLayout &layout() const { return layout_; }

  protected:
    /**
     * Access one metadata line through the metadata cache; misses
     * fetch from DRAM, dirty victims write back.
     * @return completion cycle of the line (hit: now + hit latency).
     */
    Cycle touchMeta(Addr line, bool is_write, Cycle now, MemCtrl &mem);

    /** Same through the MAC cache. */
    Cycle touchMac(Addr line, bool is_write, Cycle now, MemCtrl &mem);

    /**
     * Read-side integrity walk from the counter at (level, index) up
     * to the first trusted stop: a metadata-cache hit, a pinned
     * subtree root, or the on-chip root.  Serialised fetches.
     * @return completion cycle of the verification chain.
     */
    Cycle readWalk(unsigned level, std::uint64_t index, Cycle now,
                   MemCtrl &mem);

    /**
     * Write-side walk: every level up to the root is fetched (on
     * miss) and dirtied (Fig. 14: writes extend to the root).
     */
    void writeWalk(unsigned level, std::uint64_t index, Cycle now,
                   MemCtrl &mem);

    /**
     * Record one bump of counter (level, index) that covers
     * [region_base, region_base + region_bytes).  With split
     * counters enabled, the 2^minor_counter_bits-th bump overflows
     * the minor and charges a read+write re-encryption sweep of the
     * covered region.
     */
    void noteCounterBump(unsigned level, std::uint64_t index,
                         Addr region_base, std::size_t region_bytes,
                         Cycle now, MemCtrl &mem);

    std::string name_;
    TimingConfig cfg_;
    MetadataLayout layout_;
    Cache meta_cache_;
    Cache mac_cache_;
    SubtreeRootCache root_cache_;
    UnusedFilter unused_;
    UnitBuffer unit_buffer_;
    /** Bump counts for split-counter overflow tracking. */
    std::unordered_map<std::uint64_t, std::uint32_t> ctr_bumps_;
};

} // namespace mgmee

#endif // MGMEE_MEE_TIMING_ENGINE_HH
