#include "mee/nvm_memory.hh"

#include <array>
#include <utility>

namespace mgmee {

namespace {

/** Set a flag for the current scope (persist re-entrancy guard). */
struct ScopedFlag
{
    explicit ScopedFlag(bool &flag) : flag_(flag) { flag_ = true; }
    ~ScopedFlag() { flag_ = false; }
    bool &flag_;
};

} // namespace

NvmSecureMemory::NvmSecureMemory(std::size_t data_bytes,
                                 const Keys &keys, PersistMode mode)
    : SecureMemory(data_bytes, keys), mode_(mode),
      image_(layout_.geometry())
{
}

unsigned
NvmSecureMemory::persistPoints() const
{
    // WriteAhead: P0 log append, P1 commit, P2 in-place apply,
    // P3 anchor bump, P4 log truncate.
    // Unordered:  U0 data, U1 MAC slabs, U2 tree+layout, U3 anchor.
    return mode_ == PersistMode::WriteAhead ? 5 : 4;
}

bool
NvmSecureMemory::crashAt(unsigned p)
{
    if (crash_at_ < 0 || static_cast<unsigned>(crash_at_) != p)
        return false;
    crash_at_ = -1;
    crashed_ = true;
    return true;
}

Mac
NvmSecureMemory::logMacOf(const LogEntry &e) const
{
    // Stand-in for a MAC over the full record: enough structure that
    // recovery can model rejecting a forged/stale record.  The epoch
    // comparison against the anchor is what actually rejects replays.
    const std::array<Mac, 4> words{
        e.epoch, static_cast<Mac>(e.snap.cipher.size()),
        static_cast<Mac>(e.snap.initialized.size()),
        static_cast<Mac>(e.snap.stream_parts.size())};
    return mac_.nestedMac(words);
}

NvmSecureMemory::Image
NvmSecureMemory::captureImage() const
{
    Image img(layout_.geometry());
    img.cipher = cipher_;
    img.tree = tree_;
    img.mac_slabs = mac_slabs_;
    img.stream_parts = stream_parts_;
    img.initialized = initialized_;
    return img;
}

void
NvmSecureMemory::restoreLiveFrom(const Image &img)
{
    cipher_ = img.cipher;
    tree_ = img.tree;
    mac_slabs_ = img.mac_slabs;
    stream_parts_ = img.stream_parts;
    initialized_ = img.initialized;
    // Copied verified tags predate the power cycle: drop them all so
    // every post-recovery read re-verifies its full path.
    invalidateVerifiedCache();
}

void
NvmSecureMemory::flushMetadata()
{
    SecureMemory::flushMetadata();
    if (persisting_ || crashed_)
        return;
    ScopedFlag in_persist(persisting_);
    persist();
}

void
NvmSecureMemory::persist()
{
    const std::uint64_t next_epoch = anchor_.epoch + 1;

    if (mode_ == PersistMode::WriteAhead) {
        // P0: append the redo record, not yet committed.
        if (crashAt(0))
            return;
        LogEntry rec{captureImage(), trusted_ctrs_, next_epoch, 0,
                     false};
        rec.snap.epoch = next_epoch;
        rec.mac = logMacOf(rec);
        log_ = std::move(rec);
        // P1: the commit record -- the atomic commit point.
        if (crashAt(1))
            return;
        log_->committed = true;
        // P2: apply in place.  The outgoing committed image is what
        // an attacker could have copied for a later stale replay --
        // except the epoch-0 boot image, which was never committed
        // (and whose blank chunks read as zeros without verification,
        // so it is not a meaningful replay target).
        if (crashAt(2))
            return;
        if (image_.epoch > 0)
            stale_copy_ = image_;
        image_ = log_->snap;
        // P3: bump the tamper-proof anchor to the new epoch.
        if (crashAt(3))
            return;
        anchor_.epoch = next_epoch;
        anchor_.trusted = log_->trusted;
        // P4: truncate the log.
        if (crashAt(4))
            return;
        log_.reset();
        return;
    }

    // Unordered: the same writes, in place, with no log -- each gap
    // between steps is a torn-state window a power cut can expose.
    if (image_.epoch > 0)
        stale_copy_ = image_;
    Image snap = captureImage();
    snap.epoch = next_epoch;
    if (crashAt(0))
        return;
    image_.cipher = snap.cipher;
    if (crashAt(1))
        return;
    image_.mac_slabs = snap.mac_slabs;
    if (crashAt(2))
        return;
    image_.tree = snap.tree;
    image_.stream_parts = snap.stream_parts;
    image_.initialized = snap.initialized;
    if (crashAt(3))
        return;
    image_.epoch = next_epoch;
    anchor_.epoch = next_epoch;
    anchor_.trusted = trusted_ctrs_;
}

NvmSecureMemory::RecoveryReport
NvmSecureMemory::crashAndRecover()
{
    recovery_ = RecoveryReport{};
    crashed_ = false;
    crash_at_ = -1;

    // Power loss: every volatile structure is gone.  What survives
    // is the in-place NVM image, the (possibly pending) log, and the
    // tamper-proof anchor.
    restoreLiveFrom(image_);
    trusted_ctrs_ = anchor_.trusted;

    if (log_) {
        // A committed, authentic record *newer* than the anchor is a
        // persist the cut interrupted after its commit point: redo
        // it.  Anything else (uncommitted, forged, or stale epoch)
        // is discarded.
        const bool redo = log_->committed &&
                          log_->mac == logMacOf(*log_) &&
                          log_->epoch > anchor_.epoch;
        if (redo) {
            image_ = log_->snap;
            image_.epoch = log_->epoch;
            restoreLiveFrom(image_);
            trusted_ctrs_ = log_->trusted;
            anchor_.epoch = log_->epoch;
            anchor_.trusted = log_->trusted;
            recovery_.log_replayed = true;
        } else {
            recovery_.log_discarded = true;
        }
        log_.reset();
    }

    recovery_.anchor_epoch = anchor_.epoch;
    recovery_.image_epoch = image_.epoch;
    // An image epoch behind the anchor means the surviving state is
    // torn or rolled back; reads will fail verification against the
    // anchored trusted counters (fail closed), never pass silently.
    recovery_.image_stale = image_.epoch != anchor_.epoch;
    return recovery_;
}

void
NvmSecureMemory::tornCrash()
{
    // Settle lazy node MACs only (no ordered persist): the data
    // writes of the interrupted persist land in place...
    SecureMemory::flushMetadata();
    Image snap = captureImage();
    image_.cipher = snap.cipher;
    // ...but the commit record is destroyed by the cut, so the
    // metadata half of the epoch never reaches NVM.
    log_.reset();
    crashAndRecover();
}

bool
NvmSecureMemory::staleReplayCrash()
{
    if (!stale_copy_ || stale_copy_->epoch == anchor_.epoch)
        return false;  // no older committed epoch to replay yet
    image_ = *stale_copy_;
    log_.reset();
    crashAndRecover();
    return true;
}

} // namespace mgmee
