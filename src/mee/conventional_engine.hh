/**
 * @file
 * Conventional fixed-granularity memory protection: one counter and
 * one 8B MAC per 64B line, full 8-ary counter tree (the paper's
 * "Conventional" scheme and the substrate of Fig. 5's breakdown).
 *
 * Cost knobs allow disabling the MAC or the counter side so the
 * harness can reproduce the +Cost(MAC) / +Cost(counter) breakdown.
 */

#ifndef MGMEE_MEE_CONVENTIONAL_ENGINE_HH
#define MGMEE_MEE_CONVENTIONAL_ENGINE_HH

#include "mee/timing_engine.hh"

namespace mgmee {

/** Fixed 64B-granular MAC & counter tree engine. */
class ConventionalEngine : public MeeTimingBase
{
  public:
    /** Which metadata families are charged (for Fig. 5 breakdown). */
    struct CostMask
    {
        bool macs = true;
        bool counters = true;
    };

    ConventionalEngine(std::size_t data_bytes, const TimingConfig &cfg,
                       CostMask mask = CostMask{true, true})
        : MeeTimingBase(maskName(mask), data_bytes, cfg), mask_(mask)
    {
    }

    Cycle access(const MemRequest &req, MemCtrl &mem) override;

  private:
    static const char *
    maskName(CostMask mask)
    {
        if (mask.macs && mask.counters)
            return "Conventional";
        if (mask.macs)
            return "Conventional(MAC-only)";
        return "Conventional(CTR-only)";
    }

    CostMask mask_;
};

} // namespace mgmee

#endif // MGMEE_MEE_CONVENTIONAL_ENGINE_HH
