#include "mee/conventional_engine.hh"

#include <algorithm>

namespace mgmee {

Cycle
ConventionalEngine::access(const MemRequest &req, MemCtrl &mem)
{
    stats_.add(req.is_write ? "writes" : "reads");

    // Data movement.
    const Cycle data_done =
        mem.serve(req.issue, req.addr, req.bytes, req.is_write);

    const bool skip_tree =
        !req.is_write && unused_.canSkipWalk(req.addr);
    unused_.markTouched(req.addr);

    // Walk the request one 512B metadata-line span at a time: one
    // leaf-counter line and one MAC line each cover 8 data lines.
    Cycle ctr_done = req.issue;
    Cycle mac_done = req.issue;
    const Addr first = alignDown(req.addr, kCachelineBytes);
    const Addr last = alignDown(req.addr + (req.bytes ? req.bytes - 1
                                                      : 0),
                                kCachelineBytes);
    for (Addr span = alignDown(first, kPartitionBytes); span <= last;
         span += kPartitionBytes) {
        if (mask_.counters && !skip_tree) {
            const std::uint64_t leaf = lineIndex(span);
            if (req.is_write) {
                writeWalk(0, leaf, req.issue, mem);
                // One leaf-counter line's minors cover this 512B span.
                noteCounterBump(0, leaf / kTreeArity, span,
                                kPartitionBytes, req.issue, mem);
            } else {
                ctr_done = std::max(
                    ctr_done, readWalk(0, leaf, req.issue, mem));
            }
        }
        if (mask_.macs) {
            const Addr mac_line =
                layout_.macLineAddr(layout_.fineMacIndex(span));
            mac_done = std::max(
                mac_done,
                touchMac(mac_line, req.is_write, req.issue, mem));
        }
    }

    if (req.is_write)
        return req.issue;  // posted

    // Decryption waits for data and the counter-derived OTP; the
    // integrity check additionally waits for the MAC.
    Cycle done = data_done;
    if (mask_.counters) {
        done = std::max(done, ctr_done + cfg_.otp_latency) +
               cfg_.xor_latency;
    }
    if (mask_.macs)
        done = std::max(done, mac_done) + cfg_.hash_latency;
    return done;
}

} // namespace mgmee
