/**
 * @file
 * Crash-consistent persistent-memory (NVM) variant of the functional
 * engine: write-ahead persist ordering for the integrity metadata,
 * plus power-loss recovery that rebuilds and re-verifies tree state.
 *
 * A DRAM-resident engine may lose its off-chip image at power loss
 * and simply re-initialise.  With the protected region on NVM the
 * image *survives*, which creates two new obligations (Freij et al.,
 * "Streamlining Integrity Tree Updates for Secure Persistent NVM"):
 *
 *  1. **Crash consistency.**  A persist that lands data, MACs and
 *     counters in separate writes can be torn by a power cut,
 *     leaving an image where data and metadata disagree.  The
 *     recovered engine must never *silently* accept such a state.
 *  2. **Persist-time replay.**  An attacker with NVM access across a
 *     power cycle can re-present an older but internally consistent
 *     persisted image.  Freshness must therefore be anchored in
 *     storage the attacker cannot rewrite.
 *
 * NvmSecureMemory models both.  `flushMetadata()` (the engine's
 * persist boundary) is extended into an ordered write-ahead
 * sequence:
 *
 *     P0  append a redo-log record (full settled off-chip image +
 *         the trusted-counter snapshot), *uncommitted*;
 *     P1  write the log commit record         <- atomic commit point
 *     P2  apply the record to the in-place image;
 *     P3  bump the persistent anchor (epoch + trusted counters) --
 *         a tamper-proof monotonic register, the NVM analogue of
 *         keeping the tree root on-chip;
 *     P4  truncate the log.
 *
 * A crash between any two points recovers to a *consistent* image:
 * before P1 the uncommitted record is discarded (old epoch), from P1
 * on the committed record is replayed (new epoch).  The `Unordered`
 * mode applies the same updates in place without the log, so the
 * recovery test can demonstrate the torn states WAL exists to
 * prevent -- those recover fail-closed (reads alarm), never silently
 * torn.
 *
 * Replay across the power cycle is caught by the anchor: a stale
 * image or stale log carries an older epoch than the anchor, and the
 * anchor's trusted counters no longer match the stale tree, so
 * recovery (and every subsequent read of rolled-back state) fails
 * verification.  The fault campaign drives both cases as the
 * `power_cut` and `stale_persist` attack classes.
 */

#ifndef MGMEE_MEE_NVM_MEMORY_HH
#define MGMEE_MEE_NVM_MEMORY_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "mee/secure_memory.hh"

namespace mgmee {

/** SecureMemory whose protected region persists across power loss. */
class NvmSecureMemory : public SecureMemory
{
  public:
    /** How a persist boundary orders its NVM writes. */
    enum class PersistMode : std::uint8_t
    {
        WriteAhead = 0, //!< redo log + commit record (crash safe)
        Unordered = 1,  //!< in-place, no log (torn states possible)
    };

    /** What recovery found after a power cycle. */
    struct RecoveryReport
    {
        bool log_replayed = false;  //!< committed record re-applied
        bool log_discarded = false; //!< uncommitted/stale record dropped
        bool image_stale = false;   //!< image epoch behind the anchor
        std::uint64_t anchor_epoch = 0;
        std::uint64_t image_epoch = 0;
    };

    NvmSecureMemory(std::size_t data_bytes, const Keys &keys,
                    PersistMode mode = PersistMode::WriteAhead);

    /** Base metadata flush extended into the ordered persist. */
    void flushMetadata() override;

    PersistMode mode() const { return mode_; }

    /** Epoch the persistent anchor currently names. */
    std::uint64_t persistEpoch() const { return anchor_.epoch; }

    /** Number of distinct crash points in one persist boundary. */
    unsigned persistPoints() const;

    /**
     * Arm a crash *before* persist step @p point (0-based) of the
     * next boundary; persistPoints() or beyond never fires.  Pass -1
     * to disarm.  Test hook: pair with crashAndRecover().
     */
    void armCrash(int point) { crash_at_ = point; }

    /** True once an armed crash fired (cleared by crashAndRecover). */
    bool crashed() const { return crashed_; }

    /**
     * Power loss + recovery: drop all volatile state, reload the
     * persisted image, replay a committed log record if one is
     * pending, and re-anchor the trusted counters from the
     * persistent anchor.  Every verified-ancestor tag is invalidated;
     * reads after recovery re-verify the full tree.
     */
    RecoveryReport crashAndRecover();

    const RecoveryReport &lastRecovery() const { return recovery_; }

    // ---- persistence attack surface ---------------------------------
    /**
     * Torn-persist attack: a power cut lands the in-flight data
     * writes in place but destroys the write-ahead commit record, so
     * the surviving image mixes new ciphertext with old metadata.
     * Includes the power cycle + recovery.
     */
    void tornCrash();

    /**
     * Stale-persist attack: replace the in-place image (and log)
     * with the previous *committed* epoch -- an internally
     * consistent state the attacker saved earlier -- then power
     * cycle.  False when no earlier committed epoch exists yet.
     * The anchor keeps the newer epoch, so recovery must reject it.
     */
    bool staleReplayCrash();

  private:
    /** One persisted copy of the complete off-chip state. */
    struct Image
    {
        explicit Image(const TreeGeometry &geom) : tree(geom) {}

        std::unordered_map<std::uint64_t,
                           std::array<std::uint8_t, kCachelineBytes>>
            cipher;
        FlatTreeStore tree;
        std::unordered_map<std::uint64_t,
                           std::vector<std::optional<Mac>>>
            mac_slabs;
        std::unordered_map<std::uint64_t, StreamPart> stream_parts;
        std::unordered_set<std::uint64_t> initialized;
        std::uint64_t epoch = 0;
    };

    /** Write-ahead redo record: the settled image plus the trusted
     *  counters it anchors, MAC'd so a forged record cannot pass. */
    struct LogEntry
    {
        Image snap;
        std::unordered_map<std::uint64_t, std::uint64_t> trusted;
        std::uint64_t epoch = 0;
        Mac mac = 0;
        bool committed = false;
    };

    /** Tamper-proof persistent register: monotonic epoch + the
     *  trusted counters of that epoch (the persisted tree root). */
    struct Anchor
    {
        std::uint64_t epoch = 0;
        std::unordered_map<std::uint64_t, std::uint64_t> trusted;
    };

    Image captureImage() const;
    void restoreLiveFrom(const Image &img);
    /** Ordered persist of the settled live state (P0..P4). */
    void persist();
    /** True (and records the crash) when a crash is armed at @p p. */
    bool crashAt(unsigned p);
    Mac logMacOf(const LogEntry &e) const;

    PersistMode mode_;
    Image image_;                      //!< in-place persisted image
    std::optional<LogEntry> log_;      //!< pending write-ahead record
    Anchor anchor_;
    /** The previous committed epoch, as an attacker could have saved
     *  it (fuel for staleReplayCrash). */
    std::optional<Image> stale_copy_;
    RecoveryReport recovery_;
    int crash_at_ = -1;
    bool crashed_ = false;
    bool persisting_ = false;
};

} // namespace mgmee

#endif // MGMEE_MEE_NVM_MEMORY_HH
