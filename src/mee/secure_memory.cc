#include "mee/secure_memory.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace mgmee {

SecureMemory::SecureMemory(std::size_t data_bytes, const Keys &keys)
    : layout_(data_bytes), addr_(layout_), otp_(keys.aes),
      mac_(keys.mac), tree_(layout_.geometry())
{
}

const char *
SecureMemory::statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "Ok";
      case Status::MacMismatch: return "MacMismatch";
      case Status::TreeMismatch: return "TreeMismatch";
    }
    return "?";
}

// ---- tree plumbing -----------------------------------------------------

std::uint64_t
SecureMemory::counterAt(unsigned level, std::uint64_t index) const
{
    if (level >= layout_.geometry().levels()) {
        // On-chip trusted storage: levels at/above the root node.
        auto it = trusted_ctrs_.find(key(level, index));
        return it == trusted_ctrs_.end() ? 0 : it->second;
    }
    return tree_.counter(level, index);
}

bool
SecureMemory::hasCounter(unsigned level, std::uint64_t index) const
{
    if (level >= layout_.geometry().levels())
        return trusted_ctrs_.contains(key(level, index));
    return tree_.hasCounter(level, index);
}

void
SecureMemory::setCounterRaw(unsigned level, std::uint64_t index,
                            std::uint64_t value)
{
    if (level >= layout_.geometry().levels()) {
        trusted_ctrs_[key(level, index)] = value;
        return;
    }
    tree_.setCounter(level, index, value);
}

void
SecureMemory::eraseCounter(unsigned level, std::uint64_t index)
{
    if (level >= layout_.geometry().levels())
        return;  // trusted storage is never pruned
    tree_.eraseCounter(level, index);
}

void
SecureMemory::refreshNodeMac(unsigned level, std::uint64_t node) const
{
    std::array<std::uint64_t, kTreeArity> ctrs{};
    for (unsigned c = 0; c < kTreeArity; ++c)
        ctrs[c] = counterAt(level, node * kTreeArity + c);
    const Addr node_addr = layout_.counterNodeAddr(level, node);
    const std::uint64_t parent = counterAt(level + 1, node);
    tree_.setNodeMac(level, node, mac_.nodeMac(node_addr, parent,
                                               ctrs));
}

void
SecureMemory::refreshNodeMacsBatched(
    std::span<const std::pair<unsigned, std::uint64_t>> nodes) const
{
    if (nodes.empty())
        return;
    // The batch holds pointers into this scratch until each flush, so
    // it is sized up front -- no reallocation while staged.
    struct Scratch
    {
        std::array<std::uint64_t, kTreeArity> ctrs;
        Mac mac;
    };
    std::vector<Scratch> scratch(nodes.size());
    crypto::MacBatch batch = mac_.batch();
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const auto [lvl, node] = nodes[n];
        Scratch &s = scratch[n];
        for (unsigned c = 0; c < kTreeArity; ++c)
            s.ctrs[c] = counterAt(lvl, node * kTreeArity + c);
        batch.node(layout_.counterNodeAddr(lvl, node),
                   counterAt(lvl + 1, node), s.ctrs.data(), &s.mac);
    }
    batch.flush();
    for (std::size_t n = 0; n < nodes.size(); ++n)
        tree_.setNodeMac(nodes[n].first, nodes[n].second,
                         scratch[n].mac);
}

void
SecureMemory::eraseNodeMac(unsigned level, std::uint64_t node)
{
    tree_.eraseNodeMac(level, node);
}

void
SecureMemory::setCounterAndPropagate(unsigned level, std::uint64_t index,
                                     std::uint64_t value)
{
    setCounterRaw(level, index, value);
    const unsigned levels = layout_.geometry().levels();
    if (level >= levels)
        return;  // trusted storage needs no MAC maintenance

    unsigned lvl = level;
    std::uint64_t i = index;
    while (lvl < levels) {
        const std::uint64_t node = i / kTreeArity;
        // The child node changed, so its version counter in the
        // parent moves.  The node MAC is only marked stale here; it
        // is recomputed lazily by the next verify that touches the
        // node, or by flushMetadata().
        setCounterRaw(lvl + 1, node, counterAt(lvl + 1, node) + 1);
        tree_.markMacDirty(lvl, node);
        ++lvl;
        i = node;
    }
}

SecureMemory::Status
SecureMemory::verifyPath(unsigned level, std::uint64_t index) const
{
    const unsigned levels = layout_.geometry().levels();
    // The walk shape depends only on the dirty/verified/presence
    // flags, never on a computed digest, so the path is classified
    // first and every node MAC it needs -- refreshes and expected
    // values alike -- is computed with one staged batch.
    struct Step
    {
        unsigned lvl;
        std::uint64_t node;
        bool refresh;  //!< install/refresh vs. compare
        std::array<std::uint64_t, kTreeArity> ctrs;
        Mac mac;
    };
    std::array<Step, 24> steps;
    std::size_t n_steps = 0;
    panic_if(levels > steps.size(), "tree deeper than walk buffer");

    std::uint64_t i = index;
    for (unsigned lvl = level; lvl < levels; ++lvl) {
        const std::uint64_t node = i / kTreeArity;
        if (tree_.macDirty(lvl, node)) {
            // Deferred refresh of our own pending update: the stored
            // counters are authoritative (attack hooks flush dirty
            // state first), so recompute in place and keep climbing.
            steps[n_steps++] = {lvl, node, true, {}, 0};
        } else if (tree_.verified(lvl, node)) {
            // Verified-ancestor cache hit: this node and everything
            // above it was checked this epoch -- stop the walk here.
            break;
        } else if (!tree_.hasNodeMac(lvl, node)) {
            // First touch of a pristine node: install its MAC.
            steps[n_steps++] = {lvl, node, true, {}, 0};
        } else {
            steps[n_steps++] = {lvl, node, false, {}, 0};
        }
        i = node;
    }

    crypto::MacBatch batch = mac_.batch();
    for (std::size_t s = 0; s < n_steps; ++s) {
        Step &st = steps[s];
        for (unsigned c = 0; c < kTreeArity; ++c)
            st.ctrs[c] = counterAt(st.lvl, st.node * kTreeArity + c);
        batch.node(layout_.counterNodeAddr(st.lvl, st.node),
                   counterAt(st.lvl + 1, st.node), st.ctrs.data(),
                   &st.mac);
    }
    batch.flush();

    // Apply in climb order: refreshes install their recomputed MAC,
    // checks compare against the stored value.  A mismatch returns
    // before anything above it is touched and before any verified
    // tag is set, so a failed walk leaves nothing cached and
    // detection stays sticky across reads.
    for (std::size_t s = 0; s < n_steps; ++s) {
        const Step &st = steps[s];
        if (st.refresh)
            tree_.setNodeMac(st.lvl, st.node, st.mac);
        else if (tree_.nodeMac(st.lvl, st.node) != st.mac)
            return Status::TreeMismatch;
    }
    for (std::size_t s = 0; s < n_steps; ++s)
        tree_.markVerified(steps[s].lvl, steps[s].node);
    return Status::Ok;
}

void
SecureMemory::flushMetadata()
{
    std::vector<std::pair<unsigned, std::uint64_t>> stale;
    for (const auto &[lvl, node] : tree_.takeDirty()) {
        if (tree_.macDirty(lvl, node))  // may be refreshed/erased
            stale.emplace_back(lvl, node);
    }
    refreshNodeMacsBatched(stale);
    if (!stale.empty())
        OBS_EVENT(obs::EventKind::MacCompact, 0, 0,
                  static_cast<std::uint32_t>(stale.size()), 0);
}

void
SecureMemory::invalidateSubtreeVerified(std::uint64_t chunk)
{
    const unsigned levels = layout_.geometry().levels();
    const std::uint64_t first_leaf = chunk * kLinesPerChunk;
    for (unsigned lvl = 0; lvl < levels; ++lvl) {
        const std::uint64_t start = first_leaf >> (3 * lvl);
        const std::uint64_t count =
            std::max<std::uint64_t>(1, kLinesPerChunk >> (3 * lvl));
        for (std::uint64_t n = start / kTreeArity;
             n <= (start + count - 1) / kTreeArity; ++n)
            tree_.clearVerified(lvl, n);
    }
}

// ---- data & MAC storage --------------------------------------------------

std::array<std::uint8_t, kCachelineBytes> &
SecureMemory::cipherLine(Addr line_addr)
{
    return cipher_[lineIndex(line_addr)];
}

const std::array<std::uint8_t, kCachelineBytes> &
SecureMemory::cipherLineConst(Addr line_addr) const
{
    static const std::array<std::uint8_t, kCachelineBytes> zeros{};
    auto it = cipher_.find(lineIndex(line_addr));
    return it == cipher_.end() ? zeros : it->second;
}

std::optional<Mac>
SecureMemory::macSlot(std::uint64_t chunk, std::uint64_t intra) const
{
    auto it = mac_slabs_.find(chunk);
    if (it == mac_slabs_.end() || intra >= it->second.size())
        return std::nullopt;
    return it->second[intra];
}

void
SecureMemory::setMacSlot(std::uint64_t chunk, std::uint64_t intra,
                         Mac mac)
{
    auto &slab = mac_slabs_[chunk];
    if (slab.size() <= intra)
        slab.resize(kLinesPerChunk);
    slab[intra] = mac;
}

Mac
SecureMemory::fineMacOf(Addr line_addr, std::uint64_t counter) const
{
    return mac_.lineMac(line_addr, counter,
                        cipherLineConst(line_addr).data());
}

std::uint64_t
SecureMemory::effectiveCounter(Addr addr) const
{
    const Granularity g = granularityAt(addr);
    const CounterLoc loc = addr_.counterLocAt(addr, g);
    return counterAt(loc.level, loc.index);
}

// ---- unit operations -------------------------------------------------------

void
SecureMemory::ensureChunkInitialized(std::uint64_t chunk)
{
    if (initialized_.contains(chunk))
        return;
    initialized_.insert(chunk);

    // Zero plaintext means the stored ciphertext IS the pad: generate
    // each tile of pads with one batched AES call and store them
    // directly as the line contents.
    const Addr base = chunk * kChunkBytes;
    constexpr std::size_t kTile = 64;
    std::array<Addr, kTile> addrs;
    std::array<std::uint64_t, kTile> ctrs;
    std::array<Pad, kTile> pads;
    static_assert(kLinesPerChunk % kTile == 0);
    for (unsigned done = 0; done < kLinesPerChunk; done += kTile) {
        for (std::size_t l = 0; l < kTile; ++l) {
            addrs[l] = base + (done + l) * kCachelineBytes;
            ctrs[l] = effectiveCounter(addrs[l]);
        }
        otp_.makePads(addrs.data(), ctrs.data(), kTile, pads.data());
        for (std::size_t l = 0; l < kTile; ++l)
            std::memcpy(cipherLine(addrs[l]).data(), pads[l].data(),
                        kCachelineBytes);
    }
    rebuildChunkMacs(chunk, streamPart(chunk));
}

void
SecureMemory::rebuildChunkMacs(std::uint64_t chunk, StreamPart sp)
{
    auto &slab = mac_slabs_[chunk];
    slab.assign(kLinesPerChunk, std::nullopt);

    const Addr base = chunk * kChunkBytes;

    // Pass 1: every line's fine MAC under its unit's counter, staged
    // through one MacBatch for the whole chunk (512 lines drain as
    // multi-lane SipHash flushes instead of 512 scalar hashes).
    std::array<Mac, kLinesPerChunk> fine;
    {
        crypto::MacBatch batch = mac_.batch();
        unsigned part = 0;
        while (part < kPartitionsPerChunk) {
            const Addr pbase = base + part * kPartitionBytes;
            const Granularity g = granularityOfPartition(sp, part);
            const Addr ubase = unitBase(pbase, g);
            const std::uint64_t lines = unitLines(g);
            if (g == Granularity::Line64B) {
                // Fine partition: each line owns its leaf counter.
                for (unsigned l = 0; l < kLinesPerPartition; ++l) {
                    const Addr la = ubase + l * kCachelineBytes;
                    batch.line(la, counterAt(0, lineIndex(la)),
                               cipherLineConst(la).data(),
                               &fine[lineInChunk(la)]);
                }
                part += 1;
            } else {
                const CounterLoc loc = addr_.counterLocAt(ubase, g);
                const std::uint64_t ctr =
                    counterAt(loc.level, loc.index);
                for (std::uint64_t l = 0; l < lines; ++l) {
                    const Addr la = ubase + l * kCachelineBytes;
                    batch.line(la, ctr, cipherLineConst(la).data(),
                               &fine[lineInChunk(la)]);
                }
                part += static_cast<unsigned>(lines /
                                              kLinesPerPartition);
            }
        }
        batch.flush();
    }

    // Pass 2: place fine MACs (fine partitions) or their nested fold
    // (coarse units, Eq. 5) into the compacted slab slots.
    unsigned part = 0;
    while (part < kPartitionsPerChunk) {
        const Addr pbase = base + part * kPartitionBytes;
        const Granularity g = granularityOfPartition(sp, part);
        const Addr ubase = unitBase(pbase, g);
        const std::uint64_t lines = unitLines(g);

        if (g == Granularity::Line64B) {
            for (unsigned l = 0; l < kLinesPerPartition; ++l) {
                const Addr la = ubase + l * kCachelineBytes;
                slab[AddressComputer::intraChunkMacIndex(la, sp)] =
                    fine[lineInChunk(la)];
            }
            part += 1;
        } else {
            Mac acc = mac_.nestedMacSeed(fine[lineInChunk(ubase)]);
            for (std::uint64_t l = 1; l < lines; ++l)
                acc = mac_.nestedMacFold(
                    acc,
                    fine[lineInChunk(ubase + l * kCachelineBytes)]);
            slab[AddressComputer::intraChunkMacIndex(ubase, sp)] = acc;
            part += static_cast<unsigned>(lines / kLinesPerPartition);
        }
    }
}

SecureMemory::Status
SecureMemory::verifyUnit(Addr unit_base, Granularity g) const
{
    const std::uint64_t chunk = chunkIndex(unit_base);
    const StreamPart sp = streamPart(chunk);
    const CounterLoc loc = addr_.counterLocAt(unit_base, g);
    const std::uint64_t ctr = counterAt(loc.level, loc.index);
    const std::uint64_t lines = unitLines(g);

    const std::uint64_t intra =
        AddressComputer::intraChunkMacIndex(unit_base, sp);
    const std::optional<Mac> stored = macSlot(chunk, intra);
    if (!stored)
        return Status::MacMismatch;

    Mac computed;
    if (g == Granularity::Line64B) {
        computed = fineMacOf(unit_base, ctr);
    } else {
        // Coarse unit: batch all per-line fine MACs, then fold
        // (Eq. 5).  Bit-identical to the scalar seed/fold loop.
        std::array<Mac, kLinesPerChunk> fine;
        crypto::MacBatch batch = mac_.batch();
        for (std::uint64_t l = 0; l < lines; ++l) {
            const Addr la = unit_base + l * kCachelineBytes;
            batch.line(la, ctr, cipherLineConst(la).data(), &fine[l]);
        }
        batch.flush();
        computed =
            mac_.nestedMac(std::span<const Mac>(fine.data(), lines));
    }
    if (computed != *stored)
        return Status::MacMismatch;

    if (loc.level >= layout_.geometry().levels())
        return Status::Ok;  // counter itself is on-chip (trusted)
    return verifyPath(loc.level, loc.index);
}

void
SecureMemory::decryptLines(Addr start_line, std::size_t count,
                           std::uint8_t *out) const
{
    // Tiled so the scratch stays small: each tile is one batched
    // makePads() call (4 AES blocks per line on one kernel
    // invocation) instead of per-line makePad() round trips.
    constexpr std::size_t kTile = 64;
    std::array<Addr, kTile> addrs;
    std::array<std::uint64_t, kTile> ctrs;
    std::array<Pad, kTile> pads;
    for (std::size_t done = 0; done < count;) {
        const std::size_t n = std::min(kTile, count - done);
        for (std::size_t l = 0; l < n; ++l) {
            addrs[l] = start_line + (done + l) * kCachelineBytes;
            ctrs[l] = effectiveCounter(addrs[l]);
        }
        otp_.makePads(addrs.data(), ctrs.data(), n, pads.data());
        for (std::size_t l = 0; l < n; ++l) {
            const auto &cipher = cipherLineConst(addrs[l]);
            std::uint8_t *dst = out + (done + l) * kCachelineBytes;
            for (unsigned b = 0; b < kCachelineBytes; ++b)
                dst[b] = cipher[b] ^ pads[l][b];
        }
        done += n;
    }
}

SecureMemory::Status
SecureMemory::writeUnit(Addr unit_base, Granularity g,
                        std::size_t offset,
                        std::span<const std::uint8_t> data)
{
    const std::uint64_t chunk = chunkIndex(unit_base);
    ensureChunkInitialized(chunk);

    const std::uint64_t lines = unitLines(g);
    std::vector<std::uint8_t> plain(lines * kCachelineBytes);
    panic_if(offset + data.size() > plain.size(),
             "writeUnit: splice out of range");

    if (data.size() == plain.size()) {
        // Full overwrite: the old contents are irrelevant, so no
        // verification or decryption is needed (streaming writes).
    } else {
        // Read-modify-write: the old data must verify before it is
        // spliced with the new bytes.
        const Status st = verifyUnit(unit_base, g);
        if (st != Status::Ok)
            return st;
        decryptLines(unit_base, lines, plain.data());
    }
    std::memcpy(plain.data() + offset, data.data(), data.size());

    // Freshness: bump the unit counter, then re-encrypt every line of
    // the unit under the new value.
    const CounterLoc loc = addr_.counterLocAt(unit_base, g);
    const std::uint64_t newv = counterAt(loc.level, loc.index) + 1;
    setCounterAndPropagate(loc.level, loc.index, newv);

    const StreamPart sp = streamPart(chunk);
    // Re-encrypt: every line of the unit shares the bumped counter,
    // so each tile of pads is one sequential batched AES call.
    constexpr std::size_t kTile = 64;
    std::array<Pad, kTile> pads;
    for (std::size_t done = 0; done < lines;) {
        const std::size_t n =
            std::min<std::size_t>(kTile, lines - done);
        otp_.makePadsSeq(unit_base + done * kCachelineBytes, n, newv,
                         pads.data());
        for (std::size_t l = 0; l < n; ++l) {
            const Addr la = unit_base + (done + l) * kCachelineBytes;
            auto &line = cipherLine(la);
            std::memcpy(line.data(),
                        plain.data() + (done + l) * kCachelineBytes,
                        kCachelineBytes);
            OtpGenerator::applyPad(pads[l], line.data());
        }
        done += n;
    }

    // Re-MAC: batch the fine MACs of the fresh ciphertext, then fold
    // for coarse units (Eq. 5).
    Mac unit_mac;
    if (g == Granularity::Line64B) {
        unit_mac = fineMacOf(unit_base, newv);
    } else {
        std::array<Mac, kLinesPerChunk> fine;
        crypto::MacBatch batch = mac_.batch();
        for (std::uint64_t l = 0; l < lines; ++l) {
            const Addr la = unit_base + l * kCachelineBytes;
            batch.line(la, newv, cipherLineConst(la).data(),
                       &fine[l]);
        }
        batch.flush();
        unit_mac =
            mac_.nestedMac(std::span<const Mac>(fine.data(), lines));
    }
    setMacSlot(chunk,
               AddressComputer::intraChunkMacIndex(unit_base, sp),
               unit_mac);
    return Status::Ok;
}

void
SecureMemory::rekey(const Keys &new_keys)
{
    // Capture plaintext of every initialised chunk under the old
    // keys first.
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        plains;
    for (const std::uint64_t chunk : initialized_) {
        auto &buf = plains[chunk];
        buf.resize(kChunkBytes);
        decryptLines(chunk * kChunkBytes, kLinesPerChunk, buf.data());
    }

    otp_ = OtpGenerator(new_keys.aes);
    mac_ = MacEngine(new_keys.mac);

    // Re-encrypt under the unchanged counters and rebuild all MACs,
    // one batched pad tile at a time.
    constexpr std::size_t kTile = 64;
    std::array<Addr, kTile> addrs;
    std::array<std::uint64_t, kTile> ctrs;
    std::array<Pad, kTile> pads;
    static_assert(kLinesPerChunk % kTile == 0);
    for (auto &[chunk, plain] : plains) {
        const Addr base = chunk * kChunkBytes;
        for (unsigned done = 0; done < kLinesPerChunk;
             done += kTile) {
            for (std::size_t l = 0; l < kTile; ++l) {
                addrs[l] = base + (done + l) * kCachelineBytes;
                ctrs[l] = effectiveCounter(addrs[l]);
            }
            otp_.makePads(addrs.data(), ctrs.data(), kTile,
                          pads.data());
            for (std::size_t l = 0; l < kTile; ++l) {
                auto &line = cipherLine(addrs[l]);
                std::memcpy(line.data(),
                            plain.data() +
                                (done + l) * kCachelineBytes,
                            kCachelineBytes);
                OtpGenerator::applyPad(pads[l], line.data());
            }
        }
        rebuildChunkMacs(chunk, streamPart(chunk));
    }

    // Node MACs are keyed too: recompute every stored one in a single
    // batched pass (this also settles any pending lazy refreshes
    // under the new key).
    std::vector<std::pair<unsigned, std::uint64_t>> all_nodes;
    tree_.forEachNodeMac(
        [&all_nodes](unsigned lvl, std::uint64_t node) {
            all_nodes.emplace_back(lvl, node);
        });
    refreshNodeMacsBatched(all_nodes);
    // Cached trust predates the new keys: force full re-verification.
    invalidateVerifiedCache();
    OBS_EVENT(obs::EventKind::Rekey, 0, 0,
              static_cast<std::uint32_t>(initialized_.size()), 0);
}

// ---- public read/write ----------------------------------------------------

SecureMemory::Status
SecureMemory::write(Addr addr, std::span<const std::uint8_t> data)
{
    std::size_t done = 0;
    while (done < data.size()) {
        const Addr cur = addr + done;
        const Granularity g = granularityAt(cur);
        const Addr ubase = unitBase(cur, g);
        const Addr uend = ubase + granularityBytes(g);
        const std::size_t span = std::min<std::size_t>(
            data.size() - done, uend - cur);
        const Status st = writeUnit(ubase, g, cur - ubase,
                                    data.subspan(done, span));
        if (st != Status::Ok)
            return st;
        done += span;
    }
    return Status::Ok;
}

SecureMemory::Status
SecureMemory::read(Addr addr, std::span<std::uint8_t> out)
{
    std::size_t done = 0;
    while (done < out.size()) {
        const Addr cur = addr + done;
        const std::uint64_t chunk = chunkIndex(cur);
        ensureChunkInitialized(chunk);

        const Granularity g = granularityAt(cur);
        const Addr ubase = unitBase(cur, g);
        const Addr uend = ubase + granularityBytes(g);
        const std::size_t span = std::min<std::size_t>(
            out.size() - done, uend - cur);

        const Status st = verifyUnit(ubase, g);
        if (st != Status::Ok)
            return st;

        // Decrypt the overlapped lines, honouring partial-line edges.
        Addr pos = cur;
        std::size_t left = span;
        while (left > 0) {
            const Addr la = alignDown(pos, kCachelineBytes);
            std::uint8_t tmp[kCachelineBytes];
            decryptLines(la, 1, tmp);
            const std::size_t off = pos - la;
            const std::size_t n =
                std::min<std::size_t>(left, kCachelineBytes - off);
            std::memcpy(out.data() + done + (span - left), tmp + off, n);
            pos += n;
            left -= n;
        }
        done += span;
    }
    return Status::Ok;
}

// ---- attack surface ---------------------------------------------------------
//
// Every injection point first flushes deferred node-MAC refreshes --
// the off-chip image an attacker tampers with is whatever the engine
// would have written back -- and then invalidates the verified-
// ancestor cache, since cached trust no longer covers the modified
// state (hardware re-verifies whatever it re-reads from off-chip).

void
SecureMemory::corruptData(Addr addr, unsigned byte_index)
{
    ensureChunkInitialized(chunkIndex(addr));
    flushMetadata();
    invalidateVerifiedCache();
    auto &line = cipherLine(alignDown(addr, kCachelineBytes));
    line[byte_index % kCachelineBytes] ^= 0x01;
}

void
SecureMemory::corruptMac(Addr addr)
{
    const std::uint64_t chunk = chunkIndex(addr);
    ensureChunkInitialized(chunk);
    flushMetadata();
    invalidateVerifiedCache();
    const StreamPart sp = streamPart(chunk);
    const std::uint64_t intra =
        AddressComputer::intraChunkMacIndex(
            unitBase(addr, granularityAt(addr)), sp);
    auto &slab = mac_slabs_[chunk];
    panic_if(intra >= slab.size() || !slab[intra],
             "corruptMac: no MAC stored for address");
    slab[intra] = *slab[intra] ^ 0x1;
}

void
SecureMemory::corruptCounter(Addr addr)
{
    ensureChunkInitialized(chunkIndex(addr));
    flushMetadata();
    invalidateVerifiedCache();
    const Granularity g = granularityAt(addr);
    const CounterLoc loc = addr_.counterLocAt(addr, g);
    panic_if(loc.level >= layout_.geometry().levels(),
             "corruptCounter: counter is on-chip (untamperable)");
    setCounterRaw(loc.level, loc.index,
                  counterAt(loc.level, loc.index) ^ 0x1);
}

void
SecureMemory::tamperStreamPart(std::uint64_t chunk, StreamPart sp)
{
    ensureChunkInitialized(chunk);
    flushMetadata();
    invalidateVerifiedCache();
    // Raw overwrite of the stored table entry: none of the
    // re-encryption / counter movement / MAC compaction that
    // applyStreamPart() performs happens, so the chunk's real
    // metadata no longer matches the layout the engine derives.
    stream_parts_[chunk] = sp;
}

SecureMemory::Replay
SecureMemory::captureForReplay(Addr addr)
{
    const Addr la = alignDown(addr, kCachelineBytes);
    const std::uint64_t chunk = chunkIndex(la);
    ensureChunkInitialized(chunk);
    // Bring the off-chip image fully up to date (deferred node-MAC
    // refreshes included) and materialise the path's MACs, so the
    // capture is exactly what an attacker could save.
    flushMetadata();
    const Granularity g = granularityAt(la);
    (void)verifyUnit(unitBase(la, g), g);

    const CounterLoc loc = addr_.counterLocAt(la, g);
    Replay r;
    r.addr = la;
    r.cipher = cipherLineConst(la);
    const StreamPart sp = streamPart(chunk);
    const std::uint64_t intra =
        AddressComputer::intraChunkMacIndex(unitBase(la, g), sp);
    r.mac = macSlot(chunk, intra).value_or(0);
    r.leaf_counter = counterAt(loc.level, loc.index);
    if (loc.level < layout_.geometry().levels())
        r.leaf_node_mac = tree_.nodeMac(loc.level,
                                        loc.index / kTreeArity);
    return r;
}

void
SecureMemory::replay(const Replay &r)
{
    const std::uint64_t chunk = chunkIndex(r.addr);
    // The attacker overwrites off-chip state: settle deferred MAC
    // refreshes first and drop all cached trust.
    flushMetadata();
    invalidateVerifiedCache();
    const Granularity g = granularityAt(r.addr);
    const CounterLoc loc = addr_.counterLocAt(r.addr, g);
    cipherLine(r.addr) = r.cipher;
    const StreamPart sp = streamPart(chunk);
    setMacSlot(chunk,
               AddressComputer::intraChunkMacIndex(
                   unitBase(r.addr, g), sp),
               r.mac);
    if (loc.level < layout_.geometry().levels()) {
        setCounterRaw(loc.level, loc.index, r.leaf_counter);
        tree_.setNodeMac(loc.level, loc.index / kTreeArity,
                         r.leaf_node_mac);
    }
    // Note: on-chip trusted counters are deliberately NOT restored --
    // an attacker cannot reach them.  That is what makes the replay
    // detectable.
}

} // namespace mgmee
