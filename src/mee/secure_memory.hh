/**
 * @file
 * Functional model of the multi-granular memory protection engine.
 *
 * This class actually performs counter-mode encryption (AES-128 OTPs),
 * MAC generation/verification (SipHash), and 8-ary counter-tree
 * maintenance over a simulated off-chip memory, at any mix of the four
 * granularities.  It exists to prove the scheme *works*: data written
 * at one granularity reads back intact across promotions/demotions,
 * and tampering or replaying any off-chip byte (data, MAC, counter)
 * is detected.  Timing/traffic is modelled separately by the engines
 * in mee/ and core/.
 *
 * Granularity state is a per-chunk StreamPart map (see
 * core/granularity.hh).  Promotion moves a unit's counter
 * `promotionLevels(g)` levels up the tree and prunes everything below
 * (Fig. 10); the unit MAC becomes the nested hash of its fine MACs
 * (Eq. 5); MAC slots are compacted per Fig. 9.  All of that is driven
 * by applyStreamPart() (implemented in core/multigran_memory.cc).
 *
 * Hot-path storage: counters and node MACs live in dense per-level
 * arrays (tree/flat_store.hh) instead of hash maps; node MACs are
 * refreshed lazily (writes mark them dirty, verifies or
 * flushMetadata() recompute them); and a verified-ancestor cache
 * lets path verification stop at the highest node already verified
 * in the current epoch.  Attack injection, granularity switching and
 * re-keying invalidate the cached trust (see DESIGN.md, "Metadata
 * storage & lazy MAC refresh").
 */

#ifndef MGMEE_MEE_SECURE_MEMORY_HH
#define MGMEE_MEE_SECURE_MEMORY_HH

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/address_computer.hh"
#include "core/granularity.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "tree/flat_store.hh"
#include "tree/layout.hh"

namespace mgmee {

/** Functional multi-granular secure memory. */
class SecureMemory
{
  public:
    /** Verification outcome of an access. */
    enum class Status : std::uint8_t
    {
        Ok = 0,
        MacMismatch,    //!< data/MAC integrity failure
        TreeMismatch,   //!< counter freshness (replay) failure
    };

    /** Secret key material (per boot). */
    struct Keys
    {
        Aes128::Key aes{};
        SipKey mac{};
    };

    SecureMemory(std::size_t data_bytes, const Keys &keys);
    virtual ~SecureMemory() = default;

    SecureMemory(const SecureMemory &) = delete;
    SecureMemory &operator=(const SecureMemory &) = delete;

    /** Encrypt+authenticate @p data into [addr, addr+size). */
    Status write(Addr addr, std::span<const std::uint8_t> data);

    /** Verify+decrypt [addr, addr+size) into @p out. */
    Status read(Addr addr, std::span<std::uint8_t> out);

    /**
     * Reconfigure @p chunk to the stream-partition map @p sp,
     * promoting/demoting counters, re-encrypting where the paper
     * requires it, and re-compacting the chunk's MAC slab.
     */
    void applyStreamPart(std::uint64_t chunk, StreamPart sp);

    /**
     * Rotate the secret keys: every initialised chunk is decrypted
     * under the old keys and re-encrypted/re-MACed under @p new_keys
     * (counters and granularity state are preserved).  Used at boot,
     * hibernate/resume, or on a key-compromise response.  Invalidates
     * the verified-ancestor cache: every path re-verifies under the
     * new keys.
     */
    void rekey(const Keys &new_keys);

    /**
     * Recompute every deferred (dirty) tree-node MAC now.  Node MACs
     * are normally refreshed lazily -- a counter write only marks the
     * node stale, and the MAC is recomputed when a verify next
     * touches it -- so call this at a kernel/phase boundary (or
     * before snapshotting off-chip state) to bring the stored image
     * fully up to date.
     *
     * Virtual: the persistent-memory variant (mee/nvm_memory.hh)
     * extends the flush into an ordered persist sequence -- the
     * settled metadata image is exactly what crash-consistent NVM
     * designs must write back atomically.
     */
    virtual void flushMetadata();

    /** Current stream-partition map of @p chunk. */
    StreamPart
    streamPart(std::uint64_t chunk) const
    {
        auto it = stream_parts_.find(chunk);
        return it == stream_parts_.end() ? kAllFine : it->second;
    }

    /** Granularity currently protecting @p addr. */
    Granularity
    granularityAt(Addr addr) const
    {
        return granularityOfAddr(streamPart(chunkIndex(addr)), addr);
    }

    /** Counter value currently encrypting the line at @p addr. */
    std::uint64_t effectiveCounter(Addr addr) const;

    // ---- attack surface (tests) -------------------------------------
    /** Flip a ciphertext byte in off-chip memory. */
    void corruptData(Addr addr, unsigned byte_index);
    /** Flip a bit of the stored MAC protecting @p addr. */
    void corruptMac(Addr addr);
    /** Flip a stored counter value (off-chip tree node content). */
    void corruptCounter(Addr addr);
    /**
     * Overwrite @p chunk's stored stream-partition entry with @p sp
     * without the legitimate applyStreamPart() reconfiguration (no
     * re-encryption, counter moves or MAC-slab compaction): models an
     * attacker rewriting the granularity-table state, after which the
     * engine interprets the chunk with the wrong metadata layout.
     */
    void tamperStreamPart(std::uint64_t chunk, StreamPart sp);

    /** Off-chip state of one line, capturable for replay attacks. */
    struct Replay
    {
        Addr addr = 0;
        std::array<std::uint8_t, kCachelineBytes> cipher{};
        Mac mac = 0;
        std::uint64_t leaf_counter = 0;
        Mac leaf_node_mac = 0;
    };

    /** Capture everything an off-chip attacker could save. */
    Replay captureForReplay(Addr addr);
    /** Restore a captured state (the replay attack itself). */
    void replay(const Replay &r);

    const MetadataLayout &layout() const { return layout_; }
    const AddressComputer &addrComputer() const { return addr_; }

    static const char *statusName(Status s);

  protected:
    // ---- tree plumbing ----------------------------------------------
    /** Key packing (level, index) for the trusted-storage side map. */
    static std::uint64_t
    key(unsigned level, std::uint64_t index)
    {
        return (static_cast<std::uint64_t>(level) << 56) | index;
    }

    /** Counter value at (level, index); trusted map above levels(). */
    std::uint64_t counterAt(unsigned level, std::uint64_t index) const;
    /** True iff counter (level, index) exists (not pruned). */
    bool hasCounter(unsigned level, std::uint64_t index) const;
    void setCounterRaw(unsigned level, std::uint64_t index,
                       std::uint64_t value);
    void eraseCounter(unsigned level, std::uint64_t index);

    /** Recompute the stored MAC of tree node (level, node) now. */
    void refreshNodeMac(unsigned level, std::uint64_t node) const;
    /**
     * Batched form of refreshNodeMac(): recompute the stored MACs of
     * every (level, node) in @p nodes through one MacBatch (one
     * multi-lane SipHash flush per staging-buffer fill) instead of a
     * scalar hash per node.  Bit-identical to calling
     * refreshNodeMac() on each entry in order.
     */
    void refreshNodeMacsBatched(
        std::span<const std::pair<unsigned, std::uint64_t>> nodes)
        const;
    void eraseNodeMac(unsigned level, std::uint64_t node);

    /**
     * Set counter (level, index) to @p value and propagate: bump each
     * ancestor's version counter and mark the node MACs along the
     * path stale.  The MACs are recomputed lazily -- by the next
     * verify that touches them or by flushMetadata() -- so a burst of
     * writes under one ancestor pays for one MAC computation.
     */
    void setCounterAndPropagate(unsigned level, std::uint64_t index,
                                std::uint64_t value);

    /**
     * Verify node MACs from (level, index)'s node upward.  The walk
     * stops at the highest node already verified in the current
     * epoch (verified-ancestor cache) instead of climbing to the
     * root every time; dirty nodes en route are refreshed in place.
     */
    Status verifyPath(unsigned level, std::uint64_t index) const;

    /**
     * Drop every verified-ancestor tag (O(1) epoch bump).  Called
     * whenever off-chip state may have changed behind the engine's
     * back: attack injection, replay, re-keying.
     */
    void invalidateVerifiedCache() { tree_.invalidateAllVerified(); }

    /**
     * Drop the verified tags of every node covering @p chunk's
     * subtree (all levels, including the path to the root).  Called
     * on granularity promotion/demotion, which re-shapes the subtree.
     */
    void invalidateSubtreeVerified(std::uint64_t chunk);

    // ---- data & MAC storage ------------------------------------------
    std::array<std::uint8_t, kCachelineBytes> &
    cipherLine(Addr line_addr);
    const std::array<std::uint8_t, kCachelineBytes> &
    cipherLineConst(Addr line_addr) const;

    /** Per-chunk MAC slab slot access (compacted indices). */
    std::optional<Mac> macSlot(std::uint64_t chunk,
                               std::uint64_t intra) const;
    void setMacSlot(std::uint64_t chunk, std::uint64_t intra, Mac mac);

    // ---- unit-level operations ---------------------------------------
    /** Initialise every line/MAC/counter of @p chunk (zero data). */
    void ensureChunkInitialized(std::uint64_t chunk);

    /** Verify the whole protection unit containing @p addr. */
    Status verifyUnit(Addr unit_base, Granularity g) const;

    /**
     * Read-modify-write of one unit: decrypt, splice @p data at
     * @p offset, bump the unit counter, re-encrypt, re-MAC.
     */
    Status writeUnit(Addr unit_base, Granularity g, std::size_t offset,
                     std::span<const std::uint8_t> data);

    /** Decrypt @p lines of the (verified) unit into @p out. */
    void decryptLines(Addr start_line, std::size_t count,
                      std::uint8_t *out) const;

    /** Fine MAC of one stored ciphertext line under @p counter. */
    Mac fineMacOf(Addr line_addr, std::uint64_t counter) const;

    /** Recompute and store every MAC slot of @p chunk under @p sp. */
    void rebuildChunkMacs(std::uint64_t chunk, StreamPart sp);

    MetadataLayout layout_;
    AddressComputer addr_;
    OtpGenerator otp_;
    MacEngine mac_;

    /** Off-chip ciphertext, keyed by line index. */
    std::unordered_map<std::uint64_t,
                       std::array<std::uint8_t, kCachelineBytes>>
        cipher_;
    /**
     * Off-chip tree state: dense per-level counter and node-MAC
     * arrays plus the lazy-refresh / verified-ancestor bookkeeping.
     * Mutable because verification installs first-touch MACs,
     * refreshes dirty ones, and records verified tags.
     */
    mutable FlatTreeStore tree_;
    /**
     * On-chip trusted storage: counters of levels at/above the root
     * node, keyed by key(level, index).  An attacker cannot touch
     * these, which is what anchors replay detection.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> trusted_ctrs_;
    /** Per-chunk compacted MAC slabs (512 slots max). */
    std::unordered_map<std::uint64_t,
                       std::vector<std::optional<Mac>>>
        mac_slabs_;
    /** Per-chunk stream-partition maps (functional ground truth). */
    std::unordered_map<std::uint64_t, StreamPart> stream_parts_;
    /** Chunks whose lines/MACs have been initialised. */
    std::unordered_set<std::uint64_t> initialized_;
};

} // namespace mgmee

#endif // MGMEE_MEE_SECURE_MEMORY_HH
