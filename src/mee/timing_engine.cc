#include "mee/timing_engine.hh"

#include <algorithm>

namespace mgmee {

// ---- UnitBuffer ---------------------------------------------------------

bool
UnitBuffer::contains(Addr unit_base, Cycle now)
{
    auto it = map_.find(unit_base);
    if (it == map_.end())
        return false;
    if (now - it->second->stamp > window_) {
        lru_.erase(it->second);
        map_.erase(it);
        return false;
    }
    it->second->stamp = now;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

Cycle
UnitBuffer::transferDone(Addr unit_base) const
{
    auto it = map_.find(unit_base);
    return it == map_.end() ? 0 : it->second->done;
}

void
UnitBuffer::insert(Addr unit_base, Cycle now, Cycle done)
{
    auto it = map_.find(unit_base);
    if (it != map_.end()) {
        it->second->stamp = now;
        it->second->done = done;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= entries_) {
        map_.erase(lru_.back().unit);
        lru_.pop_back();
    }
    lru_.push_front({unit_base, now, done});
    map_[unit_base] = lru_.begin();
}

void
UnitBuffer::invalidate(Addr unit_base)
{
    auto it = map_.find(unit_base);
    if (it == map_.end())
        return;
    lru_.erase(it->second);
    map_.erase(it);
}

// ---- WriteGather --------------------------------------------------------

void
WriteGather::close(const Entry &e, std::vector<Incomplete> &out)
{
    if (e.written < e.total)
        out.push_back({e.unit, e.total - e.written});
}

void
WriteGather::add(Addr unit_base, std::uint64_t unit_lines,
                 std::uint64_t lines, Cycle now,
                 std::vector<Incomplete> &out)
{
    // Lazily expire stale gathers from the LRU tail.
    while (!lru_.empty() && now - lru_.back().start > window_) {
        close(lru_.back(), out);
        map_.erase(lru_.back().unit);
        lru_.pop_back();
    }

    auto it = map_.find(unit_base);
    if (it == map_.end()) {
        if (map_.size() >= entries_) {
            close(lru_.back(), out);
            map_.erase(lru_.back().unit);
            lru_.pop_back();
        }
        lru_.push_front({unit_base, now, unit_lines, 0});
        map_[unit_base] = lru_.begin();
        it = map_.find(unit_base);
    } else {
        lru_.splice(lru_.begin(), lru_, it->second);
    }

    Entry &e = *it->second;
    e.written = std::min(e.total, e.written + lines);
    if (e.written >= e.total) {
        // Fully gathered: the unit is rewritten wholesale, no RMW.
        lru_.erase(it->second);
        map_.erase(it);
    }
}

void
WriteGather::discard(Addr unit_base)
{
    auto it = map_.find(unit_base);
    if (it == map_.end())
        return;
    lru_.erase(it->second);
    map_.erase(it);
}

// ---- MeeTimingBase ------------------------------------------------------

MeeTimingBase::MeeTimingBase(std::string name, std::size_t data_bytes,
                             const TimingConfig &cfg)
    : name_(std::move(name)), cfg_(cfg), layout_(data_bytes),
      meta_cache_(name_ + ".meta", cfg.meta_cache_bytes,
                  cfg.meta_cache_ways),
      mac_cache_(name_ + ".mac", cfg.mac_cache_bytes,
                 cfg.mac_cache_ways),
      root_cache_(cfg.root_cache_entries, cfg.root_cache_level),
      unused_(cfg.unused_pruning),
      unit_buffer_(cfg.unit_buffer_entries, cfg.unit_buffer_window)
{
    stats_ = StatGroup(name_);
}

Cycle
MeeTimingBase::touchMeta(Addr line, bool is_write, Cycle now,
                         MemCtrl &mem)
{
    const CacheResult res = meta_cache_.access(line, is_write);
    if (res.writeback) {
        mem.serve(now, res.victim_addr, kCachelineBytes, true,
                  Traffic::Counter);
        stats_.add("meta_writebacks");
    }
    if (res.hit)
        return now + cfg_.hit_latency;
    stats_.add("meta_fetches");
    return mem.serve(now, line, kCachelineBytes, false,
                     Traffic::Counter);
}

Cycle
MeeTimingBase::touchMac(Addr line, bool is_write, Cycle now,
                        MemCtrl &mem)
{
    const CacheResult res = mac_cache_.access(line, is_write);
    if (res.writeback) {
        mem.serve(now, res.victim_addr, kCachelineBytes, true,
                  Traffic::Mac);
        stats_.add("mac_writebacks");
    }
    if (res.hit)
        return now + cfg_.hit_latency;
    stats_.add("mac_fetches");
    return mem.serve(now, line, kCachelineBytes, false,
                     Traffic::Mac);
}

Cycle
MeeTimingBase::readWalk(unsigned level, std::uint64_t index, Cycle now,
                        MemCtrl &mem)
{
    // Every node address on the branch is computable from the leaf
    // index, so the engine fetches the whole branch in parallel (as
    // the SGX MEE does) and verifies bottom-up as nodes arrive.  The
    // walk still stops at the first trusted level: a metadata-cache
    // hit, a pinned subtree root, or the on-chip root.
    const TreeGeometry &geom = layout_.geometry();
    Cycle done = now;
    std::uint64_t idx = index;
    for (unsigned lvl = level; lvl < geom.levels(); ++lvl) {
        const Addr line = layout_.counterLineAddr(lvl, idx);
        // A pinned subtree root is trusted: stop before any fetch.
        if (lvl == root_cache_.level() && root_cache_.lookup(line)) {
            stats_.add("walk_root_cache_stops");
            return std::max(done, now + cfg_.hit_latency);
        }
        const bool hit = meta_cache_.contains(line);
        done = cfg_.parallel_walk
                   ? std::max(done, touchMeta(line, false, now, mem))
                   : touchMeta(line, false, done, mem);
        stats_.add("walk_levels");
        if (hit)
            return done;  // verified against the trusted cached copy
        if (lvl == root_cache_.level())
            root_cache_.insert(line);  // pin the hot subtree root
        idx /= kTreeArity;
    }
    // Reached the on-chip root node.
    stats_.add("walk_to_root");
    return done;
}

void
MeeTimingBase::noteCounterBump(unsigned level, std::uint64_t index,
                               Addr region_base,
                               std::size_t region_bytes, Cycle now,
                               MemCtrl &mem)
{
    if (cfg_.minor_counter_bits == 0)
        return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(level) << 56) | index;
    if (++ctr_bumps_[key] < (std::uint32_t{1}
                             << cfg_.minor_counter_bits)) {
        return;
    }
    // Minor overflow: the major advances and every block covered by
    // this counter is re-encrypted (read old, write new).
    ctr_bumps_[key] = 0;
    mem.serve(now, region_base,
              static_cast<std::uint32_t>(region_bytes), false,
              Traffic::Rmw);
    mem.serve(now, region_base,
              static_cast<std::uint32_t>(region_bytes), true,
              Traffic::Rmw);
    stats_.add("ctr_overflows");
    stats_.add("ctr_overflow_lines",
               region_bytes / kCachelineBytes);
}

void
MeeTimingBase::writeWalk(unsigned level, std::uint64_t index, Cycle now,
                         MemCtrl &mem)
{
    const TreeGeometry &geom = layout_.geometry();
    std::uint64_t idx = index;
    for (unsigned lvl = level; lvl < geom.levels(); ++lvl) {
        const Addr line = layout_.counterLineAddr(lvl, idx);
        // Writes update every level up to the root (Fig. 14); each
        // level is fetched on miss and dirtied.
        touchMeta(line, true, now, mem);
        stats_.add("write_walk_levels");
        if (lvl == root_cache_.level())
            root_cache_.insert(line);
        idx /= kTreeArity;
    }
}

} // namespace mgmee
