#include "mee/timing_engine.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace mgmee {

// ---- FlatLruIndex -------------------------------------------------------

namespace {

/** splitmix64 finalizer keeps clustered unit addresses spread. */
std::uint64_t
hashAddr(Addr key)
{
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

FlatLruIndex::FlatLruIndex(unsigned entries)
{
    std::size_t slots = 16;
    while (slots < 4 * static_cast<std::size_t>(std::max(1u, entries)))
        slots *= 2;
    cells_.resize(slots);
    mask_ = slots - 1;
}

std::size_t
FlatLruIndex::probeStart(Addr key) const
{
    return static_cast<std::size_t>(hashAddr(key)) & mask_;
}

std::uint32_t
FlatLruIndex::find(Addr key) const
{
    for (std::size_t i = probeStart(key);; i = (i + 1) & mask_) {
        const Cell &c = cells_[i];
        if (c.state == kEmpty)
            return kInvalid;
        if (c.state == kUsed && c.key == key)
            return c.slot;
    }
}

void
FlatLruIndex::insert(Addr key, std::uint32_t slot)
{
    for (std::size_t i = probeStart(key);; i = (i + 1) & mask_) {
        Cell &c = cells_[i];
        if (c.state == kUsed)
            continue;
        if (c.state == kTomb)
            --tombs_;
        c = {key, slot, kUsed};
        ++used_;
        return;
    }
}

void
FlatLruIndex::erase(Addr key)
{
    for (std::size_t i = probeStart(key);; i = (i + 1) & mask_) {
        Cell &c = cells_[i];
        if (c.state == kEmpty)
            return;
        if (c.state == kUsed && c.key == key) {
            c.state = kTomb;
            --used_;
            ++tombs_;
            break;
        }
    }
    // Tombstones lengthen every future probe; once a quarter of the
    // table is dead, rehash the live cells into a clean table.
    if (tombs_ > cells_.size() / 4)
        rebuild();
}

void
FlatLruIndex::rebuild()
{
    std::vector<Cell> live;
    live.reserve(used_);
    for (const Cell &c : cells_)
        if (c.state == kUsed)
            live.push_back(c);
    for (Cell &c : cells_)
        c = Cell{};
    used_ = 0;
    tombs_ = 0;
    for (const Cell &c : live)
        insert(c.key, c.slot);
}

// ---- UnitBuffer ---------------------------------------------------------

bool
UnitBuffer::contains(Addr unit_base, Cycle now)
{
    const std::uint32_t slot = pool_.find(unit_base);
    if (slot == FlatLruPool<Entry>::kNil)
        return false;
    Entry &e = pool_.at(slot);
    if (now - e.stamp > window_) {
        pool_.erase(slot);
        return false;
    }
    e.stamp = now;
    pool_.touch(slot);
    return true;
}

Cycle
UnitBuffer::transferDone(Addr unit_base) const
{
    const std::uint32_t slot = pool_.find(unit_base);
    return slot == FlatLruPool<Entry>::kNil ? 0
                                            : pool_.at(slot).done;
}

void
UnitBuffer::insert(Addr unit_base, Cycle now, Cycle done)
{
    const std::uint32_t slot = pool_.find(unit_base);
    if (slot != FlatLruPool<Entry>::kNil) {
        Entry &e = pool_.at(slot);
        e.stamp = now;
        e.done = done;
        pool_.touch(slot);
        return;
    }
    if (pool_.full())
        pool_.erase(pool_.lru());
    pool_.insert({unit_base, now, done});
}

void
UnitBuffer::invalidate(Addr unit_base)
{
    const std::uint32_t slot = pool_.find(unit_base);
    if (slot != FlatLruPool<Entry>::kNil)
        pool_.erase(slot);
}

// ---- WriteGather --------------------------------------------------------

void
WriteGather::close(const Entry &e, std::vector<Incomplete> &out)
{
    if (e.written < e.total)
        out.push_back({e.unit, e.total - e.written});
}

void
WriteGather::add(Addr unit_base, std::uint64_t unit_lines,
                 std::uint64_t lines, Cycle now,
                 std::vector<Incomplete> &out)
{
    // Lazily expire stale gathers from the LRU tail.
    while (!pool_.empty() &&
           now - pool_.at(pool_.lru()).start > window_) {
        close(pool_.at(pool_.lru()), out);
        pool_.erase(pool_.lru());
    }

    std::uint32_t slot = pool_.find(unit_base);
    if (slot == FlatLruPool<Entry>::kNil) {
        if (pool_.full()) {
            close(pool_.at(pool_.lru()), out);
            pool_.erase(pool_.lru());
        }
        slot = pool_.insert({unit_base, now, unit_lines, 0});
    } else {
        pool_.touch(slot);
    }

    Entry &e = pool_.at(slot);
    e.written = std::min(e.total, e.written + lines);
    if (e.written >= e.total) {
        // Fully gathered: the unit is rewritten wholesale, no RMW.
        pool_.erase(slot);
    }
}

void
WriteGather::discard(Addr unit_base)
{
    const std::uint32_t slot = pool_.find(unit_base);
    if (slot != FlatLruPool<Entry>::kNil)
        pool_.erase(slot);
}

// ---- MeeTimingBase ------------------------------------------------------

MeeTimingBase::MeeTimingBase(std::string name, std::size_t data_bytes,
                             const TimingConfig &cfg)
    : name_(std::move(name)), cfg_(cfg), layout_(data_bytes),
      meta_cache_(name_ + ".meta", cfg.meta_cache_bytes,
                  cfg.meta_cache_ways),
      mac_cache_(name_ + ".mac", cfg.mac_cache_bytes,
                 cfg.mac_cache_ways),
      root_cache_(cfg.root_cache_entries, cfg.root_cache_level),
      unused_(cfg.unused_pruning),
      unit_buffer_(cfg.unit_buffer_entries, cfg.unit_buffer_window)
{
    stats_ = StatGroup(name_);
}

Cycle
MeeTimingBase::touchMeta(Addr line, bool is_write, Cycle now,
                         MemCtrl &mem)
{
    const CacheResult res = meta_cache_.access(line, is_write);
    if (res.writeback) {
        mem.serve(now, res.victim_addr, kCachelineBytes, true,
                  Traffic::Counter);
        stats_.add("meta_writebacks");
    }
    if (res.hit)
        return now + cfg_.hit_latency;
    stats_.add("meta_fetches");
    return mem.serve(now, line, kCachelineBytes, false,
                     Traffic::Counter);
}

Cycle
MeeTimingBase::touchMac(Addr line, bool is_write, Cycle now,
                        MemCtrl &mem)
{
    const CacheResult res = mac_cache_.access(line, is_write);
    if (res.writeback) {
        mem.serve(now, res.victim_addr, kCachelineBytes, true,
                  Traffic::Mac);
        stats_.add("mac_writebacks");
    }
    if (res.hit)
        return now + cfg_.hit_latency;
    stats_.add("mac_fetches");
    return mem.serve(now, line, kCachelineBytes, false,
                     Traffic::Mac);
}

Cycle
MeeTimingBase::readWalk(unsigned level, std::uint64_t index, Cycle now,
                        MemCtrl &mem)
{
    // Every node address on the branch is computable from the leaf
    // index, so the engine fetches the whole branch in parallel (as
    // the SGX MEE does) and verifies bottom-up as nodes arrive.  The
    // walk still stops at the first trusted level: a metadata-cache
    // hit, a pinned subtree root, or the on-chip root.
    const TreeGeometry &geom = layout_.geometry();
    Cycle done = now;
    std::uint64_t idx = index;
    unsigned depth = 0;
    for (unsigned lvl = level; lvl < geom.levels(); ++lvl) {
        const Addr line = layout_.counterLineAddr(lvl, idx);
        // A pinned subtree root is trusted: stop before any fetch.
        if (lvl == root_cache_.level() && root_cache_.lookup(line)) {
            stats_.add("walk_root_cache_stops");
            OBS_EVENT(obs::EventKind::WalkRead, now, line,
                      static_cast<std::uint32_t>(
                          obs::WalkStop::RootCache),
                      static_cast<std::uint8_t>(depth));
            return std::max(done, now + cfg_.hit_latency);
        }
        const bool hit = meta_cache_.contains(line);
        done = cfg_.parallel_walk
                   ? std::max(done, touchMeta(line, false, now, mem))
                   : touchMeta(line, false, done, mem);
        stats_.add("walk_levels");
        ++depth;
        OBS_EVENT(obs::EventKind::WalkLevel, now, line, hit ? 1 : 0,
                  static_cast<std::uint8_t>(lvl));
        if (hit) {
            // Verified against the trusted cached copy.
            OBS_EVENT(obs::EventKind::WalkRead, now, line,
                      static_cast<std::uint32_t>(
                          obs::WalkStop::CacheHit),
                      static_cast<std::uint8_t>(depth));
            return done;
        }
        if (lvl == root_cache_.level())
            root_cache_.insert(line);  // pin the hot subtree root
        idx /= kTreeArity;
    }
    // Reached the on-chip root node.
    stats_.add("walk_to_root");
    OBS_EVENT(obs::EventKind::WalkRead, now,
              layout_.counterLineAddr(level, index),
              static_cast<std::uint32_t>(obs::WalkStop::Root),
              static_cast<std::uint8_t>(depth));
    return done;
}

void
MeeTimingBase::noteCounterBump(unsigned level, std::uint64_t index,
                               Addr region_base,
                               std::size_t region_bytes, Cycle now,
                               MemCtrl &mem)
{
    if (cfg_.minor_counter_bits == 0)
        return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(level) << 56) | index;
    if (++ctr_bumps_[key] < (std::uint32_t{1}
                             << cfg_.minor_counter_bits)) {
        return;
    }
    // Minor overflow: the major advances and every block covered by
    // this counter is re-encrypted (read old, write new).
    ctr_bumps_[key] = 0;
    mem.serve(now, region_base,
              static_cast<std::uint32_t>(region_bytes), false,
              Traffic::Rmw);
    mem.serve(now, region_base,
              static_cast<std::uint32_t>(region_bytes), true,
              Traffic::Rmw);
    stats_.add("ctr_overflows");
    stats_.add("ctr_overflow_lines",
               region_bytes / kCachelineBytes);
}

void
MeeTimingBase::writeWalk(unsigned level, std::uint64_t index, Cycle now,
                         MemCtrl &mem)
{
    const TreeGeometry &geom = layout_.geometry();
    std::uint64_t idx = index;
    unsigned depth = 0;
    for (unsigned lvl = level; lvl < geom.levels(); ++lvl) {
        const Addr line = layout_.counterLineAddr(lvl, idx);
        // Writes update every level up to the root (Fig. 14); each
        // level is fetched on miss and dirtied.
        const bool hit = meta_cache_.contains(line);
        touchMeta(line, true, now, mem);
        stats_.add("write_walk_levels");
        ++depth;
        OBS_EVENT(obs::EventKind::WalkLevel, now, line,
                  (hit ? 1u : 0u) | 2u,
                  static_cast<std::uint8_t>(lvl));
        if (lvl == root_cache_.level())
            root_cache_.insert(line);
        idx /= kTreeArity;
    }
    OBS_EVENT(obs::EventKind::WalkWrite, now,
              layout_.counterLineAddr(level, index), 0,
              static_cast<std::uint8_t>(depth));
}

} // namespace mgmee
