#include "mee/domain.hh"

#include "common/logging.hh"

namespace mgmee {

std::size_t
SecureDomainManager::addDomain(std::string name, Addr base,
                               std::size_t bytes,
                               const SecureMemory::Keys &keys)
{
    fatal_if(base % kChunkBytes != 0 || bytes % kChunkBytes != 0,
             "domain '%s' window must be 32KB-chunk aligned",
             name.c_str());
    fatal_if(bytes == 0, "domain '%s' is empty", name.c_str());
    for (const Domain &d : domains_) {
        const bool disjoint =
            base + bytes <= d.base || d.base + d.bytes <= base;
        fatal_if(d.mem && !disjoint,
                 "domain '%s' overlaps existing domain '%s'",
                 name.c_str(), d.name.c_str());
    }
    Domain dom;
    dom.name = std::move(name);
    dom.base = base;
    dom.bytes = bytes;
    dom.mem = std::make_unique<SecureMemory>(bytes, keys);
    domains_.push_back(std::move(dom));
    return domains_.size() - 1;
}

SecureDomainManager::Domain *
SecureDomainManager::find(Addr addr, std::size_t bytes)
{
    for (Domain &d : domains_) {
        if (!d.mem)
            continue;
        if (addr >= d.base && addr + bytes <= d.base + d.bytes)
            return &d;
    }
    return nullptr;
}

SecureMemory *
SecureDomainManager::domainOf(Addr addr)
{
    Domain *d = find(addr, 1);
    return d ? d->mem.get() : nullptr;
}

SecureMemory::Status
SecureDomainManager::write(Addr addr,
                           std::span<const std::uint8_t> data)
{
    Domain *d = find(addr, data.size());
    fatal_if(!d, "write at 0x%llx+%zu crosses or misses all domains",
             static_cast<unsigned long long>(addr), data.size());
    return d->mem->write(addr - d->base, data);
}

SecureMemory::Status
SecureDomainManager::read(Addr addr, std::span<std::uint8_t> out)
{
    Domain *d = find(addr, out.size());
    fatal_if(!d, "read at 0x%llx+%zu crosses or misses all domains",
             static_cast<unsigned long long>(addr), out.size());
    return d->mem->read(addr - d->base, out);
}

void
SecureDomainManager::destroyDomain(std::size_t id)
{
    fatal_if(id >= domains_.size(), "no such domain %zu", id);
    domains_[id].mem.reset();
}

} // namespace mgmee
