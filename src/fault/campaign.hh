/**
 * @file
 * Attack-campaign sweep: attack class x target granularity x engine.
 *
 * The campaign instantiates a fresh functional protection engine per
 * cell, runs one scripted attack (fault/injector.hh) against it, and
 * aggregates the verdicts into the detection-coverage matrix that
 * docs/THREAT_MODEL.md publishes (checked against the emitted
 * manifest by scripts/check_threat_matrix.py).
 *
 * Engines swept (names are stable manifest keys):
 *
 *  - `mgmee`           full multi-granular engine (the paper's);
 *  - `conventional`    SecureMemory pinned at 64B (per-line counters
 *                      and MACs, full tree) -- the classic baseline;
 *  - `adaptive-mac`    multi-granular MACs capped at 4KB, modelling
 *                      the adaptive-MAC prior (no 32KB units);
 *  - `common-counters` 64B MACs over shared-counter timing; its
 *                      functional protection state is that of the
 *                      conventional engine (the schemes differ only
 *                      in counter *caching*), so its row documents
 *                      that detection-equivalence;
 *  - `treeless-npu`    per-line MAC + version, versions held on-chip
 *                      (the managed-accelerator treeless design);
 *  - `treeless-cpu`    the same with versions stored *off-chip* and
 *                      no integrity tree: the configuration Sec. 2.3
 *                      of the paper rules out.  Its missed rollback /
 *                      stale-flush cells are expected output, not a
 *                      bug -- they are the executable form of that
 *                      argument;
 *  - `mgx`             application-aware versioning (MGX, Hua et
 *                      al.): per-line MACs whose versions are derived
 *                      from the application's write schedule and
 *                      re-derivable on-chip -- never stored off-chip
 *                      -- with key rotation at application
 *                      boundaries.  Detects every covered class;
 *                      granularity/persistence classes are n/a;
 *  - `secddr-interface` link-level integrity only (SecDDR,
 *                      Fakhrzadehgan et al.): a per-transfer MAC
 *                      authenticates the memory interface but stores
 *                      no freshness state, so a consistent
 *                      {cipher, MAC} replay at rest passes.  Its
 *                      missed rollback / stale-flush cells are the
 *                      measured form of that trade-off;
 *  - `nvm-mgmee`       the full multi-granular engine over
 *                      persistent memory (mee/nvm_memory.hh):
 *                      write-ahead persist ordering, a tamper-proof
 *                      epoch anchor, and power-loss recovery.  The
 *                      only engine the `power_cut` / `stale_persist`
 *                      classes apply to; detects both.
 */

#ifndef MGMEE_FAULT_CAMPAIGN_HH
#define MGMEE_FAULT_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/injector.hh"

namespace mgmee::obs {
class Manifest;
} // namespace mgmee::obs

namespace mgmee::fault {

/** Granularities a cell can request (the four paper candidates). */
constexpr unsigned kGranularities = 4;

/** Stable names of every engine the campaign knows. */
std::span<const char *const> allEngines();

/** The engines the acceptance bar demands 100% detection from. */
std::span<const char *const> coreEngines();

/**
 * Fresh functional target for @p engine over @p data_bytes of
 * protected memory, keyed deterministically from @p seed; nullptr
 * when @p engine is unknown.
 */
std::unique_ptr<Target> makeTarget(const std::string &engine,
                                   std::size_t data_bytes,
                                   std::uint64_t seed);

/** Campaign parameters. */
struct CampaignConfig
{
    /** Master seed; every cell derives its own stream from it. */
    std::uint64_t seed = 1;
    /**
     * Protected-region size per target.  The default (64 chunks,
     * 2MB) makes the tree four off-chip levels deep, so even the
     * 32KB-granularity counters are off-chip and attackable.
     */
    std::size_t data_bytes = 64 * kChunkBytes;
    /** Engines to sweep; empty = allEngines(). */
    std::vector<std::string> engines;
    /** Attack classes to run; empty = every class incl. None. */
    std::vector<AttackClass> classes;
    /** Worker threads; 0 = MGMEE_THREADS/hardware default.  Results
     *  are identical for any value (tests pin both ends). */
    unsigned threads = 0;
};

/** All cells of one engine: [attack class][granularity]. */
struct EngineReport
{
    std::string engine;
    std::array<std::array<CellResult, kGranularities>, kAttackClasses>
        cells{};

    /**
     * One verdict for (engine, class) across the granularities, by
     * severity: FalseAlarm > Missed > Detected > CleanPass > N/A.
     */
    Verdict classVerdict(AttackClass cls) const;

    /**
     * The inject->verdict detection-latency histogram for @p cls,
     * merged across granularities (tick units; bit-identical across
     * thread counts).  Empty when the class never injected.
     */
    Histogram classLatency(AttackClass cls) const;
};

/** Aggregated campaign outcome. */
struct CampaignReport
{
    std::uint64_t seed = 0;
    std::vector<EngineReport> engines;

    /** Total cells per verdict (Detected, Missed, ...). */
    std::array<unsigned, 5> verdictTotals() const;

    /**
     * The acceptance bar: every core engine (mgmee, conventional,
     * nvm-mgmee) detects every applicable single-site tamper class,
     * with zero false alarms and clean control passes anywhere.
     */
    bool coreEnginesFullyDetect() const;

    /** Human-readable class x engine matrix (docs / stdout). */
    std::string matrixText() const;

    /**
     * Record everything into @p m: per-cell verdicts and tallies
     * (`cell.<engine>.<class>.<gran>`), the per-class aggregate
     * matrix (`matrix.<engine>.<class>`), summary counts, and the
     * acceptance flag (`core_full_detection`).
     */
    void fillManifest(obs::Manifest &m) const;
};

/**
 * Run the sweep: for every selected engine, attack class and
 * granularity, build a fresh target and execute the scripted attack.
 * Bumps the `fault.*` StatRegistry counters as it goes.
 */
CampaignReport runCampaign(const CampaignConfig &cfg);

} // namespace mgmee::fault

#endif // MGMEE_FAULT_CAMPAIGN_HH
