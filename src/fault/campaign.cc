#include "fault/campaign.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <thread>
#include <unordered_map>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/threads.hh"
#include "core/granularity.hh"
#include "mee/nvm_memory.hh"
#include "mee/secure_memory.hh"
#include "obs/manifest.hh"
#include "obs/telemetry.hh"

namespace mgmee::fault {

namespace {

/** splitmix64 step: derives independent per-cell seed streams. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over @p s, so cell seeds are stable per engine *name*. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s)
        h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    return h;
}

SecureMemory::Keys
keysFromSeed(std::uint64_t seed)
{
    Rng rng(mix(seed));
    SecureMemory::Keys keys;
    for (auto &b : keys.aes)
        b = static_cast<std::uint8_t>(rng.next());
    keys.mac = {rng.next(), rng.next()};
    return keys;
}

/**
 * SecureMemory-backed target with a per-engine granularity policy.
 * All four tree-based engines share the same functional protection
 * machinery (that is the point of the model); they differ in which
 * granularities they may configure:
 *
 *  - Full:     any of the four (the mgmee engine);
 *  - Pinned64: fixed 64B lines, no granularity table at all
 *              (conventional and common-counters);
 *  - Capped4K: multi-granular but never coarser than 4KB
 *              (the adaptive-MAC prior).
 */
class SecureTarget : public Target
{
  public:
    enum class Policy
    {
        Full,
        Pinned64,
        Capped4K,
    };

    SecureTarget(const char *name, Policy policy,
                 std::size_t data_bytes, std::uint64_t seed)
        : SecureTarget(name, policy,
                       std::make_unique<SecureMemory>(
                           data_bytes, keysFromSeed(seed)),
                       seed)
    {
    }

    const char *name() const override { return name_; }

    // ---- data plane -------------------------------------------------
    bool
    write(Addr addr, std::span<const std::uint8_t> data) override
    {
        return mem_.write(addr, data) == SecureMemory::Status::Ok;
    }

    bool
    read(Addr addr, std::span<std::uint8_t> out) override
    {
        return mem_.read(addr, out) == SecureMemory::Status::Ok;
    }

    bool
    setGranularity(std::uint64_t chunk, Granularity g) override
    {
        if (policy_ == Policy::Pinned64)
            return false;
        if (policy_ == Policy::Capped4K && g > Granularity::Sub4KB)
            g = Granularity::Sub4KB;
        // The reconfigured unit sits at the chunk base; the rest of
        // the chunk stays fine-grained (matching how the tracker
        // promotes individual stream partitions/subchunks).
        StreamPart sp = kAllFine;
        switch (g) {
          case Granularity::Line64B: sp = kAllFine; break;
          case Granularity::Part512B: sp = StreamPart{1}; break;
          case Granularity::Sub4KB: sp = subchunkMask(0); break;
          case Granularity::Chunk32KB: sp = kAllStream; break;
        }
        mem_.applyStreamPart(chunk, sp);
        return true;
    }

    Granularity
    effectiveGranularity(Addr addr) const override
    {
        return mem_.granularityAt(addr);
    }

    void boundary() override { mem_.flushMetadata(); }

    bool
    rekey() override
    {
        mem_.rekey(keysFromSeed(rekey_rng_.next()));
        return true;
    }

    // ---- attack plane -----------------------------------------------
    bool
    corruptData(Addr addr, unsigned byte_index) override
    {
        mem_.corruptData(addr, byte_index);
        return true;
    }

    bool
    corruptMac(Addr addr) override
    {
        mem_.corruptMac(addr);
        return true;
    }

    bool
    corruptCounter(Addr addr) override
    {
        // Counters at/above the root node live on-chip: untouchable.
        const CounterLoc loc = mem_.addrComputer().counterLocAt(
            addr, mem_.granularityAt(addr));
        if (loc.level >= mem_.layout().geometry().levels())
            return false;
        mem_.corruptCounter(addr);
        return true;
    }

    Snapshot
    capture(Addr addr) override
    {
        const SecureMemory::Replay r = mem_.captureForReplay(addr);
        Snapshot snap;
        snap.addr = r.addr;
        snap.cipher = r.cipher;
        snap.mac = r.mac;
        snap.counter = r.leaf_counter;
        snap.node_mac = r.leaf_node_mac;
        return snap;
    }

    void
    restore(const Snapshot &snap, Addr at) override
    {
        SecureMemory::Replay r;
        r.addr = alignDown(at, kCachelineBytes);
        r.cipher = snap.cipher;
        r.mac = snap.mac;
        r.leaf_counter = snap.counter;
        r.leaf_node_mac = snap.node_mac;
        // SecureMemory::replay settles deferred node-MAC refreshes
        // before overwriting (the Target::restore contract).
        mem_.replay(r);
    }

    bool
    tamperGranTable(std::uint64_t chunk, Addr addr) override
    {
        if (policy_ == Policy::Pinned64)
            return false;  // fixed layout: nothing stored to tamper
        const StreamPart sp = mem_.streamPart(chunk);
        // Flip the layout at the victim: a fine address becomes a
        // stream partition, a promoted one drops back to all-fine.
        const StreamPart tampered =
            granularityOfAddr(sp, addr) == Granularity::Line64B
                ? sp | (StreamPart{1} << partInChunk(addr))
                : kAllFine;
        mem_.tamperStreamPart(chunk, tampered);
        return true;
    }

  protected:
    /** Subclass hook: the engine is injected (NvmTarget passes an
     *  NvmSecureMemory; the stock targets a plain SecureMemory). */
    SecureTarget(const char *name, Policy policy,
                 std::unique_ptr<SecureMemory> mem, std::uint64_t seed)
        : name_(name), policy_(policy), rekey_rng_(mix(seed ^ 0x7e))
        , mem_ptr_(std::move(mem)), mem_(*mem_ptr_)
    {
    }

  private:
    const char *name_;
    Policy policy_;
    Rng rekey_rng_;
    std::unique_ptr<SecureMemory> mem_ptr_;

  protected:
    SecureMemory &mem_;
};

/**
 * Per-line MAC engine with NO integrity tree: the family of related
 * designs that trade the tree walk away.  MAC = H(addr, version,
 * cipher); the Flavor decides where (or whether) versions live:
 *
 *  - treeless-npu:     versioned, versions on-chip (the managed-
 *                      accelerator design of Sec. 2.3);
 *  - treeless-cpu:     versioned, versions stored *off-chip* next to
 *                      the MACs -- which is exactly why a consistent
 *                      rollback of {cipher, MAC, version} passes
 *                      verification there;
 *  - mgx:              versioned + rekeyable; versions are *derived*
 *                      from the application's write schedule (MGX),
 *                      re-derivable on-chip and never stored
 *                      off-chip, so they share the managed variant's
 *                      attack surface.  Key rotation at application
 *                      boundaries is part of the design, so
 *                      stale_rekey applies (and is detected);
 *  - secddr-interface: *unversioned* + rekeyable; the MAC
 *                      authenticates only (addr, cipher) -- the
 *                      link-level integrity of SecDDR.  With no
 *                      freshness input, a consistent {cipher, MAC}
 *                      replay at rest verifies: rollback and
 *                      stale_flush are MISSED by design.
 */
class TreelessTarget final : public Target
{
  public:
    /** Which no-tree design this instance models. */
    struct Flavor
    {
        bool versioned = true; //!< MAC covers a per-line version
        bool managed = false;  //!< versions live on-chip (trusted)
        bool rekeyable = false; //!< supports key rotation
    };

    TreelessTarget(const char *name, Flavor flavor,
                   std::uint64_t seed)
        : name_(name), flavor_(flavor)
        , rekey_rng_(mix(seed ^ 0x7e))
        , otp_(keysFromSeed(seed).aes), mac_(keysFromSeed(seed).mac)
    {
    }

    const char *name() const override { return name_; }

    // ---- data plane -------------------------------------------------
    bool
    write(Addr addr, std::span<const std::uint8_t> data) override
    {
        panic_if(addr % kCachelineBytes ||
                     data.size() % kCachelineBytes,
                 "treeless target: unaligned write");
        // Batched data plane: one makePads() call per tile of lines
        // and one MacBatch for the fresh MACs.  LineState pointers
        // stay valid across try_emplace (unordered_map references
        // are never invalidated by rehash).
        const std::size_t count = data.size() / kCachelineBytes;
        constexpr std::size_t kTile = 64;
        std::array<Addr, kTile> addrs;
        std::array<std::uint64_t, kTile> vers;
        std::array<Pad, kTile> pads;
        std::array<LineState *, kTile> ls;
        for (std::size_t done = 0; done < count;) {
            const std::size_t n = std::min(kTile, count - done);
            for (std::size_t l = 0; l < n; ++l) {
                addrs[l] = addr + (done + l) * kCachelineBytes;
                ls[l] = &line(addrs[l]);
                // Unversioned (secddr-interface): the pad and MAC
                // take no freshness input at all.
                vers[l] = flavor_.versioned ? version(addrs[l]) + 1
                                            : 0;
                setVersion(addrs[l], vers[l]);
            }
            otp_.makePads(addrs.data(), vers.data(), n, pads.data());
            crypto::MacBatch batch = mac_.batch();
            for (std::size_t l = 0; l < n; ++l) {
                const std::uint8_t *src =
                    data.data() + (done + l) * kCachelineBytes;
                for (unsigned b = 0; b < kCachelineBytes; ++b)
                    ls[l]->cipher[b] = src[b] ^ pads[l][b];
                batch.line(addrs[l], vers[l], ls[l]->cipher.data(),
                           &ls[l]->mac);
            }
            batch.flush();
            done += n;
        }
        return true;
    }

    bool
    read(Addr addr, std::span<std::uint8_t> out) override
    {
        panic_if(addr % kCachelineBytes ||
                     out.size() % kCachelineBytes,
                 "treeless target: unaligned read");
        // Batched verify-then-decrypt per tile: the expected MACs
        // drain through one MacBatch, checked in line order (first
        // tampered line still decides the outcome), then one
        // makePads() call decrypts the clean tile.
        const std::size_t count = out.size() / kCachelineBytes;
        constexpr std::size_t kTile = 64;
        std::array<Addr, kTile> addrs;
        std::array<std::uint64_t, kTile> vers;
        std::array<Pad, kTile> pads;
        std::array<Mac, kTile> expect;
        std::array<LineState *, kTile> ls;
        for (std::size_t done = 0; done < count;) {
            const std::size_t n = std::min(kTile, count - done);
            {
                crypto::MacBatch batch = mac_.batch();
                for (std::size_t l = 0; l < n; ++l) {
                    addrs[l] = addr + (done + l) * kCachelineBytes;
                    ls[l] = &line(addrs[l]);
                    vers[l] = version(addrs[l]);
                    batch.line(addrs[l], vers[l],
                               ls[l]->cipher.data(), &expect[l]);
                }
                batch.flush();
            }
            for (std::size_t l = 0; l < n; ++l)
                if (expect[l] != ls[l]->mac)
                    return false;
            otp_.makePads(addrs.data(), vers.data(), n, pads.data());
            for (std::size_t l = 0; l < n; ++l) {
                std::uint8_t *dst =
                    out.data() + (done + l) * kCachelineBytes;
                for (unsigned b = 0; b < kCachelineBytes; ++b)
                    dst[b] = ls[l]->cipher[b] ^ pads[l][b];
            }
            done += n;
        }
        return true;
    }

    bool
    setGranularity(std::uint64_t, Granularity) override
    {
        return false;  // per-line only
    }

    Granularity
    effectiveGranularity(Addr) const override
    {
        return Granularity::Line64B;
    }

    bool
    rekey() override
    {
        if (!flavor_.rekeyable)
            return false;
        // Rotate both keys and re-encrypt/re-MAC every stored line
        // under its unchanged version: a snapshot captured before the
        // rotation carries a MAC under the retired key and can no
        // longer verify.
        const SecureMemory::Keys keys =
            keysFromSeed(rekey_rng_.next());
        OtpGenerator new_otp(keys.aes);
        MacEngine new_mac(keys.mac);
        for (auto &[idx, ls] : lines_) {
            Addr a = static_cast<Addr>(idx) * kCachelineBytes;
            std::uint64_t v = flavor_.versioned ? version(a) : 0;
            Pad pad;
            otp_.makePads(&a, &v, 1, &pad);
            OtpGenerator::applyPad(pad, ls.cipher.data());
            new_otp.makePads(&a, &v, 1, &pad);
            OtpGenerator::applyPad(pad, ls.cipher.data());
            ls.mac = new_mac.lineMac(a, v, ls.cipher.data());
        }
        otp_ = OtpGenerator(keys.aes);
        mac_ = MacEngine(keys.mac);
        return true;
    }

    // ---- attack plane -----------------------------------------------
    bool
    corruptData(Addr addr, unsigned byte_index) override
    {
        line(lineAddr(addr)).cipher[byte_index % kCachelineBytes] ^=
            0x01;
        return true;
    }

    bool
    corruptMac(Addr addr) override
    {
        line(lineAddr(addr)).mac ^= 0x1;
        return true;
    }

    bool
    corruptCounter(Addr addr) override
    {
        // On-chip/derived versions are unreachable; the unversioned
        // flavor has no counter state at all.
        if (!flavor_.versioned || flavor_.managed)
            return false;
        const Addr la = lineAddr(addr);
        setVersion(la, version(la) ^ 0x1);
        return true;
    }

    Snapshot
    capture(Addr addr) override
    {
        const Addr la = lineAddr(addr);
        const LineState &ls = line(la);
        Snapshot snap;
        snap.addr = la;
        snap.cipher = ls.cipher;
        snap.mac = ls.mac;
        // Only off-chip stored versions are capturable; on-chip /
        // derived / nonexistent ones stay 0.
        snap.counter = flavor_.versioned && !flavor_.managed
                           ? version(la)
                           : 0;
        return snap;
    }

    void
    restore(const Snapshot &snap, Addr at) override
    {
        // No deferred metadata here (nothing is lazily refreshed);
        // the restore is the plain off-chip overwrite.
        const Addr la = lineAddr(at);
        LineState &ls = line(la);
        ls.cipher = snap.cipher;
        ls.mac = snap.mac;
        if (flavor_.versioned && !flavor_.managed)
            setVersion(la, snap.counter);
    }

    bool
    tamperGranTable(std::uint64_t, Addr) override
    {
        return false;  // no granularity state exists
    }

  private:
    /** Off-chip per-line state (version only when unmanaged). */
    struct LineState
    {
        std::array<std::uint8_t, kCachelineBytes> cipher{};
        Mac mac = 0;
        std::uint64_t version = 0;
    };

    static Addr
    lineAddr(Addr a)
    {
        return alignDown(a, kCachelineBytes);
    }

    LineState &
    line(Addr la)
    {
        auto [it, fresh] = lines_.try_emplace(lineIndex(la));
        if (fresh) {
            // First touch: zero data at version 0, like a freshly
            // initialised protected region.
            it->second.mac = mac_.lineMac(la, 0,
                                          it->second.cipher.data());
        }
        return it->second;
    }

    std::uint64_t
    version(Addr la)
    {
        if (!flavor_.versioned)
            return 0;
        return flavor_.managed ? onchip_versions_[lineIndex(la)]
                               : line(la).version;
    }

    void
    setVersion(Addr la, std::uint64_t v)
    {
        if (!flavor_.versioned)
            return;
        if (flavor_.managed)
            onchip_versions_[lineIndex(la)] = v;
        else
            line(la).version = v;
    }

    const char *name_;
    Flavor flavor_;
    Rng rekey_rng_;
    OtpGenerator otp_;
    MacEngine mac_;
    std::unordered_map<std::uint64_t, LineState> lines_;
    /** Trusted on-chip version store (managed variants only). */
    std::unordered_map<std::uint64_t, std::uint64_t>
        onchip_versions_;
};

/**
 * The full multi-granular engine with its protected region on
 * persistent memory (mee/nvm_memory.hh): same Policy::Full data and
 * attack planes as SecureTarget, plus the persistence attack surface
 * -- kernel boundaries become ordered persist boundaries, a benign
 * power cycle must recover cleanly, and the torn-persist /
 * stale-image crashes must be rejected by recovery.
 */
class NvmTarget final : public SecureTarget
{
  public:
    NvmTarget(std::size_t data_bytes, std::uint64_t seed,
              NvmSecureMemory::PersistMode mode)
        : SecureTarget("nvm-mgmee", Policy::Full,
                       std::make_unique<NvmSecureMemory>(
                           data_bytes, keysFromSeed(seed), mode),
                       seed)
    {
    }

    bool
    powerCycle() override
    {
        nvm().flushMetadata();  // persist boundary before the cut
        nvm().crashAndRecover();
        return true;
    }

    bool
    crashWith(CrashKind kind) override
    {
        if (kind == CrashKind::TornPersist) {
            nvm().tornCrash();
            return true;
        }
        return nvm().staleReplayCrash();
    }

  private:
    NvmSecureMemory &
    nvm()
    {
        return static_cast<NvmSecureMemory &>(mem_);
    }
};

constexpr const char *kEngines[] = {
    "mgmee",        "conventional", "adaptive-mac",
    "common-counters", "treeless-npu", "treeless-cpu",
    "mgx",          "secddr-interface", "nvm-mgmee",
};

constexpr const char *kCoreEngines[] = {"mgmee", "conventional",
                                        "nvm-mgmee"};

/** Severity rank for aggregation (higher = worse). */
unsigned
severity(Verdict v)
{
    switch (v) {
      case Verdict::FalseAlarm: return 4;
      case Verdict::Missed: return 3;
      case Verdict::Detected: return 2;
      case Verdict::CleanPass: return 1;
      case Verdict::NotApplicable: return 0;
    }
    return 0;
}

/** Matrix rendering of @p v (misses shout). */
const char *
matrixLabel(Verdict v)
{
    switch (v) {
      case Verdict::Detected: return "detected";
      case Verdict::Missed: return "MISSED";
      case Verdict::FalseAlarm: return "FALSE-ALARM";
      case Verdict::CleanPass: return "pass";
      case Verdict::NotApplicable: return "n/a";
    }
    return "?";
}

} // namespace

std::span<const char *const>
allEngines()
{
    return kEngines;
}

std::span<const char *const>
coreEngines()
{
    return kCoreEngines;
}

std::unique_ptr<Target>
makeTarget(const std::string &engine, std::size_t data_bytes,
           std::uint64_t seed)
{
    if (engine == "mgmee")
        return std::make_unique<SecureTarget>(
            "mgmee", SecureTarget::Policy::Full, data_bytes, seed);
    if (engine == "conventional")
        return std::make_unique<SecureTarget>(
            "conventional", SecureTarget::Policy::Pinned64, data_bytes,
            seed);
    if (engine == "adaptive-mac")
        return std::make_unique<SecureTarget>(
            "adaptive-mac", SecureTarget::Policy::Capped4K, data_bytes,
            seed);
    if (engine == "common-counters")
        return std::make_unique<SecureTarget>(
            "common-counters", SecureTarget::Policy::Pinned64,
            data_bytes, seed);
    if (engine == "treeless-npu")
        return std::make_unique<TreelessTarget>(
            "treeless-npu",
            TreelessTarget::Flavor{true, true, false}, seed);
    if (engine == "treeless-cpu")
        return std::make_unique<TreelessTarget>(
            "treeless-cpu",
            TreelessTarget::Flavor{true, false, false}, seed);
    if (engine == "mgx")
        return std::make_unique<TreelessTarget>(
            "mgx", TreelessTarget::Flavor{true, true, true}, seed);
    if (engine == "secddr-interface")
        return std::make_unique<TreelessTarget>(
            "secddr-interface",
            TreelessTarget::Flavor{false, false, true}, seed);
    if (engine == "nvm-mgmee")
        return std::make_unique<NvmTarget>(
            data_bytes, seed,
            config().nvm_persist == "unordered"
                ? NvmSecureMemory::PersistMode::Unordered
                : NvmSecureMemory::PersistMode::WriteAhead);
    return nullptr;
}

Verdict
EngineReport::classVerdict(AttackClass cls) const
{
    Verdict worst = Verdict::NotApplicable;
    for (const CellResult &cell :
         cells[static_cast<unsigned>(cls)]) {
        if (severity(cell.verdict) > severity(worst))
            worst = cell.verdict;
    }
    return worst;
}

Histogram
EngineReport::classLatency(AttackClass cls) const
{
    Histogram merged;
    for (const CellResult &cell : cells[static_cast<unsigned>(cls)])
        merged.merge(cell.latency);
    return merged;
}

std::array<unsigned, 5>
CampaignReport::verdictTotals() const
{
    std::array<unsigned, 5> totals{};
    for (const EngineReport &er : engines)
        for (const auto &row : er.cells)
            for (const CellResult &cell : row)
                if (cell.injections > 0 ||
                    cell.verdict != Verdict::NotApplicable)
                    ++totals[static_cast<unsigned>(cell.verdict)];
    return totals;
}

bool
CampaignReport::coreEnginesFullyDetect() const
{
    for (const EngineReport &er : engines) {
        bool core = false;
        for (const char *name : kCoreEngines)
            core = core || er.engine == name;
        for (const auto &row : er.cells) {
            for (const CellResult &cell : row) {
                // A false alarm is a modelling bug on ANY engine.
                if (cell.verdict == Verdict::FalseAlarm)
                    return false;
                if (core && cell.verdict == Verdict::Missed)
                    return false;
            }
        }
    }
    return true;
}

std::string
CampaignReport::matrixText() const
{
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%-14s", "attack class");
    out += buf;
    for (const EngineReport &er : engines) {
        std::snprintf(buf, sizeof(buf), "  %-15s",
                      er.engine.c_str());
        out += buf;
    }
    out += '\n';
    for (unsigned c = 0; c < kAttackClasses; ++c) {
        const auto cls = static_cast<AttackClass>(c);
        bool ran = false;
        for (const EngineReport &er : engines)
            ran = ran ||
                  er.classVerdict(cls) != Verdict::NotApplicable ||
                  cls == AttackClass::None;
        // A class no engine ran (filtered campaign) is omitted, not
        // reported as n/a.
        bool any_cell = false;
        for (const EngineReport &er : engines)
            for (const CellResult &cell : er.cells[c])
                any_cell = any_cell || cell.injections > 0 ||
                           cell.verdict != Verdict::NotApplicable;
        if (!ran || !any_cell)
            continue;
        std::snprintf(buf, sizeof(buf), "%-14s",
                      attackClassName(cls));
        out += buf;
        for (const EngineReport &er : engines) {
            std::snprintf(buf, sizeof(buf), "  %-15s",
                          matrixLabel(er.classVerdict(cls)));
            out += buf;
        }
        out += '\n';
    }
    return out;
}

void
CampaignReport::fillManifest(obs::Manifest &m) const
{
    m.set("seed", seed);
    m.set("engines", static_cast<unsigned>(engines.size()));
    const auto totals = verdictTotals();
    m.set("cells_detected", totals[0]);
    m.set("cells_missed", totals[1]);
    m.set("cells_false_alarm", totals[2]);
    m.set("cells_clean_pass", totals[3]);
    m.set("core_full_detection", coreEnginesFullyDetect());

    for (const EngineReport &er : engines) {
        for (unsigned c = 0; c < kAttackClasses; ++c) {
            const auto cls = static_cast<AttackClass>(c);
            bool any = false;
            for (const CellResult &cell : er.cells[c])
                any = any || cell.injections > 0 ||
                      cell.verdict != Verdict::NotApplicable;
            if (!any)
                continue;  // class not part of this campaign
            m.set("matrix." + er.engine + "." + attackClassName(cls),
                  verdictName(er.classVerdict(cls)));
            for (const CellResult &cell : er.cells[c]) {
                const std::string key =
                    "cell." + er.engine + "." + attackClassName(cls) +
                    "." + granularityName(cell.gran);
                m.set(key, verdictName(cell.verdict));
                m.set(key + ".injections", cell.injections);
            }
            // Detection latency per (engine, class), merged across
            // granularities.  Tick units: deterministic for any
            // MGMEE_THREADS, unlike the wall figures.
            const Histogram latency = er.classLatency(cls);
            if (latency.count()) {
                m.addHistogram(
                    "latency." + er.engine + "." +
                        attackClassName(cls),
                    latency);
            }
        }
    }
}

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    std::vector<std::string> engines(cfg.engines);
    if (engines.empty())
        engines.assign(kEngines, kEngines + std::size(kEngines));
    std::vector<AttackClass> classes(cfg.classes);
    if (classes.empty())
        for (unsigned c = 0; c < kAttackClasses; ++c)
            classes.push_back(static_cast<AttackClass>(c));

    auto &reg = StatRegistry::instance();
    CampaignReport report;
    report.seed = cfg.seed;

    // Preallocate every engine's report so workers write disjoint
    // cell slots; unknown engines are dropped up front.
    for (const std::string &engine : engines) {
        if (!makeTarget(engine, kChunkBytes, 1)) {
            warn("attack campaign: unknown engine '%s' skipped",
                 engine.c_str());
            continue;
        }
        EngineReport er;
        er.engine = engine;
        for (unsigned c = 0; c < kAttackClasses; ++c)
            for (unsigned g = 0; g < kGranularities; ++g) {
                er.cells[c][g].cls = static_cast<AttackClass>(c);
                er.cells[c][g].gran = static_cast<Granularity>(g);
            }
        report.engines.push_back(std::move(er));
    }

    /** One (engine, class, granularity) cell of the matrix. */
    struct CellTask
    {
        std::size_t engine;
        AttackClass cls;
        unsigned gran;
    };
    std::vector<CellTask> cells;
    for (std::size_t e = 0; e < report.engines.size(); ++e)
        for (const AttackClass cls : classes)
            for (unsigned g = 0; g < kGranularities; ++g)
                cells.push_back(CellTask{e, cls, g});

    // Every cell builds its own target from an independent seed
    // stream, so cells parallelise embarrassingly; the report slots
    // are disjoint and the registry counters are sharded per thread.
    // Results are identical for any thread count.
    ShardedCounter &ctr_cells = reg.sharded("fault", "cells");
    ShardedCounter &ctr_inj = reg.sharded("fault", "injections");
    ShardedCounter &ctr_det = reg.sharded("fault", "detected");
    ShardedCounter &ctr_miss = reg.sharded("fault", "missed");
    ShardedCounter &ctr_fa = reg.sharded("fault", "false_alarms");
    ShardedCounter &ctr_ticks = reg.sharded("fault", "ticks");
    std::atomic<std::size_t> next{0};
    auto work = [&] {
        for (std::size_t i = next.fetch_add(1); i < cells.size();
             i = next.fetch_add(1)) {
            const CellTask &task = cells[i];
            const std::string &engine =
                report.engines[task.engine].engine;
            if (obs::telemetryEnabled()) {
                obs::telemetryNote(
                    engine + "/" + attackClassName(task.cls) + "/" +
                    granularityName(
                        static_cast<Granularity>(task.gran)));
            }
            const std::uint64_t cell_seed =
                mix(cfg.seed ^ hashName(engine) ^
                    (static_cast<std::uint64_t>(task.cls) << 32) ^
                    (std::uint64_t{task.gran} << 40));
            auto target =
                makeTarget(engine, cfg.data_bytes, cell_seed);
            const CellResult cell = runAttack(
                *target, task.cls,
                static_cast<Granularity>(task.gran), cell_seed);
            report.engines[task.engine]
                .cells[static_cast<unsigned>(task.cls)][task.gran] =
                cell;

            ctr_cells.add(1);
            ctr_inj.add(cell.injections);
            ctr_det.add(cell.detected);
            ctr_miss.add(cell.missed);
            ctr_fa.add(cell.false_alarms);
            ctr_ticks.add(cell.ticks);
        }
    };
    const unsigned threads = std::max<unsigned>(
        1,
        std::min<std::size_t>(
            cfg.threads ? cfg.threads : envThreads(),
            cells.size()));
    std::vector<std::thread> pool;
    for (unsigned t = 1; t < threads; ++t)
        pool.emplace_back(work);
    work();
    for (std::thread &t : pool)
        t.join();
    return report;
}

} // namespace mgmee::fault
