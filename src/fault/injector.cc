#include "fault/injector.hh"

#include <chrono>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/granularity.hh"
#include "obs/trace.hh"

namespace mgmee::fault {

const char *
attackClassName(AttackClass cls)
{
    switch (cls) {
      case AttackClass::None: return "clean";
      case AttackClass::DataFlip: return "data_flip";
      case AttackClass::MacFlip: return "mac_flip";
      case AttackClass::CounterFlip: return "counter_flip";
      case AttackClass::Rollback: return "rollback";
      case AttackClass::Splice: return "splice";
      case AttackClass::GranTable: return "gran_table";
      case AttackClass::StaleSwitch: return "stale_switch";
      case AttackClass::StaleRekey: return "stale_rekey";
      case AttackClass::StaleFlush: return "stale_flush";
      case AttackClass::PowerCut: return "power_cut";
      case AttackClass::StalePersist: return "stale_persist";
    }
    return "?";
}

std::optional<AttackClass>
parseAttackClass(const char *name)
{
    for (unsigned c = 0; c < kAttackClasses; ++c) {
        const auto cls = static_cast<AttackClass>(c);
        if (std::strcmp(name, attackClassName(cls)) == 0)
            return cls;
    }
    return std::nullopt;
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Detected: return "detected";
      case Verdict::Missed: return "missed";
      case Verdict::FalseAlarm: return "false_alarm";
      case Verdict::CleanPass: return "clean_pass";
      case Verdict::NotApplicable: return "n/a";
    }
    return "?";
}

namespace {

/** One attack run: the target, its RNG stream, and the tally.
 *
 *  Data-plane operations go through the wrappers below, which
 *  advance a deterministic tick clock (one tick per 64B line moved;
 *  fixed costs for boundary/switch/rekey).  The clock stamps the
 *  FaultInject/FaultVerdict obs events and feeds the
 *  inject->verdict detection-latency histogram, and depends only on
 *  the script and seed -- never on scheduling -- so campaign
 *  latency percentiles are bit-identical across MGMEE_THREADS. */
struct Script
{
    Target &target;
    Rng rng;
    CellResult cell;
    std::uint64_t inject_tick = 0;
    bool inject_pending = false;

    Script(Target &t, AttackClass cls, Granularity gran,
           std::uint64_t seed)
        : target(t), rng(seed)
    {
        cell.cls = cls;
        cell.gran = gran;
    }

    /** Advance the deterministic script clock. */
    void tick(std::uint64_t n) { cell.ticks += n; }

    // ---- tick-metered data-plane wrappers ---------------------------
    bool
    write(Addr addr, std::span<const std::uint8_t> data)
    {
        tick(data.size() / kCachelineBytes);
        return target.write(addr, data);
    }

    bool
    read(Addr addr, std::span<std::uint8_t> out)
    {
        tick(out.size() / kCachelineBytes);
        return target.read(addr, out);
    }

    bool
    setGranularity(std::uint64_t chunk, Granularity g)
    {
        tick(4);
        return target.setGranularity(chunk, g);
    }

    void
    boundary()
    {
        tick(8);
        target.boundary();
    }

    bool
    rekey()
    {
        tick(32);
        return target.rekey();
    }

    /** Pseudo-random data pattern for one protection unit. */
    std::vector<std::uint8_t>
    pattern(std::size_t bytes)
    {
        std::vector<std::uint8_t> v(bytes);
        for (std::size_t i = 0; i < bytes; i += 8) {
            const std::uint64_t word = rng.next();
            std::memcpy(v.data() + i,
                        &word,
                        std::min<std::size_t>(8, bytes - i));
        }
        return v;
    }

    /** Clean read that must pass; any alarm here is a false alarm. */
    bool
    readClean(Addr addr, std::size_t bytes)
    {
        std::vector<std::uint8_t> out(bytes);
        if (read(addr, out))
            return true;
        ++cell.false_alarms;
        return false;
    }

    /**
     * Read back through the engine after an injection, record the
     * verdict for that site, and close out the inject->verdict
     * detection-latency sample in script ticks.
     */
    void
    checkDetected(Addr addr, std::size_t bytes)
    {
        std::vector<std::uint8_t> out(bytes);
        const bool clean = read(addr, out);
        if (inject_pending) {
            cell.latency.record(cell.ticks - inject_tick);
            inject_pending = false;
        }
        if (clean)
            ++cell.missed;
        else
            ++cell.detected;
    }

    /** Record one injection (for the trace and the tally). */
    void
    injected(Addr addr)
    {
        ++cell.injections;
        inject_tick = cell.ticks;
        inject_pending = true;
        OBS_EVENT(obs::EventKind::FaultInject, cell.ticks, addr,
                  cell.injections,
                  static_cast<std::uint8_t>(cell.cls));
    }

    /**
     * Initialise chunks [first, first+count) with random data and
     * configure @p gran_chunks of them to the cell's granularity.
     * Returns false (false alarm) if the engine flags its own data.
     */
    bool
    setup(std::uint64_t first, unsigned count, unsigned gran_chunks)
    {
        for (unsigned c = 0; c < count; ++c) {
            const Addr base = (first + c) * kChunkBytes;
            if (!write(base, pattern(kChunkBytes))) {
                ++cell.false_alarms;
                return false;
            }
        }
        for (unsigned c = 0; c < gran_chunks; ++c)
            setGranularity(first + c, cell.gran);
        boundary();
        for (unsigned c = 0; c < count; ++c) {
            if (!readClean((first + c) * kChunkBytes, kChunkBytes))
                return false;
        }
        return true;
    }

    /**
     * Attacker-chosen victim line inside the protection unit at the
     * base of @p chunk (always inside the reconfigured unit even when
     * the engine capped or refused the requested granularity).
     */
    Addr
    victimLine(std::uint64_t chunk)
    {
        const Addr base = chunk * kChunkBytes;
        const Granularity g = target.effectiveGranularity(base);
        const std::uint64_t lines = unitLines(g);
        return base + rng.below(lines) * kCachelineBytes;
    }

    /** Bytes of the protection unit containing @p addr. */
    std::size_t
    unitBytes(Addr addr) const
    {
        return granularityBytes(target.effectiveGranularity(addr));
    }

    /** Base of the protection unit containing @p addr. */
    Addr
    unitOf(Addr addr) const
    {
        return unitBase(addr, target.effectiveGranularity(addr));
    }
};

void
runClean(Script &s)
{
    if (!s.setup(0, 2, 2))
        return;
    // Exercise the paths an attack cell would: rewrite, boundary
    // flush, granularity round-trip, rekey -- nothing may alarm.
    const Addr victim = s.victimLine(0);
    const Addr ubase = s.unitOf(victim);
    if (!s.write(ubase, s.pattern(s.unitBytes(victim)))) {
        ++s.cell.false_alarms;
        return;
    }
    s.boundary();
    if (!s.readClean(0, kChunkBytes))
        return;
    s.setGranularity(0, Granularity::Line64B);
    s.setGranularity(0, s.cell.gran);
    if (!s.readClean(0, kChunkBytes))
        return;
    if (s.rekey())
        s.readClean(0, kChunkBytes);
    // Persistent engines additionally survive a benign power cycle:
    // persist, drop volatile state, recover -- still no alarms.
    if (s.target.powerCycle()) {
        s.tick(64);
        s.readClean(0, kChunkBytes);
    }
}

void
runDataFlip(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    const unsigned byte = static_cast<unsigned>(
        s.rng.below(kCachelineBytes));
    if (!s.target.corruptData(victim, byte))
        return;
    s.injected(victim);
    s.checkDetected(s.unitOf(victim), s.unitBytes(victim));
}

void
runMacFlip(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    if (!s.target.corruptMac(victim))
        return;
    s.injected(victim);
    s.checkDetected(s.unitOf(victim), s.unitBytes(victim));
}

void
runCounterFlip(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    if (!s.target.corruptCounter(victim))
        return;  // counter is on-chip (trusted) -> not applicable
    s.injected(victim);
    s.checkDetected(s.unitOf(victim), s.unitBytes(victim));
}

void
runRollback(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    const Addr ubase = s.unitOf(victim);
    const std::size_t ubytes = s.unitBytes(victim);
    const Target::Snapshot stale = s.target.capture(victim);
    // Let the protected state move on several versions...
    for (unsigned v = 0; v < 3; ++v) {
        if (!s.write(ubase, s.pattern(ubytes))) {
            ++s.cell.false_alarms;
            return;
        }
    }
    s.boundary();
    // ...then roll every off-chip byte back to the consistent stale
    // snapshot.
    s.target.restore(stale, victim);
    s.injected(victim);
    s.checkDetected(ubase, ubytes);
}

void
runSplice(Script &s)
{
    if (!s.setup(0, 2, 2))
        return;
    // Two individually-valid units in different chunks; relocate the
    // second one's off-chip state onto the first's address.
    const Addr victim = s.victimLine(0);
    const Addr donor = victim + kChunkBytes;
    const Target::Snapshot snap = s.target.capture(donor);
    s.target.restore(snap, victim);
    s.injected(victim);
    s.checkDetected(s.unitOf(victim), s.unitBytes(victim));
}

void
runGranTable(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    if (!s.target.tamperGranTable(0, victim))
        return;  // engine has no granularity table
    s.injected(victim);
    // The engine now believes the attacker's layout; reading the
    // victim through it must still fail (wrong counters/MAC slots).
    s.checkDetected(victim, kCachelineBytes);
}

void
runStaleSwitch(Script &s)
{
    if (s.cell.gran == Granularity::Line64B) {
        // A switch needs two distinct granularities; the 64B cell has
        // nothing to promote from.
        return;
    }

    // Promote boundary: capture the fine-grained image, promote the
    // chunk (re-encrypts under a shared counter), replay the stale
    // fine image.
    if (!s.setup(0, 1, 0))  // chunk 0 stays fine-grained
        return;
    // The victim must sit inside the region the switch will cover:
    // every target's promoted unit starts at the chunk base, so a
    // line in partition 0 is covered at any requested granularity
    // (even when the engine caps the request, e.g. Adaptive at 4KB).
    const Addr fine_victim =
        s.rng.below(kLinesPerPartition) * kCachelineBytes;
    const Target::Snapshot stale_fine = s.target.capture(fine_victim);
    if (!s.setGranularity(0, s.cell.gran))
        return;  // engine cannot switch -> not applicable
    s.boundary();
    if (!s.readClean(0, kChunkBytes))
        return;
    s.target.restore(stale_fine, fine_victim);
    s.injected(fine_victim);
    s.checkDetected(s.unitOf(fine_victim), s.unitBytes(fine_victim));

    // Demote boundary: capture the coarse image, demote back to
    // fine, replay the stale coarse image.
    if (!s.setup(1, 1, 0))
        return;
    if (!s.setGranularity(1, s.cell.gran))
        return;
    s.boundary();
    const Addr coarse_victim = s.victimLine(1);
    const Target::Snapshot stale_coarse =
        s.target.capture(coarse_victim);
    s.setGranularity(1, Granularity::Line64B);
    s.boundary();
    if (!s.readClean(kChunkBytes, kChunkBytes))
        return;
    s.target.restore(stale_coarse, coarse_victim);
    s.injected(coarse_victim);
    s.checkDetected(s.unitOf(coarse_victim),
                    s.unitBytes(coarse_victim));
}

void
runStaleRekey(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    const Target::Snapshot stale = s.target.capture(victim);
    if (!s.rekey())
        return;  // engine has no key-rotation mechanism
    if (!s.readClean(0, kChunkBytes))
        return;
    s.target.restore(stale, victim);
    s.injected(victim);
    s.checkDetected(s.unitOf(victim), s.unitBytes(victim));
}

void
runStaleFlush(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    const Addr ubase = s.unitOf(victim);
    const std::size_t ubytes = s.unitBytes(victim);
    const Target::Snapshot stale = s.target.capture(victim);
    // Dirty the path -- lazy engines now hold deferred node-MAC
    // refreshes -- then restore the stale image with the lazy window
    // still open (no boundary in between).  The restore hook must
    // settle the pending refreshes BEFORE overwriting; an engine
    // that instead recomputed them from the rolled-back counters
    // would launder the replay into a valid MAC chain and this cell
    // flips to Missed.
    if (!s.write(ubase, s.pattern(ubytes))) {
        ++s.cell.false_alarms;
        return;
    }
    s.target.restore(stale, victim);
    s.injected(victim);
    s.checkDetected(ubase, ubytes);
}

void
runPowerCut(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    const Addr ubase = s.unitOf(victim);
    const std::size_t ubytes = s.unitBytes(victim);
    // Move the unit forward so the next persist epoch has in-flight
    // updates to tear...
    if (!s.write(ubase, s.pattern(ubytes))) {
        ++s.cell.false_alarms;
        return;
    }
    // ...then cut power mid-persist: the new ciphertext lands
    // in-place but the write-ahead commit record is destroyed, so
    // recovery comes back with data and metadata from different
    // epochs.  Reads through the recovered engine must fail closed.
    if (!s.target.crashWith(Target::CrashKind::TornPersist))
        return;  // engine has no persistence domain
    s.tick(64);  // recovery replay
    s.injected(victim);
    s.checkDetected(ubase, ubytes);
}

void
runStalePersist(Script &s)
{
    if (!s.setup(0, 1, 1))
        return;
    const Addr victim = s.victimLine(0);
    const Addr ubase = s.unitOf(victim);
    const std::size_t ubytes = s.unitBytes(victim);
    // Commit a newer persist epoch past the one setup() left behind...
    if (!s.write(ubase, s.pattern(ubytes))) {
        ++s.cell.false_alarms;
        return;
    }
    s.boundary();
    if (!s.readClean(ubase, ubytes))
        return;
    // ...then power-cut and replay the older committed epoch
    // wholesale (image + log).  The tamper-proof persistent anchor
    // still names the newer epoch, so recovery must reject the stale
    // image: reads of the rolled-back unit fail verification.
    if (!s.target.crashWith(Target::CrashKind::StaleImage))
        return;  // engine has no persistence domain
    s.tick(64);  // recovery replay
    s.injected(victim);
    s.checkDetected(ubase, ubytes);
}

} // namespace

CellResult
runAttack(Target &target, AttackClass cls, Granularity gran,
          std::uint64_t seed)
{
    const auto wall_start = std::chrono::steady_clock::now();
    Script s(target, cls, gran, seed);
    switch (cls) {
      case AttackClass::None: runClean(s); break;
      case AttackClass::DataFlip: runDataFlip(s); break;
      case AttackClass::MacFlip: runMacFlip(s); break;
      case AttackClass::CounterFlip: runCounterFlip(s); break;
      case AttackClass::Rollback: runRollback(s); break;
      case AttackClass::Splice: runSplice(s); break;
      case AttackClass::GranTable: runGranTable(s); break;
      case AttackClass::StaleSwitch: runStaleSwitch(s); break;
      case AttackClass::StaleRekey: runStaleRekey(s); break;
      case AttackClass::StaleFlush: runStaleFlush(s); break;
      case AttackClass::PowerCut: runPowerCut(s); break;
      case AttackClass::StalePersist: runStalePersist(s); break;
    }

    CellResult &cell = s.cell;
    if (cell.false_alarms > 0)
        cell.verdict = Verdict::FalseAlarm;
    else if (cell.missed > 0)
        cell.verdict = Verdict::Missed;
    else if (cell.injections > 0)
        cell.verdict = Verdict::Detected;
    else if (cls == AttackClass::None)
        cell.verdict = Verdict::CleanPass;
    else
        cell.verdict = Verdict::NotApplicable;

    cell.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    // cycle = final script tick, addr = cell wall nanos: ticks keep
    // the stream deterministic, the addr field carries the only
    // wall-clock figure the trace needs.
    OBS_EVENT(obs::EventKind::FaultVerdict, cell.ticks, cell.wall_ns,
              static_cast<std::uint32_t>(cell.verdict),
              static_cast<std::uint8_t>(cls));
    return cell;
}

} // namespace mgmee::fault
