/**
 * @file
 * Fault-injection engine: parameterized attacks against the off-chip
 * state of a functional protection engine, with per-attack verdicts.
 *
 * The paper's security argument (Sec. 2.5) is that any tampering of
 * data, counters, or MACs is detected at every granularity and across
 * granularity switches.  This module makes that claim executable: a
 * `Target` adapter exposes the off-chip attack surface of one engine
 * (write/read on the data plane; corrupt/capture/restore on the
 * attack plane), and `runAttack` drives one scripted attack class
 * against it -- injecting at attacker-chosen sites, then reading back
 * through the engine and recording whether verification flagged the
 * tamper.
 *
 * The scripts model only physically realizable attacks: every
 * injection point operates on the *written-back* off-chip image (the
 * restore/corrupt hooks settle deferred node-MAC refreshes first,
 * mirroring hardware where pending metadata lives on-chip until
 * written back).  `AttackClass::StaleFlush` exists precisely to guard
 * that discipline: it restores a stale image while lazy MAC refreshes
 * are pending, which would be laundered into a valid MAC chain if an
 * engine ever refreshed dirty node MACs from attacker-reachable
 * counters.
 *
 * Campaign sweeping (attack x granularity x engine) lives in
 * fault/campaign.hh; this header is the single-cell machinery.
 */

#ifndef MGMEE_FAULT_INJECTOR_HH
#define MGMEE_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/mac.hh"

namespace mgmee::fault {

/** Attack classes; values are stable (trace arg0 / manifest keys). */
enum class AttackClass : std::uint8_t
{
    None = 0,        //!< clean control run (false-alarm check)
    DataFlip = 1,    //!< flip a ciphertext byte of a stored line
    MacFlip = 2,     //!< flip a bit of the stored MAC of a unit
    CounterFlip = 3, //!< flip a stored (off-chip) counter value
    Rollback = 4,    //!< replay a consistent stale off-chip snapshot
    Splice = 5,      //!< relocate a valid off-chip block to another addr
    GranTable = 6,   //!< tamper the stored granularity-table state
    StaleSwitch = 7, //!< replay stale images across promote AND demote
    StaleRekey = 8,  //!< replay a pre-rekey snapshot after key rotation
    StaleFlush = 9,  //!< restore while lazy node-MAC refreshes pend
    PowerCut = 10,   //!< tear the persist ordering at a power cut
    StalePersist = 11, //!< replay an older committed persist epoch
};

constexpr unsigned kAttackClasses = 12;

/** Stable manifest/trace name of @p cls ("data_flip", ...). */
const char *attackClassName(AttackClass cls);

/** Parse an attackClassName back; nullopt if unknown. */
std::optional<AttackClass> parseAttackClass(const char *name);

/** Outcome of one campaign cell. */
enum class Verdict : std::uint8_t
{
    Detected = 0,      //!< every injected tamper was flagged
    Missed = 1,        //!< at least one tamper read back as clean
    FalseAlarm = 2,    //!< a clean access was flagged
    CleanPass = 3,     //!< control run, no alarms (None class only)
    NotApplicable = 4, //!< engine has no such state/mechanism
};

/** Stable name of @p v ("detected", ...). */
const char *verdictName(Verdict v);

/**
 * Off-chip attack surface of one functional protection engine.
 *
 * Data-plane calls go through the engine (verification included) and
 * return true when the engine reported integrity OK.  Attack-plane
 * calls mutate the simulated off-chip state behind the engine's back
 * and return false when the engine simply has no such attackable
 * state (the campaign records those cells as NotApplicable).
 */
class Target
{
  public:
    virtual ~Target() = default;

    virtual const char *name() const = 0;

    // ---- data plane -------------------------------------------------
    /** Encrypt+authenticate @p data at @p addr; true on Status Ok. */
    virtual bool write(Addr addr,
                       std::span<const std::uint8_t> data) = 0;
    /** Verify+decrypt into @p out; true when verification passed. */
    virtual bool read(Addr addr, std::span<std::uint8_t> out) = 0;
    /**
     * Reconfigure @p chunk to protection granularity @p g.  False
     * when the engine cannot (fixed-granularity engines); the engine
     * then keeps its native layout and the caller must consult
     * effectiveGranularity().
     */
    virtual bool setGranularity(std::uint64_t chunk, Granularity g) = 0;
    /** Granularity actually protecting @p addr right now. */
    virtual Granularity effectiveGranularity(Addr addr) const = 0;
    /** Kernel/phase boundary: settle deferred metadata write-backs. */
    virtual void boundary() {}
    /** Rotate keys (data preserved); false if unsupported. */
    virtual bool rekey() { return false; }
    /**
     * Benign power cycle: persist, lose all volatile state, recover
     * from the persisted image.  False when the engine has no
     * persistence domain (DRAM-resident engines); a persistent engine
     * must come back verifying cleanly -- any alarm after a benign
     * cycle is a false alarm.
     */
    virtual bool powerCycle() { return false; }

    // ---- persistence attack plane -----------------------------------
    /** How an adversarial crash presents the persisted image. */
    enum class CrashKind : std::uint8_t
    {
        /** Power cut mid-persist with the ordering torn: in-place
         *  data updated, the write-ahead commit record destroyed. */
        TornPersist = 0,
        /** An older *committed* persist epoch replayed wholesale
         *  (image + log) after the cut. */
        StaleImage = 1,
    };

    /**
     * Crash the engine with the persisted state tampered as @p kind
     * and run recovery.  False when the engine has no persistence
     * domain (the campaign records those cells as NotApplicable).
     * After a true return, reads of state covered by the torn/stale
     * window must fail verification.
     */
    virtual bool crashWith(CrashKind kind)
    {
        (void)kind;
        return false;
    }

    // ---- attack plane -----------------------------------------------
    /** Complete off-chip state of one 64B line, as an attacker sees
     *  it after write-back (ciphertext, unit MAC, counter, node MAC;
     *  fields an engine does not store off-chip stay zero). */
    struct Snapshot
    {
        Addr addr = 0;
        std::array<std::uint8_t, kCachelineBytes> cipher{};
        Mac mac = 0;
        std::uint64_t counter = 0;
        Mac node_mac = 0;
    };

    /** Flip one ciphertext byte of the line at @p addr. */
    virtual bool corruptData(Addr addr, unsigned byte_index) = 0;
    /** Flip a bit of the stored MAC protecting @p addr. */
    virtual bool corruptMac(Addr addr) = 0;
    /** Flip a stored counter bit; false when the counter protecting
     *  @p addr is on-chip (trusted, unreachable). */
    virtual bool corruptCounter(Addr addr) = 0;
    /** Save everything an off-chip attacker could save about the
     *  line at @p addr (flushes pending metadata first). */
    virtual Snapshot capture(Addr addr) = 0;
    /**
     * Write @p snap's off-chip state back at address @p at (the
     * replay attack; @p at != snap.addr is a splice/relocation).
     * Implementations MUST settle deferred metadata refreshes before
     * overwriting -- an attacker only ever tampers with the
     * written-back image, and an engine that recomputed pending node
     * MACs from attacker-modified counters would launder the tamper
     * into a valid MAC chain.  AttackClass::StaleFlush exercises
     * exactly this window.
     */
    virtual void restore(const Snapshot &snap, Addr at) = 0;
    /** Rewrite the stored granularity-table state of @p chunk to a
     *  layout differing at @p addr; false when no table exists. */
    virtual bool tamperGranTable(std::uint64_t chunk, Addr addr) = 0;
};

/** Result of one (attack class, granularity) cell on one target. */
struct CellResult
{
    AttackClass cls = AttackClass::None;
    Granularity gran = Granularity::Line64B;
    Verdict verdict = Verdict::NotApplicable;
    unsigned injections = 0;   //!< tampers injected
    unsigned detected = 0;     //!< tampers flagged by the engine
    unsigned missed = 0;       //!< tampers that read back clean
    unsigned false_alarms = 0; //!< clean accesses that were flagged

    /**
     * inject->verdict latency per injection, in *script ticks*: a
     * deterministic clock every data-plane operation advances (one
     * tick per 64B line moved; fixed costs for boundary, granularity
     * switches and rekeys), so the histogram is bit-identical across
     * MGMEE_THREADS settings.  Wall time is tracked separately.
     */
    Histogram latency;
    std::uint64_t ticks = 0;   //!< script clock at the final verdict
    std::uint64_t wall_ns = 0; //!< wall time of the whole cell
};

/**
 * Run one scripted attack of class @p cls against @p target with the
 * region configured (where supported) to granularity @p gran.
 * Deterministic in @p seed: site selection and data patterns come
 * from one xoshiro stream.  Emits an obs FaultInject event per
 * injection and one FaultVerdict event for the cell.
 *
 * The target must be fresh (the scripts initialise the first four
 * 32KB chunks of its region and assume no prior tampering).
 */
CellResult runAttack(Target &target, AttackClass cls, Granularity gran,
                     std::uint64_t seed);

} // namespace mgmee::fault

#endif // MGMEE_FAULT_INJECTOR_HH
