#include "cache/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace mgmee {

Cache::Cache(std::string name, std::size_t size_bytes, unsigned ways,
             std::size_t line_bytes)
    : name_(std::move(name)), line_bytes_(line_bytes), ways_(ways)
{
    fatal_if(ways == 0, "%s: zero-way cache", name_.c_str());
    fatal_if(size_bytes % (line_bytes * ways) != 0,
             "%s: size %zu not divisible by ways*line", name_.c_str(),
             size_bytes);
    num_sets_ = size_bytes / (line_bytes * ways);
    fatal_if(!isPowerOfTwo(num_sets_),
             "%s: set count %zu not a power of two", name_.c_str(),
             num_sets_);
    sets_.resize(num_sets_ * ways_);
}

CacheResult
Cache::access(Addr addr, bool is_write)
{
    const Addr tag = lineAddr(addr);
    Line *set = &sets_[setIndex(addr) * ways_];
    ++stamp_;

    Line *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            line.lru = stamp_;
            line.dirty |= is_write;
            ++hits_;
            return {true, false, 0};
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++misses_;
    CacheResult res;
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.victim_addr = victim->tag;
        ++writebacks_;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = stamp_;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const Addr tag = lineAddr(addr);
    const Line *set = &sets_[setIndex(addr) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr tag = lineAddr(addr);
    Line *set = &sets_[setIndex(addr) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == tag) {
            const bool was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : sets_) {
        if (line.valid && line.dirty)
            ++writebacks_;
        line.valid = false;
        line.dirty = false;
    }
}

} // namespace mgmee
