/**
 * @file
 * Generic tag-only set-associative cache model with LRU replacement
 * and write-back semantics.
 *
 * Used for the on-chip security metadata cache (8KB), the MAC cache
 * (4KB), the subtree-root cache of the BMF scheme, and coarse device
 * LLC filtering.  Only tags and dirty bits are modelled; payloads live
 * in the functional layer.
 */

#ifndef MGMEE_CACHE_CACHE_HH
#define MGMEE_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mgmee {

/** Outcome of a cache access. */
struct CacheResult
{
    bool hit = false;            //!< tag present before the access
    bool writeback = false;      //!< a dirty victim was evicted
    Addr victim_addr = 0;        //!< line address of the dirty victim
};

/** Set-associative, LRU, write-back, tag-only cache. */
class Cache
{
  public:
    /**
     * @param name       stat prefix
     * @param size_bytes total capacity; must be ways*line_bytes*2^k
     * @param ways       associativity
     * @param line_bytes line size (default 64B)
     */
    Cache(std::string name, std::size_t size_bytes, unsigned ways,
          std::size_t line_bytes = kCachelineBytes);

    /**
     * Access @p addr; on miss the line is filled (allocate-on-miss)
     * and an LRU victim may be written back.
     * @param is_write marks the line dirty on hit or fill.
     */
    CacheResult access(Addr addr, bool is_write);

    /** Probe without changing any state. */
    bool contains(Addr addr) const;

    /**
     * Drop @p addr from the cache if present; returns true if the
     * dropped line was dirty.  Used when metadata is restructured
     * (granularity switch invalidates promoted/demoted lines).
     */
    bool invalidate(Addr addr);

    /** Invalidate every line; dirty lines are counted as writebacks. */
    void flush();

    // Stats accessors.
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    void resetStats() { hits_ = misses_ = writebacks_ = 0; }

    const std::string &name() const { return name_; }
    std::size_t sizeBytes() const { return sets_.size() / ways_ *
                                           ways_ * line_bytes_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;   //!< last-touch stamp
    };

    Addr lineAddr(Addr a) const { return a / line_bytes_ * line_bytes_; }
    std::size_t setIndex(Addr a) const
    {
        return (a / line_bytes_) % num_sets_;
    }

    std::string name_;
    std::size_t line_bytes_;
    unsigned ways_;
    std::size_t num_sets_;
    std::vector<Line> sets_;     //!< num_sets_*ways_ lines, row-major
    std::uint64_t stamp_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace mgmee

#endif // MGMEE_CACHE_CACHE_HH
