#include "workloads/registry.hh"

#include "common/logging.hh"

namespace mgmee {

std::vector<WorkloadSpec>
allWorkloads()
{
    std::vector<WorkloadSpec> all;
    for (const auto &w : cpuWorkloads())
        all.push_back(w);
    for (const auto &w : gpuWorkloads())
        all.push_back(w);
    for (const auto &w : npuWorkloads())
        all.push_back(w);
    return all;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto *table :
         {&cpuWorkloads(), &gpuWorkloads(), &npuWorkloads()}) {
        for (const auto &w : *table) {
            if (w.name == name)
                return w;
        }
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace mgmee
