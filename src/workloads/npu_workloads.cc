/**
 * @file
 * NPU workload models (Table 4): ncf, dlrm, alex, sfrnn, plus the
 * real-world Yolo-Tiny (yt, Table 6).
 *
 * NPUs move software-managed tiles: bursts of back-to-back DMA beats
 * followed by long systolic-array compute gaps.  alex is the
 * coarsest (74.1% of requests in 32KB chunks, Sec. 3.1); ncf/dlrm are
 * coarse but light (embedding-dominated), which is why the paper
 * classifies them into fine-leaning scenarios.
 */

#include "workloads/registry.hh"

namespace mgmee {

const std::vector<WorkloadSpec> &
npuWorkloads()
{
    static const std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> v;

        WorkloadSpec base;
        base.kind = DeviceKind::NPU;
        base.window = 16;
        base.stream_req_bytes = 1024;   // DMA beat
        base.fine_episode_lines = 6;
        base.footprint = 16ull << 20;
        base.ops = 3000;
        base.gap_line = 1;

        // NCF recommendation: coarse tiles but SMALL traffic
        // (embedding gathers between long gaps).
        WorkloadSpec ncf = base;
        ncf.name = "ncf";
        ncf.r64 = 0.22; ncf.r512 = 0.06; ncf.r4k = 0.47; ncf.r32k = 0.25;
        ncf.gap_fine = 147;
        ncf.gap_episode = 8910;
        ncf.write_frac = 0.3;
        ncf.ops = 1500;
        ncf.partial_frac = 0.35;
        v.push_back(ncf);

        // DLRM: similar shape to ncf, slightly coarser.
        WorkloadSpec dlrm = base;
        dlrm.name = "dlrm";
        dlrm.r64 = 0.20; dlrm.r512 = 0.05; dlrm.r4k = 0.45;
        dlrm.r32k = 0.30;
        dlrm.gap_fine = 138;
        dlrm.gap_episode = 7920;
        dlrm.write_frac = 0.3;
        dlrm.ops = 1500;
        dlrm.partial_frac = 0.35;
        v.push_back(dlrm);

        // Alexnet: 74.1% 32KB chunks, medium traffic.
        WorkloadSpec alex = base;
        alex.name = "alex";
        alex.r64 = 0.06; alex.r512 = 0.02; alex.r4k = 0.18;
        alex.r32k = 0.74;
        alex.gap_fine = 79;
        alex.gap_episode = 1584;
        alex.write_frac = 0.35;
        alex.ops = 4000;
        alex.partial_frac = 0.15;
        v.push_back(alex);

        // Selfish-RNN: coarse, LARGE traffic (sparse RNN streaming).
        WorkloadSpec sfrnn = base;
        sfrnn.name = "sfrnn";
        sfrnn.r64 = 0.14; sfrnn.r512 = 0.04; sfrnn.r4k = 0.47;
        sfrnn.r32k = 0.35;
        sfrnn.gap_fine = 39;
        sfrnn.gap_episode = 396;
        sfrnn.write_frac = 0.4;
        sfrnn.ops = 6000;
        sfrnn.partial_frac = 0.45;
        v.push_back(sfrnn);

        // Yolo-Tiny (real-world AutoDrive stage): CNN-like, coarse,
        // medium traffic.
        WorkloadSpec yt = base;
        yt.name = "yt";
        yt.r64 = 0.08; yt.r512 = 0.02; yt.r4k = 0.25; yt.r32k = 0.65;
        yt.gap_fine = 79;
        yt.gap_episode = 1782;
        yt.write_frac = 0.35;
        yt.ops = 4000;
        yt.partial_frac = 0.25;
        v.push_back(yt);

        return v;
    }();
    return specs;
}

} // namespace mgmee
