#include "workloads/trace_repo.hh"

#include <bit>

#include "obs/trace.hh"

namespace mgmee {

namespace {

/** splitmix64 finalizer: cheap, well-mixed 64-bit hash step. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

std::size_t
TraceRepo::KeyHash::operator()(const Key &k) const
{
    std::uint64_t h = std::hash<std::string>{}(k.workload);
    h = mix64(h ^ k.base);
    h = mix64(h ^ k.seed);
    h = mix64(h ^ k.scale_bits);
    return static_cast<std::size_t>(h);
}

TraceRepo &
TraceRepo::instance()
{
    static TraceRepo repo;
    return repo;
}

TraceRepo::Shard &
TraceRepo::shardFor(const Key &k)
{
    return shards_[KeyHash{}(k) % kShards];
}

std::shared_ptr<const Trace>
TraceRepo::get(const WorkloadSpec &spec, Addr base,
               std::uint64_t seed, double scale)
{
    if (!memoEnabled()) {
        // Pre-memoization path: a private trace per device.
        return std::make_shared<const Trace>(
            generateTrace(spec, base, seed, scale));
    }

    Key key{spec.name, base, seed,
            std::bit_cast<std::uint64_t>(scale)};
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        OBS_EVENT(obs::EventKind::MemoHit, 0, KeyHash{}(key), 0,
                  static_cast<std::uint8_t>(obs::MemoTable::TraceRepo));
        return it->second;
    }
    // Generate under the shard lock: concurrent requesters of the
    // same trace wait instead of duplicating the work, and the cache
    // holds exactly one instance per key for the process lifetime.
    misses_.fetch_add(1, std::memory_order_relaxed);
    OBS_EVENT(obs::EventKind::MemoMiss, 0, KeyHash{}(key), 0,
              static_cast<std::uint8_t>(obs::MemoTable::TraceRepo));
    auto trace = std::make_shared<const Trace>(
        generateTrace(spec, base, seed, scale));
    shard.map.emplace(std::move(key), trace);
    return trace;
}

void
TraceRepo::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.map.clear();
    }
}

std::size_t
TraceRepo::size() const
{
    std::size_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.map.size();
    }
    return n;
}

} // namespace mgmee
