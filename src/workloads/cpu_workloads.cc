/**
 * @file
 * CPU workload models (Table 4): bw, gcc, mcf, xal, ray and the
 * real-world stream-clustering kernel (sc).
 *
 * CPUs issue mostly irregular 64B misses with limited MLP; xal is the
 * outlier with 19.5% of its lines in 512B stream chunks (Sec. 3.1).
 */

#include "workloads/registry.hh"

namespace mgmee {

const std::vector<WorkloadSpec> &
cpuWorkloads()
{
    static const std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> v;

        WorkloadSpec base;
        base.kind = DeviceKind::CPU;
        base.window = 2;
        base.stream_req_bytes = 64;
        base.fine_episode_lines = 4;
        base.footprint = 16ull << 20;
        base.ops = 4000;

        // Fluid-Dynamics (SPEC bwaves): very fine, small traffic.
        WorkloadSpec bw = base;
        bw.name = "bw";
        bw.r64 = 0.96; bw.r512 = 0.04;
        bw.gap_fine = 107;
        bw.write_frac = 0.25;
        v.push_back(bw);

        // C-Compiler (SPEC gcc): fine, small traffic, pointer-chasing.
        WorkloadSpec gcc = base;
        gcc.name = "gcc";
        gcc.r64 = 0.97; gcc.r512 = 0.03;
        gcc.gap_fine = 127;
        gcc.write_frac = 0.3;
        v.push_back(gcc);

        // Route-Planning (SPEC mcf): fine, medium traffic.
        WorkloadSpec mcf = base;
        mcf.name = "mcf";
        mcf.r64 = 0.95; mcf.r512 = 0.05;
        mcf.gap_fine = 39;
        mcf.write_frac = 0.2;
        mcf.footprint = 32ull << 20;
        v.push_back(mcf);

        // XML-HTML-Conversion (SPEC xalancbmk): 19.5% 512B streams.
        WorkloadSpec xal = base;
        xal.name = "xal";
        xal.r64 = 0.775; xal.r512 = 0.195; xal.r4k = 0.03;
        xal.gap_fine = 44;
        xal.gap_episode = 198;
        xal.write_frac = 0.3;
        v.push_back(xal);

        // Ray-Tracing (PARSEC raytrace): fine, small traffic.
        WorkloadSpec ray = base;
        ray.name = "ray";
        ray.r64 = 0.94; ray.r512 = 0.06;
        ray.gap_fine = 99;
        ray.write_frac = 0.15;
        v.push_back(ray);

        // Stream-Clustering (real-world AutoDrive stage, Table 6):
        // fine/medium with some partition-sized bursts.
        WorkloadSpec sc = base;
        sc.name = "sc";
        sc.r64 = 0.80; sc.r512 = 0.14; sc.r4k = 0.06;
        sc.gap_fine = 52;
        sc.gap_episode = 297;
        sc.write_frac = 0.35;
        v.push_back(sc);

        return v;
    }();
    return specs;
}

} // namespace mgmee
