#include "workloads/trace_gen.hh"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/access_tracker.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"

namespace mgmee {

namespace {

/** Lines touched by one episode of each class. */
constexpr double kEpisodeLines[4] = {0, 8, 64, 512};

} // namespace

Trace
generateTrace(const WorkloadSpec &spec, Addr base, std::uint64_t seed,
              double scale)
{
    fatal_if(spec.footprint < kChunkBytes,
             "%s: footprint smaller than one chunk",
             spec.name.c_str());
    OBS_SCOPE("trace_gen");
    Rng rng(seed);
    Trace trace;
    const std::size_t target =
        static_cast<std::size_t>(spec.ops * scale);
    trace.reserve(target + 600);

    // Episode probabilities: class c must contribute r_c of the
    // *lines*, so episodes are drawn with weight r_c / lines_c.
    std::array<double, 4> weight = {
        spec.r64 / std::max(1u, spec.fine_episode_lines),
        spec.r512 / kEpisodeLines[1],
        spec.r4k / kEpisodeLines[2],
        spec.r32k / kEpisodeLines[3],
    };
    const double wsum = weight[0] + weight[1] + weight[2] + weight[3];
    fatal_if(wsum <= 0, "%s: empty granularity mix",
             spec.name.c_str());
    for (auto &w : weight)
        w /= wsum;

    const std::uint64_t chunks = spec.footprint / kChunkBytes;
    const unsigned epochs = std::max(1u, spec.epochs);
    const unsigned fine_lines =
        std::min(spec.fine_episode_lines, 7u);  // never a full stream

    // Build one epoch's episode sequence; the trace repeats it so the
    // working set is iterated like real kernels/epochs do.
    struct Episode
    {
        unsigned cls;          //!< 0=fine, 1=512B, 2=4KB, 3=32KB
        Addr unit;             //!< unit (or partition for fine) base
        bool write;
        std::uint32_t cover_bytes;  //!< stream: bytes actually read
        std::uint8_t lines[7]; //!< fine: line offsets in partition
    };
    std::vector<Episode> episodes;
    std::vector<std::pair<Addr, std::size_t>> coarse_units;
    std::size_t epoch_ops = 0;
    const std::size_t epoch_target =
        std::max<std::size_t>(1, target / epochs);

    while (epoch_ops < epoch_target) {
        double pick = rng.uniform();
        unsigned cls = 0;
        for (; cls < 3; ++cls) {
            if (pick < weight[cls])
                break;
            pick -= weight[cls];
        }

        Episode ep;
        ep.cls = cls;
        ep.write = rng.chance(spec.write_frac);
        if (cls == 0) {
            // Fine: a few distinct lines clustered in one partition.
            // Episode size is bimodal around the configured mean --
            // sparse pointer-chase touches mixed with denser bursts
            // -- which is what defeats a uniformly coarse static
            // granularity (Sec. 3.3).
            const unsigned span_max =
                std::min(7u, 2 * fine_lines - 1);
            const unsigned n = 1 + static_cast<unsigned>(
                rng.below(span_max));
            if (!coarse_units.empty() &&
                rng.chance(spec.revisit_fine_frac)) {
                // Sparse touch inside a streamed unit: the accesses a
                // static coarse granularity mispredicts.
                const auto &[ubase, ubytes] = coarse_units[rng.below(
                    coarse_units.size())];
                ep.unit = ubase + rng.below(ubytes /
                                            kPartitionBytes) *
                                      kPartitionBytes;
            } else {
                ep.unit = base + rng.below(spec.footprint /
                                           kPartitionBytes) *
                                     kPartitionBytes;
            }
            // Distinct offsets out of 8 (never all 8).
            std::uint8_t perm[8] = {0, 1, 2, 3, 4, 5, 6, 7};
            for (unsigned i = 7; i > 0; --i)
                std::swap(perm[i], perm[rng.below(i + 1)]);
            for (unsigned i = 0; i < n; ++i)
                ep.lines[i] = perm[i];
            ep.cover_bytes = n;  // reused as the line count
            epoch_ops += n;
        } else {
            const std::size_t unit_bytes =
                cls == 1 ? kPartitionBytes
                         : (cls == 2 ? kSubchunkBytes : kChunkBytes);
            const Addr chunk_base =
                base + rng.below(chunks) * kChunkBytes;
            ep.unit = chunk_base +
                      rng.below(kChunkBytes / unit_bytes) * unit_bytes;
            ep.cover_bytes = static_cast<std::uint32_t>(unit_bytes);
            // Output tiles are written whole; partial coverage is a
            // read-side phenomenon (halos, ragged rows, edge tiles).
            if (!ep.write && rng.chance(spec.partial_frac)) {
                // Cover a 50-95% prefix, rounded to whole partitions
                // so the detector still sees clean stream partitions.
                const std::uint64_t parts = unit_bytes /
                                            kPartitionBytes;
                if (parts > 1) {
                    const std::uint64_t covered = std::max<
                        std::uint64_t>(1,
                                       parts / 2 +
                                           rng.below(parts / 2));
                    ep.cover_bytes = static_cast<std::uint32_t>(
                        covered * kPartitionBytes);
                }
            }
            const std::uint32_t step = std::min<std::uint32_t>(
                spec.stream_req_bytes,
                static_cast<std::uint32_t>(unit_bytes));
            epoch_ops += ep.cover_bytes / step;
            coarse_units.emplace_back(ep.unit, unit_bytes);
        }
        episodes.push_back(ep);
    }

    for (unsigned epoch = 0; epoch < epochs; ++epoch) {
        for (const Episode &ep : episodes) {
            if (ep.cls == 0) {
                for (unsigned i = 0; i < ep.cover_bytes; ++i) {
                    TraceOp op;
                    op.addr = ep.unit + ep.lines[i] * kCachelineBytes;
                    op.bytes = kCachelineBytes;
                    op.is_write = ep.write && i == 0;
                    op.gap = spec.gap_fine;
                    trace.push_back(op);
                }
                continue;
            }
            const std::size_t unit_bytes =
                ep.cls == 1
                    ? kPartitionBytes
                    : (ep.cls == 2 ? kSubchunkBytes : kChunkBytes);
            const std::uint32_t step = std::min<std::uint32_t>(
                spec.stream_req_bytes,
                static_cast<std::uint32_t>(unit_bytes));
            bool first = true;
            for (std::size_t off = 0; off < ep.cover_bytes;
                 off += step) {
                TraceOp op;
                op.addr = ep.unit + off;
                op.bytes = step;
                op.is_write = ep.write;
                op.gap = first ? spec.gap_episode : spec.gap_line;
                first = false;
                trace.push_back(op);
            }
        }
    }
    return trace;
}

TraceProfile
profileTrace(const Trace &trace)
{
    OBS_SCOPE("profile_trace");
    TraceProfile prof;

    struct ChunkWindow
    {
        Cycle start = 0;
        std::array<std::uint64_t, kLinesPerChunk / 64> bits{};
    };
    std::unordered_map<std::uint64_t, ChunkWindow> windows;
    constexpr Cycle kWindow = 16 * 1024;   // Sec. 3.1 time period

    auto classify = [&prof](std::uint64_t chunk,
                            const ChunkWindow &w) {
        const StreamPart sp = detectGranularity(w.bits);
        std::uint32_t per_class[4] = {0, 0, 0, 0};
        for (unsigned line = 0; line < kLinesPerChunk; ++line) {
            if (!((w.bits[line / 64] >> (line % 64)) & 1))
                continue;
            switch (granularityOfPartition(sp, line / 8)) {
              case Granularity::Line64B: ++per_class[0]; break;
              case Granularity::Part512B: ++per_class[1]; break;
              case Granularity::Sub4KB: ++per_class[2]; break;
              case Granularity::Chunk32KB: ++per_class[3]; break;
            }
        }
        prof.lines64 += per_class[0];
        prof.lines512 += per_class[1];
        prof.lines4k += per_class[2];
        prof.lines32k += per_class[3];
        // One event per (window, class) with the exact line count, so
        // a decoded trace reproduces the per-class totals bit-for-bit
        // (pinned by tests/obs_test.cc).
        for (unsigned cls = 0; cls < 4; ++cls) {
            if (per_class[cls]) {
                OBS_EVENT(obs::EventKind::StreamChunk, w.start,
                          chunk * kChunkBytes, per_class[cls],
                          static_cast<std::uint8_t>(cls));
            }
        }
    };

    Cycle now = 0;
    for (const TraceOp &op : trace) {
        now += op.gap;
        ++prof.requests;
        if (op.is_write)
            ++prof.writes;
        const Addr first = alignDown(op.addr, kCachelineBytes);
        const Addr last = alignDown(
            op.addr + (op.bytes ? op.bytes - 1 : 0), kCachelineBytes);
        for (Addr la = first; la <= last; la += kCachelineBytes) {
            ++prof.lines;
            const std::uint64_t chunk = chunkIndex(la);
            auto &win = windows[chunk];
            if (now - win.start > kWindow) {
                classify(chunk, win);
                win = ChunkWindow{};
                win.start = now;
            }
            const unsigned line = lineInChunk(la);
            win.bits[line / 64] |= std::uint64_t{1} << (line % 64);
        }
    }
    for (const auto &[chunk, win] : windows)
        classify(chunk, win);
    prof.span = now;
    return prof;
}

} // namespace mgmee
