#include "workloads/nn_layers.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mgmee {

LayerTraffic
analyzeLayer(const NnLayer &layer)
{
    LayerTraffic t;
    switch (layer.kind) {
      case NnLayer::Kind::Conv: {
        const unsigned out_h =
            (layer.in_h - layer.kernel) / layer.stride + 1;
        const unsigned out_w =
            (layer.in_w - layer.kernel) / layer.stride + 1;
        t.weight_bytes = std::size_t{layer.out_c} * layer.in_c *
                         layer.kernel * layer.kernel;
        t.input_bytes =
            std::size_t{layer.in_c} * layer.in_h * layer.in_w;
        t.output_bytes = std::size_t{layer.out_c} * out_h * out_w;
        t.macs = static_cast<std::uint64_t>(t.weight_bytes) * out_h *
                 out_w;
        break;
      }
      case NnLayer::Kind::Fc:
        t.weight_bytes = std::size_t{layer.in_dim} * layer.out_dim;
        t.input_bytes = layer.in_dim;
        t.output_bytes = layer.out_dim;
        t.macs = t.weight_bytes;
        break;
      case NnLayer::Kind::Embedding:
        t.weight_bytes = std::size_t{layer.rows} * layer.dim;
        t.input_bytes = std::size_t{layer.lookups} * layer.dim;
        t.output_bytes = std::size_t{layer.lookups} * layer.dim;
        t.macs = t.input_bytes;  // gather+reduce
        break;
      case NnLayer::Kind::Recurrent: {
        const std::size_t dense =
            std::size_t{layer.hidden} * layer.hidden * 2;
        t.weight_bytes = static_cast<std::size_t>(
            static_cast<double>(dense) * (1.0 - layer.sparsity));
        t.input_bytes = std::size_t{layer.hidden} * layer.steps;
        t.output_bytes = std::size_t{layer.hidden} * layer.steps;
        t.macs = static_cast<std::uint64_t>(t.weight_bytes) *
                 layer.steps;
        break;
      }
    }
    return t;
}

namespace {

/** Append a bulk DMA stream of @p bytes starting at @p addr. */
void
emitStream(Trace &trace, Addr addr, std::size_t bytes, bool is_write,
           const NpuConfig &cfg, Cycle lead_gap)
{
    bool first = true;
    for (std::size_t off = 0; off < bytes;
         off += cfg.dma_beat_bytes) {
        TraceOp op;
        op.addr = addr + off;
        op.bytes = static_cast<std::uint32_t>(std::min<std::size_t>(
            cfg.dma_beat_bytes, bytes - off));
        op.is_write = is_write;
        op.gap = first ? lead_gap : cfg.dma_beat_gap;
        first = false;
        trace.push_back(op);
    }
}

} // namespace

Trace
generateNnTrace(const std::vector<NnLayer> &layers,
                const NpuConfig &cfg, Addr base, std::uint64_t seed)
{
    fatal_if(layers.empty(), "empty network");
    Rng rng(seed);
    Trace trace;

    // Lay tensors out sequentially: weights first (chunk-aligned per
    // layer, as a compiler would), then an activation ping-pong
    // region.
    Addr weight_base = base;
    std::vector<Addr> weight_addr(layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
        weight_addr[i] = weight_base;
        const LayerTraffic t = analyzeLayer(layers[i]);
        weight_base += alignDown(t.weight_bytes + kChunkBytes - 1,
                                 kChunkBytes) +
                       kChunkBytes;
    }
    Addr act_a = weight_base;
    Addr act_b =
        act_a + (Addr{8} << 20);  // 8MB ping-pong halves

    const std::uint64_t pe_throughput =
        std::uint64_t{cfg.pe_rows} * cfg.pe_cols;

    for (std::size_t i = 0; i < layers.size(); ++i) {
        const NnLayer &layer = layers[i];
        const LayerTraffic t = analyzeLayer(layer);

        if (layer.kind == NnLayer::Kind::Embedding) {
            // Sparse gathers: one row per lookup from a large table
            // that cannot be tiled into the scratchpad.
            const std::size_t row_bytes =
                std::max<std::size_t>(layer.dim, kCachelineBytes);
            for (unsigned l = 0; l < layer.lookups; ++l) {
                TraceOp op;
                op.addr = weight_addr[i] +
                          rng.below(layer.rows) * row_bytes;
                op.addr = alignDown(op.addr, kCachelineBytes);
                op.bytes = static_cast<std::uint32_t>(row_bytes);
                op.gap = 40;  // index computation between gathers
                trace.push_back(op);
            }
            emitStream(trace, act_a, t.output_bytes, true, cfg, 100);
            std::swap(act_a, act_b);
            continue;
        }

        // Tile the layer so (weight tile + input tile + output tile)
        // fits the scratchpad; each tile round trips through DRAM.
        const std::size_t tile = std::max<std::size_t>(
            alignDown(cfg.scratchpad_bytes / 3, kChunkBytes),
            kChunkBytes);
        const unsigned weight_passes =
            layer.kind == NnLayer::Kind::Recurrent
                ? std::max(1u, layer.steps / 8)  // re-stream weights
                : 1;

        for (unsigned pass = 0; pass < weight_passes; ++pass) {
            for (std::size_t woff = 0; woff < t.weight_bytes;
                 woff += tile) {
                const std::size_t wlen =
                    std::min(tile, t.weight_bytes - woff);
                emitStream(trace, weight_addr[i] + woff, wlen, false,
                           cfg, 200);
                // Matching share of the input activations.
                const std::size_t in_share = std::min<std::size_t>(
                    t.input_bytes,
                    std::max<std::size_t>(kCachelineBytes,
                                          t.input_bytes * wlen /
                                              t.weight_bytes));
                emitStream(trace, act_a + (woff % (Addr{4} << 20)),
                           in_share, false, cfg, 10);
                // Systolic compute for this tile.
                const Cycle compute = static_cast<Cycle>(
                    (t.macs / weight_passes) *
                    (static_cast<double>(wlen) / t.weight_bytes) /
                    pe_throughput);
                // Output share, written behind the compute.
                const std::size_t out_share = std::min<std::size_t>(
                    t.output_bytes,
                    std::max<std::size_t>(kCachelineBytes,
                                          t.output_bytes * wlen /
                                              t.weight_bytes));
                emitStream(trace, act_b + (woff % (Addr{4} << 20)),
                           out_share, true, cfg,
                           std::max<Cycle>(compute, 1));
            }
        }
        std::swap(act_a, act_b);
    }
    return trace;
}

std::vector<NnLayer>
alexNetLayers()
{
    auto conv = [](const char *name, unsigned in_c, unsigned in_hw,
                   unsigned out_c, unsigned k, unsigned s) {
        NnLayer l;
        l.kind = NnLayer::Kind::Conv;
        l.name = name;
        l.in_c = in_c;
        l.in_h = l.in_w = in_hw;
        l.out_c = out_c;
        l.kernel = k;
        l.stride = s;
        return l;
    };
    auto fc = [](const char *name, unsigned in, unsigned out) {
        NnLayer l;
        l.kind = NnLayer::Kind::Fc;
        l.name = name;
        l.in_dim = in;
        l.out_dim = out;
        return l;
    };
    return {
        conv("conv1", 3, 227, 96, 11, 4),
        conv("conv2", 96, 27, 256, 5, 1),
        conv("conv3", 256, 13, 384, 3, 1),
        conv("conv4", 384, 13, 384, 3, 1),
        conv("conv5", 384, 13, 256, 3, 1),
        fc("fc6", 9216, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    };
}

std::vector<NnLayer>
yoloTinyLayers()
{
    std::vector<NnLayer> layers;
    unsigned c = 16, hw = 416;
    unsigned in_c = 3;
    for (int i = 0; i < 6; ++i) {
        NnLayer l;
        l.kind = NnLayer::Kind::Conv;
        l.name = "conv" + std::to_string(i + 1);
        l.in_c = in_c;
        l.in_h = l.in_w = hw;
        l.out_c = c;
        l.kernel = 3;
        l.stride = 1;
        layers.push_back(l);
        in_c = c;
        c *= 2;
        hw /= 2;  // maxpool between stages
    }
    // Head convolutions.
    NnLayer h1;
    h1.kind = NnLayer::Kind::Conv;
    h1.name = "conv7";
    h1.in_c = 512;
    h1.in_h = h1.in_w = 13;
    h1.out_c = 1024;
    h1.kernel = 3;
    layers.push_back(h1);
    NnLayer h2 = h1;
    h2.name = "conv8";
    h2.in_c = 1024;
    h2.out_c = 256;
    h2.kernel = 1;
    layers.push_back(h2);
    NnLayer h3 = h2;
    h3.name = "conv9";
    h3.in_c = 256;
    h3.out_c = 255;
    layers.push_back(h3);
    return layers;
}

std::vector<NnLayer>
dlrmLayers()
{
    std::vector<NnLayer> layers;
    for (int t = 0; t < 8; ++t) {
        NnLayer e;
        e.kind = NnLayer::Kind::Embedding;
        e.name = "emb" + std::to_string(t);
        e.rows = 100000;
        e.dim = 64;
        e.lookups = 32;
        layers.push_back(e);
    }
    auto fc = [](const char *name, unsigned in, unsigned out) {
        NnLayer l;
        l.kind = NnLayer::Kind::Fc;
        l.name = name;
        l.in_dim = in;
        l.out_dim = out;
        return l;
    };
    layers.push_back(fc("bot1", 512, 256));
    layers.push_back(fc("bot2", 256, 64));
    layers.push_back(fc("top1", 576, 512));
    layers.push_back(fc("top2", 512, 256));
    layers.push_back(fc("top3", 256, 1));
    return layers;
}

std::vector<NnLayer>
ncfLayers()
{
    std::vector<NnLayer> layers;
    for (const char *name : {"user_emb", "item_emb"}) {
        NnLayer e;
        e.kind = NnLayer::Kind::Embedding;
        e.name = name;
        e.rows = 200000;
        e.dim = 64;
        e.lookups = 64;
        layers.push_back(e);
    }
    auto fc = [](const char *name, unsigned in, unsigned out) {
        NnLayer l;
        l.kind = NnLayer::Kind::Fc;
        l.name = name;
        l.in_dim = in;
        l.out_dim = out;
        return l;
    };
    layers.push_back(fc("mlp1", 128, 256));
    layers.push_back(fc("mlp2", 256, 128));
    layers.push_back(fc("mlp3", 128, 64));
    layers.push_back(fc("out", 64, 1));
    return layers;
}

std::vector<NnLayer>
sfrnnLayers()
{
    NnLayer r;
    r.kind = NnLayer::Kind::Recurrent;
    r.name = "selfish-rnn";
    r.hidden = 1536;
    r.steps = 64;
    r.sparsity = 0.5;
    return {r};
}

} // namespace mgmee
