/**
 * @file
 * Name-indexed registry of the paper's workloads (Table 4) plus the
 * two real-world extras of Table 6 (yt, sc).
 */

#ifndef MGMEE_WORKLOADS_REGISTRY_HH
#define MGMEE_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/trace_gen.hh"

namespace mgmee {

/** The five CPU workloads (SPEC2017 / PARSEC selections). */
const std::vector<WorkloadSpec> &cpuWorkloads();
/** The five GPU workloads (APP SDK / Pannotia / SHOC / Polybench). */
const std::vector<WorkloadSpec> &gpuWorkloads();
/** The four NPU workloads plus yt (Yolo-Tiny, real-world). */
const std::vector<WorkloadSpec> &npuWorkloads();

/** All workloads of every kind. */
std::vector<WorkloadSpec> allWorkloads();

/** Lookup by short name (fatal on unknown name). */
const WorkloadSpec &findWorkload(const std::string &name);

} // namespace mgmee

#endif // MGMEE_WORKLOADS_REGISTRY_HH
