#include "workloads/trace_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace mgmee {

namespace {
constexpr const char *kMagic = "mgmee-trace v1";
} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << kMagic << '\n';
    os << "# ops: " << trace.size() << '\n';
    for (const TraceOp &op : trace) {
        os << (op.is_write ? 'W' : 'R') << ' ' << std::hex << op.addr
           << std::dec << ' ' << op.bytes << ' ' << op.gap << '\n';
    }
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot open '%s' for writing", path.c_str());
    writeTrace(os, trace);
    fatal_if(!os, "I/O error while writing '%s'", path.c_str());
}

Trace
readTrace(std::istream &is)
{
    std::string line;
    unsigned line_no = 1;
    fatal_if(!std::getline(is, line) || line != kMagic,
             "not an mgmee trace (missing '%s' header)", kMagic);

    Trace trace;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char kind = 0;
        TraceOp op;
        ls >> kind >> std::hex >> op.addr >> std::dec >> op.bytes >>
            op.gap;
        fatal_if(ls.fail() || (kind != 'R' && kind != 'W'),
                 "trace line %u malformed: '%s'", line_no,
                 line.c_str());
        fatal_if(op.bytes == 0, "trace line %u: zero-size op",
                 line_no);
        op.is_write = kind == 'W';
        trace.push_back(op);
    }
    return trace;
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    fatal_if(!is, "cannot open trace '%s'", path.c_str());
    return readTrace(is);
}

} // namespace mgmee
