/**
 * @file
 * Layer-accurate NPU traffic model.
 *
 * The statistical workload specs (npu_workloads.cc) are calibrated to
 * the paper's published stream-chunk mixes.  This module derives NPU
 * traces *independently*, from actual network layer shapes and a
 * tiled dataflow over the 2.2MB scratchpad (Table 3), the way
 * mNPUsim's software-managed execution would: per layer, weights and
 * input tiles are DMA'd in 32KB-aligned streams, the systolic array
 * computes for macs/PE-array cycles, and output tiles are DMA'd out.
 *
 * Networks provided: AlexNet (alex), Yolo-Tiny (yt), DLRM-style
 * recommendation (dlrm), NCF (ncf), and a sparse RNN (sfrnn).  The
 * nn_trace_validation bench cross-checks these traces' stream-chunk
 * mixes against the calibrated statistical generators.
 */

#ifndef MGMEE_WORKLOADS_NN_LAYERS_HH
#define MGMEE_WORKLOADS_NN_LAYERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/trace_gen.hh"

namespace mgmee {

/** One network layer, in INT8 elements. */
struct NnLayer
{
    enum class Kind
    {
        Conv,       //!< 2-D convolution
        Fc,         //!< fully connected / MLP
        Embedding,  //!< sparse table gather
        Recurrent,  //!< RNN cell (weights re-streamed per step)
    };

    Kind kind = Kind::Conv;
    std::string name;

    // Conv parameters.
    unsigned in_c = 0, in_h = 0, in_w = 0;
    unsigned out_c = 0, kernel = 0, stride = 1;

    // Fc parameters.
    unsigned in_dim = 0, out_dim = 0;

    // Embedding parameters.
    unsigned rows = 0, dim = 0, lookups = 0;

    // Recurrent parameters.
    unsigned hidden = 0, steps = 0;
    double sparsity = 0.0;   //!< fraction of weights pruned away
};

/** Byte/compute footprint of one layer under INT8. */
struct LayerTraffic
{
    std::size_t weight_bytes = 0;
    std::size_t input_bytes = 0;
    std::size_t output_bytes = 0;
    std::uint64_t macs = 0;
};

/** Analytical footprint of @p layer. */
LayerTraffic analyzeLayer(const NnLayer &layer);

/** NPU execution parameters (Table 3 defaults). */
struct NpuConfig
{
    std::size_t scratchpad_bytes = std::size_t{2252} << 10;  // 2.2MB
    unsigned pe_rows = 45;
    unsigned pe_cols = 45;
    std::uint32_t dma_beat_bytes = 1024;
    Cycle dma_beat_gap = 1;
};

/**
 * Generate the off-chip trace of running @p layers once on the NPU:
 * per layer, stream weights and inputs in, pause for the systolic
 * compute time, stream outputs out.  Embedding layers issue sparse
 * row gathers instead of bulk streams.
 *
 * @param base address window base; tensors are laid out sequentially
 * @param seed randomises embedding-lookup rows only
 */
Trace generateNnTrace(const std::vector<NnLayer> &layers,
                      const NpuConfig &cfg, Addr base,
                      std::uint64_t seed);

/** AlexNet (Krizhevsky et al.): 5 conv + 3 fc, 227x227x3 input. */
std::vector<NnLayer> alexNetLayers();

/** Yolo-Tiny (Redmon et al.): 9 conv stages on 416x416x3. */
std::vector<NnLayer> yoloTinyLayers();

/** DLRM-style recommender: embedding gathers + bottom/top MLPs. */
std::vector<NnLayer> dlrmLayers();

/** Neural collaborative filtering: two embeddings + MLP tower. */
std::vector<NnLayer> ncfLayers();

/** Selfish sparse RNN: one recurrent cell unrolled over time. */
std::vector<NnLayer> sfrnnLayers();

} // namespace mgmee

#endif // MGMEE_WORKLOADS_NN_LAYERS_HH
