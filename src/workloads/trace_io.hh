/**
 * @file
 * Trace serialisation: save and load off-chip request traces.
 *
 * The evaluation normally uses the synthetic generators, but the
 * simulator accepts any trace with the right shape.  This module
 * defines a simple line-oriented text format so traces captured from
 * real simulators (ChampSim, MGPUSim, mNPUsim, gem5) can be converted
 * and replayed through the protection engines:
 *
 *     # comment
 *     mgmee-trace v1
 *     R <hex-addr> <bytes> <gap-cycles>
 *     W <hex-addr> <bytes> <gap-cycles>
 *
 * Addresses are byte addresses (the loader aligns to cachelines);
 * `gap` is the compute-cycle spacing from the previous op's issue.
 */

#ifndef MGMEE_WORKLOADS_TRACE_IO_HH
#define MGMEE_WORKLOADS_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workloads/trace_gen.hh"

namespace mgmee {

/** Serialise @p trace to @p os in the v1 text format. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Serialise to a file (fatal on I/O failure). */
void saveTrace(const std::string &path, const Trace &trace);

/**
 * Parse a v1 text trace from @p is.
 * @throws never -- malformed lines are fatal() with line numbers.
 */
Trace readTrace(std::istream &is);

/** Load from a file (fatal on I/O failure). */
Trace loadTrace(const std::string &path);

} // namespace mgmee

#endif // MGMEE_WORKLOADS_TRACE_IO_HH
