/**
 * @file
 * GPU workload models (Table 4): floyd, mm, pr, sten, syr2k.
 *
 * GPUs issue coalesced 256B warp requests with deep MLP.  The paper's
 * mix (Sec. 3.1): syr2k and pr fine, mm and sten coarse, floyd
 * genuinely diverse.
 */

#include "workloads/registry.hh"

namespace mgmee {

const std::vector<WorkloadSpec> &
gpuWorkloads()
{
    static const std::vector<WorkloadSpec> specs = [] {
        std::vector<WorkloadSpec> v;

        WorkloadSpec base;
        base.kind = DeviceKind::GPU;
        base.window = 48;
        base.stream_req_bytes = 256;
        base.fine_episode_lines = 6;
        base.footprint = 24ull << 20;
        base.ops = 6000;
        base.gap_line = 2;
        base.gap_episode = 495;

        // Floyd-Warshall (APP SDK): diverse mix, small traffic.
        WorkloadSpec floyd = base;
        floyd.name = "floyd";
        floyd.r64 = 0.30; floyd.r512 = 0.12; floyd.r4k = 0.28;
        floyd.r32k = 0.30;
        floyd.gap_fine = 68;
        floyd.gap_episode = 891;
        floyd.write_frac = 0.3;
        floyd.partial_frac = 0.4;
        v.push_back(floyd);

        // Matrix-Multiplication (APP SDK): very coarse, medium.
        WorkloadSpec mm = base;
        mm.name = "mm";
        mm.r64 = 0.08; mm.r512 = 0.02; mm.r4k = 0.15; mm.r32k = 0.75;
        mm.gap_fine = 59;
        mm.gap_episode = 495;
        mm.write_frac = 0.25;
        mm.partial_frac = 0.2;
        v.push_back(mm);

        // Page-Rank (Pannotia): irregular graph, fine, medium.
        WorkloadSpec pr = base;
        pr.name = "pr";
        pr.r64 = 0.84; pr.r512 = 0.10; pr.r4k = 0.06;
        pr.gap_fine = 19;
        pr.write_frac = 0.25;
        pr.footprint = 32ull << 20;
        v.push_back(pr);

        // Stencil2d (SHOC): coarse, LARGE traffic.
        WorkloadSpec sten = base;
        sten.name = "sten";
        sten.r64 = 0.10; sten.r512 = 0.05; sten.r4k = 0.55;
        sten.r32k = 0.30;
        sten.gap_fine = 28;
        sten.gap_line = 1;
        sten.gap_episode = 147;
        sten.write_frac = 0.35;
        sten.ops = 8000;
        sten.partial_frac = 0.45;
        v.push_back(sten);

        // Symmetric-Rank-2k (Polybench): fine, medium.
        WorkloadSpec syr2k = base;
        syr2k.name = "syr2k";
        syr2k.r64 = 0.88; syr2k.r512 = 0.08; syr2k.r4k = 0.04;
        syr2k.gap_fine = 26;
        syr2k.write_frac = 0.2;
        v.push_back(syr2k);

        return v;
    }();
    return specs;
}

} // namespace mgmee
