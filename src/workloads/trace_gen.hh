/**
 * @file
 * Synthetic off-chip trace generation.
 *
 * The protection schemes react to exactly three properties of a
 * workload's LLC-miss stream: its *granularity mix* (which fraction of
 * requests belongs to 64B/512B/4KB/32KB stream chunks, Fig. 4), its
 * *traffic intensity* (requests per cycle, Table 4 s/m/l), and its
 * read/write composition.  Generators here synthesise deterministic
 * traces with prescribed values of those properties for each of the
 * paper's 14 workloads (plus the two real-world extras), replacing
 * the ChampSim/MGPUSim/mNPUsim trace capture we do not have.
 */

#ifndef MGMEE_WORKLOADS_TRACE_GEN_HH
#define MGMEE_WORKLOADS_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace mgmee {

/** One trace operation as issued below the device LLC. */
struct TraceOp
{
    Addr addr = 0;
    std::uint32_t bytes = kCachelineBytes;
    bool is_write = false;
    /** Compute cycles separating this op's issue from the previous
     *  op's issue (burst ops use 0). */
    Cycle gap = 0;
};

using Trace = std::vector<TraceOp>;

/** Parameters of one synthetic workload. */
struct WorkloadSpec
{
    std::string name;
    DeviceKind kind = DeviceKind::CPU;

    /** Target fraction of *lines* touched in each stream class. */
    double r64 = 1.0;
    double r512 = 0.0;
    double r4k = 0.0;
    double r32k = 0.0;

    /** Cycles between scattered fine accesses (traffic intensity). */
    Cycle gap_fine = 50;
    /** Cycles between consecutive requests inside a stream episode. */
    Cycle gap_line = 4;
    /** Compute pause between episodes. */
    Cycle gap_episode = 2000;

    /** Outstanding-request window (memory-level parallelism). */
    unsigned window = 8;
    /** Fraction of episodes that are writes. */
    double write_frac = 0.3;
    /** Working-set size in bytes (must fit the device window). */
    std::size_t footprint = 16ull << 20;
    /** Approximate number of requests to emit at scale 1.0. */
    std::size_t ops = 4000;
    /** Request size used inside stream episodes. */
    std::uint32_t stream_req_bytes = 256;
    /**
     * Lines touched per fine episode, clustered inside one 512B
     * partition (models pointer-chase spatial locality without
     * forming a stream partition).  Must be < 8.
     */
    unsigned fine_episode_lines = 4;
    /**
     * Times the episode sequence repeats (working-set iteration:
     * epochs, inference steps, kernel re-launches).  Granularity
     * detection trains on the first pass and pays off on the rest.
     */
    unsigned epochs = 5;
    /**
     * Fraction of stream episodes that cover only part of their unit
     * (edge tiles, stencil halos, ragged tensor rows).  This is what
     * breaks static per-device granularity (Sec. 3.3): a fixed coarse
     * choice overfetches the uncovered tail on every pass, while
     * dynamic per-partition detection adapts.
     */
    double partial_frac = 0.3;
    /**
     * Fraction of fine episodes that land inside a unit the workload
     * also streams (a tensor later read element-wise, a tile updated
     * sparsely).  These are the accesses a static coarse granularity
     * mispredicts -- and the source of the dynamic scheme's
     * granularity-switching traffic (Table 2).
     */
    double revisit_fine_frac = 0.12;
};

/**
 * Generate a deterministic trace for @p spec.
 *
 * @param base  base address of the device's region (addresses are
 *              drawn from [base, base + footprint))
 * @param seed  RNG seed (same seed => identical trace)
 * @param scale multiplies spec.ops (benchmark-size control)
 */
Trace generateTrace(const WorkloadSpec &spec, Addr base,
                    std::uint64_t seed, double scale = 1.0);

/** Measured composition of a generated trace (for validation). */
struct TraceProfile
{
    std::uint64_t requests = 0;
    std::uint64_t lines = 0;
    std::uint64_t writes = 0;
    /** Lines belonging to stream chunks of each class (Fig. 4). */
    std::uint64_t lines64 = 0;
    std::uint64_t lines512 = 0;
    std::uint64_t lines4k = 0;
    std::uint64_t lines32k = 0;
    Cycle span = 0;   //!< sum of gaps (approximate issue span)
};

/**
 * Classify a trace with an offline (unbounded) version of the
 * access-pattern analysis of Sec. 3.1: lines are grouped per 32KB
 * chunk within 16K-cycle windows, partitions fully covered in a
 * window are stream partitions, and each line is attributed to the
 * granularity class of its containing unit.
 */
TraceProfile profileTrace(const Trace &trace);

} // namespace mgmee

#endif // MGMEE_WORKLOADS_TRACE_GEN_HH
