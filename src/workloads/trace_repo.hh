/**
 * @file
 * Process-wide shared trace repository.
 *
 * The 250-scenario sweeps draw from only 14 workloads, yet every
 * `runScenario` call used to regenerate all four device traces from
 * scratch -- per scheme, per scenario, per figure bench.  The repo
 * memoizes `generateTrace` behind a sharded, thread-safe cache keyed
 * by (workload, base, seed, scale); devices hold
 * `std::shared_ptr<const Trace>`, so one generated trace backs every
 * simultaneous replay.  This is the sweep-layer analogue of the
 * paper's amortize-the-metadata idea: generate once, share widely.
 *
 * The `MGMEE_MEMO` knob (default on; set `MGMEE_MEMO=0` to disable)
 * forces the pre-memoization path: every lookup regenerates a private
 * trace.  Generation is deterministic, so both paths yield
 * byte-identical traces -- tests/sweep_memo_test.cc pins this.
 */

#ifndef MGMEE_WORKLOADS_TRACE_REPO_HH
#define MGMEE_WORKLOADS_TRACE_REPO_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.hh"
#include "common/stats.hh"
#include "workloads/trace_gen.hh"

namespace mgmee {

/**
 * True unless the configuration disables memoization (MGMEE_MEMO=0
 * through the env loader, or Config::memo programmatically).  Gates
 * the trace repo and the run-result memo (hetero/run_memo.hh)
 * together so one knob flips the whole sweep-layer caching stack.
 */
inline bool
memoEnabled()
{
    return config().memo;
}

/** Sharded, thread-safe cache of generated traces. */
class TraceRepo
{
  public:
    /** The process-wide instance used by the device factories. */
    static TraceRepo &instance();

    /**
     * Fetch (generating on first use) the trace for @p spec at
     * (@p base, @p seed, @p scale).  With memoization disabled the
     * call degenerates to a plain `generateTrace`.
     */
    std::shared_ptr<const Trace> get(const WorkloadSpec &spec,
                                     Addr base, std::uint64_t seed,
                                     double scale);

    /** Drop every cached trace (bench cold-start control). */
    void clear();

    /** Number of distinct traces currently cached. */
    std::size_t size() const;

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    struct Key
    {
        std::string workload;
        Addr base;
        std::uint64_t seed;
        std::uint64_t scale_bits;  //!< bit pattern of the double

        bool
        operator==(const Key &o) const
        {
            return base == o.base && seed == o.seed &&
                   scale_bits == o.scale_bits &&
                   workload == o.workload;
        }
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const;
    };

    /**
     * 16 shards keep concurrent sweep workers off each other's locks;
     * a shard's mutex is held across generation so every trace is
     * computed exactly once per process.
     */
    static constexpr unsigned kShards = 16;

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Key, std::shared_ptr<const Trace>, KeyHash>
            map;
    };

    Shard &shardFor(const Key &k);

    Shard shards_[kShards];
    // Registered globally so manifests and tests read the hit rate
    // from the StatRegistry under "trace_repo".
    std::atomic<std::uint64_t> &hits_ =
        StatRegistry::instance().counter("trace_repo", "hits");
    std::atomic<std::uint64_t> &misses_ =
        StatRegistry::instance().counter("trace_repo", "misses");
};

} // namespace mgmee

#endif // MGMEE_WORKLOADS_TRACE_REPO_HH
