/**
 * @file
 * Regression tests for the flat-storage / lazy node-MAC hot path:
 * deferred MAC refresh must never weaken detection, and the
 * verified-ancestor cache must be invalidated by granularity
 * promotion/demotion, re-keying, and attack injection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/multigran_memory.hh"
#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
lazyKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(0x5a ^ (i * 13));
    keys.mac = {0x1111222233334444ULL, 0x5555666677778888ULL};
    return keys;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 31);
    return v;
}

class LazyMacTest : public ::testing::Test
{
  protected:
    LazyMacTest() : mem_(8 * kChunkBytes, lazyKeys()) {}

    SecureMemory mem_;
};

TEST_F(LazyMacTest, FlushedMetadataStillVerifies)
{
    // Many writes leave deferred node-MAC refreshes; an explicit
    // flush must settle them into a state that still verifies.
    for (unsigned l = 0; l < 64; ++l)
        ASSERT_EQ(SecureMemory::Status::Ok,
                  mem_.write(l * kCachelineBytes,
                             pattern(kCachelineBytes,
                                     static_cast<std::uint8_t>(l))));
    mem_.flushMetadata();
    std::vector<std::uint8_t> out(kCachelineBytes);
    for (unsigned l = 0; l < 64; ++l) {
        ASSERT_EQ(SecureMemory::Status::Ok,
                  mem_.read(l * kCachelineBytes, out));
        EXPECT_EQ(pattern(kCachelineBytes,
                          static_cast<std::uint8_t>(l)),
                  out);
    }
}

TEST_F(LazyMacTest, WriteBurstThenTamperDetected)
{
    // A burst of writes (all node MACs still deferred) followed by a
    // counter tamper: detection must fire on the next read.
    for (unsigned l = 0; l < 16; ++l)
        mem_.write(l * kCachelineBytes, pattern(kCachelineBytes, 7));
    mem_.corruptCounter(0x0);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x0, out));
}

TEST_F(LazyMacTest, DetectionIsStickyAcrossRepeatedReads)
{
    // The verified-ancestor cache must not launder a detected
    // mismatch: every subsequent read keeps failing.
    mem_.write(0x0, pattern(kCachelineBytes, 3));
    mem_.write(0x40, pattern(kCachelineBytes, 4));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x40, out));
    mem_.corruptCounter(0x0);
    for (int i = 0; i < 3; ++i)
        EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x0, out));
}

TEST_F(LazyMacTest, TamperAfterPromotionDetected)
{
    // Promotion re-shapes the subtree; the verified-ancestor cache
    // must be invalidated so a tamper on the promoted counter is
    // caught by the next access.
    const auto data = pattern(kPartitionBytes, 9);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0, data));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));

    mem_.applyStreamPart(0, StreamPart{0b1});  // promote to 512B
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));

    mem_.corruptCounter(0);  // the promoted (level-1) counter
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0, out));
}

TEST_F(LazyMacTest, ReplayAfterPromotionRaisesTreeMismatch)
{
    // Verify a path (warming the verified-ancestor cache), promote,
    // then replay the promoted unit's stale off-chip state: the tree
    // must flag the rollback even though the path was cached clean
    // before the switch.
    const auto data = pattern(kPartitionBytes, 11);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0, data));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));

    mem_.applyStreamPart(0, StreamPart{0b1});  // promote to 512B
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));

    // Snapshot the whole promoted unit (all 8 lines + shared
    // counter/MAC) so the rolled-back image is self-consistent and
    // only the tree can catch the rollback.
    std::vector<SecureMemory::Replay> snaps;
    for (unsigned l = 0; l < kLinesPerPartition; ++l)
        snaps.push_back(mem_.captureForReplay(l * kCachelineBytes));

    // Move the unit forward, then roll its off-chip state back.
    ASSERT_EQ(SecureMemory::Status::Ok,
              mem_.write(0, pattern(kPartitionBytes, 12)));
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));
    for (const auto &snap : snaps)
        mem_.replay(snap);
    EXPECT_EQ(SecureMemory::Status::TreeMismatch,
              mem_.read(0, out));
}

TEST_F(LazyMacTest, TamperAfterDemotionDetected)
{
    // Demote a promoted region back to fine and tamper: the
    // recreated fine counters must be freshly protected.
    const auto data = pattern(kPartitionBytes, 13);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0, data));
    mem_.applyStreamPart(0, StreamPart{0b1});   // promote
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));
    mem_.applyStreamPart(0, kAllFine);          // demote
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));

    mem_.corruptCounter(0x40);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x40, out));
}

TEST_F(LazyMacTest, TamperAfterRekeyDetected)
{
    // Re-keying invalidates cached trust: a post-rekey tamper must
    // be detected even on a path verified before the rekey.
    mem_.write(0x1000, pattern(kCachelineBytes, 21));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x1000, out));

    auto keys2 = lazyKeys();
    keys2.aes[5] ^= 0xff;
    keys2.mac.k0 ^= 0x1;
    mem_.rekey(keys2);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x1000, out));

    mem_.corruptCounter(0x1000);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x1000, out));
}

TEST_F(LazyMacTest, DynamicMemoryKernelBoundaryFlush)
{
    DynamicSecureMemory dyn(4 * kChunkBytes, lazyKeys());
    const auto data = pattern(kCachelineBytes, 17);
    ASSERT_EQ(SecureMemory::Status::Ok, dyn.write(0x80, data, 100));
    dyn.kernelBoundary();
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, dyn.read(0x80, out, 200));
    EXPECT_EQ(data, out);
}

} // namespace
} // namespace mgmee
