/**
 * @file
 * Unit tests for key rotation (SecureMemory::rekey) and the latency
 * Histogram.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
keysA()
{
    SecureMemory::Keys k;
    for (unsigned i = 0; i < 16; ++i)
        k.aes[i] = static_cast<std::uint8_t>(i + 1);
    k.mac = {0x1111, 0x2222};
    return k;
}

SecureMemory::Keys
keysB()
{
    SecureMemory::Keys k;
    for (unsigned i = 0; i < 16; ++i)
        k.aes[i] = static_cast<std::uint8_t>(0xf0 - i);
    k.mac = {0x3333, 0x4444};
    return k;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed * 31 + i);
    return v;
}

TEST(RekeyTest, DataSurvivesRotation)
{
    SecureMemory mem(4 * kChunkBytes, keysA());
    const auto data = pattern(kChunkBytes, 1);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.write(0, data));
    mem.applyStreamPart(0, subchunkMask(0));  // mix granularities
    const auto more = pattern(512, 2);
    ASSERT_EQ(SecureMemory::Status::Ok,
              mem.write(2 * kChunkBytes, more));

    mem.rekey(keysB());

    std::vector<std::uint8_t> out(kChunkBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(0, out));
    EXPECT_EQ(data, out);
    std::vector<std::uint8_t> out2(512);
    ASSERT_EQ(SecureMemory::Status::Ok,
              mem.read(2 * kChunkBytes, out2));
    EXPECT_EQ(more, out2);
}

TEST(RekeyTest, CiphertextActuallyChanges)
{
    // Two memories with identical history diverge after one rekeys:
    // a replay snapshot taken before the rotation no longer verifies.
    SecureMemory mem(2 * kChunkBytes, keysA());
    const auto data = pattern(kCachelineBytes, 3);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.write(0, data));
    const auto before = mem.captureForReplay(0);

    mem.rekey(keysB());
    mem.replay(before);  // splice the old-key ciphertext back in
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem.read(0, out));
}

TEST(RekeyTest, ProtectionStillWorksAfterRotation)
{
    SecureMemory mem(2 * kChunkBytes, keysA());
    mem.write(0, pattern(kCachelineBytes, 4));
    mem.rekey(keysB());

    mem.corruptData(0, 9);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::MacMismatch, mem.read(0, out));

    const auto fresh = pattern(kCachelineBytes, 5);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.write(0, fresh));
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(0, out));
    EXPECT_EQ(fresh, out);
}

TEST(RekeyTest, CountersPreserved)
{
    SecureMemory mem(2 * kChunkBytes, keysA());
    const auto data = pattern(kCachelineBytes, 6);
    mem.write(0, data);
    mem.write(0, data);
    const auto ctr = mem.effectiveCounter(0);
    mem.rekey(keysB());
    EXPECT_EQ(ctr, mem.effectiveCounter(0));
}

// ---- Histogram --------------------------------------------------------------

TEST(HistogramTest, BasicStatistics)
{
    Histogram h;
    EXPECT_EQ(0u, h.count());
    EXPECT_EQ(0u, h.percentile(0.5));

    for (std::uint64_t v : {10, 20, 30, 40, 50})
        h.record(v);
    EXPECT_EQ(5u, h.count());
    EXPECT_EQ(10u, h.min());
    EXPECT_EQ(50u, h.max());
    EXPECT_DOUBLE_EQ(30.0, h.mean());
}

TEST(HistogramTest, PercentilesBracketValues)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    // Log2 buckets give upper edges: p50 of 1..1000 is <= 1023 and
    // >= 500; p99 likewise bracketed.
    EXPECT_GE(h.percentile(0.5), 500u);
    EXPECT_LE(h.percentile(0.5), 1023u);
    EXPECT_GE(h.percentile(0.99), 990u);
    EXPECT_LE(h.percentile(0.99), 1000u);
    EXPECT_LE(h.percentile(0.0), 1u);
    EXPECT_EQ(1000u, h.percentile(1.0));
}

TEST(HistogramTest, SummaryMentionsEverything)
{
    Histogram h;
    h.record(100);
    h.record(200);
    const std::string s = h.summary();
    EXPECT_NE(std::string::npos, s.find("n=2"));
    EXPECT_NE(std::string::npos, s.find("max=200"));
}

TEST(HistogramTest, ZeroAndHugeValues)
{
    Histogram h;
    h.record(0);
    h.record(~std::uint64_t{0});
    EXPECT_EQ(2u, h.count());
    EXPECT_EQ(0u, h.min());
    EXPECT_EQ(~std::uint64_t{0}, h.max());
    EXPECT_EQ(~std::uint64_t{0}, h.percentile(1.0));
}

} // namespace
} // namespace mgmee
