/**
 * @file
 * Unit tests for the timing substrate: memory-controller queueing,
 * unit buffer, subtree-root cache, unused filter, and the Unsecure /
 * Conventional engines' traffic accounting.
 */

#include <gtest/gtest.h>

#include "mee/conventional_engine.hh"
#include "mee/unsecure_engine.hh"
#include "subtree/subtree_cache.hh"
#include "subtree/unused_filter.hh"

namespace mgmee {
namespace {

TEST(MemCtrlTest, SingleLineLatency)
{
    MemCtrlConfig cfg;
    cfg.channels = 2;
    cfg.service_cycles_per_line = 8;
    cfg.access_latency = 90;
    MemCtrl mem(cfg);
    // One 64B read entering at cycle 100: occupancy then latency.
    EXPECT_EQ(100 + 8 + 90, mem.serve(100, 0, 64, false));
    EXPECT_EQ(64u, mem.bytesRead());
}

TEST(MemCtrlTest, PostedWritesReturnImmediately)
{
    MemCtrl mem;
    EXPECT_EQ(50u, mem.serve(50, 0, 256, true));
    EXPECT_EQ(256u, mem.bytesWritten());
    EXPECT_GT(mem.drainCycle(), 50u);
}

TEST(MemCtrlTest, ChannelInterleavingParallelism)
{
    MemCtrlConfig cfg;
    cfg.channels = 2;
    cfg.service_cycles_per_line = 8;
    cfg.access_latency = 0;
    MemCtrl mem(cfg);
    // Two consecutive lines go to different channels: both finish at
    // issue+8, not serialised.
    EXPECT_EQ(8u, mem.serve(0, 0, 128, false));
    // Two lines on the SAME channel serialise.
    MemCtrl mem2(cfg);
    mem2.serve(0, 0, 64, false);
    EXPECT_EQ(16u, mem2.serve(0, 128, 64, false));  // same channel 0
}

TEST(MemCtrlTest, QueueingDelaysLaterRequests)
{
    MemCtrlConfig cfg;
    cfg.channels = 1;
    cfg.service_cycles_per_line = 10;
    cfg.access_latency = 0;
    MemCtrl mem(cfg);
    EXPECT_EQ(10u, mem.serve(0, 0, 64, false));
    // Arrives at cycle 5 but channel busy until 10.
    EXPECT_EQ(20u, mem.serve(5, 64, 64, false));
    // Idle gap: starts fresh.
    EXPECT_EQ(110u, mem.serve(100, 128, 64, false));
}

TEST(UnitBufferTest, WindowAndCapacity)
{
    UnitBuffer buf(2, 100);
    buf.insert(0x0000, 10, 150);
    ASSERT_TRUE(buf.contains(0x0000, 50));
    EXPECT_EQ(150u, buf.transferDone(0x0000));
    EXPECT_FALSE(buf.contains(0x0000, 300));  // expired

    buf.insert(0x1000, 10, 20);
    buf.insert(0x2000, 12, 22);
    buf.insert(0x3000, 14, 24);              // evicts LRU
    EXPECT_FALSE(buf.contains(0x1000, 20));
    EXPECT_TRUE(buf.contains(0x2000, 20));
    EXPECT_TRUE(buf.contains(0x3000, 20));

    buf.invalidate(0x2000);
    EXPECT_FALSE(buf.contains(0x2000, 20));
}

TEST(SubtreeRootCacheTest, LruPinning)
{
    SubtreeRootCache cache(2, 3);
    EXPECT_TRUE(cache.enabled());
    EXPECT_FALSE(cache.lookup(0x100));
    cache.insert(0x100);
    cache.insert(0x200);
    EXPECT_TRUE(cache.lookup(0x100));  // refreshes MRU
    cache.insert(0x300);               // evicts 0x200
    EXPECT_TRUE(cache.lookup(0x100));
    EXPECT_FALSE(cache.lookup(0x200));
    EXPECT_TRUE(cache.lookup(0x300));
}

TEST(SubtreeRootCacheTest, DisabledCacheNeverHits)
{
    SubtreeRootCache cache(0, 3);
    cache.insert(0x100);
    EXPECT_FALSE(cache.lookup(0x100));
}

TEST(UnusedFilterTest, FirstTouchSkipsThenMounts)
{
    UnusedFilter filter(true);
    EXPECT_TRUE(filter.canSkipWalk(0x1000));
    filter.markTouched(0x1000);
    EXPECT_FALSE(filter.canSkipWalk(0x1000));
    EXPECT_FALSE(filter.canSkipWalk(0x1040));  // same chunk
    EXPECT_TRUE(filter.canSkipWalk(kChunkBytes));
    EXPECT_EQ(1u, filter.mountedChunks());
}

TEST(UnusedFilterTest, DisabledNeverSkips)
{
    UnusedFilter filter(false);
    EXPECT_FALSE(filter.canSkipWalk(0));
}

// ---- engines ---------------------------------------------------------------

MemRequest
readReq(Addr addr, std::uint32_t bytes, Cycle issue)
{
    MemRequest r;
    r.addr = addr;
    r.bytes = bytes;
    r.issue = issue;
    return r;
}

TEST(UnsecureEngineTest, MovesOnlyItsOwnBytes)
{
    UnsecureEngine eng;
    MemCtrl mem;
    eng.access(readReq(0, 256, 0), mem);
    EXPECT_EQ(256u, mem.totalBytes());
    EXPECT_EQ(0u, eng.securityCacheMisses());
}

class ConventionalEngineTest : public ::testing::Test
{
  protected:
    TimingConfig cfg_;
    MemCtrl mem_;
};

TEST_F(ConventionalEngineTest, ReadAddsMacAndCounterTraffic)
{
    ConventionalEngine eng(64 * kChunkBytes, cfg_);
    eng.access(readReq(0, 64, 0), mem_);
    // 1 data line + 1 MAC line + leaf counter line + upper levels
    // until the (empty) cache path ends at the on-chip root.
    EXPECT_GT(mem_.totalBytes(), 3u * 64u);
    EXPECT_GE(eng.securityCacheMisses(), 2u);
}

TEST_F(ConventionalEngineTest, SecondReadOfSamePartitionIsCheap)
{
    ConventionalEngine eng(64 * kChunkBytes, cfg_);
    eng.access(readReq(0, 64, 0), mem_);
    const auto bytes_after_first = mem_.totalBytes();
    // Neighbour line shares counter line and MAC line: only data.
    eng.access(readReq(64, 64, 1000), mem_);
    EXPECT_EQ(bytes_after_first + 64, mem_.totalBytes());
}

TEST_F(ConventionalEngineTest, ReadLatencyCoversCryptoPipeline)
{
    ConventionalEngine eng(64 * kChunkBytes, cfg_);
    const Cycle done = eng.access(readReq(0, 64, 0), mem_);
    // Must at least cover DRAM + OTP + XOR + hash.
    EXPECT_GE(done, MemCtrlConfig{}.access_latency +
                        cfg_.otp_latency + cfg_.xor_latency +
                        cfg_.hash_latency);
}

TEST_F(ConventionalEngineTest, WritesArePostedButDirtyMetadata)
{
    ConventionalEngine eng(64 * kChunkBytes, cfg_);
    MemRequest w = readReq(0, 64, 5);
    w.is_write = true;
    EXPECT_EQ(5u, eng.access(w, mem_));
    // Write walked the tree (fetch misses) and wrote the data.
    EXPECT_GT(mem_.bytesRead(), 0u);
    EXPECT_GE(mem_.bytesWritten(), 64u);
}

TEST_F(ConventionalEngineTest, MacOnlyMaskSkipsCounters)
{
    ConventionalEngine mac_only(
        64 * kChunkBytes, cfg_,
        ConventionalEngine::CostMask{true, false});
    mac_only.access(readReq(0, 64, 0), mem_);
    // Exactly data + MAC line.
    EXPECT_EQ(2u * 64u, mem_.totalBytes());
}

TEST_F(ConventionalEngineTest, UnusedPruningSkipsColdWalks)
{
    TimingConfig pruned = cfg_;
    pruned.unused_pruning = true;
    ConventionalEngine eng(64 * kChunkBytes, pruned);
    eng.access(readReq(0, 64, 0), mem_);
    // Cold chunk: data + MAC only, no tree walk.
    EXPECT_EQ(2u * 64u, mem_.totalBytes());
    // Once touched, walks resume.
    eng.access(readReq(4096, 64, 10), mem_);
    EXPECT_GT(mem_.totalBytes(), 4u * 64u);
}

TEST_F(ConventionalEngineTest, BulkRequestChargesPerPartitionMetadata)
{
    ConventionalEngine eng(64 * kChunkBytes, cfg_);
    eng.access(readReq(0, 4096, 0), mem_);
    // 64 data lines + 8 counter lines + 8 MAC lines + walk extras.
    EXPECT_GE(mem_.totalBytes(), (64u + 8u + 8u) * 64u);
}

} // namespace
} // namespace mgmee
