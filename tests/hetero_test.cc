/**
 * @file
 * Integration tests: devices, workload generation, scenario
 * catalogue, the hetero system run loop, and end-to-end scheme
 * ordering on real scenarios.
 */

#include <gtest/gtest.h>

#include <set>

#include "hetero/hetero_system.hh"
#include "hetero/metrics.hh"
#include "workloads/registry.hh"

namespace mgmee {
namespace {

TEST(WorkloadRegistryTest, AllPaperWorkloadsPresent)
{
    for (const char *name :
         {"bw", "gcc", "mcf", "xal", "ray", "floyd", "mm", "pr",
          "sten", "syr2k", "ncf", "dlrm", "alex", "sfrnn", "yt",
          "sc"}) {
        EXPECT_EQ(name, findWorkload(name).name);
    }
    EXPECT_EQ(16u, allWorkloads().size());
}

TEST(TraceGenTest, DeterministicPerSeed)
{
    const WorkloadSpec &spec = findWorkload("alex");
    const Trace a = generateTrace(spec, 0, 7);
    const Trace b = generateTrace(spec, 0, 7);
    const Trace c = generateTrace(spec, 0, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].gap, b[i].gap);
    }
    EXPECT_NE(a.size() == c.size() && a[0].addr == c[0].addr &&
                  a[1].addr == c[1].addr && a[2].addr == c[2].addr,
              true);
}

TEST(TraceGenTest, AddressesStayInFootprint)
{
    const WorkloadSpec &spec = findWorkload("mm");
    const Addr base = 3 * kDeviceStride;
    for (const TraceOp &op : generateTrace(spec, base, 1)) {
        EXPECT_GE(op.addr, base);
        EXPECT_LT(op.addr + op.bytes, base + spec.footprint + 1);
    }
}

TEST(TraceGenTest, ProfileMatchesWorkloadClass)
{
    // alex must be 32KB-dominant; bw must be 64B-dominant; xal must
    // show a visible 512B share (Sec. 3.1 / Fig. 4).
    const auto palex = profileTrace(
        generateTrace(findWorkload("alex"), 0, 1));
    const double alex_total = palex.lines64 + palex.lines512 +
                              palex.lines4k + palex.lines32k;
    EXPECT_GT(palex.lines32k / alex_total, 0.55);

    const auto pbw =
        profileTrace(generateTrace(findWorkload("bw"), 0, 1));
    const double bw_total = pbw.lines64 + pbw.lines512 + pbw.lines4k +
                            pbw.lines32k;
    EXPECT_GT(pbw.lines64 / bw_total, 0.80);

    const auto pxal =
        profileTrace(generateTrace(findWorkload("xal"), 0, 1));
    const double xal_total = pxal.lines64 + pxal.lines512 +
                             pxal.lines4k + pxal.lines32k;
    EXPECT_GT(pxal.lines512 / xal_total, 0.10);
}

TEST(DeviceTest, WindowLimitsOutstandingRequests)
{
    Trace trace;
    for (int i = 0; i < 4; ++i)
        trace.push_back({Addr(i * 64), 64, false, 0});
    Device dev("d", DeviceKind::CPU, 0, trace, 2);

    EXPECT_EQ(0u, dev.nextIssue());
    dev.complete(1000);             // op0 done at 1000
    EXPECT_EQ(0u, dev.nextIssue()); // window 2: op1 free
    dev.complete(2000);             // op1 done at 2000
    // op2 must wait for op0's completion (i-window = 0).
    EXPECT_EQ(1000u, dev.nextIssue());
    dev.complete(2500);
    // op3 waits for op1 (done 2000).
    EXPECT_EQ(2000u, dev.nextIssue());
    dev.complete(2600);
    EXPECT_TRUE(dev.done());
    EXPECT_EQ(2600u, dev.finishTime());
}

TEST(DeviceTest, GapsPaceIssue)
{
    Trace trace;
    trace.push_back({0, 64, false, 100});
    trace.push_back({64, 64, false, 50});
    Device dev("d", DeviceKind::CPU, 0, trace, 8);
    EXPECT_EQ(100u, dev.nextIssue());
    dev.complete(120);
    EXPECT_EQ(150u, dev.nextIssue());
}

TEST(ScenarioTest, CatalogueSizes)
{
    EXPECT_EQ(250u, allScenarios().size());
    EXPECT_EQ(11u, selectedScenarios().size());
    // All scenario ids unique.
    std::set<std::string> ids;
    for (const auto &s : allScenarios())
        ids.insert(s.id);
    EXPECT_EQ(250u, ids.size());
}

TEST(ScenarioTest, SelectedScenariosMatchTable4)
{
    const auto sel = selectedScenarios();
    EXPECT_EQ("ff1", sel[0].id);
    EXPECT_EQ("bw", sel[0].cpu);
    EXPECT_EQ("cc3", sel[10].id);
    EXPECT_EQ("alex", sel[10].npu2);
}

TEST(ScenarioTest, DevicesGetDisjointWindows)
{
    const auto devices = buildDevices(selectedScenarios()[0], 1, 0.2);
    ASSERT_EQ(4u, devices.size());
    EXPECT_EQ(DeviceKind::CPU, devices[0].kind());
    EXPECT_EQ(DeviceKind::GPU, devices[1].kind());
    EXPECT_EQ(DeviceKind::NPU, devices[2].kind());
    EXPECT_EQ(DeviceKind::NPU, devices[3].kind());
}

TEST(HeteroSystemTest, RunsToCompletionDeterministically)
{
    const Scenario sc = selectedScenarios()[0];
    const RunResult a = runScenario(sc, Scheme::Conventional, 1, 0.2);
    const RunResult b = runScenario(sc, Scheme::Conventional, 1, 0.2);
    EXPECT_EQ(a.device_finish, b.device_finish);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_GT(a.requests, 0u);
}

TEST(HeteroSystemTest, SchemeOrderingOnCoarseScenario)
{
    const Scenario cc1{"cc1", "xal", "mm", "alex", "dlrm"};
    const auto unsec = runScenario(cc1, Scheme::Unsecure, 1, 0.3);
    const auto conv = runScenario(cc1, Scheme::Conventional, 1, 0.3);
    const auto ours = runScenario(cc1, Scheme::Ours, 1, 0.3);
    const auto combo = runScenario(cc1, Scheme::BmfUnusedOurs, 1, 0.3);

    const double n_conv = normalizedExecTime(conv, unsec);
    const double n_ours = normalizedExecTime(ours, unsec);
    const double n_combo = normalizedExecTime(combo, unsec);

    // The paper's headline ordering (Sec. 5.2/5.3).
    EXPECT_GT(n_conv, 1.0);
    EXPECT_LT(n_ours, n_conv);
    EXPECT_LT(n_combo, n_ours * 1.02);  // combined at least as good
    EXPECT_LT(ours.total_bytes, conv.total_bytes);
    EXPECT_LT(ours.security_misses, conv.security_misses);
}

TEST(HeteroSystemTest, UnsecureIsTheFloor)
{
    const Scenario sc = selectedScenarios()[5];  // c1
    const auto unsec = runScenario(sc, Scheme::Unsecure, 1, 0.2);
    for (Scheme scheme :
         {Scheme::Conventional, Scheme::Ours, Scheme::Adaptive,
          Scheme::CommonCTR, Scheme::BmfUnusedOurs}) {
        const auto r = runScenario(sc, scheme, 1, 0.2);
        EXPECT_GE(normalizedExecTime(r, unsec), 0.999)
            << schemeName(scheme);
        EXPECT_GE(r.total_bytes, unsec.total_bytes)
            << schemeName(scheme);
    }
}

TEST(MetricsTest, StaticBestSearchPicksCoarseForCoarseDevices)
{
    const Scenario cc2{"cc2", "ray", "mm", "alex", "alex"};
    const auto best = searchStaticBest(cc2, 1, 0.25);
    // mm and alex are coarse: the chosen granularity for GPU/NPUs
    // should not be the finest.
    EXPECT_NE(Granularity::Line64B, best[2]);
}

TEST(MetricsTest, NormalizationIsPerDeviceMean)
{
    RunResult a, u;
    a.device_finish = {200, 100, 400, 100};
    u.device_finish = {100, 100, 200, 100};
    EXPECT_DOUBLE_EQ((2.0 + 1.0 + 2.0 + 1.0) / 4,
                     normalizedExecTime(a, u));
    const auto per = normalizedPerDevice(a, u);
    EXPECT_DOUBLE_EQ(2.0, per[0]);
    EXPECT_DOUBLE_EQ(1.0, per[3]);
}

} // namespace
} // namespace mgmee
