/**
 * @file
 * Threat-model tests beyond simple bit flips (Sec. 2.5), driven
 * through the fault-injection Target API (fault/injector.hh) rather
 * than hand-rolled corruption: splicing (relocating valid off-chip
 * state between addresses), coarse-unit splicing, multi-version
 * replay, cross-granularity replay, and recovery after detection.
 * The systematic class x granularity x engine sweep lives in
 * fault_campaign_test.cc; these are the targeted scenarios.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/campaign.hh"
#include "fault/injector.hh"

namespace mgmee {
namespace {

using fault::Target;

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 17);
    return v;
}

class AttackTest : public ::testing::Test
{
  protected:
    AttackTest()
        : target_(fault::makeTarget("mgmee", 8 * kChunkBytes, 0x7a11))
    {
    }

    bool
    writeOk(Addr addr, const std::vector<std::uint8_t> &data)
    {
        return target_->write(addr, data);
    }

    bool
    readOk(Addr addr, std::size_t bytes = kCachelineBytes)
    {
        std::vector<std::uint8_t> out(bytes);
        return target_->read(addr, out);
    }

    std::unique_ptr<Target> target_;
};

TEST_F(AttackTest, SplicingValidLinesBetweenAddressesDetected)
{
    // Write two different lines, then swap their complete off-chip
    // state (ciphertext + MAC + counter + node MAC).  Each half is
    // individually consistent, but the MAC binds the ADDRESS, so
    // relocation must fail.
    ASSERT_TRUE(writeOk(0x000, pattern(kCachelineBytes, 1)));
    ASSERT_TRUE(writeOk(0x040, pattern(kCachelineBytes, 2)));

    const Target::Snapshot snap_a = target_->capture(0x000);
    const Target::Snapshot snap_b = target_->capture(0x040);
    target_->restore(snap_b, 0x000);
    target_->restore(snap_a, 0x040);

    EXPECT_FALSE(readOk(0x000));
    EXPECT_FALSE(readOk(0x040));
}

TEST_F(AttackTest, SplicingAcrossChunksDetected)
{
    ASSERT_TRUE(writeOk(0, pattern(kCachelineBytes, 3)));
    ASSERT_TRUE(writeOk(kChunkBytes, pattern(kCachelineBytes, 4)));
    target_->restore(target_->capture(kChunkBytes), 0);
    EXPECT_FALSE(readOk(0));
}

TEST_F(AttackTest, SplicingCoarseUnitsDetected)
{
    // Two chunks promoted to 32KB; relocate the second chunk's
    // off-chip line state onto the first.  The nested MAC of the
    // target unit must flag the foreign line.
    ASSERT_TRUE(writeOk(0, pattern(kChunkBytes, 5)));
    ASSERT_TRUE(writeOk(kChunkBytes, pattern(kChunkBytes, 6)));
    ASSERT_TRUE(target_->setGranularity(0, Granularity::Chunk32KB));
    ASSERT_TRUE(target_->setGranularity(1, Granularity::Chunk32KB));
    ASSERT_EQ(Granularity::Chunk32KB,
              target_->effectiveGranularity(0));

    target_->restore(target_->capture(kChunkBytes), 0);
    EXPECT_FALSE(readOk(0));
}

TEST_F(AttackTest, ReplayAfterManyVersionsDetected)
{
    // Roll back across several versions, not just one.
    ASSERT_TRUE(writeOk(0x200, pattern(kCachelineBytes, 1)));
    const Target::Snapshot old = target_->capture(0x200);
    for (std::uint8_t v = 2; v < 10; ++v)
        ASSERT_TRUE(writeOk(0x200, pattern(kCachelineBytes, v)));
    target_->restore(old, 0x200);
    EXPECT_FALSE(readOk(0x200));
}

TEST_F(AttackTest, ReplayAcrossGranularitySwitchDetected)
{
    // Capture fine-grained state, let the region get promoted (which
    // re-encrypts under a fresh shared counter), then replay the old
    // fine-grained image.
    ASSERT_TRUE(writeOk(0, pattern(kPartitionBytes, 7)));
    const Target::Snapshot stale = target_->capture(0);

    ASSERT_TRUE(target_->setGranularity(0, Granularity::Part512B));
    target_->boundary();
    ASSERT_TRUE(readOk(0));

    target_->restore(stale, 0);   // stale image at the old layout
    EXPECT_FALSE(readOk(0));
}

TEST_F(AttackTest, ZeroingCiphertextDetected)
{
    // Blunt attack: flip every ciphertext byte of a whole line.
    ASSERT_TRUE(writeOk(0x400, pattern(kCachelineBytes, 9)));
    for (unsigned b = 0; b < kCachelineBytes; ++b)
        ASSERT_TRUE(target_->corruptData(0x400, b));
    EXPECT_FALSE(readOk(0x400));
}

TEST_F(AttackTest, TamperingUnwrittenMemoryDetected)
{
    // Even never-written (zero-initialised) memory is protected once
    // the engine has initialised the chunk.
    ASSERT_TRUE(readOk(0x600));
    ASSERT_TRUE(target_->corruptData(0x600, 1));
    EXPECT_FALSE(readOk(0x600));
}

TEST_F(AttackTest, GranularityTableTamperDetected)
{
    // Rewriting the stored granularity-table state behind the
    // engine's back leaves its counters/MAC slots looked up at the
    // wrong places -- reads must fail, not silently succeed.
    ASSERT_TRUE(writeOk(0, pattern(kChunkBytes, 10)));
    ASSERT_TRUE(target_->tamperGranTable(0, 0));
    EXPECT_FALSE(readOk(0));
}

TEST_F(AttackTest, HonestOperationAfterDetectionsStillWorks)
{
    // Detection must not corrupt the engine's own state: after a
    // caught attack and a rewrite, normal operation resumes.
    ASSERT_TRUE(writeOk(0x800, pattern(kCachelineBytes, 11)));
    ASSERT_TRUE(target_->corruptMac(0x800));
    EXPECT_FALSE(readOk(0x800));

    const auto fresh = pattern(kCachelineBytes, 12);
    ASSERT_TRUE(writeOk(0x800, fresh));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_TRUE(target_->read(0x800, out));
    EXPECT_EQ(fresh, out);
}

} // namespace
} // namespace mgmee
