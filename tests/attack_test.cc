/**
 * @file
 * Threat-model tests beyond simple bit flips (Sec. 2.5): splicing
 * (relocating valid ciphertext between addresses), MAC relocation,
 * cross-granularity replay, and combinations an attacker with full
 * off-chip control could attempt.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
attackKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(0x3c ^ (i * 11));
    keys.mac = {0x5353535353535353ULL, 0xacacacacacacacacULL};
    return keys;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 17);
    return v;
}

class AttackTest : public ::testing::Test
{
  protected:
    AttackTest() : mem_(8 * kChunkBytes, attackKeys()) {}

    SecureMemory mem_;
};

TEST_F(AttackTest, SplicingValidLinesBetweenAddressesDetected)
{
    // Write two different lines, then swap their complete off-chip
    // state (ciphertext + MAC + counter + node MAC).  Each half is
    // individually consistent, but the MAC binds the ADDRESS, so
    // relocation must fail.
    mem_.write(0x000, pattern(kCachelineBytes, 1));
    mem_.write(0x040, pattern(kCachelineBytes, 2));

    const auto snap_a = mem_.captureForReplay(0x000);
    const auto snap_b = mem_.captureForReplay(0x040);

    auto relocated_b = snap_b;
    relocated_b.addr = 0x000;
    auto relocated_a = snap_a;
    relocated_a.addr = 0x040;
    mem_.replay(relocated_b);
    mem_.replay(relocated_a);

    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x000, out));
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x040, out));
}

TEST_F(AttackTest, SplicingAcrossChunksDetected)
{
    mem_.write(0, pattern(kCachelineBytes, 3));
    mem_.write(kChunkBytes, pattern(kCachelineBytes, 4));
    auto moved = mem_.captureForReplay(kChunkBytes);
    moved.addr = 0;
    mem_.replay(moved);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0, out));
}

TEST_F(AttackTest, SplicingCoarseUnitsDetected)
{
    // Two chunks promoted to 32KB; swap their first lines' off-chip
    // data.  The nested MAC of each unit must flag the foreign line.
    const auto a = pattern(kChunkBytes, 5);
    const auto b = pattern(kChunkBytes, 6);
    mem_.write(0, a);
    mem_.write(kChunkBytes, b);
    mem_.applyStreamPart(0, kAllStream);
    mem_.applyStreamPart(1, kAllStream);

    auto snap = mem_.captureForReplay(kChunkBytes);
    snap.addr = 0;
    mem_.replay(snap);

    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0, out));
}

TEST_F(AttackTest, ReplayAfterManyVersionsDetected)
{
    // Roll back across several versions, not just one.
    mem_.write(0x200, pattern(kCachelineBytes, 1));
    const auto old = mem_.captureForReplay(0x200);
    for (std::uint8_t v = 2; v < 10; ++v)
        mem_.write(0x200, pattern(kCachelineBytes, v));
    mem_.replay(old);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x200, out));
}

TEST_F(AttackTest, ReplayAcrossGranularitySwitchDetected)
{
    // Capture fine-grained state, let the region get promoted (which
    // re-encrypts under a fresh shared counter), then replay the old
    // fine-grained image.
    const auto data = pattern(kPartitionBytes, 7);
    mem_.write(0, data);
    const auto stale = mem_.captureForReplay(0);

    mem_.applyStreamPart(0, StreamPart{0b1});   // promote to 512B
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0, out));

    mem_.replay(stale);   // stale ciphertext + metadata at old layout
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0, out));
}

TEST_F(AttackTest, ZeroingCiphertextDetected)
{
    // Blunt attack: zero a whole line of ciphertext.
    mem_.write(0x400, pattern(kCachelineBytes, 9));
    for (unsigned b = 0; b < kCachelineBytes; ++b)
        mem_.corruptData(0x400, b);   // flips every byte's low bit
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::MacMismatch,
              mem_.read(0x400, out));
}

TEST_F(AttackTest, TamperingUnwrittenMemoryDetected)
{
    // Even never-written (zero-initialised) memory is protected once
    // the engine has initialised the chunk.
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x600, out));
    mem_.corruptData(0x600, 1);
    EXPECT_EQ(SecureMemory::Status::MacMismatch,
              mem_.read(0x600, out));
}

TEST_F(AttackTest, HonestOperationAfterDetectionsStillWorks)
{
    // Detection must not corrupt the engine's own state: after a
    // caught attack and a rewrite, normal operation resumes.
    const auto data = pattern(kCachelineBytes, 11);
    mem_.write(0x800, data);
    mem_.corruptMac(0x800);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x800, out));

    const auto fresh = pattern(kCachelineBytes, 12);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0x800, fresh));
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x800, out));
    EXPECT_EQ(fresh, out);
}

} // namespace
} // namespace mgmee
