/**
 * @file
 * Unit tests for the set-associative cache model: hit/miss behaviour,
 * LRU eviction, dirty write-back tracking, invalidation and flush.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace mgmee {
namespace {

TEST(CacheTest, ColdMissThenHit)
{
    Cache c("c", 1024, 2);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit);  // same line
    EXPECT_EQ(1u, c.misses());
    EXPECT_EQ(2u, c.hits());
}

TEST(CacheTest, LruEvictionOrder)
{
    // 2-way, line 64B, 2 sets -> set stride is 128B.
    Cache c("c", 256, 2);
    c.access(0x0000, false);   // set 0, way A
    c.access(0x0080, false);   // set 0, way B
    c.access(0x0000, false);   // touch A: B becomes LRU
    c.access(0x0100, false);   // set 0: evicts B
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0080));
    EXPECT_TRUE(c.contains(0x0100));
}

TEST(CacheTest, DirtyVictimReportsWriteback)
{
    Cache c("c", 128, 1);  // direct-mapped, 2 sets
    c.access(0x0000, true);              // dirty fill
    const auto res = c.access(0x0080, false);  // same set, evicts
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(0x0000u, res.victim_addr);
    EXPECT_EQ(1u, c.writebacks());
}

TEST(CacheTest, CleanVictimNoWriteback)
{
    Cache c("c", 128, 1);
    c.access(0x0000, false);
    const auto res = c.access(0x0080, false);
    EXPECT_FALSE(res.writeback);
    EXPECT_EQ(0u, c.writebacks());
}

TEST(CacheTest, WriteHitMarksDirty)
{
    Cache c("c", 128, 1);
    c.access(0x0000, false);
    c.access(0x0000, true);   // dirty via hit
    const auto res = c.access(0x0080, false);
    EXPECT_TRUE(res.writeback);
}

TEST(CacheTest, InvalidateReturnsDirtiness)
{
    Cache c("c", 1024, 4);
    c.access(0x40, true);
    c.access(0x80, false);
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.invalidate(0x80));
    EXPECT_FALSE(c.invalidate(0xc0));  // absent
    EXPECT_FALSE(c.contains(0x40));
}

TEST(CacheTest, FlushCountsDirtyWritebacks)
{
    Cache c("c", 1024, 4);
    c.access(0x000, true);
    c.access(0x100, true);
    c.access(0x200, false);
    c.flush();
    EXPECT_EQ(2u, c.writebacks());
    EXPECT_FALSE(c.contains(0x000));
}

TEST(CacheTest, PaperSizedMetadataCaches)
{
    // The paper's 8KB metadata cache and 4KB MAC cache must construct.
    Cache meta("meta", 8 * 1024, 8);
    Cache mac("mac", 4 * 1024, 8);
    // Fill beyond capacity and confirm misses dominate for a stream.
    for (Addr a = 0; a < 64 * 1024; a += 64)
        meta.access(a, false);
    EXPECT_EQ(meta.accesses(), meta.misses());
}

TEST(CacheTest, HighLocalityMostlyHits)
{
    Cache c("c", 8 * 1024, 8);
    for (int round = 0; round < 10; ++round)
        for (Addr a = 0; a < 4 * 1024; a += 64)
            c.access(a, false);
    // First round misses, the rest hit.
    EXPECT_EQ(64u, c.misses());
    EXPECT_EQ(9u * 64u, c.hits());
}

} // namespace
} // namespace mgmee
