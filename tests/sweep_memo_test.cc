/**
 * @file
 * Contracts of the sweep-layer memoization stack (ISSUE 2):
 *
 *  (a) TraceRepo hands out traces byte-identical to a direct
 *      `generateTrace` call, and one shared instance per key;
 *  (b) a repeated `runSweep` is bit-exact across `MGMEE_MEMO=1`
 *      (cold and warm) and `MGMEE_MEMO=0`;
 *  (c) concurrent repo access from many workers is race-free: every
 *      thread observes the same shared trace object.
 *
 * Run the binary under `-fsanitize=thread` for a stronger version of
 * (c); the plain asserts here are the portable ctest gate.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "hetero/hetero_system.hh"
#include "hetero/run_memo.hh"
#include "workloads/registry.hh"
#include "workloads/trace_repo.hh"

namespace mgmee {
namespace {

using bench::SweepStats;

/** Scoped memo override through the Config layer; restores the prior
 *  process configuration on exit.  nullptr = knob default (on). */
class MemoEnv
{
  public:
    explicit MemoEnv(const char *value) : old_(config())
    {
        Config next = old_;
        next.memo = value == nullptr || std::string(value) != "0";
        setConfig(next);
    }

    ~MemoEnv() { setConfig(old_); }

  private:
    Config old_;
};

bool
tracesEqual(const Trace &a, const Trace &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].addr != b[i].addr || a[i].bytes != b[i].bytes ||
            a[i].is_write != b[i].is_write || a[i].gap != b[i].gap) {
            return false;
        }
    }
    return true;
}

std::vector<Scenario>
smallScenarioSet(std::size_t n)
{
    std::vector<Scenario> all = allScenarios();
    std::vector<Scenario> subset;
    for (std::size_t i = 0; i < n; ++i)
        subset.push_back(all[i * all.size() / n]);
    return subset;
}

bool
sweepEqual(const std::vector<SweepStats> &a,
           const std::vector<SweepStats> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].exec_norm != b[i].exec_norm ||
            a[i].traffic_norm != b[i].traffic_norm ||
            a[i].misses != b[i].misses) {
            return false;
        }
    }
    return true;
}

TEST(TraceRepoTest, MatchesDirectGeneration)
{
    MemoEnv memo("1");
    TraceRepo::instance().clear();
    for (const char *name : {"mcf", "sten", "ncf"}) {
        const WorkloadSpec &spec = findWorkload(name);
        const auto shared = TraceRepo::instance().get(
            spec, 2 * kDeviceStride, 17, 0.3);
        const Trace direct =
            generateTrace(spec, 2 * kDeviceStride, 17, 0.3);
        ASSERT_TRUE(shared != nullptr);
        EXPECT_TRUE(tracesEqual(*shared, direct)) << name;
    }
}

TEST(TraceRepoTest, SharesOneInstancePerKey)
{
    MemoEnv memo("1");
    TraceRepo::instance().clear();
    const WorkloadSpec &spec = findWorkload("dlrm");
    const auto a = TraceRepo::instance().get(spec, 0, 5, 0.25);
    const auto b = TraceRepo::instance().get(spec, 0, 5, 0.25);
    EXPECT_EQ(a.get(), b.get());  // same object, not a copy

    // Different key components must yield different traces.
    const auto other_seed = TraceRepo::instance().get(spec, 0, 6,
                                                      0.25);
    const auto other_base =
        TraceRepo::instance().get(spec, kDeviceStride, 5, 0.25);
    EXPECT_NE(a.get(), other_seed.get());
    EXPECT_NE(a.get(), other_base.get());
}

TEST(TraceRepoTest, DisabledMemoStillByteIdentical)
{
    MemoEnv memo("0");
    const WorkloadSpec &spec = findWorkload("alex");
    const auto a = TraceRepo::instance().get(spec, 0, 3, 0.2);
    const auto b = TraceRepo::instance().get(spec, 0, 3, 0.2);
    EXPECT_NE(a.get(), b.get());  // private instances
    EXPECT_TRUE(tracesEqual(*a, *b));
    EXPECT_TRUE(
        tracesEqual(*a, generateTrace(spec, 0, 3, 0.2)));
}

TEST(SweepMemoTest, MemoOnOffBitExact)
{
    const std::vector<Scenario> scenarios = smallScenarioSet(4);
    const std::vector<Scheme> schemes = {Scheme::Conventional,
                                         Scheme::Ours};
    constexpr double kScale = 0.05;
    constexpr std::uint64_t kSeed = 1;

    std::vector<SweepStats> memo_cold, memo_warm, plain;
    {
        MemoEnv memo("1");
        TraceRepo::instance().clear();
        runMemoClear();
        memo_cold = bench::runSweep(scenarios, schemes, kScale, kSeed);
        // Second sweep is served from the memo.
        memo_warm = bench::runSweep(scenarios, schemes, kScale, kSeed);
    }
    {
        MemoEnv memo("0");
        plain = bench::runSweep(scenarios, schemes, kScale, kSeed);
    }

    EXPECT_TRUE(sweepEqual(memo_cold, memo_warm));
    EXPECT_TRUE(sweepEqual(memo_cold, plain));
}

TEST(SweepMemoTest, StaticBestSearchMemoBitExact)
{
    const std::vector<Scenario> scenarios = smallScenarioSet(2);
    const std::vector<Scheme> schemes = {Scheme::StaticDeviceBest};
    constexpr double kScale = 0.05;

    std::vector<SweepStats> with_memo, without;
    {
        MemoEnv memo("1");
        TraceRepo::instance().clear();
        runMemoClear();
        with_memo = bench::runSweep(scenarios, schemes, kScale, 1,
                                    /*use_static_best_search=*/true);
    }
    {
        MemoEnv memo("0");
        without = bench::runSweep(scenarios, schemes, kScale, 1,
                                  /*use_static_best_search=*/true);
    }
    EXPECT_TRUE(sweepEqual(with_memo, without));
}

TEST(SweepMemoTest, RunMemoCountsHitsOnRepeat)
{
    MemoEnv memo("1");
    runMemoClear();
    const Scenario sc = selectedScenarios()[0];
    const RunResult a = runScenarioMemo(sc, Scheme::Conventional, 7,
                                        0.05);
    const RunMemoStats before = runMemoStats();
    const RunResult b = runScenarioMemo(sc, Scheme::Conventional, 7,
                                        0.05);
    const RunMemoStats after = runMemoStats();
    EXPECT_EQ(a.device_finish, b.device_finish);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.security_misses, b.security_misses);
    EXPECT_EQ(before.run_hits + 1, after.run_hits);
    EXPECT_EQ(before.run_misses, after.run_misses);
}

TEST(SweepMemoTest, MemoCountersLandInStatRegistry)
{
    MemoEnv memo("1");
    runMemoClear();
    TraceRepo::instance().clear();

    const StatGroup memo_before =
        StatRegistry::instance().snapshot("run_memo");
    const StatGroup repo_before =
        StatRegistry::instance().snapshot("trace_repo");

    // Cold run (misses), then a replay (hits).
    const Scenario sc = selectedScenarios()[0];
    runScenarioMemo(sc, Scheme::Conventional, 23, 0.05);
    runScenarioMemo(sc, Scheme::Conventional, 23, 0.05);

    const StatGroup memo_after =
        StatRegistry::instance().snapshot("run_memo");
    const StatGroup repo_after =
        StatRegistry::instance().snapshot("trace_repo");

    // One run-memo miss and one hit from the pair of calls; the cold
    // run generated its traces through the repo (four misses, one
    // per device), the replay never reached it.
    EXPECT_EQ(memo_before.get("misses") + 1, memo_after.get("misses"));
    EXPECT_EQ(memo_before.get("hits") + 1, memo_after.get("hits"));
    EXPECT_EQ(repo_before.get("misses") + 4, repo_after.get("misses"));
    EXPECT_EQ(repo_before.get("hits"), repo_after.get("hits"));

    // The registry view is the memo's own view, not a copy.
    const RunMemoStats direct = runMemoStats();
    EXPECT_EQ(direct.run_hits, memo_after.get("hits"));
    EXPECT_EQ(direct.run_misses, memo_after.get("misses"));
    EXPECT_EQ(TraceRepo::instance().hits(), repo_after.get("hits"));
    EXPECT_EQ(TraceRepo::instance().misses(),
              repo_after.get("misses"));
}

TEST(TraceRepoTest, ConcurrentAccessIsRaceFree)
{
    MemoEnv memo("1");
    TraceRepo::instance().clear();

    // The worker count mirrors the sweep fan-out (MGMEE_THREADS).
    const unsigned workers = std::max(4u, bench::envThreads());
    constexpr unsigned kItersPerWorker = 32;
    const WorkloadSpec &cpu = findWorkload("gcc");
    const WorkloadSpec &gpu = findWorkload("pr");
    const WorkloadSpec &npu = findWorkload("sfrnn");

    std::vector<std::shared_ptr<const Trace>> first(workers);
    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w]() {
            for (unsigned i = 0; i < kItersPerWorker; ++i) {
                const auto a = TraceRepo::instance().get(cpu, 0, 11,
                                                         0.1);
                const auto b = TraceRepo::instance().get(
                    gpu, kDeviceStride, 11, 0.1);
                const auto c = TraceRepo::instance().get(
                    npu, 2 * kDeviceStride, 11, 0.1);
                (void)b;
                (void)c;
                if (i == 0)
                    first[w] = a;
            }
        });
    }
    for (auto &t : pool)
        t.join();

    // Every worker got the same shared instance for the same key.
    for (unsigned w = 1; w < workers; ++w)
        EXPECT_EQ(first[0].get(), first[w].get());
    EXPECT_TRUE(tracesEqual(*first[0],
                            generateTrace(cpu, 0, 11, 0.1)));
}

TEST(SweepMemoTest, MemoKnobParses)
{
    // Knob-level check: the MGMEE_MEMO string must survive the trip
    // through Config::fromEnv(), not just through setConfig().  The
    // knob ends the test unset; in-suite memo control goes through
    // MemoEnv (setConfig), so nothing downstream depends on it.
    unsetenv("MGMEE_MEMO");
    reloadConfigFromEnv();
    EXPECT_TRUE(memoEnabled());  // default: on

    setenv("MGMEE_MEMO", "0", 1);
    reloadConfigFromEnv();
    EXPECT_FALSE(memoEnabled());

    setenv("MGMEE_MEMO", "1", 1);
    reloadConfigFromEnv();
    EXPECT_TRUE(memoEnabled());

    unsetenv("MGMEE_MEMO");
    reloadConfigFromEnv();
}

} // namespace
} // namespace mgmee
