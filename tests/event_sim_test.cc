/**
 * @file
 * Tests for the discrete-event core and the cross-validation of the
 * fast closed-loop model against the event-driven twin.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hetero/hetero_system.hh"
#include "hetero/metrics.hh"
#include "sim/event_queue.hh"
#include "sim/event_system.hh"

namespace mgmee {
namespace {

TEST(EventQueueTest, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
    EXPECT_EQ(30u, q.now());
    EXPECT_EQ(3u, q.dispatched());
}

TEST(EventQueueTest, SameCycleIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ((std::vector<int>{0, 1, 2, 3, 4}), order);
}

TEST(EventQueueTest, HandlersMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            q.schedule(q.now() + 5, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(10, fired);
    EXPECT_EQ(45u, q.now());
}

TEST(EventQueueTest, PastEventsStillDispatch)
{
    // Scheduling "in the past" is allowed (zero-latency callbacks);
    // order remains by (cycle, insertion).
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(5, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ((std::vector<int>{1, 2}), order);
}

/**
 * Cross-validation: the event-driven twin must reproduce the fast
 * closed-loop model's per-device finish times closely (they dispatch
 * identical request sets; only same-cycle tie order differs).
 */
class ModelCrossValidation
    : public ::testing::TestWithParam<std::pair<const char *, Scheme>>
{
};

TEST_P(ModelCrossValidation, FinishTimesAgree)
{
    const auto [scenario_id, scheme] = GetParam();
    Scenario scenario;
    for (const Scenario &s : selectedScenarios())
        if (s.id == scenario_id)
            scenario = s;
    ASSERT_FALSE(scenario.cpu.empty());

    HeteroSystem fast(buildDevices(scenario, 1, 0.3),
                      makeEngine(scheme, scenarioDataBytes()));
    fast.run();

    EventDrivenSystem twin(buildDevices(scenario, 1, 0.3),
                           makeEngine(scheme, scenarioDataBytes()));
    twin.run();

    const auto a = fast.deviceFinishTimes();
    const auto b = twin.deviceFinishTimes();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); ++d) {
        const double rel =
            std::abs(static_cast<double>(a[d]) -
                     static_cast<double>(b[d])) /
            static_cast<double>(a[d]);
        EXPECT_LT(rel, 0.02)
            << "device " << d << ": fast " << a[d] << " vs event "
            << b[d];
    }

    // Traffic must agree closely too (same requests, same engine
    // logic; only cache-state tie-order effects may differ).
    const double traffic_rel =
        std::abs(static_cast<double>(fast.mem().totalBytes()) -
                 static_cast<double>(twin.mem().totalBytes())) /
        static_cast<double>(fast.mem().totalBytes());
    EXPECT_LT(traffic_rel, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ModelCrossValidation,
    ::testing::Values(
        std::make_pair("cc1", Scheme::Unsecure),
        std::make_pair("cc1", Scheme::Conventional),
        std::make_pair("cc1", Scheme::Ours),
        std::make_pair("ff2", Scheme::Conventional),
        std::make_pair("ff2", Scheme::Ours),
        std::make_pair("c1", Scheme::BmfUnusedOurs)),
    [](const auto &info) {
        std::string name = std::string(info.param.first) + "_" +
                           schemeName(info.param.second);
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace mgmee
