/**
 * @file
 * Unit tests for the stream-partition bitmap semantics (Sec. 4.4):
 * hierarchical granularity derivation, unit geometry helpers.
 */

#include <gtest/gtest.h>

#include "core/granularity.hh"

namespace mgmee {
namespace {

TEST(StreamPartTest, AllFineAllStream)
{
    for (unsigned p = 0; p < kPartitionsPerChunk; ++p) {
        EXPECT_EQ(Granularity::Line64B,
                  granularityOfPartition(kAllFine, p));
        EXPECT_EQ(Granularity::Chunk32KB,
                  granularityOfPartition(kAllStream, p));
    }
}

TEST(StreamPartTest, SingleStreamPartitionIs512B)
{
    const StreamPart sp = StreamPart{1} << 5;
    EXPECT_EQ(Granularity::Part512B, granularityOfPartition(sp, 5));
    EXPECT_EQ(Granularity::Line64B, granularityOfPartition(sp, 4));
    EXPECT_EQ(Granularity::Line64B, granularityOfPartition(sp, 6));
}

TEST(StreamPartTest, FullSubchunkGroupIs4KB)
{
    const StreamPart sp = subchunkMask(2);
    for (unsigned p = 16; p < 24; ++p)
        EXPECT_EQ(Granularity::Sub4KB, granularityOfPartition(sp, p));
    EXPECT_EQ(Granularity::Line64B, granularityOfPartition(sp, 15));
    EXPECT_EQ(Granularity::Line64B, granularityOfPartition(sp, 24));
}

TEST(StreamPartTest, SevenOfEightBitsIsOnly512B)
{
    // Group 0 with partition 3 missing: remaining set bits are 512B.
    const StreamPart sp = subchunkMask(0) & ~(StreamPart{1} << 3);
    EXPECT_EQ(Granularity::Part512B, granularityOfPartition(sp, 0));
    EXPECT_EQ(Granularity::Line64B, granularityOfPartition(sp, 3));
    EXPECT_EQ(Granularity::Part512B, granularityOfPartition(sp, 7));
}

TEST(StreamPartTest, PaperEncodingExample)
{
    // Sec. 4.4: "0b101000... means the first and the third 512B
    // partitions of the chunk are 512B granularity" -- i.e. bits 0
    // and 2 (LSB-first positions).
    const StreamPart sp = 0b101;
    EXPECT_EQ(Granularity::Part512B, granularityOfPartition(sp, 0));
    EXPECT_EQ(Granularity::Line64B, granularityOfPartition(sp, 1));
    EXPECT_EQ(Granularity::Part512B, granularityOfPartition(sp, 2));
    // "0b111...1 represents the 32KB granularity."
    EXPECT_EQ(Granularity::Chunk32KB,
              granularityOfPartition(kAllStream, 17));
}

TEST(StreamPartTest, GranularityOfAddrMatchesPartition)
{
    const StreamPart sp = subchunkMask(1) | (StreamPart{1} << 40);
    const Addr chunk2 = 2 * kChunkBytes;
    EXPECT_EQ(Granularity::Sub4KB,
              granularityOfAddr(sp, chunk2 + kSubchunkBytes + 100));
    EXPECT_EQ(Granularity::Part512B,
              granularityOfAddr(sp, chunk2 + 40 * kPartitionBytes));
    EXPECT_EQ(Granularity::Line64B, granularityOfAddr(sp, chunk2));
}

TEST(UnitGeometryTest, UnitBaseAndLines)
{
    const Addr a = kChunkBytes + 3 * kSubchunkBytes + 777;
    EXPECT_EQ(alignDown(a, kCachelineBytes),
              unitBase(a, Granularity::Line64B));
    EXPECT_EQ(alignDown(a, kPartitionBytes),
              unitBase(a, Granularity::Part512B));
    EXPECT_EQ(kChunkBytes + 3 * kSubchunkBytes,
              unitBase(a, Granularity::Sub4KB));
    EXPECT_EQ(kChunkBytes, unitBase(a, Granularity::Chunk32KB));

    EXPECT_EQ(1u, unitLines(Granularity::Line64B));
    EXPECT_EQ(8u, unitLines(Granularity::Part512B));
    EXPECT_EQ(64u, unitLines(Granularity::Sub4KB));
    EXPECT_EQ(512u, unitLines(Granularity::Chunk32KB));
}

/** Property sweep: every partition maps into exactly one class. */
class StreamPartPropertyTest
    : public ::testing::TestWithParam<StreamPart>
{
};

TEST_P(StreamPartPropertyTest, HierarchyIsConsistent)
{
    const StreamPart sp = GetParam();
    for (unsigned p = 0; p < kPartitionsPerChunk; ++p) {
        const Granularity g = granularityOfPartition(sp, p);
        if (g == Granularity::Line64B) {
            EXPECT_FALSE(isStreamPartition(sp, p));
        } else {
            // Any coarse class requires the partition bit itself.
            EXPECT_TRUE(isStreamPartition(sp, p));
        }
        if (g == Granularity::Sub4KB) {
            // The whole aligned group must be stream.
            const unsigned sub = p / 8;
            EXPECT_EQ(subchunkMask(sub), sp & subchunkMask(sub));
        }
        if (g == Granularity::Chunk32KB) {
            EXPECT_EQ(kAllStream, sp);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StreamPartPropertyTest,
    ::testing::Values(kAllFine, kAllStream, StreamPart{1},
                      subchunkMask(0), subchunkMask(7),
                      subchunkMask(3) | (StreamPart{1} << 60),
                      0x00000000ffffffffull, 0xaaaaaaaaaaaaaaaaull,
                      0x0123456789abcdefull));

} // namespace
} // namespace mgmee
