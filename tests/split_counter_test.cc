/**
 * @file
 * Unit tests for the split-counter line encoding: monotonicity, pad
 * uniqueness across overflow, storage accounting, and the invariant
 * that an overflow never reuses a logical counter value.
 */

#include <gtest/gtest.h>

#include <set>

#include "tree/split_counter.hh"

namespace mgmee {
namespace {

TEST(SplitCounterTest, FreshLineIsZero)
{
    SplitCounterLine line(7);
    for (unsigned i = 0; i < kTreeArity; ++i) {
        EXPECT_EQ(0u, line.value(i));
        EXPECT_EQ(0u, line.minor(i));
    }
    EXPECT_EQ(0u, line.major());
    EXPECT_EQ(0u, line.overflows());
}

TEST(SplitCounterTest, BumpIncrementsOnlyThatSlot)
{
    SplitCounterLine line(7);
    EXPECT_FALSE(line.bump(3));
    EXPECT_EQ(1u, line.value(3));
    for (unsigned i = 0; i < kTreeArity; ++i) {
        if (i != 3)
            EXPECT_EQ(0u, line.value(i));
    }
}

TEST(SplitCounterTest, OverflowAdvancesMajorAndResetsMinors)
{
    SplitCounterLine line(3);  // minors saturate at 7
    for (int b = 0; b < 7; ++b)
        EXPECT_FALSE(line.bump(0));
    EXPECT_EQ(7u, line.minor(0));
    line.bump(5);  // another slot moves too

    EXPECT_TRUE(line.bump(0));  // the 8th bump of slot 0 overflows
    EXPECT_EQ(1u, line.major());
    EXPECT_EQ(1u, line.overflows());
    for (unsigned i = 0; i < kTreeArity; ++i)
        EXPECT_EQ(0u, line.minor(i));
    // Slot 5's logical value jumped forward, never backward.
    EXPECT_EQ(std::uint64_t{1} << 3, line.value(5));
}

TEST(SplitCounterTest, LogicalValuesNeverRepeatPerSlot)
{
    // Drive one slot through several overflows while poking others;
    // its logical counter must be strictly monotonic (pad uniqueness).
    SplitCounterLine line(2);
    std::set<std::uint64_t> seen{line.value(0)};
    std::uint64_t prev = line.value(0);
    for (int b = 0; b < 40; ++b) {
        line.bump(0);
        if (b % 3 == 0)
            line.bump(1);
        const std::uint64_t v = line.value(0);
        EXPECT_GT(v, prev);
        EXPECT_TRUE(seen.insert(v).second);
        prev = v;
    }
    EXPECT_GE(line.overflows(), 8u);
}

TEST(SplitCounterTest, CrossSlotValuesMayCollideButPadsDiffer)
{
    // Different slots can share logical values -- the OTP binds the
    // ADDRESS as well, so that is safe.  This test documents the
    // contract rather than the crypto (covered in crypto_test).
    SplitCounterLine line(4);
    line.bump(0);
    line.bump(1);
    EXPECT_EQ(line.value(0), line.value(1));
}

TEST(SplitCounterTest, StorageAccounting)
{
    // 56-bit major + 8 x 7-bit minors = 112 bits, vs 8 x 64 = 512
    // bits for monotonic counters: the 4.5x compaction real MEEs buy.
    SplitCounterLine line(7);
    EXPECT_EQ(56u + 8u * 7u, line.storageBits());
    EXPECT_EQ(128u, line.bumpsPerOverflow());

    SplitCounterLine narrow(2);
    EXPECT_EQ(56u + 16u, narrow.storageBits());
    EXPECT_EQ(4u, narrow.bumpsPerOverflow());
}

TEST(SplitCounterTest, UniformBumpingOverflowsAtFullRate)
{
    // Round-robin bumping of all 8 slots: each slot overflows after
    // 2^bits of ITS OWN bumps, i.e. one overflow per 8 * 2^bits total.
    SplitCounterLine line(4);
    std::uint64_t total = 0;
    while (line.overflows() == 0) {
        for (unsigned i = 0; i < kTreeArity && line.overflows() == 0;
             ++i) {
            line.bump(i);
            ++total;
        }
    }
    EXPECT_EQ(8u * 16u - 7u, total);  // slot 0 saturates first
}

} // namespace
} // namespace mgmee
