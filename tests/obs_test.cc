/**
 * @file
 * Tests for the observability layer (src/obs/): security-event
 * tracing round-trips, the disabled-mode zero-cost contract, the
 * phase profiler's tree construction, the manifest schema, and the
 * StreamChunk-event reproduction of the stream-chunk classifier.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/profile.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "workloads/registry.hh"

namespace mgmee {
namespace {

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(ObsTraceTest, DisabledEmissionIsFree)
{
    obs::stopTrace();  // make sure no session (e.g. MGMEE_TRACE) runs
    ASSERT_FALSE(obs::traceEnabled());

    const std::uint64_t emitted_before = obs::eventsEmitted();
    const std::size_t buffers_before = obs::threadBuffersAllocated();
    for (int i = 0; i < 10000; ++i) {
        OBS_EVENT(obs::EventKind::WalkRead, i, 0x1000 + i, 0, 3);
    }
    // Nothing recorded, no thread buffer bound: the disabled path is
    // the inlined flag test only.
    EXPECT_EQ(emitted_before, obs::eventsEmitted());
    EXPECT_EQ(buffers_before, obs::threadBuffersAllocated());
}

TEST(ObsTraceTest, BinaryRoundTripAndJsonl)
{
    obs::stopTrace();
    const std::string bin = tmpPath("obs_roundtrip.obstrace");
    ASSERT_TRUE(obs::startTrace(bin));

    obs::emit(obs::EventKind::WalkRead, 123, 0xdead0000, 1, 4);
    obs::emit(obs::EventKind::GranPromote, 456, 0x32000,
              0, (0u << 4) | 3u);
    obs::emit(obs::EventKind::TrackerEvict, 789, 42, 17,
              static_cast<std::uint8_t>(obs::EvictReason::Lifetime));
    EXPECT_EQ(3u, obs::eventsEmitted());
    EXPECT_EQ(1u, obs::threadBuffersAllocated());
    obs::stopTrace();

    const std::vector<obs::TraceRecord> recs =
        obs::readTraceFile(bin);
    ASSERT_EQ(3u, recs.size());
    EXPECT_EQ(static_cast<std::uint8_t>(obs::EventKind::WalkRead),
              recs[0].kind);
    EXPECT_EQ(123u, recs[0].cycle);
    EXPECT_EQ(0xdead0000u, recs[0].addr);
    EXPECT_EQ(1u, recs[0].value);
    EXPECT_EQ(4u, recs[0].arg0);
    EXPECT_EQ(static_cast<std::uint8_t>(obs::EventKind::GranPromote),
              recs[1].kind);
    EXPECT_EQ((0u << 4) | 3u, recs[1].arg0);
    EXPECT_EQ(17u, recs[2].value);
    EXPECT_EQ(static_cast<std::uint8_t>(obs::EvictReason::Lifetime),
              recs[2].arg0);

    const std::string jsonl = tmpPath("obs_roundtrip.jsonl");
    EXPECT_EQ(3, obs::exportJsonl(bin, jsonl));
    std::ifstream in(jsonl);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(std::string::npos, line.find("\"event\": \"walk_read\""));
    EXPECT_NE(std::string::npos, line.find("\"cycle\": 123"));
    int lines = 1;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(3, lines);
}

TEST(ObsTraceTest, EventKindNamesAreStable)
{
    EXPECT_STREQ("walk_read",
                 obs::eventKindName(obs::EventKind::WalkRead));
    EXPECT_STREQ("stream_chunk",
                 obs::eventKindName(obs::EventKind::StreamChunk));
    EXPECT_STREQ("unknown",
                 obs::eventKindName(static_cast<obs::EventKind>(0)));
}

TEST(ObsTraceTest, StreamChunkEventsReproduceProfileCounts)
{
    obs::stopTrace();
    const std::string bin = tmpPath("obs_chunks.obstrace");
    ASSERT_TRUE(obs::startTrace(bin));

    const WorkloadSpec &spec = findWorkload("alex");
    const Trace trace = generateTrace(spec, 0, 11, 0.2);
    const TraceProfile prof = profileTrace(trace);
    obs::stopTrace();

    std::uint64_t lines[4] = {0, 0, 0, 0};
    for (const obs::TraceRecord &r : obs::readTraceFile(bin)) {
        if (r.kind ==
            static_cast<std::uint8_t>(obs::EventKind::StreamChunk)) {
            ASSERT_LT(r.arg0, 4u);
            lines[r.arg0] += r.value;
        }
    }
    // The decoded event stream carries exactly the classifier's
    // per-class line totals (the fig04 acceptance contract).
    EXPECT_EQ(prof.lines64, lines[0]);
    EXPECT_EQ(prof.lines512, lines[1]);
    EXPECT_EQ(prof.lines4k, lines[2]);
    EXPECT_EQ(prof.lines32k, lines[3]);
    EXPECT_GT(lines[0] + lines[1] + lines[2] + lines[3], 0u);
}

TEST(ObsProfileTest, ScopesBuildNestedTree)
{
    obs::profilerReset();
    obs::setProfilerEnabled(true);
    {
        OBS_SCOPE("outer");
        for (int i = 0; i < 2; ++i) {
            OBS_SCOPE("inner");
        }
    }
    obs::setProfilerEnabled(false);

    const obs::ProfileNode root = obs::profilerSnapshot();
    ASSERT_EQ(1u, root.children.size());
    const obs::ProfileNode &outer = root.children[0];
    EXPECT_EQ("outer", outer.name);
    EXPECT_EQ(1u, outer.calls);
    ASSERT_EQ(1u, outer.children.size());
    const obs::ProfileNode &inner = outer.children[0];
    EXPECT_EQ("inner", inner.name);
    EXPECT_EQ(2u, inner.calls);
    EXPECT_TRUE(inner.children.empty());
    // Self time is total minus the children's total.
    EXPECT_GE(outer.total_ns, inner.total_ns);
    EXPECT_EQ(outer.total_ns - inner.total_ns, outer.self_ns);

    const std::string report = obs::profilerReport();
    EXPECT_NE(std::string::npos, report.find("outer"));
    EXPECT_NE(std::string::npos, report.find("inner"));
    const std::string json = obs::profilerToJson();
    EXPECT_NE(std::string::npos, json.find("\"name\": \"inner\""));
    obs::profilerReset();
}

TEST(ObsProfileTest, DisabledScopesRecordNothing)
{
    obs::profilerReset();
    ASSERT_FALSE(obs::profilerEnabled());
    {
        OBS_SCOPE("never_recorded");
    }
    const obs::ProfileNode root = obs::profilerSnapshot();
    EXPECT_TRUE(root.children.empty());
}

TEST(ObsManifestTest, SchemaGolden)
{
    obs::Manifest m("unit");
    m.set("answer", std::uint64_t{42});
    m.set("ratio", 0.5);
    m.set("label", "hello \"world\"");
    m.set("ok", true);

    StatGroup g("engine");
    g.add("hits", 7);
    m.addStats(g);

    Histogram h;
    h.record(16);
    h.record(64);
    m.addHistogram("latency", h);

    const std::string j = m.toJson();
    // Golden prefix: identity block first, exact layout pinned so a
    // schema change forces a kSchemaVersion bump.
    const std::string prefix = "{\n  \"schema_version\": 1,\n"
                               "  \"bench\": \"unit\",\n  \"git\": \"";
    EXPECT_EQ(prefix, j.substr(0, prefix.size()));
    EXPECT_NE(std::string::npos, j.find("\"knobs\": {"));
    EXPECT_NE(std::string::npos, j.find("\"answer\": 42"));
    EXPECT_NE(std::string::npos, j.find("\"ratio\": 0.5"));
    EXPECT_NE(std::string::npos,
              j.find("\"label\": \"hello \\\"world\\\"\""));
    EXPECT_NE(std::string::npos, j.find("\"ok\": true"));
    EXPECT_NE(std::string::npos,
              j.find("\"engine\": {\"hits\": 7}"));
    EXPECT_NE(std::string::npos, j.find("\"latency\": {\"count\": 2"));
    EXPECT_NE(std::string::npos, j.find("\"p99\":"));
    EXPECT_EQ('{', j.front());
    EXPECT_EQ('\n', j.back());

    const std::string dir = tmpPath("obs_manifest_dir");
    const std::string path = m.write(dir);
    EXPECT_EQ(dir + "/manifest_unit.json", path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(j, content);
}

TEST(ObsManifestTest, RegistryCaptureShowsGlobalCounters)
{
    auto &c = StatRegistry::instance().counter("obs_manifest_test",
                                               "pings");
    c.store(5);
    obs::Manifest m("registry_probe");
    m.captureRegistry();
    EXPECT_NE(std::string::npos,
              m.toJson().find("\"obs_manifest_test\": {\"pings\": 5"));
    c.store(0);
}

// ---- trace ring-buffer drop accounting ------------------------------

TEST(ObsTraceTest, DropsAreCountedNotSilent)
{
    // /dev/full accepts the open but fails every flush with ENOSPC,
    // which is exactly the short-fwrite drop path.
    obs::stopTrace();
    if (!obs::startTrace("/dev/full"))
        GTEST_SKIP() << "no writable /dev/full on this platform";

    auto &stat = StatRegistry::instance().counter("obs",
                                                  "trace.dropped");
    const std::uint64_t stat_before =
        stat.load(std::memory_order_relaxed);
    // More than one 8192-record thread buffer, so at least one flush
    // hits the full device before stopTrace().
    for (int i = 0; i < 20000; ++i) {
        OBS_EVENT(obs::EventKind::WalkRead, i, 0x1000 + i, 0, 1);
    }
    obs::stopTrace();

    EXPECT_GT(obs::eventsDropped(), 0u);
    EXPECT_GT(stat.load(std::memory_order_relaxed), stat_before);
    stat.store(stat_before, std::memory_order_relaxed);
}

// ---- histogram edge cases (telemetry merge contract) ----------------

TEST(HistogramEdgeTest, EmptyHistogramReportsZeros)
{
    Histogram h;
    EXPECT_EQ(0u, h.count());
    EXPECT_EQ(0u, h.min());
    EXPECT_EQ(0u, h.max());
    EXPECT_EQ(0.0, h.mean());
    for (double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(0u, h.percentile(p)) << p;
}

TEST(HistogramEdgeTest, SingleSampleClampsToObservedMax)
{
    Histogram h;
    h.record(100);
    EXPECT_EQ(1u, h.count());
    EXPECT_EQ(100u, h.min());
    EXPECT_EQ(100u, h.max());
    EXPECT_EQ(100.0, h.mean());
    // Every percentile lands in the single occupied bucket, whose
    // upper edge (127) clamps to the observed max.
    for (double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(100u, h.percentile(p)) << p;
}

TEST(HistogramEdgeTest, MergeOfShardLocalsEqualsPooled)
{
    // Log2 buckets make pooling exact: merging two shard-local
    // histograms must be bit-identical to recording every sample
    // into one histogram (the per-shard telemetry merge contract).
    std::vector<std::uint64_t> shard_a = {0, 1, 3, 17, 900, 900};
    std::vector<std::uint64_t> shard_b = {2, 64, 65, 4096, 1u << 30};

    Histogram a, b, pooled;
    for (std::uint64_t v : shard_a) {
        a.record(v);
        pooled.record(v);
    }
    for (std::uint64_t v : shard_b) {
        b.record(v);
        pooled.record(v);
    }
    Histogram merged = a;
    merged.merge(b);
    EXPECT_EQ(pooled.toJson(), merged.toJson());

    // Merging an empty histogram is the identity.
    Histogram empty;
    merged.merge(empty);
    EXPECT_EQ(pooled.toJson(), merged.toJson());
    Histogram onto_empty;
    onto_empty.merge(pooled);
    EXPECT_EQ(pooled.toJson(), onto_empty.toJson());
}

TEST(HistogramEdgeTest, TopBucketSaturates)
{
    Histogram h;
    const std::uint64_t huge = ~std::uint64_t{0};
    h.record(huge);
    h.record(huge - 1);
    h.record(std::uint64_t{1} << 63);
    EXPECT_EQ(3u, h.count());
    EXPECT_EQ(huge, h.max());
    // All samples clamp into the last bucket; percentiles return the
    // observed max rather than a bogus finite edge.
    EXPECT_EQ(huge, h.percentile(0.99));
}

TEST(HistogramEdgeTest, FromBucketsMatchesStreamingSnapshot)
{
    obs::StreamingHistogram sh;
    Histogram direct;
    for (std::uint64_t v : {0ull, 5ull, 5ull, 300ull, 70000ull}) {
        sh.record(v);
        direct.record(v);
    }
    EXPECT_EQ(direct.count(), sh.count());
    const Histogram snap = sh.snapshot();
    EXPECT_EQ(direct.count(), snap.count());
    EXPECT_EQ(direct.mean(), snap.mean());
    // Streaming snapshots derive min/max from bucket edges, so the
    // percentile ladder (bucket ranks) matches exactly even though
    // min/max may widen to the edges.
    for (double p : {0.5, 0.9})
        EXPECT_EQ(direct.percentile(p), snap.percentile(p)) << p;
}

// ---- sharded counters -----------------------------------------------

TEST(ShardedCounterTest, ConcurrentAddsSumExactly)
{
    ShardedCounter c;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&c]() {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.add(1);
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(kThreads * kPerThread, c.load());
    c.reset();
    EXPECT_EQ(0u, c.load());
}

TEST(ShardedCounterTest, RegistrySnapshotFoldsShardedCounters)
{
    auto &reg = StatRegistry::instance();
    reg.sharded("obs_sharded_probe", "ticks").add(3);
    reg.counter("obs_sharded_probe", "plain").store(2);
    const StatGroup g = reg.snapshot("obs_sharded_probe");
    EXPECT_EQ(3u, g.get("ticks"));
    EXPECT_EQ(2u, g.get("plain"));
    const auto all = reg.snapshotAll();
    ASSERT_TRUE(all.count("obs_sharded_probe"));
    EXPECT_EQ(3u, all.at("obs_sharded_probe").get("ticks"));
    reg.sharded("obs_sharded_probe", "ticks").reset();
    reg.counter("obs_sharded_probe", "plain").store(0);
}

// ---- telemetry plane ------------------------------------------------

TEST(TelemetryTest, DisabledByDefaultAndFreeToProbe)
{
    ASSERT_FALSE(obs::telemetryEnabled());
    EXPECT_FALSE(obs::telemetryActive());
    EXPECT_EQ(0u, obs::telemetryIntervalMs());
    EXPECT_EQ("", obs::telemetryPath());
    // Notes and flushes are no-ops when disabled.
    obs::telemetryNote("ignored");
    obs::telemetryFlush(true);
}

TEST(TelemetryTest, SessionStreamsDeltasAsJsonl)
{
    ASSERT_FALSE(obs::telemetryActive());
    const std::string path = tmpPath("telemetry_session.jsonl");
    auto &ctr = StatRegistry::instance().sharded("telemetry_probe",
                                                 "events");

    // A long interval so only explicit flushes produce records.
    ASSERT_TRUE(obs::startTelemetry(60000, path));
    ASSERT_TRUE(obs::telemetryEnabled());
    EXPECT_EQ(60000u, obs::telemetryIntervalMs());
    EXPECT_EQ(path, obs::telemetryPath());
    EXPECT_FALSE(obs::startTelemetry(100));  // no nested sessions

    ctr.add(7);
    obs::telemetryHistogram("telemetry_probe.lat_ns").record(250);
    obs::telemetryNote("cell mgmee/rollback");
    obs::telemetryFlush(true);
    ctr.add(2);
    obs::stopTelemetry();
    EXPECT_FALSE(obs::telemetryEnabled());

    std::ifstream in(path);
    std::vector<obs::JsonValue> lines;
    std::string line, error;
    while (std::getline(in, line)) {
        obs::JsonValue v;
        ASSERT_TRUE(obs::parseJson(line, v, error)) << error;
        lines.push_back(std::move(v));
    }
    // start, explicit manifest-boundary interval, final interval
    // from stopTelemetry, stop.
    ASSERT_EQ(4u, lines.size());
    EXPECT_EQ("start", lines[0].find("type")->str);
    ASSERT_NE(nullptr, lines[0].find("baseline"));

    const obs::JsonValue &boundary = lines[1];
    EXPECT_EQ("interval", boundary.find("type")->str);
    ASSERT_NE(nullptr, boundary.find("manifest"));
    EXPECT_TRUE(boundary.find("manifest")->boolean);
    EXPECT_EQ("cell mgmee/rollback", boundary.find("note")->str);
    const obs::JsonValue *deltas = boundary.find("deltas");
    ASSERT_NE(nullptr, deltas);
    ASSERT_NE(nullptr, deltas->find("telemetry_probe.events"));
    EXPECT_EQ(7.0, deltas->find("telemetry_probe.events")->number);
    const obs::JsonValue *hist = boundary.find("hist");
    ASSERT_NE(nullptr, hist);
    const obs::JsonValue *lat =
        hist->find("telemetry_probe.lat_ns");
    ASSERT_NE(nullptr, lat);
    EXPECT_EQ(1.0, lat->find("count")->number);
    EXPECT_EQ(250.0, lat->find("sum")->number);

    const obs::JsonValue &final_iv = lines[2];
    EXPECT_EQ("interval", final_iv.find("type")->str);
    EXPECT_EQ(2.0,
              final_iv.find("deltas")
                  ->find("telemetry_probe.events")
                  ->number);
    EXPECT_EQ("stop", lines[3].find("type")->str);
    EXPECT_EQ(2.0, lines[3].find("intervals")->number);

    ctr.reset();
}

TEST(TelemetryTest, ManifestEmbedsTimeline)
{
    ASSERT_FALSE(obs::telemetryActive());
    ASSERT_TRUE(obs::startTelemetry(60000));  // in-memory only
    StatRegistry::instance()
        .sharded("telemetry_probe2", "ops")
        .add(4);
    obs::Manifest m("telemetry_embed");
    m.captureTelemetry();
    obs::stopTelemetry();

    const std::string j = m.toJson();
    const auto pos = j.find("\"telemetry\": {");
    ASSERT_NE(std::string::npos, pos);
    EXPECT_NE(std::string::npos,
              j.find("\"interval_ms\": 60000", pos));
    EXPECT_NE(std::string::npos,
              j.find("\"telemetry_probe2.ops\": 4", pos));
    EXPECT_NE(std::string::npos, j.find("\"manifest\": true", pos));

    // Without an active session the section is absent entirely.
    obs::Manifest off("telemetry_off");
    off.captureTelemetry();
    EXPECT_EQ(std::string::npos, off.toJson().find("\"telemetry\""));

    StatRegistry::instance().sharded("telemetry_probe2", "ops")
        .reset();
}

} // namespace
} // namespace mgmee
