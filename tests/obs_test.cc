/**
 * @file
 * Tests for the observability layer (src/obs/): security-event
 * tracing round-trips, the disabled-mode zero-cost contract, the
 * phase profiler's tree construction, the manifest schema, and the
 * StreamChunk-event reproduction of the stream-chunk classifier.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/manifest.hh"
#include "obs/profile.hh"
#include "obs/trace.hh"
#include "workloads/registry.hh"

namespace mgmee {
namespace {

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(ObsTraceTest, DisabledEmissionIsFree)
{
    obs::stopTrace();  // make sure no session (e.g. MGMEE_TRACE) runs
    ASSERT_FALSE(obs::traceEnabled());

    const std::uint64_t emitted_before = obs::eventsEmitted();
    const std::size_t buffers_before = obs::threadBuffersAllocated();
    for (int i = 0; i < 10000; ++i) {
        OBS_EVENT(obs::EventKind::WalkRead, i, 0x1000 + i, 0, 3);
    }
    // Nothing recorded, no thread buffer bound: the disabled path is
    // the inlined flag test only.
    EXPECT_EQ(emitted_before, obs::eventsEmitted());
    EXPECT_EQ(buffers_before, obs::threadBuffersAllocated());
}

TEST(ObsTraceTest, BinaryRoundTripAndJsonl)
{
    obs::stopTrace();
    const std::string bin = tmpPath("obs_roundtrip.obstrace");
    ASSERT_TRUE(obs::startTrace(bin));

    obs::emit(obs::EventKind::WalkRead, 123, 0xdead0000, 1, 4);
    obs::emit(obs::EventKind::GranPromote, 456, 0x32000,
              0, (0u << 4) | 3u);
    obs::emit(obs::EventKind::TrackerEvict, 789, 42, 17,
              static_cast<std::uint8_t>(obs::EvictReason::Lifetime));
    EXPECT_EQ(3u, obs::eventsEmitted());
    EXPECT_EQ(1u, obs::threadBuffersAllocated());
    obs::stopTrace();

    const std::vector<obs::TraceRecord> recs =
        obs::readTraceFile(bin);
    ASSERT_EQ(3u, recs.size());
    EXPECT_EQ(static_cast<std::uint8_t>(obs::EventKind::WalkRead),
              recs[0].kind);
    EXPECT_EQ(123u, recs[0].cycle);
    EXPECT_EQ(0xdead0000u, recs[0].addr);
    EXPECT_EQ(1u, recs[0].value);
    EXPECT_EQ(4u, recs[0].arg0);
    EXPECT_EQ(static_cast<std::uint8_t>(obs::EventKind::GranPromote),
              recs[1].kind);
    EXPECT_EQ((0u << 4) | 3u, recs[1].arg0);
    EXPECT_EQ(17u, recs[2].value);
    EXPECT_EQ(static_cast<std::uint8_t>(obs::EvictReason::Lifetime),
              recs[2].arg0);

    const std::string jsonl = tmpPath("obs_roundtrip.jsonl");
    EXPECT_EQ(3, obs::exportJsonl(bin, jsonl));
    std::ifstream in(jsonl);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(std::string::npos, line.find("\"event\": \"walk_read\""));
    EXPECT_NE(std::string::npos, line.find("\"cycle\": 123"));
    int lines = 1;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(3, lines);
}

TEST(ObsTraceTest, EventKindNamesAreStable)
{
    EXPECT_STREQ("walk_read",
                 obs::eventKindName(obs::EventKind::WalkRead));
    EXPECT_STREQ("stream_chunk",
                 obs::eventKindName(obs::EventKind::StreamChunk));
    EXPECT_STREQ("unknown",
                 obs::eventKindName(static_cast<obs::EventKind>(0)));
}

TEST(ObsTraceTest, StreamChunkEventsReproduceProfileCounts)
{
    obs::stopTrace();
    const std::string bin = tmpPath("obs_chunks.obstrace");
    ASSERT_TRUE(obs::startTrace(bin));

    const WorkloadSpec &spec = findWorkload("alex");
    const Trace trace = generateTrace(spec, 0, 11, 0.2);
    const TraceProfile prof = profileTrace(trace);
    obs::stopTrace();

    std::uint64_t lines[4] = {0, 0, 0, 0};
    for (const obs::TraceRecord &r : obs::readTraceFile(bin)) {
        if (r.kind ==
            static_cast<std::uint8_t>(obs::EventKind::StreamChunk)) {
            ASSERT_LT(r.arg0, 4u);
            lines[r.arg0] += r.value;
        }
    }
    // The decoded event stream carries exactly the classifier's
    // per-class line totals (the fig04 acceptance contract).
    EXPECT_EQ(prof.lines64, lines[0]);
    EXPECT_EQ(prof.lines512, lines[1]);
    EXPECT_EQ(prof.lines4k, lines[2]);
    EXPECT_EQ(prof.lines32k, lines[3]);
    EXPECT_GT(lines[0] + lines[1] + lines[2] + lines[3], 0u);
}

TEST(ObsProfileTest, ScopesBuildNestedTree)
{
    obs::profilerReset();
    obs::setProfilerEnabled(true);
    {
        OBS_SCOPE("outer");
        for (int i = 0; i < 2; ++i) {
            OBS_SCOPE("inner");
        }
    }
    obs::setProfilerEnabled(false);

    const obs::ProfileNode root = obs::profilerSnapshot();
    ASSERT_EQ(1u, root.children.size());
    const obs::ProfileNode &outer = root.children[0];
    EXPECT_EQ("outer", outer.name);
    EXPECT_EQ(1u, outer.calls);
    ASSERT_EQ(1u, outer.children.size());
    const obs::ProfileNode &inner = outer.children[0];
    EXPECT_EQ("inner", inner.name);
    EXPECT_EQ(2u, inner.calls);
    EXPECT_TRUE(inner.children.empty());
    // Self time is total minus the children's total.
    EXPECT_GE(outer.total_ns, inner.total_ns);
    EXPECT_EQ(outer.total_ns - inner.total_ns, outer.self_ns);

    const std::string report = obs::profilerReport();
    EXPECT_NE(std::string::npos, report.find("outer"));
    EXPECT_NE(std::string::npos, report.find("inner"));
    const std::string json = obs::profilerToJson();
    EXPECT_NE(std::string::npos, json.find("\"name\": \"inner\""));
    obs::profilerReset();
}

TEST(ObsProfileTest, DisabledScopesRecordNothing)
{
    obs::profilerReset();
    ASSERT_FALSE(obs::profilerEnabled());
    {
        OBS_SCOPE("never_recorded");
    }
    const obs::ProfileNode root = obs::profilerSnapshot();
    EXPECT_TRUE(root.children.empty());
}

TEST(ObsManifestTest, SchemaGolden)
{
    obs::Manifest m("unit");
    m.set("answer", std::uint64_t{42});
    m.set("ratio", 0.5);
    m.set("label", "hello \"world\"");
    m.set("ok", true);

    StatGroup g("engine");
    g.add("hits", 7);
    m.addStats(g);

    Histogram h;
    h.record(16);
    h.record(64);
    m.addHistogram("latency", h);

    const std::string j = m.toJson();
    // Golden prefix: identity block first, exact layout pinned so a
    // schema change forces a kSchemaVersion bump.
    const std::string prefix = "{\n  \"schema_version\": 1,\n"
                               "  \"bench\": \"unit\",\n  \"git\": \"";
    EXPECT_EQ(prefix, j.substr(0, prefix.size()));
    EXPECT_NE(std::string::npos, j.find("\"knobs\": {"));
    EXPECT_NE(std::string::npos, j.find("\"answer\": 42"));
    EXPECT_NE(std::string::npos, j.find("\"ratio\": 0.5"));
    EXPECT_NE(std::string::npos,
              j.find("\"label\": \"hello \\\"world\\\"\""));
    EXPECT_NE(std::string::npos, j.find("\"ok\": true"));
    EXPECT_NE(std::string::npos,
              j.find("\"engine\": {\"hits\": 7}"));
    EXPECT_NE(std::string::npos, j.find("\"latency\": {\"count\": 2"));
    EXPECT_NE(std::string::npos, j.find("\"p99\":"));
    EXPECT_EQ('{', j.front());
    EXPECT_EQ('\n', j.back());

    const std::string dir = tmpPath("obs_manifest_dir");
    const std::string path = m.write(dir);
    EXPECT_EQ(dir + "/manifest_unit.json", path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(j, content);
}

TEST(ObsManifestTest, RegistryCaptureShowsGlobalCounters)
{
    auto &c = StatRegistry::instance().counter("obs_manifest_test",
                                               "pings");
    c.store(5);
    obs::Manifest m("registry_probe");
    m.captureRegistry();
    EXPECT_NE(std::string::npos,
              m.toJson().find("\"obs_manifest_test\": {\"pings\": 5"));
    c.store(0);
}

} // namespace
} // namespace mgmee
