/**
 * @file
 * Tests for the manifest-diff perf-regression tracker (obs/json.hh +
 * obs/perf_diff.hh): JSON parsing round-trips, metric classification,
 * the baseline-as-contract diff semantics (a synthetic regressed
 * manifest must fail), the wall-warn-only CI mode, and the
 * BENCH_<name>.json trajectory file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/json.hh"
#include "obs/perf_diff.hh"

namespace mgmee {
namespace {

using obs::JsonValue;

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

JsonValue
parse(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(obs::parseJson(text, v, error)) << error;
    return v;
}

// ---- JSON parser ----------------------------------------------------

TEST(JsonTest, ParsesScalarsObjectsAndArrays)
{
    const JsonValue v = parse(
        "{\"n\": -12.5e2, \"b\": true, \"z\": null,"
        " \"s\": \"a\\\"b\\n\\u00e9\","
        " \"arr\": [1, 2, 3], \"obj\": {\"k\": false}}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(-1250.0, v.find("n")->number);
    EXPECT_TRUE(v.find("b")->boolean);
    EXPECT_TRUE(v.find("z")->isNull());
    EXPECT_EQ("a\"b\n\xc3\xa9", v.find("s")->str);
    ASSERT_EQ(3u, v.find("arr")->items.size());
    EXPECT_EQ(2.0, v.find("arr")->items[1].number);
    EXPECT_FALSE(v.find("obj")->find("k")->boolean);
    EXPECT_EQ(nullptr, v.find("missing"));
}

TEST(JsonTest, ReportsErrorsWithLineAndColumn)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(obs::parseJson("{\"a\": 1,\n  oops}", v, error));
    EXPECT_NE(std::string::npos, error.find("2:"));
    EXPECT_FALSE(obs::parseJson("{\"a\": 1} trailing", v, error));
    EXPECT_NE(std::string::npos, error.find("trailing content"));
    EXPECT_FALSE(obs::parseJson("", v, error));
}

TEST(JsonTest, DumpRoundTripsManifestStyleDocuments)
{
    const std::string text =
        "{\"bench\": \"demo\", \"results\": {\"hit_rate\": 0.53125, "
        "\"total\": 123456789}}";
    const JsonValue v = parse(text);
    const JsonValue again = parse(obs::dumpJson(v));
    EXPECT_EQ(0.53125,
              again.find("results")->find("hit_rate")->number);
    EXPECT_EQ(123456789.0,
              again.find("results")->find("total")->number);
}

// ---- metric classification ------------------------------------------

TEST(PerfDiffTest, ClassifiesWallVsCounterMetrics)
{
    EXPECT_TRUE(obs::isWallMetric("total_walk_ns"));
    EXPECT_TRUE(obs::isWallMetric("elapsed_seconds"));
    EXPECT_TRUE(obs::isWallMetric("crypto.aes_gb_s"));
    EXPECT_TRUE(obs::isWallMetric("t4.speedup"));
    EXPECT_FALSE(obs::isWallMetric("hit_rate"));
    EXPECT_FALSE(obs::isWallMetric("engine.hits"));
    EXPECT_FALSE(obs::isWallMetric("bit_identical"));

    EXPECT_EQ(1, obs::metricDirection("t4.speedup"));
    EXPECT_EQ(1, obs::metricDirection("runs_per_sec"));
    EXPECT_EQ(-1, obs::metricDirection("total_walk_ns"));
    EXPECT_EQ(-1, obs::metricDirection("elapsed_seconds"));
    EXPECT_EQ(0, obs::metricDirection("engine.hits"));
}

// ---- diff semantics -------------------------------------------------

const char *kBaseline =
    "{\"bench\": \"demo\","
    " \"results\": {\"total_walk_ns\": 1000, \"t4.speedup\": 4.0,"
    "               \"hit_rate\": 0.5, \"bit_identical\": true,"
    "               \"mode\": \"portable\"},"
    " \"stats\": {\"engine\": {\"hits\": 10}},"
    " \"histograms\": {\"latency\": {\"p99\": 400}}}";

std::string
currentWith(const std::string &walk_ns, const std::string &speedup,
            const std::string &hit_rate, const std::string &hits)
{
    return "{\"bench\": \"demo\","
           " \"git\": \"abc123\","
           " \"results\": {\"total_walk_ns\": " + walk_ns +
           ", \"t4.speedup\": " + speedup +
           ", \"hit_rate\": " + hit_rate +
           ", \"bit_identical\": true,"
           " \"mode\": \"portable\","
           " \"extra_metric\": 99},"
           " \"stats\": {\"engine\": {\"hits\": " + hits + "}},"
           " \"histograms\": {\"latency\": {\"p99\": 400}}}";
}

TEST(PerfDiffTest, CleanRunPassesAndIgnoresExtraMetrics)
{
    const JsonValue base = parse(kBaseline);
    const JsonValue cur =
        parse(currentWith("1100", "3.9", "0.5", "10"));
    const obs::PerfDiffReport r =
        obs::diffManifests(base, cur, obs::PerfDiffConfig{});
    EXPECT_EQ("demo", r.bench);
    EXPECT_EQ(0u, r.regressions) << r.text();
    EXPECT_EQ(0u, r.warnings);
    // Extra metrics in the current manifest never participate.
    for (const auto &d : r.deltas)
        EXPECT_NE("extra_metric", d.key);
}

TEST(PerfDiffTest, SyntheticRegressionFailsHard)
{
    const JsonValue base = parse(kBaseline);
    // 2x slower walk, collapsed speedup, drifted hit rate, lost hits.
    const JsonValue bad =
        parse(currentWith("2000", "1.5", "0.4", "9"));
    const obs::PerfDiffReport r =
        obs::diffManifests(base, bad, obs::PerfDiffConfig{});
    EXPECT_EQ(4u, r.regressions) << r.text();
    const std::string text = r.text();
    EXPECT_NE(std::string::npos, text.find("FAIL"));
    EXPECT_NE(std::string::npos, text.find("total_walk_ns"));
    EXPECT_NE(std::string::npos, text.find("hit_rate"));
}

TEST(PerfDiffTest, WallWarnOnlyKeepsCountersHard)
{
    const JsonValue base = parse(kBaseline);
    const JsonValue bad =
        parse(currentWith("2000", "1.5", "0.4", "10"));
    obs::PerfDiffConfig cfg;
    cfg.wall_warn_only = true;
    const obs::PerfDiffReport r = obs::diffManifests(base, bad, cfg);
    // Wall drift (walk_ns, speedup) downgrades; hit_rate stays hard.
    EXPECT_EQ(1u, r.regressions) << r.text();
    EXPECT_EQ(2u, r.warnings);
}

TEST(PerfDiffTest, ImprovementsInTheGoodDirectionPass)
{
    const JsonValue base = parse(kBaseline);
    // Much faster and a higher speedup: directional comparison must
    // not flag improvements.
    const JsonValue good =
        parse(currentWith("400", "9.0", "0.5", "10"));
    const obs::PerfDiffReport r =
        obs::diffManifests(base, good, obs::PerfDiffConfig{});
    EXPECT_EQ(0u, r.regressions) << r.text();
}

TEST(PerfDiffTest, MissingAndRetypedMetricsAlwaysFail)
{
    const JsonValue base = parse(kBaseline);
    const JsonValue cur = parse(
        "{\"bench\": \"demo\","
        " \"results\": {\"total_walk_ns\": \"fast\","
        "               \"t4.speedup\": 4.0, \"hit_rate\": 0.5,"
        "               \"bit_identical\": true,"
        "               \"mode\": \"release\"}}");
    obs::PerfDiffConfig cfg;
    cfg.wall_warn_only = true;  // missing metrics must stay hard
    const obs::PerfDiffReport r = obs::diffManifests(base, cur, cfg);
    // total_walk_ns retyped, stats/histograms sections gone (2
    // metrics), mode string changed: 4 hard failures.
    EXPECT_EQ(4u, r.regressions) << r.text();
    unsigned missing = 0, mismatched = 0;
    for (const auto &d : r.deltas) {
        missing += d.missing;
        mismatched += d.string_mismatch;
    }
    EXPECT_EQ(3u, missing);
    EXPECT_EQ(1u, mismatched);
}

TEST(PerfDiffTest, IgnoreListAndTolerancesApply)
{
    const JsonValue base = parse(kBaseline);
    const JsonValue cur =
        parse(currentWith("1000", "4.0", "0.51", "11"));
    obs::PerfDiffConfig cfg;
    cfg.ignore.push_back("engine.hits");
    cfg.counter_tolerance = 0.05;  // 2% hit_rate drift passes
    const obs::PerfDiffReport r = obs::diffManifests(base, cur, cfg);
    EXPECT_EQ(0u, r.regressions) << r.text();
    for (const auto &d : r.deltas)
        EXPECT_NE("engine.hits", d.key);
}

// ---- trajectory file ------------------------------------------------

TEST(PerfDiffTest, TrajectoryAccumulatesEntries)
{
    const std::string dir = tmpPath("perf_traj");
    // TempDir persists across test invocations; start from scratch.
    std::remove((dir + "/BENCH_demo.json").c_str());
    const JsonValue base = parse(kBaseline);
    const JsonValue cur =
        parse(currentWith("1100", "4.0", "0.5", "10"));
    const obs::PerfDiffReport r =
        obs::diffManifests(base, cur, obs::PerfDiffConfig{});

    const std::string path1 = obs::appendTrajectory(dir, cur, r);
    ASSERT_EQ(dir + "/BENCH_demo.json", path1);
    const std::string path2 = obs::appendTrajectory(dir, cur, r);
    ASSERT_EQ(path1, path2);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(obs::parseJsonFile(path1, doc, error)) << error;
    EXPECT_EQ("demo", doc.find("bench")->str);
    const JsonValue *entries = doc.find("entries");
    ASSERT_NE(nullptr, entries);
    ASSERT_EQ(2u, entries->items.size());
    const JsonValue &entry = entries->items[1];
    EXPECT_EQ("abc123", entry.find("git")->str);
    EXPECT_EQ(0.0, entry.find("regressions")->number);
    const JsonValue *metrics = entry.find("metrics");
    ASSERT_NE(nullptr, metrics);
    EXPECT_EQ(1100.0,
              metrics->find("results/total_walk_ns")->number);
    EXPECT_EQ(10.0, metrics->find("stats/engine.hits")->number);
}

} // namespace
} // namespace mgmee
