/**
 * @file
 * Tests for the typed process configuration (src/common/config.cc):
 * environment parsing of every knob kind, malformed-value fallback,
 * cross-field validation, the setConfig/reloadConfigFromEnv
 * lifecycle, effective-value rendering, and the StatRegistry
 * prefix-erase teardown hook the serve layer relies on.
 *
 * Knob mutation here goes through setenv + reloadConfigFromEnv();
 * every test restores the prior Config before returning so the rest
 * of the suite sees an unchanged process state.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/config.hh"
#include "common/stats.hh"

namespace mgmee {
namespace {

/** Save/restore the process Config and the touched environment. */
class ConfigSandbox
{
  public:
    ConfigSandbox() : saved_(config()) {}

    ~ConfigSandbox()
    {
        for (const std::string &name : touched_)
            unsetenv(name.c_str());
        setConfig(saved_);
    }

    void
    set(const char *name, const char *value)
    {
        touched_.push_back(name);
        setenv(name, value, 1);
    }

  private:
    Config saved_;
    std::vector<std::string> touched_;
};

TEST(ConfigTest, DefaultsAreSane)
{
    const Config def;
    EXPECT_EQ(def.scenarios, 0u);
    EXPECT_DOUBLE_EQ(def.scale, 0.5);
    EXPECT_EQ(def.seed, 1u);
    EXPECT_TRUE(def.memo);
    EXPECT_EQ(def.crypto, "auto");
    EXPECT_EQ(def.results_dir, "results");
    EXPECT_EQ(def.serve_tenants, 4u);
    EXPECT_EQ(def.serve_queue_depth, 8192u);
    EXPECT_EQ(def.serve_mem_bytes, 32 * kChunkBytes);
    EXPECT_TRUE(def.validate().empty());
}

TEST(ConfigTest, FromEnvParsesEveryKnobKind)
{
    ConfigSandbox sandbox;
    sandbox.set("MGMEE_SCENARIOS", "12");       // size_t
    sandbox.set("MGMEE_SCALE", "2.5");          // double
    sandbox.set("MGMEE_SEED", "987654321");     // u64
    sandbox.set("MGMEE_MEMO", "0");             // bool
    sandbox.set("MGMEE_CRYPTO", "portable");    // enum-ish string
    sandbox.set("MGMEE_TRACE", "/tmp/t.bin");   // path
    sandbox.set("MGMEE_SERVE_TENANTS", "9");
    sandbox.set("MGMEE_SERVE_MEM", "1048576");
    reloadConfigFromEnv();

    const Config &c = config();
    EXPECT_EQ(c.scenarios, 12u);
    EXPECT_DOUBLE_EQ(c.scale, 2.5);
    EXPECT_EQ(c.seed, 987654321u);
    EXPECT_FALSE(c.memo);
    EXPECT_EQ(c.crypto, "portable");
    EXPECT_EQ(c.trace_path, "/tmp/t.bin");
    EXPECT_EQ(c.serve_tenants, 9u);
    EXPECT_EQ(c.serve_mem_bytes, 1048576u);

    // The raw-env section records exactly what was set.
    bool saw_seed = false;
    for (const auto &[name, value] : c.rawEnv())
        if (name == "MGMEE_SEED") {
            saw_seed = true;
            EXPECT_EQ(value, "987654321");
        }
    EXPECT_TRUE(saw_seed);
}

TEST(ConfigTest, MalformedNumbersKeepDefaults)
{
    ConfigSandbox sandbox;
    sandbox.set("MGMEE_SCENARIOS", "banana");
    sandbox.set("MGMEE_SEED", "");
    reloadConfigFromEnv();
    EXPECT_EQ(config().scenarios, 0u);
    EXPECT_EQ(config().seed, 1u);
}

TEST(ConfigTest, ValidateCatchesCrossFieldProblems)
{
    Config c;
    c.scale = 0;
    EXPECT_FALSE(c.validate().empty());

    c = Config{};
    c.crypto = "quantum";
    EXPECT_FALSE(c.validate().empty());

    c = Config{};
    c.serve_tenants = 0;
    EXPECT_FALSE(c.validate().empty());

    c = Config{};
    c.serve_queue_depth = 10;
    c.serve_batch = 100;
    EXPECT_FALSE(c.validate().empty());

    c = Config{};
    c.serve_mem_bytes = 100;
    EXPECT_FALSE(c.validate().empty());

    c = Config{};
    c.nvm_persist = "journal";
    EXPECT_FALSE(c.validate().empty());
    c.nvm_persist = "unordered";
    EXPECT_TRUE(c.validate().empty());
}

TEST(ConfigTest, SetConfigReplacesAndRestores)
{
    const Config saved = config();
    Config next = saved;
    next.seed = 0xfeedface;
    setConfig(next);
    EXPECT_EQ(config().seed, 0xfeedfaceu);
    setConfig(saved);
    EXPECT_EQ(config().seed, saved.seed);
}

TEST(ConfigTest, ItemsRendersEveryKnob)
{
    const auto items = config().items();
    // Every knob appears exactly once, MGMEE_-prefixed.
    EXPECT_GE(items.size(), 20u);
    bool saw_scale = false, saw_serve_socket = false;
    for (const auto &[name, value] : items) {
        EXPECT_EQ(name.rfind("MGMEE_", 0), 0u) << name;
        saw_scale = saw_scale || name == "MGMEE_SCALE";
        saw_serve_socket =
            saw_serve_socket || name == "MGMEE_SERVE_SOCKET";
    }
    EXPECT_TRUE(saw_scale);
    EXPECT_TRUE(saw_serve_socket);
}

TEST(ConfigTest, UnknownKnobIsIgnoredNotFatal)
{
    ConfigSandbox sandbox;
    sandbox.set("MGMEE_TYPO_KNOB", "1");
    reloadConfigFromEnv();  // warns, must not throw or alter fields
    EXPECT_TRUE(config().validate().empty());
}

// ---- StatRegistry teardown hook -----------------------------------------

TEST(StatRegistryEraseTest, ErasePrefixDropsOnlyMatchingGroups)
{
    StatRegistry &reg = StatRegistry::instance();
    reg.counter("erase.t1.core", "a").fetch_add(1);
    reg.counter("erase.t10.core", "b").fetch_add(2);
    reg.counter("erase_other", "c").fetch_add(3);
    reg.sharded("erase.t1.aux", "d").add(4);

    // "erase.t1." must not catch tenant 10's groups.
    EXPECT_EQ(reg.erasePrefix("erase.t1."), 2u);
    EXPECT_TRUE(reg.snapshot("erase.t1.core").counters().empty());
    EXPECT_TRUE(reg.snapshot("erase.t1.aux").counters().empty());
    EXPECT_EQ(reg.snapshot("erase.t10.core").counters().at("b"), 2u);
    EXPECT_EQ(reg.snapshot("erase_other").counters().at("c"), 3u);

    EXPECT_EQ(reg.erasePrefix("erase."), 1u);
    EXPECT_EQ(reg.erasePrefix("erase."), 0u);
    reg.erasePrefix("erase_other");
}

} // namespace
} // namespace mgmee
