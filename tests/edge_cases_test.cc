/**
 * @file
 * Edge-case and failure-path tests: fatal configuration errors,
 * traffic-attribution accounting, geometry bounds, and generator
 * regression pins.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/logging.hh"
#include "devices/cpu_model.hh"
#include "devices/npu_model.hh"
#include "mem/mem_ctrl.hh"
#include "tree/split_counter.hh"
#include "tree/tree_index.hh"
#include "workloads/registry.hh"

namespace mgmee {
namespace {

TEST(FatalPathTest, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(findWorkload("no-such-workload"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(FatalPathTest, WrongDeviceKindIsFatal)
{
    EXPECT_EXIT(makeCpuDevice("alex", 0, 0, 1),
                ::testing::ExitedWithCode(1), "not a CPU workload");
    EXPECT_EXIT(makeNpuDevice("gcc", 0, 0, 1),
                ::testing::ExitedWithCode(1), "not an NPU workload");
}

TEST(FatalPathTest, BadCacheGeometryIsFatal)
{
    EXPECT_EXIT(Cache("c", 1000, 3), ::testing::ExitedWithCode(1),
                "not divisible");
    EXPECT_EXIT(Cache("c", 64 * 3, 1), ::testing::ExitedWithCode(1),
                "power of two");
    EXPECT_EXIT(Cache("c", 1024, 0), ::testing::ExitedWithCode(1),
                "zero-way");
}

TEST(FatalPathTest, SplitCounterWidthBounds)
{
    EXPECT_EXIT(SplitCounterLine(0), ::testing::ExitedWithCode(1),
                "1..16");
    EXPECT_EXIT(SplitCounterLine(17), ::testing::ExitedWithCode(1),
                "1..16");
    SplitCounterLine ok(16);
    EXPECT_EQ(16u, ok.minorBits());
}

TEST(FatalPathTest, PanicOnTreeIndexOutOfRange)
{
    TreeGeometry geom(kChunkBytes);
    EXPECT_DEATH((void)geom.lineOffset(9, 0), "out of range");
    EXPECT_DEATH((void)geom.lineOffset(0, 100000), "out of range");
}

TEST(TrafficAttributionTest, ClassesAccumulateIndependently)
{
    MemCtrl mem;
    mem.serve(0, 0, 128, false, Traffic::Data);
    mem.serve(0, 0x1000, 64, false, Traffic::Counter);
    mem.serve(0, 0x2000, 64, true, Traffic::Mac);
    mem.serve(0, 0x3000, 192, false, Traffic::Rmw);

    EXPECT_EQ(128u, mem.bytesBy(Traffic::Data));
    EXPECT_EQ(64u, mem.bytesBy(Traffic::Counter));
    EXPECT_EQ(64u, mem.bytesBy(Traffic::Mac));
    EXPECT_EQ(192u, mem.bytesBy(Traffic::Rmw));
    EXPECT_EQ(0u, mem.bytesBy(Traffic::Table));
    EXPECT_EQ(0u, mem.bytesBy(Traffic::Switch));

    std::uint64_t sum = 0;
    for (unsigned c = 0; c < kTrafficClasses; ++c)
        sum += mem.bytesBy(static_cast<Traffic>(c));
    EXPECT_EQ(mem.totalBytes(), sum);

    mem.resetStats();
    EXPECT_EQ(0u, mem.bytesBy(Traffic::Data));
}

TEST(TrafficAttributionTest, NamesAreStable)
{
    EXPECT_STREQ("data", trafficName(Traffic::Data));
    EXPECT_STREQ("counter", trafficName(Traffic::Counter));
    EXPECT_STREQ("mac", trafficName(Traffic::Mac));
    EXPECT_STREQ("table", trafficName(Traffic::Table));
    EXPECT_STREQ("switch", trafficName(Traffic::Switch));
    EXPECT_STREQ("rmw", trafficName(Traffic::Rmw));
}

TEST(GeneratorRegressionTest, AlexTracePrefixPinned)
{
    // Pin the first ops of a known (spec, seed) pair: any change to
    // the generator or RNG silently shifts every calibrated number in
    // EXPERIMENTS.md, so it must show up here first.
    const Trace t = generateTrace(findWorkload("alex"), 0, 1, 0.25);
    ASSERT_GE(t.size(), 3u);
    const Trace again = generateTrace(findWorkload("alex"), 0, 1,
                                      0.25);
    ASSERT_EQ(t.size(), again.size());
    EXPECT_EQ(t[0].addr, again[0].addr);
    EXPECT_EQ(t[1].addr, again[1].addr);
    EXPECT_EQ(t[2].gap, again[2].gap);
    // Structural pins that hold for any healthy alex trace.
    std::uint64_t bulk_reqs = 0;
    for (const TraceOp &op : t)
        bulk_reqs += op.bytes >= 1024;
    EXPECT_GT(bulk_reqs, t.size() / 2);   // DMA-beat dominated
}

TEST(GeneratorRegressionTest, EpochStructureRepeats)
{
    // With E epochs, the trace is the same episode list E times: op i
    // and op i + len/E touch the same address.
    const WorkloadSpec &spec = findWorkload("mm");
    const Trace t = generateTrace(spec, 0, 9, 0.5);
    const std::size_t epoch_len = t.size() / spec.epochs;
    ASSERT_GT(epoch_len, 0u);
    unsigned matches = 0, probes = 0;
    for (std::size_t i = 0; i < epoch_len && probes < 200;
         i += 7, ++probes) {
        matches += t[i].addr == t[i + epoch_len].addr;
    }
    // The tail episode may straddle the boundary; near-all must match.
    EXPECT_GT(matches, probes * 9 / 10);
}

} // namespace
} // namespace mgmee
