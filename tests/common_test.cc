/**
 * @file
 * Unit tests for common helpers: geometry constants, bit ops, RNG
 * determinism, and the stats registry.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mgmee {
namespace {

TEST(TypesTest, GeometryConstants)
{
    EXPECT_EQ(64u, kCachelineBytes);
    EXPECT_EQ(512u, kPartitionBytes);
    EXPECT_EQ(4096u, kSubchunkBytes);
    EXPECT_EQ(32768u, kChunkBytes);
    EXPECT_EQ(512u, kLinesPerChunk);
    EXPECT_EQ(64u, kPartitionsPerChunk);
    EXPECT_EQ(8u, kSubchunksPerChunk);
}

TEST(TypesTest, GranularityBytesEightTimesCoarser)
{
    EXPECT_EQ(64u, granularityBytes(Granularity::Line64B));
    EXPECT_EQ(512u, granularityBytes(Granularity::Part512B));
    EXPECT_EQ(4096u, granularityBytes(Granularity::Sub4KB));
    EXPECT_EQ(32768u, granularityBytes(Granularity::Chunk32KB));
}

TEST(TypesTest, PromotionLevelsMatchEq2)
{
    // Eq. 2: Parents = log_8(granularity / 64B).
    EXPECT_EQ(0u, promotionLevels(Granularity::Line64B));
    EXPECT_EQ(1u, promotionLevels(Granularity::Part512B));
    EXPECT_EQ(2u, promotionLevels(Granularity::Sub4KB));
    EXPECT_EQ(3u, promotionLevels(Granularity::Chunk32KB));
}

TEST(TypesTest, AddressDecomposition)
{
    const Addr a = 3 * kChunkBytes + 5 * kPartitionBytes +
                   2 * kCachelineBytes + 17;
    EXPECT_EQ(3u, chunkIndex(a));
    EXPECT_EQ(5u, partInChunk(a));
    EXPECT_EQ(0u, subInChunk(a));
    EXPECT_EQ(5 * 8 + 2, lineInChunk(a));
    EXPECT_EQ(3 * kChunkBytes, chunkBase(a));
}

TEST(TypesTest, GranularityNames)
{
    EXPECT_STREQ("64B", granularityName(Granularity::Line64B));
    EXPECT_STREQ("32KB", granularityName(Granularity::Chunk32KB));
    EXPECT_STREQ("CPU", deviceKindName(DeviceKind::CPU));
}

TEST(BitopsTest, Log2AndPow)
{
    EXPECT_EQ(6u, log2Exact(64));
    EXPECT_EQ(0u, log2Exact(1));
    EXPECT_EQ(512u, ipow(8, 3));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_FALSE(isPowerOfTwo(0));
}

TEST(BitopsTest, BitsOf)
{
    EXPECT_EQ(0x5u, bitsOf(0x50, 4, 4));
    EXPECT_EQ(0xffu, bitsOf(~0ull, 56, 8));
    EXPECT_EQ(~0ull, bitsOf(~0ull, 0, 64));
}

TEST(RngTest, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, UniformCoversUnitInterval)
{
    Rng rng(11);
    double min = 1.0, max = 0.0, sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        min = std::min(min, u);
        max = std::max(max, u);
        sum += u;
    }
    EXPECT_GE(min, 0.0);
    EXPECT_LT(max, 1.0);
    EXPECT_NEAR(0.5, sum / n, 0.02);
}

TEST(StatsTest, AddGetResetMergeDump)
{
    StatGroup g("engine");
    g.add("hits");
    g.add("hits", 4);
    g.add("misses", 2);
    EXPECT_EQ(5u, g.get("hits"));
    EXPECT_EQ(2u, g.get("misses"));
    EXPECT_EQ(0u, g.get("unknown"));

    StatGroup other("engine");
    other.add("hits", 10);
    g.merge(other);
    EXPECT_EQ(15u, g.get("hits"));

    const std::string dump = g.dump();
    EXPECT_NE(std::string::npos, dump.find("engine.hits 15"));
    EXPECT_NE(std::string::npos, dump.find("engine.misses 2"));

    g.reset();
    EXPECT_EQ(0u, g.get("hits"));
}

} // namespace
} // namespace mgmee
