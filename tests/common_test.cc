/**
 * @file
 * Unit tests for common helpers: geometry constants, bit ops, RNG
 * determinism, the stats registry/JSON export, and the warn rate
 * limiter.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace mgmee {
namespace {

TEST(TypesTest, GeometryConstants)
{
    EXPECT_EQ(64u, kCachelineBytes);
    EXPECT_EQ(512u, kPartitionBytes);
    EXPECT_EQ(4096u, kSubchunkBytes);
    EXPECT_EQ(32768u, kChunkBytes);
    EXPECT_EQ(512u, kLinesPerChunk);
    EXPECT_EQ(64u, kPartitionsPerChunk);
    EXPECT_EQ(8u, kSubchunksPerChunk);
}

TEST(TypesTest, GranularityBytesEightTimesCoarser)
{
    EXPECT_EQ(64u, granularityBytes(Granularity::Line64B));
    EXPECT_EQ(512u, granularityBytes(Granularity::Part512B));
    EXPECT_EQ(4096u, granularityBytes(Granularity::Sub4KB));
    EXPECT_EQ(32768u, granularityBytes(Granularity::Chunk32KB));
}

TEST(TypesTest, PromotionLevelsMatchEq2)
{
    // Eq. 2: Parents = log_8(granularity / 64B).
    EXPECT_EQ(0u, promotionLevels(Granularity::Line64B));
    EXPECT_EQ(1u, promotionLevels(Granularity::Part512B));
    EXPECT_EQ(2u, promotionLevels(Granularity::Sub4KB));
    EXPECT_EQ(3u, promotionLevels(Granularity::Chunk32KB));
}

TEST(TypesTest, AddressDecomposition)
{
    const Addr a = 3 * kChunkBytes + 5 * kPartitionBytes +
                   2 * kCachelineBytes + 17;
    EXPECT_EQ(3u, chunkIndex(a));
    EXPECT_EQ(5u, partInChunk(a));
    EXPECT_EQ(0u, subInChunk(a));
    EXPECT_EQ(5 * 8 + 2, lineInChunk(a));
    EXPECT_EQ(3 * kChunkBytes, chunkBase(a));
}

TEST(TypesTest, GranularityNames)
{
    EXPECT_STREQ("64B", granularityName(Granularity::Line64B));
    EXPECT_STREQ("32KB", granularityName(Granularity::Chunk32KB));
    EXPECT_STREQ("CPU", deviceKindName(DeviceKind::CPU));
}

TEST(BitopsTest, Log2AndPow)
{
    EXPECT_EQ(6u, log2Exact(64));
    EXPECT_EQ(0u, log2Exact(1));
    EXPECT_EQ(512u, ipow(8, 3));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(48));
    EXPECT_FALSE(isPowerOfTwo(0));
}

TEST(BitopsTest, BitsOf)
{
    EXPECT_EQ(0x5u, bitsOf(0x50, 4, 4));
    EXPECT_EQ(0xffu, bitsOf(~0ull, 56, 8));
    EXPECT_EQ(~0ull, bitsOf(~0ull, 0, 64));
}

TEST(RngTest, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c.next();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next(), c2.next());
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, UniformCoversUnitInterval)
{
    Rng rng(11);
    double min = 1.0, max = 0.0, sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        min = std::min(min, u);
        max = std::max(max, u);
        sum += u;
    }
    EXPECT_GE(min, 0.0);
    EXPECT_LT(max, 1.0);
    EXPECT_NEAR(0.5, sum / n, 0.02);
}

TEST(StatsTest, AddGetResetMergeDump)
{
    StatGroup g("engine");
    g.add("hits");
    g.add("hits", 4);
    g.add("misses", 2);
    EXPECT_EQ(5u, g.get("hits"));
    EXPECT_EQ(2u, g.get("misses"));
    EXPECT_EQ(0u, g.get("unknown"));

    StatGroup other("engine");
    other.add("hits", 10);
    g.merge(other);
    EXPECT_EQ(15u, g.get("hits"));

    const std::string dump = g.dump();
    EXPECT_NE(std::string::npos, dump.find("engine.hits 15"));
    EXPECT_NE(std::string::npos, dump.find("engine.misses 2"));

    g.reset();
    EXPECT_EQ(0u, g.get("hits"));
}

TEST(StatsTest, StatGroupToJsonRoundTrips)
{
    StatGroup g("engine");
    g.add("hits", 15);
    g.add("misses", 2);
    // Sorted map order and one "key": value pair per stat.
    EXPECT_EQ("{\"hits\": 15, \"misses\": 2}", g.toJson());
    EXPECT_EQ("{}", StatGroup("empty").toJson());
}

TEST(StatsTest, HistogramToJsonCarriesPercentiles)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);
    const std::string j = h.toJson();
    EXPECT_NE(std::string::npos, j.find("\"count\": 100"));
    EXPECT_NE(std::string::npos, j.find("\"sum\": 5050"));
    EXPECT_NE(std::string::npos, j.find("\"min\": 1"));
    EXPECT_NE(std::string::npos, j.find("\"max\": 100"));
    // The rendered percentiles are exactly the log2-bucket
    // estimates percentile() computes.
    EXPECT_NE(std::string::npos,
              j.find("\"p50\": " + std::to_string(h.percentile(0.5))));
    EXPECT_NE(std::string::npos,
              j.find("\"p90\": " + std::to_string(h.percentile(0.9))));
    EXPECT_NE(std::string::npos,
              j.find("\"p99\": " +
                     std::to_string(h.percentile(0.99))));
    EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
    EXPECT_LE(h.percentile(0.9), h.percentile(0.99));
}

TEST(StatsTest, RegistryCountersAreSharedAndSnapshot)
{
    auto &c = StatRegistry::instance().counter("test_group", "events");
    auto &same = StatRegistry::instance().counter("test_group",
                                                  "events");
    EXPECT_EQ(&c, &same);  // stable address per (group, stat)
    c.store(0);
    c.fetch_add(3);
    EXPECT_EQ(3u, StatRegistry::instance()
                      .snapshot("test_group")
                      .get("events"));
    const auto all = StatRegistry::instance().snapshotAll();
    ASSERT_TRUE(all.count("test_group"));
    EXPECT_EQ(3u, all.at("test_group").get("events"));
    EXPECT_NE(std::string::npos, StatRegistry::instance().dump().find(
                                     "test_group.events 3"));
    c.store(0);
}

TEST(LoggingTest, WarnRateLimiterSuppressesPerSite)
{
    warnResetRateLimiter();
    const std::uint64_t saved_limit = warnLimit();
    setWarnLimit(2);

    testing::internal::CaptureStderr();
    for (int i = 0; i < 6; ++i)
        warn("repeated diagnostic %d", i);
    const std::string burst = testing::internal::GetCapturedStderr();

    // First two print; the second also announces the suppression.
    EXPECT_NE(std::string::npos, burst.find("repeated diagnostic 0"));
    EXPECT_NE(std::string::npos, burst.find("repeated diagnostic 1"));
    EXPECT_EQ(std::string::npos, burst.find("repeated diagnostic 2"));
    EXPECT_NE(std::string::npos,
              burst.find("further warnings from this site suppressed"));
    EXPECT_EQ(4u, warnSuppressedCount());

    testing::internal::CaptureStderr();
    warnFlushSuppressed();
    const std::string summary = testing::internal::GetCapturedStderr();
    EXPECT_NE(std::string::npos, summary.find("suppressed 4 repeats"));
    EXPECT_EQ(0u, warnSuppressedCount());

    setWarnLimit(saved_limit);
    warnResetRateLimiter();
}

} // namespace
} // namespace mgmee
