/**
 * @file
 * Parameterized validation of every workload model against its spec:
 * determinism, footprint containment, write mix, traffic intensity
 * ordering, and stream-chunk composition (the Fig. 4 ground truth the
 * evaluation relies on).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/registry.hh"

namespace mgmee {
namespace {

class WorkloadProfileTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadSpec &spec() const { return findWorkload(GetParam()); }
};

TEST_P(WorkloadProfileTest, TraceIsDeterministic)
{
    const Trace a = generateTrace(spec(), 0, 42, 0.5);
    const Trace b = generateTrace(spec(), 0, 42, 0.5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr);
        ASSERT_EQ(a[i].bytes, b[i].bytes);
        ASSERT_EQ(a[i].is_write, b[i].is_write);
        ASSERT_EQ(a[i].gap, b[i].gap);
    }
}

TEST_P(WorkloadProfileTest, AddressesAlignedAndContained)
{
    const Addr base = 2 * (Addr{64} << 20);
    for (const TraceOp &op : generateTrace(spec(), base, 7, 0.5)) {
        EXPECT_EQ(0u, op.addr % kCachelineBytes);
        EXPECT_GE(op.addr, base);
        EXPECT_LE(op.addr + op.bytes, base + spec().footprint);
        EXPECT_GT(op.bytes, 0u);
    }
}

TEST_P(WorkloadProfileTest, WriteFractionRoughlyMatchesSpec)
{
    const auto p = profileTrace(generateTrace(spec(), 0, 3, 1.0));
    const double wf =
        static_cast<double>(p.writes) / static_cast<double>(
                                            p.requests);
    // Writes are drawn per episode; allow generous slack.
    EXPECT_NEAR(spec().write_frac, wf, 0.25) << GetParam();
}

TEST_P(WorkloadProfileTest, DominantClassMatchesSpec)
{
    const WorkloadSpec &w = spec();
    if (w.name == "floyd")
        GTEST_SKIP() << "floyd is 'diverse' by design (Table 4)";
    const auto p = profileTrace(generateTrace(w, 0, 1, 1.0));
    const double total = static_cast<double>(
        p.lines64 + p.lines512 + p.lines4k + p.lines32k);
    ASSERT_GT(total, 0);

    const double measured[4] = {
        p.lines64 / total, p.lines512 / total, p.lines4k / total,
        p.lines32k / total};
    const double target[4] = {w.r64, w.r512, w.r4k, w.r32k};

    // The spec's largest class must also be the measured largest or
    // second largest (partial episodes shift some coarse lines one
    // class down the hierarchy).
    int spec_max = 0;
    for (int i = 1; i < 4; ++i)
        if (target[i] > target[spec_max])
            spec_max = i;
    double rank_above = 0;
    for (int i = 0; i < 4; ++i)
        if (measured[i] > measured[spec_max])
            rank_above += 1;
    EXPECT_LE(rank_above, 1) << GetParam() << ": dominant class "
                             << spec_max << " not dominant";

    // Fine share should be in the right ballpark.
    EXPECT_NEAR(target[0], measured[0], 0.20) << GetParam();
}

TEST_P(WorkloadProfileTest, ScaleControlsLength)
{
    const std::size_t full = generateTrace(spec(), 0, 1, 1.0).size();
    const std::size_t half = generateTrace(spec(), 0, 1, 0.5).size();
    EXPECT_GT(full, half);
    EXPECT_NEAR(static_cast<double>(half) / full, 0.5, 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadProfileTest,
    ::testing::Values("bw", "gcc", "mcf", "xal", "ray", "sc", "floyd",
                      "mm", "pr", "sten", "syr2k", "ncf", "dlrm",
                      "alex", "sfrnn", "yt"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadOrderingTest, TrafficIntensityClassesOrdered)
{
    // Table 4 traffic classes: sten/sfrnn are 'l', bw/gcc/ncf 's'.
    auto intensity = [](const char *name) {
        const auto p = profileTrace(
            generateTrace(findWorkload(name), 0, 1, 1.0));
        return static_cast<double>(p.lines) /
               static_cast<double>(p.span + 1);
    };
    EXPECT_GT(intensity("sten"), intensity("bw"));
    EXPECT_GT(intensity("sfrnn"), intensity("ncf"));
    EXPECT_GT(intensity("mcf"), intensity("gcc"));
}

TEST(WorkloadOrderingTest, PaperAnchorRatios)
{
    // alex: 74.1% of lines in 32KB chunks (Sec. 3.1).
    const auto alex =
        profileTrace(generateTrace(findWorkload("alex"), 0, 1, 1.0));
    const double alex_total = static_cast<double>(
        alex.lines64 + alex.lines512 + alex.lines4k + alex.lines32k);
    EXPECT_NEAR(0.741, alex.lines32k / alex_total, 0.12);

    // xal: 19.5% of lines in 512B chunks.
    const auto xal =
        profileTrace(generateTrace(findWorkload("xal"), 0, 1, 1.0));
    const double xal_total = static_cast<double>(
        xal.lines64 + xal.lines512 + xal.lines4k + xal.lines32k);
    EXPECT_NEAR(0.195, xal.lines512 / xal_total, 0.10);
}

} // namespace
} // namespace mgmee
