/**
 * @file
 * Unit tests for integrity-tree geometry and the metadata layout.
 */

#include <gtest/gtest.h>

#include "tree/layout.hh"
#include "tree/tree_index.hh"

namespace mgmee {
namespace {

TEST(TreeGeometryTest, SingleChunkLevels)
{
    // One 32KB chunk: 512 leaves, 64 L1 counters, then the 8-counter
    // root node lives on-chip (not stored in memory).
    TreeGeometry g(kChunkBytes);
    EXPECT_EQ(2u, g.levels());
    EXPECT_EQ(512u, g.countersAt(0));
    EXPECT_EQ(64u, g.countersAt(1));
    EXPECT_EQ(512u, g.leafCount());
    // 64 leaf lines + 8 L1 lines.
    EXPECT_EQ(72u, g.totalCounterLines());
}

TEST(TreeGeometryTest, RoundsUpToWholeChunks)
{
    TreeGeometry g(kChunkBytes + 1);
    EXPECT_EQ(2 * kChunkBytes, g.dataBytes());
    EXPECT_EQ(1024u, g.leafCount());
}

TEST(TreeGeometryTest, LargeRegionLevelCount)
{
    // 64MB: 1M leaves -> 1M, 128K, 16K, 2K, 256, 32 in memory, 4-ctr
    // root on-chip.
    TreeGeometry g(64ull << 20);
    EXPECT_EQ(6u, g.levels());
    EXPECT_EQ(1u << 20, g.countersAt(0));
    EXPECT_EQ(32u, g.countersAt(5));
}

TEST(TreeGeometryTest, AncestorIndex)
{
    EXPECT_EQ(511u / 8, TreeGeometry::ancestorIndex(511, 1));
    EXPECT_EQ(511u / 64, TreeGeometry::ancestorIndex(511, 2));
    EXPECT_EQ(0u, TreeGeometry::ancestorIndex(511, 3));
    EXPECT_EQ(12345u, TreeGeometry::ancestorIndex(12345, 0));
}

TEST(TreeGeometryTest, ParentChildInverse)
{
    for (std::uint64_t idx : {0ull, 7ull, 8ull, 63ull, 512ull}) {
        const auto parent = TreeGeometry::parentIndex(idx);
        bool found = false;
        for (unsigned c = 0; c < kTreeArity; ++c)
            found |= TreeGeometry::childIndex(parent, c) == idx;
        EXPECT_TRUE(found) << idx;
    }
}

TEST(TreeGeometryTest, LineOffsetsDisjointAcrossLevels)
{
    TreeGeometry g(4 * kChunkBytes);
    // Last line of level 0 must come before first line of level 1.
    const auto last_l0 = g.lineOffset(0, g.countersAt(0) - 1);
    const auto first_l1 = g.lineOffset(1, 0);
    EXPECT_LT(last_l0, first_l1);
    // Eight consecutive counters share one line.
    EXPECT_EQ(g.lineOffset(0, 0), g.lineOffset(0, 7));
    EXPECT_NE(g.lineOffset(0, 7), g.lineOffset(0, 8));
}

TEST(MetadataLayoutTest, RegionClassification)
{
    MetadataLayout layout(kChunkBytes);
    EXPECT_TRUE(MetadataLayout::isDataAddr(0x1000));
    EXPECT_TRUE(MetadataLayout::isMacAddr(layout.macLineAddr(0)));
    EXPECT_TRUE(MetadataLayout::isCounterAddr(
        layout.counterLineAddr(0, 0)));
    EXPECT_TRUE(MetadataLayout::isGranTableAddr(
        layout.granTableLineAddr(0)));
}

TEST(MetadataLayoutTest, MacAddressesFollowEq1)
{
    MetadataLayout layout(kChunkBytes);
    // Eq. 1: Addr = Base + Idx * 8 (rounded to the containing line).
    EXPECT_EQ(MetadataLayout::kMacBase, layout.macLineAddr(0));
    EXPECT_EQ(MetadataLayout::kMacBase, layout.macLineAddr(7));
    EXPECT_EQ(MetadataLayout::kMacBase + 64, layout.macLineAddr(8));
    // One MAC per line: fine index equals global line index.
    EXPECT_EQ(5u, layout.fineMacIndex(5 * kCachelineBytes));
}

TEST(MetadataLayoutTest, GranTablePacksFourEntriesPerLine)
{
    MetadataLayout layout(kChunkBytes);
    const Addr l0 = layout.granTableLineAddr(0);
    EXPECT_EQ(l0, layout.granTableLineAddr(3));
    EXPECT_EQ(l0 + 64, layout.granTableLineAddr(4));
}

TEST(MetadataLayoutTest, CounterLinesDistinctFromMacLines)
{
    MetadataLayout layout(64 * kChunkBytes);
    const Addr ctr = layout.counterLineAddr(0, 100);
    const Addr mac = layout.macLineAddr(100);
    EXPECT_NE(ctr, mac);
    EXPECT_TRUE(MetadataLayout::isCounterAddr(ctr));
    EXPECT_TRUE(MetadataLayout::isMacAddr(mac));
}

} // namespace
} // namespace mgmee
