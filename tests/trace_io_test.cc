/**
 * @file
 * Unit tests for trace serialisation: round trips, format details,
 * comment/blank handling, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/registry.hh"
#include "workloads/trace_io.hh"

namespace mgmee {
namespace {

TEST(TraceIoTest, RoundTripPreservesEveryField)
{
    const Trace original =
        generateTrace(findWorkload("alex"), 0x1000000, 5, 0.2);
    ASSERT_FALSE(original.empty());

    std::stringstream ss;
    writeTrace(ss, original);
    const Trace loaded = readTrace(ss);

    ASSERT_EQ(original.size(), loaded.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(original[i].addr, loaded[i].addr) << i;
        EXPECT_EQ(original[i].bytes, loaded[i].bytes) << i;
        EXPECT_EQ(original[i].is_write, loaded[i].is_write) << i;
        EXPECT_EQ(original[i].gap, loaded[i].gap) << i;
    }
}

TEST(TraceIoTest, HandWrittenFormat)
{
    std::stringstream ss;
    ss << "mgmee-trace v1\n"
       << "# a comment\n"
       << "\n"
       << "R 1000 64 10\n"
       << "W ffffc0 512 0\n";
    const Trace t = readTrace(ss);
    ASSERT_EQ(2u, t.size());
    EXPECT_EQ(0x1000u, t[0].addr);
    EXPECT_EQ(64u, t[0].bytes);
    EXPECT_FALSE(t[0].is_write);
    EXPECT_EQ(10u, t[0].gap);
    EXPECT_EQ(0xffffc0u, t[1].addr);
    EXPECT_EQ(512u, t[1].bytes);
    EXPECT_TRUE(t[1].is_write);
}

TEST(TraceIoTest, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    writeTrace(ss, {});
    EXPECT_TRUE(readTrace(ss).empty());
}

TEST(TraceIoRejectTest, MissingHeaderIsFatal)
{
    std::stringstream ss;
    ss << "R 1000 64 10\n";
    EXPECT_EXIT(readTrace(ss), ::testing::ExitedWithCode(1),
                "not an mgmee trace");
}

TEST(TraceIoRejectTest, MalformedLineIsFatal)
{
    std::stringstream ss;
    ss << "mgmee-trace v1\n"
       << "X 1000 64 10\n";
    EXPECT_EXIT(readTrace(ss), ::testing::ExitedWithCode(1),
                "malformed");
}

TEST(TraceIoRejectTest, ZeroSizeOpIsFatal)
{
    std::stringstream ss;
    ss << "mgmee-trace v1\n"
       << "R 1000 0 10\n";
    EXPECT_EXIT(readTrace(ss), ::testing::ExitedWithCode(1),
                "zero-size");
}

TEST(TraceIoFileTest, SaveAndLoadFile)
{
    const Trace original =
        generateTrace(findWorkload("mm"), 0, 3, 0.1);
    const std::string path =
        ::testing::TempDir() + "/mgmee_trace_test.txt";
    saveTrace(path, original);
    const Trace loaded = loadTrace(path);
    ASSERT_EQ(original.size(), loaded.size());
    EXPECT_EQ(original.front().addr, loaded.front().addr);
    EXPECT_EQ(original.back().addr, loaded.back().addr);
}

} // namespace
} // namespace mgmee
