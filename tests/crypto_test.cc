/**
 * @file
 * Unit tests for the crypto substrate: AES-128 known-answer vectors,
 * SipHash-2-4 reference vectors, OTP properties and MAC behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/aes128.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "crypto/siphash.hh"

namespace mgmee {
namespace {

Aes128::Key
sequentialKey()
{
    Aes128::Key key;
    for (unsigned i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    return key;
}

TEST(Aes128Test, Fips197AppendixC1Vector)
{
    // FIPS-197 C.1: AES-128 with key 000102...0f over 00112233...ff.
    const Aes128 aes(sequentialKey());
    Aes128::Block block;
    for (unsigned i = 0; i < 16; ++i)
        block[i] = static_cast<std::uint8_t>(0x11 * i);
    aes.encryptBlock(block);

    const std::uint8_t expected[16] = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
    };
    EXPECT_EQ(0, std::memcmp(block.data(), expected, 16));
}

TEST(Aes128Test, AllZeroKeyAndPlaintextVector)
{
    // NIST AESAVS KAT: AES-128(key=0, pt=0) =
    // 66e94bd4ef8a2c3b884cfa59ca342b2e.
    const Aes128 aes(Aes128::Key{});
    Aes128::Block block{};
    aes.encryptBlock(block);
    const std::uint8_t expected[16] = {
        0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b,
        0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b, 0x2e,
    };
    EXPECT_EQ(0, std::memcmp(block.data(), expected, 16));
}

TEST(Aes128Test, Sp80038aEcbVector)
{
    // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
    const Aes128::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                             0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                             0x09, 0xcf, 0x4f, 0x3c};
    const Aes128 aes(key);
    Aes128::Block block = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40,
                           0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11,
                           0x73, 0x93, 0x17, 0x2a};
    aes.encryptBlock(block);
    const std::uint8_t expected[16] = {
        0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
        0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97,
    };
    EXPECT_EQ(0, std::memcmp(block.data(), expected, 16));
}

TEST(Aes128Test, DeterministicAndKeyDependent)
{
    const Aes128 a(sequentialKey());
    Aes128::Key other = sequentialKey();
    other[0] ^= 0xff;
    const Aes128 b(other);

    Aes128::Block in{};
    in[3] = 42;
    EXPECT_EQ(a.encrypt(in), a.encrypt(in));
    EXPECT_NE(a.encrypt(in), b.encrypt(in));
}

TEST(Aes128Test, SingleBitInputAvalanche)
{
    const Aes128 aes(sequentialKey());
    Aes128::Block zero{};
    Aes128::Block one{};
    one[0] = 1;
    const auto c0 = aes.encrypt(zero);
    const auto c1 = aes.encrypt(one);
    unsigned diff_bits = 0;
    for (unsigned i = 0; i < 16; ++i)
        diff_bits += __builtin_popcount(c0[i] ^ c1[i]);
    // A real cipher flips roughly half of the 128 output bits.
    EXPECT_GT(diff_bits, 32u);
    EXPECT_LT(diff_bits, 96u);
}

SipKey
referenceSipKey()
{
    return {0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
}

TEST(SipHashTest, ReferenceVectorEmpty)
{
    EXPECT_EQ(0x726fdb47dd0e0e31ULL,
              sipHash24(referenceSipKey(), nullptr, 0));
}

TEST(SipHashTest, ReferenceVectorEightBytes)
{
    std::uint8_t in[8];
    for (unsigned i = 0; i < 8; ++i)
        in[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(0x93f5f5799a932462ULL,
              sipHash24(referenceSipKey(), in, sizeof(in)));
}

TEST(SipHashTest, ReferenceVectorOneByte)
{
    const std::uint8_t in[1] = {0};
    EXPECT_EQ(0x74f839c593dc67fdULL,
              sipHash24(referenceSipKey(), in, 1));
}

TEST(SipHashTest, KeySeparation)
{
    const std::uint8_t msg[] = "multi-granular";
    const SipKey k1{1, 2};
    const SipKey k2{1, 3};
    EXPECT_NE(sipHash24(k1, msg, sizeof(msg)),
              sipHash24(k2, msg, sizeof(msg)));
}

TEST(OtpTest, PadRoundTrip)
{
    const OtpGenerator gen(sequentialKey());
    std::uint8_t data[kCachelineBytes];
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    std::uint8_t orig[kCachelineBytes];
    std::memcpy(orig, data, sizeof(data));

    const Pad pad = gen.makePad(0x1000, 7);
    OtpGenerator::applyPad(pad, data);
    EXPECT_NE(0, std::memcmp(orig, data, sizeof(data)));
    OtpGenerator::applyPad(pad, data);
    EXPECT_EQ(0, std::memcmp(orig, data, sizeof(data)));
}

TEST(OtpTest, PadUniquePerAddressAndCounter)
{
    const OtpGenerator gen(sequentialKey());
    const Pad a = gen.makePad(0x1000, 7);
    const Pad b = gen.makePad(0x1040, 7);   // different line
    const Pad c = gen.makePad(0x1000, 8);   // different version
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
    EXPECT_EQ(a, gen.makePad(0x1000, 7));   // deterministic
}

TEST(OtpTest, SubBlocksDiffer)
{
    // The four 16B AES outputs inside one pad must not repeat.
    const OtpGenerator gen(sequentialKey());
    const Pad pad = gen.makePad(0, 0);
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = i + 1; j < 4; ++j) {
            EXPECT_NE(0, std::memcmp(pad.data() + 16 * i,
                                     pad.data() + 16 * j, 16))
                << "sub-blocks " << i << " and " << j << " equal";
        }
    }
}

class MacEngineTest : public ::testing::Test
{
  protected:
    MacEngine mac_{SipKey{11, 22}};
};

TEST_F(MacEngineTest, LineMacBindsAllInputs)
{
    std::uint8_t data[kCachelineBytes] = {};
    data[0] = 5;
    const Mac base = mac_.lineMac(0x2000, 3, data);
    EXPECT_EQ(base, mac_.lineMac(0x2000, 3, data));
    EXPECT_NE(base, mac_.lineMac(0x2040, 3, data));  // address
    EXPECT_NE(base, mac_.lineMac(0x2000, 4, data));  // counter
    data[63] ^= 1;
    EXPECT_NE(base, mac_.lineMac(0x2000, 3, data));  // payload
}

TEST_F(MacEngineTest, NestedMacOrderSensitive)
{
    const Mac macs_a[] = {1, 2, 3};
    const Mac macs_b[] = {3, 2, 1};
    EXPECT_NE(mac_.nestedMac(macs_a), mac_.nestedMac(macs_b));
    EXPECT_EQ(mac_.nestedMac(macs_a), mac_.nestedMac(macs_a));
}

TEST_F(MacEngineTest, NestedMacAnyElementMatters)
{
    std::vector<Mac> macs(8, 0x42);
    const Mac base = mac_.nestedMac(macs);
    for (unsigned i = 0; i < macs.size(); ++i) {
        auto tampered = macs;
        tampered[i] ^= 1;
        EXPECT_NE(base, mac_.nestedMac(tampered)) << "element " << i;
    }
}

TEST_F(MacEngineTest, NodeMacBindsParentCounter)
{
    std::uint64_t ctrs[kTreeArity] = {1, 2, 3, 4, 5, 6, 7, 8};
    const Mac base = mac_.nodeMac(0x9000, 10, ctrs);
    EXPECT_NE(base, mac_.nodeMac(0x9000, 11, ctrs));
    ctrs[7] += 1;
    EXPECT_NE(base, mac_.nodeMac(0x9000, 10, ctrs));
}

} // namespace
} // namespace mgmee
