/**
 * @file
 * Unit tests for the crypto substrate: AES-128 known-answer vectors,
 * SipHash-2-4 reference vectors, OTP properties, MAC behaviour, and
 * the runtime-dispatch layer -- every SIMD kernel tier must be
 * bit-identical to the portable reference over random keys, lengths
 * and alignments, and the MacBatch staging buffer must reproduce the
 * scalar MAC loop exactly (including across automatic flushes).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "crypto/aes128.hh"
#include "crypto/batch.hh"
#include "crypto/dispatch.hh"
#include "crypto/mac.hh"
#include "crypto/otp.hh"
#include "crypto/siphash.hh"
#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

Aes128::Key
sequentialKey()
{
    Aes128::Key key;
    for (unsigned i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    return key;
}

TEST(Aes128Test, Fips197AppendixC1Vector)
{
    // FIPS-197 C.1: AES-128 with key 000102...0f over 00112233...ff.
    const Aes128 aes(sequentialKey());
    Aes128::Block block;
    for (unsigned i = 0; i < 16; ++i)
        block[i] = static_cast<std::uint8_t>(0x11 * i);
    aes.encryptBlock(block);

    const std::uint8_t expected[16] = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
    };
    EXPECT_EQ(0, std::memcmp(block.data(), expected, 16));
}

TEST(Aes128Test, AllZeroKeyAndPlaintextVector)
{
    // NIST AESAVS KAT: AES-128(key=0, pt=0) =
    // 66e94bd4ef8a2c3b884cfa59ca342b2e.
    const Aes128 aes(Aes128::Key{});
    Aes128::Block block{};
    aes.encryptBlock(block);
    const std::uint8_t expected[16] = {
        0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b,
        0x88, 0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b, 0x2e,
    };
    EXPECT_EQ(0, std::memcmp(block.data(), expected, 16));
}

TEST(Aes128Test, Sp80038aEcbVector)
{
    // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
    const Aes128::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                             0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                             0x09, 0xcf, 0x4f, 0x3c};
    const Aes128 aes(key);
    Aes128::Block block = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40,
                           0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11,
                           0x73, 0x93, 0x17, 0x2a};
    aes.encryptBlock(block);
    const std::uint8_t expected[16] = {
        0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
        0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97,
    };
    EXPECT_EQ(0, std::memcmp(block.data(), expected, 16));
}

TEST(Aes128Test, DeterministicAndKeyDependent)
{
    const Aes128 a(sequentialKey());
    Aes128::Key other = sequentialKey();
    other[0] ^= 0xff;
    const Aes128 b(other);

    Aes128::Block in{};
    in[3] = 42;
    EXPECT_EQ(a.encrypt(in), a.encrypt(in));
    EXPECT_NE(a.encrypt(in), b.encrypt(in));
}

TEST(Aes128Test, SingleBitInputAvalanche)
{
    const Aes128 aes(sequentialKey());
    Aes128::Block zero{};
    Aes128::Block one{};
    one[0] = 1;
    const auto c0 = aes.encrypt(zero);
    const auto c1 = aes.encrypt(one);
    unsigned diff_bits = 0;
    for (unsigned i = 0; i < 16; ++i)
        diff_bits += __builtin_popcount(c0[i] ^ c1[i]);
    // A real cipher flips roughly half of the 128 output bits.
    EXPECT_GT(diff_bits, 32u);
    EXPECT_LT(diff_bits, 96u);
}

SipKey
referenceSipKey()
{
    return {0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
}

TEST(SipHashTest, ReferenceVectorEmpty)
{
    EXPECT_EQ(0x726fdb47dd0e0e31ULL,
              sipHash24(referenceSipKey(), nullptr, 0));
}

TEST(SipHashTest, ReferenceVectorEightBytes)
{
    std::uint8_t in[8];
    for (unsigned i = 0; i < 8; ++i)
        in[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(0x93f5f5799a932462ULL,
              sipHash24(referenceSipKey(), in, sizeof(in)));
}

TEST(SipHashTest, ReferenceVectorOneByte)
{
    const std::uint8_t in[1] = {0};
    EXPECT_EQ(0x74f839c593dc67fdULL,
              sipHash24(referenceSipKey(), in, 1));
}

TEST(SipHashTest, KeySeparation)
{
    const std::uint8_t msg[] = "multi-granular";
    const SipKey k1{1, 2};
    const SipKey k2{1, 3};
    EXPECT_NE(sipHash24(k1, msg, sizeof(msg)),
              sipHash24(k2, msg, sizeof(msg)));
}

TEST(OtpTest, PadRoundTrip)
{
    const OtpGenerator gen(sequentialKey());
    std::uint8_t data[kCachelineBytes];
    for (unsigned i = 0; i < kCachelineBytes; ++i)
        data[i] = static_cast<std::uint8_t>(i * 3 + 1);
    std::uint8_t orig[kCachelineBytes];
    std::memcpy(orig, data, sizeof(data));

    const Pad pad = gen.makePad(0x1000, 7);
    OtpGenerator::applyPad(pad, data);
    EXPECT_NE(0, std::memcmp(orig, data, sizeof(data)));
    OtpGenerator::applyPad(pad, data);
    EXPECT_EQ(0, std::memcmp(orig, data, sizeof(data)));
}

TEST(OtpTest, PadUniquePerAddressAndCounter)
{
    const OtpGenerator gen(sequentialKey());
    const Pad a = gen.makePad(0x1000, 7);
    const Pad b = gen.makePad(0x1040, 7);   // different line
    const Pad c = gen.makePad(0x1000, 8);   // different version
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
    EXPECT_EQ(a, gen.makePad(0x1000, 7));   // deterministic
}

TEST(OtpTest, SubBlocksDiffer)
{
    // The four 16B AES outputs inside one pad must not repeat.
    const OtpGenerator gen(sequentialKey());
    const Pad pad = gen.makePad(0, 0);
    for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = i + 1; j < 4; ++j) {
            EXPECT_NE(0, std::memcmp(pad.data() + 16 * i,
                                     pad.data() + 16 * j, 16))
                << "sub-blocks " << i << " and " << j << " equal";
        }
    }
}

class MacEngineTest : public ::testing::Test
{
  protected:
    MacEngine mac_{SipKey{11, 22}};
};

TEST_F(MacEngineTest, LineMacBindsAllInputs)
{
    std::uint8_t data[kCachelineBytes] = {};
    data[0] = 5;
    const Mac base = mac_.lineMac(0x2000, 3, data);
    EXPECT_EQ(base, mac_.lineMac(0x2000, 3, data));
    EXPECT_NE(base, mac_.lineMac(0x2040, 3, data));  // address
    EXPECT_NE(base, mac_.lineMac(0x2000, 4, data));  // counter
    data[63] ^= 1;
    EXPECT_NE(base, mac_.lineMac(0x2000, 3, data));  // payload
}

TEST_F(MacEngineTest, NestedMacOrderSensitive)
{
    const Mac macs_a[] = {1, 2, 3};
    const Mac macs_b[] = {3, 2, 1};
    EXPECT_NE(mac_.nestedMac(macs_a), mac_.nestedMac(macs_b));
    EXPECT_EQ(mac_.nestedMac(macs_a), mac_.nestedMac(macs_a));
}

TEST_F(MacEngineTest, NestedMacAnyElementMatters)
{
    std::vector<Mac> macs(8, 0x42);
    const Mac base = mac_.nestedMac(macs);
    for (unsigned i = 0; i < macs.size(); ++i) {
        auto tampered = macs;
        tampered[i] ^= 1;
        EXPECT_NE(base, mac_.nestedMac(tampered)) << "element " << i;
    }
}

TEST_F(MacEngineTest, NodeMacBindsParentCounter)
{
    std::uint64_t ctrs[kTreeArity] = {1, 2, 3, 4, 5, 6, 7, 8};
    const Mac base = mac_.nodeMac(0x9000, 10, ctrs);
    EXPECT_NE(base, mac_.nodeMac(0x9000, 11, ctrs));
    ctrs[7] += 1;
    EXPECT_NE(base, mac_.nodeMac(0x9000, 10, ctrs));
}

// ---- runtime dispatch: every tier vs the portable oracle ---------------

/** The SIMD tiers this CPU can run (empty on non-x86 hardware). */
std::vector<crypto::Isa>
simdTiers()
{
    std::vector<crypto::Isa> tiers;
    const auto best = static_cast<std::uint8_t>(
        crypto::bestSupportedIsa());
    for (std::uint8_t i = 1; i <= best; ++i)
        tiers.push_back(static_cast<crypto::Isa>(i));
    return tiers;
}

class DispatchTest : public ::testing::Test
{
  protected:
    void TearDown() override { crypto::clearDispatchOverride(); }
};

TEST_F(DispatchTest, AesKernelsBitIdenticalToPortable)
{
    // Random keys, block counts and (mis)alignments: each SIMD tier
    // must produce byte-for-byte the portable output, including the
    // scalar tails of the 4- and 8-block unrolls.
    std::mt19937_64 rng(0xc0ffee);
    for (const crypto::Isa isa : simdTiers()) {
        const crypto::Kernels &k = crypto::kernelsFor(isa);
        for (unsigned trial = 0; trial < 48; ++trial) {
            Aes128::Key key;
            for (auto &b : key)
                b = static_cast<std::uint8_t>(rng());
            const Aes128 aes(key);
            const std::size_t n = 1 + rng() % 33;
            const std::size_t off = rng() % 16;
            std::vector<std::uint8_t> buf(off + n * 16);
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng());
            std::vector<std::uint8_t> ref = buf;
            crypto::detail::aesEncryptBlocksPortable(
                aes.roundKeys(), ref.data() + off, n);
            k.aesEncryptBlocks(aes.roundKeys(), buf.data() + off, n);
            ASSERT_EQ(ref, buf)
                << crypto::isaName(isa) << " trial " << trial
                << " n=" << n << " off=" << off;
        }
    }
}

TEST_F(DispatchTest, Fips197VectorUnderEveryTier)
{
    // The known-answer vector must hold through the dispatched path,
    // not just kernel-vs-kernel.
    const std::uint8_t expected[16] = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
    };
    const auto best =
        static_cast<std::uint8_t>(crypto::bestSupportedIsa());
    for (std::uint8_t i = 0; i <= best; ++i) {
        crypto::setDispatchOverride(static_cast<crypto::Isa>(i));
        const Aes128 aes(sequentialKey());
        Aes128::Block block;
        for (unsigned b = 0; b < 16; ++b)
            block[b] = static_cast<std::uint8_t>(0x11 * b);
        aes.encryptBlock(block);
        EXPECT_EQ(0, std::memcmp(block.data(), expected, 16))
            << crypto::isaName(static_cast<crypto::Isa>(i));
    }
}

TEST_F(DispatchTest, SipHashLanesMatchScalar)
{
    // Four-lane digests over every interesting length (block
    // boundaries, tails, the 80B MAC message) and per-lane
    // misalignment must equal four scalar sipHash24 calls.
    std::mt19937_64 rng(0xfeedface);
    const SipKey key{rng(), rng()};
    const std::size_t lens[] = {0, 1, 7, 8, 9, 15, 16, 63,
                                64, 72, 80, 100, 128};
    for (const crypto::Isa isa : simdTiers()) {
        crypto::setDispatchOverride(isa);
        for (const std::size_t len : lens) {
            std::vector<std::uint8_t> store[4];
            const std::uint8_t *msgs[4];
            for (unsigned m = 0; m < 4; ++m) {
                const std::size_t off = rng() % 8;
                store[m].resize(off + len);
                for (auto &b : store[m])
                    b = static_cast<std::uint8_t>(rng());
                msgs[m] = store[m].data() + off;
            }
            std::uint64_t out[4];
            sipHash24x4(key, msgs, len, out);
            for (unsigned m = 0; m < 4; ++m)
                EXPECT_EQ(sipHash24(key, msgs[m], len), out[m])
                    << crypto::isaName(isa) << " len=" << len
                    << " lane=" << m;
        }
    }
}

// ---- MacBatch staging buffer -------------------------------------------

TEST(MacBatchTest, MatchesScalarLoopAcrossAutoFlush)
{
    // Stage 2.5x the buffer capacity of interleaved line and node
    // MACs: the automatic mid-stream flushes must not change results
    // or ordering vs the scalar loop.
    const SipKey key{77, 88};
    const MacEngine mac(key);
    std::mt19937_64 rng(1234);

    constexpr std::size_t kN = crypto::MacBatch::kCapacity * 5 / 2;
    std::vector<std::array<std::uint8_t, kCachelineBytes>> lines(kN);
    std::vector<std::array<std::uint64_t, kTreeArity>> ctrs(kN);
    std::vector<Mac> got(kN, 0), expected(kN, 0);

    crypto::MacBatch batch = mac.batch();
    for (std::size_t i = 0; i < kN; ++i) {
        const Addr addr = (rng() % (1 << 20)) * kCachelineBytes;
        const std::uint64_t ctr = rng() % 1000;
        if (i % 3 == 0) {
            for (auto &c : ctrs[i])
                c = rng();
            expected[i] = mac.nodeMac(addr, ctr, ctrs[i]);
            batch.node(addr, ctr, ctrs[i].data(), &got[i]);
        } else {
            for (auto &b : lines[i])
                b = static_cast<std::uint8_t>(rng());
            expected[i] = mac.lineMac(addr, ctr, lines[i].data());
            batch.line(addr, ctr, lines[i].data(), &got[i]);
        }
    }
    EXPECT_GT(batch.pending(), 0u);  // a tail is still staged
    batch.flush();
    EXPECT_EQ(0u, batch.pending());
    EXPECT_EQ(expected, got);
}

TEST(MacBatchTest, DestructorFlushesPending)
{
    const SipKey key{5, 6};
    const MacEngine mac(key);
    const std::uint8_t data[kCachelineBytes] = {9};
    Mac got = 0;
    {
        crypto::MacBatch batch = mac.batch();
        batch.line(0x40, 2, data, &got);
        EXPECT_EQ(1u, batch.pending());
    }
    EXPECT_EQ(mac.lineMac(0x40, 2, data), got);
}

TEST(MacBatchTest, ConcurrentBatchesIndependent)
{
    // One MacBatch per thread over a shared key (the sharded-sweep
    // shape: one engine per shard).  The only shared state is the
    // StatRegistry counters and the obs trace; run under TSan this
    // checks the staging path stays data-race free.
    const SipKey key{21, 42};
    const MacEngine mac(key);
    constexpr unsigned kThreads = 4;
    constexpr std::size_t kPerThread = 200;

    std::vector<std::vector<Mac>> got(
        kThreads, std::vector<Mac>(kPerThread, 0));
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t]() {
            std::array<std::uint8_t, kCachelineBytes> data{};
            crypto::MacBatch batch = mac.batch();
            for (std::size_t i = 0; i < kPerThread; ++i) {
                data[0] = static_cast<std::uint8_t>(i);
                data[1] = static_cast<std::uint8_t>(t);
                batch.line(i * kCachelineBytes, t, data.data(),
                           &got[t][i]);
            }
            batch.flush();
        });
    }
    for (auto &th : pool)
        th.join();

    std::array<std::uint8_t, kCachelineBytes> data{};
    for (unsigned t = 0; t < kThreads; ++t) {
        for (std::size_t i = 0; i < kPerThread; ++i) {
            data[0] = static_cast<std::uint8_t>(i);
            data[1] = static_cast<std::uint8_t>(t);
            EXPECT_EQ(mac.lineMac(i * kCachelineBytes, t,
                                  data.data()),
                      got[t][i])
                << "thread " << t << " item " << i;
        }
    }
}

// ---- whole-engine cross-mode identity ----------------------------------

TEST(CryptoModesTest, SecureMemoryBitIdenticalAcrossTiers)
{
    // Drive a SecureMemory through writes, reads, a granularity
    // promotion and a ciphertext capture under each kernel tier: the
    // off-chip image (ciphertext + MACs) and the decrypted data must
    // be byte-identical, which is what makes sweep results invariant
    // under MGMEE_CRYPTO.
    auto run = [](crypto::Isa isa) {
        crypto::setDispatchOverride(isa);
        SecureMemory::Keys keys;
        for (unsigned i = 0; i < keys.aes.size(); ++i)
            keys.aes[i] = static_cast<std::uint8_t>(i * 17 + 3);
        keys.mac = SipKey{314159, 271828};
        SecureMemory mem(4 * kChunkBytes, keys);

        std::vector<std::uint8_t> data(kChunkBytes);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(i * 7 + 1);
        EXPECT_EQ(SecureMemory::Status::Ok,
                  mem.write(0, std::span<const std::uint8_t>(data)));
        EXPECT_EQ(SecureMemory::Status::Ok,
                  mem.write(kChunkBytes + 128,
                            std::span<const std::uint8_t>(
                                data.data(), 100)));
        mem.applyStreamPart(0, StreamPart{0xff});   // promote
        mem.applyStreamPart(0, kAllFine);           // and demote back

        std::vector<std::uint8_t> read(kChunkBytes);
        EXPECT_EQ(SecureMemory::Status::Ok,
                  mem.read(0, std::span<std::uint8_t>(read)));
        const SecureMemory::Replay snap =
            mem.captureForReplay(5 * kCachelineBytes);

        crypto::clearDispatchOverride();
        read.insert(read.end(), snap.cipher.begin(),
                    snap.cipher.end());
        for (unsigned b = 0; b < 8; ++b)
            read.push_back(
                static_cast<std::uint8_t>(snap.mac >> (8 * b)));
        return read;
    };

    const std::vector<std::uint8_t> portable =
        run(crypto::Isa::Portable);
    for (const crypto::Isa isa : simdTiers())
        EXPECT_EQ(portable, run(isa)) << crypto::isaName(isa);
}

} // namespace
} // namespace mgmee
