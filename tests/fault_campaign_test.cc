/**
 * @file
 * Fault-injection campaign tests: per-cell verdicts for the attack
 * classes the paper's security argument leans on (replay, splice,
 * promote/demote-boundary tampering), on both the mgmee and the
 * conventional engine; clean-run false-alarm checks for every
 * engine; the treeless rollback split (managed on-chip versions
 * detect, off-chip versions miss); the related-work rows (mgx-style
 * derived versions detect every covered class, secddr-style
 * interface MACs measurably miss replay-at-rest); the persistent
 * nvm-mgmee engine (power-cut / stale-persist detected, DRAM classes
 * unchanged); and the full-sweep acceptance bar (core engines detect
 * everything, zero false alarms anywhere).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "common/config.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "obs/manifest.hh"

namespace mgmee {
namespace {

using fault::AttackClass;
using fault::CellResult;
using fault::Verdict;

constexpr std::size_t kRegionBytes = 64 * kChunkBytes;

CellResult
runCell(const std::string &engine, AttackClass cls, Granularity gran,
        std::uint64_t seed = 0xc0ffee)
{
    auto target = fault::makeTarget(engine, kRegionBytes, seed);
    EXPECT_NE(nullptr, target);
    return fault::runAttack(*target, cls, gran, seed);
}

// ---- replay ---------------------------------------------------------

TEST(FaultCampaign, RollbackDetectedOnCoreEngines)
{
    for (const char *engine : {"mgmee", "conventional"}) {
        for (unsigned g = 0; g < fault::kGranularities; ++g) {
            const CellResult cell =
                runCell(engine, AttackClass::Rollback,
                        static_cast<Granularity>(g));
            EXPECT_EQ(Verdict::Detected, cell.verdict)
                << engine << " @ "
                << granularityName(static_cast<Granularity>(g));
            EXPECT_GT(cell.injections, 0u);
        }
    }
}

TEST(FaultCampaign, RollbackSplitsTreelessVariants)
{
    // Managed (on-chip) versions anchor freshness: the attacker
    // cannot roll the version back, so the stale MAC mismatches.
    EXPECT_EQ(Verdict::Detected,
              runCell("treeless-npu", AttackClass::Rollback,
                      Granularity::Line64B)
                  .verdict);
    // Off-chip versions with no tree: a consistent rollback of
    // {cipher, MAC, version} verifies -- Sec. 2.3's argument.
    EXPECT_EQ(Verdict::Missed,
              runCell("treeless-cpu", AttackClass::Rollback,
                      Granularity::Line64B)
                  .verdict);
}

// ---- splice ---------------------------------------------------------

TEST(FaultCampaign, SpliceDetectedOnCoreEngines)
{
    for (const char *engine : {"mgmee", "conventional"}) {
        for (unsigned g = 0; g < fault::kGranularities; ++g) {
            const CellResult cell =
                runCell(engine, AttackClass::Splice,
                        static_cast<Granularity>(g));
            EXPECT_EQ(Verdict::Detected, cell.verdict)
                << engine << " @ "
                << granularityName(static_cast<Granularity>(g));
        }
    }
}

TEST(FaultCampaign, SpliceDetectedEvenWithoutTree)
{
    // The per-line MAC binds the address, so relocation fails on
    // both treeless variants despite the missing tree.
    EXPECT_EQ(Verdict::Detected,
              runCell("treeless-cpu", AttackClass::Splice,
                      Granularity::Line64B)
                  .verdict);
    EXPECT_EQ(Verdict::Detected,
              runCell("treeless-npu", AttackClass::Splice,
                      Granularity::Line64B)
                  .verdict);
}

// ---- promote/demote boundary tampering ------------------------------

TEST(FaultCampaign, StaleSwitchDetectedOnMgmee)
{
    // Replaying a pre-promotion image after the switch (and a
    // pre-demotion image after switching back) must fail at every
    // coarse granularity: the switch re-encrypts under new counters.
    for (const Granularity g :
         {Granularity::Part512B, Granularity::Sub4KB,
          Granularity::Chunk32KB}) {
        const CellResult cell =
            runCell("mgmee", AttackClass::StaleSwitch, g);
        EXPECT_EQ(Verdict::Detected, cell.verdict)
            << granularityName(g);
        // Both directions injected: promote AND demote boundary.
        EXPECT_EQ(2u, cell.injections) << granularityName(g);
    }
}

TEST(FaultCampaign, StaleSwitchNotApplicableWithoutSwitching)
{
    // The conventional engine cannot switch granularity, so there is
    // no boundary to attack -- the cell must be N/A, never Missed.
    const CellResult cell = runCell(
        "conventional", AttackClass::StaleSwitch,
        Granularity::Chunk32KB);
    EXPECT_EQ(Verdict::NotApplicable, cell.verdict);
    EXPECT_EQ(0u, cell.injections);
}

TEST(FaultCampaign, StaleFlushWindowDetectedOnCoreEngines)
{
    // Restoring a stale image while lazy node-MAC refreshes are
    // still pending must not launder the replay (the restore hook
    // settles deferred state before overwriting).
    for (const char *engine : {"mgmee", "conventional"}) {
        EXPECT_EQ(Verdict::Detected,
                  runCell(engine, AttackClass::StaleFlush,
                          Granularity::Line64B)
                      .verdict)
            << engine;
    }
}

// ---- clean control runs ---------------------------------------------

TEST(FaultCampaign, CleanRunsRaiseNoFalseAlarms)
{
    for (const char *engine : fault::allEngines()) {
        for (unsigned g = 0; g < fault::kGranularities; ++g) {
            const CellResult cell =
                runCell(engine, AttackClass::None,
                        static_cast<Granularity>(g));
            EXPECT_EQ(Verdict::CleanPass, cell.verdict)
                << engine << " @ "
                << granularityName(static_cast<Granularity>(g));
            EXPECT_EQ(0u, cell.false_alarms);
        }
    }
}

// ---- related-work engines (mgx / secddr-interface) ------------------

TEST(FaultCampaign, MgxDetectsEveryCoveredClass)
{
    // The MGX-style engine derives versions from the application's
    // write schedule (never stored off-chip), so freshness holds:
    // every class with attackable state on this engine is detected.
    for (const AttackClass cls :
         {AttackClass::DataFlip, AttackClass::MacFlip,
          AttackClass::Rollback, AttackClass::Splice,
          AttackClass::StaleRekey, AttackClass::StaleFlush}) {
        const CellResult cell =
            runCell("mgx", cls, Granularity::Line64B);
        EXPECT_EQ(Verdict::Detected, cell.verdict)
            << fault::attackClassName(cls);
        EXPECT_EQ(0u, cell.false_alarms);
    }
    // Derived versions give the attacker no counter state to flip,
    // and there is no granularity table or persistence domain.
    for (const AttackClass cls :
         {AttackClass::CounterFlip, AttackClass::GranTable,
          AttackClass::PowerCut, AttackClass::StalePersist}) {
        EXPECT_EQ(Verdict::NotApplicable,
                  runCell("mgx", cls, Granularity::Line64B).verdict)
            << fault::attackClassName(cls);
    }
}

TEST(FaultCampaign, SecDdrInterfaceMissesReplayAtRest)
{
    // Link-level integrity authenticates (addr, cipher) with no
    // freshness input: tampering is caught...
    for (const AttackClass cls :
         {AttackClass::DataFlip, AttackClass::MacFlip,
          AttackClass::Splice, AttackClass::StaleRekey}) {
        EXPECT_EQ(Verdict::Detected,
                  runCell("secddr-interface", cls,
                          Granularity::Line64B)
                      .verdict)
            << fault::attackClassName(cls);
    }
    // ...but a consistent {cipher, MAC} replay at rest verifies.
    // These measured misses are the engine's documented trade-off,
    // exactly like the treeless-cpu row.
    for (const AttackClass cls :
         {AttackClass::Rollback, AttackClass::StaleFlush}) {
        const CellResult cell = runCell("secddr-interface", cls,
                                        Granularity::Line64B);
        EXPECT_EQ(Verdict::Missed, cell.verdict)
            << fault::attackClassName(cls);
        EXPECT_GT(cell.injections, 0u);
    }
}

// ---- persistent-memory engine (nvm-mgmee) ---------------------------

TEST(FaultCampaign, NvmDetectsPowerCutAndStalePersist)
{
    for (const AttackClass cls :
         {AttackClass::PowerCut, AttackClass::StalePersist}) {
        for (unsigned g = 0; g < fault::kGranularities; ++g) {
            const CellResult cell = runCell(
                "nvm-mgmee", cls, static_cast<Granularity>(g));
            EXPECT_EQ(Verdict::Detected, cell.verdict)
                << fault::attackClassName(cls) << " @ "
                << granularityName(static_cast<Granularity>(g));
            EXPECT_GT(cell.injections, 0u);
            EXPECT_EQ(0u, cell.false_alarms);
        }
    }
}

TEST(FaultCampaign, PersistenceClassesNotApplicableWithoutNvm)
{
    // DRAM-resident engines have no persisted image to tear or
    // replay: the cells must be N/A, never Missed.
    for (const char *engine : {"mgmee", "conventional",
                               "treeless-cpu", "secddr-interface"}) {
        for (const AttackClass cls :
             {AttackClass::PowerCut, AttackClass::StalePersist}) {
            const CellResult cell =
                runCell(engine, cls, Granularity::Line64B);
            EXPECT_EQ(Verdict::NotApplicable, cell.verdict)
                << engine << " " << fault::attackClassName(cls);
            EXPECT_EQ(0u, cell.injections);
        }
    }
}

TEST(FaultCampaign, NvmMatchesMgmeeOnEveryDramClass)
{
    // Persistence must not weaken anything: on the classes that also
    // exist for the DRAM engine, nvm-mgmee's verdicts are identical
    // to mgmee's (full detection, same applicability).
    for (unsigned c = 0; c < fault::kAttackClasses; ++c) {
        const auto cls = static_cast<AttackClass>(c);
        if (cls == AttackClass::PowerCut ||
            cls == AttackClass::StalePersist)
            continue;
        for (unsigned g = 0; g < fault::kGranularities; ++g) {
            const auto gran = static_cast<Granularity>(g);
            EXPECT_EQ(runCell("mgmee", cls, gran).verdict,
                      runCell("nvm-mgmee", cls, gran).verdict)
                << fault::attackClassName(cls) << " @ "
                << granularityName(gran);
        }
    }
}

// ---- full sweep -----------------------------------------------------

TEST(FaultCampaign, FullSweepMeetsAcceptanceBar)
{
    fault::CampaignConfig cfg;
    cfg.seed = 7;
    const fault::CampaignReport report = fault::runCampaign(cfg);

    ASSERT_EQ(fault::allEngines().size(), report.engines.size());
    EXPECT_TRUE(report.coreEnginesFullyDetect());

    const auto totals = report.verdictTotals();
    EXPECT_EQ(0u, totals[static_cast<unsigned>(Verdict::FalseAlarm)]);
    EXPECT_GT(totals[static_cast<unsigned>(Verdict::Detected)], 0u);

    // The misses are exactly the documented replay-at-rest gaps of
    // the two engines with no freshness anchor: treeless-cpu
    // (off-chip versions, no tree) and secddr-interface (link-level
    // MAC, no versions at all).
    for (const fault::EngineReport &er : report.engines) {
        for (unsigned c = 0; c < fault::kAttackClasses; ++c) {
            const auto cls = static_cast<AttackClass>(c);
            if (er.classVerdict(cls) == Verdict::Missed) {
                EXPECT_TRUE(er.engine == "treeless-cpu" ||
                            er.engine == "secddr-interface")
                    << er.engine;
                EXPECT_TRUE(cls == AttackClass::Rollback ||
                            cls == AttackClass::StaleFlush)
                    << fault::attackClassName(cls);
            }
        }
    }
}

TEST(FaultCampaign, DetectionMatrixIdenticalAcrossThreadCounts)
{
    // The campaign fans cells out over MGMEE_THREADS workers; every
    // cell derives its own seed stream, so the full detection matrix
    // must be identical for any thread count.
    fault::CampaignConfig cfg;
    cfg.seed = 7;

    const Config saved = config();
    Config proc = saved;
    proc.threads = 1;
    setConfig(proc);
    const fault::CampaignReport serial = fault::runCampaign(cfg);
    proc.threads = 4;
    setConfig(proc);
    const fault::CampaignReport parallel = fault::runCampaign(cfg);
    setConfig(saved);

    ASSERT_EQ(serial.engines.size(), parallel.engines.size());
    for (std::size_t e = 0; e < serial.engines.size(); ++e) {
        const fault::EngineReport &es = serial.engines[e];
        const fault::EngineReport &ep = parallel.engines[e];
        EXPECT_EQ(es.engine, ep.engine);
        for (unsigned c = 0; c < fault::kAttackClasses; ++c) {
            for (unsigned g = 0; g < fault::kGranularities; ++g) {
                const CellResult &cs = es.cells[c][g];
                const CellResult &cp = ep.cells[c][g];
                EXPECT_EQ(cs.verdict, cp.verdict)
                    << es.engine << " class " << c << " gran " << g;
                EXPECT_EQ(cs.injections, cp.injections);
                EXPECT_EQ(cs.detected, cp.detected);
                EXPECT_EQ(cs.missed, cp.missed);
                EXPECT_EQ(cs.false_alarms, cp.false_alarms);
            }
        }
    }
    EXPECT_EQ(serial.verdictTotals(), parallel.verdictTotals());
}

// ---- detection latency ----------------------------------------------

TEST(FaultCampaign, DetectedCellsRecordInjectToVerdictLatency)
{
    const CellResult cell = runCell("mgmee", AttackClass::Rollback,
                                    Granularity::Line64B);
    ASSERT_EQ(Verdict::Detected, cell.verdict);
    // One latency sample per injection, in the injector's
    // deterministic tick units, and wall time for the whole cell.
    EXPECT_EQ(cell.injections, cell.latency.count());
    EXPECT_GT(cell.latency.max(), 0u);
    EXPECT_GT(cell.ticks, 0u);
    EXPECT_GT(cell.wall_ns, 0u);

    // Clean cells inject nothing, so there is nothing to time.
    const CellResult clean = runCell("mgmee", AttackClass::None,
                                     Granularity::Line64B);
    EXPECT_EQ(0u, clean.latency.count());
}

TEST(FaultCampaign, DetectionLatencyIdenticalAcrossThreadCounts)
{
    // Latencies are measured on the injector's tick clock (bytes
    // moved, not wall time), so the per-(engine, class) histograms
    // must be bit-identical however the cells fan out.
    fault::CampaignConfig cfg;
    cfg.seed = 7;
    cfg.engines = {"mgmee", "conventional"};

    cfg.threads = 1;
    const fault::CampaignReport serial = fault::runCampaign(cfg);
    cfg.threads = 4;
    const fault::CampaignReport parallel = fault::runCampaign(cfg);

    ASSERT_EQ(serial.engines.size(), parallel.engines.size());
    bool any = false;
    for (std::size_t e = 0; e < serial.engines.size(); ++e) {
        for (unsigned c = 0; c < fault::kAttackClasses; ++c) {
            const auto cls = static_cast<AttackClass>(c);
            const Histogram hs =
                serial.engines[e].classLatency(cls);
            const Histogram hp =
                parallel.engines[e].classLatency(cls);
            EXPECT_EQ(hs.toJson(), hp.toJson())
                << serial.engines[e].engine << " class " << c;
            any = any || hs.count() > 0;
        }
    }
    EXPECT_TRUE(any);
}

TEST(FaultCampaign, ManifestCarriesDetectionLatencyHistograms)
{
    fault::CampaignConfig cfg;
    cfg.seed = 7;
    cfg.engines = {"mgmee"};
    const fault::CampaignReport report = fault::runCampaign(cfg);

    obs::Manifest m("campaign_latency_probe");
    report.fillManifest(m);
    const std::string j = m.toJson();
    // Per-(engine, attack class) inject->verdict histograms with the
    // usual percentile fields.
    const auto pos = j.find("\"latency.mgmee.rollback\"");
    ASSERT_NE(std::string::npos, pos) << j;
    EXPECT_NE(std::string::npos, j.find("\"p99\":", pos));
    EXPECT_NE(std::string::npos, j.find("\"latency.mgmee.splice\""));
    // Clean cells never time anything.
    EXPECT_EQ(std::string::npos, j.find("\"latency.mgmee.clean\""));
}

TEST(FaultCampaign, SweepIsDeterministicInSeed)
{
    fault::CampaignConfig cfg;
    cfg.seed = 42;
    cfg.engines = {"mgmee"};
    cfg.classes = {AttackClass::Rollback, AttackClass::Splice};

    const auto a = fault::runCampaign(cfg);
    const auto b = fault::runCampaign(cfg);
    ASSERT_EQ(1u, a.engines.size());
    for (unsigned c = 0; c < fault::kAttackClasses; ++c) {
        for (unsigned g = 0; g < fault::kGranularities; ++g) {
            const CellResult &ca = a.engines[0].cells[c][g];
            const CellResult &cb = b.engines[0].cells[c][g];
            EXPECT_EQ(ca.verdict, cb.verdict);
            EXPECT_EQ(ca.injections, cb.injections);
            EXPECT_EQ(ca.detected, cb.detected);
        }
    }
}

} // namespace
} // namespace mgmee
