/**
 * @file
 * Unit tests for the access tracker and Algorithm 1 (Sec. 4.4).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/access_tracker.hh"

namespace mgmee {
namespace {

using BitVector = AccessTracker::BitVector;

TEST(DetectGranularityTest, EmptyVectorIsAllFine)
{
    BitVector bits{};
    EXPECT_EQ(kAllFine, detectGranularity(bits));
}

TEST(DetectGranularityTest, FullVectorIsAllStream)
{
    BitVector bits;
    bits.fill(~0ull);
    EXPECT_EQ(kAllStream, detectGranularity(bits));
}

TEST(DetectGranularityTest, SingleFullPartition)
{
    // Partition 0 = access bits 0..7 of word 0.
    BitVector bits{};
    bits[0] = 0xff;
    EXPECT_EQ(StreamPart{1}, detectGranularity(bits));

    // Partition 9 = bits 8..15 of word 1.
    BitVector bits2{};
    bits2[1] = 0xffull << 8;
    EXPECT_EQ(StreamPart{1} << 9, detectGranularity(bits2));
}

TEST(DetectGranularityTest, SevenBitsAreNotAStream)
{
    BitVector bits{};
    bits[0] = 0x7f;  // 7 of 8 cachelines
    EXPECT_EQ(kAllFine, detectGranularity(bits));
}

TEST(DetectGranularityTest, MixedPattern)
{
    BitVector bits{};
    bits[0] = 0xff;                 // partition 0 complete
    bits[0] |= 0xffull << 16;       // partition 2 complete
    bits[0] |= 0x0full << 8;        // partition 1 half done
    EXPECT_EQ(StreamPart{0b101}, detectGranularity(bits));
}

class AccessTrackerTest : public ::testing::Test
{
  protected:
    AccessTrackerTest()
    {
        tracker_.setEvictCallback(
            [this](const AccessTracker::Eviction &ev) {
                evictions_.push_back(ev);
            });
    }

    /** Touch all 512 lines of @p chunk at cycle @p now. */
    void
    touchWholeChunk(std::uint64_t chunk, Cycle now)
    {
        for (unsigned l = 0; l < kLinesPerChunk; ++l)
            tracker_.recordAccess(chunk * kChunkBytes +
                                      l * kCachelineBytes,
                                  now);
    }

    AccessTracker tracker_;
    std::vector<AccessTracker::Eviction> evictions_;
};

TEST_F(AccessTrackerTest, FullChunkEvictsByCountWithAllStream)
{
    touchWholeChunk(3, 100);
    ASSERT_EQ(1u, evictions_.size());
    EXPECT_EQ(3u, evictions_[0].chunk);
    EXPECT_EQ(kAllStream, evictions_[0].stream_part);
    EXPECT_EQ(kLinesPerChunk, evictions_[0].touched_lines);
}

TEST_F(AccessTrackerTest, LifetimeExpiryEvicts)
{
    tracker_.recordAccess(0, 0);
    // Next access far in the future expires the first entry.
    tracker_.recordAccess(kChunkBytes, 20000);
    ASSERT_EQ(1u, evictions_.size());
    EXPECT_EQ(0u, evictions_[0].chunk);
    EXPECT_EQ(kAllFine, evictions_[0].stream_part);
    EXPECT_EQ(1u, evictions_[0].touched_lines);
}

TEST_F(AccessTrackerTest, NoEvictionWithinLifetime)
{
    tracker_.recordAccess(0, 0);
    tracker_.recordAccess(64, 1000);
    tracker_.recordAccess(kChunkBytes, 15000);
    EXPECT_TRUE(evictions_.empty());
}

TEST_F(AccessTrackerTest, CapacityEvictsLru)
{
    // Fill the 12 entries with chunks 0..11, then touch chunk 0 so
    // chunk 1 is LRU, then allocate chunk 12.
    for (std::uint64_t c = 0; c < 12; ++c)
        tracker_.recordAccess(c * kChunkBytes, 10 + c);
    tracker_.recordAccess(0, 30);
    tracker_.recordAccess(12 * kChunkBytes, 31);
    ASSERT_EQ(1u, evictions_.size());
    EXPECT_EQ(1u, evictions_[0].chunk);
}

TEST_F(AccessTrackerTest, StreamPartitionDetectedOnEviction)
{
    // Stream partition 4 of chunk 7 (lines 32..39), plus a stray line.
    for (unsigned l = 32; l < 40; ++l)
        tracker_.recordAccess(7 * kChunkBytes + l * kCachelineBytes, 5);
    tracker_.recordAccess(7 * kChunkBytes, 6);
    tracker_.flush();
    ASSERT_EQ(1u, evictions_.size());
    EXPECT_EQ(StreamPart{1} << 4, evictions_[0].stream_part);
    EXPECT_EQ(9u, evictions_[0].touched_lines);
}

TEST_F(AccessTrackerTest, FlushEvictsEverything)
{
    tracker_.recordAccess(0, 0);
    tracker_.recordAccess(kChunkBytes, 1);
    tracker_.flush();
    EXPECT_EQ(2u, evictions_.size());
    EXPECT_EQ(2u, tracker_.evictions());
}

TEST_F(AccessTrackerTest, HardwareBudgetMatchesPaper)
{
    // Sec. 4.5: one entry is 512 access bits + 49 tag bits = 561 bits;
    // 12 entries = 842B of on-chip storage (rounded down in the paper).
    EXPECT_EQ(561u, AccessTracker::entryBits());
    EXPECT_EQ(841u, 12 * AccessTracker::entryBits() / 8);
}

TEST_F(AccessTrackerTest, RepeatedLineCountsTowardEvictionThreshold)
{
    // 512 accesses to the same line still trip the count threshold --
    // the paper evicts on access count, not unique lines.
    for (unsigned i = 0; i < kLinesPerChunk; ++i)
        tracker_.recordAccess(64, 3);
    ASSERT_EQ(1u, evictions_.size());
    EXPECT_EQ(1u, evictions_[0].touched_lines);
    EXPECT_EQ(kAllFine, evictions_[0].stream_part);
}

} // namespace
} // namespace mgmee
