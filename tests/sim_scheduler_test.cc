/**
 * @file
 * Tests for the sharded conservative-quantum scheduler: per-shard
 * (tick, seq) ordering, the stable cross-shard tie-break, quantum-
 * boundary delivery, the same-shard fast path, and drain-on-exit --
 * including that multi-thread execution reproduces the single-thread
 * event order exactly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sim/scheduler.hh"

namespace mgmee::sim {
namespace {

SchedulerConfig
config(unsigned shards, unsigned threads, Cycle quantum)
{
    SchedulerConfig cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.quantum = quantum;
    return cfg;
}

TEST(SchedulerTest, SingleShardDispatchesInTimeOrder)
{
    Scheduler sched(config(1, 1, 64));
    std::vector<int> order;
    sched.schedule(0, 30, [&] { order.push_back(3); });
    sched.schedule(0, 10, [&] { order.push_back(1); });
    sched.schedule(0, 20, [&] { order.push_back(2); });
    sched.run();
    EXPECT_EQ((std::vector<int>{1, 2, 3}), order);
    EXPECT_EQ(3u, sched.dispatched());
}

TEST(SchedulerTest, SameTickIsInsertionOrder)
{
    Scheduler sched(config(1, 1, 64));
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sched.schedule(0, 7, [&order, i] { order.push_back(i); });
    sched.run();
    EXPECT_EQ((std::vector<int>{0, 1, 2, 3, 4}), order);
}

TEST(SchedulerTest, CrossShardDeliversAtQuantumBoundary)
{
    Scheduler sched(config(2, 1, 100));
    std::vector<Cycle> deliveries;
    sched.schedule(0, 10, [&] {
        // Created in quantum [0, 100): even though it asks for tick
        // 20, it cannot land before the boundary.
        sched.scheduleCross(1, 20, [&] {
            deliveries.push_back(sched.now());
        });
        // A request beyond the boundary keeps its own tick.
        sched.scheduleCross(1, 250, [&] {
            deliveries.push_back(sched.now());
        });
    });
    sched.run();
    EXPECT_EQ((std::vector<Cycle>{100, 250}), deliveries);
    EXPECT_EQ(2u, sched.crossDelivered());
}

TEST(SchedulerTest, SameShardCrossIsNotQuantised)
{
    Scheduler sched(config(2, 1, 100));
    std::vector<Cycle> deliveries;
    sched.schedule(0, 10, [&] {
        // Destination == executing shard: exact delivery, same
        // quantum.
        sched.scheduleCross(0, 20, [&] {
            deliveries.push_back(sched.now());
        });
    });
    sched.run();
    EXPECT_EQ((std::vector<Cycle>{20}), deliveries);
    EXPECT_EQ(0u, sched.crossDelivered());
}

TEST(SchedulerTest, CrossShardTieBreakIsSourceOrder)
{
    // Two source shards race events onto shard 2 for the same tick;
    // delivery must merge in (source shard, creation order), which
    // the destination seq counter then preserves.
    Scheduler sched(config(3, 1, 100));
    std::vector<std::string> order;
    sched.schedule(1, 5, [&] {
        sched.scheduleCross(2, 0, [&] { order.push_back("b0"); });
        sched.scheduleCross(2, 0, [&] { order.push_back("b1"); });
    });
    sched.schedule(0, 10, [&] {
        sched.scheduleCross(2, 0, [&] { order.push_back("a0"); });
    });
    sched.run();
    EXPECT_EQ((std::vector<std::string>{"a0", "b0", "b1"}), order);
}

TEST(SchedulerTest, BarrierHookSeesBoundariesAndAdmitsWork)
{
    Scheduler sched(config(2, 1, 50));
    std::vector<Cycle> boundaries;
    int admitted = 0;
    sched.setBarrierHook([&](Cycle tick) {
        boundaries.push_back(tick);
        // Admit one event per barrier for the first three barriers;
        // the scheduler must keep running until the hook goes quiet.
        if (admitted < 3) {
            sched.scheduleCross(admitted % 2, tick + 10, [] {});
            ++admitted;
        }
    });
    sched.run();
    // Initial barrier at 0, then one boundary per non-empty quantum.
    ASSERT_GE(boundaries.size(), 4u);
    EXPECT_EQ(0u, boundaries.front());
    EXPECT_EQ(3u, sched.dispatched());
    EXPECT_EQ(3, admitted);
}

TEST(SchedulerTest, SkipsEmptyStretchesOfTime)
{
    Scheduler sched(config(1, 1, 16));
    Cycle seen = 0;
    sched.schedule(0, 1'000'000, [&] { seen = sched.now(); });
    sched.run();
    EXPECT_EQ(1'000'000u, seen);
    // One quantum for the lone event, not 62500 empty ones.
    EXPECT_LE(sched.quanta(), 2u);
}

/** Deterministic mixed workload; returns the per-shard event log. */
std::vector<std::vector<std::string>>
runWorkload(unsigned threads)
{
    Scheduler sched(config(4, threads, 64));
    // Per-shard logs: handlers only touch their own shard's log, so
    // logging is race-free even with 4 workers.
    std::vector<std::vector<std::string>> logs(4);
    for (unsigned s = 0; s < 4; ++s) {
        sched.schedule(s, s, [&sched, &logs, s] {
            for (unsigned hop = 0; hop < 6; ++hop) {
                const unsigned dst = (s + hop) % 4;
                sched.scheduleCross(
                    dst, sched.now() + 10 * hop,
                    [&sched, &logs, dst, s, hop] {
                        logs[dst].push_back(
                            std::to_string(sched.now()) + ":" +
                            std::to_string(s) + "->" +
                            std::to_string(dst) + "#" +
                            std::to_string(hop));
                    });
            }
        });
    }
    sched.run();
    return logs;
}

TEST(SchedulerTest, MultiThreadMatchesSingleThreadOrder)
{
    const auto serial = runWorkload(1);
    const auto parallel = runWorkload(4);
    EXPECT_EQ(serial, parallel);
}

TEST(SchedulerTest, DrainsOnExitWithWorkerThreads)
{
    // Construct, run a little work, destroy: the worker pool must
    // join cleanly (no hang, no touch of freed state).
    for (int round = 0; round < 3; ++round) {
        Scheduler sched(config(4, 4, 32));
        std::atomic<int> fired{0};
        for (unsigned s = 0; s < 4; ++s)
            sched.schedule(s, 10 * s, [&fired] {
                fired.fetch_add(1, std::memory_order_relaxed);
            });
        sched.run();
        EXPECT_EQ(4, fired.load());
    }
}

TEST(SchedulerTest, RunWithNoEventsIsANoOp)
{
    Scheduler sched(config(2, 2, 64));
    sched.run();
    EXPECT_EQ(0u, sched.dispatched());
    EXPECT_EQ(0u, sched.quanta());
}

} // namespace
} // namespace mgmee::sim
