/**
 * @file
 * Exhaustive pairwise granularity-transition property test: for a
 * structured set of stream-partition maps, every ordered pair
 * (from -> to) must preserve data, keep counters monotone, and keep
 * integrity checking sound.  This sweeps promotion, demotion and
 * mixed reconfigurations the directed tests cannot enumerate.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
transitionKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i * 41 + 13);
    keys.mac = {0x1212121234343434ULL, 0x5656565678787878ULL};
    return keys;
}

/** Structured catalogue of maps covering every granularity class. */
std::vector<StreamPart>
mapCatalogue()
{
    return {
        kAllFine,
        kAllStream,
        StreamPart{0b1},                    // one 512B partition
        StreamPart{0b10110},                // scattered 512B
        subchunkMask(0),                    // one 4KB group
        subchunkMask(3) | subchunkMask(7),  // two 4KB groups
        subchunkMask(0) | (StreamPart{1} << 20),  // 4KB + 512B
        0x00000000ffffffffull,              // half the chunk coarse
        0xaaaaaaaaaaaaaaaaull,              // alternating partitions
        subchunkMask(0) | subchunkMask(1) | subchunkMask(2) |
            subchunkMask(3) | subchunkMask(4) | subchunkMask(5) |
            subchunkMask(6),                // 7 of 8 groups (not 32KB)
    };
}

class TransitionPairTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(TransitionPairTest, DataSurvivesAndStaysProtected)
{
    const auto catalogue = mapCatalogue();
    const StreamPart from = catalogue[GetParam().first];
    const StreamPart to = catalogue[GetParam().second];

    SecureMemory mem(4 * kChunkBytes, transitionKeys());
    std::vector<std::uint8_t> data(kChunkBytes);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 89 + GetParam().first);

    ASSERT_EQ(SecureMemory::Status::Ok, mem.write(0, data));
    mem.applyStreamPart(0, from);

    // Touch the data in 'from' state (mixed reads and a write).
    std::vector<std::uint8_t> out(kChunkBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(0, out));
    ASSERT_EQ(data, out);
    const auto patch = std::vector<std::uint8_t>(256, 0x5a);
    ASSERT_EQ(SecureMemory::Status::Ok,
              mem.write(10 * kPartitionBytes, patch));
    std::copy(patch.begin(), patch.end(),
              data.begin() + 10 * kPartitionBytes);

    const std::uint64_t ctr_before = mem.effectiveCounter(0);

    // The transition under test.
    mem.applyStreamPart(0, to);
    EXPECT_EQ(to, mem.streamPart(0));

    // Data intact.
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(0, out));
    EXPECT_EQ(data, out);

    // Counter monotonicity: the effective counter of any line never
    // regresses below a value it already used for the same address.
    // (Promotions use max(children)+1; demotions inherit the parent.)
    EXPECT_GE(mem.effectiveCounter(0) + (from == to ? 1 : 0),
              ctr_before);

    // Still protected: tamper and detect.
    mem.corruptData(5 * kCachelineBytes, 3);
    EXPECT_EQ(SecureMemory::Status::MacMismatch,
              mem.read(5 * kCachelineBytes, out.data()
                           ? std::span<std::uint8_t>(out.data(), 64)
                           : std::span<std::uint8_t>{}));

    // And writable again after repair.  A partial write into the
    // corrupted unit correctly refuses (its read-modify-write cannot
    // verify), so the repair rewrites the whole containing unit.
    const Granularity g = mem.granularityAt(5 * kCachelineBytes);
    const Addr ubase = unitBase(5 * kCachelineBytes, g);
    EXPECT_NE(SecureMemory::Status::Ok,
              g == Granularity::Line64B
                  ? SecureMemory::Status::MacMismatch
                  : mem.write(5 * kCachelineBytes,
                              std::vector<std::uint8_t>(32, 0x77)));
    ASSERT_EQ(SecureMemory::Status::Ok,
              mem.write(ubase, std::vector<std::uint8_t>(
                                   granularityBytes(g), 0x77)));
    std::vector<std::uint8_t> fixed(granularityBytes(g));
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(ubase, fixed));
    EXPECT_EQ(0x77, fixed[0]);
}

std::vector<std::pair<int, int>>
allPairs()
{
    std::vector<std::pair<int, int>> pairs;
    const int n = static_cast<int>(mapCatalogue().size());
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            pairs.emplace_back(i, j);
    return pairs;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, TransitionPairTest, ::testing::ValuesIn(allPairs()),
    [](const ::testing::TestParamInfo<std::pair<int, int>> &info) {
        return "from" + std::to_string(info.param.first) + "_to" +
               std::to_string(info.param.second);
    });

} // namespace
} // namespace mgmee
