/**
 * @file
 * Unit tests for protection domains: routing, cross-domain isolation,
 * splicing detection across keys, independent rekeying, and domain
 * destruction.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mee/domain.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
domainKeys(std::uint8_t tag)
{
    SecureMemory::Keys k;
    for (unsigned i = 0; i < 16; ++i)
        k.aes[i] = static_cast<std::uint8_t>(tag * 97 + i);
    k.mac = {std::uint64_t{tag} * 0x0101010101010101ULL,
             ~(std::uint64_t{tag} * 0x1010101010101010ULL)};
    return k;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

class DomainTest : public ::testing::Test
{
  protected:
    DomainTest()
    {
        cpu_ = mgr_.addDomain("cpu-tee", 0, 2 * kChunkBytes,
                              domainKeys(1));
        npu_ = mgr_.addDomain("npu-tee", 4 * kChunkBytes,
                              2 * kChunkBytes, domainKeys(2));
    }

    SecureDomainManager mgr_;
    std::size_t cpu_ = 0;
    std::size_t npu_ = 0;
};

TEST_F(DomainTest, RoutingAndRoundTrips)
{
    const auto a = pattern(256, 1);
    const auto b = pattern(256, 2);
    ASSERT_EQ(SecureMemory::Status::Ok, mgr_.write(0x100, a));
    ASSERT_EQ(SecureMemory::Status::Ok,
              mgr_.write(4 * kChunkBytes + 0x100, b));

    std::vector<std::uint8_t> out(256);
    ASSERT_EQ(SecureMemory::Status::Ok, mgr_.read(0x100, out));
    EXPECT_EQ(a, out);
    ASSERT_EQ(SecureMemory::Status::Ok,
              mgr_.read(4 * kChunkBytes + 0x100, out));
    EXPECT_EQ(b, out);

    EXPECT_EQ(&mgr_.memory(cpu_), mgr_.domainOf(0x100));
    EXPECT_EQ(&mgr_.memory(npu_),
              mgr_.domainOf(4 * kChunkBytes + 0x100));
    EXPECT_EQ(nullptr, mgr_.domainOf(3 * kChunkBytes));
}

TEST_F(DomainTest, CrossDomainSplicingDetected)
{
    // Identical plaintext at identical domain-relative offsets:
    // splicing the NPU domain's off-chip state into the CPU domain
    // must fail, because the keys differ.
    const auto secret = pattern(kCachelineBytes, 5);
    ASSERT_EQ(SecureMemory::Status::Ok, mgr_.write(0x40, secret));
    ASSERT_EQ(SecureMemory::Status::Ok,
              mgr_.write(4 * kChunkBytes + 0x40, secret));

    const auto foreign = mgr_.memory(npu_).captureForReplay(0x40);
    mgr_.memory(cpu_).replay(foreign);

    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mgr_.read(0x40, out));
}

TEST_F(DomainTest, SamePlaintextDifferentCiphertext)
{
    // The visible symptom of per-domain keys: the same plaintext at
    // the same relative address decrypts fine in both domains yet the
    // foreign snapshot never matches (previous test); additionally a
    // domain-A snapshot replayed into domain A verifies.
    const auto secret = pattern(kCachelineBytes, 9);
    ASSERT_EQ(SecureMemory::Status::Ok, mgr_.write(0x80, secret));
    const auto own = mgr_.memory(cpu_).captureForReplay(0x80);
    mgr_.memory(cpu_).replay(own);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::Ok, mgr_.read(0x80, out));
    EXPECT_EQ(secret, out);
}

TEST_F(DomainTest, IndependentRekey)
{
    const auto a = pattern(128, 3);
    const auto b = pattern(128, 4);
    mgr_.write(0, a);
    mgr_.write(4 * kChunkBytes, b);

    mgr_.memory(npu_).rekey(domainKeys(7));

    std::vector<std::uint8_t> out(128);
    ASSERT_EQ(SecureMemory::Status::Ok, mgr_.read(0, out));
    EXPECT_EQ(a, out);
    ASSERT_EQ(SecureMemory::Status::Ok,
              mgr_.read(4 * kChunkBytes, out));
    EXPECT_EQ(b, out);
}

TEST_F(DomainTest, DestroyDomainFreesWindow)
{
    mgr_.write(0, pattern(64, 1));
    mgr_.destroyDomain(cpu_);
    EXPECT_EQ(nullptr, mgr_.domainOf(0));

    // Re-register the window with fresh keys: pristine state.
    mgr_.addDomain("cpu-tee-2", 0, 2 * kChunkBytes, domainKeys(9));
    std::vector<std::uint8_t> out(64, 0xff);
    ASSERT_EQ(SecureMemory::Status::Ok, mgr_.read(0, out));
    for (auto byte : out)
        EXPECT_EQ(0u, byte);  // old secrets are gone
}

TEST_F(DomainTest, OverlapAndCrossingAreFatal)
{
    EXPECT_EXIT(mgr_.addDomain("bad", kChunkBytes, kChunkBytes,
                               domainKeys(3)),
                ::testing::ExitedWithCode(1), "overlaps");
    std::vector<std::uint8_t> buf(64);
    EXPECT_EXIT(mgr_.read(3 * kChunkBytes, buf),
                ::testing::ExitedWithCode(1), "crosses or misses");
    EXPECT_EXIT(mgr_.addDomain("unaligned", 8 * kChunkBytes + 64,
                               kChunkBytes, domainKeys(4)),
                ::testing::ExitedWithCode(1), "aligned");
}

} // namespace
} // namespace mgmee
