/**
 * @file
 * Unit tests for the granularity-aware address computation
 * (Sec. 4.3, Eqs. 1-4, Fig. 9 compaction).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "core/address_computer.hh"

namespace mgmee {
namespace {

class AddressComputerTest : public ::testing::Test
{
  protected:
    MetadataLayout layout_{64 * kChunkBytes};
    AddressComputer ac_{layout_};
};

TEST_F(AddressComputerTest, MacsPerChunkAtUniformGranularities)
{
    EXPECT_EQ(512u, AddressComputer::macsPerChunk(kAllFine));
    EXPECT_EQ(1u, AddressComputer::macsPerChunk(kAllStream));
    // All 64 partitions stream but grouped per 4KB: 8 merged MACs --
    // only possible map for "every subchunk coarse" short of 32KB is
    // kAllStream, so test one full subchunk instead.
    EXPECT_EQ(1u + 56u * 8u,
              AddressComputer::macsPerChunk(subchunkMask(0)));
    // One 512B stream partition: 1 + 63*8.
    EXPECT_EQ(1u + 63u * 8u,
              AddressComputer::macsPerChunk(StreamPart{1}));
}

TEST_F(AddressComputerTest, Fig9CompactionExample)
{
    // Fig. 9: MACs of blocks 0-7 and 8-15 merge into two coarse MACs
    // that must land at compacted positions 0 and 1 (not 0 and 8).
    const StreamPart sp = 0b11;  // partitions 0 and 1 stream
    EXPECT_EQ(0u, AddressComputer::intraChunkMacIndex(0, sp));
    EXPECT_EQ(1u, AddressComputer::intraChunkMacIndex(
                      kPartitionBytes, sp));
    // The next (fine) partition's first line follows at position 2.
    EXPECT_EQ(2u, AddressComputer::intraChunkMacIndex(
                      2 * kPartitionBytes, sp));
    EXPECT_EQ(3u, AddressComputer::intraChunkMacIndex(
                      2 * kPartitionBytes + kCachelineBytes, sp));
}

TEST_F(AddressComputerTest, FineMapMatchesLineIndex)
{
    for (unsigned l : {0u, 1u, 63u, 64u, 511u}) {
        EXPECT_EQ(l, AddressComputer::intraChunkMacIndex(
                         l * kCachelineBytes, kAllFine));
    }
}

TEST_F(AddressComputerTest, WholeChunkHasSingleMacAtZero)
{
    for (unsigned l : {0u, 100u, 511u}) {
        EXPECT_EQ(0u, AddressComputer::intraChunkMacIndex(
                          l * kCachelineBytes, kAllStream));
    }
}

TEST_F(AddressComputerTest, CrossChunkBaseAssumesFinestPredecessors)
{
    // Sec. 4.3: earlier chunks are budgeted at 512 MACs regardless of
    // their actual granularity.
    const StreamPart sp = kAllStream;
    const MacLoc loc = ac_.macLoc(5 * kChunkBytes, sp);
    EXPECT_EQ(5u * 512u, loc.index);
    EXPECT_EQ(layout_.macLineAddr(5 * 512), loc.line_addr);
}

TEST_F(AddressComputerTest, CounterLocFollowsEq2to4)
{
    const Addr a = 3 * kChunkBytes + 2 * kSubchunkBytes +
                   5 * kPartitionBytes + 3 * kCachelineBytes;
    const std::uint64_t leaf = lineIndex(a);

    const CounterLoc fine = ac_.counterLocAt(a, Granularity::Line64B);
    EXPECT_EQ(0u, fine.level);
    EXPECT_EQ(leaf, fine.index);

    const CounterLoc part = ac_.counterLocAt(a, Granularity::Part512B);
    EXPECT_EQ(1u, part.level);
    EXPECT_EQ(leaf / 8, part.index);

    const CounterLoc sub = ac_.counterLocAt(a, Granularity::Sub4KB);
    EXPECT_EQ(2u, sub.level);
    EXPECT_EQ(leaf / 64, sub.index);

    const CounterLoc chunk = ac_.counterLocAt(a,
                                              Granularity::Chunk32KB);
    EXPECT_EQ(3u, chunk.level);
    EXPECT_EQ(leaf / 512, chunk.index);
    EXPECT_EQ(3u, chunk.index);  // chunk id 3
}

TEST_F(AddressComputerTest, CounterLineSharedAcrossUnitLines)
{
    // Every line of a 512B unit resolves to the same promoted counter.
    const Addr base = 7 * kPartitionBytes;
    const StreamPart sp = StreamPart{1} << 7;
    const CounterLoc ref = ac_.counterLoc(base, sp);
    for (unsigned l = 1; l < 8; ++l) {
        const CounterLoc loc =
            ac_.counterLoc(base + l * kCachelineBytes, sp);
        EXPECT_EQ(ref.level, loc.level);
        EXPECT_EQ(ref.index, loc.index);
        EXPECT_EQ(ref.line_addr, loc.line_addr);
    }
}

TEST_F(AddressComputerTest, OnChipFlagForTinyRegions)
{
    // A single-chunk region has only two in-memory levels; a 32KB
    // promotion lands in trusted storage.
    MetadataLayout tiny(kChunkBytes);
    AddressComputer ac(tiny);
    EXPECT_FALSE(ac.counterLocAt(0, Granularity::Part512B).on_chip);
    EXPECT_TRUE(ac.counterLocAt(0, Granularity::Chunk32KB).on_chip);
    EXPECT_FALSE(
        ac_.counterLocAt(0, Granularity::Chunk32KB).on_chip);
}

/**
 * Property: under any stream-partition map, the compacted MAC indices
 * of all protection units are dense (0..macsPerChunk-1), unique, and
 * ordered by data address.
 */
class MacCompactionPropertyTest
    : public ::testing::TestWithParam<StreamPart>
{
};

TEST_P(MacCompactionPropertyTest, DenseUniqueOrdered)
{
    const StreamPart sp = GetParam();
    std::set<std::uint64_t> seen;
    std::uint64_t prev = 0;
    bool first = true;

    unsigned part = 0;
    while (part < kPartitionsPerChunk) {
        const Addr pbase = part * kPartitionBytes;
        const Granularity g = granularityOfPartition(sp, part);
        if (g == Granularity::Line64B) {
            for (unsigned l = 0; l < 8; ++l) {
                const auto idx = AddressComputer::intraChunkMacIndex(
                    pbase + l * kCachelineBytes, sp);
                EXPECT_TRUE(seen.insert(idx).second);
                EXPECT_TRUE(first || idx > prev);
                prev = idx;
                first = false;
            }
            ++part;
        } else {
            const auto idx = AddressComputer::intraChunkMacIndex(
                unitBase(pbase, g), sp);
            EXPECT_TRUE(seen.insert(idx).second);
            EXPECT_TRUE(first || idx > prev);
            prev = idx;
            first = false;
            part += unitLines(g) / kLinesPerPartition;
        }
    }
    EXPECT_EQ(AddressComputer::macsPerChunk(sp), seen.size());
    EXPECT_EQ(0u, *seen.begin());
    EXPECT_EQ(seen.size() - 1, *seen.rbegin());
}

std::vector<StreamPart>
patternCatalogue()
{
    std::vector<StreamPart> maps = {
        kAllFine, kAllStream, StreamPart{0b11}, subchunkMask(0),
        subchunkMask(5) | 0b1, 0x00ff00ff00ff00ffull,
        0xaaaaaaaaaaaaaaaaull, 0xfedcba9876543210ull,
        subchunkMask(0) | subchunkMask(7) | (StreamPart{1} << 20)};
    // Plus pseudo-random maps: the invariant must hold for any map.
    Rng rng(0xC0FFEE);
    for (int i = 0; i < 40; ++i)
        maps.push_back(rng.next() & rng.next());
    for (int i = 0; i < 10; ++i)
        maps.push_back(rng.next() | rng.next());
    return maps;
}

INSTANTIATE_TEST_SUITE_P(Patterns, MacCompactionPropertyTest,
                         ::testing::ValuesIn(patternCatalogue()));

} // namespace
} // namespace mgmee
