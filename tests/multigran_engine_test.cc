/**
 * @file
 * Unit tests for the multi-granular timing engine: detection-driven
 * promotion, metadata savings on streams, misprediction overfetch,
 * switch-cost classification, and the scheme-flag ablations.
 */

#include <gtest/gtest.h>

#include "baselines/adaptive_mac_engine.hh"
#include "baselines/common_counters_engine.hh"
#include "baselines/static_best.hh"
#include "core/multigran_engine.hh"
#include "mee/conventional_engine.hh"

namespace mgmee {
namespace {

constexpr std::size_t kRegion = 256 * kChunkBytes;

MemRequest
req(Addr addr, std::uint32_t bytes, Cycle issue, bool write = false,
    unsigned device = 0)
{
    MemRequest r;
    r.addr = addr;
    r.bytes = bytes;
    r.is_write = write;
    r.issue = issue;
    r.device = device;
    return r;
}

/** Stream every line of @p chunk once, returning the last cycle. */
Cycle
streamChunk(TimingEngine &eng, MemCtrl &mem, std::uint64_t chunk,
            Cycle start)
{
    Cycle now = start;
    for (unsigned l = 0; l < kLinesPerChunk; ++l) {
        eng.access(req(chunk * kChunkBytes + l * kCachelineBytes,
                       kCachelineBytes, now),
                   mem);
        now += 2;
    }
    return now;
}

TEST(MultiGranEngineTest, StreamingPromotesChunk)
{
    MultiGranEngineConfig cfg;
    MultiGranEngine eng("test", kRegion, cfg);
    MemCtrl mem;

    Cycle now = streamChunk(eng, mem, 0, 0);
    // Detection fired (count threshold) and set the pending map; the
    // current map is untouched until partitions are re-accessed
    // (lazy switching).
    EXPECT_EQ(kAllStream, eng.table().next(0));
    EXPECT_EQ(kAllFine, eng.table().current(0));
    // A second pass resolves every partition: full 32KB promotion.
    streamChunk(eng, mem, 0, now + 100);
    EXPECT_EQ(kAllStream, eng.table().current(0));
    EXPECT_EQ(Granularity::Chunk32KB,
              granularityOfPartition(eng.table().current(0), 0));
    EXPECT_GE(eng.stats().get("switches"), 1u);
}

TEST(MultiGranEngineTest, SecondEpochUsesLessMetadataTraffic)
{
    MultiGranEngineConfig cfg;
    MultiGranEngine ours("ours", kRegion, cfg);
    ConventionalEngine conv(kRegion, TimingConfig{});
    MemCtrl mem_ours, mem_conv;

    // Stream enough chunks that the metadata working set exceeds the
    // 8KB metadata cache (one chunk alone fits entirely).
    constexpr unsigned kChunks = 16;
    auto epoch = [&](TimingEngine &eng, MemCtrl &mem, Cycle start) {
        Cycle t = start;
        for (unsigned c = 0; c < kChunks; ++c)
            t = streamChunk(eng, mem, c, t) + 100;
        return t;
    };

    // Epoch 1: train.  Epoch 2+3: measure.
    Cycle t1 = epoch(ours, mem_ours, 0);
    epoch(conv, mem_conv, 0);
    const auto ours_epoch1 = mem_ours.totalBytes();
    const auto conv_epoch1 = mem_conv.totalBytes();

    t1 += 20000;  // let the unit buffer expire between epochs
    Cycle t2 = epoch(ours, mem_ours, t1);
    epoch(ours, mem_ours, t2 + 20000);
    epoch(conv, mem_conv, t1);
    epoch(conv, mem_conv, t2 + 20000);

    const auto ours_later = mem_ours.totalBytes() - ours_epoch1;
    const auto conv_later = mem_conv.totalBytes() - conv_epoch1;
    // Promoted epochs move close to data-only traffic; conventional
    // keeps paying per-partition metadata.
    EXPECT_LT(ours_later, conv_later);
}

TEST(MultiGranEngineTest, MispredictionPaysOverfetchOnWrittenUnit)
{
    MultiGranEngineConfig cfg;
    MultiGranEngine eng("test", kRegion, cfg);
    MemCtrl mem;

    Cycle now = streamChunk(eng, mem, 0, 0);
    now = streamChunk(eng, mem, 0, now + 30000);  // resolve all bits
    ASSERT_EQ(kAllStream, eng.table().current(0));
    // Dirty the unit so the read-only fine-MAC shortcut is off.
    eng.access(req(0, 64, now + 100, true), mem);
    const auto before = mem.totalBytes();

    // A sparse read far from the last touch, outside the validation
    // window: the merged MAC forces a whole-unit bulk fetch.
    now += 60000;
    eng.access(req(16 * kCachelineBytes, 64, now), mem);
    EXPECT_GE(mem.totalBytes() - before, kChunkBytes);
    EXPECT_GE(eng.stats().get("mispredict_bulks"), 1u);
}

TEST(MultiGranEngineTest, ReadOnlyUnitsVerifySparseReadsViaFineMacs)
{
    // Table 2: "Coarse->Fine R/O: Negligible (fetch fine MACs)" --
    // a never-written coarse unit serves sparse reads without the
    // whole-unit transfer.
    MultiGranEngineConfig cfg;
    MultiGranEngine eng("test", kRegion, cfg);
    MemCtrl mem;

    Cycle now = streamChunk(eng, mem, 0, 0);
    now = streamChunk(eng, mem, 0, now + 30000);
    ASSERT_EQ(kAllStream, eng.table().current(0));
    const auto before = mem.totalBytes();

    now += 60000;
    eng.access(req(16 * kCachelineBytes, 64, now), mem);
    EXPECT_LT(mem.totalBytes() - before, 4 * kCachelineBytes);
    EXPECT_GE(eng.stats().get("ro_fine_verifies"), 1u);
}

TEST(MultiGranEngineTest, SwitchStatsClassifyScaleUpReads)
{
    MultiGranEngineConfig cfg;
    MultiGranEngine eng("test", kRegion, cfg);
    MemCtrl mem;

    Cycle now = streamChunk(eng, mem, 0, 0);
    now += 1000;
    eng.access(req(0, 64, now), mem);  // read-after-read scale-up
    EXPECT_GE(eng.switchModel().stats().get("ctr.fine_to_coarse_rar"),
              1u);
}

TEST(MultiGranEngineTest, StaticModeUsesForcedGranularity)
{
    std::array<Granularity, 8> gran{};
    gran.fill(Granularity::Line64B);
    gran[2] = Granularity::Chunk32KB;
    auto eng = makeStaticEngine(kRegion, TimingConfig{}, gran);
    MemCtrl mem;

    // Device 2 reads one line: coarse MAC forces a 32KB bulk fetch.
    eng->access(req(0, 64, 0, false, 2), mem);
    EXPECT_GE(mem.totalBytes(), kChunkBytes);

    // Device 0 reads one line: fine path.
    MemCtrl mem2;
    eng->access(req(kChunkBytes, 64, 0, false, 0), mem2);
    EXPECT_LT(mem2.totalBytes(), 16 * kCachelineBytes);
}

TEST(MultiGranEngineTest, CtrOnlyModeKeepsFineMacs)
{
    MultiGranEngineConfig cfg;
    cfg.coarse_macs = false;
    MultiGranEngine eng("ctr-only", kRegion, cfg);
    MemCtrl mem;

    Cycle now = streamChunk(eng, mem, 0, 0);
    now += 30000;
    eng.access(req(0, 64, now), mem);  // switch applied
    const auto before = mem.totalBytes();
    now += 30000;
    // Sparse read: with fine MACs there is NO bulk overfetch.
    eng.access(req(16 * kCachelineBytes, 64, now), mem);
    EXPECT_LT(mem.totalBytes() - before, 16 * kCachelineBytes);
    EXPECT_EQ(0u, eng.stats().get("bulk_fetches"));
}

TEST(MultiGranEngineTest, DualOnlyCapsDetection)
{
    MultiGranEngineConfig cfg;
    cfg.dual_only = Granularity::Sub4KB;
    MultiGranEngine eng("dual4k", kRegion, cfg);
    MemCtrl mem;

    Cycle now = streamChunk(eng, mem, 0, 0);
    // Clamped to 4KB even though the whole chunk streamed.
    EXPECT_NE(kAllStream, eng.table().next(0));
    // Resolve the first 4KB group by touching its 8 partitions.
    for (unsigned p = 0; p < 8; ++p)
        eng.access(req(p * kPartitionBytes, 64, now + 1000 + p), mem);
    EXPECT_EQ(Granularity::Sub4KB,
              granularityOfPartition(eng.table().current(0), 0));
}

TEST(AdaptiveEngineTest, NoBulkOverfetchThanksToDualStorage)
{
    auto eng = makeAdaptiveEngine(kRegion, TimingConfig{});
    MemCtrl mem;
    Cycle now = streamChunk(*eng, mem, 0, 0);
    now += 30000;
    eng->access(req(0, 64, now), mem);
    const auto before = mem.totalBytes();
    now += 30000;
    eng->access(req(16 * kCachelineBytes, 64, now), mem);
    // Fine MACs exist alongside: a sparse read stays line-sized.
    EXPECT_LT(mem.totalBytes() - before, 16 * kCachelineBytes);
}

TEST(AdaptiveEngineTest, WritesUpdateBothMacCopies)
{
    auto eng = makeAdaptiveEngine(kRegion, TimingConfig{});
    MemCtrl mem;
    Cycle now = streamChunk(*eng, mem, 0, 0);
    now = streamChunk(*eng, mem, 0, now + 1000);  // resolve the map
    eng->access(req(0, 64, now + 10, true), mem);
    EXPECT_GE(eng->stats().get("double_mac_updates"), 1u);
}

TEST(CommonCountersTest, ScanPromotesUpToSixteenSegments)
{
    CommonCountersEngine eng(kRegion, TimingConfig{});
    MemCtrl mem;
    Cycle now = 0;
    // Stream 20 chunks; all become candidates.
    for (unsigned c = 0; c < 20; ++c)
        now = streamChunk(eng, mem, c, now) + 100;
    eng.kernelBoundary(now, mem);
    EXPECT_EQ(16u, eng.commonSegments());
    EXPECT_EQ(20u, eng.stats().get("scanned_segments"));
    EXPECT_EQ(4u, eng.stats().get("table_full_rejections"));
}

TEST(CommonCountersTest, CommonSegmentsSkipTreeOnReads)
{
    CommonCountersEngine eng(kRegion, TimingConfig{});
    MemCtrl mem;
    Cycle now = streamChunk(eng, mem, 0, 0);
    eng.kernelBoundary(now, mem);
    ASSERT_EQ(1u, eng.commonSegments());

    const auto before_misses = eng.securityCacheMisses();
    const auto before = mem.totalBytes();
    // Re-read a line far later: only data + MAC should move.
    eng.access(req(0, 64, now + 500000), mem);
    EXPECT_GE(eng.stats().get("common_hits"), 1u);
    EXPECT_LE(mem.totalBytes() - before, 2u * 64u);
    EXPECT_LE(eng.securityCacheMisses() - before_misses, 1u);
}

TEST(CommonCountersTest, PartialWriteDemotesSegment)
{
    CommonCountersEngine eng(kRegion, TimingConfig{});
    MemCtrl mem;
    Cycle now = streamChunk(eng, mem, 0, 0);
    eng.kernelBoundary(now, mem);
    ASSERT_EQ(1u, eng.commonSegments());
    eng.access(req(0, 64, now + 10, true), mem);
    EXPECT_EQ(0u, eng.commonSegments());
    EXPECT_EQ(1u, eng.stats().get("demotions"));
}

} // namespace
} // namespace mgmee
