/**
 * @file
 * The scenario sweeps in bench/bench_util.hh fan out over hardware
 * threads; scenarios are independent, so a parallel sweep must be
 * bit-identical to a forced single-thread run (MGMEE_THREADS=1).
 * This pins that contract so future sweep changes cannot introduce
 * iteration-order or shared-state dependence.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "hetero/run_memo.hh"

namespace mgmee {
namespace {

using bench::SweepStats;

std::vector<Scenario>
smallScenarioSet()
{
    std::vector<Scenario> all = allScenarios();
    // A spread of 4 scenarios keeps the test fast while still
    // exercising the thread fan-out (4 workers on most machines).
    std::vector<Scenario> subset;
    for (std::size_t i = 0; i < 4; ++i)
        subset.push_back(all[i * all.size() / 4]);
    return subset;
}

TEST(SweepDeterminismTest, ParallelMatchesSingleThreadBitExact)
{
    const std::vector<Scenario> scenarios = smallScenarioSet();
    const std::vector<Scheme> schemes = {Scheme::Conventional,
                                         Scheme::Ours};
    constexpr double kScale = 0.05;
    constexpr std::uint64_t kSeed = 1;

    // Parallel run with the default thread count (explicitly clear
    // the knob in case the environment pins it to 1).
    const Config saved = config();
    Config cfg = saved;
    cfg.threads = 0;
    setConfig(cfg);
    const std::vector<SweepStats> par =
        bench::runSweep(scenarios, schemes, kScale, kSeed);

    cfg.threads = 1;
    setConfig(cfg);
    const std::vector<SweepStats> ser =
        bench::runSweep(scenarios, schemes, kScale, kSeed);
    setConfig(saved);

    ASSERT_EQ(par.size(), ser.size());
    for (std::size_t i = 0; i < par.size(); ++i) {
        // Bit-identical, not approximately equal: the sweeps must
        // run the exact same simulations in the exact same way.
        EXPECT_EQ(par[i].exec_norm, ser[i].exec_norm);
        EXPECT_EQ(par[i].traffic_norm, ser[i].traffic_norm);
        EXPECT_EQ(par[i].misses, ser[i].misses);
    }
}

TEST(SweepDeterminismTest, ShardedSweepMatchesSingleThreadBitExact)
{
    const std::vector<Scenario> scenarios = smallScenarioSet();
    const std::vector<Scheme> schemes = {Scheme::Conventional,
                                         Scheme::Ours};
    constexpr double kScale = 0.05;
    constexpr std::uint64_t kSeed = 1;

    // Route runSweep through the sharded scheduler; clear the run
    // memo around each sweep so the second one actually re-simulates
    // instead of answering from the first one's cache.
    const Config saved = config();
    Config cfg = saved;
    cfg.shards = 4;
    cfg.threads = 4;
    setConfig(cfg);
    runMemoClear();
    const std::vector<SweepStats> par =
        bench::runSweep(scenarios, schemes, kScale, kSeed);

    cfg.threads = 1;
    setConfig(cfg);
    runMemoClear();
    const std::vector<SweepStats> ser =
        bench::runSweep(scenarios, schemes, kScale, kSeed);
    setConfig(saved);
    runMemoClear();

    ASSERT_EQ(par.size(), ser.size());
    for (std::size_t i = 0; i < par.size(); ++i) {
        EXPECT_EQ(par[i].exec_norm, ser[i].exec_norm);
        EXPECT_EQ(par[i].traffic_norm, ser[i].traffic_norm);
        EXPECT_EQ(par[i].misses, ser[i].misses);
    }
}

TEST(SweepDeterminismTest, ShardsAndQuantumKnobsParse)
{
    // Knob-level check: each value must survive Config::fromEnv(),
    // so mutate the environment and reload instead of setConfig().
    unsetenv("MGMEE_SHARDS");
    reloadConfigFromEnv();
    EXPECT_EQ(0u, envShards());  // default: sharding off
    setenv("MGMEE_SHARDS", "4", 1);
    reloadConfigFromEnv();
    EXPECT_EQ(4u, envShards());
    setenv("MGMEE_SHARDS", "100000", 1);
    reloadConfigFromEnv();
    EXPECT_EQ(threadCap(), envShards());  // clamped
    unsetenv("MGMEE_SHARDS");

    unsetenv("MGMEE_QUANTUM");
    reloadConfigFromEnv();
    EXPECT_EQ(256u, envQuantum());
    setenv("MGMEE_QUANTUM", "512", 1);
    reloadConfigFromEnv();
    EXPECT_EQ(512u, envQuantum());
    setenv("MGMEE_QUANTUM", "1", 1);
    reloadConfigFromEnv();
    EXPECT_EQ(64u, envQuantum());  // clamped to the floor
    unsetenv("MGMEE_QUANTUM");
    reloadConfigFromEnv();
}

TEST(SweepDeterminismTest, ThreadsKnobParsesAndClamps)
{
    setenv("MGMEE_THREADS", "3", 1);
    reloadConfigFromEnv();
    EXPECT_EQ(3u, bench::envThreads());
    setenv("MGMEE_THREADS", "0", 1);   // invalid -> hardware default
    reloadConfigFromEnv();
    EXPECT_GE(bench::envThreads(), 1u);
    unsetenv("MGMEE_THREADS");
    reloadConfigFromEnv();
    EXPECT_GE(bench::envThreads(), 1u);
}

TEST(SweepDeterminismTest, PercentileSortedMatchesPercentile)
{
    std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(bench::percentile(v, p),
                         bench::percentileSorted(sorted, p));
    EXPECT_DOUBLE_EQ(3.0, bench::percentile(v, 0.5));
    EXPECT_DOUBLE_EQ(1.0, bench::percentile(v, 0.0));
    EXPECT_DOUBLE_EQ(5.0, bench::percentile(v, 1.0));
}

} // namespace
} // namespace mgmee
