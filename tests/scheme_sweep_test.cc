/**
 * @file
 * Parameterized end-to-end checks over every evaluated scheme:
 * determinism, the unsecure floor, traffic accounting sanity, and the
 * paper's headline orderings on representative scenarios.
 */

#include <gtest/gtest.h>

#include "hetero/metrics.hh"

namespace mgmee {
namespace {

constexpr double kScale = 0.25;

class SchemeSweepTest : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(SchemeSweepTest, DeterministicAcrossRuns)
{
    const Scenario sc{"cc1", "xal", "mm", "alex", "dlrm"};
    const RunResult a = runScenario(sc, GetParam(), 3, kScale);
    const RunResult b = runScenario(sc, GetParam(), 3, kScale);
    EXPECT_EQ(a.device_finish, b.device_finish);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.security_misses, b.security_misses);
}

TEST_P(SchemeSweepTest, NeverBeatsUnsecureMeaningfully)
{
    const Scenario sc{"c3", "mcf", "sten", "sfrnn", "sfrnn"};
    const RunResult unsec =
        runScenario(sc, Scheme::Unsecure, 1, kScale);
    const RunResult r = runScenario(sc, GetParam(), 1, kScale);
    EXPECT_GE(normalizedExecTime(r, unsec), 0.995)
        << schemeName(GetParam());
    EXPECT_GE(r.total_bytes, unsec.total_bytes)
        << schemeName(GetParam());
}

TEST_P(SchemeSweepTest, SeedChangesTraceButNotValidity)
{
    const Scenario sc{"f2", "xal", "pr", "ncf", "ncf"};
    const RunResult unsec =
        runScenario(sc, Scheme::Unsecure, 9, kScale);
    const RunResult r = runScenario(sc, GetParam(), 9, kScale);
    ASSERT_EQ(4u, r.device_finish.size());
    for (Cycle f : r.device_finish)
        EXPECT_GT(f, 0u);
    EXPECT_GE(normalizedExecTime(r, unsec), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweepTest,
    ::testing::Values(Scheme::Unsecure, Scheme::Conventional,
                      Scheme::Adaptive, Scheme::CommonCTR,
                      Scheme::MultiCtrOnly, Scheme::Ours,
                      Scheme::OursNoSwitchCost, Scheme::OursDual4K,
                      Scheme::BmfUnused, Scheme::BmfUnusedOurs),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string name = schemeName(info.param);
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(HeadlineOrderingTest, CoarseScenarioLadder)
{
    // Sec. 5.2/5.3 on a coarse scenario: conventional is the most
    // expensive real scheme; multi-granular counters alone recover
    // part of it; adding merged MACs recovers more; the subtree combo
    // is at least as good as Ours.
    const Scenario cc2{"cc2", "ray", "mm", "alex", "alex"};
    const RunResult unsec =
        runScenario(cc2, Scheme::Unsecure, 1, 0.5);
    const double conv = normalizedExecTime(
        runScenario(cc2, Scheme::Conventional, 1, 0.5), unsec);
    const double ctr_only = normalizedExecTime(
        runScenario(cc2, Scheme::MultiCtrOnly, 1, 0.5), unsec);
    const double ours = normalizedExecTime(
        runScenario(cc2, Scheme::Ours, 1, 0.5), unsec);
    const double combo = normalizedExecTime(
        runScenario(cc2, Scheme::BmfUnusedOurs, 1, 0.5), unsec);

    EXPECT_LT(ctr_only, conv);
    EXPECT_LT(ours, ctr_only);
    EXPECT_LT(combo, ours * 1.01);
}

TEST(HeadlineOrderingTest, SecurityMissesShrinkWithGranularity)
{
    const Scenario c1{"c1", "gcc", "sten", "alex", "dlrm"};
    const auto conv = runScenario(c1, Scheme::Conventional, 1, 0.5);
    const auto ctr = runScenario(c1, Scheme::MultiCtrOnly, 1, 0.5);
    const auto ours = runScenario(c1, Scheme::Ours, 1, 0.5);
    EXPECT_LT(ctr.security_misses, conv.security_misses);
    EXPECT_LT(ours.security_misses, ctr.security_misses);
}

TEST(HeadlineOrderingTest, SwitchCostRemovalNeverHurts)
{
    const Scenario c3{"c3", "mcf", "sten", "sfrnn", "sfrnn"};
    const RunResult unsec =
        runScenario(c3, Scheme::Unsecure, 1, 0.5);
    const double ours = normalizedExecTime(
        runScenario(c3, Scheme::Ours, 1, 0.5), unsec);
    const double no_switch = normalizedExecTime(
        runScenario(c3, Scheme::OursNoSwitchCost, 1, 0.5), unsec);
    EXPECT_LE(no_switch, ours * 1.005);
}

} // namespace
} // namespace mgmee
