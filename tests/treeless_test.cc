/**
 * @file
 * Unit tests for the tree-less version-number baseline: free counter
 * side inside the managed domain, conventional fallback outside it,
 * and eviction re-encryption when the version table is undersized.
 */

#include <gtest/gtest.h>

#include "baselines/treeless_engine.hh"

namespace mgmee {
namespace {

constexpr std::size_t kRegion = 64 * kChunkBytes;

MemRequest
req(Addr addr, std::uint32_t bytes, Cycle issue, bool write,
    unsigned device)
{
    MemRequest r;
    r.addr = addr;
    r.bytes = bytes;
    r.is_write = write;
    r.issue = issue;
    r.device = device;
    return r;
}

TEST(TreelessTest, ManagedDeviceSkipsCounterTraffic)
{
    TreelessEngine eng(kRegion, TimingConfig{},
                       {true, false, false, false}, 64);
    MemCtrl mem;
    eng.access(req(0, 64, 0, false, /*device=*/0), mem);
    // Data + MAC line only: no counter bytes at all.
    EXPECT_EQ(0u, mem.bytesBy(Traffic::Counter));
    EXPECT_EQ(2u * 64u, mem.totalBytes());
    EXPECT_GE(eng.versionHits(), 1u);
}

TEST(TreelessTest, UnmanagedDeviceFallsBackToTree)
{
    TreelessEngine eng(kRegion, TimingConfig{},
                       {true, false, false, false}, 64);
    MemCtrl mem;
    eng.access(req(kChunkBytes, 64, 0, false, /*device=*/1), mem);
    EXPECT_GT(mem.bytesBy(Traffic::Counter), 0u);
    EXPECT_GE(eng.stats().get("fallback_spans"), 1u);
}

TEST(TreelessTest, UndersizedTablePaysEvictionReencryption)
{
    // 4-entry table, 6 distinct managed chunks: evictions re-encrypt
    // whole 32KB regions.
    TreelessEngine eng(kRegion, TimingConfig{},
                       {true, true, true, true}, 4);
    MemCtrl mem;
    Cycle now = 0;
    for (unsigned c = 0; c < 6; ++c)
        eng.access(req(c * kChunkBytes, 64, now++, false, 0), mem);
    EXPECT_GE(eng.stats().get("version_evictions"), 2u);
    EXPECT_GE(mem.bytesBy(Traffic::Rmw), 2u * 2u * kChunkBytes);
}

TEST(TreelessTest, LruKeepsHotTensorsResident)
{
    TreelessEngine eng(kRegion, TimingConfig{},
                       {true, true, true, true}, 2);
    MemCtrl mem;
    Cycle now = 0;
    // Chunks 0 and 1 stay hot; chunk 2 passes through once.
    eng.access(req(0, 64, now++, false, 0), mem);
    eng.access(req(kChunkBytes, 64, now++, false, 0), mem);
    eng.access(req(0, 64, now++, false, 0), mem);  // refresh 0
    eng.access(req(2 * kChunkBytes, 64, now++, false, 0), mem);
    // The victim must have been chunk 1 (LRU), not chunk 0.
    const auto evictions_before = eng.stats().get("version_evictions");
    eng.access(req(0, 64, now++, false, 0), mem);  // still resident
    EXPECT_EQ(evictions_before, eng.stats().get("version_evictions"));
}

} // namespace
} // namespace mgmee
