/**
 * @file
 * Tests for the multi-tenant serving plane (src/serve/): wire-frame
 * encode/decode round-trips and defensive rejection, admission
 * control and shedding, per-tenant isolation under fault injection,
 * thread-count determinism of the reply-digest chain, detection
 * latency recording, tenant teardown (including StatRegistry group
 * erasure), and the socket front end.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "obs/manifest.hh"
#include "serve/loadgen.hh"
#include "serve/net.hh"
#include "serve/server.hh"
#include "serve/wire.hh"

namespace mgmee::serve {
namespace {

// ---- wire protocol ------------------------------------------------------

wire::RequestBatch
sampleBatch()
{
    wire::RequestBatch b;
    b.tenant = 3;
    b.id = 0x1122334455667788ULL;
    for (unsigned i = 0; i < 5; ++i) {
        wire::Request r;
        r.op = static_cast<wire::Op>(i);
        r.arg = static_cast<std::uint8_t>(i * 7);
        r.len = kCachelineBytes << i;
        r.addr = i * 4096;
        r.seed = 0xdeadbeef00ULL + i;
        b.requests.push_back(r);
    }
    return b;
}

TEST(ServeWireTest, BatchRoundTrips)
{
    const wire::RequestBatch in = sampleBatch();
    const std::vector<std::uint8_t> bytes = wire::encodeBatch(in);

    wire::Frame frame;
    std::size_t consumed = 0;
    std::string err;
    ASSERT_EQ(wire::decodeFrame(bytes, frame, consumed, err),
              wire::Decode::Ok)
        << err;
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(frame.type, wire::FrameType::Batch);

    wire::RequestBatch out;
    ASSERT_TRUE(wire::parseBatch(frame.payload, out, err)) << err;
    EXPECT_EQ(out.tenant, in.tenant);
    EXPECT_EQ(out.id, in.id);
    ASSERT_EQ(out.requests.size(), in.requests.size());
    for (std::size_t i = 0; i < in.requests.size(); ++i) {
        EXPECT_EQ(out.requests[i].op, in.requests[i].op);
        EXPECT_EQ(out.requests[i].arg, in.requests[i].arg);
        EXPECT_EQ(out.requests[i].len, in.requests[i].len);
        EXPECT_EQ(out.requests[i].addr, in.requests[i].addr);
        EXPECT_EQ(out.requests[i].seed, in.requests[i].seed);
    }
}

TEST(ServeWireTest, ReplyRoundTrips)
{
    wire::BatchReply in;
    in.tenant = 9;
    in.id = 42;
    in.shed = true;
    in.results.push_back({wire::ReqStatus::Ok, 0x1111});
    in.results.push_back({wire::ReqStatus::MacMismatch, 0x2222});

    const std::vector<std::uint8_t> bytes = wire::encodeBatchReply(in);
    wire::Frame frame;
    std::size_t consumed = 0;
    std::string err;
    ASSERT_EQ(wire::decodeFrame(bytes, frame, consumed, err),
              wire::Decode::Ok);
    ASSERT_EQ(frame.type, wire::FrameType::BatchReply);

    wire::BatchReply out;
    ASSERT_TRUE(wire::parseBatchReply(frame.payload, out, err)) << err;
    EXPECT_EQ(out.tenant, in.tenant);
    EXPECT_EQ(out.id, in.id);
    EXPECT_TRUE(out.shed);
    ASSERT_EQ(out.results.size(), 2u);
    EXPECT_EQ(out.results[1].status, wire::ReqStatus::MacMismatch);
    EXPECT_EQ(out.results[1].digest, 0x2222u);
}

TEST(ServeWireTest, TruncatedFrameNeedsMore)
{
    const std::vector<std::uint8_t> bytes =
        wire::encodeBatch(sampleBatch());
    wire::Frame frame;
    std::size_t consumed = 0;
    std::string err;
    // Every strict prefix is NeedMore, never Ok and never Bad.
    for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
        const std::span<const std::uint8_t> prefix(bytes.data(), cut);
        EXPECT_EQ(wire::decodeFrame(prefix, frame, consumed, err),
                  wire::Decode::NeedMore)
            << "at prefix length " << cut;
    }
}

TEST(ServeWireTest, MalformedFramesRejected)
{
    std::vector<std::uint8_t> bytes =
        wire::encodeBatch(sampleBatch());
    wire::Frame frame;
    std::size_t consumed = 0;
    std::string err;

    auto expectBad = [&](std::vector<std::uint8_t> mutated) {
        EXPECT_EQ(wire::decodeFrame(mutated, frame, consumed, err),
                  wire::Decode::Bad);
        EXPECT_FALSE(err.empty());
        err.clear();
    };

    std::vector<std::uint8_t> bad_magic = bytes;
    bad_magic[0] = 'X';
    expectBad(bad_magic);

    std::vector<std::uint8_t> bad_version = bytes;
    bad_version[4] = 0xff;
    expectBad(bad_version);

    std::vector<std::uint8_t> bad_type = bytes;
    bad_type[6] = 0x7f;
    expectBad(bad_type);

    // Payload length above the cap: oversized, rejected before any
    // attempt to buffer it.
    std::vector<std::uint8_t> oversized = bytes;
    oversized[8] = 0xff;
    oversized[9] = 0xff;
    oversized[10] = 0xff;
    oversized[11] = 0x7f;
    expectBad(oversized);

    std::vector<std::uint8_t> bad_reserved = bytes;
    bad_reserved[12] = 1;
    expectBad(bad_reserved);
}

TEST(ServeWireTest, BatchParserRejectsCorruptPayloads)
{
    const wire::RequestBatch in = sampleBatch();
    const std::vector<std::uint8_t> bytes = wire::encodeBatch(in);
    wire::Frame frame;
    std::size_t consumed = 0;
    std::string err;
    ASSERT_EQ(wire::decodeFrame(bytes, frame, consumed, err),
              wire::Decode::Ok);

    wire::RequestBatch out;
    // Length/count disagreement.
    std::vector<std::uint8_t> short_payload = frame.payload;
    short_payload.pop_back();
    EXPECT_FALSE(wire::parseBatch(short_payload, out, err));

    // Unknown op.
    std::vector<std::uint8_t> bad_op = frame.payload;
    bad_op[16] = 0x66;
    EXPECT_FALSE(wire::parseBatch(bad_op, out, err));

    // Count above the batch cap.
    std::vector<std::uint8_t> big_count = frame.payload;
    big_count[4] = 0xff;
    big_count[5] = 0xff;
    EXPECT_FALSE(wire::parseBatch(big_count, out, err));
}

TEST(ServeWireTest, FillPatternIsDeterministic)
{
    std::uint8_t a[256], b[256];
    wire::fillPattern(7, 4096, a);
    wire::fillPattern(7, 4096, b);
    EXPECT_EQ(wire::fnv1a(a), wire::fnv1a(b));
    wire::fillPattern(8, 4096, b);
    EXPECT_NE(wire::fnv1a(a), wire::fnv1a(b));
}

// ---- server -------------------------------------------------------------

SessionConfig
smallSession(unsigned tenants, std::uint64_t queue_depth = 8192)
{
    SessionConfig cfg;
    for (unsigned t = 0; t < tenants; ++t) {
        TenantConfig tc;
        tc.id = t;
        tc.mem_bytes = 8 * kChunkBytes;
        tc.key_seed = 100 + t;
        tc.queue_depth = queue_depth;
        cfg.tenants.push_back(tc);
    }
    cfg.threads = 2;
    return cfg;
}

wire::RequestBatch
writeReadBatch(std::uint32_t tenant, Addr addr)
{
    wire::RequestBatch b;
    b.tenant = tenant;
    wire::Request w;
    w.op = wire::Op::Write;
    w.addr = addr;
    w.len = kCachelineBytes;
    w.seed = 0xabcd;
    b.requests.push_back(w);
    wire::Request r;
    r.op = wire::Op::Read;
    r.addr = addr;
    r.len = kCachelineBytes;
    b.requests.push_back(r);
    return b;
}

TEST(ServeSessionTest, ValidationCatchesBadConfigs)
{
    SessionConfig empty;
    EXPECT_FALSE(empty.validate().empty());

    SessionConfig dup = smallSession(2);
    dup.tenants[1].id = dup.tenants[0].id;
    EXPECT_FALSE(dup.validate().empty());

    SessionConfig tiny = smallSession(1);
    tiny.tenants[0].mem_bytes = kChunkBytes / 2;
    EXPECT_FALSE(tiny.validate().empty());

    SessionConfig no_queue = smallSession(1);
    no_queue.tenants[0].queue_depth = 0;
    EXPECT_FALSE(no_queue.validate().empty());

    EXPECT_TRUE(smallSession(3).validate().empty());
}

TEST(ServeServerTest, WriteReadRoundTripsWithMatchingDigest)
{
    Server server(smallSession(1));
    const wire::BatchReply reply =
        server.submitSync(writeReadBatch(0, 256));
    ASSERT_EQ(reply.results.size(), 2u);
    EXPECT_EQ(reply.results[0].status, wire::ReqStatus::Ok);
    EXPECT_EQ(reply.results[1].status, wire::ReqStatus::Ok);
    // The read must observe exactly the written pattern.
    EXPECT_EQ(reply.results[0].digest, reply.results[1].digest);

    std::uint8_t expect[kCachelineBytes];
    wire::fillPattern(0xabcd, 256, expect);
    EXPECT_EQ(reply.results[1].digest, wire::fnv1a(expect));
}

TEST(ServeServerTest, MalformedRequestsReplyBadRequest)
{
    Server server(smallSession(1));
    wire::RequestBatch b;
    b.tenant = 0;
    wire::Request r;
    r.op = wire::Op::Read;
    r.addr = 13;  // misaligned
    r.len = kCachelineBytes;
    b.requests.push_back(r);
    r.addr = 0;
    r.len = 48;  // not line-multiple
    b.requests.push_back(r);
    r.len = kCachelineBytes;
    r.addr = 8 * kChunkBytes;  // out of the arena
    b.requests.push_back(r);

    const wire::BatchReply reply = server.submitSync(std::move(b));
    ASSERT_EQ(reply.results.size(), 3u);
    for (const wire::Result &res : reply.results)
        EXPECT_EQ(res.status, wire::ReqStatus::BadRequest);

    // An unknown tenant is rejected whole.
    const wire::BatchReply unknown =
        server.submitSync(writeReadBatch(77, 0));
    ASSERT_EQ(unknown.results.size(), 2u);
    EXPECT_EQ(unknown.results[0].status, wire::ReqStatus::BadRequest);
}

TEST(ServeServerTest, AdmissionControlShedsWholeBatches)
{
    // Queue depth below one batch: every submit sheds, deterministically.
    Server server(smallSession(1, 1));
    wire::RequestBatch b = writeReadBatch(0, 0);
    const wire::BatchReply reply = server.submitSync(b);
    EXPECT_TRUE(reply.shed);
    ASSERT_EQ(reply.results.size(), 2u);
    for (const wire::Result &res : reply.results)
        EXPECT_EQ(res.status, wire::ReqStatus::Shed);
    EXPECT_EQ(server.shedBatches(), 1u);
    EXPECT_EQ(server.completedRequests(), 0u);
}

TEST(ServeServerTest, TenantsAreIsolated)
{
    Server server(smallSession(2));
    // Warm both tenants on the same addresses.
    ASSERT_EQ(server.submitSync(writeReadBatch(0, 0)).results[1].status,
              wire::ReqStatus::Ok);
    ASSERT_EQ(server.submitSync(writeReadBatch(1, 0)).results[1].status,
              wire::ReqStatus::Ok);

    // Corrupt tenant 0's ciphertext.
    server.injectTamper(0, 0, 3);

    // Tenant 0 detects; tenant 1 is untouched.
    wire::RequestBatch read0;
    read0.tenant = 0;
    wire::Request r;
    r.op = wire::Op::Read;
    r.addr = 0;
    r.len = kCachelineBytes;
    read0.requests.push_back(r);
    wire::RequestBatch read1 = read0;
    read1.tenant = 1;

    EXPECT_NE(server.submitSync(read0).results[0].status,
              wire::ReqStatus::Ok);
    EXPECT_EQ(server.submitSync(read1).results[0].status,
              wire::ReqStatus::Ok);

    // Same-key derivation would be a cross-tenant disaster; the
    // digests agree (same plaintext) but the engines are separate.
    EXPECT_EQ(server.tenantCount(), 2u);
}

TEST(ServeServerTest, DetectionLatencyIsRecorded)
{
    StatRegistry::instance().reset();
    Server server(smallSession(1));
    ASSERT_EQ(server.submitSync(writeReadBatch(0, 0)).results[1].status,
              wire::ReqStatus::Ok);
    server.injectTamper(0, 0, 1);

    wire::RequestBatch read;
    read.tenant = 0;
    wire::Request r;
    r.op = wire::Op::Read;
    r.addr = 0;
    r.len = kCachelineBytes;
    read.requests.push_back(r);
    EXPECT_NE(server.submitSync(read).results[0].status,
              wire::ReqStatus::Ok);

    const StatGroup g =
        StatRegistry::instance().snapshot("serve.t0.core");
    EXPECT_EQ(g.counters().at("tampers"), 1u);
    EXPECT_EQ(g.counters().at("detected"), 1u);
}

TEST(ServeServerTest, DigestsAreIdenticalAcrossThreadCounts)
{
    auto runAt = [](unsigned threads) {
        SessionConfig cfg = smallSession(3);
        cfg.threads = threads;
        Server server(cfg);
        std::vector<std::uint64_t> digests(3);
        std::vector<std::thread> drivers;
        for (unsigned t = 0; t < 3; ++t) {
            drivers.emplace_back([&, t] {
                LoadgenConfig lg;
                lg.tenant = t;
                lg.seed = 5;
                lg.mem_bytes = 8 * kChunkBytes;
                lg.batch = 64;
                lg.tamper_at = 500;
                Loadgen gen(lg);
                wire::RequestBatch b;
                while (gen.generated() < 2048) {
                    gen.next(b);
                    gen.absorb(server.submitSync(b));
                }
                digests[t] = gen.digest();
            });
        }
        for (std::thread &th : drivers)
            th.join();
        server.stop();
        return digests;
    };
    EXPECT_EQ(runAt(1), runAt(4));
}

TEST(ServeServerTest, RemoveTenantErasesItsStats)
{
    StatRegistry::instance().reset();
    Server server(smallSession(2));
    server.submitSync(writeReadBatch(0, 0));
    server.submitSync(writeReadBatch(1, 0));
    ASSERT_FALSE(StatRegistry::instance()
                     .snapshot("serve.t1.core")
                     .counters()
                     .empty());

    EXPECT_TRUE(server.removeTenant(1));
    EXPECT_EQ(server.tenantCount(), 1u);
    EXPECT_TRUE(StatRegistry::instance()
                    .snapshot("serve.t1.core")
                    .counters()
                    .empty());
    // Tenant 0 is untouched...
    EXPECT_FALSE(StatRegistry::instance()
                     .snapshot("serve.t0.core")
                     .counters()
                     .empty());
    // ...and traffic for the removed tenant is refused.
    EXPECT_EQ(server.submitSync(writeReadBatch(1, 0))
                  .results[0]
                  .status,
              wire::ReqStatus::BadRequest);
    // Removing twice (or an unknown id) fails.
    EXPECT_FALSE(server.removeTenant(1));
    EXPECT_FALSE(server.removeTenant(42));

    // Aggregates and stats frames stay safe after teardown: the
    // removed tenant's totals come from the teardown snapshot, not
    // from the (erased) registry counters.
    EXPECT_EQ(server.completedRequests(), 4u);
    EXPECT_EQ(server.shedBatches(), 0u);
    const std::string json = server.statsJson();
    EXPECT_NE(json.find("\"t1\": {\"open\": false"),
              std::string::npos);
    EXPECT_NE(json.find("\"requests\": 2"), std::string::npos);
    obs::Manifest manifest("serve_test_teardown");
    server.fillManifest(manifest);
}

TEST(ServeServerTest, StatsAreSafeUnderConcurrentLoad)
{
    // Stats frames arrive on connection threads while shards are
    // executing batches; under TSan this pins that statsJson() is
    // race-free against the per-tenant tick clocks and counters.
    Server server(smallSession(2));
    std::atomic<bool> stop{false};
    std::thread poller([&] {
        while (!stop.load())
            server.statsJson();
    });
    for (unsigned i = 0; i < 64; ++i) {
        server.submitSync(writeReadBatch(0, (i % 8) * kChunkBytes));
        server.submitSync(writeReadBatch(1, (i % 8) * kChunkBytes));
    }
    stop.store(true);
    poller.join();
    EXPECT_EQ(server.completedRequests(), 256u);
}

TEST(ServeServerTest, SubmitAfterStopSheds)
{
    Server server(smallSession(1));
    server.stop();
    const wire::BatchReply reply =
        server.submitSync(writeReadBatch(0, 0));
    EXPECT_TRUE(reply.shed);
    ASSERT_EQ(reply.results.size(), 2u);
    EXPECT_EQ(reply.results[0].status, wire::ReqStatus::Shed);
}

TEST(ServeServerTest, StatsJsonMentionsEveryTenant)
{
    Server server(smallSession(2));
    server.submitSync(writeReadBatch(0, 0));
    const std::string json = server.statsJson();
    EXPECT_NE(json.find("\"t0\""), std::string::npos);
    EXPECT_NE(json.find("\"t1\""), std::string::npos);
    EXPECT_NE(json.find("batch_wall_p99_ns"), std::string::npos);
}

// ---- loadgen ------------------------------------------------------------

TEST(ServeLoadgenTest, StreamsAreReproducible)
{
    LoadgenConfig cfg;
    cfg.tenant = 1;
    cfg.seed = 99;
    cfg.batch = 32;
    Loadgen a(cfg), b(cfg);
    wire::RequestBatch ba, bb;
    for (int i = 0; i < 10; ++i) {
        a.next(ba);
        b.next(bb);
        ASSERT_EQ(ba.requests.size(), bb.requests.size());
        for (std::size_t j = 0; j < ba.requests.size(); ++j) {
            EXPECT_EQ(ba.requests[j].op, bb.requests[j].op);
            EXPECT_EQ(ba.requests[j].addr, bb.requests[j].addr);
            EXPECT_EQ(ba.requests[j].seed, bb.requests[j].seed);
        }
    }
}

// ---- socket front end ---------------------------------------------------

TEST(ServeNetTest, SocketRoundTripMatchesInProcess)
{
    const std::string path =
        testing::TempDir() + "serve_net_test.sock";
    Server server(smallSession(1));
    Listener listener(server, path);

    Client client(path);
    wire::BatchReply over_socket;
    std::string err;
    ASSERT_TRUE(
        client.callBatch(writeReadBatch(0, 512), over_socket, err))
        << err;
    ASSERT_EQ(over_socket.results.size(), 2u);
    EXPECT_EQ(over_socket.results[0].status, wire::ReqStatus::Ok);

    // The same batch in-process observes the same digests (same
    // engine state: the write is idempotent for a fixed seed).
    const wire::BatchReply inproc =
        server.submitSync(writeReadBatch(0, 512));
    EXPECT_EQ(inproc.results[1].digest,
              over_socket.results[1].digest);

    // Stats frame answers with JSON.
    wire::Frame stats;
    ASSERT_TRUE(
        client.call(wire::FrameType::Stats, {}, stats, err));
    EXPECT_EQ(stats.type, wire::FrameType::StatsReply);
    const std::string json(stats.payload.begin(),
                           stats.payload.end());
    EXPECT_NE(json.find("completed_requests"), std::string::npos);

    // Shutdown is acknowledged and stops the listener.
    wire::Frame ack;
    ASSERT_TRUE(
        client.call(wire::FrameType::Shutdown, {}, ack, err));
    EXPECT_EQ(ack.type, wire::FrameType::ShutdownReply);
    listener.waitForShutdown();
    EXPECT_TRUE(listener.stopped());
    listener.stop();
    server.stop();
}

TEST(ServeNetTest, OpenSessionReportsTopologyAsU32)
{
    const std::string path =
        testing::TempDir() + "serve_open_test.sock";
    Server server(smallSession(3));
    Listener listener(server, path);

    Client client(path);
    wire::Frame reply;
    std::string err;
    ASSERT_TRUE(
        client.call(wire::FrameType::OpenSession, {}, reply, err))
        << err;
    ASSERT_EQ(reply.type, wire::FrameType::OpenReply);
    // Two LE u32 fields: tenant count, shard count (a single byte
    // each would truncate sessions with >255 tenants).
    ASSERT_EQ(reply.payload.size(), 8u);
    auto get32 = [&reply](std::size_t off) {
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(reply.payload[off + i])
                 << (8 * i);
        return v;
    };
    EXPECT_EQ(get32(0), 3u);
    EXPECT_EQ(get32(4), server.shards());

    listener.stop();
    server.stop();
}

} // namespace
} // namespace mgmee::serve
