/**
 * @file
 * Functional tests of the fixed-granularity behaviour of SecureMemory:
 * encrypted round trips, integrity (MAC) and freshness (tree/replay)
 * detection.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
testKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i * 7 + 1);
    keys.mac = {0x1234567890abcdefULL, 0xfedcba0987654321ULL};
    return keys;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

class SecureMemoryTest : public ::testing::Test
{
  protected:
    SecureMemory mem_{4 * kChunkBytes, testKeys()};
};

TEST_F(SecureMemoryTest, LineRoundTrip)
{
    const auto data = pattern(kCachelineBytes, 9);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0x0, data));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x0, out));
    EXPECT_EQ(data, out);
}

TEST_F(SecureMemoryTest, UnwrittenMemoryReadsZero)
{
    std::vector<std::uint8_t> out(128, 0xaa);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x400, out));
    for (auto b : out)
        EXPECT_EQ(0u, b);
}

TEST_F(SecureMemoryTest, MultiLineAndUnalignedRoundTrip)
{
    const auto data = pattern(1000, 3);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0x1234, data));
    std::vector<std::uint8_t> out(1000);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x1234, out));
    EXPECT_EQ(data, out);

    // Partial re-read in the middle.
    std::vector<std::uint8_t> mid(100);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x1234 + 450, mid));
    EXPECT_EQ(0, std::memcmp(mid.data(), data.data() + 450, 100));
}

TEST_F(SecureMemoryTest, OverwritePreservesNeighbours)
{
    const auto a = pattern(kCachelineBytes, 1);
    const auto b = pattern(kCachelineBytes, 2);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0x000, a));
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0x040, b));
    const auto a2 = pattern(kCachelineBytes, 99);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0x000, a2));

    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x000, out));
    EXPECT_EQ(a2, out);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x040, out));
    EXPECT_EQ(b, out);
}

TEST_F(SecureMemoryTest, CountersIncrementPerWrite)
{
    const auto data = pattern(kCachelineBytes, 5);
    const auto c0 = mem_.effectiveCounter(0x80);
    mem_.write(0x80, data);
    const auto c1 = mem_.effectiveCounter(0x80);
    mem_.write(0x80, data);
    const auto c2 = mem_.effectiveCounter(0x80);
    EXPECT_EQ(c0 + 1, c1);
    EXPECT_EQ(c1 + 1, c2);
}

TEST_F(SecureMemoryTest, CiphertextIsNotPlaintext)
{
    // Write a recognisable pattern and confirm it never appears in
    // the simulated off-chip memory image.
    const auto data = pattern(kCachelineBytes, 77);
    mem_.write(0x200, data);
    std::vector<std::uint8_t> out(kCachelineBytes);
    mem_.read(0x200, out);
    EXPECT_EQ(data, out);
    // Corrupt one ciphertext byte: decryption must NOT yield the
    // original plaintext (and integrity must flag it, tested below).
    mem_.corruptData(0x200, 0);
    EXPECT_EQ(SecureMemory::Status::MacMismatch, mem_.read(0x200, out));
}

TEST_F(SecureMemoryTest, TamperedDataDetected)
{
    const auto data = pattern(kCachelineBytes, 8);
    mem_.write(0x300, data);
    mem_.corruptData(0x300, 13);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::MacMismatch, mem_.read(0x300, out));
}

TEST_F(SecureMemoryTest, TamperedMacDetected)
{
    const auto data = pattern(kCachelineBytes, 8);
    mem_.write(0x340, data);
    mem_.corruptMac(0x340);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::MacMismatch, mem_.read(0x340, out));
}

TEST_F(SecureMemoryTest, TamperedCounterDetected)
{
    const auto data = pattern(kCachelineBytes, 8);
    mem_.write(0x380, data);
    mem_.corruptCounter(0x380);
    std::vector<std::uint8_t> out(kCachelineBytes);
    // A flipped counter breaks both the data MAC (it binds the
    // counter) -- either failure mode is a detection.
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(0x380, out));
}

TEST_F(SecureMemoryTest, ReplayAttackDetected)
{
    const auto v1 = pattern(kCachelineBytes, 1);
    const auto v2 = pattern(kCachelineBytes, 2);
    mem_.write(0x500, v1);
    const auto old = mem_.captureForReplay(0x500);
    mem_.write(0x500, v2);

    // Roll the off-chip state (ciphertext, MAC, leaf counter, leaf
    // node MAC) back to v1.  The on-chip root cannot be rolled back.
    mem_.replay(old);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::TreeMismatch,
              mem_.read(0x500, out));
}

TEST_F(SecureMemoryTest, ReplayOfCurrentStateIsHarmless)
{
    // Restoring the *current* state is not an attack and must verify.
    const auto v1 = pattern(kCachelineBytes, 1);
    mem_.write(0x540, v1);
    const auto snap = mem_.captureForReplay(0x540);
    mem_.replay(snap);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_EQ(SecureMemory::Status::Ok, mem_.read(0x540, out));
    EXPECT_EQ(v1, out);
}

TEST_F(SecureMemoryTest, IndependentKeysGiveIndependentCiphertexts)
{
    SecureMemory other(4 * kChunkBytes, [] {
        auto k = testKeys();
        k.aes[0] ^= 0x80;
        return k;
    }());
    const auto data = pattern(kCachelineBytes, 4);
    mem_.write(0x600, data);
    other.write(0x600, data);
    // Both decrypt correctly under their own keys.
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(0x600, out));
    EXPECT_EQ(data, out);
    ASSERT_EQ(SecureMemory::Status::Ok, other.read(0x600, out));
    EXPECT_EQ(data, out);
}

TEST_F(SecureMemoryTest, WritesAcrossChunkBoundary)
{
    const auto data = pattern(3 * kCachelineBytes, 21);
    const Addr addr = kChunkBytes - kCachelineBytes;
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(addr, data));
    std::vector<std::uint8_t> out(data.size());
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(addr, out));
    EXPECT_EQ(data, out);
}

TEST_F(SecureMemoryTest, StatusNames)
{
    EXPECT_STREQ("Ok",
                 SecureMemory::statusName(SecureMemory::Status::Ok));
    EXPECT_STREQ("MacMismatch", SecureMemory::statusName(
                                    SecureMemory::Status::MacMismatch));
    EXPECT_STREQ("TreeMismatch",
                 SecureMemory::statusName(
                     SecureMemory::Status::TreeMismatch));
}

/** Round-trip property over many (address, size) shapes. */
class SecureMemoryRoundTrip
    : public ::testing::TestWithParam<std::pair<Addr, std::size_t>>
{
};

TEST_P(SecureMemoryRoundTrip, WriteReadBack)
{
    SecureMemory mem(8 * kChunkBytes, testKeys());
    const auto [addr, size] = GetParam();
    const auto data = pattern(size, static_cast<std::uint8_t>(addr));
    ASSERT_EQ(SecureMemory::Status::Ok, mem.write(addr, data));
    std::vector<std::uint8_t> out(size);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(addr, out));
    EXPECT_EQ(data, out);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SecureMemoryRoundTrip,
    ::testing::Values(std::pair<Addr, std::size_t>{0, 1},
                      std::pair<Addr, std::size_t>{63, 2},
                      std::pair<Addr, std::size_t>{0, 64},
                      std::pair<Addr, std::size_t>{32, 64},
                      std::pair<Addr, std::size_t>{100, 4096},
                      std::pair<Addr, std::size_t>{kChunkBytes - 7, 14},
                      std::pair<Addr, std::size_t>{4096, 32768},
                      std::pair<Addr, std::size_t>{1, 10000}));

} // namespace
} // namespace mgmee
