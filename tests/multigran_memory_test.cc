/**
 * @file
 * Functional tests of multi-granular operation: promotion, demotion,
 * mixed maps, integrity under every granularity, and the dynamic
 * (tracker-driven) wrapper.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/multigran_memory.hh"

namespace mgmee {
namespace {

SecureMemory::Keys
testKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i + 100);
    keys.mac = {0xaaaabbbbccccddddULL, 0x1111222233334444ULL};
    return keys;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed ^ (i * 31));
    return v;
}

class MultiGranTest : public ::testing::Test
{
  protected:
    SecureMemory mem_{16 * kChunkBytes, testKeys()};

    void
    expectRead(Addr addr, const std::vector<std::uint8_t> &want)
    {
        std::vector<std::uint8_t> out(want.size());
        ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(addr, out));
        EXPECT_EQ(want, out);
    }
};

TEST_F(MultiGranTest, PromoteTo512BPreservesData)
{
    const auto data = pattern(kChunkBytes, 7);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0, data));

    // Promote partitions 0 and 1 (Fig. 13 (a) scenario).
    mem_.applyStreamPart(0, StreamPart{0b11});
    EXPECT_EQ(Granularity::Part512B, mem_.granularityAt(0));
    EXPECT_EQ(Granularity::Part512B,
              mem_.granularityAt(kPartitionBytes));
    EXPECT_EQ(Granularity::Line64B,
              mem_.granularityAt(2 * kPartitionBytes));
    expectRead(0, data);
}

TEST_F(MultiGranTest, PromoteToChunkPreservesData)
{
    const auto data = pattern(kChunkBytes, 11);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(kChunkBytes, data));
    mem_.applyStreamPart(1, kAllStream);
    EXPECT_EQ(Granularity::Chunk32KB,
              mem_.granularityAt(kChunkBytes + 123));
    expectRead(kChunkBytes, data);
}

TEST_F(MultiGranTest, PromotionUsesAFreshCounter)
{
    const auto line = pattern(kCachelineBytes, 1);
    // Give the lines different counters by writing different numbers
    // of times.
    mem_.write(0, line);
    mem_.write(0, line);
    mem_.write(0, line);
    mem_.write(kCachelineBytes, line);
    const auto max_before = mem_.effectiveCounter(0);
    ASSERT_EQ(3u, max_before);

    mem_.applyStreamPart(0, StreamPart{0b1});
    // Fig. 13 (a): parent counter = max(children) + 1.
    EXPECT_EQ(max_before + 1, mem_.effectiveCounter(0));
    EXPECT_EQ(max_before + 1,
              mem_.effectiveCounter(kCachelineBytes));
}

TEST_F(MultiGranTest, DemotionKeepsCounterValue)
{
    const auto data = pattern(kPartitionBytes, 2);
    mem_.write(0, data);
    mem_.applyStreamPart(0, StreamPart{0b1});
    const auto shared = mem_.effectiveCounter(0);

    // Fig. 13 (b): scale-down retains the counter value in children.
    mem_.applyStreamPart(0, kAllFine);
    for (unsigned l = 0; l < 8; ++l) {
        EXPECT_EQ(shared,
                  mem_.effectiveCounter(l * kCachelineBytes));
    }
    expectRead(0, data);
}

TEST_F(MultiGranTest, PromoteDemoteLadderPreservesData)
{
    const auto data = pattern(kChunkBytes, 23);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0, data));
    // 64B -> 512B -> 4KB -> 32KB -> 4KB -> 512B -> 64B.
    for (StreamPart sp :
         {StreamPart{0xff}, subchunkMask(0) | subchunkMask(1),
          kAllStream, subchunkMask(0), StreamPart{0b1}, kAllFine}) {
        mem_.applyStreamPart(0, sp);
        expectRead(0, data);
    }
}

TEST_F(MultiGranTest, WritesAtCoarseGranularity)
{
    const auto data = pattern(kChunkBytes, 3);
    mem_.write(0, data);
    mem_.applyStreamPart(0, kAllStream);

    // Full-unit write.
    const auto fresh = pattern(kChunkBytes, 91);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(0, fresh));
    expectRead(0, fresh);

    // Sub-unit write forces read-modify-write of the shared unit.
    const auto word = pattern(16, 55);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.write(1000, word));
    std::vector<std::uint8_t> out(16);
    ASSERT_EQ(SecureMemory::Status::Ok, mem_.read(1000, out));
    EXPECT_EQ(word, out);
    // Neighbours unchanged.
    expectRead(0, std::vector<std::uint8_t>(fresh.begin(),
                                            fresh.begin() + 1000));
}

TEST_F(MultiGranTest, CoarseWriteBumpsSharedCounterOnce)
{
    mem_.applyStreamPart(0, StreamPart{0b1});
    const auto before = mem_.effectiveCounter(0);
    mem_.write(0, pattern(kPartitionBytes, 1));
    const auto after = mem_.effectiveCounter(0);
    EXPECT_EQ(before + 1, after);
    // All lines of the unit share it.
    EXPECT_EQ(after, mem_.effectiveCounter(7 * kCachelineBytes));
}

TEST_F(MultiGranTest, MixedMapRoundTrip)
{
    // Subchunk 0 at 4KB, partitions 8-9 at 512B, rest fine.
    const StreamPart sp =
        subchunkMask(0) | (StreamPart{1} << 8) | (StreamPart{1} << 9);
    const auto data = pattern(kChunkBytes, 42);
    mem_.write(2 * kChunkBytes, data);
    mem_.applyStreamPart(2, sp);

    EXPECT_EQ(Granularity::Sub4KB,
              mem_.granularityAt(2 * kChunkBytes));
    EXPECT_EQ(Granularity::Part512B,
              mem_.granularityAt(2 * kChunkBytes + 8 * kPartitionBytes));
    EXPECT_EQ(Granularity::Line64B,
              mem_.granularityAt(2 * kChunkBytes + 10 * kPartitionBytes));
    expectRead(2 * kChunkBytes, data);

    // Writes at each granularity inside the mixed chunk.
    const auto w = pattern(256, 9);
    for (Addr off : {Addr{0}, Addr{8 * kPartitionBytes},
                     Addr{10 * kPartitionBytes}}) {
        ASSERT_EQ(SecureMemory::Status::Ok,
                  mem_.write(2 * kChunkBytes + off, w));
        std::vector<std::uint8_t> out(w.size());
        ASSERT_EQ(SecureMemory::Status::Ok,
                  mem_.read(2 * kChunkBytes + off, out));
        EXPECT_EQ(w, out);
    }
}

TEST_F(MultiGranTest, TamperDetectedAtEveryGranularity)
{
    const auto data = pattern(kChunkBytes, 66);
    for (auto [chunk, sp] : std::vector<std::pair<std::uint64_t,
                                                  StreamPart>>{
             {4, kAllFine},
             {5, StreamPart{0b1}},
             {6, subchunkMask(0)},
             {7, kAllStream}}) {
        const Addr base = chunk * kChunkBytes;
        mem_.write(base, data);
        mem_.applyStreamPart(chunk, sp);
        // Corrupt a ciphertext byte in the *middle* of the first unit.
        mem_.corruptData(base + 3 * kCachelineBytes, 5);
        std::vector<std::uint8_t> out(kCachelineBytes);
        // Reading the corrupted line detects it directly; for coarse
        // units even a read of a *different* line in the unit does,
        // because the merged MAC nests every fine MAC.
        EXPECT_EQ(SecureMemory::Status::MacMismatch,
                  mem_.read(base + 3 * kCachelineBytes, out))
            << "sp=" << sp;
        if (sp != kAllFine) {
            EXPECT_EQ(SecureMemory::Status::MacMismatch,
                      mem_.read(base, out))
                << "sp=" << sp;
        }
    }
}

TEST_F(MultiGranTest, CoarseMacDetectsTamperOfStoredMac)
{
    mem_.write(8 * kChunkBytes, pattern(kChunkBytes, 1));
    mem_.applyStreamPart(8, kAllStream);
    mem_.corruptMac(8 * kChunkBytes + 999);
    std::vector<std::uint8_t> out(64);
    EXPECT_EQ(SecureMemory::Status::MacMismatch,
              mem_.read(8 * kChunkBytes, out));
}

TEST_F(MultiGranTest, ReplayDetectedOnPromotedUnit)
{
    const Addr base = 9 * kChunkBytes;
    mem_.write(base, pattern(kPartitionBytes, 1));
    mem_.applyStreamPart(9, StreamPart{0b1});

    const auto old = mem_.captureForReplay(base);
    mem_.write(base, pattern(kPartitionBytes, 2));
    mem_.replay(old);
    std::vector<std::uint8_t> out(kCachelineBytes);
    EXPECT_NE(SecureMemory::Status::Ok, mem_.read(base, out));
}

TEST_F(MultiGranTest, TreeShorterAfterPromotionStillVerifies)
{
    // After a 32KB promotion in a 16-chunk region (3 in-memory
    // levels), the unit counter sits at level 3 == levels(): on-chip.
    const auto data = pattern(kChunkBytes, 5);
    mem_.write(10 * kChunkBytes, data);
    mem_.applyStreamPart(10, kAllStream);
    expectRead(10 * kChunkBytes, data);
    // Write at the coarse level and read back.
    const auto fresh = pattern(kChunkBytes, 6);
    ASSERT_EQ(SecureMemory::Status::Ok,
              mem_.write(10 * kChunkBytes, fresh));
    expectRead(10 * kChunkBytes, fresh);
}

// ---- DynamicSecureMemory ------------------------------------------------

class DynamicMemTest : public ::testing::Test
{
  protected:
    DynamicSecureMemory dyn_{16 * kChunkBytes, testKeys()};
};

TEST_F(DynamicMemTest, StreamingPatternGetsPromoted)
{
    // Stream the whole of chunk 0 line by line: the tracker evicts by
    // access count with an all-stream map; the *next* access to the
    // chunk applies it lazily.
    const auto line = pattern(kCachelineBytes, 1);
    Cycle now = 0;
    for (unsigned l = 0; l < kLinesPerChunk; ++l) {
        ASSERT_EQ(SecureMemory::Status::Ok,
                  dyn_.write(l * kCachelineBytes, line, now++));
    }
    EXPECT_EQ(kAllStream, dyn_.pending(0));
    EXPECT_EQ(kAllFine, dyn_.memory().streamPart(0));

    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, dyn_.read(0, out, now++));
    EXPECT_EQ(kAllStream, dyn_.memory().streamPart(0));
    EXPECT_EQ(1u, dyn_.switchesApplied());
    EXPECT_EQ(line, out);
}

TEST_F(DynamicMemTest, SparsePatternStaysFine)
{
    const auto line = pattern(kCachelineBytes, 2);
    Cycle now = 0;
    // Touch one line per partition: never a full stream partition.
    for (unsigned p = 0; p < kPartitionsPerChunk; ++p) {
        ASSERT_EQ(SecureMemory::Status::Ok,
                  dyn_.write(p * kPartitionBytes, line, now));
        now += 100;
    }
    dyn_.tracker().flush();
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, dyn_.read(0, out, now));
    EXPECT_EQ(kAllFine, dyn_.memory().streamPart(0));
}

TEST_F(DynamicMemTest, DataSurvivesDynamicSwitching)
{
    // Write distinct data, stream it to trigger promotion, then touch
    // it sparsely to trigger demotion; data must be intact throughout.
    std::vector<std::uint8_t> image(kChunkBytes);
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = static_cast<std::uint8_t>(i * 7 + 3);

    Cycle now = 0;
    ASSERT_EQ(SecureMemory::Status::Ok, dyn_.write(0, image, now));

    // Stream-read the chunk (line granularity) to promote.
    std::vector<std::uint8_t> out(kCachelineBytes);
    for (unsigned l = 0; l < kLinesPerChunk; ++l)
        ASSERT_EQ(SecureMemory::Status::Ok,
                  dyn_.read(l * kCachelineBytes, out, ++now));
    ASSERT_EQ(SecureMemory::Status::Ok, dyn_.read(0, out, ++now));
    EXPECT_NE(kAllFine, dyn_.memory().streamPart(0));

    // Sparse accesses with big time gaps demote again.
    for (unsigned p = 0; p < 4; ++p) {
        now += 20000;
        ASSERT_EQ(SecureMemory::Status::Ok,
                  dyn_.read(p * kPartitionBytes, out, now));
    }
    now += 20000;
    ASSERT_EQ(SecureMemory::Status::Ok, dyn_.read(0, out, now));

    std::vector<std::uint8_t> all(kChunkBytes);
    ASSERT_EQ(SecureMemory::Status::Ok, dyn_.read(0, all, ++now));
    EXPECT_EQ(image, all);
}

} // namespace
} // namespace mgmee
