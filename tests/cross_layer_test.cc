/**
 * @file
 * Cross-layer consistency: the functional layer and the timing layer
 * share the granularity brain (core/), so their address math and
 * promotion behaviour must agree with each other and with the
 * subtree optimizations' accounting.
 */

#include <gtest/gtest.h>

#include "core/multigran_engine.hh"
#include "hetero/hetero_system.hh"
#include "hetero/metrics.hh"
#include "mee/secure_memory.hh"

namespace mgmee {
namespace {

TEST(CrossLayerTest, FunctionalAndTimingShareMacCompaction)
{
    // For a set of maps, the compacted MAC index used by the
    // functional slab equals the one the timing engine's MAC-line
    // addressing derives (both via AddressComputer).
    MetadataLayout layout(64 * kChunkBytes);
    AddressComputer ac(layout);

    for (StreamPart sp :
         {kAllFine, kAllStream, StreamPart{0b111}, subchunkMask(2),
          subchunkMask(0) | (StreamPart{1} << 30)}) {
        unsigned part = 0;
        while (part < kPartitionsPerChunk) {
            const Addr pbase = part * kPartitionBytes;
            const Granularity g = granularityOfPartition(sp, part);
            const Addr ubase = unitBase(pbase, g);

            const MacLoc via_loc = ac.macLoc(ubase, sp);
            const std::uint64_t via_intra =
                AddressComputer::intraChunkMacIndex(ubase, sp);
            EXPECT_EQ(via_loc.index,
                      chunkIndex(ubase) * kLinesPerChunk + via_intra);
            EXPECT_EQ(layout.macLineAddr(via_loc.index),
                      via_loc.line_addr);

            part += static_cast<unsigned>(
                std::max<std::uint64_t>(1, unitLines(g) /
                                               kLinesPerPartition));
        }
    }
}

TEST(CrossLayerTest, CounterPromotionLevelsAgree)
{
    // The timing engine's counter location and the functional
    // engine's effective counter must come from the same (level,
    // index) for every granularity.
    MetadataLayout layout(64 * kChunkBytes);
    AddressComputer ac(layout);
    for (Granularity g :
         {Granularity::Line64B, Granularity::Part512B,
          Granularity::Sub4KB, Granularity::Chunk32KB}) {
        for (Addr addr : {Addr{0}, Addr{5 * kChunkBytes + 3000},
                          Addr{63 * kChunkBytes + 12345}}) {
            const CounterLoc loc = ac.counterLocAt(addr, g);
            EXPECT_EQ(promotionLevels(g), loc.level);
            EXPECT_EQ(lineIndex(alignDown(addr, granularityBytes(g))) >>
                          (3 * promotionLevels(g)),
                      loc.index);
        }
    }
}

TEST(CrossLayerTest, SubtreeOptsLeaveTracesInStats)
{
    // The combined scheme must actually exercise the subtree
    // machinery: root-cache stops and/or cold-walk skips show up in
    // its stat counters on a real scenario.
    const Scenario sc{"cc2", "ray", "mm", "alex", "alex"};
    HeteroSystem sys(buildDevices(sc, 1, 0.4),
                     makeEngine(Scheme::BmfUnusedOurs,
                                scenarioDataBytes()));
    sys.run();
    const StatGroup &stats = sys.engine().stats();
    EXPECT_GT(stats.get("walk_levels"), 0u);
    // Root-cache stops are workload dependent but the cold-skip path
    // (unused pruning) must have fired at least once on first touches.
    const auto *mg =
        dynamic_cast<const MultiGranEngine *>(&sys.engine());
    ASSERT_NE(nullptr, mg);
    EXPECT_GT(mg->table().populatedChunks(), 0u);
}

TEST(CrossLayerTest, SchemeEnginesReportDistinctNames)
{
    for (Scheme s : kMainSchemes) {
        auto engine = makeEngine(s, 4 * kChunkBytes);
        EXPECT_STRNE("", engine->name());
    }
    EXPECT_STREQ("Ours",
                 makeEngine(Scheme::Ours, 4 * kChunkBytes)->name());
    EXPECT_STREQ("BMF&Unused+Ours",
                 makeEngine(Scheme::BmfUnusedOurs, 4 * kChunkBytes)
                     ->name());
}

} // namespace
} // namespace mgmee
