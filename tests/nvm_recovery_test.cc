/**
 * @file
 * Crash-recovery tests of the persistent-memory engine
 * (mee/nvm_memory.hh): a write-ahead persist boundary crashed at
 * *every* ordering point recovers to a consistent image (all-old or
 * all-new, full tree verifies); the unordered baseline recovers
 * fail-closed from the same torn states (reads alarm, never silently
 * mixed); benign power cycles keep data; stale-epoch replay and torn
 * persists across a power cycle are detected; and granularity
 * promotions survive recovery.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mee/nvm_memory.hh"

namespace mgmee {
namespace {

using Status = SecureMemory::Status;
using PersistMode = NvmSecureMemory::PersistMode;

constexpr std::size_t kRegionBytes = 4 * kChunkBytes;

SecureMemory::Keys
testKeys()
{
    SecureMemory::Keys keys;
    for (unsigned i = 0; i < 16; ++i)
        keys.aes[i] = static_cast<std::uint8_t>(i * 11 + 3);
    keys.mac = {0x0123456789abcdefULL, 0x0fedcba987654321ULL};
    return keys;
}

std::vector<std::uint8_t>
pattern(std::size_t n, std::uint8_t seed)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 13);
    return v;
}

/** Addresses the tests dirty: a line in each of three chunks. */
const Addr kAddrs[] = {0x0, kChunkBytes + 0x40, 2 * kChunkBytes + 0x80};

void
writeAll(NvmSecureMemory &mem, std::uint8_t seed)
{
    for (const Addr a : kAddrs)
        ASSERT_EQ(Status::Ok,
                  mem.write(a, pattern(kCachelineBytes, seed)));
}

/** Read every touched line; returns true iff all reads verify, and
 *  reports whether the content matches @p seed on every line. */
bool
readAll(NvmSecureMemory &mem, std::uint8_t seed, bool *matches)
{
    bool ok = true;
    *matches = true;
    for (const Addr a : kAddrs) {
        std::vector<std::uint8_t> out(kCachelineBytes);
        if (mem.read(a, out) != Status::Ok) {
            ok = false;
            continue;
        }
        if (out != pattern(kCachelineBytes, seed))
            *matches = false;
    }
    return ok;
}

// ---- write-ahead crash consistency ----------------------------------

TEST(NvmRecovery, WalRecoversConsistentlyAtEveryCrashPoint)
{
    NvmSecureMemory probe(kRegionBytes, testKeys(),
                          PersistMode::WriteAhead);
    const unsigned points = probe.persistPoints();
    ASSERT_GE(points, 5u);

    for (unsigned k = 0; k < points; ++k) {
        NvmSecureMemory mem(kRegionBytes, testKeys(),
                            PersistMode::WriteAhead);
        // Epoch 1: pattern A persisted cleanly.
        writeAll(mem, 0xa0);
        mem.flushMetadata();
        const std::uint64_t epoch_a = mem.persistEpoch();

        // Epoch 2 attempt: pattern B, crashed before persist step k.
        writeAll(mem, 0xb0);
        mem.armCrash(static_cast<int>(k));
        mem.flushMetadata();
        ASSERT_TRUE(mem.crashed()) << "crash point " << k;

        const auto rep = mem.crashAndRecover();
        // The whole tree must verify, and the content must be all-old
        // or all-new -- never a mix (that is the WAL guarantee).
        bool is_a = false, is_b = false;
        EXPECT_TRUE(readAll(mem, 0xa0, &is_a)) << "crash point " << k;
        readAll(mem, 0xb0, &is_b);
        EXPECT_TRUE(is_a || is_b) << "torn at crash point " << k;
        EXPECT_NE(is_a, is_b) << "crash point " << k;

        // Before the commit record (P0/P1) the epoch rolls back to A;
        // from the commit point on the log replays forward to B.
        if (rep.log_replayed || mem.persistEpoch() > epoch_a)
            EXPECT_TRUE(is_b) << "crash point " << k;
        else
            EXPECT_TRUE(is_a) << "crash point " << k;
        EXPECT_FALSE(mem.crashed());
    }
}

TEST(NvmRecovery, WalCommitPointSplitsOldFromNew)
{
    // Crash before the commit record -> uncommitted log discarded.
    NvmSecureMemory pre(kRegionBytes, testKeys(),
                        PersistMode::WriteAhead);
    writeAll(pre, 0xa0);
    pre.flushMetadata();
    writeAll(pre, 0xb0);
    pre.armCrash(1);
    pre.flushMetadata();
    const auto rep_pre = pre.crashAndRecover();
    EXPECT_TRUE(rep_pre.log_discarded);
    EXPECT_FALSE(rep_pre.log_replayed);

    // Crash just after the commit record -> log replayed forward.
    NvmSecureMemory post(kRegionBytes, testKeys(),
                         PersistMode::WriteAhead);
    writeAll(post, 0xa0);
    post.flushMetadata();
    writeAll(post, 0xb0);
    post.armCrash(2);
    post.flushMetadata();
    const auto rep_post = post.crashAndRecover();
    EXPECT_TRUE(rep_post.log_replayed);
    EXPECT_FALSE(rep_post.log_discarded);
    bool is_b = false;
    EXPECT_TRUE(readAll(post, 0xb0, &is_b));
    EXPECT_TRUE(is_b);
}

// ---- unordered baseline: fail-closed, never silently torn -----------

TEST(NvmRecovery, UnorderedTornPersistRecoversFailClosed)
{
    NvmSecureMemory probe(kRegionBytes, testKeys(),
                          PersistMode::Unordered);
    const unsigned points = probe.persistPoints();
    ASSERT_GE(points, 2u);

    for (unsigned k = 0; k < points; ++k) {
        NvmSecureMemory mem(kRegionBytes, testKeys(),
                            PersistMode::Unordered);
        writeAll(mem, 0xa0);
        mem.flushMetadata();
        writeAll(mem, 0xb0);
        mem.armCrash(static_cast<int>(k));
        mem.flushMetadata();
        ASSERT_TRUE(mem.crashed()) << "crash point " << k;
        mem.crashAndRecover();

        // Either the image is still consistent (all-old before the
        // first in-place write landed) and fully verifies, or it is
        // torn -- and then reads must alarm, never return Ok with
        // mixed old/new state.
        bool matches = false;
        const bool all_ok = readAll(mem, 0xa0, &matches);
        bool matches_b = false;
        readAll(mem, 0xb0, &matches_b);
        if (all_ok)
            EXPECT_TRUE(matches || matches_b)
                << "silently torn at crash point " << k;
    }

    // At least one interior crash point actually produces a torn
    // image the engine alarms on (otherwise this test proves
    // nothing about fail-closed behaviour).
    bool any_alarm = false;
    for (unsigned k = 1; k < points; ++k) {
        NvmSecureMemory mem(kRegionBytes, testKeys(),
                            PersistMode::Unordered);
        writeAll(mem, 0xa0);
        mem.flushMetadata();
        writeAll(mem, 0xb0);
        mem.armCrash(static_cast<int>(k));
        mem.flushMetadata();
        mem.crashAndRecover();
        bool matches = false;
        if (!readAll(mem, 0xa0, &matches))
            any_alarm = true;
    }
    EXPECT_TRUE(any_alarm);
}

// ---- benign power cycle ---------------------------------------------

TEST(NvmRecovery, BenignPowerCycleKeepsData)
{
    NvmSecureMemory mem(kRegionBytes, testKeys(),
                        PersistMode::WriteAhead);
    writeAll(mem, 0x5a);
    mem.flushMetadata();
    const std::uint64_t epoch = mem.persistEpoch();

    const auto rep = mem.crashAndRecover();
    EXPECT_FALSE(rep.log_replayed);
    EXPECT_FALSE(rep.image_stale);
    EXPECT_EQ(epoch, mem.persistEpoch());

    bool matches = false;
    EXPECT_TRUE(readAll(mem, 0x5a, &matches));
    EXPECT_TRUE(matches);

    // Recovered state is writable and persists again.
    writeAll(mem, 0x77);
    mem.flushMetadata();
    EXPECT_GT(mem.persistEpoch(), epoch);
}

// ---- persistence attacks --------------------------------------------

TEST(NvmRecovery, StaleEpochReplayDetected)
{
    NvmSecureMemory mem(kRegionBytes, testKeys(),
                        PersistMode::WriteAhead);
    writeAll(mem, 0xa0);
    mem.flushMetadata();
    // No earlier committed epoch exists yet: nothing to replay.
    EXPECT_FALSE(mem.staleReplayCrash());

    writeAll(mem, 0xb0);
    mem.flushMetadata();

    // Re-present the epoch-A image across a power cycle.  The anchor
    // kept the newer epoch, so recovery flags the image stale and the
    // rolled-back lines fail freshness verification.
    ASSERT_TRUE(mem.staleReplayCrash());
    EXPECT_TRUE(mem.lastRecovery().image_stale);
    bool matches = false;
    EXPECT_FALSE(readAll(mem, 0xa0, &matches));
}

TEST(NvmRecovery, TornPersistAcrossPowerCycleDetected)
{
    NvmSecureMemory mem(kRegionBytes, testKeys(),
                        PersistMode::WriteAhead);
    writeAll(mem, 0xa0);
    mem.flushMetadata();

    // New ciphertext lands, the commit record does not: the surviving
    // image mixes new data with old metadata, which must alarm.
    writeAll(mem, 0xb0);
    mem.tornCrash();
    bool matches = false;
    EXPECT_FALSE(readAll(mem, 0xb0, &matches));
}

// ---- granularity state across recovery ------------------------------

TEST(NvmRecovery, GranularityPromotionSurvivesRecovery)
{
    NvmSecureMemory mem(kRegionBytes, testKeys(),
                        PersistMode::WriteAhead);
    const auto data = pattern(kCachelineBytes, 0x3c);
    ASSERT_EQ(Status::Ok, mem.write(0x0, data));
    mem.applyStreamPart(0, kAllStream);
    ASSERT_EQ(Granularity::Chunk32KB, mem.granularityAt(0x0));
    mem.flushMetadata();

    mem.crashAndRecover();
    EXPECT_EQ(Granularity::Chunk32KB, mem.granularityAt(0x0));
    std::vector<std::uint8_t> out(kCachelineBytes);
    ASSERT_EQ(Status::Ok, mem.read(0x0, out));
    EXPECT_EQ(data, out);

    // And the promoted unit is still writable after recovery.
    const auto data2 = pattern(kCachelineBytes, 0x4d);
    ASSERT_EQ(Status::Ok, mem.write(0x40, data2));
    ASSERT_EQ(Status::Ok, mem.read(0x40, out));
    EXPECT_EQ(data2, out);
}

} // namespace
} // namespace mgmee
