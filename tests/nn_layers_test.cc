/**
 * @file
 * Unit tests for the layer-accurate NPU traffic model: analytical
 * footprints against hand-computed layer shapes, trace structure,
 * and network definitions.
 */

#include <gtest/gtest.h>

#include "workloads/nn_layers.hh"

namespace mgmee {
namespace {

TEST(LayerAnalysisTest, ConvFootprintMatchesHandComputation)
{
    // AlexNet conv1: 3x227x227 input, 96 kernels of 11x11, stride 4.
    NnLayer conv;
    conv.kind = NnLayer::Kind::Conv;
    conv.in_c = 3;
    conv.in_h = conv.in_w = 227;
    conv.out_c = 96;
    conv.kernel = 11;
    conv.stride = 4;

    const LayerTraffic t = analyzeLayer(conv);
    EXPECT_EQ(96u * 3u * 11u * 11u, t.weight_bytes);  // 34,848
    EXPECT_EQ(3u * 227u * 227u, t.input_bytes);
    // Output is 55x55x96.
    EXPECT_EQ(96u * 55u * 55u, t.output_bytes);
    EXPECT_EQ(std::uint64_t{34848} * 55 * 55, t.macs);
}

TEST(LayerAnalysisTest, FcFootprint)
{
    NnLayer fc;
    fc.kind = NnLayer::Kind::Fc;
    fc.in_dim = 9216;
    fc.out_dim = 4096;
    const LayerTraffic t = analyzeLayer(fc);
    EXPECT_EQ(9216u * 4096u, t.weight_bytes);
    EXPECT_EQ(9216u, t.input_bytes);
    EXPECT_EQ(4096u, t.output_bytes);
    EXPECT_EQ(t.weight_bytes, t.macs);
}

TEST(LayerAnalysisTest, EmbeddingFootprint)
{
    NnLayer emb;
    emb.kind = NnLayer::Kind::Embedding;
    emb.rows = 100000;
    emb.dim = 64;
    emb.lookups = 32;
    const LayerTraffic t = analyzeLayer(emb);
    EXPECT_EQ(std::size_t{100000} * 64, t.weight_bytes);
    EXPECT_EQ(32u * 64u, t.input_bytes);
}

TEST(LayerAnalysisTest, SparsityShrinksRecurrentWeights)
{
    NnLayer rnn;
    rnn.kind = NnLayer::Kind::Recurrent;
    rnn.hidden = 1024;
    rnn.steps = 16;
    rnn.sparsity = 0.75;
    const LayerTraffic t = analyzeLayer(rnn);
    EXPECT_EQ(std::size_t{1024} * 1024 * 2 / 4, t.weight_bytes);
}

TEST(NetworkDefinitionTest, AlexNetShape)
{
    const auto layers = alexNetLayers();
    ASSERT_EQ(8u, layers.size());
    EXPECT_EQ("conv1", layers[0].name);
    EXPECT_EQ("fc8", layers[7].name);

    // Total weights: ~61M parameters (INT8 => ~58MB), dominated by
    // fc6 (37.7M).
    std::size_t weights = 0;
    for (const auto &l : layers)
        weights += analyzeLayer(l).weight_bytes;
    EXPECT_NEAR(61e6, static_cast<double>(weights), 4e6);
}

TEST(NetworkDefinitionTest, AllNetworksNonEmpty)
{
    EXPECT_FALSE(alexNetLayers().empty());
    EXPECT_FALSE(yoloTinyLayers().empty());
    EXPECT_FALSE(dlrmLayers().empty());
    EXPECT_FALSE(ncfLayers().empty());
    EXPECT_FALSE(sfrnnLayers().empty());
}

class NnTraceTest : public ::testing::Test
{
  protected:
    NpuConfig cfg_;
};

TEST_F(NnTraceTest, DeterministicAndAligned)
{
    const auto a = generateNnTrace(alexNetLayers(), cfg_, 0, 9);
    const auto b = generateNnTrace(alexNetLayers(), cfg_, 0, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 97) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(0u, a[i].addr % kCachelineBytes);
    }
}

TEST_F(NnTraceTest, CnnTraceIsCoarseDominated)
{
    const auto p = profileTrace(
        generateNnTrace(alexNetLayers(), cfg_, 0, 1));
    const double total = static_cast<double>(
        p.lines64 + p.lines512 + p.lines4k + p.lines32k);
    EXPECT_GT(p.lines32k / total, 0.8);
}

TEST_F(NnTraceTest, EmbeddingTraceHasFineGathers)
{
    // DLRM's gathers are 64B-row reads into huge tables: its fine
    // share must exceed a pure CNN's.
    const auto dlrm =
        profileTrace(generateNnTrace(dlrmLayers(), cfg_, 0, 1));
    const auto alex =
        profileTrace(generateNnTrace(alexNetLayers(), cfg_, 0, 1));
    const double dlrm_fine =
        static_cast<double>(dlrm.lines64) /
        static_cast<double>(dlrm.lines64 + dlrm.lines512 +
                            dlrm.lines4k + dlrm.lines32k);
    const double alex_fine =
        static_cast<double>(alex.lines64) /
        static_cast<double>(alex.lines64 + alex.lines512 +
                            alex.lines4k + alex.lines32k);
    EXPECT_GT(dlrm_fine, alex_fine);
}

TEST_F(NnTraceTest, RecurrentRestreamsWeights)
{
    // sfrnn re-streams its (sparse) weights across time steps: trace
    // read volume far exceeds one pass over the weights.
    const auto layers = sfrnnLayers();
    const LayerTraffic t = analyzeLayer(layers[0]);
    std::size_t read_bytes = 0;
    for (const TraceOp &op :
         generateNnTrace(layers, cfg_, 0, 1)) {
        if (!op.is_write)
            read_bytes += op.bytes;
    }
    EXPECT_GT(read_bytes, 3 * t.weight_bytes);
}

TEST_F(NnTraceTest, WritesComeFromOutputTiles)
{
    const auto trace = generateNnTrace(yoloTinyLayers(), cfg_, 0, 1);
    std::uint64_t writes = 0;
    for (const TraceOp &op : trace)
        writes += op.is_write;
    EXPECT_GT(writes, 0u);
    EXPECT_LT(writes, trace.size());
}

} // namespace
} // namespace mgmee
