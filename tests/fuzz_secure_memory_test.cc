/**
 * @file
 * Reference-model fuzzing of the functional secure memory.
 *
 * A plain byte array shadows every write; after interleaved random
 * writes, reads, and granularity reconfigurations, every read must
 * verify (Status::Ok) and decrypt to exactly the shadow's contents.
 * This exercises the full cross product of unit splitting, promotion
 * re-encryption, demotion counter inheritance, MAC slab compaction
 * and tree maintenance that no directed test enumerates.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/multigran_memory.hh"

namespace mgmee {
namespace {

constexpr std::size_t kRegion = 8 * kChunkBytes;

SecureMemory::Keys
fuzzKeys(std::uint64_t seed)
{
    SecureMemory::Keys keys;
    Rng rng(seed * 77 + 3);
    for (auto &b : keys.aes)
        b = static_cast<std::uint8_t>(rng.next());
    keys.mac = {rng.next(), rng.next()};
    return keys;
}

/** Random stream-partition map biased toward structured shapes. */
StreamPart
randomMap(Rng &rng)
{
    switch (rng.below(5)) {
      case 0: return kAllFine;
      case 1: return kAllStream;
      case 2: return subchunkMask(static_cast<unsigned>(rng.below(8)));
      case 3: return rng.next() & rng.next();  // sparse bits
      default: return rng.next() | rng.next(); // dense bits
    }
}

class SecureMemoryFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SecureMemoryFuzz, RandomOpsMatchReferenceModel)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    SecureMemory mem(kRegion, fuzzKeys(seed));
    std::vector<std::uint8_t> shadow(kRegion, 0);
    std::vector<std::uint8_t> buf;

    for (int op = 0; op < 400; ++op) {
        const unsigned kind = static_cast<unsigned>(rng.below(40));
        if (kind == 39) {
            // Occasional key rotation must be invisible to readers.
            mem.rekey(fuzzKeys(seed * 131 + op));
            continue;
        }
        if (kind < 16) {
            // Random write (arbitrary alignment, up to 2KB).
            const std::size_t len = 1 + rng.below(2048);
            const Addr addr = rng.below(kRegion - len);
            buf.resize(len);
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            ASSERT_EQ(SecureMemory::Status::Ok, mem.write(addr, buf))
                << "op " << op;
            std::copy(buf.begin(), buf.end(), shadow.begin() + addr);
        } else if (kind < 32) {
            // Random read must verify and match the shadow.
            const std::size_t len = 1 + rng.below(2048);
            const Addr addr = rng.below(kRegion - len);
            buf.assign(len, 0xcd);
            ASSERT_EQ(SecureMemory::Status::Ok, mem.read(addr, buf))
                << "op " << op;
            for (std::size_t i = 0; i < len; ++i) {
                ASSERT_EQ(shadow[addr + i], buf[i])
                    << "op " << op << " byte " << i;
            }
        } else {
            // Reconfigure a random chunk's granularity.
            const std::uint64_t chunk = rng.below(kRegion /
                                                  kChunkBytes);
            mem.applyStreamPart(chunk, randomMap(rng));
        }
    }

    // Final full-region audit.
    buf.assign(kRegion, 0);
    ASSERT_EQ(SecureMemory::Status::Ok, mem.read(0, buf));
    EXPECT_EQ(shadow, buf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureMemoryFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

class DynamicMemoryFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DynamicMemoryFuzz, TrackerDrivenSwitchingPreservesData)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed + 1000);
    DynamicSecureMemory dyn(kRegion, fuzzKeys(seed));
    std::vector<std::uint8_t> shadow(kRegion, 0);
    std::vector<std::uint8_t> buf;
    Cycle now = 0;

    for (int op = 0; op < 250; ++op) {
        now += rng.below(4000);
        if (rng.chance(0.3)) {
            // Stream a whole random partition/subchunk (drives the
            // tracker toward promotions).
            const std::size_t len =
                rng.chance(0.5) ? kPartitionBytes : kSubchunkBytes;
            const Addr addr =
                alignDown(rng.below(kRegion - len), len);
            buf.resize(len);
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            ASSERT_EQ(SecureMemory::Status::Ok,
                      dyn.write(addr, buf, now));
            std::copy(buf.begin(), buf.end(), shadow.begin() + addr);
        } else if (rng.chance(0.5)) {
            const std::size_t len = 1 + rng.below(512);
            const Addr addr = rng.below(kRegion - len);
            buf.resize(len);
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            ASSERT_EQ(SecureMemory::Status::Ok,
                      dyn.write(addr, buf, now));
            std::copy(buf.begin(), buf.end(), shadow.begin() + addr);
        } else {
            const std::size_t len = 1 + rng.below(512);
            const Addr addr = rng.below(kRegion - len);
            buf.assign(len, 0);
            ASSERT_EQ(SecureMemory::Status::Ok,
                      dyn.read(addr, buf, now));
            for (std::size_t i = 0; i < len; ++i)
                ASSERT_EQ(shadow[addr + i], buf[i]) << "op " << op;
        }
    }

    buf.assign(kRegion, 0);
    ASSERT_EQ(SecureMemory::Status::Ok, dyn.read(0, buf, now + 1));
    EXPECT_EQ(shadow, buf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicMemoryFuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

/** Tampering under random maps must always be detected. */
class TamperFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TamperFuzz, RandomTamperAlwaysDetected)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed + 5000);
    SecureMemory mem(kRegion, fuzzKeys(seed));

    std::vector<std::uint8_t> data(kChunkBytes);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());

    for (int round = 0; round < 10; ++round) {
        const std::uint64_t chunk = rng.below(kRegion / kChunkBytes);
        const Addr base = chunk * kChunkBytes;
        ASSERT_EQ(SecureMemory::Status::Ok, mem.write(base, data));
        mem.applyStreamPart(chunk, randomMap(rng));

        const Addr victim =
            base + rng.below(kLinesPerChunk) * kCachelineBytes;
        mem.corruptData(victim,
                        static_cast<unsigned>(rng.below(64)));

        // Reading the whole chunk must flag the corruption.
        std::vector<std::uint8_t> out(kChunkBytes);
        EXPECT_EQ(SecureMemory::Status::MacMismatch,
                  mem.read(base, out))
            << "round " << round;

        // Repair for the next round.
        ASSERT_EQ(SecureMemory::Status::Ok, mem.write(base, data));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperFuzz,
                         ::testing::Range<std::uint64_t>(1, 5));

} // namespace
} // namespace mgmee
