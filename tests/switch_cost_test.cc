/**
 * @file
 * Unit tests for the Table 2 switch-cost classification model and the
 * granularity table's lazy resolution.
 */

#include <gtest/gtest.h>

#include "core/switch_cost.hh"

namespace mgmee {
namespace {

GranResolution
res(Granularity from, Granularity to, bool prev_write, bool written)
{
    GranResolution r;
    r.from = from;
    r.to = to;
    r.switched = from != to;
    r.prev_was_write = prev_write;
    r.partition_written = written;
    return r;
}

TEST(SwitchCostTest, CorrectPredictionIsFree)
{
    SwitchCostModel model;
    const auto cost = model.apply(
        res(Granularity::Line64B, Granularity::Line64B, false, false),
        false);
    EXPECT_FALSE(cost.fetch_parent_to_root);
    EXPECT_EQ(0u, cost.mac_lines);
    EXPECT_EQ(0u, cost.data_lines);
    EXPECT_EQ(1u, model.stats().get("ctr.correct"));
    EXPECT_EQ(1u, model.stats().get("mac.correct"));
}

TEST(SwitchCostTest, ScaleDownCountersAreFree)
{
    // Table 2 row 1: Coarse->Fine, all types, zero (lazy switching).
    SwitchCostModel model;
    for (bool is_write : {false, true}) {
        const auto cost = model.apply(
            res(Granularity::Chunk32KB, Granularity::Line64B, false,
                false),
            is_write);
        EXPECT_FALSE(cost.fetch_parent_to_root);
    }
    EXPECT_EQ(2u, model.stats().get("ctr.coarse_to_fine_all"));
}

TEST(SwitchCostTest, ScaleUpWritesAreFree)
{
    // Table 2: Fine->Coarse WAR/WAW zero (the write fetches to the
    // root anyway).
    SwitchCostModel model;
    const auto war = model.apply(
        res(Granularity::Line64B, Granularity::Part512B, false, false),
        true);
    const auto waw = model.apply(
        res(Granularity::Line64B, Granularity::Part512B, true, true),
        true);
    EXPECT_FALSE(war.fetch_parent_to_root);
    EXPECT_FALSE(waw.fetch_parent_to_root);
    EXPECT_EQ(1u, model.stats().get("ctr.fine_to_coarse_war"));
    EXPECT_EQ(1u, model.stats().get("ctr.fine_to_coarse_waw"));
}

TEST(SwitchCostTest, ScaleUpReadsFetchParentToRoot)
{
    SwitchCostModel model;
    const auto rar = model.apply(
        res(Granularity::Line64B, Granularity::Sub4KB, false, false),
        false);
    const auto raw = model.apply(
        res(Granularity::Line64B, Granularity::Sub4KB, true, false),
        false);
    EXPECT_TRUE(rar.fetch_parent_to_root);
    EXPECT_TRUE(raw.fetch_parent_to_root);
    EXPECT_EQ(1u, model.stats().get("ctr.fine_to_coarse_rar"));
    EXPECT_EQ(1u, model.stats().get("ctr.fine_to_coarse_raw"));
}

TEST(SwitchCostTest, MacScaleDownReadOnlyFetchesFineMacs)
{
    SwitchCostModel model;
    const auto cost = model.apply(
        res(Granularity::Sub4KB, Granularity::Line64B, false, false),
        false);
    // One MAC line per resolved 512B partition (lazy switching
    // resolves the rest of the unit as it is used).
    EXPECT_EQ(1u, cost.mac_lines);
    EXPECT_EQ(0u, cost.data_lines);
    EXPECT_EQ(1u, model.stats().get("mac.coarse_to_fine_ro"));
}

TEST(SwitchCostTest, MacScaleDownWrittenFetchesWholeUnit)
{
    SwitchCostModel model;
    const auto cost = model.apply(
        res(Granularity::Chunk32KB, Granularity::Line64B, false, true),
        false);
    EXPECT_EQ(0u, cost.mac_lines);
    EXPECT_EQ(kLinesPerPartition, cost.data_lines);
    EXPECT_EQ(1u, model.stats().get("mac.coarse_to_fine_rw"));
}

TEST(SwitchCostTest, MacScaleUpIsFree)
{
    SwitchCostModel model;
    const auto cost = model.apply(
        res(Granularity::Line64B, Granularity::Chunk32KB, false, true),
        false);
    EXPECT_EQ(0u, cost.mac_lines);
    EXPECT_EQ(0u, cost.data_lines);
    EXPECT_EQ(1u, model.stats().get("mac.fine_to_coarse"));
}

// ---- GranularityTable lazy resolution --------------------------------------

TEST(GranularityTableTest, LazySwitchAppliesOnFirstAccess)
{
    MetadataLayout layout(16 * kChunkBytes);
    GranularityTable table(layout);

    table.setNext(0, StreamPart{0b11});
    EXPECT_EQ(kAllFine, table.current(0));

    // The pending map is adopted on the chunk's first access; the
    // switch event is classified for the touched partition.
    auto r0 = table.resolveOnAccess(0, false);
    EXPECT_TRUE(r0.switched);
    EXPECT_EQ(Granularity::Line64B, r0.from);
    EXPECT_EQ(Granularity::Part512B, r0.to);
    EXPECT_EQ(StreamPart{0b11}, table.current(0));

    // A later access to partition 1 sees no further switch.
    auto r1 = table.resolveOnAccess(kPartitionBytes, false);
    EXPECT_FALSE(r1.switched);
    EXPECT_EQ(Granularity::Part512B, r1.from);
}

TEST(GranularityTableTest, AccessHistoryDrivesClassification)
{
    MetadataLayout layout(16 * kChunkBytes);
    GranularityTable table(layout);

    auto first = table.resolveOnAccess(0, true);
    EXPECT_TRUE(first.first_access);
    EXPECT_FALSE(first.prev_was_write);

    auto second = table.resolveOnAccess(0, false);
    EXPECT_FALSE(second.first_access);
    EXPECT_TRUE(second.prev_was_write);
    EXPECT_TRUE(second.partition_written);

    auto third = table.resolveOnAccess(0, false);
    EXPECT_FALSE(third.prev_was_write);
    EXPECT_TRUE(third.partition_written);  // sticky
}

TEST(GranularityTableTest, GroupPromotionFromDetectedMap)
{
    MetadataLayout layout(16 * kChunkBytes);
    GranularityTable table(layout);
    table.setNext(0, subchunkMask(0));

    // Adopting the map promotes the whole aligned group to 4KB.
    auto first = table.resolveOnAccess(0, false);
    EXPECT_TRUE(first.switched);
    EXPECT_EQ(Granularity::Sub4KB, first.to);
    EXPECT_EQ(Granularity::Sub4KB,
              granularityOfPartition(table.current(0), 7));
    // Partitions outside the group stay fine.
    EXPECT_EQ(Granularity::Line64B,
              granularityOfPartition(table.current(0), 8));
}

} // namespace
} // namespace mgmee
