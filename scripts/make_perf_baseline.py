#!/usr/bin/env python3
"""Curate a perf-diff baseline from one or more manifests of a bench.

Usage: make_perf_baseline.py [--drop <substr>]... <out.json> \
           <manifest.json>...

Baselines are the *contract* side of tools/mgmee-perf-diff: every
metric a baseline names must exist (and behave) in future runs.  This
script builds that contract from real manifests, ideally several runs
under different MGMEE_THREADS so nondeterministic metrics reveal
themselves:

 - counter/ratio/string/bool metrics are kept only when every input
   manifest agrees on the value (they are supposed to be
   deterministic; disagreement means the metric cannot be pinned);
 - wall-clock metrics (matching the same key substrings as
   obs::isWallMetric) are kept from the FIRST manifest -- perf-diff
   compares them directionally with a tolerance, so run the first
   manifest on a quiet machine;
 - identity/volatile sections (git, knobs, host, trace, telemetry)
   never enter the baseline;
 - --drop <substr> (repeatable) excludes metrics whose "section/key"
   contains the substring -- for values that are deterministic on one
   host but vary across hosts (scheduler topology counters clamp to
   the core count, crypto tier tables depend on the ISA).

Only the results / stats / histograms sections participate, mirroring
the flattening in src/obs/perf_diff.cc.
"""

import json
import sys

WALL_MARKS = ("_ns", "_us", "_ms", "seconds", "secs", "per_sec",
              "runs_per", "gb_s", "gbps", "speedup", "wall")


def is_wall(key):
    return any(mark in key for mark in WALL_MARKS)


def flatten(manifest):
    """{(section, key): value} over the comparable leaves."""
    out = {}
    for key, value in manifest.get("results", {}).items():
        if not isinstance(value, (dict, list)):
            out[("results", key)] = value
    for section in ("stats", "histograms"):
        for outer, group in manifest.get(section, {}).items():
            if not isinstance(group, dict):
                continue
            for inner, value in group.items():
                if not isinstance(value, (dict, list)):
                    out[(section, f"{outer}.{inner}")] = value
    return out


def main():
    args = sys.argv[1:]
    drops = []
    while len(args) >= 2 and args[0] == "--drop":
        drops.append(args[1])
        args = args[2:]
    if len(args) < 2:
        sys.exit(__doc__)
    out_path, manifest_paths = args[0], args[1:]

    manifests = []
    for path in manifest_paths:
        with open(path) as f:
            manifests.append(json.load(f))

    bench = manifests[0].get("bench", "unknown")
    for m in manifests[1:]:
        if m.get("bench") != bench:
            sys.exit(f"bench mismatch: {bench} vs {m.get('bench')}")

    first = flatten(manifests[0])
    rest = [flatten(m) for m in manifests[1:]]

    kept, dropped = {}, []
    for (section, key), value in first.items():
        if any(d in f"{section}/{key}" for d in drops):
            continue  # host-dependent by curation
        if is_wall(key):
            kept[(section, key)] = value  # directional, tolerated
            continue
        if all(key_map.get((section, key)) == value
               for key_map in rest):
            kept[(section, key)] = value
        else:
            dropped.append(f"{section}/{key}")

    baseline = {"bench": bench}
    for section in ("results", "stats", "histograms"):
        entries = {k: v for (s, k), v in kept.items() if s == section}
        if not entries:
            continue
        if section == "results":
            baseline[section] = dict(sorted(entries.items()))
        else:
            nested = {}
            for key, value in sorted(entries.items()):
                outer, inner = key.split(".", 1)
                nested.setdefault(outer, {})[inner] = value
            baseline[section] = nested

    with open(out_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")

    print(f"{out_path}: kept {len(kept)} metric(s) from "
          f"{len(manifests)} manifest(s)")
    for key in dropped:
        print(f"  dropped (nondeterministic across runs): {key}")


if __name__ == "__main__":
    main()
