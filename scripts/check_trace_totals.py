#!/usr/bin/env python3
"""Cross-check observability streams against a run manifest.

Usage:
  check_trace_totals.py <trace.obstrace> <manifest.json>
  check_trace_totals.py --telemetry <telemetry.jsonl> <manifest.json>

Default mode decodes the binary obs trace (magic MGOBSTR1, 24-byte
records) with nothing but the stdlib and asserts that the per-class
StreamChunk line totals equal the manifest's total_lines{64,512,4k,32k}
results -- the CI contract that the event stream reproduces the
stream-chunk classifier exactly.

--telemetry mode replays the JSONL timeline written by the telemetry
plane (MGMEE_TELEMETRY): starting from the baseline record, it
accumulates every interval's signed stat deltas up to the last
manifest-boundary record ("manifest": true) and asserts the result
equals the manifest's final stats section exactly -- the conservation
law that interval snapshots neither lose nor invent events.
"""

import json
import struct
import sys

STREAM_CHUNK = 14  # obs::EventKind::StreamChunk
TRACE_DROPPED = 18  # obs::EventKind::TraceDropped
RECORD = struct.Struct("<QQIBBH")  # cycle, addr, value, kind, arg0, thread


def decode_totals(path):
    totals = [0, 0, 0, 0]
    dropped = 0
    with open(path, "rb") as f:
        if f.read(8) != b"MGOBSTR1":
            sys.exit(f"{path}: not an obs event trace")
        version, rec_size = struct.unpack("<II", f.read(8))
        if version != 1 or rec_size != RECORD.size:
            sys.exit(f"{path}: unsupported format v{version}/{rec_size}B")
        while rec := f.read(RECORD.size):
            _cycle, addr, value, kind, arg0, _thread = RECORD.unpack(rec)
            if kind == STREAM_CHUNK:
                totals[arg0] += value
            elif kind == TRACE_DROPPED:
                dropped += addr
    return totals, dropped


def check_trace(trace_path, manifest_path):
    totals, dropped = decode_totals(trace_path)
    if dropped:
        sys.exit(f"{trace_path}: {dropped} record(s) dropped -- totals "
                 f"are not trustworthy")
    with open(manifest_path) as f:
        results = json.load(f)["results"]
    expected = [
        results["total_lines64"],
        results["total_lines512"],
        results["total_lines4k"],
        results["total_lines32k"],
    ]
    if totals != expected:
        sys.exit(f"trace/manifest mismatch: decoded {totals}, "
                 f"manifest {expected}")
    print(f"decoded stream-chunk totals match the manifest: {totals}")


def check_telemetry(jsonl_path, manifest_path):
    baseline = None
    running = {}
    at_boundary = None
    intervals = 0
    with open(jsonl_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("type")
            if kind == "start":
                baseline = dict(rec["baseline"])
                running = dict(baseline)
            elif kind == "interval":
                if baseline is None:
                    sys.exit(f"{jsonl_path}: interval before start record")
                intervals += 1
                for key, delta in rec.get("deltas", {}).items():
                    running[key] = running.get(key, 0) + delta
                if rec.get("manifest"):
                    at_boundary = dict(running)
    if baseline is None:
        sys.exit(f"{jsonl_path}: no start record")
    if at_boundary is None:
        sys.exit(f"{jsonl_path}: no manifest-boundary interval "
                 f"(captureTelemetry never ran)")

    with open(manifest_path) as f:
        stats = json.load(f).get("stats", {})
    manifest_totals = {
        f"{group}.{stat}": value
        for group, counters in stats.items()
        for stat, value in counters.items()
    }

    # Every stat the manifest reports must be exactly reproducible as
    # baseline + sum(deltas) at the boundary.  (The timeline may know
    # stats the manifest snapshot does not; those are fine.)
    bad = []
    for key, expected in sorted(manifest_totals.items()):
        got = at_boundary.get(key, 0)
        if got != expected:
            bad.append(f"  {key}: timeline {got} != manifest {expected}")
    if bad:
        sys.exit(f"telemetry/manifest conservation failure "
                 f"({len(bad)} stat(s)):\n" + "\n".join(bad))
    print(f"telemetry timeline conserves all {len(manifest_totals)} "
          f"manifest stats across {intervals} interval(s)")


def main():
    args = sys.argv[1:]
    if len(args) == 3 and args[0] == "--telemetry":
        check_telemetry(args[1], args[2])
    elif len(args) == 2:
        check_trace(args[0], args[1])
    else:
        sys.exit(__doc__)


if __name__ == "__main__":
    main()
