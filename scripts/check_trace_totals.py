#!/usr/bin/env python3
"""Cross-check a security-event trace against a run manifest.

Usage: check_trace_totals.py <trace.obstrace> <manifest.json>

Decodes the binary obs trace (magic MGOBSTR1, 24-byte records) with
nothing but the stdlib and asserts that the per-class StreamChunk line
totals equal the manifest's total_lines{64,512,4k,32k} results -- the
CI contract that the event stream reproduces the stream-chunk
classifier exactly.
"""

import json
import struct
import sys

STREAM_CHUNK = 14  # obs::EventKind::StreamChunk
RECORD = struct.Struct("<QQIBBH")  # cycle, addr, value, kind, arg0, thread


def decode_totals(path):
    totals = [0, 0, 0, 0]
    with open(path, "rb") as f:
        if f.read(8) != b"MGOBSTR1":
            sys.exit(f"{path}: not an obs event trace")
        version, rec_size = struct.unpack("<II", f.read(8))
        if version != 1 or rec_size != RECORD.size:
            sys.exit(f"{path}: unsupported format v{version}/{rec_size}B")
        while rec := f.read(RECORD.size):
            _cycle, _addr, value, kind, arg0, _thread = RECORD.unpack(rec)
            if kind == STREAM_CHUNK:
                totals[arg0] += value
    return totals


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    trace_path, manifest_path = sys.argv[1], sys.argv[2]
    totals = decode_totals(trace_path)
    with open(manifest_path) as f:
        results = json.load(f)["results"]
    expected = [
        results["total_lines64"],
        results["total_lines512"],
        results["total_lines4k"],
        results["total_lines32k"],
    ]
    if totals != expected:
        sys.exit(f"trace/manifest mismatch: decoded {totals}, "
                 f"manifest {expected}")
    print(f"decoded stream-chunk totals match the manifest: {totals}")


if __name__ == "__main__":
    main()
