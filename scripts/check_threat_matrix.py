#!/usr/bin/env python3
"""Verify docs/THREAT_MODEL.md against the measured attack-campaign matrix.

Usage:
    check_threat_matrix.py [--check | --update] [manifest] [threat_model.md]

Defaults: results/manifest_attack_campaign.json, docs/THREAT_MODEL.md.

Reads the `matrix.<engine>.<class>` verdicts out of the campaign
manifest (written by `attack_campaign` / `mgmee-sim --attack-campaign`),
renders them as the markdown table bounded by the BEGIN/END ATTACK
MATRIX markers in the threat model, and fails if the committed table
differs -- so the doc can never drift from measured behaviour.  With
--update the block is rewritten in place instead; --check names the
default compare-only mode explicitly (for CI invocations).

It also enforces the acceptance bar independently of the doc: the
core engines (mgmee, conventional, nvm-mgmee) must have no missed or
false-alarm cells, and no engine may raise a false alarm on a clean
run.
"""

import json
import sys

BEGIN = "<!-- BEGIN ATTACK MATRIX -->"
END = "<!-- END ATTACK MATRIX -->"
CORE_ENGINES = ("mgmee", "conventional", "nvm-mgmee")

# Verdict -> table cell (misses are called out in bold).
LABEL = {
    "detected": "detected",
    "missed": "**MISSED**",
    "false_alarm": "**FALSE ALARM**",
    "clean_pass": "pass",
    "n/a": "n/a",
}


def load_matrix(manifest_path):
    """Return (engines, classes, {(engine, class): verdict}, results)."""
    with open(manifest_path) as f:
        doc = json.load(f)
    results = doc.get("results", {})
    engines, classes, cells = [], [], {}
    for key, value in results.items():
        if not key.startswith("matrix."):
            continue
        _, engine, cls = key.split(".", 2)
        if engine not in engines:
            engines.append(engine)
        if cls not in classes:
            classes.append(cls)
        cells[(engine, cls)] = value
    if not cells:
        sys.exit(f"{manifest_path}: no matrix.* results -- "
                 "run the attack campaign first")
    return engines, classes, cells, results


def render_table(engines, classes, cells):
    header = "| attack class | " + " | ".join(engines) + " |"
    rule = "|---" * (len(engines) + 1) + "|"
    lines = [header, rule]
    for cls in classes:
        row = [f"`{cls}`"]
        for engine in engines:
            verdict = cells.get((engine, cls), "n/a")
            row.append(LABEL.get(verdict, verdict))
        lines.append("| " + " | ".join(row) + " |")
    return lines


def enforce_acceptance(engines, classes, cells, results):
    failures = []
    for engine in CORE_ENGINES:
        if engine not in engines:
            failures.append(f"core engine '{engine}' missing from matrix")
            continue
        for cls in classes:
            verdict = cells.get((engine, cls))
            if verdict in ("missed", "false_alarm"):
                failures.append(
                    f"core engine '{engine}' verdict for '{cls}' is "
                    f"'{verdict}' (must detect every applicable class)")
    for (engine, cls), verdict in cells.items():
        if verdict == "false_alarm":
            failures.append(
                f"'{engine}' raised a false alarm on '{cls}'")
    if results.get("cells_false_alarm", 0) != 0:
        failures.append(
            f"{results['cells_false_alarm']} false-alarm cells recorded")
    if results.get("core_full_detection") is not True:
        failures.append("manifest core_full_detection flag is not true")
    return failures


def splice_block(doc_lines, table_lines):
    """Replace the marker-bounded block; returns (new_lines, old_block)."""
    try:
        begin = doc_lines.index(BEGIN)
        end = doc_lines.index(END)
    except ValueError:
        sys.exit(f"threat model is missing the '{BEGIN}' / '{END}' "
                 "markers")
    if end < begin:
        sys.exit("threat-model matrix markers are out of order")
    old_block = doc_lines[begin + 1:end]
    new_lines = doc_lines[:begin + 1] + table_lines + doc_lines[end:]
    return new_lines, old_block


def main(argv):
    update = "--update" in argv
    args = [a for a in argv if a not in ("--update", "--check")]
    manifest_path = args[0] if len(args) > 0 else \
        "results/manifest_attack_campaign.json"
    doc_path = args[1] if len(args) > 1 else "docs/THREAT_MODEL.md"

    engines, classes, cells, results = load_matrix(manifest_path)
    table = render_table(engines, classes, cells)

    failures = enforce_acceptance(engines, classes, cells, results)
    for failure in failures:
        print(f"ACCEPTANCE: {failure}", file=sys.stderr)

    with open(doc_path) as f:
        doc_lines = f.read().splitlines()
    new_lines, old_block = splice_block(doc_lines, table)

    measured = [line.strip() for line in table]
    committed = [line.strip() for line in old_block if line.strip()]

    if update:
        with open(doc_path, "w") as f:
            f.write("\n".join(new_lines) + "\n")
        print(f"updated {doc_path} ({len(engines)} engines x "
              f"{len(classes)} classes)")
    elif committed != measured:
        print(f"{doc_path}: attack matrix DIFFERS from {manifest_path}",
              file=sys.stderr)
        for line in old_block:
            if line.strip() and line.strip() not in measured:
                print(f"  doc only:      {line.strip()}", file=sys.stderr)
        for line in measured:
            if line not in committed:
                print(f"  measured only: {line}", file=sys.stderr)
        print("re-run: attack_campaign && "
              "scripts/check_threat_matrix.py --update", file=sys.stderr)
        return 1
    else:
        print(f"{doc_path}: matrix matches {manifest_path} "
              f"({len(engines)} engines x {len(classes)} classes)")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
